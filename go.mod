module localmds

go 1.24
