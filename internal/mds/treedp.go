package mds

import (
	"sort"

	"localmds/internal/graph"
)

// exactMDSForest solves MDS on forests by the classic three-state tree DP
// (linear time), used automatically by ExactMDS when the input is acyclic:
// branch and bound has weak bounds exactly on trees.
//
// States per vertex: in the set; not in the set but dominated from below;
// not in the set and not yet dominated (the parent must take it).
func exactMDSForest(g *graph.Graph) []int {
	const (
		stIn = iota
		stDom
		stNeed
	)
	n := g.N()
	dp := make([][3]int, n)
	choice := make([][3][]int8, n) // per state: chosen state of each child
	children := make([][]int, n)
	parent := make([]int, n)
	var order []int // vertices in DFS post-order

	visited := make([]bool, n)
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		// Iterative DFS to build children lists and post-order.
		stack := []int{root}
		parent[root] = -1
		visited[root] = true
		var pre []int
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			pre = append(pre, v)
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					parent[u] = v
					children[v] = append(children[v], u)
					stack = append(stack, u)
				}
			}
		}
		for i := len(pre) - 1; i >= 0; i-- {
			order = append(order, pre[i])
		}
	}

	const inf = 1 << 29
	for _, v := range order {
		kids := children[v]
		choice[v][stIn] = make([]int8, len(kids))
		choice[v][stDom] = make([]int8, len(kids))
		choice[v][stNeed] = make([]int8, len(kids))

		// stIn: v in S; each child free (v dominates it).
		in := 1
		for i, c := range kids {
			best, bestState := dp[c][stIn], int8(stIn)
			if dp[c][stDom] < best {
				best, bestState = dp[c][stDom], stDom
			}
			if dp[c][stNeed] < best {
				best, bestState = dp[c][stNeed], stNeed
			}
			in += best
			choice[v][stIn][i] = bestState
		}
		dp[v][stIn] = in

		// stNeed: v not in S, no child in S (else v would be dominated).
		need := 0
		for i, c := range kids {
			need += dp[c][stDom]
			choice[v][stNeed][i] = stDom
			if dp[c][stDom] >= inf {
				need = inf
			}
		}
		dp[v][stNeed] = minInt(need, inf)

		// stDom: v not in S, at least one child in S; other children are
		// stIn or stDom, whichever is cheaper; pay the smallest penalty to
		// force one child into S.
		if len(kids) == 0 {
			dp[v][stDom] = inf
		} else {
			total := 0
			bestPenalty := inf
			bestIdx := -1
			for i, c := range kids {
				freeBest, freeState := dp[c][stDom], int8(stDom)
				if dp[c][stIn] < freeBest {
					freeBest, freeState = dp[c][stIn], stIn
				}
				total += freeBest
				choice[v][stDom][i] = freeState
				if pen := dp[c][stIn] - freeBest; pen < bestPenalty {
					bestPenalty = pen
					bestIdx = i
				}
			}
			if total >= inf || bestPenalty >= inf {
				dp[v][stDom] = inf
			} else {
				dp[v][stDom] = total + bestPenalty
				choice[v][stDom][bestIdx] = stIn
			}
		}
	}

	// Reconstruct: walk each root with its optimal state.
	state := make([]int8, n)
	var sol []int
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if parent[v] < 0 {
			if dp[v][stIn] <= dp[v][stDom] {
				state[v] = stIn
			} else {
				state[v] = stDom
			}
		}
		st := state[v]
		if st == stIn {
			sol = append(sol, v)
		}
		for ci, c := range children[v] {
			state[c] = choice[v][st][ci]
		}
	}
	sort.Ints(sol)
	return sol
}

// IsForest reports whether g is acyclic.
func IsForest(g *graph.Graph) bool {
	return g.M() == g.N()-g.NumComponents()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
