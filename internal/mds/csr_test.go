package mds

import (
	"math/rand"
	"testing"

	"localmds/internal/graph"
)

func randomMDSGraph(n int, p float64, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func randomTarget(n int, rng *rand.Rand) []int {
	var target []int
	for v := 0; v < n; v++ {
		if rng.Intn(2) == 0 {
			target = append(target, v)
		}
	}
	return target
}

func TestExactBDominatingCSRMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		g := randomMDSGraph(14, 0.15, rng)
		c := g.Freeze()
		target := randomTarget(g.N(), rng)
		want, errWant := ExactBDominating(g, target)
		got, errGot := ExactBDominatingCSR(c, target)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("trial %d: err mismatch: %v vs %v", trial, errWant, errGot)
		}
		if errWant != nil {
			continue
		}
		if !graph.EqualSets(got, want) {
			t.Fatalf("trial %d: CSR = %v, legacy = %v (target %v)", trial, got, want, target)
		}
	}
}

func TestExactBDominatingCSRTreewidth2Dispatch(t *testing.T) {
	// A long cycle has treewidth 2 and exceeds nothing; both entry points
	// must dispatch to the DP and agree.
	n := 30
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	target := make([]int, n)
	for i := range target {
		target[i] = i
	}
	want, err := ExactBDominating(g, target)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExactBDominatingCSR(g.Freeze(), target)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.EqualSets(got, want) {
		t.Fatalf("CSR = %v, legacy = %v", got, want)
	}
}

func TestGreedyBDominatingCSRMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 25; trial++ {
		g := randomMDSGraph(20, 0.12, rng)
		c := g.Freeze()
		target := randomTarget(g.N(), rng)
		covers := make([][]int, g.N())
		inB := make([]bool, g.N())
		for _, v := range target {
			inB[v] = true
		}
		for v := 0; v < g.N(); v++ {
			for _, u := range g.Ball(v, 1) {
				if inB[u] {
					covers[v] = append(covers[v], u)
				}
			}
		}
		want := greedyBDominatingGeneric(g, target, covers)
		got := GreedyBDominatingCSR(c, target)
		if !graph.EqualSets(got, want) {
			t.Fatalf("trial %d: CSR greedy = %v, generic = %v (target %v)", trial, got, want, target)
		}
		if len(target) > 0 && !DominatesSetCSR(c, got, target) {
			t.Fatalf("trial %d: greedy CSR result not dominating", trial)
		}
	}
}

func TestDominationPredicatesCSRMatchLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		g := randomMDSGraph(16, 0.12, rng)
		c := g.Freeze()
		s := randomTarget(g.N(), rng)
		target := randomTarget(g.N(), rng)
		if got, want := DominatesSetCSR(c, s, target), DominatesSet(g, s, target); got != want {
			t.Fatalf("DominatesSetCSR = %v, want %v (s=%v target=%v)", got, want, s, target)
		}
		if got, want := IsDominatingSetCSR(c, s), IsDominatingSet(g, s); got != want {
			t.Fatalf("IsDominatingSetCSR = %v, want %v (s=%v)", got, want, s)
		}
	}
}
