package mds

import (
	"localmds/internal/graph"
)

// exactMVCTreewidth2 solves Minimum Vertex Cover exactly on a
// treewidth-<=2 graph via the same elimination decomposition as the MDS DP,
// with two states per bag vertex (in / out of the cover). Every real edge
// lies inside the bag of its first-eliminated endpoint, where it is
// enforced; enforcing it again in other bags containing both endpoints is
// harmless. Membership is counted at the vertex's own (forget) bag.
func exactMVCTreewidth2(g *graph.Graph) ([]int, error) {
	bags, err := buildTW2Decomposition(g)
	if err != nil {
		return nil, err
	}
	type entry struct {
		cost   int
		vIn    bool
		childP []uint8
	}
	up := make([][]entry, len(bags))
	numP := func(k int) int { return 1 << k }
	bit := func(p uint8, slot int) bool { return p&(1<<slot) != 0 }

	for i, bag := range bags {
		slots := append([]int{bag.v}, bag.rest...)
		fullSize := numP(len(slots))
		full := make([]int, fullSize)
		fullChoice := make([][]uint8, fullSize)
		for q := 0; q < fullSize; q++ {
			// Enforce in-bag real edges.
			valid := true
			for a := 0; a < len(slots) && valid; a++ {
				for b := a + 1; b < len(slots); b++ {
					if g.HasEdge(slots[a], slots[b]) && !bit(uint8(q), a) && !bit(uint8(q), b) {
						valid = false
						break
					}
				}
			}
			if !valid {
				full[q] = twInf
				continue
			}
			if bit(uint8(q), 0) {
				full[q] = 1
			}
			fullChoice[q] = make([]uint8, len(bag.children))
		}
		for ci, c := range bag.children {
			child := bags[c]
			childSlots := make([]int, len(child.rest))
			for k, u := range child.rest {
				childSlots[k] = slotIndex(slots, u)
			}
			next := make([]int, fullSize)
			nextChoice := make([][]uint8, fullSize)
			for q := range next {
				next[q] = twInf
			}
			for q := 0; q < fullSize; q++ {
				if full[q] >= twInf {
					continue
				}
				for cp := 0; cp < numP(len(child.rest)); cp++ {
					centry := up[c][cp]
					if centry.cost >= twInf {
						continue
					}
					ok := true
					for k, slot := range childSlots {
						if bit(uint8(cp), k) != bit(uint8(q), slot) {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					if cost := full[q] + centry.cost; cost < next[q] {
						next[q] = cost
						nc := append([]uint8(nil), fullChoice[q]...)
						if nc == nil {
							nc = make([]uint8, len(bag.children))
						}
						nc[ci] = uint8(cp)
						nextChoice[q] = nc
					}
				}
			}
			full = next
			fullChoice = nextChoice
		}
		// Forget v: project onto rest profiles.
		restSize := numP(len(bag.rest))
		up[i] = make([]entry, restSize)
		for p := range up[i] {
			up[i][p] = entry{cost: twInf}
		}
		for q := 0; q < fullSize; q++ {
			if full[q] >= twInf {
				continue
			}
			rp := uint8(q >> 1) // drop slot 0 (v)
			if full[q] < up[i][rp].cost {
				up[i][rp] = entry{cost: full[q], vIn: bit(uint8(q), 0), childP: fullChoice[q]}
			}
		}
	}

	inSet := make([]bool, g.N())
	var walk func(bagIdx int, p uint8)
	walk = func(bagIdx int, p uint8) {
		e := up[bagIdx][p]
		if e.vIn {
			inSet[bags[bagIdx].v] = true
		}
		for ci, c := range bags[bagIdx].children {
			walk(c, e.childP[ci])
		}
	}
	for i, bag := range bags {
		if bag.parent < 0 {
			walk(i, 0)
		}
	}
	var sol []int
	for v, in := range inSet {
		if in {
			sol = append(sol, v)
		}
	}
	return sol, nil
}
