// The word-packed branch-and-bound engine for exact B-dominating sets.
//
// Both ExactBDominating and ExactBDominatingCSR route their hard cases
// here (after the forest / treewidth-2 DPs decline). The design follows
// the reduction-plus-bounded-search shape of the measure-and-conquer /
// PACE-solver literature:
//
//   - Closed-neighborhood coverage masks are packed into []uint64 words
//     over a compact target index space, so residual coverage is a handful
//     of AND+popcount instructions instead of an O(deg) scan, and the
//     undominated set is a bitset updated incrementally with an undo trail
//     (no per-node `dominated []bool` allocation, no per-node sort.Slice).
//   - Reduction rules run to fixpoint at the root and as unit propagation
//     during search: a candidate u is dropped when its residual coverage
//     is contained in another candidate's (N[u]∩B ⊆ N[v]∩B subsumption,
//     which also swallows the classic leaf rule), and a candidate is
//     forced when it is some target's only remaining dominator.
//   - The lower bound is the max of the cover bound ⌈remaining/maxCover⌉
//     and a greedy disjoint-ball 2-packing: targets whose potential
//     dominator coverage is pairwise disjoint need pairwise distinct
//     dominators. This generalizes TwoPacking to B-domination and is what
//     closes the root gap on grids, the old solver's worst case.
//   - Branching picks the undominated target with the fewest live
//     dominators and tries them most-covering-first; each explored branch
//     then excludes its candidate from the remaining ones, so no solution
//     is enumerated twice.
//
// The search is allocation-free after construction: all stacks are
// preallocated from the greedy upper bound and grown amortized. The
// sequential search is fully deterministic (all ties break on the lowest
// index), so both entry points return identical sets on identical inputs.
// Root-level parallel branching over runner.Pool (ExactOptions.Workers) is
// deterministic in the returned size but not the returned set.
package mds

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"localmds/internal/graph"
)

// engine is the bitset branch-and-bound state. Masks live in the compact
// target index space (bit i = target[i]); candidates are the vertices with
// at least one target in their closed neighborhood, which loses no optimal
// solution.
type engine struct {
	nt int // number of targets
	tw int // words per target mask
	nc int // number of candidates

	candVert []int32   // candidate index -> original vertex
	cover    []uint64  // nc rows of tw words: N[candidate] ∩ B
	coverers [][]int32 // target index -> covering candidate indices (ascending)
	ballMask []uint64  // nt rows of tw words: ∪ cover[c] over c ∈ coverers[t]

	alive  []bool   // candidate not subsumed / excluded
	u      []uint64 // undominated target bitset
	remain int      // popcount(u)

	chosen []int32  // picked candidates (search stack, root-forced prefix included)
	deltas []uint64 // per-pick newly-dominated mask, tw words each, aligned with chosen
	killed []int32  // exclusion/unit-kill trail, restored on frame exit

	best    []int32
	bestLen int
	shared  *atomic.Int64 // cross-worker upper bound; nil when sequential

	nodes    int64
	maxNodes int64 // 0: unbounded
	aborted  bool

	branchBufs [][]int32 // per-depth branch candidate scratch
	covBufs    [][]int32 // per-depth residual-coverage keys, aligned with branchBufs
	pack       []uint64  // packing lower-bound scratch
}

// newEngineCSR builds the engine over a frozen CSR. target must be
// deduplicated, non-empty, and in range.
func newEngineCSR(c *graph.CSR, target []int) *engine {
	n := c.N()
	return buildEngine(n, target, func(v int) []int32 { return c.Row(v) })
}

// newEngineGraph builds the engine over adjacency lists without freezing g
// (Freeze mutates the graph's CSR cache, which would race concurrent
// solves on a shared instance).
func newEngineGraph(g *graph.Graph, target []int) *engine {
	rowBuf := make([]int32, 0, 16)
	return buildEngine(g.N(), target, func(v int) []int32 {
		rowBuf = rowBuf[:0]
		for _, u := range g.Neighbors(v) {
			rowBuf = append(rowBuf, int32(u))
		}
		return rowBuf
	})
}

// buildEngine constructs the packed state from a neighbor lister. row(v)
// must return v's neighbors in ascending order; the returned slice is only
// read before the next row call.
func buildEngine(n int, target []int, row func(v int) []int32) *engine {
	nt := len(target)
	tw := (nt + 63) / 64
	tIdx := make([]int32, n)
	for i := range tIdx {
		tIdx[i] = -1
	}
	for i, v := range target {
		tIdx[v] = int32(i)
	}

	// Pass 1: identify candidates (vertices with a target in N[v]) and
	// count coverage for the shared coverers backing buffer.
	candVert := make([]int32, 0, n)
	coverCount := make([]int32, nt)
	for v := 0; v < n; v++ {
		hits := 0
		if tIdx[v] >= 0 {
			hits++
		}
		for _, u := range row(v) {
			if tIdx[u] >= 0 {
				hits++
			}
		}
		if hits > 0 {
			candVert = append(candVert, int32(v))
		}
	}
	nc := len(candVert)

	// Pass 2: fill cover masks and count coverers per target.
	cover := make([]uint64, nc*tw)
	for c, v32 := range candVert {
		v := int(v32)
		mask := cover[c*tw : (c+1)*tw]
		if t := tIdx[v]; t >= 0 {
			mask[t>>6] |= 1 << (uint(t) & 63)
			coverCount[t]++
		}
		for _, u := range row(v) {
			if t := tIdx[u]; t >= 0 {
				mask[t>>6] |= 1 << (uint(t) & 63)
				coverCount[t]++
			}
		}
	}

	// Pass 3: coverers lists share one backing array; ball masks are the
	// per-target union of their coverers' masks (the 2-packing ball).
	offsets := make([]int32, nt+1)
	for t := 0; t < nt; t++ {
		offsets[t+1] = offsets[t] + coverCount[t]
	}
	coverersBuf := make([]int32, offsets[nt])
	coverers := make([][]int32, nt)
	for t := 0; t < nt; t++ {
		coverers[t] = coverersBuf[offsets[t]:offsets[t]:offsets[t+1]]
	}
	ballMask := make([]uint64, nt*tw)
	for c := 0; c < nc; c++ {
		mask := cover[c*tw : (c+1)*tw]
		for w, word := range mask {
			for word != 0 {
				t := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				coverers[t] = append(coverers[t], int32(c))
				ball := ballMask[t*tw : (t+1)*tw]
				for i, m := range mask {
					ball[i] |= m
				}
			}
		}
	}

	u := make([]uint64, tw)
	for t := 0; t < nt; t++ {
		u[t>>6] |= 1 << (uint(t) & 63)
	}
	alive := make([]bool, nc)
	for c := range alive {
		alive[c] = true
	}
	return &engine{
		nt: nt, tw: tw, nc: nc,
		candVert: candVert, cover: cover, coverers: coverers, ballMask: ballMask,
		alive: alive, u: u, remain: nt,
		pack: make([]uint64, tw),
	}
}

// coverRow returns candidate c's packed coverage mask.
func (e *engine) coverRow(c int32) []uint64 {
	return e.cover[int(c)*e.tw : (int(c)+1)*e.tw]
}

// residCover returns |N[c] ∩ B ∩ U|: how many still-undominated targets
// picking c would cover.
func (e *engine) residCover(c int32) int {
	mask := e.coverRow(c)
	s := 0
	for w, word := range mask {
		s += bits.OnesCount64(word & e.u[w])
	}
	return s
}

// choose picks candidate c: records the newly-dominated delta on the undo
// trail and clears those targets from the undominated set.
func (e *engine) choose(c int32) {
	mask := e.coverRow(c)
	base := len(e.chosen) * e.tw
	if cap(e.deltas) < base+e.tw {
		e.deltas = append(e.deltas[:base], make([]uint64, e.tw)...)
	}
	e.deltas = e.deltas[:base+e.tw]
	for w, word := range mask {
		d := word & e.u[w]
		e.deltas[base+w] = d
		e.u[w] &^= d
		e.remain -= bits.OnesCount64(d)
	}
	e.chosen = append(e.chosen, c)
}

// unchoose reverts the latest choose.
func (e *engine) unchoose() {
	last := len(e.chosen) - 1
	base := last * e.tw
	for w := 0; w < e.tw; w++ {
		d := e.deltas[base+w]
		e.u[w] |= d
		e.remain += bits.OnesCount64(d)
	}
	e.chosen = e.chosen[:last]
	e.deltas = e.deltas[:base]
}

// undoTo pops the chosen stack to cMark and revives exclusion kills down
// to kMark — the single frame-exit path of search.
func (e *engine) undoTo(cMark, kMark int) {
	for len(e.chosen) > cMark {
		e.unchoose()
	}
	for len(e.killed) > kMark {
		c := e.killed[len(e.killed)-1]
		e.killed = e.killed[:len(e.killed)-1]
		e.alive[c] = true
	}
}

// bound returns the current pruning bound: the best known size, shared
// across workers when branching in parallel.
func (e *engine) bound() int {
	b := e.bestLen
	if e.shared != nil {
		if s := int(e.shared.Load()); s < b {
			b = s
		}
	}
	return b
}

// record stores the chosen stack as the new incumbent.
func (e *engine) record() {
	e.best = append(e.best[:0], e.chosen...)
	e.bestLen = len(e.chosen)
	if e.shared != nil {
		for {
			cur := e.shared.Load()
			if int64(e.bestLen) >= cur || e.shared.CompareAndSwap(cur, int64(e.bestLen)) {
				break
			}
		}
	}
}

// pickTarget scans the undominated targets for the one with the fewest
// live dominators (ties to the lowest index). It returns the target, its
// live-dominator count, and — when that count is one — the forced
// candidate.
func (e *engine) pickTarget() (pick int, minCnt int, forced int32) {
	pick, minCnt, forced = -1, e.nc+1, -1
	for w, word := range e.u {
		for word != 0 {
			t := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			cnt := 0
			var last int32 = -1
			for _, c := range e.coverers[t] {
				if e.alive[c] {
					cnt++
					last = c
					if cnt >= minCnt {
						break
					}
				}
			}
			if cnt < minCnt {
				pick, minCnt = t, cnt
				if cnt == 1 {
					forced = last
				} else {
					forced = -1
				}
				if cnt == 0 {
					return
				}
			}
		}
	}
	return
}

// lowerBound returns the strongest admissible increment for the current
// state: max of the cover bound ⌈remain/maxCover⌉ and the disjoint-ball
// 2-packing. maxCover ranges over live candidates only. A zero return
// with remain > 0 signals infeasibility (every remaining dominator
// excluded on this branch).
func (e *engine) lowerBound() int {
	maxCover := 0
	for c := 0; c < e.nc; c++ {
		if !e.alive[c] {
			continue
		}
		if r := e.residCover(int32(c)); r > maxCover {
			maxCover = r
		}
	}
	if maxCover == 0 {
		return 0
	}
	lb := (e.remain + maxCover - 1) / maxCover
	// Greedy 2-packing on the ball masks: repeatedly admit the target
	// whose dominator ball erases the fewest other candidates for the
	// packing. Each admitted target needs its own dominator, so the count
	// lower-bounds the remaining picks. Ball masks are static (they
	// include excluded candidates' coverage), which only weakens — never
	// breaks — the bound.
	copy(e.pack, e.u)
	packed := 0
	for {
		bestT, bestLoss := -1, e.nt+1
		for w, word := range e.pack {
			for word != 0 {
				t := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				ball := e.ballMask[t*e.tw : (t+1)*e.tw]
				loss := 0
				for i, m := range ball {
					loss += bits.OnesCount64(m & e.pack[i])
				}
				if loss < bestLoss {
					bestT, bestLoss = t, loss
				}
			}
		}
		if bestT < 0 {
			break
		}
		packed++
		ball := e.ballMask[bestT*e.tw : (bestT+1)*e.tw]
		for i, m := range ball {
			e.pack[i] &^= m
		}
	}
	if packed > lb {
		lb = packed
	}
	return lb
}

// frameBufs returns the per-depth branch scratch slices, growing the
// ladder on first use of a depth.
func (e *engine) frameBufs(depth int) ([]int32, []int32) {
	for len(e.branchBufs) <= depth {
		e.branchBufs = append(e.branchBufs, nil)
		e.covBufs = append(e.covBufs, nil)
	}
	return e.branchBufs[depth][:0], e.covBufs[depth][:0]
}

// search explores extensions of the current chosen stack. Unit
// propagation (forcing) runs first; then bounds; then exclusion branching
// on the scarcest target's dominators.
func (e *engine) search(depth int) {
	if e.aborted {
		return
	}
	e.nodes++
	if e.maxNodes > 0 && e.nodes > e.maxNodes {
		e.aborted = true
		return
	}
	cMark, kMark := len(e.chosen), len(e.killed)
	var pick int
	for {
		if len(e.chosen) >= e.bound() {
			e.undoTo(cMark, kMark)
			return
		}
		if e.remain == 0 {
			e.record()
			e.undoTo(cMark, kMark)
			return
		}
		t, cnt, forced := e.pickTarget()
		if cnt == 0 { // all dominators of t excluded on this branch
			e.undoTo(cMark, kMark)
			return
		}
		if cnt == 1 {
			e.choose(forced)
			continue
		}
		pick = t
		break
	}
	lb := e.lowerBound()
	if lb == 0 || len(e.chosen)+lb >= e.bound() {
		e.undoTo(cMark, kMark)
		return
	}
	// Branch candidates: live dominators of pick, most residual coverage
	// first, index ascending on ties (insertion sort into per-depth
	// scratch keeps the hot path allocation-free).
	cands, covs := e.frameBufs(depth)
	for _, c := range e.coverers[pick] {
		if !e.alive[c] {
			continue
		}
		rc := int32(e.residCover(c))
		i := len(cands)
		cands = append(cands, 0)
		covs = append(covs, 0)
		for i > 0 && covs[i-1] < rc {
			cands[i], covs[i] = cands[i-1], covs[i-1]
			i--
		}
		cands[i], covs[i] = c, rc
	}
	e.branchBufs[depth], e.covBufs[depth] = cands, covs
	for _, c := range cands {
		e.choose(c)
		e.search(depth + 1)
		e.unchoose()
		if e.aborted {
			break
		}
		// Exclude c from the remaining branches: every solution through c
		// was just enumerated.
		e.alive[c] = false
		e.killed = append(e.killed, c)
	}
	e.undoTo(cMark, kMark)
}

// reduceRoot runs forcing and subsumption to fixpoint before the search
// starts. Forced picks land on the chosen stack (they are in every
// feasible solution given prior kills); subsumed candidates are killed
// permanently (some optimal solution avoids them, by exchange).
func (e *engine) reduceRoot() {
	for changed := true; changed; {
		changed = false
		// Forcing: a target with a single live dominator decides it.
		for {
			_, cnt, forced := e.pickTarget()
			if e.remain == 0 || cnt != 1 {
				break
			}
			e.choose(forced)
			changed = true
		}
		if e.remain == 0 {
			return
		}
		// Subsumption: kill candidate c when another live candidate's
		// residual coverage contains c's (keep the lower index on exact
		// ties). Any superset of c's coverage must dominate c's first
		// residual target, so only that target's coverers are compared.
		for c := 0; c < e.nc; c++ {
			if !e.alive[c] {
				continue
			}
			mask := e.coverRow(int32(c))
			first := -1
			for w, word := range mask {
				if rw := word & e.u[w]; rw != 0 {
					first = w<<6 + bits.TrailingZeros64(rw)
					break
				}
			}
			if first < 0 { // covers nothing undominated anymore
				e.alive[c] = false
				changed = true
				continue
			}
			for _, d := range e.coverers[first] {
				if int(d) == c || !e.alive[d] {
					continue
				}
				dMask := e.coverRow(d)
				subset, equal := true, true
				for w, word := range mask {
					cw, dw := word&e.u[w], dMask[w]&e.u[w]
					if cw&^dw != 0 {
						subset = false
						break
					}
					if cw != dw {
						equal = false
					}
				}
				if subset && (!equal || int(d) < c) {
					e.alive[c] = false
					changed = true
					break
				}
			}
		}
	}
}

// seedGreedy installs the greedy cover of the residual state as the
// incumbent upper bound: repeatedly pick the live candidate covering the
// most undominated targets (lowest index on ties).
func (e *engine) seedGreedy() {
	copy(e.pack, e.u)
	remain := e.remain
	e.best = append(e.best[:0], e.chosen...)
	for remain > 0 {
		bestC, bestGain := int32(-1), 0
		for c := 0; c < e.nc; c++ {
			if !e.alive[c] {
				continue
			}
			mask := e.coverRow(int32(c))
			gain := 0
			for w, word := range mask {
				gain += bits.OnesCount64(word & e.pack[w])
			}
			if gain > bestGain {
				bestC, bestGain = int32(c), gain
			}
		}
		if bestC < 0 {
			break // unreachable: forcing keeps a live coverer per target
		}
		mask := e.coverRow(bestC)
		for w, word := range mask {
			remain -= bits.OnesCount64(word & e.pack[w])
			e.pack[w] &^= word
		}
		e.best = append(e.best, bestC)
	}
	e.bestLen = len(e.best)
}

// solution maps the incumbent back to sorted original vertex labels.
func (e *engine) solution() []int {
	out := make([]int, len(e.best))
	for i, c := range e.best {
		out[i] = int(e.candVert[c])
	}
	sort.Ints(out)
	return out
}

// cloneForBranch copies the mutable search state (masks, stacks, bound)
// for one root branch; the packed structure tables are shared read-only.
func (e *engine) cloneForBranch() *engine {
	cl := &engine{
		nt: e.nt, tw: e.tw, nc: e.nc,
		candVert: e.candVert, cover: e.cover, coverers: e.coverers, ballMask: e.ballMask,
		alive:  append([]bool(nil), e.alive...),
		u:      append([]uint64(nil), e.u...),
		remain: e.remain,
		chosen: append([]int32(nil), e.chosen...),
		deltas: append([]uint64(nil), e.deltas...),
		best:   append([]int32(nil), e.best...),
		bestLen: e.bestLen,
		shared:  e.shared,
		maxNodes: e.maxNodes,
		pack:    make([]uint64, e.tw),
	}
	return cl
}

// solve runs the engine to optimality: root reductions, greedy seeding,
// then sequential search or root-parallel branching over a runner.Pool.
func (e *engine) solve(opt ExactOptions) ([]int, error) {
	e.maxNodes = opt.MaxNodes
	e.reduceRoot()
	if e.remain == 0 {
		e.best = append(e.best[:0], e.chosen...)
		e.bestLen = len(e.best)
		return e.solution(), nil
	}
	e.seedGreedy()
	if opt.Workers > 1 || opt.Pool != nil {
		e.solveParallel(opt.Workers, opt.Pool)
	} else {
		e.search(0)
	}
	if e.aborted {
		return nil, fmt.Errorf("mds: exact search exceeded the %d-node budget", opt.MaxNodes)
	}
	return e.solution(), nil
}

// solveParallel fans the root branches out over the injected worker pool
// (runner.Pool at every production call site) or, absent one, a transient
// set of `workers` goroutines. Every worker prunes against a shared
// atomic upper bound; the final incumbent is the smallest over branches
// (earliest branch on ties), so the returned size is optimal and
// deterministic even though the particular set may vary with scheduling.
func (e *engine) solveParallel(workers int, pool Pool) {
	if len(e.chosen) >= e.bound() || e.remain == 0 {
		e.search(0) // degenerate roots: the sequential entry handles them
		return
	}
	pick, cnt, _ := e.pickTarget()
	if cnt <= 1 {
		e.search(0) // forced root: cheaper sequentially
		return
	}
	cands, _ := e.frameBufs(0)
	for _, c := range e.coverers[pick] {
		if e.alive[c] {
			cands = append(cands, c)
		}
	}
	// Most-covering-first, as in the sequential branch order.
	sort.SliceStable(cands, func(i, j int) bool {
		return e.residCover(cands[i]) > e.residCover(cands[j])
	})
	shared := &atomic.Int64{}
	shared.Store(int64(e.bestLen))
	e.shared = shared
	clones := make([]*engine, len(cands))
	for i := range cands {
		cl := e.cloneForBranch()
		for j := 0; j < i; j++ { // branch i excludes candidates 0..i-1
			cl.alive[cands[j]] = false
		}
		cl.choose(cands[i])
		clones[i] = cl
	}
	submit := make(chan func())
	if pool == nil {
		var fallback sync.WaitGroup
		fallback.Add(workers)
		for i := 0; i < workers; i++ {
			//mdsvet:ignore boundedgo -- bounded fallback pool of exactly `workers` goroutines when no runner.Pool is injected (mds cannot import runner: cycle)
			go func() {
				defer fallback.Done()
				for fn := range submit {
					fn()
				}
			}()
		}
		defer fallback.Wait()
		defer close(submit)
	}
	var wg sync.WaitGroup
	for _, cl := range clones {
		cl := cl
		wg.Add(1)
		task := func() {
			defer wg.Done()
			cl.search(1)
		}
		if pool != nil {
			pool.Submit(task)
		} else {
			submit <- task
		}
	}
	wg.Wait()
	e.shared = nil
	for _, cl := range clones {
		if cl.aborted {
			e.aborted = true
		}
		if cl.bestLen < e.bestLen {
			e.bestLen = cl.bestLen
			e.best = append(e.best[:0], cl.best...)
		}
		e.nodes += cl.nodes
	}
}
