// The pre-bitset branch-and-bound solver, kept verbatim as an unexported
// reference implementation. It is the adjacency-list search that shipped
// before the word-packed engine in bitset.go replaced it on the production
// path: per-node `dominated []bool` allocation, O(n·deg) residual rescans,
// and a per-node sort.Slice. The differential tests (bitset_test.go) and
// the before/after benchmarks (solver_bench_test.go) run it next to the
// engine; nothing else should.
package mds

import (
	"math"
	"sort"

	"localmds/internal/graph"
)

// referenceBDominating runs the old branch-and-bound search on g and
// target, bypassing the forest/treewidth dispatch and the vertex cap. The
// caller is responsible for keeping instances small: the search is
// exponential with only a greedy upper bound and a max-cover lower bound.
func referenceBDominating(g *graph.Graph, target []int) []int {
	target = graph.Dedup(target)
	if len(target) == 0 {
		return nil
	}
	s := newBnbState(g, target)
	s.search(nil)
	out := append([]int(nil), s.best...)
	sort.Ints(out)
	return out
}

// bnbState carries the reference branch-and-bound search for B-dominating
// sets.
type bnbState struct {
	g       *graph.Graph
	inB     []bool
	covers  [][]int // covers[v]: target vertices dominated by picking v
	best    []int
	bestLen int
}

func newBnbState(g *graph.Graph, target []int) *bnbState {
	inB := make([]bool, g.N())
	for _, v := range target {
		inB[v] = true
	}
	covers := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Ball(v, 1) {
			if inB[u] {
				covers[v] = append(covers[v], u)
			}
		}
	}
	// Greedy solution seeds the upper bound.
	greedy := greedyBDominating(g, target, covers)
	return &bnbState{g: g, inB: inB, covers: covers, best: greedy, bestLen: len(greedy)}
}

// search extends the current partial solution; chosen is the picked set.
func (s *bnbState) search(chosen []int) {
	if len(chosen) >= s.bestLen {
		return
	}
	dominated := make([]bool, s.g.N())
	for _, v := range chosen {
		for _, u := range s.covers[v] {
			dominated[u] = true
		}
	}
	// Find the undominated target vertex with the fewest dominators: the
	// strongest branching point.
	pick, pickDeg := -1, math.MaxInt
	remaining := 0
	maxCover := 0
	for v := 0; v < s.g.N(); v++ {
		if !s.inB[v] || dominated[v] {
			continue
		}
		remaining++
		d := s.g.Degree(v) + 1
		if d < pickDeg {
			pick, pickDeg = v, d
		}
	}
	if pick < 0 {
		s.best = append(s.best[:0], chosen...)
		s.bestLen = len(chosen)
		return
	}
	// Lower bound: every new pick dominates at most maxCover *still
	// undominated* targets. Computing the residual coverage per candidate
	// is linear in the adjacency size and prunes far better than the
	// static bound, especially on grids.
	for v := 0; v < s.g.N(); v++ {
		c := 0
		for _, u := range s.covers[v] {
			if !dominated[u] {
				c++
			}
		}
		if c > maxCover {
			maxCover = c
		}
	}
	if maxCover == 0 {
		return // unreachable: every target vertex dominates itself
	}
	lb := len(chosen) + (remaining+maxCover-1)/maxCover
	if lb >= s.bestLen {
		return
	}
	// Branch on the dominators of pick, most-covering first.
	cands := append([]int(nil), s.g.Ball(pick, 1)...)
	sort.Slice(cands, func(i, j int) bool {
		return len(s.covers[cands[i]]) > len(s.covers[cands[j]])
	})
	for _, v := range cands {
		s.search(append(chosen, v))
	}
}
