package mds

import (
	"math/rand"
	"testing"

	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
)

func TestTW2DecompositionRejectsDense(t *testing.T) {
	if _, err := buildTW2Decomposition(gen.Complete(5)); err == nil {
		t.Error("K5 accepted as treewidth <= 2")
	}
	if _, err := buildTW2Decomposition(gen.Grid(3, 3)); err == nil {
		t.Error("3x3 grid accepted as treewidth <= 2")
	}
}

func TestTW2DecompositionAccepts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, g := range []*graph.Graph{
		gen.Cycle(9),
		gen.MaximalOuterplanar(20, rng),
		gen.RandomCactus(30, rng),
		ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 40, T: 5}, rng),
	} {
		bags, err := buildTW2Decomposition(g)
		if err != nil {
			t.Fatalf("decomposition failed: %v", err)
		}
		if len(bags) != g.N() {
			t.Errorf("got %d bags for %d vertices", len(bags), g.N())
		}
		for i, b := range bags {
			if len(b.rest) > 2 {
				t.Errorf("bag %d too large: %v", i, b.rest)
			}
		}
	}
}

func TestTW2KnownValues(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"C3", gen.Cycle(3), 1},
		{"C6", gen.Cycle(6), 2},
		{"C9", gen.Cycle(9), 3},
		{"C10", gen.Cycle(10), 4},
		{"P5", gen.Path(5), 2},
		{"cliquependants-ish theta", nil, 2}, // set below
	}
	theta, err := gen.Theta([]int{2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	tests[5].g = theta
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sol, err := exactMDSTreewidth2(tt.g)
			if err != nil {
				t.Fatalf("tw2: %v", err)
			}
			if !IsDominatingSet(tt.g, sol) {
				t.Fatalf("set %v not dominating", sol)
			}
			if len(sol) != tt.want {
				t.Errorf("|S| = %d, want %d (%v)", len(sol), tt.want, sol)
			}
		})
	}
}

func TestTW2MatchesBnBOnWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 12; i++ {
		var g *graph.Graph
		switch i % 3 {
		case 0:
			g = gen.RandomCactus(28, rng)
		case 1:
			g = gen.MaximalOuterplanar(22, rng)
		default:
			g = ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 26, T: 5}, rng)
		}
		dp, err := exactMDSTreewidth2(g)
		if err != nil {
			t.Fatalf("instance %d: tw2: %v", i, err)
		}
		if !IsDominatingSet(g, dp) {
			t.Fatalf("instance %d: not dominating", i)
		}
		bnb, err := ExactBDominating(g, allVerticesForTest(g))
		if err != nil {
			t.Fatalf("instance %d: bnb: %v", i, err)
		}
		if len(dp) != len(bnb) {
			t.Errorf("instance %d: tw2 %d vs bnb %d", i, len(dp), len(bnb))
		}
	}
}

func TestTW2LargeInstanceFast(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 2000, T: 5}, rng)
	sol, err := ExactMDS(g)
	if err != nil {
		t.Fatalf("ExactMDS on n=%d: %v", g.N(), err)
	}
	if !IsDominatingSet(g, sol) {
		t.Fatal("not dominating")
	}
	if len(sol) < len(TwoPacking(g)) {
		t.Error("below the 2-packing lower bound: not optimal")
	}
}

func TestTW2LargeOuterplanar(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := gen.MaximalOuterplanar(500, rng)
	sol, err := ExactMDS(g)
	if err != nil {
		t.Fatalf("ExactMDS: %v", err)
	}
	if !IsDominatingSet(g, sol) {
		t.Fatal("not dominating")
	}
}

func TestTW2BDominatingMatchesBnB(t *testing.T) {
	// Compare the B-dominating DP against branch and bound on instances
	// small enough for both, with random target subsets.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10; i++ {
		g := gen.RandomCactus(24, rng)
		var target []int
		for v := 0; v < g.N(); v++ {
			if rng.Intn(3) == 0 {
				target = append(target, v)
			}
		}
		if len(target) == 0 {
			target = []int{0}
		}
		required := make([]bool, g.N())
		for _, v := range target {
			required[v] = true
		}
		dp, err := exactTW2BDominating(g, required)
		if err != nil {
			t.Fatalf("instance %d: dp: %v", i, err)
		}
		if !DominatesSet(g, dp, target) {
			t.Fatalf("instance %d: DP set does not dominate the target", i)
		}
		bnb := bnbBDominatingForTest(g, target)
		if len(dp) != len(bnb) {
			t.Errorf("instance %d: dp %d vs bnb %d", i, len(dp), len(bnb))
		}
	}
}

// bnbBDominatingForTest forces the branch-and-bound path.
func bnbBDominatingForTest(g *graph.Graph, target []int) []int {
	s := newBnbState(g, graph.Dedup(target))
	s.search(nil)
	out := append([]int(nil), s.best...)
	return out
}

func TestTW2BDominatingLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := gen.RandomCactus(800, rng)
	target := []int{0, g.N() / 2, g.N() - 1}
	sol, err := ExactBDominating(g, target)
	if err != nil {
		t.Fatalf("ExactBDominating: %v", err)
	}
	if !DominatesSet(g, sol, target) {
		t.Fatal("not dominating the target")
	}
	if len(sol) > len(target) {
		t.Errorf("|S| = %d > |target| = %d (taking targets themselves suffices)", len(sol), len(target))
	}
}

func TestTW2MVCMatchesBnB(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 12; i++ {
		var g *graph.Graph
		switch i % 3 {
		case 0:
			g = gen.RandomCactus(20, rng)
		case 1:
			g = gen.MaximalOuterplanar(20, rng)
		default:
			g = ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 24, T: 5}, rng)
		}
		dp, err := exactMVCTreewidth2(g)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if !IsVertexCover(g, dp) {
			t.Fatalf("instance %d: DP set is not a cover", i)
		}
		bnb := bnbMVCForTest(t, g)
		if len(dp) != len(bnb) {
			t.Errorf("instance %d: dp %d vs bnb %d", i, len(dp), len(bnb))
		}
	}
}

// bnbMVCForTest forces the branch-and-bound MVC path via a wrapper graph
// trick... simpler: replicate the B&B entry point by calling ExactMVC on a
// graph the DP rejects is intrusive; instead compare against the matching
// 2-approximation sandwich and small known values elsewhere. Here we add a
// high-treewidth vertex: attach a K4 via one vertex so the DP still
// works... Instead, recompute with the private B&B by temporarily checking
// sizes: the exported ExactMVC dispatches to the DP for these instances, so
// build the reference via brute subset search for small n.
func bnbMVCForTest(t *testing.T, g *graph.Graph) []int {
	t.Helper()
	n := g.N()
	if n > 32 {
		t.Fatalf("reference solver limited to 32 vertices, got %d", n)
	}
	// Greedy upper bound to limit subset sizes.
	best := MatchingVertexCover(g)
	// Iterative deepening over cover sizes.
	for k := 0; k < len(best); k++ {
		if sol := findCoverOfSize(g, k); sol != nil {
			return sol
		}
	}
	return best
}

// findCoverOfSize searches for a vertex cover of exactly size k by
// recursive edge branching.
func findCoverOfSize(g *graph.Graph, k int) []int {
	var rec func(removed []bool, budget int, chosen []int) []int
	rec = func(removed []bool, budget int, chosen []int) []int {
		// Find an uncovered edge.
		var eu, ev = -1, -1
		for u := 0; u < g.N() && eu < 0; u++ {
			if removed[u] {
				continue
			}
			for _, w := range g.Neighbors(u) {
				if !removed[w] {
					eu, ev = u, w
					break
				}
			}
		}
		if eu < 0 {
			return append([]int(nil), chosen...)
		}
		if budget == 0 {
			return nil
		}
		for _, pick := range []int{eu, ev} {
			removed[pick] = true
			if sol := rec(removed, budget-1, append(chosen, pick)); sol != nil {
				removed[pick] = false
				return sol
			}
			removed[pick] = false
		}
		return nil
	}
	return rec(make([]bool, g.N()), k, nil)
}

func TestTW2MVCLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 1500, T: 5}, rng)
	sol, err := ExactMVC(g)
	if err != nil {
		t.Fatalf("ExactMVC: %v", err)
	}
	if !IsVertexCover(g, sol) {
		t.Fatal("not a cover")
	}
	// Sandwich against the matching bound.
	if 2*len(sol) < len(MatchingVertexCover(g)) {
		t.Error("below half the matching cover: impossible for an optimum")
	}
}
