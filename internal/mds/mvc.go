package mds

import (
	"fmt"
	"sort"

	"localmds/internal/graph"
)

// MaxExactMVCVertices bounds the instances the exact MVC solver accepts.
const MaxExactMVCVertices = 200

// ExactMVC returns a minimum vertex cover of g. Treewidth-<=2 inputs
// dispatch to the unbounded DP; the rest run branch and bound with a
// matching lower bound, capped at MaxExactMVCVertices.
func ExactMVC(g *graph.Graph) ([]int, error) {
	if sol, err := exactMVCTreewidth2(g); err == nil {
		sort.Ints(sol)
		return sol, nil
	}
	if g.N() > MaxExactMVCVertices {
		return nil, fmt.Errorf("mds: graph has %d vertices, exact MVC capped at %d", g.N(), MaxExactMVCVertices)
	}
	// Upper bound: greedy matching 2-approximation.
	best := MatchingVertexCover(g)
	removed := make([]bool, g.N())
	var cur []int
	var rec func()
	rec = func() {
		if len(cur) >= len(best) {
			return
		}
		// Lower bound via greedy matching on the residual graph.
		if len(cur)+residualMatchingSize(g, removed) >= len(best) {
			return
		}
		// Pick the vertex with the most uncovered incident edges.
		u := pickBranchVertex(g, removed)
		if u < 0 {
			best = append(best[:0:0], cur...)
			return
		}
		// Branch 1: u in the cover.
		removed[u] = true
		cur = append(cur, u)
		rec()
		cur = cur[:len(cur)-1]
		// Branch 2: u not in the cover, so all its uncovered neighbors
		// must be (u stays marked removed: its edges are covered from the
		// other side).
		var added []int
		for _, w := range g.Neighbors(u) {
			if !removed[w] {
				removed[w] = true
				cur = append(cur, w)
				added = append(added, w)
			}
		}
		rec()
		for _, w := range added {
			removed[w] = false
		}
		cur = cur[:len(cur)-len(added)]
		removed[u] = false
	}
	rec()
	sort.Ints(best)
	return best, nil
}

// pickBranchVertex returns the non-removed vertex with the most uncovered
// incident edges, or -1 when every edge is covered.
func pickBranchVertex(g *graph.Graph, removed []bool) int {
	bestU, bestDeg := -1, 0
	for u := 0; u < g.N(); u++ {
		if removed[u] {
			continue
		}
		deg := 0
		for _, w := range g.Neighbors(u) {
			if !removed[w] {
				deg++
			}
		}
		if deg > bestDeg {
			bestU, bestDeg = u, deg
		}
	}
	return bestU
}

// residualMatchingSize greedily matches uncovered edges; a matching of size
// k forces at least k more cover vertices.
func residualMatchingSize(g *graph.Graph, removed []bool) int {
	used := make([]bool, g.N())
	size := 0
	for u := 0; u < g.N(); u++ {
		if removed[u] || used[u] {
			continue
		}
		for _, w := range g.Neighbors(u) {
			if !removed[w] && !used[w] && w != u {
				used[u], used[w] = true, true
				size++
				break
			}
		}
	}
	return size
}

// MatchingVertexCover returns the classical 2-approximate vertex cover:
// both endpoints of a greedy maximal matching.
func MatchingVertexCover(g *graph.Graph) []int {
	used := make([]bool, g.N())
	var cover []int
	g.VisitEdges(func(u, v int) {
		if !used[u] && !used[v] {
			used[u], used[v] = true, true
			cover = append(cover, u, v)
		}
	})
	sort.Ints(cover)
	return cover
}
