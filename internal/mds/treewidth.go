package mds

import (
	"fmt"
	"sort"

	"localmds/internal/graph"
)

// Treewidth-2 exact MDS.
//
// Every workload class in this repository (fans, ladder strips, cycles,
// cacti, outerplanar graphs, and their cut-vertex gluings from Ding's
// structure theorem) has treewidth at most two, where the branch-and-bound
// solver degrades badly. This file implements the classic dominating-set
// dynamic program over a width-2 tree decomposition obtained from a
// degree-<=2 elimination order, giving exact optima in linear-ish time at
// any instance size.
//
// Decomposition: repeatedly eliminate a vertex of current degree <= 2,
// adding a fill edge between its two neighbors when needed. The bag of v is
// {v} ∪ curN(v); the parent of v's bag is the bag of the member of curN(v)
// eliminated first. This is a valid tree decomposition of the chordal
// completion with bags of size <= 3, each real edge inside the bag of its
// first-eliminated endpoint.
//
// DP state: per bag vertex one of three values — in the set (stIn),
// not in the set but dominated by subtree decisions (stDom), not in the set
// and not yet dominated (stUndom). A vertex's membership is counted in its
// own bag (where it is forgotten), and its domination is resolved there
// too: all potential dominators are either in the bag (later-eliminated
// real neighbors) or belong to child bags (earlier-eliminated neighbors,
// whose contribution arrives through the child profiles).

// vertexState is the per-vertex DP value.
type vertexState uint8

const (
	stIn vertexState = iota
	stDom
	stUndom
	numStates
)

// twBag is one elimination bag.
type twBag struct {
	v        int   // the vertex eliminated (forgotten) here
	rest     []int // the other bag members, sorted (0..2 of them)
	parent   int   // bag index of the parent, -1 for roots
	children []int // bag indices attaching here
}

// buildTW2Decomposition returns the elimination bags, or an error when the
// graph has treewidth greater than two (no degree-<=2 vertex available).
func buildTW2Decomposition(g *graph.Graph) ([]twBag, error) {
	n := g.N()
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int]bool, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			adj[v][u] = true
		}
	}
	eliminated := make([]bool, n)
	elimPos := make([]int, n)
	bags := make([]twBag, 0, n)
	bagIndex := make(map[int]int, n) // vertex -> its bag index
	for step := 0; step < n; step++ {
		// Pick the smallest-index vertex of current degree <= 2.
		pick := -1
		for v := 0; v < n; v++ {
			if !eliminated[v] && len(adj[v]) <= 2 {
				pick = v
				break
			}
		}
		if pick < 0 {
			return nil, fmt.Errorf("mds: treewidth exceeds 2 (no low-degree vertex at step %d)", step)
		}
		rest := make([]int, 0, 2)
		for u := range adj[pick] {
			rest = append(rest, u)
		}
		sort.Ints(rest)
		if len(rest) == 2 {
			a, b := rest[0], rest[1]
			if !adj[a][b] {
				adj[a][b] = true
				adj[b][a] = true
			}
		}
		for _, u := range rest {
			delete(adj[u], pick)
		}
		eliminated[pick] = true
		elimPos[pick] = step
		bagIndex[pick] = len(bags)
		bags = append(bags, twBag{v: pick, rest: rest, parent: -1})
	}
	// Parents: the member of rest eliminated first.
	for i := range bags {
		first := -1
		for _, u := range bags[i].rest {
			if first < 0 || elimPos[u] < elimPos[first] {
				first = u
			}
		}
		if first >= 0 {
			p := bagIndex[first]
			bags[i].parent = p
			bags[p].children = append(bags[p].children, i)
		}
	}
	return bags, nil
}

// profile encodes the states of a bag's rest vertices (at most two), in
// rest order: rest[0]*1 + rest[1]*3.
type profile uint8

func numProfiles(restLen int) int {
	p := 1
	for i := 0; i < restLen; i++ {
		p *= int(numStates)
	}
	return p
}

func stateOf(p profile, slot int) vertexState {
	for i := 0; i < slot; i++ {
		p /= profile(numStates)
	}
	return vertexState(p % profile(numStates))
}

func withState(p profile, slot int, s vertexState) profile {
	base := profile(1)
	for i := 0; i < slot; i++ {
		base *= profile(numStates)
	}
	cur := stateOf(p, slot)
	return p - base*profile(cur) + base*profile(s)
}

const twInf = 1 << 29

// exactMDSTreewidth2 solves MDS exactly on a treewidth-<=2 graph, returning
// the solution set, or an error if the decomposition fails.
func exactMDSTreewidth2(g *graph.Graph) ([]int, error) {
	return exactTW2BDominating(g, nil)
}

// exactTW2BDominating solves the B-dominating problem (MDS(G, B), §2) on a
// treewidth-<=2 graph: only vertices with required[v] set must end up
// dominated. required == nil requires everyone.
func exactTW2BDominating(g *graph.Graph, required []bool) ([]int, error) {
	bags, err := buildTW2Decomposition(g)
	if err != nil {
		return nil, err
	}
	mustDominate := func(v int) bool { return required == nil || required[v] }
	type entry struct {
		cost int
		// choice records, for reconstruction: the state of bag.v plus the
		// chosen child profiles, indexed as in bag.children.
		vState vertexState
		childP []profile
	}
	// up[i][p]: best cost for bag i when its rest vertices carry profile p
	// (their set-membership and domination-from-below as seen by the
	// parent).
	up := make([][]entry, len(bags))

	realAdj := func(a, b int) bool { return g.HasEdge(a, b) }

	for i, bag := range bags { // children precede parents by construction
		restLen := len(bag.rest)
		slots := append([]int{bag.v}, bag.rest...) // slot 0 = v
		// full[q]: best cost over full-bag profiles q (slot 0 = v state,
		// slots 1.. = rest states), before enforcing v's resolution.
		fullSize := numProfiles(restLen + 1)
		full := make([]int, fullSize)
		fullChoice := make([][]profile, fullSize)
		for q := range full {
			full[q] = 0
			fullChoice[q] = make([]profile, len(bag.children))
		}
		// The base cost: v IN costs 1; rest vertices are counted in their
		// own bags. A state is only self-consistent if the in-bag real
		// edges justify claimed domination... domination claims can also
		// come from children, so consistency is enforced by construction:
		// we build profiles from "chosen in-bits" plus accumulated
		// domination, not free-form. Concretely: enumerate in-bits of all
		// slots; domination bits start as "dominated by an in-bag real
		// neighbor that is IN"; children then OR in their contributions.
		// Profiles with stDom that lack any such justification are
		// unreachable and stay at twInf.
		for q := 0; q < fullSize; q++ {
			full[q] = twInf
		}
		var inBits func(slot int, q profile)
		inBits = func(slot int, q profile) {
			if slot == len(slots) {
				cost := 0
				if stateOf(q, 0) == stIn {
					cost = 1
				}
				full[q] = cost
				return
			}
			inBits(slot+1, withState(q, slot, stIn))
			inBits(slot+1, withState(q, slot, stUndom))
		}
		inBits(0, 0)
		// Upgrade: in-bag real-edge domination (stUndom -> stDom when a
		// real in-bag neighbor is IN).
		upgraded := make([]int, fullSize)
		for q := range upgraded {
			upgraded[q] = twInf
		}
		for q := 0; q < fullSize; q++ {
			if full[q] >= twInf {
				continue
			}
			nq := profile(q)
			for a := 0; a < len(slots); a++ {
				if stateOf(profile(q), a) != stUndom {
					continue
				}
				for b := 0; b < len(slots); b++ {
					if a != b && stateOf(profile(q), b) == stIn && realAdj(slots[a], slots[b]) {
						nq = withState(nq, a, stDom)
						break
					}
				}
			}
			if full[q] < upgraded[nq] {
				upgraded[nq] = full[q]
			}
		}
		full = upgraded
		// Fold in children one at a time: child bag rest ⊆ slots. The
		// child profile must match in-bits on shared vertices; a child
		// stDom claim upgrades the shared vertex's state.
		for ci, c := range bag.children {
			child := bags[c]
			childSlots := make([]int, len(child.rest))
			for k, u := range child.rest {
				childSlots[k] = slotIndex(slots, u)
			}
			next := make([]int, fullSize)
			nextChoice := make([][]profile, fullSize)
			for q := range next {
				next[q] = twInf
			}
			for q := 0; q < fullSize; q++ {
				if full[q] >= twInf {
					continue
				}
				for cp := 0; cp < numProfiles(len(child.rest)); cp++ {
					centry := up[c][cp]
					if centry.cost >= twInf {
						continue
					}
					// Compatibility and resulting profile.
					nq := profile(q)
					ok := true
					for k, slot := range childSlots {
						cs := stateOf(profile(cp), k)
						ps := stateOf(nq, slot)
						if (cs == stIn) != (ps == stIn) {
							ok = false
							break
						}
						if cs == stDom && ps == stUndom {
							nq = withState(nq, slot, stDom)
						}
					}
					if !ok {
						continue
					}
					cost := full[q] + centry.cost
					if cost < next[nq] {
						next[nq] = cost
						nc := append([]profile(nil), fullChoice[q]...)
						if nc == nil {
							nc = make([]profile, len(bag.children))
						}
						nc[ci] = profile(cp)
						nextChoice[nq] = nc
					}
				}
			}
			full = next
			fullChoice = nextChoice
		}
		// Forget v: require it resolved; project onto rest profiles.
		up[i] = make([]entry, numProfiles(restLen))
		for p := range up[i] {
			up[i][p] = entry{cost: twInf}
		}
		for q := 0; q < fullSize; q++ {
			if full[q] >= twInf {
				continue
			}
			vs := stateOf(profile(q), 0)
			if vs == stUndom && mustDominate(bag.v) {
				continue
			}
			rp := profile(0)
			for k := range bag.rest {
				rp = withState(rp, k, stateOf(profile(q), k+1))
			}
			if full[q] < up[i][rp].cost {
				up[i][rp] = entry{cost: full[q], vState: vs, childP: fullChoice[q]}
			}
		}
	}

	// Collect: roots sum their best entries; reconstruct top-down.
	inSet := make([]bool, g.N())
	var walk func(bagIdx int, p profile) error
	walk = func(bagIdx int, p profile) error {
		e := up[bagIdx][p]
		if e.cost >= twInf {
			return fmt.Errorf("mds: treewidth DP reconstruction hit an infeasible entry")
		}
		if e.vState == stIn {
			inSet[bags[bagIdx].v] = true
		}
		for ci, c := range bags[bagIdx].children {
			if err := walk(c, e.childP[ci]); err != nil {
				return err
			}
		}
		return nil
	}
	for i, bag := range bags {
		if bag.parent >= 0 {
			continue
		}
		// Root bags have empty rest: single profile 0.
		if len(bag.rest) != 0 {
			return nil, fmt.Errorf("mds: root bag %d has nonempty rest %v", i, bag.rest)
		}
		if err := walk(i, 0); err != nil {
			return nil, err
		}
	}
	var sol []int
	for v, in := range inSet {
		if in {
			sol = append(sol, v)
		}
	}
	return sol, nil
}

func slotIndex(slots []int, u int) int {
	for i, s := range slots {
		if s == u {
			return i
		}
	}
	return -1
}
