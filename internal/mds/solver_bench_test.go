package mds

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
)

// BenchmarkExactMDS is the before/after surface for the bitset engine: it
// forces the branch-and-bound path (no forest/treewidth dispatch) so
// engine and reference search the same problem. grid-NxN is the old
// solver's documented worst case — the reason the Table 1 grid row was
// capped at side 7. The reference ladder stops at 9x9 (~2s/op here);
// ding-100 under the reference does not terminate in CI time at all
// (>300s for the first iteration), which is why the old benchmark only
// ever exercised it through the treewidth DP. EXPERIMENTS.md "Exact
// solver" records the numbers.
func BenchmarkExactMDS(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	cases := []struct {
		name    string
		g       *graph.Graph
		refSkip string // non-empty: why the reference leg is not run
	}{
		{"ding-50", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 50, T: 5}, rng), ""},
		{"ding-100", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 100, T: 5}, rand.New(rand.NewSource(12))), "reference needs >300s per op"},
		{"grid-7x7", gen.Grid(7, 7), ""},
		{"grid-8x8", gen.Grid(8, 8), ""},
		{"grid-9x9", gen.Grid(9, 9), ""},
		{"grid-10x10", gen.Grid(10, 10), "reference needs >>10min per op"},
		{"grid-11x11", gen.Grid(11, 11), "reference needs >>10min per op"},
	}
	for _, tc := range cases {
		target := allVertices(tc.g)
		b.Run(tc.name+"/engine", func(b *testing.B) {
			b.ReportAllocs()
			var size int
			for i := 0; i < b.N; i++ {
				sol, err := newEngineGraph(tc.g, target).solve(ExactOptions{})
				if err != nil {
					b.Fatal(err)
				}
				size = len(sol)
			}
			b.ReportMetric(float64(size), "opt")
		})
		b.Run(tc.name+"/reference", func(b *testing.B) {
			if tc.refSkip != "" && os.Getenv("LOCALMDS_BENCH_SLOW") == "" {
				b.Skipf("%s (set LOCALMDS_BENCH_SLOW=1 to run)", tc.refSkip)
			}
			b.ReportAllocs()
			var size int
			for i := 0; i < b.N; i++ {
				size = len(referenceBDominating(tc.g, target))
			}
			b.ReportMetric(float64(size), "opt")
		})
	}
}

// BenchmarkExactMDSParallel measures root-parallel branching on the
// largest grid the sequential engine handles in seconds.
func BenchmarkExactMDSParallel(b *testing.B) {
	g := gen.Grid(10, 10)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("grid-10x10/workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opt := ExactOptions{}
				if workers > 1 {
					opt.Workers = workers
				}
				if _, err := ExactMDSOpt(g, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
