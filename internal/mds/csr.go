// CSR-native solvers: ports of the hot Algorithm 1 step-4 machinery
// (domination predicates, the greedy B-dominating baseline, and the exact
// branch-and-bound) that run over a frozen graph.CSR instead of the
// allocating *graph.Graph accessors. Each port is behaviorally identical to
// its adjacency-list counterpart — the pipeline equivalence suite in
// internal/core depends on that — but keeps its state in flat reusable
// arrays, so solving many components in a row touches the allocator only
// for the returned solutions.
package mds

import (
	"fmt"
	"sort"

	"localmds/internal/graph"
)

// DominatesSetCSR reports whether every vertex of target is in s or
// adjacent to a member of s, over the CSR view.
func DominatesSetCSR(c *graph.CSR, s, target []int) bool {
	n := c.N()
	dominated := make([]bool, n)
	for _, v := range s {
		if v < 0 || v >= n {
			return false
		}
		dominated[v] = true
		for _, u := range c.Row(v) {
			dominated[u] = true
		}
	}
	for _, v := range target {
		if !dominated[v] {
			return false
		}
	}
	return true
}

// IsDominatingSetCSR reports whether s dominates every vertex of c.
func IsDominatingSetCSR(c *graph.CSR, s []int) bool {
	n := c.N()
	dominated := make([]bool, n)
	for _, v := range s {
		if v < 0 || v >= n {
			return false
		}
		dominated[v] = true
		for _, u := range c.Row(v) {
			dominated[u] = true
		}
	}
	for v := 0; v < n; v++ {
		if !dominated[v] {
			return false
		}
	}
	return true
}

// GreedyBDominatingCSR returns the classical greedy cover of target over
// the CSR view: repeatedly pick the vertex dominating the most
// still-needed target vertices (smallest index on ties), until target is
// covered. It selects exactly the vertices the adjacency-list greedy
// picks.
func GreedyBDominatingCSR(c *graph.CSR, target []int) []int {
	n := c.N()
	need := make([]bool, n)
	remaining := 0
	for _, v := range target {
		if !need[v] {
			need[v] = true
			remaining++
		}
	}
	var sol []int
	for remaining > 0 {
		bestV, bestGain := -1, 0
		for v := 0; v < n; v++ {
			gain := 0
			if need[v] {
				gain++
			}
			for _, u := range c.Row(v) {
				if need[u] {
					gain++
				}
			}
			if gain > bestGain {
				bestV, bestGain = v, gain
			}
		}
		if bestV < 0 {
			break // unreachable: every needed vertex dominates itself
		}
		sol = append(sol, bestV)
		if need[bestV] {
			need[bestV] = false
			remaining--
		}
		for _, u := range c.Row(bestV) {
			if need[u] {
				need[u] = false
				remaining--
			}
		}
	}
	sort.Ints(sol)
	return sol
}

// ExactBDominatingCSR returns a minimum set S dominating every vertex of
// target, over the CSR view. The dispatch mirrors ExactBDominating exactly
// — treewidth-<=2 inputs go to the unbounded DP (through a one-shot bridge
// graph), the rest to the same bitset branch-and-bound engine capped at
// MaxExactMDSVertices — so both entry points return identical sets on
// identical inputs.
func ExactBDominatingCSR(c *graph.CSR, target []int) ([]int, error) {
	return ExactBDominatingCSROpt(c, target, ExactOptions{})
}

// ExactBDominatingCSROpt is ExactBDominatingCSR with engine options.
func ExactBDominatingCSROpt(c *graph.CSR, target []int, opt ExactOptions) ([]int, error) {
	target = graph.Dedup(target)
	if len(target) == 0 {
		return nil, nil
	}
	n := c.N()
	required := make([]bool, n)
	for _, v := range target {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("mds: target vertex %d out of range", v)
		}
		required[v] = true
	}
	if sol, err := exactTW2BDominating(graph.FromCSR(c), required); err == nil {
		return sol, nil
	}
	if err := checkExactCap(n, opt); err != nil {
		return nil, err
	}
	return newEngineCSR(c, target).solve(opt)
}
