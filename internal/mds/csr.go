// CSR-native solvers: ports of the hot Algorithm 1 step-4 machinery
// (domination predicates, the greedy B-dominating baseline, and the exact
// branch-and-bound) that run over a frozen graph.CSR instead of the
// allocating *graph.Graph accessors. Each port is behaviorally identical to
// its adjacency-list counterpart — the pipeline equivalence suite in
// internal/core depends on that — but keeps its state in flat reusable
// arrays, so solving many components in a row touches the allocator only
// for the returned solutions.
package mds

import (
	"fmt"
	"math"
	"sort"

	"localmds/internal/graph"
)

// DominatesSetCSR reports whether every vertex of target is in s or
// adjacent to a member of s, over the CSR view.
func DominatesSetCSR(c *graph.CSR, s, target []int) bool {
	n := c.N()
	dominated := make([]bool, n)
	for _, v := range s {
		if v < 0 || v >= n {
			return false
		}
		dominated[v] = true
		for _, u := range c.Row(v) {
			dominated[u] = true
		}
	}
	for _, v := range target {
		if !dominated[v] {
			return false
		}
	}
	return true
}

// IsDominatingSetCSR reports whether s dominates every vertex of c.
func IsDominatingSetCSR(c *graph.CSR, s []int) bool {
	n := c.N()
	dominated := make([]bool, n)
	for _, v := range s {
		if v < 0 || v >= n {
			return false
		}
		dominated[v] = true
		for _, u := range c.Row(v) {
			dominated[u] = true
		}
	}
	for v := 0; v < n; v++ {
		if !dominated[v] {
			return false
		}
	}
	return true
}

// GreedyBDominatingCSR returns the classical greedy cover of target over
// the CSR view: repeatedly pick the vertex dominating the most
// still-needed target vertices (smallest index on ties), until target is
// covered. It selects exactly the vertices the adjacency-list greedy
// picks.
func GreedyBDominatingCSR(c *graph.CSR, target []int) []int {
	n := c.N()
	need := make([]bool, n)
	remaining := 0
	for _, v := range target {
		if !need[v] {
			need[v] = true
			remaining++
		}
	}
	var sol []int
	for remaining > 0 {
		bestV, bestGain := -1, 0
		for v := 0; v < n; v++ {
			gain := 0
			if need[v] {
				gain++
			}
			for _, u := range c.Row(v) {
				if need[u] {
					gain++
				}
			}
			if gain > bestGain {
				bestV, bestGain = v, gain
			}
		}
		if bestV < 0 {
			break // unreachable: every needed vertex dominates itself
		}
		sol = append(sol, bestV)
		if need[bestV] {
			need[bestV] = false
			remaining--
		}
		for _, u := range c.Row(bestV) {
			if need[u] {
				need[u] = false
				remaining--
			}
		}
	}
	sort.Ints(sol)
	return sol
}

// ExactBDominatingCSR returns a minimum set S dominating every vertex of
// target, over the CSR view. The dispatch mirrors ExactBDominating exactly
// — treewidth-<=2 inputs go to the unbounded DP (through a one-shot bridge
// graph), the rest to branch and bound capped at MaxExactMDSVertices — so
// both entry points return identical sets on identical inputs.
func ExactBDominatingCSR(c *graph.CSR, target []int) ([]int, error) {
	target = graph.Dedup(target)
	if len(target) == 0 {
		return nil, nil
	}
	n := c.N()
	required := make([]bool, n)
	for _, v := range target {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("mds: target vertex %d out of range", v)
		}
		required[v] = true
	}
	if sol, err := exactTW2BDominating(graph.FromCSR(c), required); err == nil {
		return sol, nil
	}
	if n > MaxExactMDSVertices {
		return nil, fmt.Errorf("mds: graph has %d vertices, exact solver capped at %d", n, MaxExactMDSVertices)
	}
	s := newBnbCSR(c, target)
	s.search(nil)
	out := make([]int, len(s.best))
	for i, v := range s.best {
		out[i] = int(v)
	}
	sort.Ints(out)
	return out, nil
}

// bnbCSR is the CSR port of bnbState. It explores the same search tree in
// the same order (same branching vertex, same candidate ordering, same
// bounds), but maintains domination counts incrementally instead of
// recomputing a fresh dominated array at every node.
type bnbCSR struct {
	c       *graph.CSR
	inB     []bool
	covers  [][]int32 // covers[v]: target vertices dominated by picking v (ascending)
	cnt     []int32   // cnt[u]: how many chosen vertices dominate target u
	remain  int       // undominated target count
	best    []int32
	bestLen int
}

func newBnbCSR(c *graph.CSR, target []int) *bnbCSR {
	n := c.N()
	inB := make([]bool, n)
	for _, v := range target {
		inB[v] = true
	}
	// covers rows share one backing buffer: first a counting pass, then a
	// fill pass. covers[v] enumerates N[v] ∩ target in ascending order,
	// matching the Ball(v, 1) order of the adjacency-list solver.
	size := make([]int32, n+1)
	for v := 0; v < n; v++ {
		d := int32(0)
		if inB[v] {
			d++
		}
		for _, u := range c.Row(v) {
			if inB[u] {
				d++
			}
		}
		size[v+1] = size[v] + d
	}
	buf := make([]int32, size[n])
	covers := make([][]int32, n)
	for v := 0; v < n; v++ {
		row := buf[size[v]:size[v]:size[v+1]]
		self := int32(v)
		placed := !inB[v]
		for _, u := range c.Row(v) {
			if !placed && self < u {
				row = append(row, self)
				placed = true
			}
			if inB[u] {
				row = append(row, u)
			}
		}
		if !placed {
			row = append(row, self)
		}
		covers[v] = row
	}
	s := &bnbCSR{c: c, inB: inB, covers: covers, cnt: make([]int32, n)}
	greedy := GreedyBDominatingCSR(c, target)
	s.best = make([]int32, len(greedy))
	for i, v := range greedy {
		s.best[i] = int32(v)
	}
	s.bestLen = len(greedy)
	s.remain = len(target) // target is duplicate-free by the caller's Dedup
	return s
}

// choose marks v as picked, updating domination counts.
func (s *bnbCSR) choose(v int32) {
	for _, u := range s.covers[v] {
		if s.cnt[u] == 0 {
			s.remain--
		}
		s.cnt[u]++
	}
}

// unchoose reverts choose(v).
func (s *bnbCSR) unchoose(v int32) {
	for _, u := range s.covers[v] {
		s.cnt[u]--
		if s.cnt[u] == 0 {
			s.remain++
		}
	}
}

// search extends the current partial solution, mirroring bnbState.search.
func (s *bnbCSR) search(chosen []int32) {
	if len(chosen) >= s.bestLen {
		return
	}
	// Find the undominated target vertex with the fewest dominators.
	pick, pickDeg := -1, math.MaxInt
	for v := 0; v < s.c.N(); v++ {
		if !s.inB[v] || s.cnt[v] > 0 {
			continue
		}
		if d := s.c.Degree(v) + 1; d < pickDeg {
			pick, pickDeg = v, d
		}
	}
	if pick < 0 {
		s.best = append(s.best[:0], chosen...)
		s.bestLen = len(chosen)
		return
	}
	// Lower bound: every new pick dominates at most maxCover still
	// undominated targets.
	maxCover := 0
	for v := 0; v < s.c.N(); v++ {
		cov := 0
		for _, u := range s.covers[v] {
			if s.cnt[u] == 0 {
				cov++
			}
		}
		if cov > maxCover {
			maxCover = cov
		}
	}
	if maxCover == 0 {
		return // unreachable: every target vertex dominates itself
	}
	if lb := len(chosen) + (s.remain+maxCover-1)/maxCover; lb >= s.bestLen {
		return
	}
	// Branch on the dominators of pick, most-covering first (same
	// candidate list and comparator as the adjacency-list solver, so the
	// unstable sort produces the same order).
	cands := s.c.AppendClosed(make([]int32, 0, s.c.Degree(pick)+1), pick)
	sort.Slice(cands, func(i, j int) bool {
		return len(s.covers[cands[i]]) > len(s.covers[cands[j]])
	})
	for _, v := range cands {
		s.choose(v)
		s.search(append(chosen, v))
		s.unchoose(v)
	}
}
