// Package mds provides centralized (sequential) solvers for Minimum
// Dominating Set and Minimum Vertex Cover: exact branch-and-bound solvers
// used both inside the paper's brute-force step (Algorithm 1, step 4) and to
// compute OPT for approximation-ratio measurements, plus classic greedy
// baselines and verification predicates.
package mds

import (
	"fmt"
	"math"
	"sort"

	"localmds/internal/graph"
)

// IsDominatingSet reports whether s dominates every vertex of g: each
// vertex is in s or adjacent to a member of s.
func IsDominatingSet(g *graph.Graph, s []int) bool {
	return DominatesSet(g, s, allVertices(g))
}

// DominatesSet reports whether every vertex of target is in s or adjacent
// to a member of s (s is "B-dominating" for B = target, §2).
func DominatesSet(g *graph.Graph, s, target []int) bool {
	dominated := make([]bool, g.N())
	for _, v := range s {
		if v < 0 || v >= g.N() {
			return false
		}
		dominated[v] = true
		for _, u := range g.Neighbors(v) {
			dominated[u] = true
		}
	}
	for _, v := range target {
		if !dominated[v] {
			return false
		}
	}
	return true
}

// IsVertexCover reports whether s touches every edge of g.
func IsVertexCover(g *graph.Graph, s []int) bool {
	in := make([]bool, g.N())
	for _, v := range s {
		if v < 0 || v >= g.N() {
			return false
		}
		in[v] = true
	}
	for u := 0; u < g.N(); u++ {
		if in[u] {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if u < v && !in[v] {
				return false
			}
		}
	}
	return true
}

// MaxExactMDSVertices bounds the instances the exact MDS solver accepts;
// branch and bound is exponential in the worst case, and this limit keeps
// worst cases to seconds at most on sparse graphs.
const MaxExactMDSVertices = 160

// ExactMDS returns a minimum dominating set of g. Forests dispatch to a
// linear-time DP and treewidth-<=2 graphs (all this repository's workload
// classes) to a width-2 tree-decomposition DP, both with no size limit;
// everything else runs branch and bound, which requires
// g.N() <= MaxExactMDSVertices.
func ExactMDS(g *graph.Graph) ([]int, error) {
	if IsForest(g) {
		return exactMDSForest(g), nil
	}
	if sol, err := exactMDSTreewidth2(g); err == nil {
		return sol, nil
	}
	return ExactBDominating(g, allVertices(g))
}

// ExactBDominating returns a minimum set S ⊆ V(g) dominating every vertex
// of target (MDS(G, B) in the paper's notation, B = target). Candidates are
// restricted to N[target], which is without loss of optimality.
// Treewidth-<=2 inputs dispatch to the unbounded DP; the rest run branch
// and bound, capped at MaxExactMDSVertices.
func ExactBDominating(g *graph.Graph, target []int) ([]int, error) {
	target = graph.Dedup(target)
	if len(target) == 0 {
		return nil, nil
	}
	required := make([]bool, g.N())
	for _, v := range target {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("mds: target vertex %d out of range", v)
		}
		required[v] = true
	}
	if sol, err := exactTW2BDominating(g, required); err == nil {
		return sol, nil
	}
	if g.N() > MaxExactMDSVertices {
		return nil, fmt.Errorf("mds: graph has %d vertices, exact solver capped at %d", g.N(), MaxExactMDSVertices)
	}
	s := newBnbState(g, target)
	s.search(nil)
	out := append([]int(nil), s.best...)
	sort.Ints(out)
	return out, nil
}

// bnbState carries the branch-and-bound search for B-dominating sets.
type bnbState struct {
	g       *graph.Graph
	inB     []bool
	covers  [][]int // covers[v]: target vertices dominated by picking v
	best    []int
	bestLen int
}

func newBnbState(g *graph.Graph, target []int) *bnbState {
	inB := make([]bool, g.N())
	for _, v := range target {
		inB[v] = true
	}
	covers := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Ball(v, 1) {
			if inB[u] {
				covers[v] = append(covers[v], u)
			}
		}
	}
	// Greedy solution seeds the upper bound.
	greedy := greedyBDominating(g, target, covers)
	return &bnbState{g: g, inB: inB, covers: covers, best: greedy, bestLen: len(greedy)}
}

// search extends the current partial solution; chosen is the picked set.
func (s *bnbState) search(chosen []int) {
	if len(chosen) >= s.bestLen {
		return
	}
	dominated := make([]bool, s.g.N())
	for _, v := range chosen {
		for _, u := range s.covers[v] {
			dominated[u] = true
		}
	}
	// Find the undominated target vertex with the fewest dominators: the
	// strongest branching point.
	pick, pickDeg := -1, math.MaxInt
	remaining := 0
	maxCover := 0
	for v := 0; v < s.g.N(); v++ {
		if !s.inB[v] || dominated[v] {
			continue
		}
		remaining++
		d := s.g.Degree(v) + 1
		if d < pickDeg {
			pick, pickDeg = v, d
		}
	}
	if pick < 0 {
		s.best = append(s.best[:0], chosen...)
		s.bestLen = len(chosen)
		return
	}
	// Lower bound: every new pick dominates at most maxCover *still
	// undominated* targets. Computing the residual coverage per candidate
	// is linear in the adjacency size and prunes far better than the
	// static bound, especially on grids.
	for v := 0; v < s.g.N(); v++ {
		c := 0
		for _, u := range s.covers[v] {
			if !dominated[u] {
				c++
			}
		}
		if c > maxCover {
			maxCover = c
		}
	}
	if maxCover == 0 {
		return // unreachable: every target vertex dominates itself
	}
	lb := len(chosen) + (remaining+maxCover-1)/maxCover
	if lb >= s.bestLen {
		return
	}
	// Branch on the dominators of pick, most-covering first.
	cands := append([]int(nil), s.g.Ball(pick, 1)...)
	sort.Slice(cands, func(i, j int) bool {
		return len(s.covers[cands[i]]) > len(s.covers[cands[j]])
	})
	for _, v := range cands {
		s.search(append(chosen, v))
	}
}

// GreedyMDS returns the classical greedy dominating set (repeatedly pick
// the vertex covering the most undominated vertices), an
// (ln Δ + 1)-approximation and the baseline used in the experiments.
func GreedyMDS(g *graph.Graph) []int {
	covers := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		covers[v] = g.Ball(v, 1)
	}
	return greedyBDominatingGeneric(g, allVertices(g), covers)
}

func greedyBDominating(g *graph.Graph, target []int, covers [][]int) []int {
	return greedyBDominatingGeneric(g, target, covers)
}

func greedyBDominatingGeneric(g *graph.Graph, target []int, covers [][]int) []int {
	need := make([]bool, g.N())
	remaining := 0
	for _, v := range target {
		if !need[v] {
			need[v] = true
			remaining++
		}
	}
	var sol []int
	for remaining > 0 {
		bestV, bestGain := -1, 0
		for v := 0; v < g.N(); v++ {
			gain := 0
			for _, u := range covers[v] {
				if need[u] {
					gain++
				}
			}
			if gain > bestGain {
				bestV, bestGain = v, gain
			}
		}
		if bestV < 0 {
			break // isolated unreachable targets cannot occur: v covers itself
		}
		sol = append(sol, bestV)
		for _, u := range covers[bestV] {
			if need[u] {
				need[u] = false
				remaining--
			}
		}
	}
	sort.Ints(sol)
	return sol
}

// TwoPacking returns a maximal 2-packing: vertices pairwise at distance at
// least 3. Its size lower-bounds MDS(G) (each dominator covers at most one
// packing vertex), giving a cheap OPT lower bound on instances too large
// for the exact solver.
func TwoPacking(g *graph.Graph) []int {
	blocked := make([]bool, g.N())
	var pack []int
	for v := 0; v < g.N(); v++ {
		if blocked[v] {
			continue
		}
		pack = append(pack, v)
		for _, u := range g.Ball(v, 2) {
			blocked[u] = true
		}
	}
	return pack
}

func allVertices(g *graph.Graph) []int {
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	return all
}
