// Package mds provides centralized (sequential) solvers for Minimum
// Dominating Set and Minimum Vertex Cover: exact branch-and-bound solvers
// used both inside the paper's brute-force step (Algorithm 1, step 4) and to
// compute OPT for approximation-ratio measurements, plus classic greedy
// baselines and verification predicates.
package mds

import (
	"fmt"
	"sort"

	"localmds/internal/graph"
)

// IsDominatingSet reports whether s dominates every vertex of g: each
// vertex is in s or adjacent to a member of s.
func IsDominatingSet(g *graph.Graph, s []int) bool {
	return DominatesSet(g, s, allVertices(g))
}

// DominatesSet reports whether every vertex of target is in s or adjacent
// to a member of s (s is "B-dominating" for B = target, §2).
func DominatesSet(g *graph.Graph, s, target []int) bool {
	dominated := make([]bool, g.N())
	for _, v := range s {
		if v < 0 || v >= g.N() {
			return false
		}
		dominated[v] = true
		for _, u := range g.Neighbors(v) {
			dominated[u] = true
		}
	}
	for _, v := range target {
		if !dominated[v] {
			return false
		}
	}
	return true
}

// IsVertexCover reports whether s touches every edge of g.
func IsVertexCover(g *graph.Graph, s []int) bool {
	in := make([]bool, g.N())
	for _, v := range s {
		if v < 0 || v >= g.N() {
			return false
		}
		in[v] = true
	}
	for u := 0; u < g.N(); u++ {
		if in[u] {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if u < v && !in[v] {
				return false
			}
		}
	}
	return true
}

// MaxExactMDSVertices is the default instance cap for the exact solver's
// branch-and-bound path (forests and treewidth-<=2 graphs dispatch to
// unbounded DPs first and never hit it). Branch and bound is exponential
// in the worst case; the bitset engine keeps its worst observed cases —
// grids — to seconds up to roughly this size, where the old adjacency-list
// search was capped at 160 (see EXPERIMENTS.md "Exact solver"). It is a
// variable so deployments with different patience can tune it; per-call
// overrides go through ExactOptions.MaxVertices.
var MaxExactMDSVertices = 512

// ExactOptions tunes the exact solver's branch-and-bound engine. The zero
// value reproduces the default ExactMDS/ExactBDominating behavior.
type ExactOptions struct {
	// MaxVertices overrides MaxExactMDSVertices for this call (0: use the
	// package default). The DP dispatch paths ignore it.
	MaxVertices int
	// MaxNodes bounds the number of search-tree nodes (0: unbounded). An
	// exhausted budget returns an error instead of a possibly suboptimal
	// set; callers use it to keep best-effort OPT probes from stalling.
	// The sequential node count is deterministic, so a budgeted failure
	// is reproducible.
	MaxNodes int64
	// Workers > 1 fans the root-level branches out in parallel. The
	// returned size is still exactly optimal (and deterministic), but the
	// particular optimum returned may vary between runs; leave 0 in paths
	// that require byte-identical outputs.
	Workers int
	// Pool optionally supplies the worker pool driving parallel branching
	// (*runner.Pool satisfies it; mds cannot import runner without a
	// cycle). When nil and Workers > 1, the engine spins Workers
	// transient goroutines instead.
	Pool Pool
}

// Pool is the worker-pool surface the engine needs for parallel
// branching; runner.Pool implements it.
type Pool interface {
	Submit(fn func())
}

// ExactMDS returns a minimum dominating set of g. Forests dispatch to a
// linear-time DP and treewidth-<=2 graphs (all this repository's workload
// classes) to a width-2 tree-decomposition DP, both with no size limit;
// everything else runs the bitset branch-and-bound engine, which requires
// g.N() <= MaxExactMDSVertices.
func ExactMDS(g *graph.Graph) ([]int, error) {
	return ExactMDSOpt(g, ExactOptions{})
}

// ExactMDSOpt is ExactMDS with engine options. The dispatch is identical:
// forest DP, then treewidth-2 DP, then the branch-and-bound engine.
func ExactMDSOpt(g *graph.Graph, opt ExactOptions) ([]int, error) {
	if IsForest(g) {
		return exactMDSForest(g), nil
	}
	return ExactBDominatingOpt(g, allVertices(g), opt)
}

// ExactBDominating returns a minimum set S ⊆ V(g) dominating every vertex
// of target (MDS(G, B) in the paper's notation, B = target). Candidates are
// restricted to N[target], which is without loss of optimality.
// Treewidth-<=2 inputs dispatch to the unbounded DP; the rest run the
// bitset branch-and-bound engine, capped at MaxExactMDSVertices.
func ExactBDominating(g *graph.Graph, target []int) ([]int, error) {
	return ExactBDominatingOpt(g, target, ExactOptions{})
}

// ExactBDominatingOpt is ExactBDominating with engine options.
func ExactBDominatingOpt(g *graph.Graph, target []int, opt ExactOptions) ([]int, error) {
	target = graph.Dedup(target)
	if len(target) == 0 {
		return nil, nil
	}
	required := make([]bool, g.N())
	for _, v := range target {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("mds: target vertex %d out of range", v)
		}
		required[v] = true
	}
	if sol, err := exactTW2BDominating(g, required); err == nil {
		return sol, nil
	}
	if err := checkExactCap(g.N(), opt); err != nil {
		return nil, err
	}
	return newEngineGraph(g, target).solve(opt)
}

// checkExactCap enforces the branch-and-bound vertex cap.
func checkExactCap(n int, opt ExactOptions) error {
	cap := opt.MaxVertices
	if cap <= 0 {
		cap = MaxExactMDSVertices
	}
	if n > cap {
		return fmt.Errorf("mds: graph has %d vertices, exact solver capped at %d", n, cap)
	}
	return nil
}

// GreedyMDS returns the classical greedy dominating set (repeatedly pick
// the vertex covering the most undominated vertices), an
// (ln Δ + 1)-approximation and the baseline used in the experiments.
func GreedyMDS(g *graph.Graph) []int {
	covers := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		covers[v] = g.Ball(v, 1)
	}
	return greedyBDominatingGeneric(g, allVertices(g), covers)
}

func greedyBDominating(g *graph.Graph, target []int, covers [][]int) []int {
	return greedyBDominatingGeneric(g, target, covers)
}

func greedyBDominatingGeneric(g *graph.Graph, target []int, covers [][]int) []int {
	need := make([]bool, g.N())
	remaining := 0
	for _, v := range target {
		if !need[v] {
			need[v] = true
			remaining++
		}
	}
	var sol []int
	for remaining > 0 {
		bestV, bestGain := -1, 0
		for v := 0; v < g.N(); v++ {
			gain := 0
			for _, u := range covers[v] {
				if need[u] {
					gain++
				}
			}
			if gain > bestGain {
				bestV, bestGain = v, gain
			}
		}
		if bestV < 0 {
			break // isolated unreachable targets cannot occur: v covers itself
		}
		sol = append(sol, bestV)
		for _, u := range covers[bestV] {
			if need[u] {
				need[u] = false
				remaining--
			}
		}
	}
	sort.Ints(sol)
	return sol
}

// TwoPacking returns a maximal 2-packing: vertices pairwise at distance at
// least 3. Its size lower-bounds MDS(G) (each dominator covers at most one
// packing vertex), giving a cheap OPT lower bound on instances too large
// for the exact solver.
func TwoPacking(g *graph.Graph) []int {
	blocked := make([]bool, g.N())
	var pack []int
	for v := 0; v < g.N(); v++ {
		if blocked[v] {
			continue
		}
		pack = append(pack, v)
		for _, u := range g.Ball(v, 2) {
			blocked[u] = true
		}
	}
	return pack
}

func allVertices(g *graph.Graph) []int {
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	return all
}
