// External test package: exercises the engine's root-parallel branching
// through a real runner.Pool (mds itself cannot import runner — the
// sweep Runner there depends on experiments, which depends back on mds —
// which is why ExactOptions.Pool is an interface).
package mds_test

import (
	"fmt"
	"math/rand"
	"testing"

	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/mds"
	"localmds/internal/runner"
)

// TestExactParallelMatchesSequentialSize asserts parallel root branching
// returns optimal (= sequential) sizes on grids and random graphs, both
// through a shared runner.Pool and through the internal fallback workers.
func TestExactParallelMatchesSequentialSize(t *testing.T) {
	pool := runner.NewPool(4, 64)
	defer pool.Close()
	rng := rand.New(rand.NewSource(51))
	cases := []*graph.Graph{
		gen.Grid(8, 8),
		gen.Grid(6, 9),
		gen.GNPConnected(40, 0.12, rng),
		graph.DisjointUnion(gen.Grid(4, 4), gen.GNPConnected(20, 0.2, rng)),
	}
	for i, g := range cases {
		seq, err := mds.ExactMDS(g)
		if err != nil {
			t.Fatalf("case %d sequential: %v", i, err)
		}
		pooled, err := mds.ExactMDSOpt(g, mds.ExactOptions{Workers: 4, Pool: pool})
		if err != nil {
			t.Fatalf("case %d pooled: %v", i, err)
		}
		spun, err := mds.ExactMDSOpt(g, mds.ExactOptions{Workers: 3})
		if err != nil {
			t.Fatalf("case %d fallback: %v", i, err)
		}
		if len(pooled) != len(seq) || len(spun) != len(seq) {
			t.Fatalf("case %d: sizes diverge: seq %d, pooled %d, fallback %d",
				i, len(seq), len(pooled), len(spun))
		}
		if !mds.IsDominatingSet(g, pooled) || !mds.IsDominatingSet(g, spun) {
			t.Fatalf("case %d: parallel result not dominating", i)
		}
	}
}

// TestExactParallelConcurrentCallers runs several parallel solves on one
// shared pool at once — the shape the race detector needs to see.
func TestExactParallelConcurrentCallers(t *testing.T) {
	pool := runner.NewPool(4, 256)
	defer pool.Close()
	g := gen.Grid(7, 7)
	want, err := mds.ExactMDS(g)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 6)
	for i := 0; i < 6; i++ {
		opt := mds.ExactOptions{Workers: 2}
		if i%2 == 0 {
			opt.Pool = pool // even callers share the pool, odd ones spin fallback workers
		}
		go func() {
			sol, err := mds.ExactMDSOpt(g, opt)
			if err == nil && len(sol) != len(want) {
				err = fmt.Errorf("parallel size %d, want %d", len(sol), len(want))
			}
			done <- err
		}()
	}
	for i := 0; i < 6; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
