package mds

import (
	"math/rand"
	"testing"

	"localmds/internal/gen"
	"localmds/internal/graph"
)

// engineBDominating runs the bitset engine directly (no forest/treewidth
// dispatch, no cap), mirroring referenceBDominating for the differential
// tests.
func engineBDominating(t *testing.T, g *graph.Graph, target []int) []int {
	t.Helper()
	target = graph.Dedup(target)
	if len(target) == 0 {
		return nil
	}
	sol, err := newEngineGraph(g, target).solve(ExactOptions{})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	return sol
}

// TestEngineMatchesReference cross-checks the bitset engine against the
// old adjacency-list branch and bound on random graphs and random targets:
// identical optimum sizes, and the engine's set must actually dominate.
func TestEngineMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		n := 8 + rng.Intn(16)
		p := []float64{0.1, 0.2, 0.35}[trial%3]
		g := randomMDSGraph(n, p, rng)
		target := randomTarget(n, rng)
		want := referenceBDominating(g, target)
		got := engineBDominating(t, g, target)
		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d p=%.2f): engine %v (%d) vs reference %v (%d), target %v",
				trial, n, p, got, len(got), want, len(want), target)
		}
		if len(target) > 0 && !DominatesSet(g, got, target) {
			t.Fatalf("trial %d: engine set %v does not dominate %v", trial, got, target)
		}
	}
}

// TestEngineMatchesTW2DP cross-checks the engine against the unbounded
// width-2 tree-decomposition DP on the treewidth-<=2 workload classes
// (where the production dispatch prefers the DP and the engine is normally
// never reached).
func TestEngineMatchesTW2DP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = gen.RandomCactus(24, rng)
		case 1:
			g = gen.MaximalOuterplanar(24, rng)
		default:
			g = gen.Cycle(24)
		}
		target := randomTarget(g.N(), rng)
		if len(target) == 0 {
			target = []int{0}
		}
		required := make([]bool, g.N())
		for _, v := range target {
			required[v] = true
		}
		dp, err := exactTW2BDominating(g, required)
		if err != nil {
			t.Fatalf("trial %d: tw2 DP declined a width-2 instance: %v", trial, err)
		}
		got := engineBDominating(t, g, target)
		if len(got) != len(dp) {
			t.Fatalf("trial %d: engine %d vs tw2 DP %d (target %v)", trial, len(got), len(dp), target)
		}
	}
}

// TestEngineMultiComponent exercises disconnected graphs with targets
// spread across components, concentrated in a single component, and
// pairwise non-adjacent ("disconnected target") sets.
func TestEngineMultiComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 25; trial++ {
		g := graph.DisjointUnion(randomMDSGraph(10, 0.25, rng), gen.Grid(3, 4))
		g = graph.DisjointUnion(g, gen.Path(5))
		var target []int
		switch trial % 3 {
		case 0: // spread over all components
			target = randomTarget(g.N(), rng)
		case 1: // one component only
			for v := 10; v < 22; v++ {
				target = append(target, v)
			}
		default: // a 2-packing: pairwise far apart, no shared dominators
			target = TwoPacking(g)
		}
		if len(target) == 0 {
			target = []int{0, g.N() - 1}
		}
		want := referenceBDominating(g, target)
		got := engineBDominating(t, g, target)
		if len(got) != len(want) {
			t.Fatalf("trial %d: engine %d vs reference %d (target %v)", trial, len(got), len(want), target)
		}
		if !DominatesSet(g, got, target) {
			t.Fatalf("trial %d: engine set %v does not dominate %v", trial, got, target)
		}
	}
}

// TestEngineEntryPointsIdenticalSets asserts the two production entry
// points (adjacency-list and CSR) return byte-identical sorted sets: they
// share one deterministic sequential engine.
func TestEngineEntryPointsIdenticalSets(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 30; trial++ {
		g := randomMDSGraph(9+rng.Intn(12), 0.2, rng)
		if trial%4 == 0 {
			g = graph.DisjointUnion(g, gen.Grid(3, 3))
		}
		target := randomTarget(g.N(), rng)
		a, errA := ExactBDominating(g, target)
		b, errB := ExactBDominatingCSR(g.Freeze(), target)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: err mismatch: %v vs %v", trial, errA, errB)
		}
		if errA != nil {
			continue
		}
		if !graph.EqualSets(a, b) {
			t.Fatalf("trial %d: Graph entry %v vs CSR entry %v (target %v)", trial, a, b, target)
		}
		// And a repeated run is byte-identical (deterministic engine).
		a2, _ := ExactBDominating(g, target)
		if !graph.EqualSets(a, a2) {
			t.Fatalf("trial %d: non-deterministic: %v vs %v", trial, a, a2)
		}
	}
}

// TestEngineGridKnownValues pins the engine to the published grid
// domination numbers gamma(n,n) = floor((n+2)^2/5) - 4 at the sizes the
// old solver could not reach in test time.
func TestEngineGridKnownValues(t *testing.T) {
	want := map[int]int{7: 12, 8: 16, 9: 20}
	for side, opt := range want {
		g := gen.Grid(side, side)
		sol, err := ExactMDS(g)
		if err != nil {
			t.Fatalf("grid %dx%d: %v", side, side, err)
		}
		if !IsDominatingSet(g, sol) {
			t.Fatalf("grid %dx%d: not dominating", side, side)
		}
		if len(sol) != opt {
			t.Errorf("grid %dx%d: |S| = %d, want %d", side, side, len(sol), opt)
		}
	}
}

// TestEngineNodeBudget asserts an exhausted budget fails loudly and
// reproducibly, and that a sufficient budget changes nothing.
func TestEngineNodeBudget(t *testing.T) {
	g := gen.Grid(8, 8)
	target := allVertices(g)
	if _, err := newEngineGraph(g, target).solve(ExactOptions{MaxNodes: 25}); err == nil {
		t.Fatal("25-node budget on an 8x8 grid should be exhausted")
	}
	e1 := newEngineGraph(g, target)
	_, err1 := e1.solve(ExactOptions{MaxNodes: 25})
	e2 := newEngineGraph(g, target)
	_, err2 := e2.solve(ExactOptions{MaxNodes: 25})
	if (err1 == nil) != (err2 == nil) || e1.nodes != e2.nodes {
		t.Fatalf("budgeted failure not deterministic: %v/%d vs %v/%d", err1, e1.nodes, err2, e2.nodes)
	}
	want, err := newEngineGraph(g, target).solve(ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := newEngineGraph(g, target).solve(ExactOptions{MaxNodes: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.EqualSets(got, want) {
		t.Fatalf("roomy budget changed the result: %v vs %v", got, want)
	}
}

// TestEngineForcedAndSubsumedRoots covers the reduction rules' edge
// cases: isolated targets force themselves, leaves force their support,
// and a root whose reductions solve the instance outright never searches.
func TestEngineForcedAndSubsumedRoots(t *testing.T) {
	// Star: center subsumes every leaf; reductions alone solve it.
	star := gen.Star(9)
	e := newEngineGraph(star, allVertices(star))
	sol, err := e.solve(ExactOptions{})
	if err != nil || len(sol) != 1 || sol[0] != 0 {
		t.Fatalf("star: %v, %v (want [0])", sol, err)
	}
	if e.nodes != 0 {
		t.Errorf("star solved with %d search nodes, want 0 (root reductions)", e.nodes)
	}
	// Isolated target vertices are their own forced dominators.
	iso := graph.New(4)
	iso.AddEdge(0, 1)
	sol, err = newEngineGraph(iso, []int{2, 3}).solve(ExactOptions{})
	if err != nil || !graph.EqualSets(sol, []int{2, 3}) {
		t.Fatalf("isolated targets: %v, %v (want [2 3])", sol, err)
	}
}
