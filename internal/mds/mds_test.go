package mds

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localmds/internal/gen"
	"localmds/internal/graph"
)

func TestIsDominatingSet(t *testing.T) {
	g := gen.Path(5)
	tests := []struct {
		s    []int
		want bool
	}{
		{[]int{1, 3}, true},
		{[]int{2}, false},
		{[]int{0, 2, 4}, true},
		{[]int{}, false},
		{[]int{0, 4}, false}, // vertex 2 undominated
		{[]int{-1}, false},   // out of range
	}
	for _, tt := range tests {
		if got := IsDominatingSet(g, tt.s); got != tt.want {
			t.Errorf("IsDominatingSet(P5, %v) = %v, want %v", tt.s, got, tt.want)
		}
	}
}

func TestDominatesSet(t *testing.T) {
	g := gen.Path(7)
	if !DominatesSet(g, []int{1}, []int{0, 1, 2}) {
		t.Error("{1} should dominate {0,1,2}")
	}
	if DominatesSet(g, []int{1}, []int{3}) {
		t.Error("{1} should not dominate {3}")
	}
	if !DominatesSet(g, nil, nil) {
		t.Error("empty set should dominate empty target")
	}
}

func TestIsVertexCover(t *testing.T) {
	g := gen.Cycle(5)
	if !IsVertexCover(g, []int{0, 2, 4}) {
		t.Error("{0,2,4} should cover C5")
	}
	if IsVertexCover(g, []int{0, 2}) {
		t.Error("{0,2} should not cover C5 (edge 3-4)")
	}
	if !IsVertexCover(graph.New(3), nil) {
		t.Error("empty set should cover the edgeless graph")
	}
}

func TestExactMDSKnownValues(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"P1", gen.Path(1), 1},
		{"P3", gen.Path(3), 1},
		{"P5", gen.Path(5), 2},
		{"P7", gen.Path(7), 3},
		{"C3", gen.Cycle(3), 1},
		{"C6", gen.Cycle(6), 2},
		{"C9", gen.Cycle(9), 3},
		{"K5", gen.Complete(5), 1},
		{"star", gen.Star(6), 1},
		{"K23", gen.CompleteBipartite(2, 3), 2}, // e.g. one vertex per side? {0} dominates 2,3,4 and 0; 1 needs cover -> {0,1} or {0,2}
		{"grid3x3", gen.Grid(3, 3), 3},
		{"cliquependants", gen.CliquePendants(6), 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, err := ExactMDS(tt.g)
			if err != nil {
				t.Fatalf("ExactMDS: %v", err)
			}
			if !IsDominatingSet(tt.g, s) {
				t.Fatalf("returned set %v is not dominating", s)
			}
			if len(s) != tt.want {
				t.Errorf("|MDS| = %d, want %d (set %v)", len(s), tt.want, s)
			}
		})
	}
}

func TestExactMDSRefusesLarge(t *testing.T) {
	// Forests and treewidth-<=2 graphs dispatch to unbounded DPs; only
	// genuinely hard instances (here: a grid beyond the cap) hit the
	// bounded branch and bound.
	side := 1
	for side*side <= MaxExactMDSVertices {
		side++
	}
	if _, err := ExactMDS(gen.Grid(side, side)); err == nil {
		t.Error("oversized high-treewidth instance accepted")
	}
	if _, err := ExactMDS(gen.Path(MaxExactMDSVertices + 1)); err != nil {
		t.Errorf("large forest should use the DP: %v", err)
	}
	if _, err := ExactMDS(gen.Cycle(MaxExactMDSVertices + 41)); err != nil {
		t.Errorf("large cycle should use the treewidth DP: %v", err)
	}
	// Per-call overrides: a tighter cap rejects, a budget bails out
	// deterministically instead of stalling.
	g := gen.Grid(9, 9)
	if _, err := ExactMDSOpt(g, ExactOptions{MaxVertices: 80}); err == nil {
		t.Error("MaxVertices override not enforced")
	}
	if _, err := ExactMDSOpt(g, ExactOptions{MaxNodes: 10}); err == nil {
		t.Error("exhausted node budget should error")
	}
}

func TestExactBDominating(t *testing.T) {
	g := gen.Path(9)
	// Dominate only {0}: one vertex from {0,1} suffices.
	s, err := ExactBDominating(g, []int{0})
	if err != nil {
		t.Fatalf("ExactBDominating: %v", err)
	}
	if len(s) != 1 || !DominatesSet(g, s, []int{0}) {
		t.Errorf("B={0}: got %v", s)
	}
	// Dominate the two ends: needs 2 vertices.
	s, err = ExactBDominating(g, []int{0, 8})
	if err != nil {
		t.Fatalf("ExactBDominating: %v", err)
	}
	if len(s) != 2 {
		t.Errorf("B={0,8}: got %v, want size 2", s)
	}
	// Empty target: empty solution.
	s, err = ExactBDominating(g, nil)
	if err != nil || len(s) != 0 {
		t.Errorf("B=∅: got %v, %v", s, err)
	}
}

func TestGreedyMDSIsDominating(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(60, 0.05, rng)
		s := GreedyMDS(g)
		if !IsDominatingSet(g, s) {
			t.Errorf("seed %d: greedy set not dominating", seed)
		}
	}
}

func TestTwoPackingLowerBound(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(30, 0.1, rng)
		pack := TwoPacking(g)
		opt, err := ExactMDS(g)
		if err != nil {
			t.Fatalf("ExactMDS: %v", err)
		}
		if len(pack) > len(opt) {
			t.Errorf("seed %d: 2-packing %d exceeds MDS %d", seed, len(pack), len(opt))
		}
		// Verify pairwise distance >= 3.
		for i := 0; i < len(pack); i++ {
			dist := g.BFSFrom(pack[i])
			for j := i + 1; j < len(pack); j++ {
				if d := dist[pack[j]]; d >= 0 && d < 3 {
					t.Errorf("seed %d: packing vertices %d,%d at distance %d", seed, pack[i], pack[j], d)
				}
			}
		}
	}
}

func TestExactMVCKnownValues(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"P2", gen.Path(2), 1},
		{"P5", gen.Path(5), 2},
		{"C5", gen.Cycle(5), 3},
		{"C6", gen.Cycle(6), 3},
		{"K4", gen.Complete(4), 3},
		{"K23", gen.CompleteBipartite(2, 3), 2},
		{"star", gen.Star(7), 1},
		{"edgeless", graph.New(4), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, err := ExactMVC(tt.g)
			if err != nil {
				t.Fatalf("ExactMVC: %v", err)
			}
			if !IsVertexCover(tt.g, s) {
				t.Fatalf("returned set %v is not a cover", s)
			}
			if len(s) != tt.want {
				t.Errorf("|MVC| = %d, want %d (set %v)", len(s), tt.want, s)
			}
		})
	}
}

func TestMatchingVertexCover(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(40, 0.08, rng)
		cover := MatchingVertexCover(g)
		if !IsVertexCover(g, cover) {
			t.Errorf("seed %d: matching cover is not a cover", seed)
		}
	}
}

// Property: greedy >= exact, and greedy is dominating; exact solution is
// dominating and no smaller than the 2-packing bound.
func TestMDSSandwichProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(18, 0.15, rng)
		exact, err := ExactMDS(g)
		if err != nil {
			return false
		}
		greedy := GreedyMDS(g)
		pack := TwoPacking(g)
		return IsDominatingSet(g, exact) &&
			IsDominatingSet(g, greedy) &&
			len(exact) <= len(greedy) &&
			len(pack) <= len(exact)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the 2-approximation guarantee of the matching cover holds
// against the exact MVC.
func TestMVCTwoApproxProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(16, 0.2, rng)
		exact, err := ExactMVC(g)
		if err != nil {
			return false
		}
		approx := MatchingVertexCover(g)
		if !IsVertexCover(g, exact) || !IsVertexCover(g, approx) {
			return false
		}
		return len(approx) <= 2*len(exact) && len(exact) <= len(approx)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: MDS on the twin-reduced graph has the same size as on the
// original (§2 of the paper: MDS(G⁻) = MDS(G)).
func TestTwinReductionPreservesMDSProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(14, 0.3, rng)
		reduced, _ := g.TwinReduction()
		a, err1 := ExactMDS(g)
		b, err2 := ExactMDS(reduced)
		if err1 != nil || err2 != nil {
			return false
		}
		return len(a) == len(b)
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Lemma 5.2 — for subsets with pairwise disjoint closed
// neighborhoods, the B-dominating optima sum to at most MDS(G).
func TestLemma52Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(16, 0.12, rng)
		// Build disjoint-N[.] subsets greedily from a 2-packing: balls of
		// radius 1 around 2-packing vertices are pairwise disjoint.
		pack := TwoPacking(g)
		total := 0
		for _, v := range pack {
			s, err := ExactBDominating(g, []int{v})
			if err != nil {
				return false
			}
			total += len(s)
		}
		opt, err := ExactMDS(g)
		if err != nil {
			return false
		}
		return total <= len(opt)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestForestDPMatchesBnB(t *testing.T) {
	// Cross-check the tree DP against branch and bound on small trees
	// (forcing the B&B path by adding and removing a phantom edge is
	// intrusive; instead call the internal DP directly).
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomTree(18, rng)
		dpSol := exactMDSForest(g)
		if !IsDominatingSet(g, dpSol) {
			t.Fatalf("seed %d: DP solution not dominating", seed)
		}
		bnb, err := ExactBDominating(g, allVerticesForTest(g))
		if err != nil {
			t.Fatal(err)
		}
		if len(dpSol) != len(bnb) {
			t.Errorf("seed %d: DP %d vs B&B %d", seed, len(dpSol), len(bnb))
		}
	}
}

func allVerticesForTest(g *graph.Graph) []int {
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	return all
}

func TestForestDPLargeTree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := gen.RandomTree(5000, rng)
	sol, err := ExactMDS(g)
	if err != nil {
		t.Fatal(err)
	}
	if !IsDominatingSet(g, sol) {
		t.Fatal("not dominating")
	}
	// Sanity: at most n/2 + small slack, at least 2-packing.
	if len(sol) > g.N()/2+1 || len(sol) < len(TwoPacking(g)) {
		t.Errorf("implausible optimum %d for n=%d", len(sol), g.N())
	}
}

func TestForestDPForest(t *testing.T) {
	g := graph.DisjointUnion(gen.Path(7), gen.Star(4))
	sol, err := ExactMDS(g)
	if err != nil {
		t.Fatal(err)
	}
	if !IsDominatingSet(g, sol) {
		t.Fatal("not dominating")
	}
	if len(sol) != 4 { // P7 needs 3, star needs 1
		t.Errorf("|MDS| = %d, want 4", len(sol))
	}
}

func TestForestDPIsolated(t *testing.T) {
	g := graph.New(3)
	sol, err := ExactMDS(g)
	if err != nil || len(sol) != 3 {
		t.Errorf("isolated vertices: %v, %v", sol, err)
	}
}

func TestIsForest(t *testing.T) {
	if !IsForest(gen.Path(5)) || IsForest(gen.Cycle(4)) {
		t.Error("IsForest misclassified")
	}
	if !IsForest(graph.New(3)) {
		t.Error("edgeless graph is a forest")
	}
}
