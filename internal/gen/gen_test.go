package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localmds/internal/graph"
	"localmds/internal/minor"
)

func TestElementaryFamilies(t *testing.T) {
	tests := []struct {
		name      string
		g         *graph.Graph
		n, m      int
		connected bool
	}{
		{"path", Path(6), 6, 5, true},
		{"path1", Path(1), 1, 0, true},
		{"cycle", Cycle(5), 5, 5, true},
		{"star", Star(4), 5, 4, true},
		{"complete", Complete(5), 5, 10, true},
		{"bipartite", CompleteBipartite(2, 3), 5, 6, true},
		{"grid", Grid(3, 4), 12, 17, true},
		{"binarytree", BinaryTree(3), 7, 6, true},
		{"caterpillar", Caterpillar(3, 2), 9, 8, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.N() != tt.n || tt.g.M() != tt.m {
				t.Errorf("n=%d m=%d, want n=%d m=%d", tt.g.N(), tt.g.M(), tt.n, tt.m)
			}
			if tt.g.Connected() != tt.connected {
				t.Errorf("Connected() = %v, want %v", tt.g.Connected(), tt.connected)
			}
			if err := tt.g.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}

func TestCyclePanicsOnSmallN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cycle(2) did not panic")
		}
	}()
	Cycle(2)
}

func TestRandomTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomTree(50, rng)
	if g.N() != 50 || g.M() != 49 || !g.Connected() {
		t.Errorf("RandomTree: n=%d m=%d connected=%v", g.N(), g.M(), g.Connected())
	}
}

func TestRandomTreeDeterministic(t *testing.T) {
	a := RandomTree(30, rand.New(rand.NewSource(7)))
	b := RandomTree(30, rand.New(rand.NewSource(7)))
	if !a.Equal(b) {
		t.Error("same seed produced different trees")
	}
}

func TestRandomCactus(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := RandomCactus(80, rng)
	if g.N() < 80 || !g.Connected() {
		t.Fatalf("RandomCactus: n=%d connected=%v", g.N(), g.Connected())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRandomCactusIsK23Free(t *testing.T) {
	// Cacti are K_{2,3}-minor-free; verify exactly at small size.
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := RandomCactus(14, rng)
		if g.N() > minor.MaxExactVertices {
			g, _ = g.Induced(g.Ball(0, 3))
			if !g.Connected() || g.N() > minor.MaxExactVertices {
				continue
			}
		}
		_, ok, err := minor.HasK2tMinor(g, 3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ok {
			t.Errorf("seed %d: cactus contains K_{2,3} minor", seed)
		}
	}
}

func TestMaximalOuterplanar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := MaximalOuterplanar(12, rng)
	// A maximal outerplanar graph on n vertices has exactly 2n-3 edges.
	if g.M() != 2*12-3 {
		t.Errorf("M = %d, want %d", g.M(), 2*12-3)
	}
	if !g.Connected() {
		t.Error("not connected")
	}
	_, ok, err := minor.HasK2tMinor(g, 3)
	if err != nil {
		t.Fatalf("minor test: %v", err)
	}
	if ok {
		t.Error("outerplanar graph contains K_{2,3} minor")
	}
}

func TestMaximalOuterplanarProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%10) + 4
		rng := rand.New(rand.NewSource(seed))
		g := MaximalOuterplanar(n, rng)
		if g.M() != 2*n-3 || g.Validate() != nil {
			return false
		}
		_, ok, err := minor.HasK2tMinor(g, 3)
		return err == nil && !ok
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCliquePendants(t *testing.T) {
	g := CliquePendants(5)
	// q clique vertices + (q-1) pendants.
	if g.N() != 9 {
		t.Fatalf("N = %d, want 9", g.N())
	}
	// Vertex 0 dominates everything: it is adjacent to all clique vertices
	// and all pendants.
	if g.Degree(0) != 8 {
		t.Errorf("Degree(0) = %d, want 8", g.Degree(0))
	}
	// Every pendant has degree exactly 2 ({0, v}).
	for x := 5; x < 9; x++ {
		if g.Degree(x) != 2 {
			t.Errorf("pendant %d degree = %d, want 2", x, g.Degree(x))
		}
	}
}

func TestGNPDeterministic(t *testing.T) {
	a := GNP(20, 0.3, rand.New(rand.NewSource(9)))
	b := GNP(20, 0.3, rand.New(rand.NewSource(9)))
	if !a.Equal(b) {
		t.Error("same seed produced different GNP graphs")
	}
}

func TestGNPConnected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := GNPConnected(40, 0.02, rand.New(rand.NewSource(seed)))
		if !g.Connected() {
			t.Errorf("seed %d: GNPConnected not connected", seed)
		}
	}
}

func TestRegularLike(t *testing.T) {
	g, err := RegularLike(10, 4)
	if err != nil {
		t.Fatalf("RegularLike: %v", err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Errorf("Degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if _, err := RegularLike(5, 3); err == nil {
		t.Error("odd n*d accepted")
	}
	if _, err := RegularLike(4, 4); err == nil {
		t.Error("d >= n accepted")
	}
}

func TestRegularLikeOddDegree(t *testing.T) {
	g, err := RegularLike(8, 3)
	if err != nil {
		t.Fatalf("RegularLike(8,3): %v", err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 3 {
			t.Errorf("Degree(%d) = %d, want 3", v, g.Degree(v))
		}
	}
}

func TestTheta(t *testing.T) {
	g, err := Theta([]int{2, 3, 4})
	if err != nil {
		t.Fatalf("Theta: %v", err)
	}
	// Vertices: 2 terminals + 1 + 2 + 3 interior = 8; edges 2+3+4 = 9.
	if g.N() != 8 || g.M() != 9 {
		t.Errorf("theta n=%d m=%d, want 8, 9", g.N(), g.M())
	}
	if g.Degree(0) != 3 || g.Degree(1) != 3 {
		t.Error("terminals should have degree 3")
	}
	if _, err := Theta([]int{1, 1}); err == nil {
		t.Error("two length-1 paths accepted (parallel edge)")
	}
	if _, err := Theta([]int{0, 2}); err == nil {
		t.Error("zero-length path accepted")
	}
}

func TestThetaHasExpectedMinors(t *testing.T) {
	g, err := Theta([]int{2, 2, 2, 2})
	if err != nil {
		t.Fatalf("Theta: %v", err)
	}
	_, ok, err := minor.HasK2tMinor(g, 4)
	if err != nil || !ok {
		t.Errorf("theta with 4 paths should contain K_{2,4}: ok=%v err=%v", ok, err)
	}
	_, ok, err = minor.HasK2tMinor(g, 5)
	if err != nil || ok {
		t.Errorf("theta with 4 paths should not contain K_{2,5}: ok=%v err=%v", ok, err)
	}
}

func TestTreePlusChords(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := TreePlusChords(40, 10, 3, rng)
	if !g.Connected() {
		t.Error("not connected")
	}
	if g.M() < 39 {
		t.Errorf("M = %d < n-1", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}
