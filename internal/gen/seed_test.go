package gen

import "testing"

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(1, "table1", "trees", "0")
	b := DeriveSeed(1, "table1", "trees", "0")
	if a != b {
		t.Errorf("same inputs gave %d and %d", a, b)
	}
	// Pin the value: the derivation must stay stable across releases, or
	// every recorded experiment table silently changes.
	if a != 3654952441034468326 {
		t.Errorf("DeriveSeed(1, table1, trees, 0) = %d; derivation changed", a)
	}
}

func TestDeriveSeedSensitivity(t *testing.T) {
	base := DeriveSeed(1, "table1", "trees", "0")
	variants := []int64{
		DeriveSeed(2, "table1", "trees", "0"),  // root
		DeriveSeed(1, "mvc", "trees", "0"),     // experiment
		DeriveSeed(1, "table1", "planar", "0"), // row
		DeriveSeed(1, "table1", "trees", "1"),  // replicate
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collided with base seed %d", i, base)
		}
	}
}

func TestDeriveSeedLabelBoundaries(t *testing.T) {
	// Concatenation must not be ambiguous: ("ab","c") != ("a","bc").
	if DeriveSeed(1, "ab", "c") == DeriveSeed(1, "a", "bc") {
		t.Error("label boundaries are ambiguous")
	}
	if DeriveSeed(1, "ab") == DeriveSeed(1, "ab", "") {
		t.Error("empty trailing label is ambiguous")
	}
}
