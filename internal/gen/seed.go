package gen

import (
	"encoding/binary"
	"hash/fnv"
)

// DeriveSeed deterministically derives an independent child seed from a
// root seed and a path of labels (experiment name, row id, replicate
// index, ...). Two derivations collide only if both the root and the full
// label path agree, so every (experiment, row, replicate) cell of a sweep
// gets its own RNG stream: editing one row's workload can no longer shift
// the stream any other row observes, which is what makes rows safe to run
// concurrently and to cache individually.
//
// The derivation is FNV-1a over the root's little-endian bytes followed by
// the NUL-prefixed labels, so it is stable across platforms and Go
// releases (unlike anything built on maphash or map iteration).
func DeriveSeed(root int64, labels ...string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(root))
	h.Write(b[:])
	for _, l := range labels {
		h.Write([]byte{0})
		h.Write([]byte(l))
	}
	return int64(h.Sum64())
}
