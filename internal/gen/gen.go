// Package gen provides deterministic, seeded graph generators for the
// workloads used across the localmds experiments: elementary families
// (paths, cycles, stars, cliques, bipartite, grids), random trees, cacti and
// outerplanar graphs (which are K_{2,3}- and K_4-minor-free families), the
// adversarial instances discussed in the paper (long cycles, the
// clique-plus-pendants graph of §4), and Erdős–Rényi graphs for negative
// controls.
//
// All randomized generators take an explicit *rand.Rand so runs are
// reproducible; none touch global state.
package gen

import (
	"fmt"
	"math/rand"

	"localmds/internal/graph"
)

// Path returns the path P_n on n vertices (n-1 edges).
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the cycle C_n; it panics for n < 3.
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: cycle needs n >= 3, got %d", n))
	}
	g := Path(n)
	g.AddEdge(n-1, 0)
	return g
}

// Star returns K_{1,n}: center 0 joined to leaves 1..n.
func Star(n int) *graph.Graph {
	g := graph.New(n + 1)
	for i := 1; i <= n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Complete returns the clique K_n.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// CompleteBipartite returns K_{s,t} with parts {0..s-1} and {s..s+t-1}.
func CompleteBipartite(s, t int) *graph.Graph {
	g := graph.New(s + t)
	for i := 0; i < s; i++ {
		for j := 0; j < t; j++ {
			g.AddEdge(i, s+j)
		}
	}
	return g
}

// Grid returns the rows×cols grid graph, a canonical planar instance.
func Grid(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// RandomTree returns a uniformly random labelled tree on n vertices via a
// random Prüfer-like attachment: vertex i (i >= 1) attaches to a uniform
// earlier vertex. This yields random recursive trees — not uniform over all
// labelled trees, but well-spread and cheap, which is what the workloads
// need.
func RandomTree(n int, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, rng.Intn(i))
	}
	return g
}

// Caterpillar returns a caterpillar tree: a spine path of spine vertices
// with legs pendant leaves attached to each spine vertex.
func Caterpillar(spine, legs int) *graph.Graph {
	g := graph.New(spine + spine*legs)
	for i := 0; i+1 < spine; i++ {
		g.AddEdge(i, i+1)
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			g.AddEdge(i, next)
			next++
		}
	}
	return g
}

// BinaryTree returns the complete binary tree with the given number of
// levels (level 1 = single root).
func BinaryTree(levels int) *graph.Graph {
	n := (1 << levels) - 1
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, (i-1)/2)
	}
	return g
}

// RandomCactus returns a connected cactus graph — every edge lies on at most
// one cycle — on approximately n vertices. Cacti are K_4-minor-free and
// K_{2,3}-minor-free, hence in every class C_t (t >= 3) studied by the
// paper. The construction repeatedly glues cycles and pendant edges onto a
// growing graph at random attachment vertices.
func RandomCactus(n int, rng *rand.Rand) *graph.Graph {
	g := graph.New(1)
	for g.N() < n {
		attach := rng.Intn(g.N())
		if rng.Intn(2) == 0 {
			// Pendant edge.
			v := g.AddVertex()
			g.AddEdge(attach, v)
			continue
		}
		// A cycle of length 3..6 glued at attach.
		clen := 3 + rng.Intn(4)
		prev := attach
		first := -1
		for i := 0; i < clen-1; i++ {
			v := g.AddVertex()
			if first < 0 {
				first = v
			}
			g.AddEdge(prev, v)
			prev = v
		}
		g.AddEdge(prev, attach)
	}
	return g
}

// MaximalOuterplanar returns a maximal outerplanar graph (a triangulation
// of a polygon) on n >= 3 vertices: the cycle 0..n-1 plus a random
// fan/ear triangulation of its interior. Outerplanar graphs are exactly the
// {K_4, K_{2,3}}-minor-free graphs.
func MaximalOuterplanar(n int, rng *rand.Rand) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: outerplanar needs n >= 3, got %d", n))
	}
	g := Cycle(n)
	// Triangulate the polygon by recursive random ear splitting. Each
	// polygon arc [i..j] (along the cycle) is split at a random interior
	// vertex k with chords (i,k), (k,j) as needed.
	var split func(verts []int)
	split = func(verts []int) {
		if len(verts) <= 3 {
			return
		}
		i, j := 0, len(verts)-1
		k := 1 + rng.Intn(len(verts)-2)
		if !g.HasEdge(verts[i], verts[k]) {
			g.AddEdge(verts[i], verts[k])
		}
		if !g.HasEdge(verts[k], verts[j]) {
			g.AddEdge(verts[k], verts[j])
		}
		split(verts[:k+1])
		split(verts[k:])
	}
	verts := make([]int, n)
	for i := range verts {
		verts[i] = i
	}
	split(verts)
	return g
}

// CliquePendants returns the adversarial instance from §4 of the paper: a
// clique on q vertices {0..q-1} where, for each clique vertex v != 0, a new
// pendant vertex x_v is attached to both 0 and v. MDS of this graph is 1
// (vertex 0 dominates everything), yet every clique vertex lies in a minimal
// 2-cut {0, v}, so Ω(n) vertices live in 2-cuts — motivating the paper's
// "interesting vertex" restriction.
func CliquePendants(q int) *graph.Graph {
	if q < 2 {
		panic(fmt.Sprintf("gen: CliquePendants needs q >= 2, got %d", q))
	}
	g := Complete(q)
	for v := 1; v < q; v++ {
		x := g.AddVertex()
		g.AddEdge(x, 0)
		g.AddEdge(x, v)
	}
	return g
}

// GNP returns an Erdős–Rényi G(n, p) graph — the negative control used to
// show which guarantees are class-specific.
func GNP(n int, p float64, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// GNPConnected returns a connected G(n, p) sample by adding a uniform random
// spanning-tree skeleton first.
func GNPConnected(n int, p float64, rng *rand.Rand) *graph.Graph {
	g := RandomTree(n, rng)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !g.HasEdge(i, j) && rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// RegularLike returns a connected graph where every vertex has degree
// exactly d when n*d is even and n > d (a circulant construction): vertex i
// is joined to i±1, i±2, ..., i±d/2 (and the antipode if d is odd).
func RegularLike(n, d int) (*graph.Graph, error) {
	if d >= n {
		return nil, fmt.Errorf("gen: degree %d must be < n = %d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: n*d must be even, got n=%d d=%d", n, d)
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for k := 1; k <= d/2; k++ {
			j := (i + k) % n
			if !g.HasEdge(i, j) {
				g.AddEdge(i, j)
			}
		}
	}
	if d%2 == 1 {
		for i := 0; i < n/2; i++ {
			j := (i + n/2) % n
			if !g.HasEdge(i, j) {
				g.AddEdge(i, j)
			}
		}
	}
	return g, nil
}

// Theta returns the theta graph: two terminal vertices joined by k
// internally disjoint paths of the given lengths (number of edges each,
// all >= 1, at most one length-1 path). Theta graphs with k paths contain a
// K_{2,k} minor and are handy positive controls for the minor tester.
func Theta(lengths []int) (*graph.Graph, error) {
	ones := 0
	for _, l := range lengths {
		if l < 1 {
			return nil, fmt.Errorf("gen: theta path length %d < 1", l)
		}
		if l == 1 {
			ones++
		}
	}
	if ones > 1 {
		return nil, fmt.Errorf("gen: theta allows at most one length-1 path, got %d", ones)
	}
	g := graph.New(2) // 0 and 1 are the terminals
	for _, l := range lengths {
		prev := 0
		for i := 0; i < l-1; i++ {
			v := g.AddVertex()
			g.AddEdge(prev, v)
			prev = v
		}
		g.AddEdge(prev, 1)
	}
	return g, nil
}

// TreePlusChords returns a random tree on n vertices with extra chords
// added between vertices at tree-distance at most span. With small span
// this stays sparse and tree-like (bounded treewidth in practice) while
// exercising non-tree code paths.
func TreePlusChords(n, chords, span int, rng *rand.Rand) *graph.Graph {
	g := RandomTree(n, rng)
	for added := 0; added < chords; {
		v := rng.Intn(n)
		ball := g.Ball(v, span)
		u := ball[rng.Intn(len(ball))]
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
			added++
		} else {
			added++ // count attempts to guarantee termination
		}
	}
	return g
}
