package gen

import (
	"fmt"
	"math/rand"

	"localmds/internal/ding"
	"localmds/internal/graph"
)

// Kinds lists the workload names FromKind accepts, for CLI usage strings.
const Kinds = "ding|cactus|tree|cycle|grid|outerplanar|cliquependants|gnp"

// FromKind builds one of the named CLI workloads — the single dispatch
// shared by cmd/graphgen and cmd/mdsrun. Generator panics (gen and graph
// reject impossible sizes that way) are converted into errors so invalid
// flag combinations exit cleanly instead of dumping a stack trace. The
// grid kind uses the largest square with at most n vertices; tParam only
// affects ding, p only gnp.
func FromKind(kind string, n, tParam int, p float64, rng *rand.Rand) (g *graph.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("cannot generate %q with n=%d: %v", kind, n, r)
		}
	}()
	switch kind {
	case "ding":
		return ding.Generate(ding.Config{Kind: ding.Mixed, N: n, T: tParam}, rng)
	case "cactus":
		return RandomCactus(n, rng), nil
	case "tree":
		return RandomTree(n, rng), nil
	case "cycle":
		return Cycle(n), nil
	case "grid":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		return Grid(side, side), nil
	case "outerplanar":
		return MaximalOuterplanar(n, rng), nil
	case "cliquependants":
		return CliquePendants(n / 2), nil
	case "gnp":
		return GNPConnected(n, p, rng), nil
	default:
		return nil, fmt.Errorf("unknown generator %q (want %s)", kind, Kinds)
	}
}
