package graphio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/crc64"
	"io"
	"math"
	"os"

	"localmds/internal/graph"
)

// The csrbin format is the repository's zero-parse on-disk graph encoding:
// a frozen graph.CSR written verbatim as little-endian arrays behind a
// fixed 64-byte header, so a loader can mmap the file and serve the
// Offsets/Targets slices straight out of the page cache without copying,
// parsing, or allocating anything proportional to the graph.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	     0     8  magic 89 43 53 52 42 0D 0A 1A ("\x89CSRB\r\n\x1a"; the
//	              PNG-style prefix catches text-mode and truncation damage)
//	     8     4  version (currently 1)
//	    12     4  flags (must be 0)
//	    16     8  n — vertex count
//	    24     8  m — edge count; the Targets array holds 2m arcs
//	    32     8  CRC-64/ECMA of the Offsets bytes followed by the Targets
//	              bytes, exactly as they appear on disk
//	    40    20  reserved, must be zero
//	    60     4  IEEE CRC-32 of header bytes [0, 60)
//	    64  (n+1)*4  Offsets, int32
//	     …   2m*4  Targets, int32
//
// A file is canonical iff every row is strictly ascending (sorted, no
// duplicates, no self-loops) and the arc relation is symmetric — i.e. the
// arrays are exactly what graph.Graph.Freeze or graph.CSRFromEdges
// produce. ReadCSRBin enforces all of that plus both checksums, so an
// accepted stream re-encodes byte-identically; OpenCSRBin trusts the data
// arrays by default (that is the point of the format) and verifies them
// only on request.

// csrbinMagic is the 8-byte file signature.
var csrbinMagic = [8]byte{0x89, 'C', 'S', 'R', 'B', '\r', '\n', 0x1a}

const (
	csrbinVersion   = 1
	csrbinHeaderLen = 64
	// csrbinMaxCount bounds n and 2m: the CSR substrate stores arcs as
	// int32, and n+1 offsets must fit a slice length.
	csrbinMaxCount = math.MaxInt32 - 1
)

// csrbinCRCTable is the CRC-64/ECMA table for the data checksum.
var csrbinCRCTable = crc64.MakeTable(crc64.ECMA)

// FormatError locates a structural or integrity error in a binary graph
// file, the csrbin counterpart of the text formats' *ParseError. Offset is
// the byte position of the offending field (0 for whole-file problems such
// as a bad magic); the taxonomy is deterministic: a given corrupt input
// always yields the same error.
type FormatError struct {
	Offset int64
	Msg    string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("csrbin: byte %d: %s", e.Offset, e.Msg)
}

func formatErrf(offset int64, format string, args ...any) *FormatError {
	return &FormatError{Offset: offset, Msg: fmt.Sprintf(format, args...)}
}

// csrbinHeader is the decoded fixed header.
type csrbinHeader struct {
	n       int
	arcs    int // 2m
	dataCRC uint64
}

// parseCSRBinHeader validates the 64 header bytes against the format spec
// and the caller's limits. maxVertices/maxEdges <= 0 mean unlimited.
func parseCSRBinHeader(hdr []byte, maxVertices, maxEdges int) (csrbinHeader, error) {
	var h csrbinHeader
	if !bytes.Equal(hdr[:8], csrbinMagic[:]) {
		return h, formatErrf(0, "bad magic %x (want %x)", hdr[:8], csrbinMagic[:])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != csrbinVersion {
		return h, formatErrf(8, "unsupported version %d (want %d)", v, csrbinVersion)
	}
	if f := binary.LittleEndian.Uint32(hdr[12:]); f != 0 {
		return h, formatErrf(12, "unknown flags %#x (must be 0)", f)
	}
	if sum := crc32.ChecksumIEEE(hdr[:60]); sum != binary.LittleEndian.Uint32(hdr[60:]) {
		return h, formatErrf(60, "header checksum mismatch (want %#x, got %#x)",
			binary.LittleEndian.Uint32(hdr[60:]), sum)
	}
	for i, b := range hdr[40:60] {
		if b != 0 {
			return h, formatErrf(int64(40+i), "reserved header byte %d is nonzero", 40+i)
		}
	}
	n := binary.LittleEndian.Uint64(hdr[16:])
	m := binary.LittleEndian.Uint64(hdr[24:])
	if n > csrbinMaxCount {
		return h, formatErrf(16, "vertex count %d overflows the int32 CSR substrate", n)
	}
	if m > csrbinMaxCount/2 {
		return h, formatErrf(24, "edge count %d overflows the int32 CSR substrate", m)
	}
	if maxVertices > 0 && n > uint64(maxVertices) {
		return h, formatErrf(16, "vertex count %d exceeds the limit %d", n, maxVertices)
	}
	if maxEdges > 0 && m > uint64(maxEdges) {
		return h, formatErrf(24, "edge count %d exceeds the limit %d", m, maxEdges)
	}
	h.n = int(n)
	h.arcs = int(2 * m)
	h.dataCRC = binary.LittleEndian.Uint64(hdr[32:])
	return h, nil
}

// validateCSRArrays checks the canonical-form invariants shared by the
// streaming reader and OpenCSRBin's Verify mode: offsets monotone from 0
// to 2m, every row strictly ascending with in-range targets, no
// self-loops, and a symmetric arc relation.
func validateCSRArrays(offsets, targets []int32) error {
	n := len(offsets) - 1
	base := int64(csrbinHeaderLen)
	if offsets[0] != 0 {
		return formatErrf(base, "offsets[0] = %d (want 0)", offsets[0])
	}
	for v := 0; v < n; v++ {
		if offsets[v+1] < offsets[v] {
			return formatErrf(base+int64(v+1)*4, "offsets not monotone at vertex %d (%d < %d)",
				v, offsets[v+1], offsets[v])
		}
	}
	if int(offsets[n]) != len(targets) {
		return formatErrf(base+int64(n)*4, "offsets[%d] = %d does not match the arc count %d",
			n, offsets[n], len(targets))
	}
	tbase := base + int64(n+1)*4
	for v := 0; v < n; v++ {
		row := targets[offsets[v]:offsets[v+1]]
		prev := int32(-1)
		for i, u := range row {
			at := tbase + int64(offsets[v])*4 + int64(i)*4
			if u < 0 || int(u) >= n {
				return formatErrf(at, "vertex %d has out-of-range neighbor %d", v, u)
			}
			if int(u) == v {
				return formatErrf(at, "self-loop at vertex %d", v)
			}
			if u <= prev {
				return formatErrf(at, "row of vertex %d not strictly ascending at position %d", v, i)
			}
			prev = u
			if !rowContains(targets[offsets[u]:offsets[u+1]], int32(v)) {
				return formatErrf(at, "asymmetric arc %d->%d", v, u)
			}
		}
	}
	return nil
}

// rowContains binary-searches a sorted row for x.
func rowContains(row []int32, x int32) bool {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == x
}

// readCSRBin is the streaming csrbin reader: it decodes and fully
// validates the file (header, both checksums, canonical-form arrays, no
// trailing bytes) from any io.Reader. It allocates nothing proportional to
// the declared counts until they have passed the limits.
func readCSRBin(r io.Reader, maxVertices, maxEdges int) (*graph.CSR, error) {
	hdr := make([]byte, csrbinHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, formatErrf(0, "truncated header: %v", err)
	}
	h, err := parseCSRBinHeader(hdr, maxVertices, maxEdges)
	if err != nil {
		return nil, err
	}
	crc := uint64(0)
	offsets, crc, err := readInt32s(r, h.n+1, csrbinHeaderLen, crc)
	if err != nil {
		return nil, err
	}
	targets, crc, err := readInt32s(r, h.arcs, csrbinHeaderLen+int64(h.n+1)*4, crc)
	if err != nil {
		return nil, err
	}
	if crc != h.dataCRC {
		return nil, formatErrf(32, "data checksum mismatch (header says %#x, arrays sum to %#x)", h.dataCRC, crc)
	}
	var one [1]byte
	if k, _ := r.Read(one[:]); k != 0 {
		return nil, formatErrf(csrbinHeaderLen+int64(h.n+1)*4+int64(h.arcs)*4, "trailing data after the CSR arrays")
	}
	if err := validateCSRArrays(offsets, targets); err != nil {
		return nil, err
	}
	return &graph.CSR{Offsets: offsets, Targets: targets}, nil
}

// readInt32s decodes count little-endian int32 values, folding the raw
// bytes into the running CRC-64. base is the stream offset of the first
// value, used for truncation errors.
func readInt32s(r io.Reader, count int, base int64, crc uint64) ([]int32, uint64, error) {
	out := make([]int32, count)
	buf := make([]byte, 64<<10)
	done := 0
	for done < count {
		k := min(count-done, len(buf)/4)
		chunk := buf[:k*4]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return nil, crc, formatErrf(base+int64(done)*4,
				"truncated: %d of %d values present (%v)", done, count, err)
		}
		crc = crc64.Update(crc, csrbinCRCTable, chunk)
		for i := 0; i < k; i++ {
			out[done+i] = int32(binary.LittleEndian.Uint32(chunk[i*4:]))
		}
		done += k
	}
	return out, crc, nil
}

// WriteCSRBin writes the canonical csrbin encoding of a frozen CSR view.
// The CSR must be in canonical form (every Freeze/CSRFromEdges result is);
// the writer computes both checksums and never reorders the arrays.
func WriteCSRBin(w io.Writer, c *graph.CSR) error {
	n := c.N()
	arcs := len(c.Targets)
	if n > csrbinMaxCount || arcs > csrbinMaxCount {
		return fmt.Errorf("graphio: csrbin: graph too large (n=%d, arcs=%d)", n, arcs)
	}
	if arcs%2 != 0 {
		return fmt.Errorf("graphio: csrbin: odd arc count %d (CSR not symmetric?)", arcs)
	}
	buf := make([]byte, 64<<10)
	crc := uint64(0)
	sum := func(xs []int32) {
		for len(xs) > 0 {
			k := min(len(xs), len(buf)/4)
			for i := 0; i < k; i++ {
				binary.LittleEndian.PutUint32(buf[i*4:], uint32(xs[i]))
			}
			crc = crc64.Update(crc, csrbinCRCTable, buf[:k*4])
			xs = xs[k:]
		}
	}
	sum(c.Offsets)
	sum(c.Targets)

	hdr := make([]byte, csrbinHeaderLen)
	copy(hdr, csrbinMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], csrbinVersion)
	binary.LittleEndian.PutUint32(hdr[12:], 0)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(n))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(arcs/2))
	binary.LittleEndian.PutUint64(hdr[32:], crc)
	binary.LittleEndian.PutUint32(hdr[60:], crc32.ChecksumIEEE(hdr[:60]))

	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	emit := func(xs []int32) error {
		for len(xs) > 0 {
			k := min(len(xs), len(buf)/4)
			for i := 0; i < k; i++ {
				binary.LittleEndian.PutUint32(buf[i*4:], uint32(xs[i]))
			}
			if _, err := bw.Write(buf[:k*4]); err != nil {
				return err
			}
			xs = xs[k:]
		}
		return nil
	}
	if err := emit(c.Offsets); err != nil {
		return err
	}
	if err := emit(c.Targets); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteCSRBinFile writes g's csrbin encoding to path ("-" writes stdout).
func WriteCSRBinFile(path string, c *graph.CSR) error {
	if path == "-" {
		return WriteCSRBin(os.Stdout, c)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSRBin(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// OpenOptions tune OpenCSRBin.
type OpenOptions struct {
	// MaxVertices and MaxEdges bound the declared counts (<= 0 means
	// unlimited), rejecting oversized headers before anything
	// proportional to them is mapped or allocated.
	MaxVertices int
	MaxEdges    int
	// Verify runs the full O(n + m) canonical-form validation and data
	// checksum over the mapped arrays. Off by default: the point of the
	// mmap path is a load whose cost is independent of the graph, and
	// the header checksum plus the exact-size check already catch
	// truncation and header damage.
	Verify bool
}

// MappedCSR is a loaded csrbin graph: a read-only CSR view that may be
// backed by an mmap'd file. Callers must not modify the arrays and must
// keep the MappedCSR alive (and unclosed) while the CSR view is in use;
// Close unmaps the memory.
type MappedCSR struct {
	// CSR is the graph view. When Mapped is true its arrays alias the
	// page cache directly — loading cost no parse, no copy, and no
	// allocation proportional to the graph.
	CSR graph.CSR
	// Mapped reports whether the arrays are mmap-backed (true only on
	// platforms with mmap support; elsewhere the loader falls back to a
	// validating streaming read into fresh slices).
	Mapped bool
	unmap  func() error
}

// Close releases the mapping, if any. The CSR view is invalid afterwards.
func (m *MappedCSR) Close() error {
	if m.unmap == nil {
		return nil
	}
	u := m.unmap
	m.unmap = nil
	m.CSR = graph.CSR{}
	return u()
}

// OpenCSRBin opens a csrbin file as a read-only CSR view without copying:
// on platforms with mmap support (and a little-endian int32 layout) the
// Offsets/Targets arrays are served straight from the mapping, making the
// load time independent of the graph size. The header is always validated
// (magic, version, checksum, limits) and the file size must match the
// declared counts exactly; pass OpenOptions.Verify to additionally check
// the data checksum and canonical-form invariants. On platforms without
// mmap the loader falls back to the fully-validating streaming reader.
func OpenCSRBin(path string, opt OpenOptions) (*MappedCSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdr := make([]byte, csrbinHeaderLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, formatErrf(0, "truncated header: %v", err)
	}
	h, err := parseCSRBinHeader(hdr, opt.MaxVertices, opt.MaxEdges)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	want := int64(csrbinHeaderLen) + int64(h.n+1)*4 + int64(h.arcs)*4
	if st.Size() != want {
		return nil, formatErrf(st.Size(), "file size %d does not match the header (want %d)", st.Size(), want)
	}
	if !mmapSupported || binary.NativeEndian.Uint32([]byte{1, 2, 3, 4}) != 0x04030201 {
		// No zero-copy path here: stream-read with full validation.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		csr, err := readCSRBin(bufio.NewReaderSize(f, 1<<20), opt.MaxVertices, opt.MaxEdges)
		if err != nil {
			return nil, err
		}
		return &MappedCSR{CSR: *csr}, nil
	}
	data, unmap, err := mapFile(f, want)
	if err != nil {
		return nil, fmt.Errorf("graphio: csrbin: mmap %s: %w", path, err)
	}
	offsets, targets := csrViewsOf(data, h.n, h.arcs)
	m := &MappedCSR{CSR: graph.CSR{Offsets: offsets, Targets: targets}, Mapped: true, unmap: unmap}
	if opt.Verify {
		if err := verifyMapped(data, h, offsets, targets); err != nil {
			m.Close()
			return nil, err
		}
	}
	return m, nil
}

// verifyMapped runs the Verify-mode checks over an established mapping.
func verifyMapped(data []byte, h csrbinHeader, offsets, targets []int32) error {
	if crc := crc64.Checksum(data[csrbinHeaderLen:], csrbinCRCTable); crc != h.dataCRC {
		return formatErrf(32, "data checksum mismatch (header says %#x, arrays sum to %#x)", h.dataCRC, crc)
	}
	return validateCSRArrays(offsets, targets)
}
