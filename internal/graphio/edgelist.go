package graphio

import (
	"bufio"
	"strconv"

	"localmds/internal/graph"
)

// token is one whitespace-delimited field with its 1-based starting column.
type token struct {
	text string
	col  int
}

// splitFields tokenizes a line, recording each token's starting column.
func splitFields(line string, toks []token) []token {
	toks = toks[:0]
	start := -1
	for i := 0; i <= len(line); i++ {
		var space bool
		if i == len(line) {
			space = true
		} else {
			c := line[i]
			space = c == ' ' || c == '\t' || c == '\r'
		}
		switch {
		case space && start >= 0:
			toks = append(toks, token{text: line[start:i], col: start + 1})
			start = -1
		case !space && start < 0:
			start = i
		}
	}
	return toks
}

// parseVertex parses a non-negative vertex index.
func parseVertex(t token, line int) (int, error) {
	v, err := strconv.Atoi(t.text)
	if err != nil || v < 0 {
		return 0, &ParseError{Line: line, Col: t.col, Msg: "expected a non-negative vertex index, got " + strconv.Quote(t.text)}
	}
	return v, nil
}

// readEdgeList parses the plain edge-list format: one "u v" pair per line,
// 0-based endpoints, '#'/'%' comments (whole-line or trailing), blank lines
// ignored. An optional first data line holding a single integer declares
// the vertex count; otherwise n = 1 + max endpoint. Self-loops and
// duplicate edges are collapsed by graph.FromEdgesUnchecked, matching its
// tolerant batch-build contract. With maxVertices > 0, a declared count or
// endpoint beyond the limit fails before any allocation proportional to
// it; with maxEdges > 0, the parse stops at the first edge line past the
// limit.
func readEdgeList(br *bufio.Reader, maxVertices, maxEdges int) (*graph.Graph, error) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var edges [][2]int
	var toks []token
	n := -1 // declared vertex count, if any
	maxV := -1
	lineNo := 0
	sawData := false
	for sc.Scan() {
		lineNo++
		line := stripComment(sc.Text())
		toks = splitFields(line, toks)
		if len(toks) == 0 {
			continue
		}
		if !sawData && len(toks) == 1 {
			// Header line: explicit vertex count.
			v, err := parseVertex(toks[0], lineNo)
			if err != nil {
				return nil, err
			}
			if maxVertices > 0 && v > maxVertices {
				return nil, &ParseError{Line: lineNo, Col: toks[0].col,
					Msg: "vertex count " + strconv.Itoa(v) + " exceeds the limit " + strconv.Itoa(maxVertices)}
			}
			n = v
			sawData = true
			continue
		}
		sawData = true
		if len(toks) != 2 {
			return nil, &ParseError{Line: lineNo, Col: toks[0].col,
				Msg: "expected an edge as two vertex indices \"u v\", got " + strconv.Itoa(len(toks)) + " fields"}
		}
		u, err := parseVertex(toks[0], lineNo)
		if err != nil {
			return nil, err
		}
		v, err := parseVertex(toks[1], lineNo)
		if err != nil {
			return nil, err
		}
		if maxVertices > 0 {
			for i, x := range []int{u, v} {
				if x >= maxVertices {
					return nil, &ParseError{Line: lineNo, Col: toks[i].col,
						Msg: "vertex " + strconv.Itoa(x) + " exceeds the limit of " + strconv.Itoa(maxVertices) + " vertices"}
				}
			}
		}
		if n >= 0 {
			if u >= n {
				return nil, &ParseError{Line: lineNo, Col: toks[0].col,
					Msg: "vertex " + strconv.Itoa(u) + " out of range [0," + strconv.Itoa(n) + ") declared by the header line"}
			}
			if v >= n {
				return nil, &ParseError{Line: lineNo, Col: toks[1].col,
					Msg: "vertex " + strconv.Itoa(v) + " out of range [0," + strconv.Itoa(n) + ") declared by the header line"}
			}
		}
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
		if maxEdges > 0 && len(edges) >= maxEdges {
			return nil, &ParseError{Line: lineNo, Col: toks[0].col,
				Msg: "edge count exceeds the limit " + strconv.Itoa(maxEdges)}
		}
		edges = append(edges, [2]int{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, &ParseError{Line: lineNo + 1, Msg: "read: " + err.Error()}
	}
	if n < 0 {
		n = maxV + 1
	}
	return graph.FromEdgesUnchecked(n, edges), nil
}

// stripComment drops a trailing '#' or '%' comment.
func stripComment(line string) string {
	for i := 0; i < len(line); i++ {
		if line[i] == '#' || line[i] == '%' {
			return line[:i]
		}
	}
	return line
}
