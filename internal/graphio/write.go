package graphio

import (
	"bufio"
	"fmt"
	"io"

	"localmds/internal/graph"
)

// Write encodes g to w in the given format. FormatAuto writes JSON.
func Write(w io.Writer, g *graph.Graph, f Format) error {
	switch f {
	case FormatEdgeList:
		return WriteEdgeList(w, g)
	case FormatDIMACS:
		return WriteDIMACS(w, g)
	default:
		return g.WriteJSON(w)
	}
}

// WriteEdgeList writes the plain edge-list encoding of g: a header line
// with the vertex count (so isolated vertices survive a round trip)
// followed by one "u v" line per edge in canonical order.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n", g.N())
	g.VisitEdges(func(u, v int) {
		fmt.Fprintf(bw, "%d %d\n", u, v)
	})
	return bw.Flush()
}

// WriteDIMACS writes the DIMACS encoding of g: a "p edge n m" problem line
// followed by one 1-based "e u v" line per edge in canonical order.
func WriteDIMACS(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p edge %d %d\n", g.N(), g.M())
	g.VisitEdges(func(u, v int) {
		fmt.Fprintf(bw, "e %d %d\n", u+1, v+1)
	})
	return bw.Flush()
}
