package graphio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"hash/crc64"
	"testing"

	"localmds/internal/graph"
)

// fuzzCSRBinEncode builds a valid csrbin file for the seed corpus.
func fuzzCSRBinEncode(n int, edges [][2]int) []byte {
	var buf bytes.Buffer
	if err := WriteCSRBin(&buf, graph.FromEdgesUnchecked(n, edges).Freeze()); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// fuzzCSRBinForge frames arbitrary arrays with a valid header and valid
// checksums, so mutation reaches the structural validation instead of
// dying at the CRCs.
func fuzzCSRBinForge(n, m uint64, offsets, targets []int32) []byte {
	var data bytes.Buffer
	raw := make([]byte, 4)
	crc := uint64(0)
	for _, xs := range [][]int32{offsets, targets} {
		for _, x := range xs {
			binary.LittleEndian.PutUint32(raw, uint32(x))
			crc = crc64.Update(crc, csrbinCRCTable, raw)
			data.Write(raw)
		}
	}
	hdr := make([]byte, csrbinHeaderLen)
	copy(hdr, csrbinMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], csrbinVersion)
	binary.LittleEndian.PutUint64(hdr[16:], n)
	binary.LittleEndian.PutUint64(hdr[24:], m)
	binary.LittleEndian.PutUint64(hdr[32:], crc)
	binary.LittleEndian.PutUint32(hdr[60:], crc32.ChecksumIEEE(hdr[:60]))
	return append(hdr, data.Bytes()...)
}

// FuzzReadCSRBin drives the binary reader with the same contract the text
// parsers carry: no input may panic, every rejection is a *FormatError,
// the limits hold, and every accepted input round-trips bit-identically
// through the writer.
func FuzzReadCSRBin(f *testing.F) {
	f.Add(fuzzCSRBinEncode(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}))
	f.Add(fuzzCSRBinEncode(0, nil))
	f.Add(fuzzCSRBinEncode(7, nil))
	f.Add(fuzzCSRBinForge(2, 1, []int32{0, 1, 2}, []int32{1, 0}))
	f.Add(fuzzCSRBinForge(2, 1, []int32{0, 2, 1}, []int32{1, 0}))     // non-monotone offsets
	f.Add(fuzzCSRBinForge(2, 1, []int32{0, 1, 2}, []int32{5, 0}))     // out-of-range target
	f.Add(fuzzCSRBinForge(1<<40, 0, nil, nil))                        // oversized n
	f.Add(fuzzCSRBinForge(2, 1<<40, []int32{0, 1, 2}, []int32{1, 0})) // oversized m
	f.Add(csrbinMagic[:])                                             // magic then truncation
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := readCSRBin(bytes.NewReader(data), fuzzVertexLimit, fuzzEdgeLimit)
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("rejection is not a *FormatError: %v", err)
			}
			if fe.Offset < 0 || fe.Error() == "" {
				t.Fatalf("malformed FormatError: %+v", fe)
			}
			return
		}
		if c.N() > fuzzVertexLimit || len(c.Targets) > 2*fuzzEdgeLimit {
			t.Fatalf("accepted graph above the limits: n=%d arcs=%d", c.N(), len(c.Targets))
		}
		// Accepted inputs are canonical, so re-encoding must reproduce
		// the input byte for byte.
		var buf bytes.Buffer
		if err := WriteCSRBin(&buf, c); err != nil {
			t.Fatalf("re-encode of accepted input: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("accepted input does not round-trip byte-identically (%d in, %d out)",
				len(data), buf.Len())
		}
	})
}
