package graphio

import (
	"bufio"
	"strconv"

	"localmds/internal/graph"
)

// readDIMACS parses the DIMACS graph format: 'c' comment lines, a single
// 'p edge <n> <m>' (or 'p col ...') problem line, then 'e <u> <v>' edge
// lines with 1-based endpoints in [1, n]. The declared edge count m is
// advisory (real-world files routinely mis-state it); endpoints are
// validated strictly. Duplicate edges and self-loops are collapsed by
// graph.FromEdgesUnchecked. With maxVertices > 0, a declared count beyond
// the limit fails before any allocation proportional to it; with
// maxEdges > 0, both the declared m and the actual number of edge lines
// are bounded.
func readDIMACS(br *bufio.Reader, maxVertices, maxEdges int) (*graph.Graph, error) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var edges [][2]int
	var toks []token
	n := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		toks = splitFields(sc.Text(), toks)
		if len(toks) == 0 {
			continue
		}
		switch toks[0].text {
		case "c":
			continue
		case "p":
			if n >= 0 {
				return nil, &ParseError{Line: lineNo, Col: toks[0].col, Msg: "duplicate problem line"}
			}
			if len(toks) < 3 {
				return nil, &ParseError{Line: lineNo, Col: toks[0].col,
					Msg: "malformed problem line, want \"p edge <vertices> <edges>\""}
			}
			v, err := strconv.Atoi(toks[2].text)
			if err != nil || v < 0 {
				return nil, &ParseError{Line: lineNo, Col: toks[2].col,
					Msg: "expected a non-negative vertex count, got " + strconv.Quote(toks[2].text)}
			}
			if maxVertices > 0 && v > maxVertices {
				return nil, &ParseError{Line: lineNo, Col: toks[2].col,
					Msg: "vertex count " + strconv.Itoa(v) + " exceeds the limit " + strconv.Itoa(maxVertices)}
			}
			n = v
			if len(toks) > 3 {
				m, err := strconv.Atoi(toks[3].text)
				if err != nil {
					return nil, &ParseError{Line: lineNo, Col: toks[3].col,
						Msg: "expected an edge count, got " + strconv.Quote(toks[3].text)}
				}
				if maxEdges > 0 && m > maxEdges {
					return nil, &ParseError{Line: lineNo, Col: toks[3].col,
						Msg: "edge count " + strconv.Itoa(m) + " exceeds the limit " + strconv.Itoa(maxEdges)}
				}
			}
		case "e":
			if n < 0 {
				return nil, &ParseError{Line: lineNo, Col: toks[0].col,
					Msg: "edge line before the \"p\" problem line"}
			}
			if len(toks) != 3 {
				return nil, &ParseError{Line: lineNo, Col: toks[0].col,
					Msg: "expected an edge line \"e <u> <v>\", got " + strconv.Itoa(len(toks)) + " fields"}
			}
			u, err := parseDIMACSVertex(toks[1], lineNo, n)
			if err != nil {
				return nil, err
			}
			v, err := parseDIMACSVertex(toks[2], lineNo, n)
			if err != nil {
				return nil, err
			}
			if maxEdges > 0 && len(edges) >= maxEdges {
				return nil, &ParseError{Line: lineNo, Col: toks[0].col,
					Msg: "edge count exceeds the limit " + strconv.Itoa(maxEdges)}
			}
			edges = append(edges, [2]int{u - 1, v - 1})
		default:
			return nil, &ParseError{Line: lineNo, Col: toks[0].col,
				Msg: "unknown line type " + strconv.Quote(toks[0].text) + " (want c, p, or e)"}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, &ParseError{Line: lineNo + 1, Msg: "read: " + err.Error()}
	}
	if n < 0 {
		return nil, &ParseError{Line: lineNo + 1, Msg: "missing \"p edge <vertices> <edges>\" problem line"}
	}
	return graph.FromEdgesUnchecked(n, edges), nil
}

// parseDIMACSVertex parses a 1-based endpoint and range-checks it against
// the declared vertex count.
func parseDIMACSVertex(t token, line, n int) (int, error) {
	v, err := strconv.Atoi(t.text)
	if err != nil || v < 1 {
		return 0, &ParseError{Line: line, Col: t.col,
			Msg: "expected a 1-based vertex index, got " + strconv.Quote(t.text)}
	}
	if v > n {
		return 0, &ParseError{Line: line, Col: t.col,
			Msg: "vertex " + strconv.Itoa(v) + " out of range [1," + strconv.Itoa(n) + "] declared by the problem line"}
	}
	return v, nil
}
