//go:build linux

package graphio

import (
	"os"
	"syscall"
	"unsafe"
)

// mmapSupported gates the zero-copy loader in OpenCSRBin.
const mmapSupported = true

// mapFile maps size bytes of f read-only and returns the mapping plus its
// unmap function. A zero-size mapping is invalid, so empty files get a
// non-mmap empty slice and a no-op unmap.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

// csrViewsOf reinterprets the mapped file as the two CSR arrays. The
// 64-byte header keeps both int32 views 4-byte aligned, and the caller has
// already checked that the platform is little-endian and the file size
// matches the header, so the views are exactly the arrays the writer laid
// out. The backing memory is PROT_READ: writing through these slices
// faults, which is the contract MappedCSR documents.
func csrViewsOf(data []byte, n, arcs int) (offsets, targets []int32) {
	vals := unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(data[csrbinHeaderLen:]))), n+1+arcs)
	return vals[: n+1 : n+1], vals[n+1:]
}
