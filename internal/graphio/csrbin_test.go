package graphio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"localmds/internal/graph"
)

// encodeCSRBin is the test helper: WriteCSRBin into memory.
func encodeCSRBin(t *testing.T, c *graph.CSR) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCSRBin(&buf, c); err != nil {
		t.Fatalf("WriteCSRBin: %v", err)
	}
	return buf.Bytes()
}

// rehdr recomputes the header CRC after a test mutates header bytes, so
// the mutation under test is reached instead of tripping the header
// checksum first.
func rehdr(b []byte) {
	binary.LittleEndian.PutUint32(b[60:], crc32.ChecksumIEEE(b[:60]))
}

// Property: text parse → csrbin → ReadCSRBin reproduces the frozen CSR
// bit-identically, whatever the graph.
func TestCSRBinRoundTrip(t *testing.T) {
	f := func(seed int64, rawN uint8, rawM uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%64) + 1
		edges := make([][2]int, int(rawM%256))
		for i := range edges {
			edges[i] = [2]int{rng.Intn(n), rng.Intn(n)}
		}
		want := graph.FromEdgesUnchecked(n, edges).Freeze()
		var buf bytes.Buffer
		if err := WriteCSRBin(&buf, want); err != nil {
			return false
		}
		got, err := readCSRBin(bytes.NewReader(buf.Bytes()), 0, 0)
		if err != nil {
			return false
		}
		return got.Fingerprint() == want.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The Read front door dispatches csrbin explicitly and via the magic
// sniff, returning an equal graph either way.
func TestCSRBinReadAndDetect(t *testing.T) {
	g := graph.FromEdgesUnchecked(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}})
	data := encodeCSRBin(t, g.Freeze())

	if f, err := Detect(data); err != nil || f != FormatCSRBin {
		t.Fatalf("Detect = %v, %v; want csrbin", f, err)
	}
	for _, f := range []Format{FormatCSRBin, FormatAuto} {
		got, err := Read(bytes.NewReader(data), f)
		if err != nil {
			t.Fatalf("Read(%v): %v", f, err)
		}
		if !got.Equal(g) {
			t.Fatalf("Read(%v) changed the graph", f)
		}
	}
	if f, err := ParseFormat("csrbin"); err != nil || f != FormatCSRBin {
		t.Fatalf("ParseFormat(csrbin) = %v, %v", f, err)
	}
	if FormatCSRBin.String() != "csrbin" {
		t.Fatalf("String() = %q", FormatCSRBin.String())
	}
}

// corrupt applies a named mutation; every one must be rejected with a
// *FormatError whose offset and message are deterministic.
func TestCSRBinCorruptionTaxonomy(t *testing.T) {
	g := graph.FromEdgesUnchecked(5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	base := encodeCSRBin(t, g.Freeze())

	cases := []struct {
		name    string
		mutate  func(b []byte) []byte
		wantSub string
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"bad version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 99)
			rehdr(b)
			return b
		}, "unsupported version"},
		{"unknown flags", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], 7)
			rehdr(b)
			return b
		}, "unknown flags"},
		{"header checksum", func(b []byte) []byte { b[16] ^= 1; return b }, "header checksum mismatch"},
		{"reserved nonzero", func(b []byte) []byte {
			b[45] = 1
			rehdr(b)
			return b
		}, "reserved header byte"},
		{"truncated header", func(b []byte) []byte { return b[:40] }, "truncated header"},
		{"truncated arrays", func(b []byte) []byte { return b[:len(b)-3] }, "truncated"},
		{"trailing data", func(b []byte) []byte { return append(b, 0) }, "trailing data"},
		{"data corruption", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, "checksum mismatch"},
		{"overflowing n", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], 1<<40)
			rehdr(b)
			return b
		}, "overflows"},
		{"overflowing m", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[24:], 1<<40)
			rehdr(b)
			return b
		}, "overflows"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), base...))
			_, err := readCSRBin(bytes.NewReader(data), 0, 0)
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("want *FormatError, got %v", err)
			}
			if !strings.Contains(fe.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", fe.Error(), tc.wantSub)
			}
			// Determinism: the same corrupt input yields the same error.
			_, err2 := readCSRBin(bytes.NewReader(data), 0, 0)
			if err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("non-deterministic error: %v vs %v", err, err2)
			}
		})
	}
}

// Non-canonical arrays — valid header and checksums over bad content —
// must be rejected by the structural validation.
func TestCSRBinNonCanonicalArrays(t *testing.T) {
	cases := []struct {
		name    string
		offsets []int32
		targets []int32
		wantSub string
	}{
		{"offsets not starting at 0", []int32{1, 2, 2}, []int32{1, 0}, "offsets[0]"},
		{"offsets not monotone", []int32{0, 2, 1}, []int32{1, 0}, "not monotone"},
		{"offsets end mismatch", []int32{0, 1, 1}, []int32{1, 0}, "does not match the arc count"},
		{"target out of range", []int32{0, 1, 2}, []int32{5, 0}, "out-of-range neighbor"},
		{"self-loop", []int32{0, 1, 2}, []int32{0, 0}, "self-loop"},
		{"row not sorted", []int32{0, 2, 2, 4}, []int32{2, 1, 0, 0}, "not strictly ascending"},
		{"asymmetric arc", []int32{0, 1, 2, 2}, []int32{1, 2}, "asymmetric arc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The writer trusts its input arrays beyond basic size checks,
			// so encoding a forged CSR yields a well-framed file with
			// valid checksums over non-canonical content — exactly what
			// the structural validation must catch.
			c := &graph.CSR{Offsets: tc.offsets, Targets: tc.targets}
			var buf bytes.Buffer
			if err := WriteCSRBin(&buf, c); err != nil {
				t.Fatalf("WriteCSRBin: %v", err)
			}
			_, err := readCSRBin(bytes.NewReader(buf.Bytes()), 0, 0)
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("want *FormatError, got %v", err)
			}
			if !strings.Contains(fe.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", fe.Error(), tc.wantSub)
			}
		})
	}
}

// The reader's limits bound the declared counts before allocation.
func TestCSRBinLimits(t *testing.T) {
	g := graph.FromEdgesUnchecked(10, [][2]int{{0, 1}, {2, 3}, {4, 5}})
	data := encodeCSRBin(t, g.Freeze())
	if _, err := readCSRBin(bytes.NewReader(data), 5, 0); err == nil ||
		!strings.Contains(err.Error(), "exceeds the limit") {
		t.Fatalf("vertex limit not enforced: %v", err)
	}
	if _, err := readCSRBin(bytes.NewReader(data), 0, 2); err == nil ||
		!strings.Contains(err.Error(), "exceeds the limit") {
		t.Fatalf("edge limit not enforced: %v", err)
	}
	if _, err := readCSRBin(bytes.NewReader(data), 10, 3); err != nil {
		t.Fatalf("at the limits rejected: %v", err)
	}
}

// OpenCSRBin serves the same graph as the streaming reader, zero-copy
// where the platform supports it, and Verify catches data corruption that
// the fast path deliberately skips.
func TestOpenCSRBin(t *testing.T) {
	g := graph.FromEdgesUnchecked(8, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {5, 6}, {6, 7}})
	want := g.Freeze()
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csrbin")
	if err := WriteCSRBinFile(path, want); err != nil {
		t.Fatal(err)
	}

	m, err := OpenCSRBin(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.CSR.Fingerprint() != want.Fingerprint() {
		t.Fatal("mapped CSR differs from the written one")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}

	m, err = OpenCSRBin(path, OpenOptions{Verify: true})
	if err != nil {
		t.Fatalf("Verify on a good file: %v", err)
	}
	m.Close()

	// Limits apply at open time.
	if _, err := OpenCSRBin(path, OpenOptions{MaxVertices: 3}); err == nil {
		t.Fatal("vertex limit not enforced by OpenCSRBin")
	}
	if _, err := OpenCSRBin(path, OpenOptions{MaxEdges: 2}); err == nil {
		t.Fatal("edge limit not enforced by OpenCSRBin")
	}

	// A size mismatch (truncation past the header) fails without Verify.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	short := filepath.Join(dir, "short.csrbin")
	if err := os.WriteFile(short, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCSRBin(short, OpenOptions{}); err == nil {
		t.Fatal("size mismatch not detected")
	}

	// Flipped payload bytes pass the fast open but fail Verify.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 1
	badPath := filepath.Join(dir, "bad.csrbin")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCSRBin(badPath, OpenOptions{Verify: true}); err == nil {
		t.Fatal("Verify missed data corruption")
	}
}

// The empty graph round-trips through both readers.
func TestCSRBinEmptyGraph(t *testing.T) {
	want := graph.New(0).Freeze()
	data := encodeCSRBin(t, want)
	got, err := readCSRBin(bytes.NewReader(data), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 0 || len(got.Targets) != 0 {
		t.Fatalf("n=%d arcs=%d", got.N(), len(got.Targets))
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.csrbin")
	if err := WriteCSRBinFile(path, want); err != nil {
		t.Fatal(err)
	}
	m, err := OpenCSRBin(path, OpenOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.CSR.N() != 0 {
		t.Fatalf("mapped empty graph has n=%d", m.CSR.N())
	}
}
