//go:build !linux

package graphio

import "os"

// mmapSupported gates the zero-copy loader in OpenCSRBin; without it the
// loader falls back to the fully-validating streaming read.
const mmapSupported = false

func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	panic("graphio: mapFile called on a platform without mmap support")
}

func csrViewsOf(data []byte, n, arcs int) (offsets, targets []int32) {
	panic("graphio: csrViewsOf called on a platform without mmap support")
}
