package graphio

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"localmds/internal/graph"
	"localmds/internal/runner"
)

// genEdgeListText renders a random messy edge list (comments, blank lines,
// optional header) and returns it with the sequentially-parsed reference.
func genEdgeListText(t *testing.T, seed int64, lines int, header bool) (string, *graph.CSR) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 200 + rng.Intn(200)
	var b strings.Builder
	b.WriteString("# generated test input\n")
	if header {
		fmt.Fprintf(&b, "%d\n", n)
	}
	for i := 0; i < lines; i++ {
		switch rng.Intn(12) {
		case 0:
			b.WriteString("\n")
		case 1:
			b.WriteString("% a comment line\n")
		case 2:
			fmt.Fprintf(&b, "%d %d # trailing comment\n", rng.Intn(n), rng.Intn(n))
		case 3:
			fmt.Fprintf(&b, "  %d\t%d  \n", rng.Intn(n), rng.Intn(n))
		default:
			fmt.Fprintf(&b, "%d %d\n", rng.Intn(n), rng.Intn(n))
		}
	}
	text := b.String()
	g, err := Read(strings.NewReader(text), FormatEdgeList)
	if err != nil {
		t.Fatalf("sequential reference parse: %v", err)
	}
	return text, g.Freeze()
}

// genDIMACSText renders a random DIMACS file with the reference parse.
func genDIMACSText(t *testing.T, seed int64, lines int) (string, *graph.CSR) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 150 + rng.Intn(150)
	var b strings.Builder
	b.WriteString("c generated test input\nc another comment\n")
	fmt.Fprintf(&b, "p edge %d %d\n", n, lines)
	for i := 0; i < lines; i++ {
		if rng.Intn(10) == 0 {
			b.WriteString("c interleaved comment\n")
		}
		fmt.Fprintf(&b, "e %d %d\n", rng.Intn(n)+1, rng.Intn(n)+1)
	}
	text := b.String()
	g, err := Read(strings.NewReader(text), FormatDIMACS)
	if err != nil {
		t.Fatalf("sequential reference parse: %v", err)
	}
	return text, g.Freeze()
}

// Parallel parse determinism: the same graph, with byte-identical
// fingerprint, at every worker count — and equal to the sequential
// Read(...).Freeze() reference. minChunkBytes would keep these small
// inputs in one chunk, so the inputs are padded past it by comment lines.
func TestParseCSRWorkerCountInvariance(t *testing.T) {
	pad := strings.Repeat("# padding to push the input well past one chunk\n", 3000)
	cases := []struct {
		name   string
		format Format
	}{
		{"edgelist-header", FormatEdgeList},
		{"edgelist-noheader", FormatEdgeList},
		{"dimacs", FormatDIMACS},
	}
	for ci, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var text string
			var want *graph.CSR
			switch tc.name {
			case "edgelist-header":
				text, want = genEdgeListText(t, int64(ci)+1, 4000, true)
				text = pad + text
			case "edgelist-noheader":
				text, want = genEdgeListText(t, int64(ci)+2, 4000, false)
				text = pad + text
			default:
				text, want = genDIMACSText(t, int64(ci)+3, 4000)
				text = strings.Repeat("c padding to push the input well past one chunk\n", 3000) + text
			}
			ref, err := Read(strings.NewReader(text), tc.format)
			if err != nil {
				t.Fatal(err)
			}
			want = ref.Freeze()
			for _, w := range []int{0, 1, 2, 4, 8} {
				opt := CSROptions{}
				if w > 0 {
					pool := runner.NewPool(w, 4*w)
					opt.Pool = pool
					defer pool.Close()
				}
				got, err := ParseCSR([]byte(text), tc.format, opt)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if got.Fingerprint() != want.Fingerprint() {
					t.Fatalf("workers=%d: fingerprint %s != sequential %s",
						w, got.Fingerprint(), want.Fingerprint())
				}
			}
		})
	}
}

// The parallel parser reports the same first error as the sequential one,
// at any worker count: chunk errors merge by smallest (line, column).
func TestParseCSRErrorsMatchSequential(t *testing.T) {
	pad := strings.Repeat("0 1\n", 40000) // multiple chunks of valid edges
	cases := []struct {
		name   string
		format Format
		text   string
	}{
		{"bad token late", FormatEdgeList, pad + "3 x\n" + pad},
		{"three fields", FormatEdgeList, pad + "1 2 3\n" + pad},
		{"negative vertex", FormatEdgeList, pad + "-4 1\n" + pad},
		{"out of declared range", FormatEdgeList, "9\n" + pad + "1 9\n" + pad},
		{"two errors keep first", FormatEdgeList, pad + "a b\n" + pad + "c d\n"},
		{"dimacs bad endpoint", FormatDIMACS, "p edge 2 1\n" + strings.Repeat("e 1 2\n", 40000) + "e 1 99\n"},
		{"dimacs duplicate p", FormatDIMACS, "p edge 2 1\n" + strings.Repeat("e 1 2\n", 40000) + "p edge 2 1\n"},
		{"dimacs unknown type", FormatDIMACS, "p edge 2 1\n" + strings.Repeat("e 1 2\n", 40000) + "q 1 2\n"},
	}
	pool := runner.NewPool(4, 16)
	defer pool.Close()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, wantErr := Read(strings.NewReader(tc.text), tc.format)
			if wantErr == nil {
				t.Fatal("reference parse unexpectedly succeeded")
			}
			for _, opt := range []CSROptions{{}, {Pool: pool}} {
				_, err := ParseCSR([]byte(tc.text), tc.format, opt)
				if err == nil {
					t.Fatal("parallel parse unexpectedly succeeded")
				}
				if err.Error() != wantErr.Error() {
					t.Fatalf("error %q != sequential %q", err, wantErr)
				}
			}
		})
	}
}

// ParseCSR handles the non-chunking formats through the same front door.
func TestParseCSROtherFormats(t *testing.T) {
	g := graph.FromEdgesUnchecked(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	want := g.Freeze()

	jsonText := []byte(`{"n":4,"edges":[[0,1],[1,2],[2,3]]}`)
	got, err := ParseCSR(jsonText, FormatJSON, CSROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatal("json fingerprint mismatch")
	}

	var bin bytes.Buffer
	if err := WriteCSRBin(&bin, want); err != nil {
		t.Fatal(err)
	}
	got, err = ParseCSR(bin.Bytes(), FormatAuto, CSROptions{}) // magic sniff
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatal("csrbin fingerprint mismatch")
	}
}

// ParseCSR enforces the same limits as ReadLimited.
func TestParseCSRLimits(t *testing.T) {
	if _, err := ParseCSR([]byte("1000001\n0 1\n"), FormatEdgeList, CSROptions{MaxVertices: 1_000_000}); err == nil {
		t.Fatal("vertex limit not enforced")
	}
	if _, err := ParseCSR([]byte("0 1\n1 2\n2 3\n"), FormatEdgeList, CSROptions{MaxEdges: 2}); err == nil {
		t.Fatal("edge limit not enforced")
	}
	if _, err := ParseCSR([]byte("p edge 4 3\n"), FormatDIMACS, CSROptions{MaxEdges: 2}); err == nil {
		t.Fatal("declared edge limit not enforced")
	}
	if _, err := ParseCSR([]byte("0 1\n1 2\n"), FormatEdgeList, CSROptions{MaxEdges: 2}); err != nil {
		t.Fatalf("at the limit rejected: %v", err)
	}
}

// ParseCSRFile reads from disk with name-prefixed errors.
func TestParseCSRFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/g.edges"
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := ParseCSRFile(path, FormatAuto, CSROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 3 {
		t.Fatalf("n = %d, want 3", c.N())
	}
	bad := dir + "/bad.edges"
	if err := os.WriteFile(bad, []byte("0 x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseCSRFile(bad, FormatEdgeList, CSROptions{}); err == nil ||
		!strings.Contains(err.Error(), "bad.edges") {
		t.Fatalf("error not name-prefixed: %v", err)
	}
}
