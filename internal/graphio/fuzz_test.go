package graphio

import (
	"bytes"
	"errors"
	"testing"

	"localmds/internal/graph"
)

// The graphio parsers face the network through mdsd's /v1/solve "data"
// payloads, so they are fuzzed under the same contract the service
// relies on (extending the internal/graph/fuzz_test.go pattern):
//
//   - no input may panic a parser;
//   - every rejection of a text format is a *ParseError with a 1-based
//     line position;
//   - ReadLimited never accepts a graph above its vertex bound;
//   - every accepted graph validates and round-trips bit-identically
//     through the matching writer (parse → write → parse → Equal).
//
// Seed corpora live in testdata/fuzz/<Target>/ so `go test` replays
// them on every run and CI's -fuzz smoke mutates from real inputs.

// fuzzVertexLimit keeps adversarial vertex counts from allocating
// gigabytes per exec while still exercising the limit checks;
// fuzzEdgeLimit does the same for declared edge counts.
const (
	fuzzVertexLimit = 1 << 16
	fuzzEdgeLimit   = 1 << 17
)

// checkTextParse enforces the shared text-format contract and returns
// the parsed graph (nil if the input was rejected).
func checkTextParse(t *testing.T, data []byte, f Format) *graph.Graph {
	t.Helper()
	g, err := ReadLimited(bytes.NewReader(data), f, fuzzVertexLimit, fuzzEdgeLimit)
	if err != nil {
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("%v rejection is not a *ParseError: %v", f, err)
		}
		if pe.Line < 1 {
			t.Fatalf("%v ParseError with non-positive line: %+v", f, pe)
		}
		if pe.Error() == "" {
			t.Fatalf("%v ParseError with empty message", f)
		}
		return nil
	}
	if g.N() > fuzzVertexLimit {
		t.Fatalf("%v accepted %d vertices above the %d limit", f, g.N(), fuzzVertexLimit)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("%v accepted graph fails validation: %v", f, err)
	}
	return g
}

// roundTrip writes g in format f and re-parses it, requiring equality.
func roundTrip(t *testing.T, g *graph.Graph, f Format) {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, g, f); err != nil {
		t.Fatalf("write %v: %v", f, err)
	}
	h, err := Read(bytes.NewReader(buf.Bytes()), f)
	if err != nil {
		t.Fatalf("round trip rejected %v output %q: %v", f, buf.String(), err)
	}
	if !g.Equal(h) {
		t.Fatalf("round trip through %v changed the graph:\n%q", f, buf.String())
	}
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("4\n0 1\n2 3\n"))
	f.Add([]byte("# comment\n3\n0 1 # trailing\n\n1 2\n"))
	f.Add([]byte("7\n"))
	f.Add([]byte("0 0\n0 1\n0 1\n")) // self-loop + duplicate: collapsed
	f.Add([]byte("2\n0 5\n"))        // out of declared range
	f.Add([]byte("x y\n"))
	f.Add([]byte("99999999999999999999 0\n")) // overflows int
	f.Add([]byte("65537\n"))                  // above the fuzz vertex limit
	f.Fuzz(func(t *testing.T, data []byte) {
		g := checkTextParse(t, data, FormatEdgeList)
		if g != nil {
			roundTrip(t, g, FormatEdgeList)
		}
	})
}

func FuzzReadDIMACS(f *testing.F) {
	f.Add([]byte("c comment\np edge 3 2\ne 1 2\ne 2 3\n"))
	f.Add([]byte("p edge 0 0\n"))
	f.Add([]byte("p edge 2 1\ne 1 1\n")) // self-loop: collapsed
	f.Add([]byte("e 1 2\n"))             // edge before problem line
	f.Add([]byte("p edge 2 1\np edge 2 1\n"))
	f.Add([]byte("p edge 2 1\ne 1 9\n")) // endpoint out of range
	f.Add([]byte("q edge 2 1\n"))
	f.Add([]byte("p edge 65537 0\n")) // above the fuzz vertex limit
	f.Fuzz(func(t *testing.T, data []byte) {
		g := checkTextParse(t, data, FormatDIMACS)
		if g != nil {
			roundTrip(t, g, FormatDIMACS)
		}
	})
}

func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"n":3,"edges":[[0,1],[1,2]]}`))
	f.Add([]byte(`{"n":0,"edges":[]}`))
	f.Add([]byte(`{"n":-1}`))
	f.Add([]byte(`{"n":2,"edges":[[0,0]]}`))
	f.Add([]byte(`{"n":65537,"edges":[]}`))
	f.Add([]byte(`{"n":1e9}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadLimited(bytes.NewReader(data), FormatJSON, fuzzVertexLimit, fuzzEdgeLimit)
		if err != nil {
			return
		}
		if g.N() > fuzzVertexLimit {
			t.Fatalf("json accepted %d vertices above the %d limit", g.N(), fuzzVertexLimit)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("json accepted graph fails validation: %v", err)
		}
		roundTrip(t, g, FormatJSON)
	})
}

// FuzzReadAuto drives the sniffing front door exactly as the service's
// format-auto "data" payloads do: whatever the bytes, detection plus the
// dispatched parser must never panic, and anything accepted must be a
// valid in-limit graph.
func FuzzReadAuto(f *testing.F) {
	f.Add([]byte("0 1\n"))
	f.Add([]byte("c x\np edge 2 1\ne 1 2\n"))
	f.Add([]byte(`{"n":2,"edges":[[0,1]]}`))
	f.Add([]byte("\n\t 5\n0 1\n"))
	f.Add([]byte("!garbage"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadLimited(bytes.NewReader(data), FormatAuto, fuzzVertexLimit, fuzzEdgeLimit)
		if err != nil {
			return
		}
		if g.N() > fuzzVertexLimit {
			t.Fatalf("auto accepted %d vertices above the %d limit", g.N(), fuzzVertexLimit)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("auto accepted graph fails validation: %v", err)
		}
	})
}
