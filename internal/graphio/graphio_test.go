package graphio

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"localmds/internal/gen"
	"localmds/internal/graph"
)

func mustRead(t *testing.T, input string, f Format) *graph.Graph {
	t.Helper()
	g, err := Read(strings.NewReader(input), f)
	if err != nil {
		t.Fatalf("Read(%q, %v): %v", input, f, err)
	}
	return g
}

func sameGraph(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("graph mismatch: got n=%d m=%d, want n=%d m=%d", got.N(), got.M(), want.N(), want.M())
	}
	want.VisitEdges(func(u, v int) {
		if !got.HasEdge(u, v) {
			t.Fatalf("missing edge {%d,%d}", u, v)
		}
	})
}

func TestReadEdgeList(t *testing.T) {
	want := graph.MustFromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	for name, input := range map[string]string{
		"plain":        "0 1\n1 2\n2 3\n",
		"header":       "5\n0 1\n1 2\n2 3\n",
		"comments":     "# a comment\n5 # header\n0 1  # trailing\n% another\n1 2\n\n2 3\n",
		"whitespace":   "  0\t1 \r\n1 2\n2 3\n",
		"duplicates":   "5\n0 1\n1 0\n1 2\n2 3\n2 2\n",
		"unordered":    "2 3\n1 2\n0 1\n4 4\n",
		"headerspaced": "  5  \n0 1\n1 2\n2 3\n",
	} {
		t.Run(name, func(t *testing.T) {
			g := mustRead(t, input, FormatEdgeList)
			if name == "plain" || name == "whitespace" {
				// No header: n is max endpoint + 1 = 4.
				sameGraph(t, g, graph.MustFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}))
				return
			}
			sameGraph(t, g, want)
		})
	}
}

func TestReadDIMACS(t *testing.T) {
	input := "c a comment\np edge 5 3\ne 1 2\ne 2 3\ne 3 4\n"
	g := mustRead(t, input, FormatDIMACS)
	sameGraph(t, g, graph.MustFromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}}))
}

func TestAutoDetect(t *testing.T) {
	cases := []struct {
		input string
		want  Format
	}{
		{`{"n":3,"edges":[[0,1],[1,2]]}`, FormatJSON},
		{"0 1\n1 2\n", FormatEdgeList},
		{"# comment\n0 1\n1 2\n", FormatEdgeList},
		{"c x\np edge 3 2\ne 1 2\ne 2 3\n", FormatDIMACS},
		{"p edge 3 2\ne 1 2\ne 2 3\n", FormatDIMACS},
	}
	want := graph.MustFromEdges(3, [][2]int{{0, 1}, {1, 2}})
	for _, c := range cases {
		f, err := Detect([]byte(c.input))
		if err != nil {
			t.Fatalf("Detect(%q): %v", c.input, err)
		}
		if f != c.want {
			t.Fatalf("Detect(%q) = %v, want %v", c.input, f, c.want)
		}
		sameGraph(t, mustRead(t, c.input, FormatAuto), want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, input string
		f           Format
		line, col   int
	}{
		{"negative vertex", "0 1\n1 -2\n", FormatEdgeList, 2, 3},
		{"non-numeric", "0 1\nfoo 2\n", FormatEdgeList, 2, 1},
		{"three fields", "0 1 2\n", FormatEdgeList, 1, 1},
		{"header range", "3\n0 5\n", FormatEdgeList, 2, 3},
		{"dimacs no p", "e 1 2\n", FormatDIMACS, 1, 1},
		{"dimacs range", "p edge 3 1\ne 1 9\n", FormatDIMACS, 2, 5},
		{"dimacs zero vertex", "p edge 3 1\ne 0 1\n", FormatDIMACS, 2, 3},
		{"dimacs junk", "p edge 3 1\nq 1 2\n", FormatDIMACS, 2, 1},
		{"dimacs dup p", "p edge 3 1\np edge 3 1\n", FormatDIMACS, 2, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(c.input), c.f)
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Read(%q) error = %v, want *ParseError", c.input, err)
			}
			if pe.Line != c.line || pe.Col != c.col {
				t.Fatalf("Read(%q) error at line %d col %d (%s), want line %d col %d",
					c.input, pe.Line, pe.Col, pe.Msg, c.line, c.col)
			}
		})
	}
	// A missing problem line reports after the last line, with no column.
	_, err := Read(strings.NewReader("c only comments\n"), FormatDIMACS)
	var pe *ParseError
	if !errors.As(err, &pe) || !strings.Contains(pe.Msg, "problem line") {
		t.Fatalf("missing problem line: %v", err)
	}
}

func TestDetectRejectsGarbage(t *testing.T) {
	for _, input := range []string{"", "   \n\t", "hello world"} {
		if _, err := Detect([]byte(input)); err == nil {
			t.Fatalf("Detect(%q): want error", input)
		}
	}
}

// TestRoundTrip checks Write/Read inverses across formats on generated
// graphs, including one with trailing isolated vertices.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	graphs := []*graph.Graph{
		gen.Grid(4, 5),
		gen.GNP(30, 0.2, rng),
		graph.New(6), // edgeless: survives only via header / problem line
		graph.MustFromEdges(7, [][2]int{{0, 1}, {2, 3}}),
	}
	for _, g := range graphs {
		for _, f := range []Format{FormatJSON, FormatEdgeList, FormatDIMACS} {
			var buf bytes.Buffer
			if err := Write(&buf, g, f); err != nil {
				t.Fatalf("Write(%v): %v", f, err)
			}
			back, err := Read(bytes.NewReader(buf.Bytes()), FormatAuto)
			if err != nil {
				t.Fatalf("Read back (%v): %v\ninput:\n%s", f, err, buf.String())
			}
			sameGraph(t, back, g)
		}
	}
}

// TestReadLimited: every format rejects a vertex or edge count beyond the
// limit before building anything, and accepts counts at the limit.
func TestReadLimited(t *testing.T) {
	over := map[string]string{
		"json header":       `{"n":1000001,"edges":[]}`,
		"edgelist header":   "1000001\n0 1\n",
		"edgelist endpoint": "0 1000000\n",
		"dimacs header":     "p edge 1000001 0\n",
	}
	for name, input := range over {
		if _, err := ReadLimited(strings.NewReader(input), FormatAuto, 1_000_000, 0); err == nil {
			t.Fatalf("%s: limit not enforced", name)
		} else if !strings.Contains(err.Error(), "limit") {
			t.Fatalf("%s: error %q does not mention the limit", name, err)
		}
	}
	ok := map[string]string{
		"json":     `{"n":10,"edges":[[0,9]]}`,
		"edgelist": "10\n0 9\n",
		"dimacs":   "p edge 10 1\ne 1 10\n",
	}
	for name, input := range ok {
		if _, err := ReadLimited(strings.NewReader(input), FormatAuto, 10, 0); err != nil {
			t.Fatalf("%s at the limit rejected: %v", name, err)
		}
	}

	overEdges := map[string]string{
		"json edges":        `{"n":4,"edges":[[0,1],[1,2],[2,3]]}`,
		"edgelist edges":    "0 1\n1 2\n2 3\n",
		"dimacs declared m": "p edge 4 3\n",
		"dimacs edge lines": "p edge 4 9\ne 1 2\ne 2 3\ne 3 4\n",
	}
	for name, input := range overEdges {
		if _, err := ReadLimited(strings.NewReader(input), FormatAuto, 0, 2); err == nil {
			t.Fatalf("%s: edge limit not enforced", name)
		} else if !strings.Contains(err.Error(), "limit") {
			t.Fatalf("%s: error %q does not mention the limit", name, err)
		}
	}
	okEdges := map[string]string{
		"json":     `{"n":3,"edges":[[0,1],[1,2]]}`,
		"edgelist": "0 1\n1 2\n",
		"dimacs":   "p edge 3 2\ne 1 2\ne 2 3\n",
	}
	for name, input := range okEdges {
		if _, err := ReadLimited(strings.NewReader(input), FormatAuto, 0, 2); err != nil {
			t.Fatalf("%s at the edge limit rejected: %v", name, err)
		}
	}
}

// TestReadFile covers the shared -in loader: file, stdin via "-", and
// name-prefixed errors.
func TestReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFile(path, FormatAuto)
	if err != nil || g.N() != 3 || g.M() != 2 {
		t.Fatalf("ReadFile: %v, %v", g, err)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing"), FormatAuto); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.edges")
	if err := os.WriteFile(bad, []byte("0 1\nx\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad, FormatAuto); err == nil || !strings.Contains(err.Error(), "bad.edges") {
		t.Fatalf("error lacks the input name: %v", err)
	}
}

func TestParseFormat(t *testing.T) {
	for name, want := range map[string]Format{
		"auto": FormatAuto, "": FormatAuto, "json": FormatJSON,
		"edgelist": FormatEdgeList, "DIMACS": FormatDIMACS,
	} {
		got, err := ParseFormat(name)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("ParseFormat(xml): want error")
	}
}
