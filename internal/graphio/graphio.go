// Package graphio reads and writes graphs in the interchange formats the
// CLIs and the mdsd service accept: the repository's JSON encoding
// ({"n": ..., "edges": [[u,v], ...]}), plain whitespace-separated edge
// lists, DIMACS, and the binary csrbin encoding (a checksummed on-disk
// graph.CSR that OpenCSRBin can mmap without parsing). The text parsers
// are streaming — they scan the input line by line and batch-build the
// graph through graph.FromEdgesUnchecked — and every malformed input is
// reported as a *ParseError (text) or *FormatError (csrbin) carrying the
// position of the offending token, never as a panic. ParseCSR is the
// parallel text-ingestion path: it chunk-splits the input across a worker
// pool and builds the frozen CSR directly.
package graphio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"localmds/internal/graph"
)

// Format identifies one of the supported graph encodings.
type Format int

const (
	// FormatAuto sniffs the format from the first non-blank byte of the
	// input: '{' is JSON, 'c' or 'p' is DIMACS, anything else is tried as
	// a plain edge list.
	FormatAuto Format = iota
	// FormatJSON is the repository encoding {"n": ..., "edges": [...]}.
	FormatJSON
	// FormatEdgeList is a plain text edge list: one "u v" pair per line,
	// 0-based endpoints, '#' or '%' comments. An optional first data line
	// holding a single integer fixes the vertex count (allowing trailing
	// isolated vertices); otherwise n is 1 + the largest endpoint.
	FormatEdgeList
	// FormatDIMACS is the DIMACS graph format: 'c' comment lines, one
	// 'p edge <n> <m>' problem line, then 'e <u> <v>' edge lines with
	// 1-based endpoints.
	FormatDIMACS
	// FormatCSRBin is the binary csrbin encoding: a 64-byte checksummed
	// header followed by the little-endian Offsets/Targets arrays of a
	// frozen graph.CSR, designed to be mmap'd (see OpenCSRBin).
	FormatCSRBin
)

// ParseFormat maps a user-facing format name to a Format.
func ParseFormat(name string) (Format, error) {
	switch strings.ToLower(name) {
	case "", "auto":
		return FormatAuto, nil
	case "json":
		return FormatJSON, nil
	case "edgelist", "edges", "el":
		return FormatEdgeList, nil
	case "dimacs":
		return FormatDIMACS, nil
	case "csrbin":
		return FormatCSRBin, nil
	}
	return FormatAuto, fmt.Errorf("graphio: unknown format %q (want auto|json|edgelist|dimacs|csrbin)", name)
}

// String returns the canonical format name.
func (f Format) String() string {
	switch f {
	case FormatJSON:
		return "json"
	case FormatEdgeList:
		return "edgelist"
	case FormatDIMACS:
		return "dimacs"
	case FormatCSRBin:
		return "csrbin"
	default:
		return "auto"
	}
}

// ParseError locates a syntax or validation error in a text input.
type ParseError struct {
	// Line and Col are 1-based; Col points at the first byte of the
	// offending token (0 when the error concerns the whole line).
	Line, Col int
	// Msg describes the problem.
	Msg string
}

func (e *ParseError) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("line %d, column %d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
}

// Read parses a graph from r in the given format, with no vertex- or
// edge-count limit. With FormatAuto it sniffs the encoding first (see
// Detect). Text-format errors are *ParseError values with line/column
// positions; csrbin errors are *FormatError values with byte offsets.
func Read(r io.Reader, f Format) (*graph.Graph, error) {
	return ReadLimited(r, f, 0, 0)
}

// ReadLimited is Read bounded by maxVertices and maxEdges (0 = unlimited):
// an input declaring or implying more vertices or edges is rejected before
// anything proportional to the count is allocated. Services parsing
// untrusted payloads must use it — a 40-byte DIMACS or csrbin header can
// otherwise declare a multi-gigabyte vertex or edge count.
func ReadLimited(r io.Reader, f Format, maxVertices, maxEdges int) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	if f == FormatAuto {
		var err error
		f, err = detectReader(br)
		if err != nil {
			return nil, err
		}
	}
	switch f {
	case FormatJSON:
		return readJSON(br, maxVertices, maxEdges)
	case FormatEdgeList:
		return readEdgeList(br, maxVertices, maxEdges)
	case FormatDIMACS:
		return readDIMACS(br, maxVertices, maxEdges)
	case FormatCSRBin:
		c, err := readCSRBin(br, maxVertices, maxEdges)
		if err != nil {
			return nil, err
		}
		return graph.FromCSR(c), nil
	}
	return nil, fmt.Errorf("graphio: unsupported format %v", f)
}

// ReadFile reads a graph from path ("-" reads stdin) in the given
// format, prefixing errors with the input name — the shared loader
// behind the CLIs' -in flags.
func ReadFile(path string, f Format) (*graph.Graph, error) {
	r := io.Reader(os.Stdin)
	name := "stdin"
	if path != "-" {
		file, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer file.Close()
		r, name = file, path
	}
	g, err := Read(r, f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return g, nil
}

// readJSON decodes the repository encoding {"n": ..., "edges": [...]},
// enforcing the vertex and edge limits before the graph (whose adjacency
// storage is proportional to n + m) is built. Validation matches
// graph.ReadJSON: duplicate edges, self-loops, and out-of-range endpoints
// are rejected.
func readJSON(br *bufio.Reader, maxVertices, maxEdges int) (*graph.Graph, error) {
	var jg struct {
		N     int      `json:"n"`
		Edges [][2]int `json:"edges"`
	}
	if err := json.NewDecoder(br).Decode(&jg); err != nil {
		return nil, fmt.Errorf("graphio: json: %w", err)
	}
	if jg.N < 0 {
		return nil, fmt.Errorf("graphio: json: negative vertex count %d", jg.N)
	}
	if maxVertices > 0 && jg.N > maxVertices {
		return nil, fmt.Errorf("graphio: json: vertex count %d exceeds the limit %d", jg.N, maxVertices)
	}
	if maxEdges > 0 && len(jg.Edges) > maxEdges {
		return nil, fmt.Errorf("graphio: json: edge count %d exceeds the limit %d", len(jg.Edges), maxEdges)
	}
	g, err := graph.FromEdges(jg.N, jg.Edges)
	if err != nil {
		return nil, fmt.Errorf("graphio: json: %w", err)
	}
	return g, nil
}

// Detect sniffs the format from the first non-blank byte of a prefix of
// the input: 0x89 (the first csrbin magic byte) is csrbin, '{' is JSON,
// 'c' or 'p' is DIMACS, digits and comment markers ('#', '%') are an edge
// list.
func Detect(prefix []byte) (Format, error) {
	for _, b := range prefix {
		switch {
		case b == csrbinMagic[0]:
			return FormatCSRBin, nil
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			continue
		case b == '{':
			return FormatJSON, nil
		case b == 'c' || b == 'p':
			return FormatDIMACS, nil
		case b >= '0' && b <= '9', b == '#', b == '%':
			return FormatEdgeList, nil
		default:
			return FormatAuto, fmt.Errorf("graphio: cannot detect format from leading byte %q (want JSON '{', DIMACS 'c'/'p', or an edge list)", b)
		}
	}
	return FormatAuto, fmt.Errorf("graphio: cannot detect format of empty input")
}

// detectReader peeks into br without consuming it.
func detectReader(br *bufio.Reader) (Format, error) {
	prefix, err := br.Peek(512)
	if err != nil && err != io.EOF {
		return FormatAuto, fmt.Errorf("graphio: detect: %w", err)
	}
	return Detect(prefix)
}
