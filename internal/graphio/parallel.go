package graphio

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"os"
	"strconv"
	"sync"

	"localmds/internal/graph"
	"localmds/internal/runner"
)

// This file is the huge-graph text-ingestion path: ParseCSR takes the
// whole input as one byte slice, splits it into line-aligned chunks, and
// parses the chunks concurrently on a runner.Pool, feeding the per-chunk
// edge buffers straight into graph.CSRFromEdgeChunks — no adjacency-list
// intermediate, no concatenating copy, and a hand-rolled digit parser
// instead of bufio.Scanner + strconv per token. The result is
// deterministic by construction at any worker count: the chunking is a
// pure function of the input length, CSRFromEdgeChunks depends only on the
// concatenated edge order, and errors are merged by picking the
// smallest (line, column), so the reported error is the first one the
// sequential parser would have hit.

// CSROptions tune ParseCSR.
type CSROptions struct {
	// Pool runs chunk parses concurrently. nil parses in the calling
	// goroutine (still through the same chunk parser, so results are
	// identical).
	Pool *runner.Pool
	// MaxVertices and MaxEdges mirror ReadLimited's bounds (0 =
	// unlimited). Edge-count overflow is reported as a totals error, not
	// a positioned *ParseError: the total is chunking-independent, so
	// the message is stable at any worker count.
	MaxVertices int
	MaxEdges    int
}

// ParseCSR parses a graph held entirely in memory into its frozen CSR
// view, in parallel for the line-oriented text formats (edge list,
// DIMACS). FormatAuto sniffs like Detect; JSON and csrbin inputs take
// their sequential readers (csrbin is already binary, JSON grammar does
// not chunk on lines). The CSR is bit-identical to
// Read(...).Freeze() on the same input.
func ParseCSR(data []byte, f Format, opt CSROptions) (*graph.CSR, error) {
	if f == FormatAuto {
		prefix := data
		if len(prefix) > 512 {
			prefix = prefix[:512]
		}
		var err error
		if f, err = Detect(prefix); err != nil {
			return nil, err
		}
	}
	switch f {
	case FormatJSON:
		g, err := readJSON(bufio.NewReader(bytes.NewReader(data)), opt.MaxVertices, opt.MaxEdges)
		if err != nil {
			return nil, err
		}
		return g.Freeze(), nil
	case FormatCSRBin:
		return readCSRBin(bytes.NewReader(data), opt.MaxVertices, opt.MaxEdges)
	case FormatEdgeList:
		return parseEdgeListCSR(data, opt)
	case FormatDIMACS:
		return parseDIMACSCSR(data, opt)
	}
	return nil, fmt.Errorf("graphio: unsupported format %v", f)
}

// ParseCSRFile is ParseCSR over a file's contents ("-" reads stdin),
// prefixing errors with the input name.
func ParseCSRFile(path string, f Format, opt CSROptions) (*graph.CSR, error) {
	var data []byte
	var err error
	name := path
	if path == "-" {
		name = "stdin"
		data, err = readAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	c, err := ParseCSR(data, f, opt)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return c, nil
}

// readAll is io.ReadAll with a growth-friendly initial buffer.
func readAll(f *os.File) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// chunkSpan is one line-aligned byte range and its 1-based starting line.
type chunkSpan struct {
	lo, hi int
	line   int
}

// chunkTarget is how many line-aligned chunks to aim for per pool worker:
// more than one so an unlucky dense chunk cannot serialize the tail, few
// enough that per-chunk buffers stay large.
const chunkTarget = 4

// minChunkBytes keeps tiny inputs in a single chunk.
const minChunkBytes = 64 << 10

// splitChunks splits data[pos:] into at most count line-aligned chunks,
// recording each chunk's starting line number (the line containing
// data[pos] is line startLine). The split depends only on the input, never
// on scheduling.
func splitChunks(data []byte, pos, startLine, count int) []chunkSpan {
	rest := len(data) - pos
	if count < 1 {
		count = 1
	}
	if rest <= minChunkBytes || count == 1 {
		if rest == 0 {
			return nil
		}
		return []chunkSpan{{lo: pos, hi: len(data), line: startLine}}
	}
	size := rest / count
	if size < minChunkBytes {
		size = minChunkBytes
	}
	var spans []chunkSpan
	line := startLine
	for lo := pos; lo < len(data); {
		hi := lo + size
		if hi >= len(data) {
			hi = len(data)
		} else if nl := bytes.IndexByte(data[hi:], '\n'); nl >= 0 {
			hi += nl + 1
		} else {
			hi = len(data)
		}
		spans = append(spans, chunkSpan{lo: lo, hi: hi, line: line})
		line += bytes.Count(data[lo:hi], []byte{'\n'})
		lo = hi
	}
	return spans
}

// chunkResult is one chunk parser's output.
type chunkResult struct {
	edges [][2]int
	maxV  int // largest endpoint seen, -1 if none
	extra int // edges counted but not stored once MaxEdges was hit
	err   *ParseError
}

// runChunks parses every span with fn, on the pool when one is available.
func runChunks(spans []chunkSpan, pool *runner.Pool, fn func(chunkSpan) chunkResult) []chunkResult {
	results := make([]chunkResult, len(spans))
	if pool == nil || len(spans) == 1 {
		for i, sp := range spans {
			results[i] = fn(sp)
		}
		return results
	}
	var wg sync.WaitGroup
	for i, sp := range spans {
		wg.Add(1)
		pool.Submit(func() {
			defer wg.Done()
			results[i] = fn(sp)
		})
	}
	wg.Wait()
	return results
}

// mergeChunks combines per-chunk results into the final edge chunks,
// reporting the error the sequential parser would have hit first (smallest
// line, then column) and the chunking-independent totals.
func mergeChunks(results []chunkResult) (chunks [][][2]int, maxV, total int, err *ParseError) {
	maxV = -1
	chunks = make([][][2]int, 0, len(results))
	for _, r := range results {
		if r.err != nil && (err == nil || r.err.Line < err.Line ||
			(r.err.Line == err.Line && r.err.Col < err.Col)) {
			err = r.err
		}
		if r.maxV > maxV {
			maxV = r.maxV
		}
		total += len(r.edges) + r.extra
		if len(r.edges) > 0 {
			chunks = append(chunks, r.edges)
		}
	}
	return chunks, maxV, total, err
}

func chunkCount(pool *runner.Pool) int {
	if pool == nil {
		return 1
	}
	return pool.Workers() * chunkTarget
}

// parseEdgeListCSR is the parallel edge-list parser. The sequential
// prologue consumes leading blanks/comments and the optional single-integer
// header line; everything after is chunked.
func parseEdgeListCSR(data []byte, opt CSROptions) (*graph.CSR, error) {
	declaredN, pos, line, err := edgeListProlog(data, opt.MaxVertices)
	if err != nil {
		return nil, err
	}
	spans := splitChunks(data, pos, line, chunkCount(opt.Pool))
	results := runChunks(spans, opt.Pool, func(sp chunkSpan) chunkResult {
		return parseEdgeListChunk(data[sp.lo:sp.hi], sp.line, declaredN, opt.MaxVertices, opt.MaxEdges)
	})
	chunks, maxV, total, perr := mergeChunks(results)
	if perr != nil {
		return nil, perr
	}
	if opt.MaxEdges > 0 && total > opt.MaxEdges {
		return nil, fmt.Errorf("graphio: edgelist: edge count %d exceeds the limit %d", total, opt.MaxEdges)
	}
	n := declaredN
	if n < 0 {
		n = maxV + 1
	}
	return graph.CSRFromEdgeChunks(n, chunks), nil
}

// edgeListProlog scans the sequential prefix of an edge list: blank and
// comment lines, plus the optional header line (first data line holding a
// single integer). It returns the declared vertex count (-1 if none), the
// byte offset where chunked parsing starts, and that offset's 1-based
// line number.
func edgeListProlog(data []byte, maxVertices int) (declaredN, pos, line int, err error) {
	lineNo := 0
	var toks []btok
	for pos < len(data) {
		lineNo++
		lineBytes, next := nextLine(data, pos)
		toks = splitFieldsBytes(stripCommentBytes(lineBytes), toks)
		if len(toks) == 0 {
			pos = next
			continue
		}
		if len(toks) != 1 {
			// First data line is an edge: no header, chunk from here.
			return -1, pos, lineNo, nil
		}
		v, verr := parseVertexBytes(toks[0], lineNo)
		if verr != nil {
			return 0, 0, 0, verr
		}
		if maxVertices > 0 && v > maxVertices {
			return 0, 0, 0, &ParseError{Line: lineNo, Col: toks[0].col,
				Msg: "vertex count " + strconv.Itoa(v) + " exceeds the limit " + strconv.Itoa(maxVertices)}
		}
		return v, next, lineNo + 1, nil
	}
	return -1, len(data), lineNo + 1, nil
}

// parseEdgeListChunk parses one line-aligned chunk of edge lines,
// replicating readEdgeList's per-line semantics and error messages.
func parseEdgeListChunk(data []byte, startLine, declaredN, maxVertices, maxEdges int) chunkResult {
	res := chunkResult{maxV: -1}
	res.edges = make([][2]int, 0, len(data)/8)
	lineNo := startLine - 1
	var toks []btok
	for pos := 0; pos < len(data); {
		lineNo++
		lineBytes, next := nextLine(data, pos)
		pos = next
		// One-pass fast path for the dominant "u v" shape; any surprise
		// (sign, comment, field count, range violation) re-parses the line
		// generically so error positions and messages stay identical.
		if u, v, ok := fastEdgeLine(lineBytes); ok &&
			(maxVertices <= 0 || (u < maxVertices && v < maxVertices)) &&
			(declaredN < 0 || (u < declaredN && v < declaredN)) {
			if u > res.maxV {
				res.maxV = u
			}
			if v > res.maxV {
				res.maxV = v
			}
			if maxEdges > 0 && len(res.edges) >= maxEdges {
				res.extra++
				continue
			}
			res.edges = append(res.edges, [2]int{u, v})
			continue
		}
		toks = splitFieldsBytes(stripCommentBytes(lineBytes), toks)
		if len(toks) == 0 {
			continue
		}
		if len(toks) != 2 {
			res.err = &ParseError{Line: lineNo, Col: toks[0].col,
				Msg: "expected an edge as two vertex indices \"u v\", got " + strconv.Itoa(len(toks)) + " fields"}
			return res
		}
		u, err := parseVertexBytes(toks[0], lineNo)
		if err != nil {
			res.err = err
			return res
		}
		v, err := parseVertexBytes(toks[1], lineNo)
		if err != nil {
			res.err = err
			return res
		}
		if maxVertices > 0 {
			for i, x := range [2]int{u, v} {
				if x >= maxVertices {
					res.err = &ParseError{Line: lineNo, Col: toks[i].col,
						Msg: "vertex " + strconv.Itoa(x) + " exceeds the limit of " + strconv.Itoa(maxVertices) + " vertices"}
					return res
				}
			}
		}
		if declaredN >= 0 {
			if u >= declaredN {
				res.err = &ParseError{Line: lineNo, Col: toks[0].col,
					Msg: "vertex " + strconv.Itoa(u) + " out of range [0," + strconv.Itoa(declaredN) + ") declared by the header line"}
				return res
			}
			if v >= declaredN {
				res.err = &ParseError{Line: lineNo, Col: toks[1].col,
					Msg: "vertex " + strconv.Itoa(v) + " out of range [0," + strconv.Itoa(declaredN) + ") declared by the header line"}
				return res
			}
		}
		if u > res.maxV {
			res.maxV = u
		}
		if v > res.maxV {
			res.maxV = v
		}
		if maxEdges > 0 && len(res.edges) >= maxEdges {
			res.extra++ // keep the chunking-independent total exact
			continue
		}
		res.edges = append(res.edges, [2]int{u, v})
	}
	return res
}

// parseDIMACSCSR is the parallel DIMACS parser. The prologue consumes
// comments up to and including the problem line; the edge lines after it
// are chunked.
func parseDIMACSCSR(data []byte, opt CSROptions) (*graph.CSR, error) {
	n, pos, line, err := dimacsProlog(data, opt.MaxVertices, opt.MaxEdges)
	if err != nil {
		return nil, err
	}
	spans := splitChunks(data, pos, line, chunkCount(opt.Pool))
	results := runChunks(spans, opt.Pool, func(sp chunkSpan) chunkResult {
		return parseDIMACSChunk(data[sp.lo:sp.hi], sp.line, n, opt.MaxEdges)
	})
	chunks, _, total, perr := mergeChunks(results)
	if perr != nil {
		return nil, perr
	}
	if opt.MaxEdges > 0 && total > opt.MaxEdges {
		return nil, fmt.Errorf("graphio: dimacs: edge count %d exceeds the limit %d", total, opt.MaxEdges)
	}
	return graph.CSRFromEdgeChunks(n, chunks), nil
}

// dimacsProlog scans up to and including the 'p' problem line, replicating
// readDIMACS's validation and error messages for that prefix.
func dimacsProlog(data []byte, maxVertices, maxEdges int) (n, pos, line int, err error) {
	lineNo := 0
	var toks []btok
	for pos < len(data) {
		lineNo++
		lineBytes, next := nextLine(data, pos)
		toks = splitFieldsBytes(lineBytes, toks)
		if len(toks) == 0 {
			pos = next
			continue
		}
		switch {
		case bytes.Equal(toks[0].s, []byte("c")):
			pos = next
		case bytes.Equal(toks[0].s, []byte("p")):
			if len(toks) < 3 {
				return 0, 0, 0, &ParseError{Line: lineNo, Col: toks[0].col,
					Msg: "malformed problem line, want \"p edge <vertices> <edges>\""}
			}
			v, ok := parseIntBytes(toks[2].s)
			if !ok || v < 0 {
				return 0, 0, 0, &ParseError{Line: lineNo, Col: toks[2].col,
					Msg: "expected a non-negative vertex count, got " + strconv.Quote(string(toks[2].s))}
			}
			if maxVertices > 0 && v > maxVertices {
				return 0, 0, 0, &ParseError{Line: lineNo, Col: toks[2].col,
					Msg: "vertex count " + strconv.Itoa(v) + " exceeds the limit " + strconv.Itoa(maxVertices)}
			}
			if len(toks) > 3 {
				m, ok := parseIntBytes(toks[3].s)
				if !ok {
					return 0, 0, 0, &ParseError{Line: lineNo, Col: toks[3].col,
						Msg: "expected an edge count, got " + strconv.Quote(string(toks[3].s))}
				}
				if maxEdges > 0 && m > maxEdges {
					return 0, 0, 0, &ParseError{Line: lineNo, Col: toks[3].col,
						Msg: "edge count " + strconv.Itoa(m) + " exceeds the limit " + strconv.Itoa(maxEdges)}
				}
			}
			return v, next, lineNo + 1, nil
		case bytes.Equal(toks[0].s, []byte("e")):
			return 0, 0, 0, &ParseError{Line: lineNo, Col: toks[0].col,
				Msg: "edge line before the \"p\" problem line"}
		default:
			return 0, 0, 0, &ParseError{Line: lineNo, Col: toks[0].col,
				Msg: "unknown line type " + strconv.Quote(string(toks[0].s)) + " (want c, p, or e)"}
		}
	}
	return 0, 0, 0, &ParseError{Line: lineNo + 1, Msg: "missing \"p edge <vertices> <edges>\" problem line"}
}

// parseDIMACSChunk parses one line-aligned chunk of DIMACS lines after the
// problem line, replicating readDIMACS's semantics and error messages.
func parseDIMACSChunk(data []byte, startLine, n, maxEdges int) chunkResult {
	res := chunkResult{maxV: -1}
	res.edges = make([][2]int, 0, len(data)/10)
	lineNo := startLine - 1
	var toks []btok
	for pos := 0; pos < len(data); {
		lineNo++
		lineBytes, next := nextLine(data, pos)
		pos = next
		// One-pass fast path for the dominant "e u v" shape; anything else
		// — including a range violation, whose error message needs token
		// columns — falls back to the general tokenizer below.
		if u, v, ok := fastDIMACSEdgeLine(lineBytes); ok &&
			u >= 1 && v >= 1 && u <= n && v <= n {
			if maxEdges > 0 && len(res.edges) >= maxEdges {
				res.extra++
				continue
			}
			res.edges = append(res.edges, [2]int{u - 1, v - 1})
			continue
		}
		toks = splitFieldsBytes(lineBytes, toks)
		if len(toks) == 0 {
			continue
		}
		switch {
		case bytes.Equal(toks[0].s, []byte("c")):
			continue
		case bytes.Equal(toks[0].s, []byte("p")):
			res.err = &ParseError{Line: lineNo, Col: toks[0].col, Msg: "duplicate problem line"}
			return res
		case bytes.Equal(toks[0].s, []byte("e")):
			if len(toks) != 3 {
				res.err = &ParseError{Line: lineNo, Col: toks[0].col,
					Msg: "expected an edge line \"e <u> <v>\", got " + strconv.Itoa(len(toks)) + " fields"}
				return res
			}
			u, err := parseDIMACSVertexBytes(toks[1], lineNo, n)
			if err != nil {
				res.err = err
				return res
			}
			v, err := parseDIMACSVertexBytes(toks[2], lineNo, n)
			if err != nil {
				res.err = err
				return res
			}
			if maxEdges > 0 && len(res.edges) >= maxEdges {
				res.extra++
				continue
			}
			res.edges = append(res.edges, [2]int{u - 1, v - 1})
		default:
			res.err = &ParseError{Line: lineNo, Col: toks[0].col,
				Msg: "unknown line type " + strconv.Quote(string(toks[0].s)) + " (want c, p, or e)"}
			return res
		}
	}
	return res
}

// fastEdgeLine parses the overwhelmingly common edge-list line shape —
// two unsigned decimal fields, separating blanks, nothing else — in one
// pass. ok=false means "use the general tokenizer", not "error": signs,
// comments, '\r' between fields, surprising field counts, and
// overflow-length digit runs all bail out so the slow path keeps sole
// ownership of the error taxonomy.
func fastEdgeLine(line []byte) (u, v int, ok bool) {
	i := skipBlanks(line, 0)
	u, i, ok = fastUint(line, i)
	if !ok || i >= len(line) || (line[i] != ' ' && line[i] != '\t') {
		return 0, 0, false
	}
	i = skipBlanks(line, i)
	v, i, ok = fastUint(line, i)
	if !ok {
		return 0, 0, false
	}
	for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
		i++
	}
	return u, v, i == len(line)
}

// fastDIMACSEdgeLine is fastEdgeLine for the "e <u> <v>" shape. Range
// checks stay with the caller (bailing to the slow path on violation, for
// its column-accurate error).
func fastDIMACSEdgeLine(line []byte) (u, v int, ok bool) {
	i := skipBlanks(line, 0)
	if i >= len(line) || line[i] != 'e' {
		return 0, 0, false
	}
	i++
	if i >= len(line) || (line[i] != ' ' && line[i] != '\t') {
		return 0, 0, false
	}
	i = skipBlanks(line, i)
	u, i, ok = fastUint(line, i)
	if !ok || i >= len(line) || (line[i] != ' ' && line[i] != '\t') {
		return 0, 0, false
	}
	i = skipBlanks(line, i)
	v, i, ok = fastUint(line, i)
	if !ok {
		return 0, 0, false
	}
	for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
		i++
	}
	return u, v, i == len(line)
}

func skipBlanks(line []byte, i int) int {
	for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
		i++
	}
	return i
}

// fastUint reads a run of decimal digits. Runs long enough to overflow
// (>18 digits) report !ok and defer to parseIntBytes' exact handling.
func fastUint(line []byte, i int) (int, int, bool) {
	start := i
	v := 0
	for i < len(line) {
		c := line[i] - '0'
		if c > 9 {
			break
		}
		v = v*10 + int(c)
		i++
	}
	if i == start || i-start > 18 {
		return 0, i, false
	}
	return v, i, true
}

// nextLine returns the line starting at pos (without its '\n') and the
// offset just past it.
func nextLine(data []byte, pos int) ([]byte, int) {
	if nl := bytes.IndexByte(data[pos:], '\n'); nl >= 0 {
		return data[pos : pos+nl], pos + nl + 1
	}
	return data[pos:], len(data)
}

// btok is splitFields' token over bytes: one whitespace-delimited field
// with its 1-based starting column.
type btok struct {
	s   []byte
	col int
}

// splitFieldsBytes tokenizes a line on ' ', '\t', '\r' — the byte-slice
// twin of splitFields.
func splitFieldsBytes(line []byte, toks []btok) []btok {
	toks = toks[:0]
	start := -1
	for i := 0; i <= len(line); i++ {
		var space bool
		if i == len(line) {
			space = true
		} else {
			c := line[i]
			space = c == ' ' || c == '\t' || c == '\r'
		}
		switch {
		case space && start >= 0:
			toks = append(toks, btok{s: line[start:i], col: start + 1})
			start = -1
		case !space && start < 0:
			start = i
		}
	}
	return toks
}

// stripCommentBytes drops a trailing '#' or '%' comment.
func stripCommentBytes(line []byte) []byte {
	for i, c := range line {
		if c == '#' || c == '%' {
			return line[:i]
		}
	}
	return line
}

// parseIntBytes parses a decimal integer with strconv.Atoi's accepted
// syntax (optional sign, digits, no other bytes, overflow rejected) but
// without the per-token string allocation — this is where the parallel
// parser's single-core speedup over the Scanner+Atoi path comes from.
func parseIntBytes(s []byte) (int, bool) {
	if len(s) == 0 {
		return 0, false
	}
	neg := false
	if s[0] == '+' || s[0] == '-' {
		neg = s[0] == '-'
		s = s[1:]
		if len(s) == 0 {
			return 0, false
		}
	}
	v := 0
	for _, c := range s {
		d := int(c - '0')
		if d < 0 || d > 9 {
			return 0, false
		}
		if v > (math.MaxInt-d)/10 {
			return 0, false // overflow: Atoi reports ErrRange, both reject
		}
		v = v*10 + d
	}
	if neg {
		return -v, true
	}
	return v, true
}

// parseVertexBytes parses a non-negative vertex index, with parseVertex's
// exact error message.
func parseVertexBytes(t btok, line int) (int, *ParseError) {
	v, ok := parseIntBytes(t.s)
	if !ok || v < 0 {
		return 0, &ParseError{Line: line, Col: t.col,
			Msg: "expected a non-negative vertex index, got " + strconv.Quote(string(t.s))}
	}
	return v, nil
}

// parseDIMACSVertexBytes parses a 1-based endpoint and range-checks it,
// with parseDIMACSVertex's exact error messages.
func parseDIMACSVertexBytes(t btok, line, n int) (int, *ParseError) {
	v, ok := parseIntBytes(t.s)
	if !ok || v < 1 {
		return 0, &ParseError{Line: line, Col: t.col,
			Msg: "expected a 1-based vertex index, got " + strconv.Quote(string(t.s))}
	}
	if v > n {
		return 0, &ParseError{Line: line, Col: t.col,
			Msg: "vertex " + strconv.Itoa(v) + " out of range [1," + strconv.Itoa(n) + "] declared by the problem line"}
	}
	return v, nil
}
