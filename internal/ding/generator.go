package ding

import (
	"fmt"
	"math/rand"

	"localmds/internal/graph"
)

// WorkloadKind selects the flavor of K_{2,t}-minor-free instance produced
// by Generate.
type WorkloadKind int

// Workload kinds. BlockForest glues small 2-connected blocks at cut
// vertices (rich in 1-cuts); StripChain concatenates long strips and fans
// (rich in local 2-cuts, the Lemma 4.2 regime); Mixed interleaves both plus
// pendant trees.
const (
	BlockForest WorkloadKind = iota + 1
	StripChain
	Mixed
)

// Config parameterizes Generate.
type Config struct {
	Kind WorkloadKind
	// N is the approximate target vertex count (the generator stops once
	// it reaches or exceeds it).
	N int
	// T is the K_{2,t} parameter the instance must exclude; must be >= 3.
	// Blocks use only gadgets that are provably K_{2,min(5,t)}-minor-free
	// (fans and cycles are K_{2,3}-free; ladder strips are K_{2,5}-free
	// per Ding), so every generated graph excludes K_{2,t}.
	T int
}

// Generate returns a connected K_{2,t}-minor-free graph per cfg.
//
// Freeness argument: every gadget used (cycle, fan, ladder strip, tree
// edge) is K_{2,3}- or K_{2,5}-minor-free, and gadgets are glued only at
// single cut vertices. K_{2,t} (t >= 2) is 2-connected, so any K_{2,t}
// minor model would have to live inside a single block of the result; every
// block is a gadget, hence free for t >= 5 (and for t >= 3 when cfg.T < 5,
// where strips are replaced by fans). Tests cross-check with the exact
// minor tester on small instances.
func Generate(cfg Config, rng *rand.Rand) (*graph.Graph, error) {
	if cfg.T < 3 {
		return nil, fmt.Errorf("ding: config T = %d < 3", cfg.T)
	}
	if cfg.N < 3 {
		return nil, fmt.Errorf("ding: config N = %d < 3", cfg.N)
	}
	switch cfg.Kind {
	case BlockForest:
		return generateBlockForest(cfg, rng), nil
	case StripChain:
		return generateStripChain(cfg, rng), nil
	case Mixed:
		return generateMixed(cfg, rng), nil
	default:
		return nil, fmt.Errorf("ding: unknown workload kind %d", cfg.Kind)
	}
}

// MustGenerate is Generate for benchmarks with static configs; it panics on
// config errors.
func MustGenerate(cfg Config, rng *rand.Rand) *graph.Graph {
	g, err := Generate(cfg, rng)
	if err != nil {
		panic(err)
	}
	return g
}

// glueGadgetAt merges gadget into g, identifying gadget vertex anchor with
// g's vertex at.
func glueGadgetAt(g *graph.Graph, gadget *graph.Graph, anchor, at int) {
	offset := make([]int, gadget.N())
	for v := 0; v < gadget.N(); v++ {
		if v == anchor {
			offset[v] = at
		} else {
			offset[v] = g.AddVertex()
		}
	}
	gadget.VisitEdges(func(u, v int) {
		g.AddEdge(offset[u], offset[v])
	})
}

// randomBlock returns a small 2-connected K_{2,min(5,t)}-minor-free gadget
// and a designated anchor vertex.
func randomBlock(t int, rng *rand.Rand) (*graph.Graph, int) {
	switch choice := rng.Intn(3); {
	case choice == 0:
		// Cycle block (K_{2,3}-minor-free).
		c := 3 + rng.Intn(6)
		g := graph.New(c)
		for i := 0; i < c; i++ {
			g.AddEdge(i, (i+1)%c)
		}
		return g, 0
	case choice == 1 || t < 5:
		// Fan block (outerplanar, K_{2,3}-minor-free).
		f, err := NewFan(2 + rng.Intn(6))
		if err != nil {
			panic(err) // length is always >= 2
		}
		return f.G, f.Center
	default:
		// Ladder strip block (K_{2,5}-minor-free per Ding).
		s, err := NewStrip(2 + rng.Intn(5))
		if err != nil {
			panic(err) // rungs is always >= 2
		}
		return s.G, s.A
	}
}

func generateBlockForest(cfg Config, rng *rand.Rand) *graph.Graph {
	g := graph.New(1)
	for g.N() < cfg.N {
		at := rng.Intn(g.N())
		if rng.Intn(4) == 0 {
			// Pendant edge to keep tree parts around.
			v := g.AddVertex()
			g.AddEdge(at, v)
			continue
		}
		block, anchor := randomBlock(cfg.T, rng)
		glueGadgetAt(g, block, anchor, at)
	}
	return g
}

func generateStripChain(cfg Config, rng *rand.Rand) *graph.Graph {
	// A chain of long gadgets glued end to end at single vertices: this is
	// the Lemma 4.2 regime where residual components would be long strips.
	g := graph.New(1)
	at := 0
	for g.N() < cfg.N {
		var gadget *graph.Graph
		var anchor, exit int
		if cfg.T >= 5 && rng.Intn(2) == 0 {
			s, err := NewStrip(4 + rng.Intn(8))
			if err != nil {
				panic(err)
			}
			gadget, anchor, exit = s.G, s.A, s.D
		} else {
			f, err := NewFan(4 + rng.Intn(8))
			if err != nil {
				panic(err)
			}
			gadget, anchor, exit = f.G, f.End1, f.End2
		}
		before := g.N()
		glueGadgetAt(g, gadget, anchor, at)
		// The exit corner's new label: count non-anchor vertices preceding
		// it in the gadget ordering.
		shift := 0
		for v := 0; v < exit; v++ {
			if v != anchor {
				shift++
			}
		}
		at = before + shift
	}
	return g
}

func generateMixed(cfg Config, rng *rand.Rand) *graph.Graph {
	g := graph.New(1)
	for g.N() < cfg.N {
		at := rng.Intn(g.N())
		switch rng.Intn(5) {
		case 0, 1:
			block, anchor := randomBlock(cfg.T, rng)
			glueGadgetAt(g, block, anchor, at)
		case 2:
			// Short pendant path.
			l := 1 + rng.Intn(4)
			prev := at
			for i := 0; i < l; i++ {
				v := g.AddVertex()
				g.AddEdge(prev, v)
				prev = v
			}
		case 3:
			if cfg.T >= 5 {
				s, err := NewStrip(3 + rng.Intn(6))
				if err != nil {
					panic(err)
				}
				glueGadgetAt(g, s.G, s.A, at)
			} else {
				f, err := NewFan(3 + rng.Intn(6))
				if err != nil {
					panic(err)
				}
				glueGadgetAt(g, f.G, f.Center, at)
			}
		default:
			v := g.AddVertex()
			g.AddEdge(at, v)
		}
	}
	return g
}
