package ding

import (
	"math/rand"
	"testing"

	"localmds/internal/graph"
	"localmds/internal/minor"
)

func TestNewFan(t *testing.T) {
	f, err := NewFan(5)
	if err != nil {
		t.Fatalf("NewFan: %v", err)
	}
	if f.G.N() != 6 {
		t.Errorf("fan N = %d, want 6", f.G.N())
	}
	// Center adjacent to every path vertex.
	if f.G.Degree(f.Center) != 5 {
		t.Errorf("center degree = %d, want 5", f.G.Degree(f.Center))
	}
	if len(f.Corners()) != 3 {
		t.Errorf("Corners() = %v", f.Corners())
	}
	if _, err := NewFan(1); err == nil {
		t.Error("NewFan(1) accepted")
	}
}

func TestFanIsK23Free(t *testing.T) {
	for length := 2; length <= 9; length++ {
		f, err := NewFan(length)
		if err != nil {
			t.Fatalf("NewFan(%d): %v", length, err)
		}
		_, ok, err := minor.HasK2tMinor(f.G, 3)
		if err != nil {
			t.Fatalf("minor test: %v", err)
		}
		if ok {
			t.Errorf("fan of length %d has a K_{2,3} minor", length)
		}
	}
}

func TestNewStrip(t *testing.T) {
	s, err := NewStrip(4)
	if err != nil {
		t.Fatalf("NewStrip: %v", err)
	}
	if s.G.N() != 8 {
		t.Errorf("strip N = %d, want 8", s.G.N())
	}
	// 4 rungs + 2*3 path edges = 10 edges.
	if s.G.M() != 10 {
		t.Errorf("strip M = %d, want 10", s.G.M())
	}
	if len(s.Corners()) != 4 {
		t.Errorf("Corners() = %v", s.Corners())
	}
	if _, err := NewStrip(1); err == nil {
		t.Error("NewStrip(1) accepted")
	}
}

func TestStripIsK25Free(t *testing.T) {
	// Ding proves strips exclude K_{2,5}; verify exactly for small strips.
	for rungs := 2; rungs <= 6; rungs++ {
		s, err := NewStrip(rungs)
		if err != nil {
			t.Fatalf("NewStrip(%d): %v", rungs, err)
		}
		_, ok, err := minor.HasK2tMinor(s.G, 5)
		if err != nil {
			t.Fatalf("minor test: %v", err)
		}
		if ok {
			t.Errorf("strip with %d rungs has a K_{2,5} minor", rungs)
		}
	}
}

func TestStripRadius(t *testing.T) {
	tests := []struct {
		rungs, want int
	}{
		{2, 0}, // every vertex is a corner
		{4, 1}, // middle rungs are 1 away from a corner
		{8, 3},
		{10, 4},
	}
	for _, tt := range tests {
		s, err := NewStrip(tt.rungs)
		if err != nil {
			t.Fatalf("NewStrip(%d): %v", tt.rungs, err)
		}
		if got := s.Radius(); got != tt.want {
			t.Errorf("Radius(%d rungs) = %d, want %d", tt.rungs, got, tt.want)
		}
	}
}

func TestVerifyTypeIAcceptsFanAndStrip(t *testing.T) {
	// A fan's reference cycle: center, then the path.
	f, err := NewFan(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTypeI(f.G, []int{0, 1, 2, 3, 4, 5}); err != nil {
		t.Errorf("fan rejected as type-I: %v", err)
	}
	// A strip's reference cycle: top path forward, bottom path backward.
	s, err := NewStrip(4)
	if err != nil {
		t.Fatal(err)
	}
	order := []int{0, 2, 4, 6, 7, 5, 3, 1}
	if err := VerifyTypeI(s.G, order); err != nil {
		t.Errorf("strip rejected as type-I: %v", err)
	}
}

func TestVerifyTypeIRejects(t *testing.T) {
	// C8 with chords {0,4} and {2,6}: the chords cross but none of the
	// endpoint pairs (0,2), (4,6), (0,6), (4,2) is... (0,6)? 0 and 6 are
	// not cycle-adjacent in C8 (distance 2), so the crossing condition
	// fails.
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		g.AddEdge(i, (i+1)%8)
	}
	g.AddEdge(0, 4)
	g.AddEdge(2, 6)
	order := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if err := VerifyTypeI(g, order); err == nil {
		t.Error("crossing long chords accepted as type-I")
	}
	// Wrong cycle order (not Hamiltonian in g).
	if err := VerifyTypeI(g, []int{0, 2, 4, 1, 3, 5}); err == nil {
		t.Error("non-Hamiltonian order accepted")
	}
	// Not a permutation.
	if err := VerifyTypeI(g, []int{0, 0, 2, 3, 4, 5}); err == nil {
		t.Error("non-permutation accepted")
	}
	// Wrong length.
	if err := VerifyTypeI(g, []int{0, 1, 2}); err == nil {
		t.Error("short order accepted")
	}
}

func TestVerifyTypeIAllowsAdjacentCrossings(t *testing.T) {
	// C5 with chords {0,2} and {1,3}: they cross, and 0-1, 2-3 are cycle
	// edges, satisfying the crossing condition.
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
	}
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	if err := VerifyTypeI(g, []int{0, 1, 2, 3, 4}); err != nil {
		t.Errorf("adjacent crossing chords rejected: %v", err)
	}
}

func TestVerifyTypeIRejectsTripleCross(t *testing.T) {
	// C6 with chords 0-2, 1-3, and 1-4: chord 1-3 would cross 0-2 (allowed
	// pairwise) but adding 0-4 crossing 1-3 too means chord 1-3 crosses 2.
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.AddEdge(i, (i+1)%6)
	}
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 4)
	if err := VerifyTypeI(g, []int{0, 1, 2, 3, 4, 5}); err == nil {
		t.Error("chord crossing two chords accepted")
	}
}

func TestAugment(t *testing.T) {
	base := graph.New(4)
	base.AddEdge(0, 1)
	base.AddEdge(1, 2)
	base.AddEdge(2, 3)
	f, err := NewFan(3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStrip(3)
	if err != nil {
		t.Fatal(err)
	}
	aug, err := Augment(base, []*Attachment{
		{Fan: f, At: []int{0, 1, 2}},
		{Strip: s, At: []int{0, 1, 2, 3}},
	})
	if err != nil {
		t.Fatalf("Augment: %v", err)
	}
	// Fan adds 4 vertices minus 3 identified corners = 1 new vertex;
	// strip adds 6 minus 4 = 2 new vertices.
	if aug.N() != 4+1+2 {
		t.Errorf("augmented N = %d, want 7", aug.N())
	}
	if err := aug.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAugmentErrors(t *testing.T) {
	base := graph.New(3)
	f, err := NewFan(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Augment(base, []*Attachment{{Fan: f, At: []int{0, 1}}}); err == nil {
		t.Error("wrong anchor count accepted")
	}
	if _, err := Augment(base, []*Attachment{{Fan: f, At: []int{0, 1, 7}}}); err == nil {
		t.Error("out-of-range anchor accepted")
	}
	if _, err := Augment(base, []*Attachment{{Fan: f, At: []int{0, 1, 1}}}); err == nil {
		t.Error("duplicate anchor accepted")
	}
}

func TestGenerateKinds(t *testing.T) {
	for _, kind := range []WorkloadKind{BlockForest, StripChain, Mixed} {
		rng := rand.New(rand.NewSource(11))
		g, err := Generate(Config{Kind: kind, N: 120, T: 5}, rng)
		if err != nil {
			t.Fatalf("Generate(kind %d): %v", kind, err)
		}
		if g.N() < 120 {
			t.Errorf("kind %d: N = %d < 120", kind, g.N())
		}
		if !g.Connected() {
			t.Errorf("kind %d: not connected", kind)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("kind %d: Validate: %v", kind, err)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(Config{Kind: BlockForest, N: 10, T: 2}, rng); err == nil {
		t.Error("T = 2 accepted")
	}
	if _, err := Generate(Config{Kind: BlockForest, N: 1, T: 3}, rng); err == nil {
		t.Error("N = 1 accepted")
	}
	if _, err := Generate(Config{Kind: 99, N: 10, T: 3}, rng); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Config{Kind: Mixed, N: 60, T: 5}, rand.New(rand.NewSource(5)))
	b := MustGenerate(Config{Kind: Mixed, N: 60, T: 5}, rand.New(rand.NewSource(5)))
	if !a.Equal(b) {
		t.Error("same seed produced different graphs")
	}
}

// TestGenerateIsK2tFree cross-checks the freeness-by-construction argument
// with the exact minor tester at small sizes.
func TestGenerateIsK2tFree(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for _, kind := range []WorkloadKind{BlockForest, StripChain, Mixed} {
			rng := rand.New(rand.NewSource(seed))
			g, err := Generate(Config{Kind: kind, N: 10, T: 5}, rng)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if g.N() > 15 {
				continue // gadget overshoot; exact check too slow
			}
			_, ok, err := minor.HasK2tMinor(g, 5)
			if err != nil {
				t.Fatalf("minor test: %v", err)
			}
			if ok {
				t.Errorf("seed %d kind %d: generated graph has K_{2,5} minor", seed, kind)
			}
		}
	}
}

// TestGenerateSmallTIsK23Free checks that with T = 3 the generator avoids
// strips and the result is K_{2,3}-minor-free.
func TestGenerateSmallTIsK23Free(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, err := Generate(Config{Kind: Mixed, N: 10, T: 3}, rng)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		if g.N() > 15 {
			continue
		}
		_, ok, err := minor.HasK2tMinor(g, 3)
		if err != nil {
			t.Fatalf("minor test: %v", err)
		}
		if ok {
			t.Errorf("seed %d: T=3 graph has K_{2,3} minor", seed)
		}
	}
}

func TestStripChainAnchorsAdvance(t *testing.T) {
	// The strip chain must be a chain, not a bouquet: its diameter grows
	// with N.
	g := MustGenerate(Config{Kind: StripChain, N: 80, T: 5}, rand.New(rand.NewSource(3)))
	if d := g.Diameter(); d < 15 {
		t.Errorf("strip chain diameter = %d, want >= 15", d)
	}
}
