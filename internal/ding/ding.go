// Package ding implements the structural ingredients of Guoli Ding's
// characterization of graphs without large K_{2,t} minors
// (arXiv:1702.01355), which the paper uses in Lemma 4.2: fans, strips,
// type-I graphs, and augmentations of bounded-size base graphs
// (Proposition 5.15: every K_{2,t}-minor-free graph is an augmentation of a
// graph on at most m(t) vertices by disjoint fans and strips).
//
// The package provides both the forward direction (constructors that
// assemble provably K_{2,t}-minor-free graphs from the structure theorem,
// used as experiment workloads) and analysis helpers (type-I verification,
// strip radius) used by the Lemma 4.2 experiments.
package ding

import (
	"fmt"

	"localmds/internal/graph"
)

// Fan describes a fan graph: a center adjacent to every vertex of a path
// ("blades"). Fans are maximal outerplanar, hence K_{2,3}-minor-free, and
// appear as one of the two attachment gadgets in Ding's augmentations.
type Fan struct {
	G      *graph.Graph
	Center int // the fan's center corner (paper: vertex a)
	End1   int // first path endpoint corner (paper: vertex b)
	End2   int // last path endpoint corner (paper: vertex c)
}

// NewFan builds a fan of the given length (number of path vertices, >= 2):
// vertices 0 = center, 1..length = the path. The paper measures fan length
// in chords; a length-k path fan has k-2 chords plus the two cycle edges at
// the center.
func NewFan(length int) (*Fan, error) {
	if length < 2 {
		return nil, fmt.Errorf("ding: fan length %d < 2", length)
	}
	g := graph.New(length + 1)
	for i := 1; i <= length; i++ {
		g.AddEdge(0, i)
		if i > 1 {
			g.AddEdge(i-1, i)
		}
	}
	return &Fan{G: g, Center: 0, End1: 1, End2: length}, nil
}

// Corners returns the fan's corner vertices (center, end1, end2) as defined
// in §5.4 of the paper.
func (f *Fan) Corners() []int { return []int{f.Center, f.End1, f.End2} }

// Strip describes a strip: a ladder-like type-I graph with four corners.
// Ding proves strips are K_{2,5}-minor-free; long strips force local 2-cuts
// at their rungs, which is exactly the phenomenon Lemma 4.2 exploits.
type Strip struct {
	G *graph.Graph
	// Corners a, b, c, d: a-...-c is the top path, b-...-d the bottom path.
	A, B, C, D int
}

// NewStrip builds a ladder strip with the given number of rungs (>= 2):
// top path x_0..x_{k-1}, bottom path y_0..y_{k-1}, rung edges x_i y_i.
// Corners are (a, b, c, d) = (x_0, y_0, x_{k-1}, y_{k-1}).
func NewStrip(rungs int) (*Strip, error) {
	if rungs < 2 {
		return nil, fmt.Errorf("ding: strip needs >= 2 rungs, got %d", rungs)
	}
	g := graph.New(2 * rungs)
	top := func(i int) int { return 2 * i }
	bot := func(i int) int { return 2*i + 1 }
	for i := 0; i < rungs; i++ {
		g.AddEdge(top(i), bot(i))
		if i+1 < rungs {
			g.AddEdge(top(i), top(i+1))
			g.AddEdge(bot(i), bot(i+1))
		}
	}
	return &Strip{G: g, A: top(0), B: bot(0), C: top(rungs - 1), D: bot(rungs - 1)}, nil
}

// Corners returns the strip's four corner vertices.
func (s *Strip) Corners() []int { return []int{s.A, s.B, s.C, s.D} }

// Radius returns the strip radius used in Lemma 4.2's argument: the largest
// distance from any strip vertex to its nearest corner. Long strips have
// large radius, and the paper shows their corners then form local 2-cuts.
func (s *Strip) Radius() int {
	dist := s.G.BFSFromSet(s.Corners())
	r := 0
	for _, d := range dist {
		if d > r {
			r = d
		}
	}
	return r
}

// VerifyTypeI checks the type-I conditions from §5.4 against a graph g whose
// reference Hamiltonian cycle visits cycleOrder[0], cycleOrder[1], ... in
// order. It verifies that (1) cycleOrder is a Hamiltonian cycle of g,
// (2) every chord crosses at most one other chord, and (3) crossing chords
// ab, cd have both ac, bd or both ad, bc as cycle edges.
func VerifyTypeI(g *graph.Graph, cycleOrder []int) error {
	n := g.N()
	if len(cycleOrder) != n {
		return fmt.Errorf("ding: cycle order has %d vertices, graph has %d", len(cycleOrder), n)
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range cycleOrder {
		if v < 0 || v >= n || pos[v] >= 0 {
			return fmt.Errorf("ding: cycle order is not a permutation at index %d", i)
		}
		pos[v] = i
	}
	for i := 0; i < n; i++ {
		u, v := cycleOrder[i], cycleOrder[(i+1)%n]
		if !g.HasEdge(u, v) {
			return fmt.Errorf("ding: missing cycle edge {%d,%d}", u, v)
		}
	}
	isCycleEdge := func(u, v int) bool {
		d := pos[u] - pos[v]
		if d < 0 {
			d = -d
		}
		return d == 1 || d == n-1
	}
	var chords [][2]int
	g.VisitEdges(func(u, v int) {
		if !isCycleEdge(u, v) {
			chords = append(chords, [2]int{u, v})
		}
	})
	crossCount := make([]int, len(chords))
	for i := 0; i < len(chords); i++ {
		for j := i + 1; j < len(chords); j++ {
			if !chordsCross(pos, n, chords[i], chords[j]) {
				continue
			}
			crossCount[i]++
			crossCount[j]++
			a, b := chords[i][0], chords[i][1]
			c, d := chords[j][0], chords[j][1]
			ok := (isCycleEdge(a, c) && isCycleEdge(b, d)) ||
				(isCycleEdge(a, d) && isCycleEdge(b, c))
			if !ok {
				return fmt.Errorf("ding: crossing chords {%d,%d} x {%d,%d} violate the adjacency condition", a, b, c, d)
			}
		}
	}
	for i, c := range crossCount {
		if c > 1 {
			return fmt.Errorf("ding: chord {%d,%d} crosses %d chords (> 1)", chords[i][0], chords[i][1], c)
		}
	}
	return nil
}

// chordsCross reports whether two chords interleave around the reference
// cycle, i.e. exactly one endpoint of the second lies strictly inside the
// arc spanned by the first. Chords sharing an endpoint do not cross.
func chordsCross(pos []int, n int, e1, e2 [2]int) bool {
	a, b := pos[e1[0]], pos[e1[1]]
	c, d := pos[e2[0]], pos[e2[1]]
	if a == c || a == d || b == c || b == d {
		return false
	}
	inside := func(x, lo, hi int) bool {
		// Is position x strictly inside the arc lo -> hi (clockwise)?
		if lo < hi {
			return x > lo && x < hi
		}
		return x > lo || x < hi
	}
	return inside(c, a, b) != inside(d, a, b)
}

// Attachment describes one fan or strip glued onto a base graph in an
// augmentation: Gadget's corner vertices are identified with the listed
// base vertices (same length and order as Corners()).
type Attachment struct {
	Fan   *Fan // exactly one of Fan, Strip is non-nil
	Strip *Strip
	At    []int // base vertices the corners are identified with
}

func (a *Attachment) gadget() (*graph.Graph, []int) {
	if a.Fan != nil {
		return a.Fan.G, a.Fan.Corners()
	}
	return a.Strip.G, a.Strip.Corners()
}

// Augment glues the attachments onto base per §5.4's augmentation
// definition: each gadget is disjoint from the base and from other gadgets,
// and its corners are identified with distinct base vertices. The paper
// additionally restricts which corners may share a base vertex across
// attachments (only fan centers / strip corners); callers constructing
// workloads keep attachment points distinct, which trivially satisfies it.
func Augment(base *graph.Graph, attachments []*Attachment) (*graph.Graph, error) {
	result := base.Clone()
	for k, att := range attachments {
		gadget, corners := att.gadget()
		if len(att.At) != len(corners) {
			return nil, fmt.Errorf("ding: attachment %d has %d anchor vertices, gadget has %d corners", k, len(att.At), len(corners))
		}
		seen := make(map[int]bool, len(att.At))
		for _, v := range att.At {
			if v < 0 || v >= base.N() {
				return nil, fmt.Errorf("ding: attachment %d anchor %d outside base", k, v)
			}
			if seen[v] {
				return nil, fmt.Errorf("ding: attachment %d identifies two corners with base vertex %d", k, v)
			}
			seen[v] = true
		}
		// Append gadget vertices (minus corners) and wire edges.
		offset := make([]int, gadget.N())
		cornerAnchor := make(map[int]int, len(corners))
		for i, c := range corners {
			cornerAnchor[c] = att.At[i]
		}
		for v := 0; v < gadget.N(); v++ {
			if anchor, ok := cornerAnchor[v]; ok {
				offset[v] = anchor
			} else {
				offset[v] = result.AddVertex()
			}
		}
		gadget.VisitEdges(func(a, b int) {
			u, v := offset[a], offset[b]
			if u != v && !result.HasEdge(u, v) {
				result.AddEdge(u, v)
			}
		})
	}
	return result, nil
}
