package core

import (
	"math/rand"
	"testing"

	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
)

func TestBuildMinorBoundBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", gen.Path(15)},
		{"cycle", gen.Cycle(12)},
		{"cactus", gen.RandomCactus(30, rng)},
		{"ding", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 35, T: 5}, rng)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := BuildMinorBound(tt.g)
			if err != nil {
				t.Fatalf("BuildMinorBound: %v", err)
			}
			if err := res.H.Validate(); err != nil {
				t.Fatalf("H invalid: %v", err)
			}
			// A and B disjoint and inside H.
			if len(graph.SortedIntersect(graph.Dedup(res.A), graph.Dedup(res.B))) != 0 {
				t.Error("A and B overlap")
			}
			for _, v := range append(append([]int(nil), res.A...), res.B...) {
				if v < 0 || v >= res.H.N() {
					t.Errorf("vertex %d outside H", v)
				}
			}
			if len(res.B) != len(res.D) {
				t.Errorf("|B| = %d != |D| = %d", len(res.B), len(res.D))
			}
		})
	}
}

func TestVerifyMinorBoundOnK2tFree(t *testing.T) {
	// Lemma 5.18's conclusion |A| <= (t-1)|B| must hold on
	// K_{2,t}-minor-free instances.
	rng := rand.New(rand.NewSource(17))
	tParam := 5
	for i := 0; i < 6; i++ {
		g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 40, T: tParam}, rng)
		res, err := BuildMinorBound(g)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if err := VerifyMinorBound(res, tParam); err != nil {
			t.Errorf("instance %d: %v", i, err)
		}
	}
}

func TestVerifyMinorBoundEdgelessA(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := gen.RandomCactus(25, rng)
	res, err := BuildMinorBound(g)
	if err != nil {
		t.Fatal(err)
	}
	// Cacti are K_{2,3}-minor-free: |A| <= 2|B|.
	if err := VerifyMinorBound(res, 3); err != nil {
		t.Errorf("cactus bound: %v", err)
	}
}

func TestMinorBoundD2Accounting(t *testing.T) {
	g := gen.Star(6)
	res, err := BuildMinorBound(g)
	if err != nil {
		t.Fatal(err)
	}
	// Star: D2 = {center}; D = {center}: A empty.
	if res.D2Count != 1 {
		t.Errorf("D2Count = %d, want 1", res.D2Count)
	}
	if len(res.A) != 0 {
		t.Errorf("A = %v, want empty", res.A)
	}
}
