package core

import (
	"testing"

	"localmds/internal/local"
)

// Regression test for the flood-seed map walks in alg1process.go and
// mvcprocess.go: the first flooding-phase broadcast is seeded from the
// records map, and its wire order must not depend on Go's randomized
// map iteration. With 16 records, an unsorted seed would produce a
// differing order within a few repetitions with overwhelming
// probability.

// seedRecords returns a records map whose PartNbrs reference an unknown
// vertex, so the component never closes and Round stops after the
// broadcast (no solveComponent).
func seedRecords() map[int]partRecord {
	m := make(map[int]partRecord)
	for _, id := range []int{11, 3, 29, 7, 23, 2, 17, 5, 31, 13, 19, 37, 41, 43, 47, 53} {
		m[id] = partRecord{PartNbrs: []int{999}, Undominated: id%2 == 0}
	}
	return m
}

// broadcastIDs extracts the record IDs of the first outgoing flood
// message.
func broadcastIDs(t *testing.T, out []local.Message) []int {
	t.Helper()
	if len(out) == 0 {
		t.Fatal("no broadcast produced")
	}
	fm, ok := out[0].(*floodMsg)
	if !ok {
		t.Fatalf("broadcast message has type %T, want *floodMsg", out[0])
	}
	ids := make([]int, len(fm.records))
	for i, r := range fm.records {
		ids[i] = r.ID
	}
	return ids
}

func assertStableSeedOrder(t *testing.T, run func() []int) {
	t.Helper()
	first := run()
	for i := 1; i < len(first); i++ {
		if first[i-1] >= first[i] {
			t.Fatalf("seed broadcast not sorted by ID: %v", first)
		}
	}
	for rep := 0; rep < 50; rep++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("rep %d: %d records, want %d", rep, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("rep %d: broadcast order changed: %v vs %v", rep, got, first)
			}
		}
	}
}

func TestAlg1FloodSeedDeterministic(t *testing.T) {
	assertStableSeedOrder(t, func() []int {
		a := &alg1Process{
			gatherRounds: 0,
			participant:  true,
			records:      seedRecords(),
			info:         local.NodeInfo{ID: 1, Ports: 2, N: 64},
		}
		out, done := a.Round(1, nil)
		if done {
			t.Fatal("component unexpectedly closed")
		}
		return broadcastIDs(t, out)
	})
}

func TestMVCAlg1FloodSeedDeterministic(t *testing.T) {
	assertStableSeedOrder(t, func() []int {
		a := &mvcAlg1Process{
			gatherRounds: 0,
			participant:  true,
			records:      seedRecords(),
			info:         local.NodeInfo{ID: 1, Ports: 2, N: 64},
		}
		out, done := a.Round(1, nil)
		if done {
			t.Fatal("component unexpectedly closed")
		}
		return broadcastIDs(t, out)
	})
}
