package core

import (
	"fmt"
	"math/rand"
	"testing"

	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/obs"
)

// traceTestGraph is a multi-component instance so the ComponentSolve stage
// produces several component spans.
func traceTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	return graph.DisjointUnion(
		ding.MustGenerate(ding.Config{Kind: ding.StripChain, N: 40, T: 5}, rng),
		graph.DisjointUnion(gen.Grid(3, 4), gen.RandomCactus(25, rng)),
	)
}

var traceStageNames = []string{"TwinReduce", "Cuts", "Partition", "ComponentSolve", "Stitch"}

func TestSpanHooksRecordStageAndComponentSpans(t *testing.T) {
	g := traceTestGraph(t)
	p := Params{R1: 2, R2: 2, MaxBruteComponent: 64}

	tr, root := obs.NewTrace("req-trace-test", "solve", obs.TraceOptions{})
	res, err := Alg1Pipeline(g, p, PipelineOptions{Hooks: SpanHooks(root)})
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	view := tr.View()
	if view.Root == nil {
		t.Fatal("no root span")
	}
	stages := view.Root.Children
	if len(stages) != len(traceStageNames) {
		t.Fatalf("stage spans = %d, want %d", len(stages), len(traceStageNames))
	}
	var compStage *obs.SpanView
	for i, name := range traceStageNames {
		if stages[i].Name != name {
			t.Errorf("stage %d = %q, want %q", i, stages[i].Name, name)
		}
		if stages[i].Open {
			t.Errorf("stage %q left open", stages[i].Name)
		}
		if stages[i].Name == "ComponentSolve" {
			compStage = &stages[i]
		}
	}
	if compStage == nil {
		t.Fatal("no ComponentSolve span")
	}
	if want := len(res.Components); len(compStage.Children) != want {
		t.Fatalf("component spans = %d, want %d (one per residual component)", len(compStage.Children), want)
	}
	seen := make(map[string]bool)
	for _, c := range compStage.Children {
		if c.Open {
			t.Errorf("component span %q left open", c.Name)
		}
		seen[c.Name] = true
	}
	for i := range res.Components {
		if name := fmt.Sprintf("component %d", i); !seen[name] {
			t.Errorf("missing span %q", name)
		}
	}
}

func TestSpanHooksHugeMatchesAndRecords(t *testing.T) {
	g := traceTestGraph(t)
	p := Params{R1: 2, R2: 2, MaxBruteComponent: 64}
	csr := g.Freeze()

	plain, err := Alg1Huge(csr, p, HugeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr, root := obs.NewTrace("req-huge-trace", "solve", obs.TraceOptions{})
	traced, err := Alg1Huge(csr, p, HugeOptions{Hooks: SpanHooks(root)})
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	// Hooks must never change the result.
	if !graph.EqualSets(plain.S, traced.S) {
		t.Errorf("traced S = %v, want %v", traced.S, plain.S)
	}
	if plain.BruteFallbacks != traced.BruteFallbacks {
		t.Errorf("traced fallbacks = %d, want %d", traced.BruteFallbacks, plain.BruteFallbacks)
	}

	view := tr.View()
	if view.Root == nil || len(view.Root.Children) != len(traceStageNames) {
		t.Fatalf("huge driver recorded %d stage spans, want %d", len(view.Root.Children), len(traceStageNames))
	}
}

func TestSpanHooksNilParent(t *testing.T) {
	if h := SpanHooks(nil); h != nil {
		t.Fatalf("SpanHooks(nil) = %v, want nil (tracing off)", h)
	}
	g := traceTestGraph(t)
	p := Params{R1: 2, R2: 2, MaxBruteComponent: 64}
	// Nil hooks through the options structs must behave exactly as before.
	if _, err := Alg1Pipeline(g, p, PipelineOptions{Hooks: nil}); err != nil {
		t.Fatal(err)
	}
}
