package core

import (
	"sort"

	"localmds/internal/cuts"
	"localmds/internal/graph"
	"localmds/internal/mds"
)

// Alg1Result reports the outcome and diagnostics of Algorithm 1. It
// marshals to JSON (the mdsd service serves it verbatim inside solve
// responses); every field except the StageStats timings is deterministic
// for a fixed input and params.
type Alg1Result struct {
	// S is the returned dominating set, in original vertex labels.
	S []int `json:"s"`
	// X are the vertices of R1-local minimal 1-cuts of the twin-reduced
	// graph; I the R2-interesting vertices of R2-local minimal 2-cuts;
	// U the dominated vertices with no undominated neighbor (all in
	// original labels, all subsets of the twin representatives).
	X []int `json:"x"`
	I []int `json:"i"`
	U []int `json:"u"`
	// Active lists the twin-class representatives the algorithm ran on.
	Active []int `json:"active"`
	// Components are the connected components of Ĝ - (X ∪ I ∪ U) that the
	// brute-force step solved (original labels).
	Components [][]int `json:"components,omitempty"`
	// MaxComponentDiameter is the largest diameter among Components,
	// measured inside the component subgraph — the Lemma 4.2 quantity.
	MaxComponentDiameter int `json:"max_component_diameter"`
	// RoundsEstimate is the number of LOCAL rounds the distributed
	// implementation needs on this instance: the gather phase plus the
	// component flooding phase (see Alg1Process, which measures it for
	// real).
	RoundsEstimate int `json:"rounds_estimate"`
	// BruteFallbacks counts components that exceeded MaxBruteComponent
	// and were solved greedily instead of exactly.
	BruteFallbacks int `json:"brute_fallbacks"`
	// StageStats records per-stage wall time, allocation, and size
	// diagnostics of the pipeline run (TwinReduce → Cuts → Partition →
	// ComponentSolve → Stitch). The legacy sequential path leaves it nil.
	StageStats StageStats `json:"stage_stats,omitempty"`
}

// Alg1Sequential is the original monolithic implementation of Algorithm 1,
// running every step on the mutable adjacency representation. It is kept
// verbatim as the reference the staged CSR pipeline (Alg1 / Alg1Pipeline)
// is equivalence-tested against: both must produce identical S, X, I, U,
// Active, and Components for every input.
func Alg1Sequential(g *graph.Graph, p Params) (*Alg1Result, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	if g.N() == 0 {
		return &Alg1Result{}, nil
	}

	reduced, active := g.TwinReduction()

	// Steps 2 and 3 on the reduced graph.
	xLocal := cuts.LocalOneCuts(reduced, p.R1)
	iLocal := cuts.LocallyInterestingVertices(reduced, p.R2)
	s1Local := graph.SortedUnion(xLocal, iLocal)

	// Undominated vertices W and the saturated set U, inside Ĝ.
	dominated := make([]bool, reduced.N())
	for _, v := range s1Local {
		for _, u := range reduced.Ball(v, 1) {
			dominated[u] = true
		}
	}
	inS1 := make([]bool, reduced.N())
	for _, v := range s1Local {
		inS1[v] = true
	}
	var uLocal []int
	var rest []int // vertices of Ĝ - (X ∪ I ∪ U)
	for v := 0; v < reduced.N(); v++ {
		if inS1[v] {
			continue
		}
		if dominated[v] && allDominated(reduced, v, dominated) {
			uLocal = append(uLocal, v)
		} else {
			rest = append(rest, v)
		}
	}

	res := &Alg1Result{
		X:      mapBack(xLocal, active),
		I:      mapBack(iLocal, active),
		U:      mapBack(uLocal, active),
		Active: append([]int(nil), active...),
	}
	sol := append([]int(nil), s1Local...)

	// Step 4: per-component brute force on the undominated vertices.
	for _, comp := range reduced.ComponentsOfSubset(rest) {
		var target []int
		for _, v := range comp {
			if !dominated[v] {
				target = append(target, v)
			}
		}
		if len(target) == 0 {
			continue
		}
		res.Components = append(res.Components, mapBack(comp, active))
		sub, idx := reduced.Induced(comp)
		if d := sub.Diameter(); d > res.MaxComponentDiameter {
			res.MaxComponentDiameter = d
		}
		localTarget := relabel(target, idx)
		var chosen []int
		if len(comp) <= p.MaxBruteComponent {
			chosen, err = mds.ExactBDominatingOpt(sub, localTarget, mds.ExactOptions{MaxNodes: BruteNodeBudget})
			if err != nil {
				// Node budget exhausted (the only reachable error: the
				// component is under every vertex cap): greedy fallback,
				// deterministically — node counts are input-determined.
				res.BruteFallbacks++
				chosen = greedyBDominating(sub, localTarget)
			}
		} else {
			res.BruteFallbacks++
			chosen = greedyBDominating(sub, localTarget)
		}
		for _, v := range chosen {
			sol = append(sol, idx[v])
		}
	}

	res.S = mapBack(graph.Dedup(sol), active)
	res.RoundsEstimate = p.GatherRadius() + 2 + res.MaxComponentDiameter + 1
	return res, nil
}

// allDominated reports whether every neighbor of v (and v itself) is
// dominated.
func allDominated(g *graph.Graph, v int, dominated []bool) bool {
	if !dominated[v] {
		return false
	}
	for _, u := range g.Neighbors(v) {
		if !dominated[u] {
			return false
		}
	}
	return true
}

// mapBack converts reduced-graph indices to original labels.
func mapBack(local []int, active []int) []int {
	out := make([]int, 0, len(local))
	for _, v := range local {
		out = append(out, active[v])
	}
	sort.Ints(out)
	return out
}

// relabel converts component-graph labels: target holds reduced-graph
// indices, idx maps component-local index -> reduced index.
func relabel(target, idx []int) []int {
	pos := make(map[int]int, len(idx))
	for i, v := range idx {
		pos[v] = i
	}
	out := make([]int, 0, len(target))
	for _, v := range target {
		out = append(out, pos[v])
	}
	sort.Ints(out)
	return out
}

// greedyBDominating is the fallback solver for oversized components: the
// classical greedy cover of the target set.
func greedyBDominating(g *graph.Graph, target []int) []int {
	need := make(map[int]bool, len(target))
	for _, v := range target {
		need[v] = true
	}
	var sol []int
	for len(need) > 0 {
		bestV, bestGain := -1, 0
		for v := 0; v < g.N(); v++ {
			gain := 0
			for _, u := range g.Ball(v, 1) {
				if need[u] {
					gain++
				}
			}
			if gain > bestGain {
				bestV, bestGain = v, gain
			}
		}
		if bestV < 0 {
			break
		}
		sol = append(sol, bestV)
		for _, u := range g.Ball(bestV, 1) {
			delete(need, u)
		}
	}
	sort.Ints(sol)
	return sol
}
