package core

import (
	"fmt"
	"runtime"
	"runtime/metrics"
	"sort"
	"strings"
	"sync"
	"time"

	"localmds/internal/cuts"
	"localmds/internal/graph"
	"localmds/internal/mds"
)

// This file is the staged CSR pipeline behind Alg1. The monolithic
// reference implementation (Alg1Sequential) re-derived induced subgraphs
// and neighborhood balls through the allocating *graph.Graph accessors at
// every step; the pipeline freezes the twin-reduced graph once and runs
// every subsequent stage — cut enumeration, partitioning, per-component
// solving — over the flat CSR view with reusable arena scratch, fanning the
// independent component solves out over a bounded worker pool. Stage
// boundaries are explicit so each one records wall time, allocations, and
// a size statistic into Alg1Result.StageStats.

// StageStat is one pipeline stage's diagnostics. The JSON form (used by
// the mdsd service and any result archive) carries Wall as integer
// nanoseconds under "wall_ns".
type StageStat struct {
	// Name is the stage name (TwinReduce, Cuts, Partition, ComponentSolve,
	// Stitch).
	Name string `json:"name"`
	// Wall is the stage's wall-clock duration.
	Wall time.Duration `json:"wall_ns"`
	// Allocs is the number of heap objects allocated while the stage ran.
	// The counter is process-wide (concurrent activity outside the
	// pipeline inflates it) and approximate: the runtime aggregates
	// per-core allocation counts lazily, so small allocations may be
	// attributed to a later stage.
	Allocs uint64 `json:"allocs"`
	// Items is the stage's size statistic, counted in Unit.
	Items int `json:"items"`
	// Unit names what Items counts (e.g. "active vertices", "components").
	Unit string `json:"unit"`
}

// StageStats is the per-stage diagnostic trail of one pipeline run.
type StageStats []StageStat

// TotalWall returns the summed wall time of all stages.
func (ss StageStats) TotalWall() time.Duration {
	var total time.Duration
	for _, s := range ss {
		total += s.Wall
	}
	return total
}

// Render formats the stage table for terminal output.
func (ss StageStats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %-26s %12s %12s\n", "stage", "items", "wall", "allocs")
	var wall time.Duration
	var allocs uint64
	for _, s := range ss {
		fmt.Fprintf(&b, "%-15s %-26s %12s %12d\n",
			s.Name, fmt.Sprintf("%d %s", s.Items, s.Unit), s.Wall.Round(time.Microsecond), s.Allocs)
		wall += s.Wall
		allocs += s.Allocs
	}
	fmt.Fprintf(&b, "%-15s %-26s %12s %12d\n", "total", "", wall.Round(time.Microsecond), allocs)
	return b.String()
}

// PipelineOptions tunes the staged solver.
type PipelineOptions struct {
	// Workers bounds the ComponentSolve fan-out; <= 0 means GOMAXPROCS.
	// The result is identical for every worker count.
	Workers int
	// Hooks receives stage/component span callbacks; nil (the default)
	// disables tracing at zero cost. Hooks never change the result.
	Hooks TraceHooks
}

// Alg1 runs the centralized reference implementation of Algorithm 1
// (Theorem 4.1) on g with the given radii:
//
//  1. reduce true twins,
//  2. take every vertex of an R1-local minimal 1-cut,
//  3. take every R2-interesting vertex of an R2-local minimal 2-cut,
//  4. per component of Ĝ - (X ∪ I ∪ U), brute-force a minimum set
//     dominating the still-undominated vertices.
//
// The result is always a dominating set of g; the 50-approximation
// guarantee of the paper applies for the PaperParams radii on
// K_{2,t}-minor-free inputs. Alg1 executes as a staged CSR pipeline with
// default options; see Alg1Pipeline to bound the component-solve fan-out.
func Alg1(g *graph.Graph, p Params) (*Alg1Result, error) {
	return Alg1Pipeline(g, p, PipelineOptions{})
}

// allocMetric is the runtime/metrics counter backing StageStat.Allocs;
// reading it does not stop the world.
const allocMetric = "/gc/heap/allocs:objects"

// runStage times fn, recording its wall clock, allocation delta, and
// returned size statistic under the given stage name. hooks (nil = off)
// observes the stage's span boundaries.
func (res *Alg1Result) runStage(hooks TraceHooks, name, unit string, sample []metrics.Sample, fn func() int) {
	var endSpan func(StageStat)
	if hooks != nil {
		endSpan = hooks.StageStart(name)
	}
	metrics.Read(sample)
	before := sample[0].Value.Uint64()
	start := time.Now()
	items := fn()
	wall := time.Since(start)
	metrics.Read(sample)
	stat := StageStat{
		Name:   name,
		Wall:   wall,
		Allocs: sample[0].Value.Uint64() - before,
		Items:  items,
		Unit:   unit,
	}
	res.StageStats = append(res.StageStats, stat)
	if endSpan != nil {
		endSpan(stat)
	}
}

// compOut is one component's ComponentSolve result, indexed by component so
// assembly order (and therefore the output) is independent of scheduling.
type compOut struct {
	chosen   []int // picked vertices, in reduced-graph labels
	diam     int   // component subgraph diameter
	solved   bool  // false when the component had no undominated vertex
	fallback bool  // solved greedily because it exceeded MaxBruteComponent
	err      error
}

// Alg1Pipeline runs Algorithm 1 as the staged CSR pipeline
// TwinReduce → Cuts → Partition → ComponentSolve → Stitch, with the
// component solves fanned out over opt.Workers goroutines. The result is
// deterministic: equal to Alg1Sequential's field for field, at every worker
// count.
func Alg1Pipeline(g *graph.Graph, p Params, opt PipelineOptions) (*Alg1Result, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	if g.N() == 0 {
		return &Alg1Result{}, nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	hooks := opt.Hooks

	res := &Alg1Result{}
	sample := make([]metrics.Sample, 1)
	sample[0].Name = allocMetric

	// TwinReduce: collapse true-twin classes to representatives and freeze
	// the reduced graph; every later stage reads only the CSR view.
	var csr *graph.CSR
	var active []int
	res.runStage(hooks, "TwinReduce", "active vertices", sample, func() int {
		var reduced *graph.Graph
		reduced, active = g.TwinReduction()
		csr = reduced.Freeze()
		return len(active)
	})
	res.Active = append([]int(nil), active...)

	arena := graph.NewArena()

	// Cuts: steps 2 and 3 on the reduced graph.
	var xLocal, iLocal []int
	res.runStage(hooks, "Cuts", "cut vertices", sample, func() int {
		xLocal = cuts.LocalOneCutsCSR(csr, p.R1, arena)
		iLocal = cuts.LocallyInterestingVerticesCSR(csr, p.R2, arena)
		return len(xLocal) + len(iLocal)
	})

	// Partition: the undominated set W, the saturated set U, and the
	// residual components of Ĝ - (X ∪ I ∪ U).
	var s1Local, uLocal []int
	var dominated []bool
	var comps [][]int32
	res.runStage(hooks, "Partition", "residual components", sample, func() int {
		s1Local = graph.SortedUnion(xLocal, iLocal)
		var rest []int32
		dominated, uLocal, rest = partitionResidual(csr, s1Local)
		comps = csr.SubsetComponents(rest, arena)
		return len(comps)
	})
	res.X = mapBack(xLocal, active)
	res.I = mapBack(iLocal, active)
	res.U = mapBack(uLocal, active)

	// ComponentSolve: brute-force (or greedy, above the cap) each residual
	// component against its undominated vertices. Components are
	// independent, so they fan out over the pool; each worker owns its
	// arena and scratch CSR, and results land in a component-indexed slice.
	outs := make([]compOut, len(comps))
	res.runStage(hooks, "ComponentSolve", "solved components", sample, func() int {
		w := workers
		if w > len(comps) {
			w = len(comps)
		}
		if w <= 1 {
			solver := componentSolver{csr: csr, dominated: dominated, p: p, arena: graph.NewArena(), hooks: hooks}
			for i := range comps {
				outs[i] = solver.solve(i, comps[i])
			}
		} else {
			idxCh := make(chan int)
			var wg sync.WaitGroup
			for k := 0; k < w; k++ {
				wg.Add(1)
				//mdsvet:ignore boundedgo -- bounded fan-out: exactly w <= PipelineOptions.Workers goroutines, joined below; core cannot import runner.Pool (cycle)
				go func() {
					defer wg.Done()
					solver := componentSolver{csr: csr, dominated: dominated, p: p, arena: graph.NewArena(), hooks: hooks}
					for i := range idxCh {
						outs[i] = solver.solve(i, comps[i])
					}
				}()
			}
			for i := range comps {
				idxCh <- i
			}
			close(idxCh)
			wg.Wait()
		}
		solved := 0
		for i := range outs {
			if outs[i].solved {
				solved++
			}
		}
		return solved
	})
	for i := range outs {
		if outs[i].err != nil {
			return nil, fmt.Errorf("core: brute-force component: %w", outs[i].err)
		}
	}

	// Stitch: assemble the solution and diagnostics in component order.
	res.runStage(hooks, "Stitch", "solution vertices", sample, func() int {
		return stitchSolution(res, p, active, s1Local, comps, outs)
	})
	return res, nil
}

// partitionResidual computes the Partition stage's split of the reduced
// graph: the domination bitmap induced by S1 = X ∪ I, the saturated set U
// (dominated vertices whose whole closed neighborhood is dominated), and
// the residual vertex set of Ĝ - (S1 ∪ U). Shared by Alg1Pipeline and
// Alg1Huge so the two drivers cannot drift.
func partitionResidual(csr *graph.CSR, s1Local []int) (dominated []bool, uLocal []int, rest []int32) {
	n := csr.N()
	dominated = make([]bool, n)
	inS1 := make([]bool, n)
	for _, v := range s1Local {
		inS1[v] = true
		dominated[v] = true
		for _, u := range csr.Row(v) {
			dominated[u] = true
		}
	}
	rest = make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if inS1[v] {
			continue
		}
		if dominated[v] && allDominatedCSR(csr, v, dominated) {
			uLocal = append(uLocal, v)
		} else {
			rest = append(rest, int32(v))
		}
	}
	return dominated, uLocal, rest
}

// stitchSolution assembles the final solution and diagnostics in component
// order, filling res.S, Components, MaxComponentDiameter, BruteFallbacks,
// and RoundsEstimate. It returns the solution size (the Stitch stage's
// item count). Shared by Alg1Pipeline and Alg1Huge.
func stitchSolution(res *Alg1Result, p Params, active, s1Local []int, comps [][]int32, outs []compOut) int {
	sol := append([]int(nil), s1Local...)
	for i := range outs {
		o := &outs[i]
		if !o.solved {
			continue
		}
		res.Components = append(res.Components, mapBack32(comps[i], active))
		if o.diam > res.MaxComponentDiameter {
			res.MaxComponentDiameter = o.diam
		}
		if o.fallback {
			res.BruteFallbacks++
		}
		sol = append(sol, o.chosen...)
	}
	res.S = mapBack(graph.Dedup(sol), active)
	res.RoundsEstimate = p.GatherRadius() + 2 + res.MaxComponentDiameter + 1
	return len(res.S)
}

// componentSolver is one worker's reusable state for ComponentSolve.
type componentSolver struct {
	csr       *graph.CSR
	dominated []bool
	p         Params
	arena     *graph.Arena
	hooks     TraceHooks // nil = tracing off
	sub       graph.CSR  // scratch induced-subgraph buffers, reused per component
	target    []int      // scratch local-target buffer
}

// solve handles one residual component: collect its undominated vertices,
// build the induced CSR, measure the diameter, and pick a minimum
// dominating set for the targets (exactly up to MaxBruteComponent, greedily
// beyond it). index is the component's position in the partition, used
// only to label its trace span.
func (cs *componentSolver) solve(index int, comp []int32) compOut {
	if cs.hooks != nil {
		end := cs.hooks.ComponentStart(index, len(comp))
		out := cs.solveBody(comp)
		end(len(out.chosen), out.fallback)
		return out
	}
	return cs.solveBody(comp)
}

// solveBody is the hook-free body of solve.
func (cs *componentSolver) solveBody(comp []int32) compOut {
	// comp is sorted, so local index i corresponds to vertex comp[i] and
	// the monotone relabeling matches graph.Induced's canonical one.
	target := cs.target[:0]
	for i, v := range comp {
		if !cs.dominated[v] {
			target = append(target, i)
		}
	}
	cs.target = target
	if len(target) == 0 {
		return compOut{}
	}
	cs.csr.InducedInto(&cs.sub, comp, cs.arena)
	out := compOut{solved: true, diam: cs.sub.Diameter(cs.arena)}
	var chosen []int
	if len(comp) <= cs.p.MaxBruteComponent {
		var err error
		chosen, err = mds.ExactBDominatingCSROpt(&cs.sub, target, mds.ExactOptions{MaxNodes: BruteNodeBudget})
		if err != nil {
			// Budget exhausted (the only reachable error here): greedy
			// fallback, mirroring the legacy path exactly — node counts
			// are input-determined, so both sides fall back on the same
			// components.
			out.fallback = true
			chosen = mds.GreedyBDominatingCSR(&cs.sub, target)
		}
	} else {
		out.fallback = true
		chosen = mds.GreedyBDominatingCSR(&cs.sub, target)
	}
	out.chosen = make([]int, len(chosen))
	for i, v := range chosen {
		out.chosen[i] = int(comp[v])
	}
	return out
}

// allDominatedCSR reports whether every vertex of N[v] is dominated,
// reading the CSR row directly.
func allDominatedCSR(c *graph.CSR, v int, dominated []bool) bool {
	if !dominated[v] {
		return false
	}
	for _, u := range c.Row(v) {
		if !dominated[u] {
			return false
		}
	}
	return true
}

// mapBack32 converts reduced-graph indices to sorted original labels.
func mapBack32(local []int32, active []int) []int {
	out := make([]int, 0, len(local))
	for _, v := range local {
		out = append(out, active[v])
	}
	sort.Ints(out)
	return out
}
