package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"localmds/internal/gen"
)

// TestAlg1ResultJSONRoundTrip: the result the mdsd service serves must
// survive encode/decode field for field (timings included — they are
// plain nanosecond integers on the wire).
func TestAlg1ResultJSONRoundTrip(t *testing.T) {
	g := gen.Grid(6, 6)
	res, err := Alg1(g, PracticalParams())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Alg1Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res, back) {
		t.Fatalf("round trip changed the result:\n got %+v\nwant %+v", back, *res)
	}
	// Spot-check the wire names the service's clients rely on.
	var wire map[string]any
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"s", "x", "i", "u", "active", "rounds_estimate", "stage_stats"} {
		if _, ok := wire[key]; !ok {
			t.Fatalf("wire form missing key %q: %s", key, data)
		}
	}
	stages, ok := wire["stage_stats"].([]any)
	if !ok || len(stages) != len(res.StageStats) {
		t.Fatalf("stage_stats wire form wrong: %s", data)
	}
	first, ok := stages[0].(map[string]any)
	if !ok {
		t.Fatalf("stage entry wire form wrong: %s", data)
	}
	for _, key := range []string{"name", "wall_ns", "allocs", "items", "unit"} {
		if _, ok := first[key]; !ok {
			t.Fatalf("stage entry missing key %q: %s", key, data)
		}
	}
}

func TestParamsJSON(t *testing.T) {
	var p Params
	if err := json.Unmarshal([]byte(`{"r1":3,"r2":5,"max_brute_component":32}`), &p); err != nil {
		t.Fatal(err)
	}
	if p.R1 != 3 || p.R2 != 5 || p.MaxBruteComponent != 32 {
		t.Fatalf("decoded %+v", p)
	}
}
