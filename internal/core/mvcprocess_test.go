package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/local"
	"localmds/internal/mds"
)

func TestRunMVCD2MatchesCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", gen.Path(12)},
		{"cycle", gen.Cycle(9)},
		{"triangle", gen.Complete(3)},
		{"complete", gen.Complete(5)},
		{"cactus", gen.RandomCactus(25, rng)},
		{"ding", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 30, T: 4}, rng)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			want := MVCD2(tt.g)
			got, stats, err := RunMVCD2(tt.g, nil, local.Sequential)
			if err != nil {
				t.Fatalf("RunMVCD2: %v", err)
			}
			if !graph.EqualSets(got, want.S) {
				t.Errorf("process = %v, centralized = %v", got, want.S)
			}
			if stats.Rounds != MVCD2GatherRounds {
				t.Errorf("rounds = %d, want %d", stats.Rounds, MVCD2GatherRounds)
			}
		})
	}
}

func TestRunMVCAlg1IsCover(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", gen.Path(14)},
		{"cycle", gen.Cycle(11)},
		{"cactus", gen.RandomCactus(20, rng)},
		{"ding", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 24, T: 5}, rng)},
	}
	p := Params{R1: 3, R2: 3}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, _, err := RunMVCAlg1(tt.g, nil, p, local.Sequential)
			if err != nil {
				t.Fatalf("RunMVCAlg1: %v", err)
			}
			if !mds.IsVertexCover(tt.g, got) {
				t.Errorf("process output %v is not a cover", got)
			}
		})
	}
}

func TestRunMVCAlg1MatchesCentralized(t *testing.T) {
	// The process and the centralized variant use the same cut sets and
	// the same exact solver; with identity identifiers the residual
	// component instances coincide, so outputs are equal.
	rng := rand.New(rand.NewSource(59))
	p := Params{R1: 3, R2: 3}
	for i := 0; i < 4; i++ {
		g := gen.RandomCactus(18, rng)
		want, err := MVCAlg1(g, p)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := RunMVCAlg1(g, nil, p, local.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		if !graph.EqualSets(got, want.S) {
			t.Errorf("instance %d: process %v vs centralized %v", i, got, want.S)
		}
	}
}

func TestRunMVCEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 30, T: 5}, rng)
	a, _, err := RunMVCD2(g, nil, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunMVCD2(g, nil, local.Parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.EqualSets(a, b) {
		t.Error("MVCD2 engines disagree")
	}
	c, _, err := RunMVCAlg1(g, nil, Params{R1: 3, R2: 3}, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := RunMVCAlg1(g, nil, Params{R1: 3, R2: 3}, local.Parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.EqualSets(c, d) {
		t.Error("MVCAlg1 engines disagree")
	}
}

// Property: both distributed MVC variants return covers on random graphs.
func TestRunMVCCoversProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(16, 0.15, rng)
		a, _, err := RunMVCD2(g, nil, local.Sequential)
		if err != nil || !mds.IsVertexCover(g, a) {
			return false
		}
		b, _, err := RunMVCAlg1(g, nil, Params{R1: 2, R2: 2}, local.Sequential)
		return err == nil && mds.IsVertexCover(g, b)
	}
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
