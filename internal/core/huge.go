package core

import (
	"fmt"
	"runtime/metrics"
	"sync"

	"localmds/internal/cuts"
	"localmds/internal/graph"
)

// This file is the partition-first driver for huge inputs. Alg1Pipeline
// starts from an adjacency-list *graph.Graph — fine when the graph arrived
// through a text parser, but the huge-graph ingestion path produces a
// frozen (possibly mmap-backed, read-only) graph.CSR directly, and
// materializing an adjacency intermediate for a 10^8-edge instance would
// double peak RSS before the solver ran. Alg1Huge runs every stage on the
// shared CSR: TwinReduceCSR instead of TwinReduction, the same CSR-native
// cut enumeration and partitioning, and a component fan-out that never
// holds more than `workers` induced component copies at once — each worker
// owns one reusable componentSolver whose buffers grow to the largest
// component it sees and are recycled across all the components it solves.

// Submitter is the slice of runner.Pool that Alg1Huge schedules on.
// (core cannot import runner directly: runner drives experiments, which
// import core.) Submit must run the function on some goroutine and may
// block until a worker frees up; Workers reports the concurrency bound.
type Submitter interface {
	Submit(fn func())
	Workers() int
}

// HugeOptions tunes Alg1Huge.
type HugeOptions struct {
	// Pool fans the per-component solves out; nil solves them in the
	// calling goroutine. The result is identical either way.
	Pool Submitter
	// Hooks receives stage/component span callbacks; nil (the default)
	// disables tracing at zero cost. Hooks never change the result.
	Hooks TraceHooks
}

// Alg1Huge runs Algorithm 1 on a frozen CSR view, partition-first: the
// shared input CSR feeds TwinReduce, Cuts, and Partition directly, and
// only the residual components — each a vanishing fraction of a huge
// near-planar instance — are ever copied out, at most one per pool worker
// at a time. The input CSR is never mutated (it may be an mmap of a
// csrbin file), and the result equals Alg1Pipeline's on the same graph
// field for field, at every worker count.
func Alg1Huge(csr *graph.CSR, p Params, opt HugeOptions) (*Alg1Result, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	if csr.N() == 0 {
		return &Alg1Result{}, nil
	}
	hooks := opt.Hooks

	res := &Alg1Result{}
	sample := make([]metrics.Sample, 1)
	sample[0].Name = allocMetric

	// TwinReduce: collapse true-twin classes on the CSR itself. When the
	// input has no twins this is a scan, not a copy.
	var rcsr *graph.CSR
	var active []int
	res.runStage(hooks, "TwinReduce", "active vertices", sample, func() int {
		rcsr, active = graph.TwinReduceCSR(csr)
		return len(active)
	})
	res.Active = append([]int(nil), active...)

	arena := graph.NewArena()

	// Cuts: steps 2 and 3 on the reduced CSR.
	var xLocal, iLocal []int
	res.runStage(hooks, "Cuts", "cut vertices", sample, func() int {
		xLocal = cuts.LocalOneCutsCSR(rcsr, p.R1, arena)
		iLocal = cuts.LocallyInterestingVerticesCSR(rcsr, p.R2, arena)
		return len(xLocal) + len(iLocal)
	})

	// Partition: identical to the pipeline's stage, via the shared helper.
	var s1Local, uLocal []int
	var dominated []bool
	var comps [][]int32
	res.runStage(hooks, "Partition", "residual components", sample, func() int {
		s1Local = graph.SortedUnion(xLocal, iLocal)
		var rest []int32
		dominated, uLocal, rest = partitionResidual(rcsr, s1Local)
		comps = rcsr.SubsetComponents(rest, arena)
		return len(comps)
	})
	res.X = mapBack(xLocal, active)
	res.I = mapBack(iLocal, active)
	res.U = mapBack(uLocal, active)

	// ComponentSolve: fan the independent components out over the pool.
	// A free list of exactly `workers` componentSolvers bounds the live
	// induced-subgraph copies: a task must take a solver before it can
	// copy its component, and gives it back (buffers intact, ready for
	// reuse) when done.
	outs := make([]compOut, len(comps))
	res.runStage(hooks, "ComponentSolve", "solved components", sample, func() int {
		w := 1
		if opt.Pool != nil {
			w = opt.Pool.Workers()
		}
		if w > len(comps) {
			w = len(comps)
		}
		if opt.Pool == nil || w <= 1 {
			solver := componentSolver{csr: rcsr, dominated: dominated, p: p, arena: graph.NewArena(), hooks: hooks}
			for i := range comps {
				outs[i] = solver.solve(i, comps[i])
			}
		} else {
			solvers := make(chan *componentSolver, w)
			for k := 0; k < w; k++ {
				solvers <- &componentSolver{csr: rcsr, dominated: dominated, p: p, arena: graph.NewArena(), hooks: hooks}
			}
			var wg sync.WaitGroup
			for i := range comps {
				wg.Add(1)
				opt.Pool.Submit(func() {
					defer wg.Done()
					s := <-solvers
					outs[i] = s.solve(i, comps[i])
					solvers <- s
				})
			}
			wg.Wait()
		}
		solved := 0
		for i := range outs {
			if outs[i].solved {
				solved++
			}
		}
		return solved
	})
	for i := range outs {
		if outs[i].err != nil {
			return nil, fmt.Errorf("core: brute-force component: %w", outs[i].err)
		}
	}

	// Stitch: identical to the pipeline's stage, via the shared helper.
	res.runStage(hooks, "Stitch", "solution vertices", sample, func() int {
		return stitchSolution(res, p, active, s1Local, comps, outs)
	})
	return res, nil
}
