package core_test

// Alg1Huge is the partition-first CSR driver for the huge-graph ingestion
// path; these tests pin it field for field to Alg1Pipeline. They live in an
// external test package so they can schedule on the real runner.Pool —
// core itself only sees the Submitter slice of it (importing runner from
// package core would cycle through experiments).

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localmds/internal/core"
	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/mds"
	"localmds/internal/runner"
)

// equalAlg1Results fails the test unless the two results agree on every
// algorithmic field (StageStats carries timings and is never compared).
func equalAlg1Results(t *testing.T, got, want *core.Alg1Result) {
	t.Helper()
	if !graph.EqualSets(got.S, want.S) {
		t.Errorf("S = %v, want %v", got.S, want.S)
	}
	if !graph.EqualSets(got.X, want.X) {
		t.Errorf("X = %v, want %v", got.X, want.X)
	}
	if !graph.EqualSets(got.I, want.I) {
		t.Errorf("I = %v, want %v", got.I, want.I)
	}
	if !graph.EqualSets(got.U, want.U) {
		t.Errorf("U = %v, want %v", got.U, want.U)
	}
	if !graph.EqualSets(got.Active, want.Active) {
		t.Errorf("Active = %v, want %v", got.Active, want.Active)
	}
	if len(got.Components) != len(want.Components) {
		t.Fatalf("components = %d, want %d", len(got.Components), len(want.Components))
	}
	for i := range got.Components {
		if !graph.EqualSets(got.Components[i], want.Components[i]) {
			t.Errorf("component %d = %v, want %v", i, got.Components[i], want.Components[i])
		}
	}
	if got.MaxComponentDiameter != want.MaxComponentDiameter {
		t.Errorf("MaxComponentDiameter = %d, want %d", got.MaxComponentDiameter, want.MaxComponentDiameter)
	}
	if got.RoundsEstimate != want.RoundsEstimate {
		t.Errorf("RoundsEstimate = %d, want %d", got.RoundsEstimate, want.RoundsEstimate)
	}
	if got.BruteFallbacks != want.BruteFallbacks {
		t.Errorf("BruteFallbacks = %d, want %d", got.BruteFallbacks, want.BruteFallbacks)
	}
}

// TestAlg1HugeMatchesPipelineOnFamilies pins the huge driver to the
// pipeline on every workload family, including twin-heavy and
// multi-component instances and the greedy-fallback regime.
func TestAlg1HugeMatchesPipelineOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	multi := graph.DisjointUnion(
		ding.MustGenerate(ding.Config{Kind: ding.StripChain, N: 60, T: 5}, rng),
		graph.DisjointUnion(gen.Grid(4, 5), gen.RandomCactus(40, rng)),
	)
	tests := []struct {
		name string
		g    *graph.Graph
		p    core.Params
	}{
		{"path", gen.Path(30), core.PracticalParams()},
		{"cycle", gen.Cycle(24), core.Params{R1: 3, R2: 2}},
		{"tree", gen.RandomTree(60, rng), core.PracticalParams()},
		{"cactus", gen.RandomCactus(50, rng), core.PracticalParams()},
		{"outerplanar", gen.MaximalOuterplanar(20, rng), core.PracticalParams()},
		{"cliquependants", gen.CliquePendants(8), core.PracticalParams()},
		{"grid", gen.Grid(5, 6), core.PracticalParams()},
		{"ding-mixed", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 70, T: 5}, rng), core.PracticalParams()},
		{"multi-component", multi, core.PracticalParams()},
		{"single", gen.Path(1), core.PracticalParams()},
		{"empty", graph.New(0), core.PracticalParams()},
		{"k4", gen.Complete(4), core.PracticalParams()},
		{"twins-complete-bipartite", gen.CompleteBipartite(3, 7), core.PracticalParams()},
		{"greedy-fallback", ding.MustGenerate(ding.Config{Kind: ding.StripChain, N: 80, T: 5}, rng),
			core.Params{R1: 4, R2: 4, MaxBruteComponent: 2}},
	}
	pool := runner.NewPool(4, 16)
	defer pool.Close()
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			want, err := core.Alg1Pipeline(tt.g, tt.p, core.PipelineOptions{Workers: 4})
			if err != nil {
				t.Fatalf("Alg1Pipeline: %v", err)
			}
			got, err := core.Alg1Huge(tt.g.Freeze(), tt.p, core.HugeOptions{Pool: pool})
			if err != nil {
				t.Fatalf("Alg1Huge: %v", err)
			}
			equalAlg1Results(t, got, want)
			if tt.g.N() > 0 && !mds.IsDominatingSet(tt.g, got.S) {
				t.Fatal("huge-driver result is not dominating")
			}
		})
	}
}

// Property: on randomized multi-component instances the huge driver and
// the pipeline agree on all fields, for random radii. CI runs this under
// -race, which also guards the solver free list against data races.
func TestAlg1HugeMatchesPipelineProperty(t *testing.T) {
	pool := runner.NewPool(3, 8)
	defer pool.Close()
	f := func(seed int64, rawR1, rawR2, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		switch pick % 3 {
		case 0:
			g = gen.GNPConnected(24, 0.1, rng)
		case 1:
			g = graph.DisjointUnion(gen.GNPConnected(14, 0.15, rng), gen.RandomCactus(16, rng))
		default:
			g = graph.DisjointUnion(gen.RandomTree(20, rng),
				graph.DisjointUnion(gen.Grid(3, 4), gen.CompleteBipartite(2, 5)))
		}
		p := core.Params{R1: int(rawR1%5) + 1, R2: int(rawR2%5) + 2}
		want, err := core.Alg1Pipeline(g, p, core.PipelineOptions{Workers: 2})
		if err != nil {
			return false
		}
		got, err := core.Alg1Huge(g.Freeze(), p, core.HugeOptions{Pool: pool})
		if err != nil {
			return false
		}
		return graph.EqualSets(got.S, want.S) &&
			graph.EqualSets(got.X, want.X) &&
			graph.EqualSets(got.I, want.I) &&
			graph.EqualSets(got.U, want.U) &&
			graph.EqualSets(got.Active, want.Active) &&
			got.MaxComponentDiameter == want.MaxComponentDiameter &&
			got.BruteFallbacks == want.BruteFallbacks &&
			len(got.Components) == len(want.Components)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// The huge driver's output must not depend on the worker count, and the
// nil-pool inline path must match the pooled one.
func TestAlg1HugeWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.DisjointUnion(
		ding.MustGenerate(ding.Config{Kind: ding.StripChain, N: 60, T: 5}, rng),
		ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 60, T: 5}, rng),
	)
	csr := g.Freeze()
	base, err := core.Alg1Huge(csr, core.PracticalParams(), core.HugeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		pool := runner.NewPool(w, 4*w)
		got, err := core.Alg1Huge(csr, core.PracticalParams(), core.HugeOptions{Pool: pool})
		pool.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		equalAlg1Results(t, got, base)
	}
}

// The huge driver must not mutate its input CSR (it may be a read-only
// mmap), and must record the same five stages as the pipeline.
func TestAlg1HugeInputUntouchedAndStages(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 60, T: 5}, rng)
	csr := g.Freeze()
	before := csr.Fingerprint()
	res, err := core.Alg1Huge(csr, core.PracticalParams(), core.HugeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if csr.Fingerprint() != before {
		t.Fatal("Alg1Huge mutated its input CSR")
	}
	wantStages := []string{"TwinReduce", "Cuts", "Partition", "ComponentSolve", "Stitch"}
	if len(res.StageStats) != len(wantStages) {
		t.Fatalf("got %d stages, want %d", len(res.StageStats), len(wantStages))
	}
	for i, s := range res.StageStats {
		if s.Name != wantStages[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Name, wantStages[i])
		}
	}
}
