package core

import (
	"localmds/internal/graph"
)

// Alg2 runs Algorithm 2 (Theorem 4.3): the same cut-based algorithm as
// Algorithm 1, but parameterised by the asymptotic dimension's control
// function f of the input's graph class instead of the K_{2,t} parameter t.
// The approximation ratio is c3.2(d) + c3.3(d) + 1 = ApproxRatio(d); the
// round complexity additionally depends on the largest K_{2,t} minor of the
// input, which the algorithm does not need to know.
func Alg2(g *graph.Graph, f ControlFunction, maxBrute int) (*Alg1Result, error) {
	p := AsdimParams(f)
	p.MaxBruteComponent = maxBrute
	return Alg1(g, p)
}
