package core

import (
	"sort"

	"localmds/internal/cuts"
	"localmds/internal/graph"
	"localmds/internal/mds"
)

// MVCResult reports a vertex-cover algorithm's outcome.
type MVCResult struct {
	// S is the returned vertex cover (original labels).
	S []int
	// X are local 1-cut vertices, C2 the local 2-cut vertices taken
	// (Algorithm 1 variant only).
	X, C2 []int
	// Components brute-forced (Algorithm 1 variant only).
	Components [][]int
	// MaxComponentDiameter as in Alg1Result.
	MaxComponentDiameter int
}

// MVCAlg1 is the Minimum Vertex Cover variant of Algorithm 1 described
// after Theorem 4.3: take all vertices of R1-local minimal 1-cuts, all
// vertices of R2-local minimal 2-cuts (not only interesting ones), and
// cover the remaining uncovered edges per residual component exactly.
// Unlike the MDS variant it needs no twin reduction: covering is monotone
// under vertex removal.
func MVCAlg1(g *graph.Graph, p Params) (*MVCResult, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	x := cuts.LocalOneCuts(g, p.R1)
	var c2 []int
	{
		seen := make(map[int]bool)
		for _, c := range cuts.LocalTwoCuts(g, p.R2) {
			seen[c.U] = true
			seen[c.V] = true
		}
		for v := range seen {
			c2 = append(c2, v)
		}
		sort.Ints(c2)
	}
	s1 := graph.SortedUnion(x, c2)
	res := &MVCResult{X: x, C2: c2}

	inS1 := make([]bool, g.N())
	for _, v := range s1 {
		inS1[v] = true
	}
	// Residual vertices incident to an uncovered edge.
	var rest []int
	for v := 0; v < g.N(); v++ {
		if inS1[v] {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if !inS1[u] {
				rest = append(rest, v)
				break
			}
		}
	}
	sol := append([]int(nil), s1...)
	for _, comp := range g.ComponentsOfSubset(rest) {
		res.Components = append(res.Components, comp)
		sub, idx := g.Induced(comp)
		if d := sub.Diameter(); d > res.MaxComponentDiameter {
			res.MaxComponentDiameter = d
		}
		var chosen []int
		if len(comp) <= p.MaxBruteComponent {
			chosen, err = mds.ExactMVC(sub)
			if err != nil {
				chosen = mds.MatchingVertexCover(sub)
			}
		} else {
			chosen = mds.MatchingVertexCover(sub)
		}
		for _, v := range chosen {
			sol = append(sol, idx[v])
		}
	}
	res.S = graph.Dedup(sol)
	return res, nil
}

// MVCD2 is the Theorem 4.4 vertex-cover variant (the paper states a
// t-approximation in 3 rounds and omits the proof; this is the natural
// analogue): reduce true twins, then take every vertex that is incident to
// an edge and whose closed neighborhood is not contained in a neighbor's
// (γ(v) >= 2 restricted to non-isolated vertices), plus, for covered
// correctness, the smaller-identifier endpoint of any edge both of whose
// endpoints were rejected.
func MVCD2(g *graph.Graph) *MVCResult {
	reduced, active := g.TwinReduction()
	take := make([]bool, reduced.N())
	for v := 0; v < reduced.N(); v++ {
		if reduced.Degree(v) > 0 && gammaAtLeastTwo(reduced, v) {
			take[v] = true
		}
	}
	// Repair pass, radius 1 and simultaneous (hence LOCAL-computable): a
	// rejected vertex joins when it has a rejected neighbor with a larger
	// label, covering every doubly rejected edge by its smaller endpoint.
	repaired := repairUncoveredEdges(reduced, take)
	var sLocal []int
	for v, ok := range repaired {
		if ok {
			sLocal = append(sLocal, v)
		}
	}
	// Map back to g and repair edges involving removed twins the same way
	// (a removed twin x of representative u has N[x] = N[u], so edges at x
	// mirror edges at u).
	cover := mapBack(sLocal, active)
	inCover := make([]bool, g.N())
	for _, v := range cover {
		inCover[v] = true
	}
	inCover = repairUncoveredEdges(g, inCover)
	var s []int
	for v, ok := range inCover {
		if ok {
			s = append(s, v)
		}
	}
	return &MVCResult{S: s}
}

// repairUncoveredEdges returns take plus, for every edge with both
// endpoints rejected, the smaller endpoint. All decisions read the input
// state only, so the pass is a single simultaneous LOCAL round.
func repairUncoveredEdges(g *graph.Graph, take []bool) []bool {
	out := append([]bool(nil), take...)
	for v := 0; v < g.N(); v++ {
		if take[v] {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if !take[u] && v < u {
				out[v] = true
				break
			}
		}
	}
	return out
}
