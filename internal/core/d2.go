package core

import (
	"sort"

	"localmds/internal/graph"
	"localmds/internal/local"
)

// D2Result reports the Theorem 4.4 algorithm's outcome.
type D2Result struct {
	// S is the returned dominating set (original labels): the vertices of
	// the twin-reduced graph whose closed neighborhood cannot be dominated
	// by a single other vertex (γ(v) >= 2).
	S []int
	// Active lists the twin representatives.
	Active []int
}

// D2 runs the centralized reference implementation of the Theorem 4.4
// algorithm: reduce true twins, then return
// D2(Ĝ) = {v : no u != v has N[v] ⊆ N[u]} — a (2t-1)-approximate
// dominating set on K_{2,t}-minor-free graphs.
func D2(g *graph.Graph) *D2Result {
	reduced, active := g.TwinReduction()
	var sLocal []int
	for v := 0; v < reduced.N(); v++ {
		if gammaAtLeastTwo(reduced, v) {
			sLocal = append(sLocal, v)
		}
	}
	return &D2Result{S: mapBack(sLocal, active), Active: append([]int(nil), active...)}
}

// gammaAtLeastTwo reports γ(v) >= 2: no single vertex u != v dominates
// N[v], i.e. there is no u with N[v] ⊆ N[u]. Any such u lies in N(v)
// (v ∈ N[u] forces adjacency), so only neighbors need checking. Isolated
// vertices have γ(v) = ∞ >= 2 and are always taken.
func gammaAtLeastTwo(g *graph.Graph, v int) bool {
	nv := g.ClosedNeighborhood(v)
	for _, u := range g.Neighbors(v) {
		if graph.IsSubset(nv, g.ClosedNeighborhood(u)) {
			return false
		}
	}
	return true
}

// d2Process is the message-passing Theorem 4.4 algorithm. The paper counts
// 3 rounds (know your distance-2 neighborhood, decide); in our KT0 gather
// protocol the same knowledge — adjacency out to distance 3, needed to
// evaluate the twin reduction at the vertex's neighbors — costs 5 rounds
// (identifier exchange and one-hop-per-round record forwarding). The
// decision logic is identical.
type d2Process struct {
	g    local.Gatherer
	info local.NodeInfo
	inS  bool
}

// D2GatherRounds is the number of gather rounds the distributed Theorem 4.4
// implementation uses: adjacency to distance 3.
const D2GatherRounds = 5

// NewD2Process returns the distributed Theorem 4.4 process; outputs are
// booleans (membership in the dominating set).
func NewD2Process() local.Process {
	return &d2Process{}
}

func (p *d2Process) Init(info local.NodeInfo) {
	p.info = info
	p.g.Init(info)
}

func (p *d2Process) Round(round int, inbox []local.Message) ([]local.Message, bool) {
	out := p.g.Step(round, inbox)
	if round < D2GatherRounds {
		return out, false
	}
	p.decide()
	return out, true
}

func (p *d2Process) Output() any { return p.inS }

func (p *d2Process) decide() {
	bg, ids, center := p.g.View().Graph()
	// One-shot twin reduction, evaluated locally: keep the min-identifier
	// representative per true-twin class. Our own status needs adjacency
	// to distance 2; our neighbors' status to distance 3 — both inside
	// the gathered view.
	kept := func(i int) bool {
		ni := bg.ClosedNeighborhood(i)
		for _, j := range bg.Neighbors(i) {
			if ids[j] < ids[i] && graph.EqualSets(ni, bg.ClosedNeighborhood(j)) {
				return false
			}
		}
		return true
	}
	if !kept(center) {
		p.inS = false
		return
	}
	// γ(center) on the reduced graph: reduced closed neighborhood is the
	// kept subset of the real one.
	reducedClosed := func(i int) []int {
		var out []int
		for _, j := range bg.ClosedNeighborhood(i) {
			if kept(j) {
				out = append(out, j)
			}
		}
		sort.Ints(out)
		return out
	}
	nv := reducedClosed(center)
	for _, u := range bg.Neighbors(center) {
		if !kept(u) {
			continue
		}
		if graph.IsSubset(nv, reducedClosed(u)) {
			p.inS = false
			return
		}
	}
	p.inS = true
}

// RunD2 executes the distributed Theorem 4.4 algorithm on g and returns
// the dominating set, run statistics, and any simulator error.
func RunD2(g *graph.Graph, ids []int, engine local.Engine) ([]int, local.Stats, error) {
	nw, err := local.NewNetwork(g, ids)
	if err != nil {
		return nil, local.Stats{}, err
	}
	res, err := nw.Run(engine, func(int) local.Process { return NewD2Process() }, 0)
	if err != nil {
		return nil, local.Stats{}, err
	}
	var s []int
	for v, out := range res.Outputs {
		if in, ok := out.(bool); ok && in {
			s = append(s, v)
		}
	}
	return s, res.Stats, nil
}
