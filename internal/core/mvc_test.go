package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/mds"
)

func TestMVCAlg1IsCover(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", gen.Path(20)},
		{"cycle", gen.Cycle(17)},
		{"cactus", gen.RandomCactus(40, rng)},
		{"outerplanar", gen.MaximalOuterplanar(15, rng)},
		{"cliquependants", gen.CliquePendants(6)},
		{"ding", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 50, T: 5}, rng)},
		{"edgeless", graph.New(4)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := MVCAlg1(tt.g, PracticalParams())
			if err != nil {
				t.Fatalf("MVCAlg1: %v", err)
			}
			if !mds.IsVertexCover(tt.g, res.S) {
				t.Errorf("set %v is not a vertex cover", res.S)
			}
		})
	}
}

func TestMVCAlg1Ratio(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 5; i++ {
		g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 40, T: 5}, rng)
		res, err := MVCAlg1(g, PracticalParams())
		if err != nil {
			t.Fatal(err)
		}
		opt, err := mds.ExactMVC(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(opt) > 0 && float64(len(res.S))/float64(len(opt)) > float64(ApproxRatio(1)) {
			t.Errorf("instance %d: MVC ratio %d/%d exceeds constant bound", i, len(res.S), len(opt))
		}
	}
}

func TestMVCD2IsCover(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", gen.Path(15)},
		{"cycle", gen.Cycle(9)},
		{"triangle", gen.Complete(3)},
		{"complete", gen.Complete(6)},
		{"star", gen.Star(7)},
		{"cactus", gen.RandomCactus(35, rng)},
		{"ding", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 40, T: 4}, rng)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := MVCD2(tt.g)
			if !mds.IsVertexCover(tt.g, res.S) {
				t.Errorf("set %v is not a vertex cover", res.S)
			}
		})
	}
}

func TestMVCD2RatioBound(t *testing.T) {
	// Theorem 4.4 states t-approximation for MVC on K_{2,t}-minor-free
	// graphs; our reading (the paper omits the proof) is measured here
	// with slack 2t against the exact optimum.
	rng := rand.New(rand.NewSource(43))
	tParam := 5
	for i := 0; i < 5; i++ {
		g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 40, T: tParam}, rng)
		res := MVCD2(g)
		opt, err := mds.ExactMVC(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(opt) > 0 && len(res.S) > 2*tParam*len(opt) {
			t.Errorf("instance %d: |cover| = %d vs OPT = %d beyond 2t bound", i, len(res.S), len(opt))
		}
	}
}

// Property: both MVC variants cover arbitrary connected graphs.
func TestMVCVariantsCoverProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(20, 0.12, rng)
		a, err := MVCAlg1(g, PracticalParams())
		if err != nil {
			return false
		}
		b := MVCD2(g)
		return mds.IsVertexCover(g, a.S) && mds.IsVertexCover(g, b.S)
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
