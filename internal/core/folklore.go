package core

import (
	"localmds/internal/graph"
	"localmds/internal/local"
	"localmds/internal/mds"
)

// TreeMDS is the folklore 3-approximation for MDS on trees (Table 1, first
// row): with at least three vertices, take every vertex of degree at least
// two. The centralized reference also handles the degenerate sizes (n <= 2)
// the folklore statement assumes away.
func TreeMDS(g *graph.Graph) []int {
	switch g.N() {
	case 0:
		return nil
	case 1:
		return []int{0}
	}
	var s []int
	for v := 0; v < g.N(); v++ {
		switch {
		case g.Degree(v) >= 2:
			s = append(s, v)
		case g.Degree(v) == 0:
			s = append(s, v) // isolated vertices must self-dominate
		case g.N() == 2 && v == 0:
			s = append(s, v) // a single edge: take the smaller endpoint
		}
	}
	// Two-vertex components (an edge both of whose endpoints have degree
	// one) need one endpoint: take the smaller.
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 1 {
			u := g.Neighbors(v)[0]
			if g.Degree(u) == 1 && v < u && !graph.SortedContains(s, v) {
				s = graph.SortedUnion(s, []int{v})
			}
		}
	}
	return s
}

// treeMDSProcess is the 2-round distributed tree algorithm: round 1
// announce your identifier; round 2 count the announcements (your degree)
// and decide. Matching footnote 3 of the paper, the two rounds come from
// vertices not knowing their degree initially.
type treeMDSProcess struct {
	info local.NodeInfo
	inS  bool
}

// NewTreeMDSProcess returns the folklore tree process (boolean outputs).
func NewTreeMDSProcess() local.Process { return &treeMDSProcess{} }

func (p *treeMDSProcess) Init(info local.NodeInfo) { p.info = info }

func (p *treeMDSProcess) Round(round int, inbox []local.Message) ([]local.Message, bool) {
	if round == 1 {
		if p.info.Ports == 0 {
			p.inS = true // isolated: dominate yourself, done
			return nil, true
		}
		return local.Broadcast(p.info.Ports, p.info.ID), false
	}
	deg := 0
	minNbr := -1
	for _, m := range inbox {
		if id, ok := m.(int); ok {
			deg++
			if minNbr < 0 || id < minNbr {
				minNbr = id
			}
		}
	}
	switch {
	case deg >= 2:
		p.inS = true
	case deg == 1:
		// Leaf: join only if the single neighbor is also a leaf-like
		// two-vertex component; detectable when N == 2.
		p.inS = p.info.N == 2 && p.info.ID < minNbr
	}
	return nil, true
}

func (p *treeMDSProcess) Output() any { return p.inS }

// RunTreeMDS executes the distributed tree algorithm.
func RunTreeMDS(g *graph.Graph, ids []int, engine local.Engine) ([]int, local.Stats, error) {
	return runBooleanProcess(g, ids, engine, func(int) local.Process { return NewTreeMDSProcess() })
}

// TakeAllMDS is the folklore K_{1,t}-minor-free row of Table 1: return
// every vertex. On graphs of maximum degree Δ <= t-1 this is a 0-round
// t-approximation, since any dominating set has size at least n/(Δ+1).
func TakeAllMDS(g *graph.Graph) []int {
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	return all
}

// takeAllProcess outputs true without communicating (the simulator charges
// one silent round for the deciding step).
type takeAllProcess struct{}

// NewTakeAllProcess returns the 0-communication take-all process.
func NewTakeAllProcess() local.Process { return takeAllProcess{} }

func (takeAllProcess) Init(local.NodeInfo) {}
func (takeAllProcess) Round(int, []local.Message) ([]local.Message, bool) {
	return nil, true
}
func (takeAllProcess) Output() any { return true }

// RegularMVC is the 0-round 2-approximation for vertex cover on regular
// graphs (§1): take every non-isolated vertex.
func RegularMVC(g *graph.Graph) []int {
	var s []int
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > 0 {
			s = append(s, v)
		}
	}
	return s
}

// ExactByGathering is the footnote-2 algorithm: on a diameter-D graph,
// gather everything in D+2 rounds and solve exactly and consistently. The
// centralized reference returns the exact MDS; RunExactGather measures the
// rounds.
func ExactByGathering(g *graph.Graph) ([]int, error) {
	return mds.ExactMDS(g)
}

// exactGatherProcess gathers until its view is closed (no vertex with
// unresolved adjacency), then solves MDS on the collected graph.
type exactGatherProcess struct {
	g    local.Gatherer
	info local.NodeInfo
	inS  bool
}

// NewExactGatherProcess returns the whole-graph-gathering exact process.
func NewExactGatherProcess() local.Process { return &exactGatherProcess{} }

func (p *exactGatherProcess) Init(info local.NodeInfo) {
	p.info = info
	p.g.Init(info)
}

func (p *exactGatherProcess) Round(round int, inbox []local.Message) ([]local.Message, bool) {
	out := p.g.Step(round, inbox)
	if round < 3 {
		return out, false
	}
	view := p.g.View()
	// Closed: every identifier referenced in an adjacency list has its own
	// adjacency resolved.
	for _, nbrs := range view.Adj {
		for _, u := range nbrs {
			if _, ok := view.Adj[u]; !ok {
				return out, false
			}
		}
	}
	// One extra quiet round guarantees every other vertex also closed...
	// not needed for correctness: the solve is deterministic on identical
	// views, and all vertices of a connected graph close on the same
	// complete view.
	bg, _, center := view.Graph()
	sol, err := mds.ExactMDS(bg)
	if err != nil {
		// Too large for the exact solver: fall back to greedy, still
		// consistent across vertices.
		sol = mds.GreedyMDS(bg)
	}
	for _, v := range sol {
		if v == center {
			p.inS = true
		}
	}
	return out, true
}

func (p *exactGatherProcess) Output() any { return p.inS }

// RunExactGather executes the footnote-2 exact algorithm.
func RunExactGather(g *graph.Graph, ids []int, engine local.Engine) ([]int, local.Stats, error) {
	return runBooleanProcess(g, ids, engine, func(int) local.Process { return NewExactGatherProcess() })
}

// runBooleanProcess runs a boolean-output protocol and collects the chosen
// vertex set.
func runBooleanProcess(g *graph.Graph, ids []int, engine local.Engine, factory local.Factory) ([]int, local.Stats, error) {
	nw, err := local.NewNetwork(g, ids)
	if err != nil {
		return nil, local.Stats{}, err
	}
	res, err := nw.Run(engine, factory, 0)
	if err != nil {
		return nil, local.Stats{}, err
	}
	var s []int
	for v, out := range res.Outputs {
		if in, ok := out.(bool); ok && in {
			s = append(s, v)
		}
	}
	return s, res.Stats, nil
}
