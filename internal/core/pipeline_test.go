package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/mds"
)

// equalResults fails the test unless pipeline and sequential results agree
// on every algorithmic field (StageStats is pipeline-only by design).
func equalResults(t *testing.T, got, want *Alg1Result) {
	t.Helper()
	if !graph.EqualSets(got.S, want.S) {
		t.Errorf("S = %v, want %v", got.S, want.S)
	}
	if !graph.EqualSets(got.X, want.X) {
		t.Errorf("X = %v, want %v", got.X, want.X)
	}
	if !graph.EqualSets(got.I, want.I) {
		t.Errorf("I = %v, want %v", got.I, want.I)
	}
	if !graph.EqualSets(got.U, want.U) {
		t.Errorf("U = %v, want %v", got.U, want.U)
	}
	if !graph.EqualSets(got.Active, want.Active) {
		t.Errorf("Active = %v, want %v", got.Active, want.Active)
	}
	if len(got.Components) != len(want.Components) {
		t.Fatalf("components = %d, want %d", len(got.Components), len(want.Components))
	}
	for i := range got.Components {
		if !graph.EqualSets(got.Components[i], want.Components[i]) {
			t.Errorf("component %d = %v, want %v", i, got.Components[i], want.Components[i])
		}
	}
	if got.MaxComponentDiameter != want.MaxComponentDiameter {
		t.Errorf("MaxComponentDiameter = %d, want %d", got.MaxComponentDiameter, want.MaxComponentDiameter)
	}
	if got.RoundsEstimate != want.RoundsEstimate {
		t.Errorf("RoundsEstimate = %d, want %d", got.RoundsEstimate, want.RoundsEstimate)
	}
	if got.BruteFallbacks != want.BruteFallbacks {
		t.Errorf("BruteFallbacks = %d, want %d", got.BruteFallbacks, want.BruteFallbacks)
	}
}

// TestPipelineMatchesSequentialOnFamilies pins the pipeline to the legacy
// monolith on every workload family, including multi-component instances
// that exercise the parallel fan-out.
func TestPipelineMatchesSequentialOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	multi := graph.DisjointUnion(
		ding.MustGenerate(ding.Config{Kind: ding.StripChain, N: 60, T: 5}, rng),
		graph.DisjointUnion(gen.Grid(4, 5), gen.RandomCactus(40, rng)),
	)
	tests := []struct {
		name string
		g    *graph.Graph
		p    Params
	}{
		{"path", gen.Path(30), PracticalParams()},
		{"cycle", gen.Cycle(24), Params{R1: 3, R2: 2}},
		{"tree", gen.RandomTree(60, rng), PracticalParams()},
		{"cactus", gen.RandomCactus(50, rng), PracticalParams()},
		{"outerplanar", gen.MaximalOuterplanar(20, rng), PracticalParams()},
		{"cliquependants", gen.CliquePendants(8), PracticalParams()},
		{"grid", gen.Grid(5, 6), PracticalParams()},
		{"ding-mixed", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 70, T: 5}, rng), PracticalParams()},
		{"ding-strips", ding.MustGenerate(ding.Config{Kind: ding.StripChain, N: 80, T: 5}, rng), PracticalParams()},
		{"multi-component", multi, PracticalParams()},
		{"single", gen.Path(1), PracticalParams()},
		{"empty", graph.New(0), PracticalParams()},
		{"k4", gen.Complete(4), PracticalParams()},
		{"greedy-fallback", ding.MustGenerate(ding.Config{Kind: ding.StripChain, N: 80, T: 5}, rng),
			Params{R1: 4, R2: 4, MaxBruteComponent: 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			want, err := Alg1Sequential(tt.g, tt.p)
			if err != nil {
				t.Fatalf("Alg1Sequential: %v", err)
			}
			got, err := Alg1Pipeline(tt.g, tt.p, PipelineOptions{Workers: 4})
			if err != nil {
				t.Fatalf("Alg1Pipeline: %v", err)
			}
			equalResults(t, got, want)
			if tt.g.N() > 0 && !mds.IsDominatingSet(tt.g, got.S) {
				t.Fatal("pipeline result is not dominating")
			}
		})
	}
}

// Property: on randomized connected GNP and cactus instances the pipeline
// and the sequential reference agree on all fields, for random radii. CI
// runs this under -race, which also guards the component fan-out against
// data races.
func TestPipelineMatchesSequentialProperty(t *testing.T) {
	f := func(seed int64, rawR1, rawR2, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		switch pick % 3 {
		case 0:
			g = gen.GNPConnected(24, 0.1, rng)
		case 1:
			g = gen.RandomCactus(30, rng)
		default:
			g = graph.DisjointUnion(gen.GNPConnected(14, 0.15, rng), gen.RandomCactus(16, rng))
		}
		p := Params{R1: int(rawR1%5) + 1, R2: int(rawR2%5) + 2}
		want, err := Alg1Sequential(g, p)
		if err != nil {
			return false
		}
		got, err := Alg1Pipeline(g, p, PipelineOptions{Workers: 3})
		if err != nil {
			return false
		}
		return graph.EqualSets(got.S, want.S) &&
			graph.EqualSets(got.X, want.X) &&
			graph.EqualSets(got.I, want.I) &&
			graph.EqualSets(got.U, want.U) &&
			got.MaxComponentDiameter == want.MaxComponentDiameter &&
			got.BruteFallbacks == want.BruteFallbacks &&
			len(got.Components) == len(want.Components)
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// The pipeline output must not depend on the worker count.
func TestPipelineWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.DisjointUnion(
		ding.MustGenerate(ding.Config{Kind: ding.StripChain, N: 60, T: 5}, rng),
		ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 60, T: 5}, rng),
	)
	base, err := Alg1Pipeline(g, PracticalParams(), PipelineOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		got, err := Alg1Pipeline(g, PracticalParams(), PipelineOptions{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		equalResults(t, got, base)
	}
}

// StageStats must record the five pipeline stages in order with sane
// contents, and render as a table.
func TestPipelineStageStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 60, T: 5}, rng)
	res, err := Alg1(g, PracticalParams())
	if err != nil {
		t.Fatal(err)
	}
	wantStages := []string{"TwinReduce", "Cuts", "Partition", "ComponentSolve", "Stitch"}
	if len(res.StageStats) != len(wantStages) {
		t.Fatalf("got %d stages, want %d", len(res.StageStats), len(wantStages))
	}
	for i, s := range res.StageStats {
		if s.Name != wantStages[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Name, wantStages[i])
		}
		if s.Wall < 0 {
			t.Errorf("stage %q has negative wall time", s.Name)
		}
		if s.Unit == "" {
			t.Errorf("stage %q has no unit", s.Name)
		}
	}
	if res.StageStats[0].Items != len(res.Active) {
		t.Errorf("TwinReduce items = %d, want %d", res.StageStats[0].Items, len(res.Active))
	}
	if res.StageStats[4].Items != len(res.S) {
		t.Errorf("Stitch items = %d, want |S| = %d", res.StageStats[4].Items, len(res.S))
	}
	if res.StageStats.TotalWall() <= 0 {
		t.Error("total wall time not positive")
	}
	rendered := res.StageStats.Render()
	for _, name := range wantStages {
		if !strings.Contains(rendered, name) {
			t.Errorf("rendered table missing stage %q", name)
		}
	}
	// The sequential reference must leave StageStats empty.
	seq, err := Alg1Sequential(g, PracticalParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.StageStats) != 0 {
		t.Errorf("sequential path recorded %d stages", len(seq.StageStats))
	}
}
