package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/mds"
)

func TestAlg1IsDominatingOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", gen.Path(30)},
		{"cycle", gen.Cycle(24)},
		{"tree", gen.RandomTree(60, rng)},
		{"cactus", gen.RandomCactus(50, rng)},
		{"outerplanar", gen.MaximalOuterplanar(20, rng)},
		{"cliquependants", gen.CliquePendants(8)},
		{"grid", gen.Grid(5, 6)},
		{"ding-mixed", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 70, T: 5}, rng)},
		{"ding-strips", ding.MustGenerate(ding.Config{Kind: ding.StripChain, N: 60, T: 5}, rng)},
		{"single", gen.Path(1)},
		{"k4", gen.Complete(4)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := Alg1(tt.g, PracticalParams())
			if err != nil {
				t.Fatalf("Alg1: %v", err)
			}
			if !mds.IsDominatingSet(tt.g, res.S) {
				t.Fatalf("returned set %v is not dominating", res.S)
			}
		})
	}
}

func TestAlg1RatioOnK2tFreeInstances(t *testing.T) {
	// On the paper's class, the practical radii should already achieve a
	// small constant ratio — far below the proven 50.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 6; i++ {
		g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 60, T: 5}, rng)
		res, err := Alg1(g, PracticalParams())
		if err != nil {
			t.Fatalf("Alg1: %v", err)
		}
		opt, err := mds.ExactMDS(g)
		if err != nil {
			t.Fatalf("ExactMDS: %v", err)
		}
		ratio := float64(len(res.S)) / float64(len(opt))
		if ratio > float64(ApproxRatio(1)) {
			t.Errorf("instance %d: ratio %.2f exceeds the proven bound 50", i, ratio)
		}
		if ratio > 8 {
			t.Errorf("instance %d: ratio %.2f unexpectedly large for practical params", i, ratio)
		}
	}
}

func TestAlg1EmptyAndErrors(t *testing.T) {
	res, err := Alg1(graph.New(0), PracticalParams())
	if err != nil || len(res.S) != 0 {
		t.Errorf("empty graph: %v, %v", res.S, err)
	}
	if _, err := Alg1(gen.Path(3), Params{R1: 0, R2: 4}); err == nil {
		t.Error("R1 = 0 accepted")
	}
	if _, err := Alg1(gen.Path(3), Params{R1: 2, R2: 1}); err == nil {
		t.Error("R2 = 1 accepted")
	}
}

func TestAlg1TwinReductionUsed(t *testing.T) {
	// CliquePendants has many twins among pendants? No — pendants have
	// distinct neighborhoods. Use a graph with true twins: K4 plus a
	// pendant. K4's vertices 1,2,3 are mutual twins (all adjacent to
	// everything); the reduction must shrink the instance.
	g := gen.Complete(4)
	p := g.AddVertex()
	g.AddEdge(0, p)
	res, err := Alg1(g, PracticalParams())
	if err != nil {
		t.Fatalf("Alg1: %v", err)
	}
	if len(res.Active) >= g.N() {
		t.Errorf("twin reduction kept %d of %d vertices", len(res.Active), g.N())
	}
	if !mds.IsDominatingSet(g, res.S) {
		t.Fatal("not dominating after twin reduction")
	}
}

func TestAlg1LongCycleTakesLocalCuts(t *testing.T) {
	// On a long cycle every vertex is a local 1-cut (§4), so S = V and the
	// brute-force phase is empty.
	g := gen.Cycle(40)
	res, err := Alg1(g, Params{R1: 3, R2: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.X) != 40 {
		t.Errorf("|X| = %d, want 40", len(res.X))
	}
	if len(res.Components) != 0 {
		t.Errorf("expected no residual components, got %d", len(res.Components))
	}
}

func TestAlg1PaperParamsSmallGraph(t *testing.T) {
	// Paper radii are astronomically large; on a small graph the balls
	// saturate and the algorithm still returns a valid (here: exact,
	// because no local cuts survive saturated balls... the graph is
	// 3-connected-ish) dominating set.
	g := gen.Complete(6)
	res, err := Alg1(g, PaperParams(3))
	if err != nil {
		t.Fatal(err)
	}
	if !mds.IsDominatingSet(g, res.S) {
		t.Fatal("not dominating")
	}
	if len(res.S) != 1 {
		t.Errorf("K6: |S| = %d, want 1", len(res.S))
	}
}

func TestAlg1ComponentDiameterBounded(t *testing.T) {
	// Lemma 4.2's executable form: on strip chains, residual components
	// after the cut phase have bounded diameter even as n grows.
	rng := rand.New(rand.NewSource(5))
	maxDiams := make([]int, 0, 3)
	for _, n := range []int{60, 120, 240} {
		g := ding.MustGenerate(ding.Config{Kind: ding.StripChain, N: n, T: 5}, rng)
		res, err := Alg1(g, PracticalParams())
		if err != nil {
			t.Fatal(err)
		}
		maxDiams = append(maxDiams, res.MaxComponentDiameter)
	}
	for i, d := range maxDiams {
		if d > 24 {
			t.Errorf("size step %d: residual component diameter %d too large", i, d)
		}
	}
}

func TestAlg1FallbackCounting(t *testing.T) {
	// Forcing a tiny brute-force cap exercises the greedy fallback; the
	// result must remain dominating.
	rng := rand.New(rand.NewSource(11))
	g := ding.MustGenerate(ding.Config{Kind: ding.StripChain, N: 80, T: 5}, rng)
	p := PracticalParams()
	p.MaxBruteComponent = 2
	res, err := Alg1(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if !mds.IsDominatingSet(g, res.S) {
		t.Fatal("not dominating with greedy fallback")
	}
}

// Property: Algorithm 1 returns a dominating set for arbitrary graphs and
// arbitrary (valid) radii — validity is radius- and class-independent.
func TestAlg1AlwaysDominatesProperty(t *testing.T) {
	f := func(seed int64, rawR1, rawR2 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(24, 0.1, rng)
		p := Params{R1: int(rawR1%5) + 1, R2: int(rawR2%5) + 2}
		res, err := Alg1(g, p)
		if err != nil {
			return false
		}
		return mds.IsDominatingSet(g, res.S)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: X, I, U are pairwise disjoint and all within the active set.
func TestAlg1PartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomCactus(30, rng)
		res, err := Alg1(g, PracticalParams())
		if err != nil {
			return false
		}
		if len(graph.SortedIntersect(res.X, res.U)) != 0 {
			return false
		}
		if len(graph.SortedIntersect(res.I, res.U)) != 0 {
			return false
		}
		for _, set := range [][]int{res.X, res.I, res.U} {
			if !graph.IsSubset(set, res.Active) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAlg2MatchesAlg1WithPaperRadii(t *testing.T) {
	g := gen.Cycle(12)
	f := K2tControlFunction(3)
	a, err := Alg2(g, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Alg1(g, PaperParams(3))
	if err != nil {
		t.Fatal(err)
	}
	if !graph.EqualSets(a.S, b.S) {
		t.Errorf("Alg2 = %v, Alg1(paper) = %v", a.S, b.S)
	}
}

func TestParamsAccessors(t *testing.T) {
	p := PaperParams(3)
	if p.R1 != 43*3+2 {
		t.Errorf("R1 = %d, want %d", p.R1, 43*3+2)
	}
	if p.R2 != 73*3+4 {
		t.Errorf("R2 = %d, want %d", p.R2, 73*3+4)
	}
	// The paper states 50 but its own constants sum to 6 + 44 + 1 = 51;
	// see the ApproxRatio doc comment.
	if ApproxRatio(1) != 51 {
		t.Errorf("ApproxRatio(1) = %d, want 51", ApproxRatio(1))
	}
	if C32(1) != 6 || C33(1) != 44 {
		t.Errorf("C32/C33 = %d/%d, want 6/44", C32(1), C33(1))
	}
	pr := PracticalParams()
	if g := pr.GatherRadius(); g != 2*pr.R2+5 {
		t.Errorf("GatherRadius = %d, want %d", g, 2*pr.R2+5)
	}
}
