// Package core implements the paper's distributed algorithms: Algorithm 1
// (Theorem 4.1, the O_t(1)-round 50-approximation for MDS on
// K_{2,t}-minor-free graphs), Algorithm 2 (Theorem 4.3, parameterised by
// asymptotic dimension and control function), the 3-round
// (2t-1)-approximation of Theorem 4.4, their Minimum Vertex Cover variants,
// the folklore baselines of Table 1, and the Lemma 5.17/5.18 minor
// construction. Each algorithm has a centralized reference implementation
// (used by the experiment harness at scale) and, where the paper claims a
// round bound, a message-passing implementation for the internal/local
// simulator whose outputs are tested to coincide with the reference.
package core

import "fmt"

// ControlFunction is the control function f of an asymptotic-dimension
// cover (§3): r-components of each cover class are f(r)-bounded.
type ControlFunction func(r int) int

// K2tControlFunction returns the control function f(r) = (5r+18)t that [3,
// Lemma 7.1] provides for the class of K_{2,t}-minor-free graphs (asymptotic
// dimension 1), as cited right after Lemma 4.2.
func K2tControlFunction(t int) ControlFunction {
	return func(r int) int { return (5*r + 18) * t }
}

// Analysis constants from Lemmas 3.2 and 3.3. The paper did not optimize
// them: c3.2(d) = 3(d+1) and c3.3(d) = 22(d+1), giving the headline ratio
// c3.2(1) + c3.3(1) + 1 = 50 for asymptotic dimension 1.
func C32(d int) int { return 3 * (d + 1) }

// C33 is the Lemma 3.3 constant 22(d+1).
func C33(d int) int { return 22 * (d + 1) }

// ApproxRatio is the Theorem 4.1/4.3 approximation ratio
// c3.2(d) + c3.3(d) + 1. Note a paper-internal off-by-one: Theorem 4.1
// states "c3.2(1) + c3.3(1) + 1 = 50", but with the proofs' constants
// (c3.2(1) = 6, c3.3(1) = 44) the sum is 51. We keep the formula; the
// headline constant is 50 and either reading is a constant-factor bound.
func ApproxRatio(d int) int { return C32(d) + C33(d) + 1 }

// M32 is the local 1-cut radius m3.2 = f(5) + 2 from Lemma 3.2.
func M32(f ControlFunction) int { return f(5) + 2 }

// M33 is the local 2-cut radius m3.3 = f(11) + 4 from Lemma 3.3. (The
// paper uses f(11)+4 in the statement and f(11)+5 inside Claim 5.13; we
// take the statement's value — the algorithm is valid for any radius.)
func M33(f ControlFunction) int { return f(11) + 4 }

// Params are the radii driving Algorithm 1. The returned set is a valid
// dominating set for every choice; the radii trade the approximation
// constant (larger radii => fewer local cuts => closer to the analysis)
// against locality (larger radii => more rounds and larger residual
// components to brute-force).
type Params struct {
	// R1 is the local 1-cut radius (paper: m3.2(C_t)).
	R1 int `json:"r1"`
	// R2 is the local 2-cut / interesting-vertex radius (paper:
	// m3.3(C_t)).
	R2 int `json:"r2"`
	// MaxBruteComponent caps the exact per-component solve; larger
	// residual components fall back to the greedy solver (reported in the
	// result). Zero selects DefaultMaxBruteComponent.
	MaxBruteComponent int `json:"max_brute_component,omitempty"`
}

// DefaultMaxBruteComponent bounds the exact brute-force component size
// (Algorithm 1 step 4, the pipeline's ComponentSolve stage). The bitset
// engine in internal/mds solves the workloads' structured residual
// components of this size in milliseconds — the old adjacency-list
// search forced the previous default of 64 — so more components get
// their true optimum instead of the greedy fallback. The engine is still
// exponential in the worst case (a grid-like 121-vertex residual costs
// ~0.7M nodes ≈ 2s; adversarial inputs are unbounded), which is why
// every brute call site pairs the cap with BruteNodeBudget.
const DefaultMaxBruteComponent = 128

// BruteNodeBudget bounds each per-component exact solve in search nodes;
// on exhaustion the component falls back to the greedy solver (counted
// in BruteFallbacks) instead of stalling. The budget admits every
// structured residual the workloads produce (a full 11x11-grid residual,
// the worst observed, needs ~0.7M nodes) while capping adversarial
// user-supplied components — the mdsd serving path brute-forces whatever
// arrives in a request — at a few seconds. Node counts are
// input-deterministic, so the fallback decision is too, keeping pipeline
// and sequential Alg1 output-identical.
const BruteNodeBudget = 1_500_000

// PaperParams returns the radii of Theorem 4.1 for K_{2,t}-minor-free
// graphs: R1 = m3.2 = 43t+2 and R2 = m3.3 = 73t+4. These are far larger
// than the diameter of any simulatable instance (by design the analysis is
// not tight); use PracticalParams for experiments.
func PaperParams(t int) Params {
	f := K2tControlFunction(t)
	return Params{R1: M32(f), R2: M33(f)}
}

// AsdimParams returns the Algorithm 2 radii for a class of asymptotic
// dimension d with control function f (Theorem 4.3). The dimension enters
// the analysis constants, not the radii.
func AsdimParams(f ControlFunction) Params {
	return Params{R1: M32(f), R2: M33(f)}
}

// PracticalParams returns small radii suitable for measurement: local cuts
// are detected in radius-4 balls. Empirically this already yields ratios
// far below 50 on the paper's classes (see EXPERIMENTS.md).
func PracticalParams() Params {
	return Params{R1: 4, R2: 4}
}

// Normalized returns p with defaults applied, or an error for bad radii.
// The service layer canonicalizes request params through it so that cache
// keys treat an explicit default and an omitted field identically.
func (p Params) Normalized() (Params, error) { return p.normalized() }

// normalized returns p with defaults applied, or an error for bad radii.
func (p Params) normalized() (Params, error) {
	if p.R1 < 1 || p.R2 < 2 {
		return p, fmt.Errorf("core: invalid radii R1=%d (need >= 1), R2=%d (need >= 2)", p.R1, p.R2)
	}
	if p.MaxBruteComponent <= 0 {
		p.MaxBruteComponent = DefaultMaxBruteComponent
	}
	return p, nil
}

// GatherRadius is the adjacency-knowledge radius Algorithm 1's decision
// phase needs: local 1-cuts are decided in N^R1[v], interesting pairs
// {u, v} in N^R2[{u,v}] ⊆ N^{2R2}[v], twin reduction adds 2, and deciding
// the participant status (not in X ∪ I ∪ U) of the vertex's own neighbors —
// needed to flood residual components — adds 3 more. The distributed
// implementation spends GatherRadius()+2 rounds collecting it (the gather
// protocol learns adjacency to distance r in r+2 rounds).
func (p Params) GatherRadius() int {
	r := p.R1
	if 2*p.R2 > r {
		r = 2 * p.R2
	}
	return r + 5
}
