package core

import (
	"fmt"
	"sort"

	"localmds/internal/graph"
	"localmds/internal/mds"
)

// MinorBoundResult carries the Lemma 5.17/5.18 construction: a bipartite
// minor H = (A ⊔ B) of G[N²[S]] with B contracted around a dominating set,
// A edgeless with minimum degree 2, and |A| >= |D2 ∩ S \ D| / 2. On
// K_{2,t}-minor-free graphs Lemma 5.18 forces |A| <= (t-1)|B|, which is the
// engine of Theorem 4.4's (2t-1) ratio; Figures 1 and 2 of the paper
// illustrate exactly this construction.
type MinorBoundResult struct {
	// H is the constructed minor.
	H *graph.Graph
	// A and B index H's two sides (H labels).
	A, B []int
	// D is the dominating set the branch sets were grown around (g
	// labels).
	D []int
	// D2Count is |D2(g)| — the size of the Theorem 4.4 solution before
	// twin considerations.
	D2Count int
}

// BuildMinorBound runs the Lemma 5.17 construction on g (taken as its own
// N²[S] with S = V): it contracts a branch set around every vertex of a
// minimum dominating set D (side B), keeps the vertices of D2 \ D whose
// degree-2 witness survives as side A, removes A-A edges by the red-edge
// contraction of Figure 1, and deletes the remaining A-A edges.
func BuildMinorBound(g *graph.Graph) (*MinorBoundResult, error) {
	d, err := mds.ExactMDS(g)
	if err != nil {
		return nil, fmt.Errorf("core: minor bound needs OPT: %w", err)
	}
	inD := make([]bool, g.N())
	for _, v := range d {
		inD[v] = true
	}
	var d2 []int
	inD2 := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		if gammaAtLeastTwo(g, v) {
			d2 = append(d2, v)
			inD2[v] = true
		}
	}

	// Branch sets b_i: N[d_i] minus (D2 \ D) minus vertices already used
	// minus later dominators (Lemma 5.17's definition).
	used := make([]bool, g.N())
	branchOf := make([]int, g.N()) // vertex -> branch index, or -1
	for i := range branchOf {
		branchOf[i] = -1
	}
	for i, di := range d {
		for _, v := range g.Ball(di, 1) {
			if used[v] {
				continue
			}
			if inD2[v] && !inD[v] {
				continue
			}
			if inD[v] && v != di {
				continue
			}
			used[v] = true
			branchOf[v] = i
		}
	}

	// Side A: vertices of (D2 ∩ S) \ D with two disjoint short paths to
	// distinct dominators. Per Lemma 5.17 every such vertex has degree >=
	// 2 toward B after contraction.
	var aVerts []int
	for v := 0; v < g.N(); v++ {
		if inD2[v] && !inD[v] && branchOf[v] < 0 {
			aVerts = append(aVerts, v)
		}
	}

	// Contract: H vertices = A ∪ B. Edges: between A vertex a and branch i
	// iff some vertex of branch i is adjacent to a. A-A adjacency handled
	// below (isolated A vertices keep their >= 2 branch neighbors; the
	// dominated-set trick of Lemma 5.16/5.17 contracts half of J into B).
	k := len(d)
	aIndex := make(map[int]int, len(aVerts))
	for i, v := range aVerts {
		aIndex[v] = i
	}
	h := graph.New(k + len(aVerts))
	addAB := func(aPos, branch int) {
		u, w := k+aPos, branch
		if !h.HasEdge(u, w) {
			h.AddEdge(u, w)
		}
	}
	// A-A edges of the intermediate minor (before the deletion step).
	type aPair struct{ x, y int }
	var aaEdges []aPair
	g.VisitEdges(func(u, v int) {
		ai, aOK := aIndex[u]
		bj := branchOf[v]
		switch {
		case aOK && bj >= 0:
			addAB(ai, bj)
		case branchOf[u] >= 0 && aIndex2(aIndex, v) >= 0:
			addAB(aIndex[v], branchOf[u])
		case branchOf[u] >= 0 && bj >= 0 && branchOf[u] != bj:
			bi, bj2 := branchOf[u], bj
			if !h.HasEdge(bi, bj2) {
				h.AddEdge(bi, bj2)
			}
		case aOK && aIndex2(aIndex, v) >= 0:
			aaEdges = append(aaEdges, aPair{x: ai, y: aIndex[v]})
		}
	})

	// Lemma 5.17's final trick: J = non-isolated vertices of H[A]; a
	// dominating set D' of H[A][J] with |D'| <= |J|/2 (Ore) is contracted
	// into adjacent branches, the rest keep two B neighbors after the
	// contraction; then all A-A edges are deleted. We realize the effect
	// by dropping D' from A and keeping the remaining vertices with the
	// B-adjacency they already have (every vertex of J \ D' is adjacent to
	// two branches: its own dominators plus the contracted neighbor's
	// branch). For measurement purposes we conservatively drop ALL of J's
	// smaller half via a greedy matching: each matched pair loses one
	// vertex.
	drop := make(map[int]bool)
	matched := make(map[int]bool)
	for _, e := range aaEdges {
		if !matched[e.x] && !matched[e.y] {
			matched[e.x], matched[e.y] = true, true
			drop[e.x] = true // contract the smaller-indexed endpoint away
		}
	}
	// Rebuild H without dropped A vertices and without A-A edges.
	var keep []int
	for i := 0; i < k; i++ {
		keep = append(keep, i)
	}
	var aFinal []int
	for i := range aVerts {
		if !drop[i] {
			keep = append(keep, k+i)
			aFinal = append(aFinal, k+i)
		}
	}
	hh, idx := h.Induced(keep)
	// Re-express indices after induction.
	oldToNew := make(map[int]int, len(idx))
	for newI, oldI := range idx {
		oldToNew[oldI] = newI
	}
	var aSide, bSide []int
	for i := 0; i < k; i++ {
		bSide = append(bSide, oldToNew[i])
	}
	for _, old := range aFinal {
		aSide = append(aSide, oldToNew[old])
	}
	// Drop A vertices with degree < 2 (their witness paths were consumed
	// by other branch sets); Lemma 5.17 guarantees at least half survive
	// in the paper's careful construction — the experiments measure the
	// realized fraction.
	var aKeep []int
	var finalKeep []int
	finalKeep = append(finalKeep, bSide...)
	for _, a := range aSide {
		if hh.Degree(a) >= 2 {
			aKeep = append(aKeep, a)
			finalKeep = append(finalKeep, a)
		}
	}
	sort.Ints(finalKeep)
	hFinal, idx2 := hh.Induced(finalKeep)
	oldToNew2 := make(map[int]int, len(idx2))
	for newI, oldI := range idx2 {
		oldToNew2[oldI] = newI
	}
	res := &MinorBoundResult{H: hFinal, D: d, D2Count: len(d2)}
	for _, b := range bSide {
		res.B = append(res.B, oldToNew2[b])
	}
	for _, a := range aKeep {
		res.A = append(res.A, oldToNew2[a])
	}
	// Delete any remaining A-A edges (the construction's last step).
	for i := 0; i < len(res.A); i++ {
		for j := i + 1; j < len(res.A); j++ {
			res.H.RemoveEdge(res.A[i], res.A[j])
		}
	}
	// Recheck degrees after deletion.
	var aFinal2 []int
	for _, a := range res.A {
		if res.H.Degree(a) >= 2 {
			aFinal2 = append(aFinal2, a)
		}
	}
	res.A = aFinal2
	return res, nil
}

func aIndex2(m map[int]int, v int) int {
	if i, ok := m[v]; ok {
		return i
	}
	return -1
}

// VerifyMinorBound checks the Lemma 5.18 hypothesis and conclusion on the
// constructed H for the given t: H[A] edgeless, every A vertex of degree
// >= 2, and |A| <= (t-1)|B| (the conclusion holds whenever H is
// K_{2,t}-minor-free, which it inherits from g).
func VerifyMinorBound(res *MinorBoundResult, t int) error {
	for i := 0; i < len(res.A); i++ {
		for j := i + 1; j < len(res.A); j++ {
			if res.H.HasEdge(res.A[i], res.A[j]) {
				return fmt.Errorf("core: A-A edge {%d,%d} present", res.A[i], res.A[j])
			}
		}
	}
	for _, a := range res.A {
		if res.H.Degree(a) < 2 {
			return fmt.Errorf("core: A vertex %d has degree %d < 2", a, res.H.Degree(a))
		}
	}
	if len(res.B) > 0 && len(res.A) > (t-1)*len(res.B) {
		return fmt.Errorf("core: |A| = %d exceeds (t-1)|B| = %d", len(res.A), (t-1)*len(res.B))
	}
	return nil
}
