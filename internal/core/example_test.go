package core_test

import (
	"fmt"

	"localmds/internal/core"
	"localmds/internal/gen"
	"localmds/internal/local"
	"localmds/internal/mds"
)

// ExampleAlg1 runs Algorithm 1 on a long cycle: every vertex is a local
// 1-cut (§4 of the paper), so the cut phase alone dominates.
func ExampleAlg1() {
	g := gen.Cycle(30)
	res, err := core.Alg1(g, core.Params{R1: 3, R2: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("dominating:", mds.IsDominatingSet(g, res.S))
	fmt.Println("local 1-cuts:", len(res.X))
	fmt.Println("residual components:", len(res.Components))
	// Output:
	// dominating: true
	// local 1-cuts: 30
	// residual components: 0
}

// ExampleD2 shows the Theorem 4.4 set on a star: only the center has
// γ(v) >= 2.
func ExampleD2() {
	res := core.D2(gen.Star(6))
	fmt.Println(res.S)
	// Output:
	// [0]
}

// ExampleRunD2 runs the 3-round algorithm on the LOCAL simulator.
func ExampleRunD2() {
	g := gen.Path(9)
	s, stats, err := core.RunD2(g, nil, local.Sequential)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("set:", s)
	fmt.Println("rounds:", stats.Rounds)
	// Output:
	// set: [1 2 3 4 5 6 7]
	// rounds: 5
}

// ExamplePaperParams shows the Theorem 4.1 radii growing linearly in t.
func ExamplePaperParams() {
	for _, t := range []int{3, 4, 5} {
		p := core.PaperParams(t)
		fmt.Printf("t=%d: m3.2=%d m3.3=%d\n", t, p.R1, p.R2)
	}
	// Output:
	// t=3: m3.2=131 m3.3=223
	// t=4: m3.2=174 m3.3=296
	// t=5: m3.2=217 m3.3=369
}
