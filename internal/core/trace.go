package core

import (
	"fmt"

	"localmds/internal/obs"
)

// TraceHooks receives span lifecycle callbacks from the staged drivers
// (Alg1Pipeline, Alg1Huge). A nil hooks field disables tracing with zero
// overhead — the drivers only ever test the interface against nil, so
// deterministic output and the committed BENCH numbers are untouched.
//
// Implementations must be safe for concurrent ComponentStart calls: the
// component solves fan out across workers.
type TraceHooks interface {
	// StageStart marks the beginning of the named pipeline stage. The
	// returned func is called exactly once when the stage completes, with
	// the recorded diagnostics.
	StageStart(name string) func(StageStat)
	// ComponentStart marks the beginning of one residual component's
	// solve (component index and vertex count). The returned func is
	// called when the component completes: chosen is the number of
	// picked vertices, fallback whether the greedy path ran.
	ComponentStart(index, vertices int) func(chosen int, fallback bool)
}

// spanHooks adapts an obs span tree to TraceHooks: each stage becomes a
// child span of the driver span, and each component solve a child of its
// ComponentSolve stage span.
type spanHooks struct {
	parent *obs.Span
	stage  *obs.Span // current stage span; guarded by stage sequencing
}

// SpanHooks returns TraceHooks that record each pipeline stage — and
// each component solve under its ComponentSolve stage — as child spans
// of parent. A nil parent returns nil hooks (tracing off), so callers
// can pass the result straight into PipelineOptions.
func SpanHooks(parent *obs.Span) TraceHooks {
	if parent == nil {
		return nil
	}
	return &spanHooks{parent: parent}
}

func (h *spanHooks) StageStart(name string) func(StageStat) {
	sp := h.parent.StartChild(name)
	// Stages run sequentially in the driver goroutine, so publishing the
	// current stage span for ComponentStart needs no lock.
	h.stage = sp
	return func(stat StageStat) {
		sp.SetAttr("items", fmt.Sprintf("%d %s", stat.Items, stat.Unit))
		sp.SetAttr("allocs", stat.Allocs)
		sp.End()
	}
}

func (h *spanHooks) ComponentStart(index, vertices int) func(chosen int, fallback bool) {
	parent := h.stage
	if parent == nil {
		parent = h.parent
	}
	sp := parent.StartChild(fmt.Sprintf("component %d", index))
	sp.SetAttr("vertices", vertices)
	return func(chosen int, fallback bool) {
		sp.SetAttr("chosen", chosen)
		if fallback {
			sp.SetAttr("fallback", "greedy")
		}
		sp.End()
	}
}
