package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/local"
	"localmds/internal/mds"
)

func TestD2IsDominating(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", gen.Path(20)},
		{"cycle", gen.Cycle(15)},
		{"tree", gen.RandomTree(40, rng)},
		{"cactus", gen.RandomCactus(40, rng)},
		{"cliquependants", gen.CliquePendants(7)},
		{"complete", gen.Complete(6)},
		{"star", gen.Star(9)},
		{"ding", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 50, T: 4}, rng)},
		{"single", gen.Path(1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := D2(tt.g)
			if !mds.IsDominatingSet(tt.g, res.S) {
				t.Errorf("D2 set %v is not dominating", res.S)
			}
		})
	}
}

func TestD2RatioBound(t *testing.T) {
	// Theorem 4.4: (2t-1)-approximation on K_{2,t}-minor-free graphs.
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 6; i++ {
		tParam := 5
		g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 50, T: tParam}, rng)
		res := D2(g)
		opt, err := mds.ExactMDS(g)
		if err != nil {
			t.Fatalf("ExactMDS: %v", err)
		}
		bound := (2*tParam - 1) * len(opt)
		if len(res.S) > bound {
			t.Errorf("instance %d: |D2| = %d exceeds (2t-1) OPT = %d", i, len(res.S), bound)
		}
	}
}

func TestD2CliquePendants(t *testing.T) {
	// MDS = 1 (vertex 0). D2 after twin reduction must stay within the
	// (2t-1) bound for the appropriate t. CliquePendants(q) contains
	// K_{2,q-2}... as a K_{2,t}-minor-free statement we simply check D2
	// returns a valid small set.
	g := gen.CliquePendants(6)
	res := D2(g)
	if !mds.IsDominatingSet(g, res.S) {
		t.Fatal("not dominating")
	}
}

func TestD2StarAndComplete(t *testing.T) {
	// Star: the center dominates; leaves have N[leaf] ⊆ N[center], so
	// D2 = {center}: exactly optimal.
	res := D2(gen.Star(8))
	if len(res.S) != 1 || res.S[0] != 0 {
		t.Errorf("star D2 = %v, want [0]", res.S)
	}
	// Complete graph: collapses to one vertex by twin reduction.
	res = D2(gen.Complete(7))
	if len(res.S) != 1 {
		t.Errorf("K7 D2 = %v, want singleton", res.S)
	}
}

func TestRunD2MatchesCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", gen.Path(12)},
		{"cycle", gen.Cycle(10)},
		{"cactus", gen.RandomCactus(25, rng)},
		{"cliquependants", gen.CliquePendants(5)},
		{"complete", gen.Complete(5)},
		{"ding", ding.MustGenerate(ding.Config{Kind: ding.BlockForest, N: 30, T: 4}, rng)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			want := D2(tt.g)
			got, stats, err := RunD2(tt.g, nil, local.Sequential)
			if err != nil {
				t.Fatalf("RunD2: %v", err)
			}
			if !graph.EqualSets(got, want.S) {
				t.Errorf("process = %v, centralized = %v", got, want.S)
			}
			if stats.Rounds != D2GatherRounds {
				t.Errorf("rounds = %d, want %d", stats.Rounds, D2GatherRounds)
			}
		})
	}
}

func TestRunD2EnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 40, T: 5}, rng)
	a, _, err := RunD2(g, nil, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunD2(g, nil, local.Parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.EqualSets(a, b) {
		t.Errorf("engines disagree")
	}
}

// Property: D2 always dominates, on arbitrary connected graphs (Lemma 5.19
// does not need minor-freeness).
func TestD2AlwaysDominatesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(25, 0.12, rng)
		return mds.IsDominatingSet(g, D2(g).S)
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the distributed and centralized versions agree on random
// cacti (identity identifiers).
func TestRunD2AgreesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomCactus(20, rng)
		want := D2(g)
		got, _, err := RunD2(g, nil, local.Sequential)
		if err != nil {
			return false
		}
		return graph.EqualSets(got, want.S)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
