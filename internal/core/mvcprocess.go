package core

import (
	"sort"

	"localmds/internal/cuts"
	"localmds/internal/graph"
	"localmds/internal/local"
	"localmds/internal/mds"
)

// MVCD2GatherRounds is the gather horizon of the distributed Theorem 4.4
// MVC variant: adjacency to distance 5 (the final edge-repair step needs
// the take-status of the neighbors' reduced neighbors).
const MVCD2GatherRounds = 7

// mvcD2Process is the message-passing MVCD2: gather, then decide everything
// locally by replaying the centralized pipeline (twin keep -> gamma test ->
// reduced repair -> twin-level repair) inside the view.
type mvcD2Process struct {
	g    local.Gatherer
	info local.NodeInfo
	inS  bool
}

// NewMVCD2Process returns the distributed Theorem 4.4 MVC process.
func NewMVCD2Process() local.Process { return &mvcD2Process{} }

func (p *mvcD2Process) Init(info local.NodeInfo) {
	p.info = info
	p.g.Init(info)
}

func (p *mvcD2Process) Round(round int, inbox []local.Message) ([]local.Message, bool) {
	out := p.g.Step(round, inbox)
	if round < MVCD2GatherRounds {
		return out, false
	}
	p.decide()
	return out, true
}

func (p *mvcD2Process) Output() any { return p.inS }

func (p *mvcD2Process) decide() {
	bg, ids, center := p.g.View().Graph()
	// One-shot twin keep per vertex (trustworthy within the horizon).
	kept := make([]bool, bg.N())
	for i := range kept {
		kept[i] = true
		ni := bg.ClosedNeighborhood(i)
		for _, j := range bg.Neighbors(i) {
			if ids[j] < ids[i] && graph.EqualSets(ni, bg.ClosedNeighborhood(j)) {
				kept[i] = false
				break
			}
		}
	}
	var keptVerts []int
	for i, k := range kept {
		if k {
			keptVerts = append(keptVerts, i)
		}
	}
	rg, ridx := bg.Induced(keptVerts)
	rg.Freeze() // read-only from here on; the gamma tests traverse it
	// take: gamma >= 2 on the reduced graph, non-isolated only.
	take := make([]bool, rg.N())
	for v := 0; v < rg.N(); v++ {
		take[v] = rg.Degree(v) > 0 && gammaAtLeastTwo(rg, v)
	}
	// Reduced-level repair: compare by identifier, exactly like the
	// centralized pass compares reduced indices (which are identifier-
	// ordered for identity assignments).
	repaired := append([]bool(nil), take...)
	for v := 0; v < rg.N(); v++ {
		if take[v] {
			continue
		}
		for _, u := range rg.Neighbors(v) {
			if !take[u] && ids[ridx[v]] < ids[ridx[u]] {
				repaired[v] = true
				break
			}
		}
	}
	// Map to the full view graph.
	cover := make([]bool, bg.N())
	for v, ok := range repaired {
		if ok {
			cover[ridx[v]] = true
		}
	}
	// Twin-level repair on g.
	final := cover[center]
	if !final {
		for _, y := range bg.Neighbors(center) {
			if !cover[y] && ids[center] < ids[y] {
				final = true
				break
			}
		}
	}
	p.inS = final
}

// RunMVCD2 executes the distributed Theorem 4.4 MVC variant.
func RunMVCD2(g *graph.Graph, ids []int, engine local.Engine) ([]int, local.Stats, error) {
	return runBooleanProcess(g, ids, engine, func(int) local.Process { return NewMVCD2Process() })
}

// mvcAlg1Process is the message-passing Algorithm 1 MVC variant: gather,
// take local 1-cuts and all local 2-cut vertices, then flood residual
// components (vertices with an uncovered incident edge) and solve exact
// vertex cover per component.
type mvcAlg1Process struct {
	p            Params
	gatherRounds int
	g            local.Gatherer
	info         local.NodeInfo
	inS1         bool
	participant  bool
	records      map[int]partRecord
	scratch      []floodRecord // reused per-round fresh-record buffer
	inS          bool
}

// MVCAlg1GatherRounds returns the gather horizon for the given radii:
// adjacency to distance max(R1, 2*R2)+2 (own decision, then the
// participant status of neighbors).
func MVCAlg1GatherRounds(p Params) int {
	r := p.R1
	if 2*p.R2 > r {
		r = 2 * p.R2
	}
	return r + 2 + 2
}

// NewMVCAlg1Process returns the distributed Algorithm 1 MVC process.
func NewMVCAlg1Process(p Params) local.Process {
	return &mvcAlg1Process{p: p, gatherRounds: MVCAlg1GatherRounds(p)}
}

func (a *mvcAlg1Process) Init(info local.NodeInfo) {
	a.info = info
	a.g.Init(info)
}

func (a *mvcAlg1Process) Round(round int, inbox []local.Message) ([]local.Message, bool) {
	if round <= a.gatherRounds {
		out := a.g.Step(round, inbox)
		if round == a.gatherRounds {
			a.decide()
			if !a.participant {
				a.inS = a.inS1
				return out, true
			}
		}
		return out, false
	}
	fresh := a.scratch[:0]
	if round == a.gatherRounds+1 {
		// Sorting pins the broadcast order even if seeding ever grows to
		// multiple records: message contents must not depend on map order.
		for id, rec := range a.records {
			fresh = append(fresh, floodRecord{ID: id, Rec: rec})
		}
		sort.Slice(fresh, func(i, j int) bool { return fresh[i].ID < fresh[j].ID })
	}
	for _, m := range inbox {
		fm, ok := m.(*floodMsg)
		if !ok {
			continue
		}
		for _, fr := range fm.records {
			if _, known := a.records[fr.ID]; !known {
				a.records[fr.ID] = fr.Rec
				fresh = append(fresh, fr)
			}
		}
	}
	a.scratch = fresh
	var out []local.Message
	if len(fresh) > 0 {
		records := make([]floodRecord, len(fresh))
		copy(records, fresh)
		out = local.Broadcast(a.info.Ports, &floodMsg{records: records})
	}
	if a.closed() {
		a.solveComponent()
		return out, true
	}
	return out, false
}

func (a *mvcAlg1Process) Output() any { return a.inS }

func (a *mvcAlg1Process) closed() bool {
	for _, rec := range a.records {
		for _, id := range rec.PartNbrs {
			if _, ok := a.records[id]; !ok {
				return false
			}
		}
	}
	return true
}

func (a *mvcAlg1Process) decide() {
	bg, ids, center := a.g.View().Graph()
	s1Cache := make(map[int]bool)
	s1At := func(v int) bool {
		if got, ok := s1Cache[v]; ok {
			return got
		}
		got := cuts.IsLocalOneCut(bg, v, a.p.R1)
		if !got {
			for _, u := range bg.Ball(v, a.p.R2) {
				if u != v && cuts.IsLocalTwoCut(bg, v, u, a.p.R2) {
					got = true
					break
				}
			}
		}
		s1Cache[v] = got
		return got
	}
	participantAt := func(v int) bool {
		if s1At(v) {
			return false
		}
		for _, u := range bg.Neighbors(v) {
			if !s1At(u) {
				return true // incident uncovered edge
			}
		}
		return false
	}
	a.inS1 = s1At(center)
	a.participant = participantAt(center)
	if !a.participant {
		return
	}
	var partNbrs []int
	for _, u := range bg.Neighbors(center) {
		if participantAt(u) {
			partNbrs = append(partNbrs, ids[u])
		}
	}
	sort.Ints(partNbrs)
	a.records = map[int]partRecord{a.info.ID: {PartNbrs: partNbrs}}
}

func (a *mvcAlg1Process) solveComponent() {
	members := make([]int, 0, len(a.records))
	for id := range a.records {
		members = append(members, id)
	}
	sort.Ints(members)
	pos := make(map[int]int, len(members))
	for i, id := range members {
		pos[id] = i
	}
	comp := graph.New(len(members))
	for i, id := range members {
		for _, nbr := range a.records[id].PartNbrs {
			if j, ok := pos[nbr]; ok && i < j {
				comp.AddEdge(i, j)
			}
		}
	}
	var chosen []int
	if len(members) <= a.p.MaxBruteComponent {
		sol, err := mds.ExactMVC(comp)
		if err == nil {
			chosen = sol
		} else {
			chosen = mds.MatchingVertexCover(comp)
		}
	} else {
		chosen = mds.MatchingVertexCover(comp)
	}
	me := pos[a.info.ID]
	for _, v := range chosen {
		if v == me {
			a.inS = true
		}
	}
	a.inS = a.inS || a.inS1
}

// RunMVCAlg1 executes the distributed Algorithm 1 MVC variant.
func RunMVCAlg1(g *graph.Graph, ids []int, p Params, engine local.Engine) ([]int, local.Stats, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, local.Stats{}, err
	}
	return runBooleanProcess(g, ids, engine, func(int) local.Process { return NewMVCAlg1Process(p) })
}
