package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/mds"
)

func TestGreedyDistributedIsDominating(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 6; i++ {
		g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 60, T: 5}, rng)
		s, phases := GreedyDistributed(g)
		if !mds.IsDominatingSet(g, s) {
			t.Fatalf("instance %d: not dominating", i)
		}
		if phases < 1 {
			t.Errorf("instance %d: %d phases", i, phases)
		}
	}
}

func TestGreedyDistributedStar(t *testing.T) {
	s, phases := GreedyDistributed(gen.Star(9))
	if len(s) != 1 || s[0] != 0 {
		t.Errorf("star: set %v, want center only", s)
	}
	if phases != 1 {
		t.Errorf("star: %d phases, want 1", phases)
	}
}

func TestGreedyDistributedPathPhases(t *testing.T) {
	// On a path the span ties cascade from the high-identifier end: the
	// phase count grows with n, demonstrating why this baseline has no
	// constant-round guarantee.
	_, short := GreedyDistributed(gen.Path(20))
	_, long := GreedyDistributed(gen.Path(200))
	if long <= short {
		t.Errorf("phases did not grow with n: %d (n=20) vs %d (n=200)", short, long)
	}
}

func TestGreedyDistributedEmpty(t *testing.T) {
	s, phases := GreedyDistributed(gen.Path(0))
	if len(s) != 0 || phases != 0 {
		t.Errorf("empty graph: %v, %d", s, phases)
	}
}

// Property: dominating on arbitrary graphs, and never worse than taking
// everything.
func TestGreedyDistributedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(30, 0.1, rng)
		s, _ := GreedyDistributed(g)
		return mds.IsDominatingSet(g, s) && len(s) <= g.N()
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
