package core

import (
	"math/rand"
	"testing"

	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/local"
	"localmds/internal/mds"
)

func TestRunAlg1MatchesCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", gen.Path(14)},
		{"cycle", gen.Cycle(12)},
		{"tree", gen.RandomTree(20, rng)},
		{"cactus", gen.RandomCactus(18, rng)},
		{"cliquependants", gen.CliquePendants(5)},
		{"ding", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 20, T: 5}, rng)},
		{"twins", gen.Complete(5)},
	}
	p := Params{R1: 3, R2: 3}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			want, err := Alg1(tt.g, p)
			if err != nil {
				t.Fatalf("Alg1: %v", err)
			}
			got, stats, err := RunAlg1(tt.g, nil, p, local.Sequential)
			if err != nil {
				t.Fatalf("RunAlg1: %v", err)
			}
			if !graph.EqualSets(got, want.S) {
				t.Errorf("process = %v, centralized = %v", got, want.S)
			}
			if stats.Rounds > want.RoundsEstimate {
				t.Errorf("rounds %d exceed estimate %d", stats.Rounds, want.RoundsEstimate)
			}
		})
	}
}

func TestRunAlg1EnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 24, T: 5}, rng)
	p := Params{R1: 3, R2: 3}
	a, sa, err := RunAlg1(g, nil, p, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := RunAlg1(g, nil, p, local.Parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.EqualSets(a, b) {
		t.Errorf("engines disagree: %v vs %v", a, b)
	}
	if sa != sb {
		t.Errorf("stats differ: %+v vs %+v", sa, sb)
	}
}

func TestRunAlg1PermutedIDs(t *testing.T) {
	// With permuted identifiers the tie-breaking changes, so the set may
	// differ from the centralized reference — but it must still dominate
	// and have the same size class (both are outputs of the same
	// brute-force optimum per component plus identical cut phases; only
	// twin representatives differ).
	g := gen.CliquePendants(5)
	n := g.N()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = (i*7 + 3) % (n * 7)
	}
	// Ensure distinct; (i*7+3) mod 63 for i < 9 is injective.
	got, _, err := RunAlg1(g, ids, Params{R1: 3, R2: 3}, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if !mds.IsDominatingSet(g, got) {
		t.Errorf("permuted-id run returned non-dominating %v", got)
	}
}

func TestRunAlg1RoundsScaleWithRadius(t *testing.T) {
	g := gen.Path(40)
	small, ssmall, err := RunAlg1(g, nil, Params{R1: 2, R2: 2}, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	large, slarge, err := RunAlg1(g, nil, Params{R1: 6, R2: 6}, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if !mds.IsDominatingSet(g, small) || !mds.IsDominatingSet(g, large) {
		t.Fatal("not dominating")
	}
	if ssmall.Rounds >= slarge.Rounds {
		t.Errorf("rounds should grow with radius: %d vs %d", ssmall.Rounds, slarge.Rounds)
	}
}

func TestRunAlg1SingletonAndTiny(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		g := gen.Path(n)
		got, _, err := RunAlg1(g, nil, Params{R1: 2, R2: 2}, local.Sequential)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !mds.IsDominatingSet(g, got) {
			t.Errorf("n=%d: %v not dominating", n, got)
		}
	}
}
