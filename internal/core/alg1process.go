package core

import (
	"sort"

	"localmds/internal/cuts"
	"localmds/internal/graph"
	"localmds/internal/local"
	"localmds/internal/mds"
)

// partRecord is one vertex's flooding record during the brute-force phase:
// its participating neighbors (identifiers) and whether it is still
// undominated after the cut phase.
type partRecord struct {
	PartNbrs    []int
	Undominated bool
}

// floodRecord is a partRecord tagged with its vertex identifier. Records
// are immutable once created and shared between every message that
// forwards them.
type floodRecord struct {
	ID  int
	Rec partRecord
}

// floodMsg carries flooding records as a flat slice.
type floodMsg struct {
	records []floodRecord
}

// alg1Process is the message-passing implementation of Algorithm 1. It
// spends GatherRadius()+2 rounds collecting its view, decides X/I/U
// membership locally, and then participants flood their residual component
// until they know it entirely, at which point every member deterministically
// solves the same brute-force instance.
type alg1Process struct {
	p            Params
	gatherRounds int
	g            local.Gatherer
	info         local.NodeInfo

	// Decision state, filled at the end of the gather phase.
	inS1        bool
	participant bool
	records     map[int]partRecord
	scratch     []floodRecord // reused per-round fresh-record buffer
	inS         bool
}

// NewAlg1Process returns the Algorithm 1 process for the given parameters.
// Outputs are booleans: membership in the returned dominating set.
func NewAlg1Process(p Params) local.Process {
	return &alg1Process{p: p, gatherRounds: p.GatherRadius() + 2}
}

func (a *alg1Process) Init(info local.NodeInfo) {
	a.info = info
	a.g.Init(info)
}

func (a *alg1Process) Round(round int, inbox []local.Message) ([]local.Message, bool) {
	if round <= a.gatherRounds {
		out := a.g.Step(round, inbox)
		if round == a.gatherRounds {
			a.decide()
			if !a.participant {
				a.inS = a.inS1
				return out, true
			}
		}
		return out, false
	}
	// Flooding phase (participants only).
	fresh := a.scratch[:0]
	if round == a.gatherRounds+1 {
		// Seed with the own record (the only one present after decide).
		// Sorting pins the broadcast order even if seeding ever grows to
		// multiple records: message contents must not depend on map order.
		for id, rec := range a.records {
			fresh = append(fresh, floodRecord{ID: id, Rec: rec})
		}
		sort.Slice(fresh, func(i, j int) bool { return fresh[i].ID < fresh[j].ID })
	}
	for _, m := range inbox {
		fm, ok := m.(*floodMsg)
		if !ok {
			continue
		}
		for _, fr := range fm.records {
			if _, known := a.records[fr.ID]; !known {
				a.records[fr.ID] = fr.Rec
				fresh = append(fresh, fr)
			}
		}
	}
	a.scratch = fresh
	var out []local.Message
	if len(fresh) > 0 {
		records := make([]floodRecord, len(fresh))
		copy(records, fresh)
		out = local.Broadcast(a.info.Ports, &floodMsg{records: records})
	}
	if a.closed() {
		a.solveComponent()
		return out, true
	}
	return out, false
}

func (a *alg1Process) Output() any { return a.inS }

// decide computes, from the gathered view, whether this vertex is a twin
// representative, in X or I, in U, and — if it participates in the
// brute-force phase — its flooding record.
func (a *alg1Process) decide() {
	view := a.g.View()
	bg, ids, center := view.Graph()
	dist := bg.BFSFrom(center)

	// kept[i]: vertex i survives the one-shot true-twin reduction (is the
	// minimum-identifier member of its class). Only trustworthy for
	// vertices whose distance-2 ball is fully known; all uses below stay
	// within that horizon.
	kept := make([]bool, bg.N())
	for i := 0; i < bg.N(); i++ {
		kept[i] = a.keptLocally(bg, ids, i)
	}
	var keptVerts []int
	for i, k := range kept {
		if k {
			keptVerts = append(keptVerts, i)
		}
	}
	rg, ridx := bg.Induced(keptVerts)
	rg.Freeze() // read-only from here on; decisions traverse it heavily
	rpos := make(map[int]int, len(ridx))
	for i, v := range ridx {
		rpos[v] = i
	}

	if !kept[center] {
		a.participant = false
		a.inS1 = false
		return
	}
	rcenter := rpos[center]

	// s1At decides X/I membership of reduced vertex rv (valid when its
	// decision ball is inside the view).
	s1Cache := make(map[int]bool)
	s1At := func(rv int) bool {
		if got, ok := s1Cache[rv]; ok {
			return got
		}
		got := a.s1Decision(rg, rv)
		s1Cache[rv] = got
		return got
	}

	a.inS1 = s1At(rcenter)
	dominatedAt := func(rv int) bool {
		for _, u := range rg.Ball(rv, 1) {
			if s1At(u) {
				return true
			}
		}
		return false
	}
	inUAt := func(rv int) bool {
		if s1At(rv) || !dominatedAt(rv) {
			return false
		}
		for _, u := range rg.Neighbors(rv) {
			if !dominatedAt(u) {
				return false
			}
		}
		return true
	}
	participantAt := func(rv int) bool {
		return !s1At(rv) && !inUAt(rv)
	}

	a.participant = participantAt(rcenter)
	if !a.participant {
		return
	}
	// Build the own flooding record: participating reduced neighbors
	// (their decisions need the +3 view margin) and own domination status.
	var partNbrs []int
	for _, u := range rg.Neighbors(rcenter) {
		if dist[ridx[u]] != 1 {
			continue // reduced adjacency must be a real G edge to flood over
		}
		if participantAt(u) {
			partNbrs = append(partNbrs, ids[ridx[u]])
		}
	}
	sort.Ints(partNbrs)
	a.records = map[int]partRecord{
		a.info.ID: {PartNbrs: partNbrs, Undominated: !dominatedAt(rcenter)},
	}
}

// keptLocally decides the one-shot twin reduction for view vertex i: kept
// iff its identifier is minimal in its true-twin class.
func (a *alg1Process) keptLocally(bg *graph.Graph, ids []int, i int) bool {
	ni := bg.ClosedNeighborhood(i)
	for _, j := range bg.Neighbors(i) {
		if ids[j] >= ids[i] {
			continue
		}
		nj := bg.ClosedNeighborhood(j)
		if graph.EqualSets(ni, nj) {
			return false
		}
	}
	return true
}

// s1Decision reports whether reduced vertex rv is in X ∪ I: an R1-local
// minimal 1-cut or an R2-interesting vertex of an R2-local minimal 2-cut of
// the reduced graph.
func (a *alg1Process) s1Decision(rg *graph.Graph, rv int) bool {
	if cuts.IsLocalOneCut(rg, rv, a.p.R1) {
		return true
	}
	for _, u := range rg.Ball(rv, a.p.R2) {
		if u == rv {
			continue
		}
		if cuts.IsLocallyInteresting(rg, rv, u, a.p.R2) {
			return true
		}
	}
	return false
}

// closed reports whether the flooding knowledge covers the whole residual
// component: every known record's participating neighbors are known.
func (a *alg1Process) closed() bool {
	for _, rec := range a.records {
		for _, id := range rec.PartNbrs {
			if _, ok := a.records[id]; !ok {
				return false
			}
		}
	}
	return true
}

// solveComponent deterministically solves the brute-force instance shared
// by all members of the residual component and records whether this vertex
// is selected.
func (a *alg1Process) solveComponent() {
	members := make([]int, 0, len(a.records))
	for id := range a.records {
		members = append(members, id)
	}
	sort.Ints(members)
	pos := make(map[int]int, len(members))
	for i, id := range members {
		pos[id] = i
	}
	comp := graph.New(len(members))
	var target []int
	for i, id := range members {
		rec := a.records[id]
		if rec.Undominated {
			target = append(target, i)
		}
		for _, nbr := range rec.PartNbrs {
			if j, ok := pos[nbr]; ok && i < j {
				comp.AddEdge(i, j)
			}
		}
	}
	var chosen []int
	if len(members) <= a.p.MaxBruteComponent {
		// Same budget as the centralized call sites, so the distributed
		// run falls back on exactly the components they do.
		sol, err := mds.ExactBDominatingOpt(comp, target, mds.ExactOptions{MaxNodes: BruteNodeBudget})
		if err == nil {
			chosen = sol
		} else {
			chosen = greedyBDominating(comp, target)
		}
	} else {
		chosen = greedyBDominating(comp, target)
	}
	me := pos[a.info.ID]
	for _, v := range chosen {
		if v == me {
			a.inS = true
		}
	}
	a.inS = a.inS || a.inS1
}

// RunAlg1 executes the distributed Algorithm 1 on g with identifier
// assignment ids (nil for identity) and returns the dominating set, the
// run statistics, and any simulator error.
func RunAlg1(g *graph.Graph, ids []int, p Params, engine local.Engine) ([]int, local.Stats, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, local.Stats{}, err
	}
	nw, err := local.NewNetwork(g, ids)
	if err != nil {
		return nil, local.Stats{}, err
	}
	res, err := nw.Run(engine, func(int) local.Process { return NewAlg1Process(p) }, 0)
	if err != nil {
		return nil, local.Stats{}, err
	}
	var s []int
	for v, out := range res.Outputs {
		if in, ok := out.(bool); ok && in {
			s = append(s, v)
		}
	}
	return s, res.Stats, nil
}
