package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/local"
	"localmds/internal/mds"
)

func TestTreeMDSKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want []int
	}{
		{"empty", graph.New(0), nil},
		{"single", gen.Path(1), []int{0}},
		{"edge", gen.Path(2), []int{0}},
		{"path5", gen.Path(5), []int{1, 2, 3}},
		{"star", gen.Star(5), []int{0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := TreeMDS(tt.g)
			if !graph.EqualSets(graph.Dedup(got), graph.Dedup(tt.want)) {
				t.Errorf("TreeMDS = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestTreeMDSRatioOnTrees(t *testing.T) {
	// The folklore bound: 3-approximation on trees with >= 3 vertices.
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomTree(30, rng)
		s := TreeMDS(g)
		if !mds.IsDominatingSet(g, s) {
			t.Fatalf("seed %d: not dominating", seed)
		}
		opt, err := mds.ExactMDS(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(s) > 3*len(opt) {
			t.Errorf("seed %d: |S| = %d > 3 OPT = %d", seed, len(s), 3*len(opt))
		}
	}
}

func TestRunTreeMDSTwoRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.RandomTree(25, rng)
	got, stats, err := RunTreeMDS(g, nil, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 2 {
		t.Errorf("rounds = %d, want 2 (footnote 3 of the paper)", stats.Rounds)
	}
	want := TreeMDS(g)
	if !graph.EqualSets(got, want) {
		t.Errorf("process = %v, centralized = %v", got, want)
	}
}

func TestRunTreeMDSSingleton(t *testing.T) {
	got, stats, err := RunTreeMDS(gen.Path(1), nil, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || stats.Rounds != 1 {
		t.Errorf("singleton: set %v rounds %d", got, stats.Rounds)
	}
}

func TestTakeAllMDS(t *testing.T) {
	g := gen.Star(3) // max degree 3: K_{1,4}-minor-free-ish bound
	s := TakeAllMDS(g)
	if len(s) != g.N() {
		t.Errorf("TakeAllMDS returned %d of %d", len(s), g.N())
	}
	if !mds.IsDominatingSet(g, s) {
		t.Error("not dominating")
	}
	// Folklore ratio on bounded-degree graphs: n <= (Δ+1) OPT.
	opt, err := mds.ExactMDS(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) > (g.MaxDegree()+1)*len(opt) {
		t.Errorf("take-all bound violated: %d > %d", len(s), (g.MaxDegree()+1)*len(opt))
	}
}

func TestTakeAllProcessSilent(t *testing.T) {
	g := gen.Cycle(8)
	nw, err := local.NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(local.Sequential, func(int) local.Process { return NewTakeAllProcess() }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Messages != 0 {
		t.Errorf("take-all sent %d messages, want 0", res.Stats.Messages)
	}
	if res.Stats.Rounds != 1 {
		t.Errorf("rounds = %d (one silent deciding step)", res.Stats.Rounds)
	}
}

func TestRegularMVC(t *testing.T) {
	g, err := gen.RegularLike(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := RegularMVC(g)
	if !mds.IsVertexCover(g, s) {
		t.Fatal("not a cover")
	}
	opt, err := mds.ExactMVC(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) > 2*len(opt) {
		t.Errorf("regular MVC bound violated: %d > 2x%d", len(s), len(opt))
	}
}

func TestRunExactGather(t *testing.T) {
	g := gen.Cycle(9)
	got, stats, err := RunExactGather(g, nil, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if !mds.IsDominatingSet(g, got) {
		t.Fatal("not dominating")
	}
	opt, err := mds.ExactMDS(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(opt) {
		t.Errorf("|S| = %d, want OPT = %d", len(got), len(opt))
	}
	// Footnote 2: a diameter-D graph needs ~D rounds; our gather protocol
	// costs diameter+2.
	if want := g.Diameter() + 2; stats.Rounds != want {
		t.Errorf("rounds = %d, want %d", stats.Rounds, want)
	}
}

// Property: the exact-gather process is exactly optimal on small connected
// graphs.
func TestRunExactGatherOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(12, 0.2, rng)
		got, _, err := RunExactGather(g, nil, local.Sequential)
		if err != nil {
			return false
		}
		opt, err := mds.ExactMDS(g)
		if err != nil {
			return false
		}
		return mds.IsDominatingSet(g, got) && len(got) == len(opt)
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
