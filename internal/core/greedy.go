package core

import (
	"sort"

	"localmds/internal/graph"
)

// GreedyDistributed simulates the classic distributed greedy MDS baseline
// the paper's introduction contrasts with: in each synchronous phase, a
// vertex joins the dominating set when its (span, identifier) pair is
// lexicographically maximal within distance 2, where span counts the
// still-undominated vertices in its closed neighborhood. Distance-2
// maximality means two simultaneous joiners never compete for the same
// undominated vertex, so every phase makes progress and the output tracks
// the sequential greedy (ln Δ ratio).
//
// It returns the set and the number of phases. Each phase costs O(1) LOCAL
// rounds, but the number of phases is not constant (up to Θ(n) on paths —
// see TestGreedyDistributedPathPhases), and detecting global termination
// takes Ω(diameter) rounds; this is exactly the gap the paper's
// constant-round algorithms close on K_{2,t}-minor-free classes, which is
// why this baseline appears in the experiments as a phase-count comparison
// rather than as a LOCAL process.
func GreedyDistributed(g *graph.Graph) ([]int, int) {
	n := g.N()
	dominated := make([]bool, n)
	inSet := make([]bool, n)
	phases := 0
	for {
		span := make([]int, n)
		remaining := 0
		for v := 0; v < n; v++ {
			for _, u := range g.Ball(v, 1) {
				if !dominated[u] {
					span[v]++
				}
			}
			if !dominated[v] {
				remaining++
			}
		}
		if remaining == 0 {
			break
		}
		phases++
		var joiners []int
		for v := 0; v < n; v++ {
			if span[v] == 0 {
				continue
			}
			best := true
			for _, u := range g.Ball(v, 2) {
				if u == v {
					continue
				}
				if span[u] > span[v] || (span[u] == span[v] && u > v) {
					best = false
					break
				}
			}
			if best {
				joiners = append(joiners, v)
			}
		}
		if len(joiners) == 0 {
			// Cannot happen: the global maximum (span, id) vertex is
			// always locally maximal. Guard against livelock regardless.
			break
		}
		for _, v := range joiners {
			inSet[v] = true
			for _, u := range g.Ball(v, 1) {
				dominated[u] = true
			}
		}
	}
	var s []int
	for v, in := range inSet {
		if in {
			s = append(s, v)
		}
	}
	sort.Ints(s)
	return s, phases
}
