package local

// Sizer lets a message report its encoded size so runs can account for
// bandwidth. The LOCAL model allows unbounded messages — the point of the
// accounting is to *measure* how far beyond CONGEST's O(log n) bits the
// algorithms actually go (ball gathering ships whole subgraphs).
type Sizer interface {
	// EstimatedSize returns the message's approximate size in machine
	// words (identifiers count as one word each).
	EstimatedSize() int
}

// messageSize estimates a message's size in words: Sizer if implemented,
// a conservative 1 word otherwise (scalar identifiers really are one word;
// anything larger should implement Sizer).
func messageSize(m Message) int {
	if s, ok := m.(Sizer); ok {
		return s.EstimatedSize()
	}
	return 1
}

// EstimatedSize reports the gather message's payload: one word per record
// identifier plus one per adjacency entry.
func (m *gatherMsg) EstimatedSize() int {
	size := 0
	for _, rec := range m.records {
		size += 1 + len(rec.nbrs)
	}
	return size
}
