// Package local implements the LOCAL model of distributed computing
// (Linial): a synchronous network where, in each round, every vertex
// exchanges messages of unbounded size with its neighbors and performs
// arbitrary local computation. The package provides a Network simulator
// with two engines — a deterministic sequential reference engine and a
// goroutine-per-node parallel engine — plus the ball-gathering protocol
// that underlies all the paper's algorithms (after r rounds every vertex
// knows its radius-(r-1) ball with full adjacency).
//
// Knowledge model (KT0): a process initially knows only its own identifier
// and its number of ports; neighbor identifiers must be learned by
// exchanging messages, which is why e.g. the folklore tree algorithm costs
// 2 rounds rather than 1 (footnote 3 of the paper).
package local

import (
	"fmt"
	"sync"
)

// Message is an arbitrary payload exchanged between neighbors in one round.
// Messages must be treated as immutable once sent: the parallel engine
// delivers the same value to the recipient without copying.
type Message any

// NodeInfo is the static information a process receives before round 1.
type NodeInfo struct {
	// ID is the vertex's globally unique identifier (O(log n) bits in the
	// model; any distinct ints here).
	ID int
	// Ports is the number of incident edges. Port i of this vertex is
	// connected to some port of the i-th neighbor; processes do not know
	// which vertex that is until told via a message.
	Ports int
	// N is the number of vertices in the network, which the LOCAL model
	// typically grants as global knowledge.
	N int
}

// Process is the per-vertex algorithm. Round is called once per round with
// the messages received on each port (nil for silent ports) and returns the
// messages to send on each port (a slice of length <= Ports; nil entries
// are silent) plus a halt flag. After halting, Round is not called again
// and the vertex neither sends nor receives.
type Process interface {
	Init(info NodeInfo)
	Round(round int, inbox []Message) (outbox []Message, halt bool)
	Output() any
}

// Factory builds the process for the given vertex index. Algorithms that
// need per-vertex parameters close over them.
type Factory func(vertex int) Process

// Topology abstracts the adjacency the simulator needs.
type Topology interface {
	N() int
	Neighbors(v int) []int
}

// Network couples a topology with an identifier assignment.
type Network struct {
	topo Topology
	ids  []int
}

// NewNetwork creates a network over topo with identifiers ids (one per
// vertex, all distinct). Pass nil for the identity assignment.
func NewNetwork(topo Topology, ids []int) (*Network, error) {
	n := topo.N()
	if ids == nil {
		ids = make([]int, n)
		for i := range ids {
			ids[i] = i
		}
	}
	if len(ids) != n {
		return nil, fmt.Errorf("local: %d ids for %d vertices", len(ids), n)
	}
	seen := make(map[int]bool, n)
	for _, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("local: duplicate id %d", id)
		}
		seen[id] = true
	}
	return &Network{topo: topo, ids: ids}, nil
}

// IDs returns the identifier assignment (do not modify).
func (nw *Network) IDs() []int { return nw.ids }

// Topo returns the underlying topology.
func (nw *Network) Topo() Topology { return nw.topo }

// Stats reports the cost of a run.
type Stats struct {
	Rounds   int
	Messages int64 // total messages delivered over all rounds
	// Words is the total delivered payload in machine words (see Sizer);
	// MaxMessageWords the largest single message. The LOCAL model allows
	// unbounded messages; these fields quantify how far a protocol
	// actually strays beyond CONGEST's O(log n)-bit limit.
	Words           int64
	MaxMessageWords int
}

// Result is the outcome of a run: per-vertex outputs plus cost statistics.
type Result struct {
	Outputs []any
	Stats   Stats
}

// Engine selects the execution strategy.
type Engine int

// Engines. Sequential is the deterministic reference; Parallel runs each
// vertex's round computation on its own goroutine with a barrier between
// rounds. Both must produce identical results for deterministic processes.
const (
	Sequential Engine = iota + 1
	Parallel
)

// DefaultMaxRounds caps runaway protocols; Run returns an error beyond it.
const DefaultMaxRounds = 1 << 20

// RunCONGEST executes the protocol like Run but enforces the CONGEST
// bandwidth discipline: any delivered message larger than maxMsgWords
// words aborts the run with an error. Use it to demonstrate which
// protocols genuinely need the LOCAL model's unbounded messages (the
// paper's ball-gathering algorithms do; simple flooding does not).
func (nw *Network) RunCONGEST(engine Engine, factory Factory, maxRounds, maxMsgWords int) (*Result, error) {
	return nw.run(engine, factory, maxRounds, maxMsgWords)
}

// Run executes the protocol until every vertex halts and returns outputs
// and statistics. maxRounds <= 0 selects DefaultMaxRounds.
func (nw *Network) Run(engine Engine, factory Factory, maxRounds int) (*Result, error) {
	return nw.run(engine, factory, maxRounds, 0)
}

func (nw *Network) run(engine Engine, factory Factory, maxRounds, maxMsgWords int) (*Result, error) {
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	n := nw.topo.N()
	procs := make([]Process, n)
	for v := 0; v < n; v++ {
		procs[v] = factory(v)
		procs[v].Init(NodeInfo{ID: nw.ids[v], Ports: len(nw.topo.Neighbors(v)), N: n})
	}
	halted := make([]bool, n)
	numHalted := 0
	// inboxes[v][p]: message arriving at v on port p this round.
	inboxes := make([][]Message, n)
	outboxes := make([][]Message, n)
	for v := 0; v < n; v++ {
		inboxes[v] = make([]Message, len(nw.topo.Neighbors(v)))
	}
	// portAt[v][i] is the port of neighbor u = Neighbors(v)[i] that leads
	// back to v.
	portAt := make([][]int, n)
	for v := 0; v < n; v++ {
		nbrs := nw.topo.Neighbors(v)
		portAt[v] = make([]int, len(nbrs))
		for i, u := range nbrs {
			for j, w := range nw.topo.Neighbors(u) {
				if w == v {
					portAt[v][i] = j
					break
				}
			}
		}
	}

	var stats Stats
	for round := 1; numHalted < n; round++ {
		if round > maxRounds {
			return nil, fmt.Errorf("local: exceeded %d rounds without global halt", maxRounds)
		}
		stats.Rounds = round
		// Compute phase.
		step := func(v int) {
			if halted[v] {
				outboxes[v] = nil
				return
			}
			out, halt := procs[v].Round(round, inboxes[v])
			outboxes[v] = out
			if halt {
				halted[v] = true
			}
		}
		if engine == Parallel {
			var wg sync.WaitGroup
			for v := 0; v < n; v++ {
				wg.Add(1)
				go func(v int) {
					defer wg.Done()
					step(v)
				}(v)
			}
			wg.Wait()
		} else {
			for v := 0; v < n; v++ {
				step(v)
			}
		}
		// Deliver phase.
		numHalted = 0
		for v := 0; v < n; v++ {
			if halted[v] {
				numHalted++
			}
			for p := range inboxes[v] {
				inboxes[v][p] = nil
			}
		}
		for v := 0; v < n; v++ {
			out := outboxes[v]
			if out == nil {
				continue
			}
			nbrs := nw.topo.Neighbors(v)
			if len(out) > len(nbrs) {
				return nil, fmt.Errorf("local: vertex %d sent on %d ports but has %d", v, len(out), len(nbrs))
			}
			for i, msg := range out {
				if msg == nil {
					continue
				}
				u := nbrs[i]
				if halted[u] {
					continue // dropped: recipient already halted
				}
				size := messageSize(msg)
				if maxMsgWords > 0 && size > maxMsgWords {
					return nil, fmt.Errorf("local: CONGEST violation in round %d: vertex %d sent %d words (limit %d)", round, v, size, maxMsgWords)
				}
				inboxes[u][portAt[v][i]] = msg
				stats.Messages++
				stats.Words += int64(size)
				if size > stats.MaxMessageWords {
					stats.MaxMessageWords = size
				}
			}
		}
	}
	outputs := make([]any, n)
	for v := 0; v < n; v++ {
		outputs[v] = procs[v].Output()
	}
	return &Result{Outputs: outputs, Stats: stats}, nil
}

// Broadcast builds an outbox sending msg on every one of ports ports.
func Broadcast(ports int, msg Message) []Message {
	out := make([]Message, ports)
	for i := range out {
		out[i] = msg
	}
	return out
}
