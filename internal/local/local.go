// Package local implements the LOCAL model of distributed computing
// (Linial): a synchronous network where, in each round, every vertex
// exchanges messages of unbounded size with its neighbors and performs
// arbitrary local computation. The package provides a Network simulator
// with two engines — a deterministic sequential reference engine and a
// chunked worker-pool parallel engine — plus the ball-gathering protocol
// that underlies all the paper's algorithms (after r rounds every vertex
// knows its radius-(r-1) ball with full adjacency).
//
// Knowledge model (KT0): a process initially knows only its own identifier
// and its number of ports; neighbor identifiers must be learned by
// exchanging messages, which is why e.g. the folklore tree algorithm costs
// 2 rounds rather than 1 (footnote 3 of the paper).
package local

import (
	"fmt"
	"runtime"
	"sync"

	"localmds/internal/graph"
)

// Message is an arbitrary payload exchanged between neighbors in one round.
// Messages must be treated as immutable once sent: the parallel engine
// delivers the same value to the recipient without copying.
type Message any

// NodeInfo is the static information a process receives before round 1.
type NodeInfo struct {
	// ID is the vertex's globally unique identifier (O(log n) bits in the
	// model; any distinct ints here).
	ID int
	// Ports is the number of incident edges. Port i of this vertex is
	// connected to some port of the i-th neighbor; processes do not know
	// which vertex that is until told via a message.
	Ports int
	// N is the number of vertices in the network, which the LOCAL model
	// typically grants as global knowledge.
	N int
}

// Process is the per-vertex algorithm. Round is called once per round with
// the messages received on each port (nil for silent ports) and returns the
// messages to send on each port (a slice of length <= Ports; nil entries
// are silent) plus a halt flag. After halting, Round is not called again
// and the vertex neither sends nor receives. The inbox slice is owned by
// the simulator and is only valid for the duration of the call.
type Process interface {
	Init(info NodeInfo)
	Round(round int, inbox []Message) (outbox []Message, halt bool)
	Output() any
}

// Factory builds the process for the given vertex index. Algorithms that
// need per-vertex parameters close over them.
type Factory func(vertex int) Process

// Topology abstracts the adjacency the simulator needs.
type Topology interface {
	N() int
	Neighbors(v int) []int
}

// Network couples a topology with an identifier assignment. The topology's
// adjacency is snapshotted into a message fabric at construction time, so
// repeated runs over the same network pay the wiring cost once; mutating
// the topology after NewNetwork is not supported.
type Network struct {
	topo  Topology
	ids   []int
	wires *wires
}

// NewNetwork creates a network over topo with identifiers ids (one per
// vertex, all distinct). Pass nil for the identity assignment.
func NewNetwork(topo Topology, ids []int) (*Network, error) {
	n := topo.N()
	if ids == nil {
		ids = make([]int, n)
		for i := range ids {
			ids[i] = i
		}
	}
	if len(ids) != n {
		return nil, fmt.Errorf("local: %d ids for %d vertices", len(ids), n)
	}
	seen := make(map[int]bool, n)
	for _, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("local: duplicate id %d", id)
		}
		seen[id] = true
	}
	return &Network{topo: topo, ids: ids, wires: buildWires(topo)}, nil
}

// IDs returns the identifier assignment (do not modify).
func (nw *Network) IDs() []int { return nw.ids }

// Topo returns the underlying topology.
func (nw *Network) Topo() Topology { return nw.topo }

// Stats reports the cost of a run.
type Stats struct {
	Rounds   int
	Messages int64 // total messages delivered over all rounds
	// Words is the total delivered payload in machine words (see Sizer);
	// MaxMessageWords the largest single message. The LOCAL model allows
	// unbounded messages; these fields quantify how far a protocol
	// actually strays beyond CONGEST's O(log n)-bit limit.
	Words           int64
	MaxMessageWords int
}

// Result is the outcome of a run: per-vertex outputs plus cost statistics.
type Result struct {
	Outputs []any
	Stats   Stats
}

// Engine selects the execution strategy.
type Engine int

// Engines. Sequential is the deterministic reference; Parallel fans the
// compute phase of each round out over a persistent pool of GOMAXPROCS
// workers processing chunks of the active-vertex list, with one barrier
// per round. Both must produce identical results for deterministic
// processes.
const (
	Sequential Engine = iota + 1
	Parallel
)

// DefaultMaxRounds caps runaway protocols; Run returns an error beyond it.
const DefaultMaxRounds = 1 << 20

// RunCONGEST executes the protocol like Run but enforces the CONGEST
// bandwidth discipline: any delivered message larger than maxMsgWords
// words aborts the run with an error. Use it to demonstrate which
// protocols genuinely need the LOCAL model's unbounded messages (the
// paper's ball-gathering algorithms do; simple flooding does not).
func (nw *Network) RunCONGEST(engine Engine, factory Factory, maxRounds, maxMsgWords int) (*Result, error) {
	return nw.run(engine, factory, maxRounds, maxMsgWords)
}

// Run executes the protocol until every vertex halts and returns outputs
// and statistics. maxRounds <= 0 selects DefaultMaxRounds.
func (nw *Network) Run(engine Engine, factory Factory, maxRounds int) (*Result, error) {
	return nw.run(engine, factory, maxRounds, 0)
}

// wires is the frozen message fabric of one run: a CSR copy of the
// topology plus, for every directed arc, the receive slot it feeds. All
// round state (inbox, outbox) lives in flat arrays indexed by arc, so a
// run allocates its buffers once and reuses them every round.
type wires struct {
	offsets []int32 // len n+1
	targets []int32 // arc k goes to vertex targets[k]
	// revSlot[k] is the inbox slot the arc fills: for arc k = (v -> u),
	// revSlot[k] = offsets[u] + (port of u that leads back to v).
	revSlot []int32
}

// buildWires snapshots the topology and computes every arc's receive slot.
// A *graph.Graph topology shares its frozen CSR arrays directly; other
// topologies are flattened here. For sorted adjacency lists (graph.Graph
// guarantees this) the reverse ports come out of a single counting pass
// over the arcs: scanning sources in increasing order means each target's
// in-arcs arrive in exactly its adjacency order. Unsorted topologies fall
// back to a per-arc scan.
func buildWires(topo Topology) *wires {
	n := topo.N()
	var offsets, targets []int32
	sorted := true
	if g, ok := topo.(*graph.Graph); ok {
		c := g.Freeze()
		offsets, targets = c.Offsets, c.Targets
	} else {
		offsets = make([]int32, n+1)
		total := 0
		for v := 0; v < n; v++ {
			offsets[v] = int32(total)
			total += len(topo.Neighbors(v))
		}
		offsets[n] = int32(total)
		targets = make([]int32, total)
		for v := 0; v < n; v++ {
			k := offsets[v]
			prev := -1
			for _, u := range topo.Neighbors(v) {
				if u <= prev {
					sorted = false
				}
				prev = u
				targets[k] = int32(u)
				k++
			}
		}
	}
	w := &wires{offsets: offsets, targets: targets}
	w.revSlot = make([]int32, len(targets))
	if sorted {
		ptr := make([]int32, n)
		for v := 0; v < n; v++ {
			for k := offsets[v]; k < offsets[v+1]; k++ {
				u := targets[k]
				w.revSlot[k] = offsets[u] + ptr[u]
				ptr[u]++
			}
		}
		return w
	}
	for v := 0; v < n; v++ {
		for k := offsets[v]; k < offsets[v+1]; k++ {
			u := targets[k]
			for j := offsets[u]; j < offsets[u+1]; j++ {
				if targets[j] == int32(v) {
					w.revSlot[k] = j
					break
				}
			}
		}
	}
	return w
}

// degree returns the degree of v in the wired topology.
func (w *wires) degree(v int32) int { return int(w.offsets[v+1] - w.offsets[v]) }

// chunk is one unit of compute-phase work: a slice of the active list.
type chunk struct {
	lo, hi int
	round  int
}

// computePool runs the per-round compute phase on persistent workers.
// Workers live for the whole run; each round the main loop carves the
// active list into chunks, feeds them through a channel, and waits on one
// barrier. Distinct chunks touch distinct vertices, so workers never write
// the same outbox or halt slot.
type computePool struct {
	jobs chan chunk
	wg   sync.WaitGroup
}

func newComputePool(workers int, work func(lo, hi, round int)) *computePool {
	p := &computePool{jobs: make(chan chunk, workers)}
	for i := 0; i < workers; i++ {
		//mdsvet:ignore boundedgo -- persistent bounded pool: exactly `workers` goroutines for the engine's lifetime; local cannot import runner.Pool (layering)
		go func() {
			for c := range p.jobs {
				work(c.lo, c.hi, c.round)
				p.wg.Done()
			}
		}()
	}
	return p
}

func (p *computePool) runRound(round, active int) {
	// Chunk size balances scheduling overhead against load balance: aim
	// for a few chunks per worker, but never chunks so small that channel
	// traffic dominates the per-vertex work.
	chunkSize := (active + cap(p.jobs)*4 - 1) / (cap(p.jobs) * 4)
	if chunkSize < 16 {
		chunkSize = 16
	}
	for lo := 0; lo < active; lo += chunkSize {
		hi := lo + chunkSize
		if hi > active {
			hi = active
		}
		p.wg.Add(1)
		p.jobs <- chunk{lo: lo, hi: hi, round: round}
	}
	p.wg.Wait()
}

func (p *computePool) close() { close(p.jobs) }

func (nw *Network) run(engine Engine, factory Factory, maxRounds, maxMsgWords int) (*Result, error) {
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	n := nw.topo.N()
	w := nw.wires
	// Guard against the topology having been mutated after NewNetwork:
	// the wires are a construction-time snapshot, and running over a
	// stale snapshot would silently misroute messages.
	if nw.topo.N() != len(w.offsets)-1 {
		return nil, fmt.Errorf("local: topology grew to %d vertices after NewNetwork (had %d)", nw.topo.N(), len(w.offsets)-1)
	}
	total := 0
	for v := 0; v < n; v++ {
		total += len(nw.topo.Neighbors(v))
	}
	if total != len(w.targets) {
		return nil, fmt.Errorf("local: topology has %d arcs but NewNetwork snapshotted %d; mutating the topology after NewNetwork is not supported", total, len(w.targets))
	}
	procs := make([]Process, n)
	for v := 0; v < n; v++ {
		procs[v] = factory(v)
		procs[v].Init(NodeInfo{ID: nw.ids[v], Ports: w.degree(int32(v)), N: n})
	}
	halted := make([]bool, n)
	// inbox[w.offsets[v]+p]: message arriving at v on port p this round.
	inbox := make([]Message, len(w.targets))
	outboxes := make([][]Message, n)
	// active lists the non-halted vertices in ascending order; compute and
	// delivery iterate it so halted vertices cost nothing.
	active := make([]int32, n)
	for v := range active {
		active[v] = int32(v)
	}

	step := func(lo, hi, round int) {
		for i := lo; i < hi; i++ {
			v := active[i]
			in := inbox[w.offsets[v]:w.offsets[v+1]]
			out, halt := procs[v].Round(round, in)
			outboxes[v] = out
			if halt {
				halted[v] = true
			}
		}
	}

	var pool *computePool
	if engine == Parallel {
		workers := runtime.GOMAXPROCS(0)
		if workers > n {
			workers = n
		}
		if workers > 1 {
			pool = newComputePool(workers, step)
			defer pool.close()
		}
	}

	var stats Stats
	for round := 1; len(active) > 0; round++ {
		if round > maxRounds {
			return nil, fmt.Errorf("local: exceeded %d rounds without global halt", maxRounds)
		}
		stats.Rounds = round
		// Compute phase.
		if pool != nil {
			pool.runRound(round, len(active))
		} else {
			step(0, len(active), round)
		}
		// Clear the receive slots of every vertex still able to receive,
		// then deliver. Vertices halted before this round are not in
		// active; slots of vertices that halted this round are never read
		// again, so skipping them is safe.
		for _, v := range active {
			if halted[v] {
				continue
			}
			in := inbox[w.offsets[v]:w.offsets[v+1]]
			for p := range in {
				in[p] = nil
			}
		}
		// Deliver phase, in ascending vertex order for deterministic stats.
		for _, v := range active {
			out := outboxes[v]
			if out == nil {
				continue
			}
			deg := w.degree(v)
			if len(out) > deg {
				return nil, fmt.Errorf("local: vertex %d sent on %d ports but has %d", v, len(out), deg)
			}
			base := w.offsets[v]
			for i, msg := range out {
				if msg == nil {
					continue
				}
				k := base + int32(i)
				u := w.targets[k]
				if halted[u] {
					continue // dropped: recipient already halted
				}
				size := messageSize(msg)
				if maxMsgWords > 0 && size > maxMsgWords {
					return nil, fmt.Errorf("local: CONGEST violation in round %d: vertex %d sent %d words (limit %d)", round, v, size, maxMsgWords)
				}
				inbox[w.revSlot[k]] = msg
				stats.Messages++
				stats.Words += int64(size)
				if size > stats.MaxMessageWords {
					stats.MaxMessageWords = size
				}
			}
			outboxes[v] = nil
		}
		// Compact the active list in place, preserving order.
		live := active[:0]
		for _, v := range active {
			if !halted[v] {
				live = append(live, v)
			}
		}
		active = live
	}
	outputs := make([]any, n)
	for v := 0; v < n; v++ {
		outputs[v] = procs[v].Output()
	}
	return &Result{Outputs: outputs, Stats: stats}, nil
}

// Broadcast builds an outbox sending msg on every one of ports ports.
func Broadcast(ports int, msg Message) []Message {
	out := make([]Message, ports)
	for i := range out {
		out[i] = msg
	}
	return out
}
