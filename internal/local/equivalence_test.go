package local

import (
	"math/rand"
	"reflect"
	"testing"

	"localmds/internal/gen"
	"localmds/internal/graph"
)

// The worker-pool parallel engine must be observationally identical to the
// sequential reference engine: same per-vertex outputs, same Stats, on any
// topology and identifier assignment. These property tests are the
// load-bearing correctness check for the engine (run them under -race).

// viewsEqual compares two gather views field by field.
func viewsEqual(a, b *View) bool {
	if a.CenterID != b.CenterID || len(a.Adj) != len(b.Adj) {
		return false
	}
	for id, nbrs := range a.Adj {
		other, ok := b.Adj[id]
		if !ok || !graph.EqualSets(nbrs, other) {
			return false
		}
	}
	return true
}

// randomIDs returns a shuffled, gappy identifier assignment.
func randomIDs(n int, rng *rand.Rand) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = 3*i + 7
	}
	rng.Shuffle(n, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	return ids
}

// checkEnginesAgree runs the gather, leader-election, and BFS-tree
// protocols on g with both engines and fails on any divergence.
func checkEnginesAgree(t *testing.T, g *graph.Graph, ids []int, rounds int) {
	t.Helper()
	nw, err := NewNetwork(g, ids)
	if err != nil {
		t.Fatal(err)
	}
	seqViews, seqStats, err := GatherViews(nw, rounds, Sequential)
	if err != nil {
		t.Fatalf("sequential gather: %v", err)
	}
	parViews, parStats, err := GatherViews(nw, rounds, Parallel)
	if err != nil {
		t.Fatalf("parallel gather: %v", err)
	}
	if seqStats != parStats {
		t.Errorf("gather stats differ: %+v vs %+v", seqStats, parStats)
	}
	for v := range seqViews {
		if !viewsEqual(seqViews[v], parViews[v]) {
			t.Errorf("vertex %d: gather views differ", v)
		}
	}

	horizon := g.Diameter() + 2
	seqLead, seqStats2, err := ElectLeader(nw, horizon, Sequential)
	if err != nil {
		t.Fatalf("sequential leader: %v", err)
	}
	parLead, parStats2, err := ElectLeader(nw, horizon, Parallel)
	if err != nil {
		t.Fatalf("parallel leader: %v", err)
	}
	if seqStats2 != parStats2 {
		t.Errorf("leader stats differ: %+v vs %+v", seqStats2, parStats2)
	}
	if !reflect.DeepEqual(seqLead, parLead) {
		t.Errorf("leader outputs differ: %v vs %v", seqLead, parLead)
	}

	root := nw.IDs()[0]
	seqTree, seqStats3, err := BuildBFSTree(nw, root, horizon, Sequential)
	if err != nil {
		t.Fatalf("sequential bfs tree: %v", err)
	}
	parTree, parStats3, err := BuildBFSTree(nw, root, horizon, Parallel)
	if err != nil {
		t.Fatalf("parallel bfs tree: %v", err)
	}
	if seqStats3 != parStats3 {
		t.Errorf("bfs tree stats differ: %+v vs %+v", seqStats3, parStats3)
	}
	if !reflect.DeepEqual(seqTree, parTree) {
		t.Errorf("bfs tree outputs differ: %v vs %v", seqTree, parTree)
	}
}

func TestEngineEquivalenceRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(50)
		p := 0.05 + 0.3*rng.Float64()
		g := gen.GNP(n, p, rng)
		rounds := 2 + rng.Intn(5)
		checkEnginesAgree(t, g, randomIDs(n, rng), rounds)
	}
}

func TestEngineEquivalenceStructured(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	graphs := []*graph.Graph{
		gen.Path(1),
		gen.Path(17),
		gen.Cycle(24),
		gen.Star(30),
		gen.Grid(6, 9),
		gen.RandomTree(40, rng),
		gen.Complete(12),
	}
	for i, g := range graphs {
		checkEnginesAgree(t, g, nil, 5)
		checkEnginesAgree(t, g, randomIDs(g.N(), rng), 4)
		_ = i
	}
}

// TestEngineEquivalenceIsolatedVertices covers zero-port processes, which
// the active-list engine must still run and halt.
func TestEngineEquivalenceIsolatedVertices(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2) // vertices 3..5 isolated
	checkEnginesAgree(t, g, nil, 4)
}

// FuzzEngineEquivalence drives the same property from the fuzzer: any
// (seed, size, density, rounds) tuple must produce engine-identical runs.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(30), uint8(4))
	f.Add(int64(99), uint8(1), uint8(0), uint8(2))
	f.Add(int64(5), uint8(40), uint8(10), uint8(6))
	f.Fuzz(func(t *testing.T, seed int64, n, density, rounds uint8) {
		nv := 1 + int(n)%48
		r := 2 + int(rounds)%5
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNP(nv, float64(density%100)/100, rng)
		checkEnginesAgree(t, g, randomIDs(nv, rng), r)
	})
}
