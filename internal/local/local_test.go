package local

import (
	"testing"

	"localmds/internal/gen"
	"localmds/internal/graph"
)

// echoProcess outputs the multiset of neighbor IDs it hears in round 1 and
// halts in round 2.
type echoProcess struct {
	info NodeInfo
	ids  []int
}

func (p *echoProcess) Init(info NodeInfo) { p.info = info }

func (p *echoProcess) Round(round int, inbox []Message) ([]Message, bool) {
	if round == 1 {
		return Broadcast(p.info.Ports, p.info.ID), false
	}
	for _, m := range inbox {
		if id, ok := m.(int); ok {
			p.ids = append(p.ids, id)
		}
	}
	return nil, true
}

func (p *echoProcess) Output() any { return graph.Dedup(p.ids) }

func TestNewNetworkValidation(t *testing.T) {
	g := gen.Path(3)
	if _, err := NewNetwork(g, []int{1, 2}); err == nil {
		t.Error("short id slice accepted")
	}
	if _, err := NewNetwork(g, []int{1, 1, 2}); err == nil {
		t.Error("duplicate ids accepted")
	}
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if ids := nw.IDs(); len(ids) != 3 || ids[2] != 2 {
		t.Errorf("default ids = %v", ids)
	}
}

func TestEchoLearnsNeighbors(t *testing.T) {
	g := gen.Cycle(5)
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(Sequential, func(int) Process { return &echoProcess{} }, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stats.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", res.Stats.Rounds)
	}
	// Each of the 5 vertices broadcasts to 2 neighbors in round 1.
	if res.Stats.Messages != 10 {
		t.Errorf("Messages = %d, want 10", res.Stats.Messages)
	}
	for v := 0; v < g.N(); v++ {
		got := res.Outputs[v].([]int)
		want := graph.Dedup(g.Neighbors(v))
		if !graph.EqualSets(got, want) {
			t.Errorf("vertex %d heard %v, want %v", v, got, want)
		}
	}
}

func TestEnginesAgree(t *testing.T) {
	g := gen.Grid(4, 5)
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	seqRes, err := nw.Run(Sequential, func(int) Process { return &echoProcess{} }, 0)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	parRes, err := nw.Run(Parallel, func(int) Process { return &echoProcess{} }, 0)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if seqRes.Stats != parRes.Stats {
		t.Errorf("stats differ: %+v vs %+v", seqRes.Stats, parRes.Stats)
	}
	for v := range seqRes.Outputs {
		a := seqRes.Outputs[v].([]int)
		b := parRes.Outputs[v].([]int)
		if !graph.EqualSets(a, b) {
			t.Errorf("vertex %d: outputs differ: %v vs %v", v, a, b)
		}
	}
}

// runawayProcess never halts.
type runawayProcess struct{ info NodeInfo }

func (p *runawayProcess) Init(info NodeInfo) { p.info = info }
func (p *runawayProcess) Round(int, []Message) ([]Message, bool) {
	return nil, false
}
func (p *runawayProcess) Output() any { return nil }

func TestMaxRoundsGuard(t *testing.T) {
	g := gen.Path(2)
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(Sequential, func(int) Process { return &runawayProcess{} }, 10); err == nil {
		t.Error("runaway protocol not stopped")
	}
}

// oversendProcess sends on more ports than it has.
type oversendProcess struct{ info NodeInfo }

func (p *oversendProcess) Init(info NodeInfo) { p.info = info }
func (p *oversendProcess) Round(int, []Message) ([]Message, bool) {
	return make([]Message, p.info.Ports+1), true
}
func (p *oversendProcess) Output() any { return nil }

func TestOversendRejected(t *testing.T) {
	g := gen.Path(3)
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// All entries nil => no messages actually sent, but the oversized
	// outbox itself is a protocol violation... nil messages are skipped,
	// so make one non-nil by using a custom process instead. Simpler: the
	// length check fires regardless.
	if _, err := nw.Run(Sequential, func(int) Process { return &oversendProcess{} }, 0); err == nil {
		t.Error("oversized outbox accepted")
	}
}

func TestGatherViews(t *testing.T) {
	g := gen.Path(7)
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 4 // adjacency known to distance 2, ids to distance 3
	views, stats, err := GatherViews(nw, rounds, Sequential)
	if err != nil {
		t.Fatalf("GatherViews: %v", err)
	}
	if stats.Rounds != rounds {
		t.Errorf("Rounds = %d, want %d", stats.Rounds, rounds)
	}
	v3 := views[3]
	if v3.CenterID != 3 {
		t.Fatalf("center = %d, want 3", v3.CenterID)
	}
	// Adjacency of vertices at distance <= 2 must be known.
	for _, id := range []int{1, 2, 3, 4, 5} {
		if _, ok := v3.Adj[id]; !ok {
			t.Errorf("view of 3 missing adjacency of %d", id)
		}
	}
	// Identifiers at distance 3 are visible inside adjacency lists.
	known := v3.KnownIDs()
	if !graph.SortedContains(known, 0) || !graph.SortedContains(known, 6) {
		t.Errorf("view of 3 should reference ids 0 and 6: %v", known)
	}
}

func TestViewGraphMatchesBall(t *testing.T) {
	g := gen.Grid(4, 4)
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	radius := 2
	views, _, err := GatherViews(nw, radius+2, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		vg, ids, center := views[v].Graph()
		if ids[center] != v {
			t.Fatalf("vertex %d: center mislabeled", v)
		}
		// The view graph must contain the full induced ball of the
		// radius: check all ball edges are present.
		ball := g.Ball(v, radius)
		for _, x := range ball {
			for _, y := range ball {
				if x < y && g.HasEdge(x, y) {
					xi, yi := indexIn(ids, x), indexIn(ids, y)
					if xi < 0 || yi < 0 || !vg.HasEdge(xi, yi) {
						t.Errorf("vertex %d: ball edge {%d,%d} missing from view", v, x, y)
					}
				}
			}
		}
	}
}

func indexIn(sorted []int, v int) int {
	for i, x := range sorted {
		if x == v {
			return i
		}
	}
	return -1
}

func TestGatherViewsWholeGraph(t *testing.T) {
	// Enough rounds: every vertex knows the entire graph.
	g := gen.Cycle(9)
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	views, _, err := GatherViews(nw, g.Diameter()+2, Parallel)
	if err != nil {
		t.Fatal(err)
	}
	for v, view := range views {
		vg, _, _ := view.Graph()
		if vg.N() != g.N() || vg.M() != g.M() {
			t.Errorf("vertex %d: view graph %v, want full C9", v, vg)
		}
	}
}

func TestGatherEnginesAgree(t *testing.T) {
	g := gen.Grid(3, 6)
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, sa, err := GatherViews(nw, 5, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := GatherViews(nw, 5, Parallel)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Errorf("stats differ: %+v vs %+v", sa, sb)
	}
	for v := range a {
		if !graph.EqualSets(a[v].KnownIDs(), b[v].KnownIDs()) {
			t.Errorf("vertex %d: known ids differ", v)
		}
	}
}

func TestCustomIDs(t *testing.T) {
	g := gen.Path(3)
	nw, err := NewNetwork(g, []int{100, 7, 42})
	if err != nil {
		t.Fatal(err)
	}
	views, _, err := GatherViews(nw, 4, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if views[1].CenterID != 7 {
		t.Errorf("center id = %d, want 7", views[1].CenterID)
	}
	if !graph.EqualSets(views[1].KnownIDs(), []int{7, 42, 100}) {
		t.Errorf("known ids = %v", views[1].KnownIDs())
	}
}
