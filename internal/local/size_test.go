package local

import "testing"

// wordsOf is a test message type with a self-reported size.
type wordsOf int

func (w wordsOf) EstimatedSize() int { return int(w) }

func TestMessageSizeCONGESTAccounting(t *testing.T) {
	cases := []struct {
		name string
		msg  Message
		want int
	}{
		// Scalar identifiers are one CONGEST word.
		{"int scalar", 7, 1},
		{"string id", "v12", 1},
		// Struct messages without a Sizer get the conservative 1-word
		// floor (they must implement Sizer to be accounted for).
		{"plain struct", struct{ a, b, c int }{1, 2, 3}, 1},
		{"nil message", nil, 1},
		// Sizer implementations are trusted verbatim.
		{"custom sizer", wordsOf(17), 17},
		{"zero-size sizer", wordsOf(0), 0},
		// gatherMsg: one word per record id plus one per adjacency entry.
		{"gather message", &gatherMsg{records: []gatherRecord{
			{id: 1, nbrs: []int{2, 3, 4}},
			{id: 2, nbrs: []int{1}},
			{id: 9, nbrs: nil},
		}}, (1 + 3) + (1 + 1) + (1 + 0)},
	}
	for _, c := range cases {
		if got := messageSize(c.msg); got != c.want {
			t.Errorf("%s: messageSize = %d, want %d", c.name, got, c.want)
		}
	}
}
