package local

import (
	"testing"

	"localmds/internal/gen"
)

// lastWordsProcess halts in round 1 while sending a message; its neighbor
// stays up one more round and must still receive it (halting peers deliver
// their final outbox).
type lastWordsProcess struct {
	info      NodeInfo
	haltEarly bool
	heard     int
}

func (p *lastWordsProcess) Init(info NodeInfo) { p.info = info }

func (p *lastWordsProcess) Round(round int, inbox []Message) ([]Message, bool) {
	for _, m := range inbox {
		if m != nil {
			p.heard++
		}
	}
	if p.haltEarly {
		return Broadcast(p.info.Ports, "bye"), true
	}
	return nil, round >= 2
}

func (p *lastWordsProcess) Output() any { return p.heard }

func TestFinalMessagesDelivered(t *testing.T) {
	g := gen.Path(2)
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(Sequential, func(v int) Process {
		return &lastWordsProcess{haltEarly: v == 0}
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[1].(int) != 1 {
		t.Errorf("vertex 1 heard %d messages, want the halting peer's last words", res.Outputs[1].(int))
	}
}

func TestMessagesToHaltedDropped(t *testing.T) {
	// Vertex 0 halts in round 1; vertex 1 sends in round 2; the message
	// must be dropped, not delivered or counted.
	g := gen.Path(2)
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(Sequential, func(v int) Process {
		if v == 0 {
			return &silentHaltProcess{}
		}
		return &lateSenderProcess{}
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Only the round-2 send happens; it targets a halted vertex.
	if res.Stats.Messages != 0 {
		t.Errorf("Messages = %d, want 0 (recipient halted)", res.Stats.Messages)
	}
}

type silentHaltProcess struct{}

func (silentHaltProcess) Init(NodeInfo) {}
func (silentHaltProcess) Round(int, []Message) ([]Message, bool) {
	return nil, true
}
func (silentHaltProcess) Output() any { return nil }

type lateSenderProcess struct{ info NodeInfo }

func (p *lateSenderProcess) Init(info NodeInfo) { p.info = info }
func (p *lateSenderProcess) Round(round int, _ []Message) ([]Message, bool) {
	if round == 2 {
		return Broadcast(p.info.Ports, "late"), true
	}
	return nil, false
}
func (p *lateSenderProcess) Output() any { return nil }
