package local

// Classic LOCAL building blocks used by tests, examples, and as reference
// protocols: leader election by minimum identifier and BFS-tree
// construction rooted at the leader. Both are textbook flooding protocols;
// they double as simulator fixtures with easily predictable round counts.

// LeaderResult is the output of the leader-election protocol.
type LeaderResult struct {
	LeaderID int
	IsLeader bool
}

// leaderProcess floods the minimum identifier seen so far; a vertex halts
// once the value has been stable for one round, which on a connected graph
// happens within eccentricity+1 rounds of the leader announcement. To keep
// termination local (no global knowledge of n), the protocol runs for
// exactly the given horizon of rounds; callers pass an upper bound on the
// diameter plus one.
type leaderProcess struct {
	horizon int
	info    NodeInfo
	min     int
}

// NewLeaderProcess returns a min-identifier leader election running for
// the given number of rounds (>= diameter + 1 for correctness).
func NewLeaderProcess(horizon int) Process {
	return &leaderProcess{horizon: horizon}
}

func (p *leaderProcess) Init(info NodeInfo) {
	p.info = info
	p.min = info.ID
}

func (p *leaderProcess) Round(round int, inbox []Message) ([]Message, bool) {
	changed := round == 1 // first round: everyone announces
	for _, m := range inbox {
		if id, ok := m.(int); ok && id < p.min {
			p.min = id
			changed = true
		}
	}
	halt := round >= p.horizon
	if changed && !halt {
		return Broadcast(p.info.Ports, p.min), false
	}
	return nil, halt
}

func (p *leaderProcess) Output() any {
	return LeaderResult{LeaderID: p.min, IsLeader: p.min == p.info.ID}
}

// ElectLeader runs the protocol and returns the per-vertex results.
func ElectLeader(nw *Network, horizon int, engine Engine) ([]LeaderResult, Stats, error) {
	res, err := nw.Run(engine, func(int) Process { return NewLeaderProcess(horizon) }, horizon+1)
	if err != nil {
		return nil, Stats{}, err
	}
	out := make([]LeaderResult, len(res.Outputs))
	for i, o := range res.Outputs {
		out[i] = o.(LeaderResult)
	}
	return out, res.Stats, nil
}

// BFSTreeResult is the per-vertex output of the BFS-tree protocol.
type BFSTreeResult struct {
	RootID   int
	ParentID int // -1 at the root and at unreached vertices
	Depth    int // -1 if unreached within the horizon
}

// bfsMsg announces "I joined the tree at this depth under this root".
type bfsMsg struct {
	RootID int
	Depth  int
	FromID int
}

// EstimatedSize implements Sizer (three identifiers).
func (bfsMsg) EstimatedSize() int { return 3 }

// bfsTreeProcess builds a BFS tree from the vertex with the given root
// identifier. The root announces in round 1; every vertex joins at the
// first announcement it hears and re-announces once.
type bfsTreeProcess struct {
	rootID  int
	horizon int
	info    NodeInfo
	parent  int
	depth   int
	joined  bool
	pending bool
}

// NewBFSTreeProcess returns the BFS-tree protocol rooted at rootID with the
// given round horizon (>= eccentricity of the root + 1).
func NewBFSTreeProcess(rootID, horizon int) Process {
	return &bfsTreeProcess{rootID: rootID, horizon: horizon, parent: -1, depth: -1}
}

func (p *bfsTreeProcess) Init(info NodeInfo) {
	p.info = info
	if info.ID == p.rootID {
		p.joined = true
		p.depth = 0
		p.pending = true
	}
}

func (p *bfsTreeProcess) Round(round int, inbox []Message) ([]Message, bool) {
	if !p.joined {
		best := -1
		var bestMsg bfsMsg
		for _, m := range inbox {
			bm, ok := m.(bfsMsg)
			if !ok {
				continue
			}
			if best < 0 || bm.FromID < bestMsg.FromID {
				best = 1
				bestMsg = bm
			}
		}
		if best > 0 {
			p.joined = true
			p.parent = bestMsg.FromID
			p.depth = bestMsg.Depth + 1
			p.pending = true
		}
	}
	halt := round >= p.horizon
	if p.pending {
		p.pending = false
		msg := bfsMsg{RootID: p.rootID, Depth: p.depth, FromID: p.info.ID}
		return Broadcast(p.info.Ports, msg), halt
	}
	return nil, halt
}

func (p *bfsTreeProcess) Output() any {
	return BFSTreeResult{RootID: p.rootID, ParentID: p.parent, Depth: p.depth}
}

// BuildBFSTree runs the protocol and returns the per-vertex results.
func BuildBFSTree(nw *Network, rootID, horizon int, engine Engine) ([]BFSTreeResult, Stats, error) {
	res, err := nw.Run(engine, func(int) Process { return NewBFSTreeProcess(rootID, horizon) }, horizon+1)
	if err != nil {
		return nil, Stats{}, err
	}
	out := make([]BFSTreeResult, len(res.Outputs))
	for i, o := range res.Outputs {
		out[i] = o.(BFSTreeResult)
	}
	return out, res.Stats, nil
}
