package local

import (
	"testing"

	"localmds/internal/gen"
)

func TestElectLeader(t *testing.T) {
	g := gen.Cycle(10)
	nw, err := NewNetwork(g, []int{5, 9, 3, 7, 1, 8, 2, 6, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := ElectLeader(nw, g.Diameter()+2, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	leaders := 0
	for v, r := range results {
		if r.LeaderID != 0 {
			t.Errorf("vertex %d elected %d, want 0", v, r.LeaderID)
		}
		if r.IsLeader {
			leaders++
			if nw.IDs()[v] != 0 {
				t.Errorf("vertex %d claims leadership with id %d", v, nw.IDs()[v])
			}
		}
	}
	if leaders != 1 {
		t.Errorf("%d leaders, want 1", leaders)
	}
	if stats.Rounds == 0 {
		t.Error("no rounds recorded")
	}
}

func TestElectLeaderEnginesAgree(t *testing.T) {
	g := gen.Grid(4, 4)
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, sa, err := ElectLeader(nw, 10, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := ElectLeader(nw, 10, Parallel)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Errorf("stats differ: %+v vs %+v", sa, sb)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Errorf("vertex %d: %+v vs %+v", v, a[v], b[v])
		}
	}
}

func TestBuildBFSTree(t *testing.T) {
	g := gen.Path(7)
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := BuildBFSTree(nw, 0, g.Diameter()+2, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range results {
		if r.Depth != v {
			t.Errorf("vertex %d: depth %d, want %d", v, r.Depth, v)
		}
		wantParent := v - 1
		if v == 0 {
			wantParent = -1
		}
		if r.ParentID != wantParent {
			t.Errorf("vertex %d: parent %d, want %d", v, r.ParentID, wantParent)
		}
	}
}

func TestBuildBFSTreeGridDepths(t *testing.T) {
	g := gen.Grid(4, 5)
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := BuildBFSTree(nw, 0, g.Diameter()+2, Parallel)
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFSFrom(0)
	for v, r := range results {
		if r.Depth != dist[v] {
			t.Errorf("vertex %d: depth %d, want BFS distance %d", v, r.Depth, dist[v])
		}
	}
}

func TestBuildBFSTreeShortHorizon(t *testing.T) {
	// Vertices beyond the horizon stay unreached (depth -1).
	g := gen.Path(10)
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := BuildBFSTree(nw, 0, 3, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if results[9].Depth != -1 {
		t.Errorf("far vertex reached within 3 rounds: %+v", results[9])
	}
	if results[1].Depth != 1 {
		t.Errorf("near vertex not reached: %+v", results[1])
	}
}

func TestWordAccounting(t *testing.T) {
	g := gen.Cycle(6)
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := GatherViews(nw, 4, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Words <= stats.Messages {
		t.Errorf("gather words %d should exceed message count %d (payloads are records)", stats.Words, stats.Messages)
	}
	if stats.MaxMessageWords < 3 {
		t.Errorf("MaxMessageWords = %d, want >= 3 (id + two neighbors)", stats.MaxMessageWords)
	}
}
