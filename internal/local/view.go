package local

import (
	"sort"

	"localmds/internal/graph"
)

// View is the knowledge a vertex has accumulated about its neighborhood:
// adjacency lists keyed by identifier. After r rounds of the gathering
// protocol a vertex knows the identifiers of every vertex at distance <= r
// and the full adjacency list of every vertex at distance <= r-1.
type View struct {
	CenterID int
	// Adj maps a known vertex's identifier to its full adjacency list
	// (sorted identifiers). Vertices that are known to exist but whose
	// adjacency has not arrived yet are absent from Adj but may appear
	// inside other adjacency lists.
	Adj map[int][]int
}

// KnownIDs returns every identifier present in the view (as an adjacency
// key or inside a list), sorted.
func (v *View) KnownIDs() []int {
	set := map[int]bool{v.CenterID: true}
	for id, nbrs := range v.Adj {
		set[id] = true
		for _, u := range nbrs {
			set[u] = true
		}
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Graph materializes the view's resolved portion as a graph.Graph: the
// vertices with known adjacency plus the frontier vertices referenced by
// them, with every known edge. It returns the graph, the sorted identifier
// slice mapping local index -> identifier, and the center's local index.
// The graph is batch-built (FromEdgesUnchecked collapses the duplicates
// arising from both endpoints reporting an edge), avoiding the per-edge
// HasEdge/AddEdge cost this path used to pay.
func (v *View) Graph() (*graph.Graph, []int, int) {
	ids := v.KnownIDs()
	index := make(map[int]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	total := 0
	for _, nbrs := range v.Adj {
		total += len(nbrs)
	}
	edges := make([][2]int, 0, total)
	for id, nbrs := range v.Adj {
		a := index[id]
		for _, u := range nbrs {
			if b := index[u]; a != b {
				edges = append(edges, [2]int{a, b})
			}
		}
	}
	g := graph.FromEdgesUnchecked(len(ids), edges)
	// View graphs are traversal-heavy and never mutated: freeze them so
	// the many Ball/BFS calls the deciders run take the CSR fast path.
	g.Freeze()
	return g, ids, index[v.CenterID]
}

// gatherRecord is one adjacency fact: a vertex identifier and its full
// neighbor list. The nbrs slice is immutable and shared by every copy of
// the record as it floods outward — forwarding never copies it.
type gatherRecord struct {
	id   int
	nbrs []int
}

// gatherMsg carries a batch of adjacency facts as a flat record slice.
type gatherMsg struct {
	records []gatherRecord
}

// Gatherer is the reusable core of the ball-gathering protocol: in round 1
// the vertex announces its identifier; in round 2 its (now known) adjacency
// list; from then on it forwards every record it has not seen before.
// Algorithms embed a Gatherer for their knowledge-collection phase and
// read the accumulated View afterwards.
//
// Forwarding is allocation-free in steady state: the outbox backing array
// is reused every round, and outgoing messages alternate between two
// embedded gatherMsg buffers. The double buffer is safe because a message
// sent in round r is only read during the compute phase of round r+1,
// strictly before the sender's round r+2 overwrites that buffer (the
// simulator runs one barrier per round).
type Gatherer struct {
	info   NodeInfo
	nbrIDs []int // learned in round 1, indexed by port
	adj    map[int][]int
	outBuf []Message    // reused outbox backing array
	ownBuf []int        // optional preallocated space for the own record
	msgBuf [2]gatherMsg // double-buffered outgoing messages
}

// adjMapHint caps the initial sizing of the per-vertex adjacency map: large
// enough that typical bounded-radius balls never rehash, small enough that
// an n-vertex run does not reserve O(n) space per vertex up front.
const adjMapHint = 64

// recordBufCap is the record capacity GatherViews preallocates per message
// buffer: bounded-radius gathers rarely forward more records in one round.
const recordBufCap = 32

// Init prepares the gatherer for a run. Buffers already seeded with enough
// capacity (see the arena in GatherViews) are reused instead of
// reallocated; a zero-value Gatherer allocates its own.
func (p *Gatherer) Init(info NodeInfo) {
	p.info = info
	if cap(p.nbrIDs) >= info.Ports {
		p.nbrIDs = p.nbrIDs[:info.Ports]
	} else {
		p.nbrIDs = make([]int, info.Ports)
	}
	for i := range p.nbrIDs {
		p.nbrIDs[i] = -1
	}
	hint := adjMapHint
	if info.N < hint {
		hint = info.N
	}
	p.adj = make(map[int][]int, hint)
	if cap(p.outBuf) >= info.Ports {
		p.outBuf = p.outBuf[:info.Ports]
	} else {
		p.outBuf = make([]Message, info.Ports)
	}
	p.msgBuf[0].records = p.msgBuf[0].records[:0]
	p.msgBuf[1].records = p.msgBuf[1].records[:0]
}

// ensureRecordCap grows a message buffer to its working capacity exactly
// once, on first use, so the per-round appends never reallocate from a
// tiny capacity upward.
func (p *Gatherer) ensureRecordCap(msg *gatherMsg) {
	if cap(msg.records) < recordBufCap {
		msg.records = make([]gatherRecord, 0, recordBufCap)
	}
}

// broadcast fills the reused outbox with msg on every port.
func (p *Gatherer) broadcast(msg Message) []Message {
	for i := range p.outBuf {
		p.outBuf[i] = msg
	}
	return p.outBuf
}

// Step executes one protocol round and returns the outbox for it. The
// returned slice and its messages are owned by the gatherer and remain
// valid only through the next round's delivery, which is exactly the
// simulator's contract.
func (p *Gatherer) Step(round int, inbox []Message) []Message {
	switch round {
	case 1:
		// Announce own identifier.
		return p.broadcast(p.info.ID)
	case 2:
		// Learn neighbor identifiers; record and announce own adjacency.
		for port, m := range inbox {
			if id, ok := m.(int); ok {
				p.nbrIDs[port] = id
			}
		}
		var own []int
		if cap(p.ownBuf) >= len(p.nbrIDs) {
			// The own record outlives the run inside View.Adj, so the
			// preallocated space is consumed exactly once.
			own = p.ownBuf[:len(p.nbrIDs)]
			p.ownBuf = nil
			copy(own, p.nbrIDs)
		} else {
			own = append([]int(nil), p.nbrIDs...)
		}
		sort.Ints(own)
		p.adj[p.info.ID] = own
		msg := &p.msgBuf[round&1]
		p.ensureRecordCap(msg)
		msg.records = append(msg.records[:0], gatherRecord{id: p.info.ID, nbrs: own})
		return p.broadcast(msg)
	default:
		// Merge incoming records; forward the ones that are new to us. The
		// buffer keeps its capacity across rounds, so the appends below
		// are allocation-free once it has grown to the round's
		// fresh-record high-water mark.
		msg := &p.msgBuf[round&1]
		p.ensureRecordCap(msg)
		fresh := msg.records[:0]
		for _, m := range inbox {
			gm, ok := m.(*gatherMsg)
			if !ok {
				continue
			}
			for _, rec := range gm.records {
				if _, known := p.adj[rec.id]; !known {
					p.adj[rec.id] = rec.nbrs
					fresh = append(fresh, rec)
				}
			}
		}
		msg.records = fresh
		if len(fresh) == 0 {
			return nil
		}
		return p.broadcast(msg)
	}
}

// NeighborIDs returns the identifiers behind each port (valid after
// round 2).
func (p *Gatherer) NeighborIDs() []int { return p.nbrIDs }

// View returns the accumulated knowledge.
func (p *Gatherer) View() *View {
	return &View{CenterID: p.info.ID, Adj: p.adj}
}

// gatherProcess runs a Gatherer for a fixed number of rounds.
type gatherProcess struct {
	rounds int
	g      Gatherer
}

// NewGatherProcess returns a Process executing rounds rounds of the
// gathering protocol and outputting a *View.
func NewGatherProcess(rounds int) Process {
	return &gatherProcess{rounds: rounds}
}

func (p *gatherProcess) Init(info NodeInfo) { p.g.Init(info) }

func (p *gatherProcess) Round(round int, inbox []Message) ([]Message, bool) {
	out := p.g.Step(round, inbox)
	return out, round >= p.rounds
}

func (p *gatherProcess) Output() any { return p.g.View() }

// GatherViews runs rounds rounds of the gathering protocol on the network
// and returns the per-vertex views plus run statistics. After r rounds,
// view v contains the adjacency of every vertex at distance <= r-2 from v
// and the identifiers of every vertex at distance <= r-1 (records travel
// one hop per round starting in round 2).
//
// The processes for all n vertices are carved out of one slab, with their
// port-indexed buffers (neighbor ids, own-record space, outbox) sliced out
// of shared arrays sized by the total degree — a handful of allocations
// for the whole network instead of several per vertex.
func GatherViews(nw *Network, rounds int, engine Engine) ([]*View, Stats, error) {
	n := nw.Topo().N()
	offsets := nw.wires.offsets
	total := int(offsets[n])
	procs := make([]gatherProcess, n)
	ints := make([]int, 2*total) // first half: nbrIDs; second half: own records
	msgs := make([]Message, total)
	// Record buffers come from a slab too: every vertex grows both of its
	// message buffers to recordBufCap anyway (ensureRecordCap), and one
	// contiguous allocation beats 2n separate ones on both alloc count and
	// bytes (measured on BenchmarkSimulatorBallGatherLarge).
	recs := make([]gatherRecord, 2*recordBufCap*n)
	for v := 0; v < n; v++ {
		lo, hi := int(offsets[v]), int(offsets[v+1])
		g := &procs[v].g
		procs[v].rounds = rounds
		g.nbrIDs = ints[lo:hi:hi]
		g.ownBuf = ints[total+lo : total+hi : total+hi]
		g.outBuf = msgs[lo:hi:hi]
		r0 := 2 * recordBufCap * v
		g.msgBuf[0].records = recs[r0 : r0 : r0+recordBufCap]
		g.msgBuf[1].records = recs[r0+recordBufCap : r0+recordBufCap : r0+2*recordBufCap]
	}
	res, err := nw.Run(engine, func(v int) Process { return &procs[v] }, rounds+1)
	if err != nil {
		return nil, Stats{}, err
	}
	views := make([]*View, len(res.Outputs))
	for i, out := range res.Outputs {
		views[i] = out.(*View)
	}
	return views, res.Stats, nil
}
