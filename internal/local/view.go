package local

import (
	"sort"

	"localmds/internal/graph"
)

// View is the knowledge a vertex has accumulated about its neighborhood:
// adjacency lists keyed by identifier. After r rounds of the gathering
// protocol a vertex knows the identifiers of every vertex at distance <= r
// and the full adjacency list of every vertex at distance <= r-1.
type View struct {
	CenterID int
	// Adj maps a known vertex's identifier to its full adjacency list
	// (sorted identifiers). Vertices that are known to exist but whose
	// adjacency has not arrived yet are absent from Adj but may appear
	// inside other adjacency lists.
	Adj map[int][]int
}

// KnownIDs returns every identifier present in the view (as an adjacency
// key or inside a list), sorted.
func (v *View) KnownIDs() []int {
	set := map[int]bool{v.CenterID: true}
	for id, nbrs := range v.Adj {
		set[id] = true
		for _, u := range nbrs {
			set[u] = true
		}
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Graph materializes the view's resolved portion as a graph.Graph: the
// vertices with known adjacency plus the frontier vertices referenced by
// them, with every known edge. It returns the graph, the sorted identifier
// slice mapping local index -> identifier, and the center's local index.
func (v *View) Graph() (*graph.Graph, []int, int) {
	ids := v.KnownIDs()
	index := make(map[int]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	g := graph.New(len(ids))
	for id, nbrs := range v.Adj {
		for _, u := range nbrs {
			a, b := index[id], index[u]
			if a != b && !g.HasEdge(a, b) {
				g.AddEdge(a, b)
			}
		}
	}
	return g, ids, index[v.CenterID]
}

// gatherMsg carries adjacency facts: a set of (vertex, adjacency) records.
type gatherMsg struct {
	records map[int][]int
}

// Gatherer is the reusable core of the ball-gathering protocol: in round 1
// the vertex announces its identifier; in round 2 its (now known) adjacency
// list; from then on it forwards every record it has not seen before.
// Algorithms embed a Gatherer for their knowledge-collection phase and
// read the accumulated View afterwards.
type Gatherer struct {
	info   NodeInfo
	nbrIDs []int // learned in round 1, indexed by port
	adj    map[int][]int
}

// Init prepares the gatherer for a run.
func (p *Gatherer) Init(info NodeInfo) {
	p.info = info
	p.nbrIDs = make([]int, info.Ports)
	for i := range p.nbrIDs {
		p.nbrIDs[i] = -1
	}
	p.adj = make(map[int][]int)
}

// Step executes one protocol round and returns the outbox for it.
func (p *Gatherer) Step(round int, inbox []Message) []Message {
	switch round {
	case 1:
		// Announce own identifier.
		return Broadcast(p.info.Ports, p.info.ID)
	case 2:
		// Learn neighbor identifiers; record and announce own adjacency.
		for port, m := range inbox {
			if id, ok := m.(int); ok {
				p.nbrIDs[port] = id
			}
		}
		own := append([]int(nil), p.nbrIDs...)
		sort.Ints(own)
		p.adj[p.info.ID] = own
		msg := &gatherMsg{records: map[int][]int{p.info.ID: own}}
		return Broadcast(p.info.Ports, msg)
	default:
		// Merge incoming records; forward the ones that are new to us.
		fresh := make(map[int][]int)
		for _, m := range inbox {
			gm, ok := m.(*gatherMsg)
			if !ok {
				continue
			}
			for id, nbrs := range gm.records {
				if _, known := p.adj[id]; !known {
					p.adj[id] = nbrs
					fresh[id] = nbrs
				}
			}
		}
		if len(fresh) == 0 {
			return nil
		}
		return Broadcast(p.info.Ports, &gatherMsg{records: fresh})
	}
}

// NeighborIDs returns the identifiers behind each port (valid after
// round 2).
func (p *Gatherer) NeighborIDs() []int { return p.nbrIDs }

// View returns the accumulated knowledge.
func (p *Gatherer) View() *View {
	return &View{CenterID: p.info.ID, Adj: p.adj}
}

// gatherProcess runs a Gatherer for a fixed number of rounds.
type gatherProcess struct {
	rounds int
	g      Gatherer
}

// NewGatherProcess returns a Process executing rounds rounds of the
// gathering protocol and outputting a *View.
func NewGatherProcess(rounds int) Process {
	return &gatherProcess{rounds: rounds}
}

func (p *gatherProcess) Init(info NodeInfo) { p.g.Init(info) }

func (p *gatherProcess) Round(round int, inbox []Message) ([]Message, bool) {
	out := p.g.Step(round, inbox)
	return out, round >= p.rounds
}

func (p *gatherProcess) Output() any { return p.g.View() }

// GatherViews runs rounds rounds of the gathering protocol on the network
// and returns the per-vertex views plus run statistics. After r rounds,
// view v contains the adjacency of every vertex at distance <= r-2 from v
// and the identifiers of every vertex at distance <= r-1 (records travel
// one hop per round starting in round 2).
func GatherViews(nw *Network, rounds int, engine Engine) ([]*View, Stats, error) {
	res, err := nw.Run(engine, func(int) Process { return NewGatherProcess(rounds) }, rounds+1)
	if err != nil {
		return nil, Stats{}, err
	}
	views := make([]*View, len(res.Outputs))
	for i, out := range res.Outputs {
		views[i] = out.(*View)
	}
	return views, res.Stats, nil
}
