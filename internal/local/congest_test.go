package local

import (
	"strings"
	"testing"

	"localmds/internal/gen"
)

func TestRunCONGESTAllowsSmallMessages(t *testing.T) {
	// Leader election ships single identifiers: fine under a 1-word
	// limit.
	g := gen.Cycle(8)
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	horizon := g.Diameter() + 2
	res, err := nw.RunCONGEST(Sequential, func(int) Process { return NewLeaderProcess(horizon) }, horizon+1, 1)
	if err != nil {
		t.Fatalf("RunCONGEST: %v", err)
	}
	for _, o := range res.Outputs {
		if o.(LeaderResult).LeaderID != 0 {
			t.Error("leader election failed under CONGEST")
		}
	}
}

func TestRunCONGESTRejectsGathering(t *testing.T) {
	// Ball gathering ships adjacency records: violates a 2-word limit as
	// soon as a degree-2 vertex announces its adjacency (1 key + 2
	// neighbors = 3 words).
	g := gen.Cycle(8)
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = nw.RunCONGEST(Sequential, func(int) Process { return NewGatherProcess(4) }, 6, 2)
	if err == nil {
		t.Fatal("gathering passed under CONGEST limit")
	}
	if !strings.Contains(err.Error(), "CONGEST violation") {
		t.Errorf("unexpected error: %v", err)
	}
}
