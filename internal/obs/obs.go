// Package obs is the dependency-free observability core behind the solve
// stack: in-process span trees with deterministic IDs (span.go, exported
// as JSON or Chrome trace events for Perfetto), fixed-bucket Prometheus
// histograms with canonical text rendering (histogram.go), a ring-buffered
// publish/subscribe bus for job lifecycle events (events.go), and a
// background sampler for runtime gauges (runtime.go).
//
// The package imports only the standard library, so every layer — core's
// staged solvers, the runner pool, the mdsd service, and the CLIs — can
// depend on it without cycles. Everything is safe for concurrent use, and
// every knob that involves time accepts an injectable clock so tests can
// drive it deterministically.
package obs
