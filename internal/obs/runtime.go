package obs

import (
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeSnapshot is one sample of the process-level gauges served on
// /metrics next to the service counters.
type RuntimeSnapshot struct {
	// SampledAt stamps the collection instant; zero until the first
	// sample lands.
	SampledAt time.Time
	// Goroutines is runtime.NumGoroutine.
	Goroutines int
	// HeapBytes is the live heap (/memory/classes/heap/objects:bytes).
	HeapBytes uint64
	// GCPauseTotal is the cumulative stop-the-world pause time.
	GCPauseTotal time.Duration
	// GCCycles is the completed GC cycle count.
	GCCycles uint64
}

// runtimeMetrics are the runtime/metrics samples the collector reads;
// reading them does not stop the world.
var runtimeMetrics = []string{
	"/memory/classes/heap/objects:bytes",
	"/gc/pauses:seconds",
	"/gc/cycles/total:gc-cycles",
}

// sampleRuntime reads one snapshot directly.
func sampleRuntime(now time.Time) RuntimeSnapshot {
	sample := make([]metrics.Sample, len(runtimeMetrics))
	for i, name := range runtimeMetrics {
		sample[i].Name = name
	}
	metrics.Read(sample)
	snap := RuntimeSnapshot{
		SampledAt:  now,
		Goroutines: runtime.NumGoroutine(),
		HeapBytes:  sample[0].Value.Uint64(),
		GCCycles:   sample[2].Value.Uint64(),
	}
	// /gc/pauses:seconds is a histogram of individual pauses; its
	// weighted sum is the cumulative pause time.
	if h := sample[1].Value.Float64Histogram(); h != nil {
		var total float64
		for i, count := range h.Counts {
			// Buckets are [Buckets[i], Buckets[i+1]); weight each by its
			// lower edge — a stable under-approximation that avoids the
			// +Inf upper edge of the last bucket.
			edge := h.Buckets[i]
			if edge < 0 || edge != edge { // -Inf first edge, NaN guard
				edge = 0
			}
			total += float64(count) * edge
		}
		snap.GCPauseTotal = time.Duration(total * float64(time.Second))
	}
	return snap
}

// Collector samples the runtime gauges on a fixed interval from one
// background goroutine, so /metrics scrapes read a recent snapshot
// instead of paying (and double-counting) the sampling cost per scrape.
type Collector struct {
	mu   sync.Mutex
	last RuntimeSnapshot
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartCollector begins sampling every interval (<= 0 selects 5s). The
// first sample is taken synchronously so Last never returns a zero
// snapshot.
func StartCollector(interval time.Duration) *Collector {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	c := &Collector{stop: make(chan struct{}), done: make(chan struct{})}
	c.last = sampleRuntime(time.Now())
	//mdsvet:ignore boundedgo -- one sampler goroutine per collector lifetime, joined by Stop; not request-scoped
	go func() {
		defer close(c.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case now := <-t.C:
				snap := sampleRuntime(now)
				c.mu.Lock()
				c.last = snap
				c.mu.Unlock()
			}
		}
	}()
	return c
}

// Last returns the most recent snapshot.
func (c *Collector) Last() RuntimeSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Refresh forces an immediate sample (the /metrics handler calls it when
// the last one is stale, keeping scrapes fresh without a fast ticker).
func (c *Collector) Refresh() RuntimeSnapshot {
	snap := sampleRuntime(time.Now())
	c.mu.Lock()
	c.last = snap
	c.mu.Unlock()
	return snap
}

// Stop ends the sampler goroutine and waits for it. Idempotent.
func (c *Collector) Stop() {
	c.once.Do(func() {
		close(c.stop)
		<-c.done
	})
}
