package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Attrs are kept as an
// ordered slice, not a map, so a trace marshals identically every time.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed region of a trace. Spans form a tree: StartChild
// creates a child, End closes the region. A Span is safe to end exactly
// once; its fields are written by the owning goroutine and read only
// after End (or under the trace lock by snapshotters).
type Span struct {
	tr       *Trace
	id       string
	parent   string
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children int // child counter, for deterministic child IDs
	mu       sync.Mutex
}

// Trace collects the spans of one traced operation (a request, a job, a
// CLI solve). Span IDs are derived deterministically from the trace ID
// and each span's path (parent ID, name, sibling index), so two runs of
// the same request produce identical IDs — diffable traces, stable test
// assertions.
//
// MaxSpans bounds memory: a huge instance can have hundreds of thousands
// of per-component spans, and a trace is retained for as long as its job.
// Spans beyond the cap are counted in Dropped() instead of stored.
type Trace struct {
	id  string
	max int

	mu      sync.Mutex
	spans   []*Span
	dropped int
	now     func() time.Time
}

// TraceOptions tunes NewTrace.
type TraceOptions struct {
	// MaxSpans caps retained spans; <= 0 selects 1024. The root span is
	// always retained.
	MaxSpans int
	// Now is the clock; nil selects time.Now. Tests inject a fake.
	Now func() time.Time
}

// NewTrace creates a trace whose root span carries the given name. The
// trace ID seeds every span ID, so use a deterministic ID (the job or
// request ID) for reproducible traces.
func NewTrace(id, rootName string, opt TraceOptions) (*Trace, *Span) {
	if opt.MaxSpans <= 0 {
		opt.MaxSpans = 1024
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	tr := &Trace{id: id, max: opt.MaxSpans, now: opt.Now}
	root := &Span{tr: tr, id: spanID(id, "", rootName, 0), name: rootName, start: opt.Now()}
	tr.spans = append(tr.spans, root)
	return tr, root
}

// ID returns the trace ID.
func (t *Trace) ID() string { return t.id }

// Dropped returns how many spans were discarded over MaxSpans.
func (t *Trace) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// spanID derives a deterministic 64-bit span ID from the trace ID, the
// parent's ID, the span name, and the sibling index.
func spanID(traceID, parentID, name string, sibling int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%s#%d", traceID, parentID, name, sibling)
	return fmt.Sprintf("%016x", h.Sum64())
}

// StartChild opens a child span under s. It never returns nil — when the
// trace is at MaxSpans the child is recorded only as a drop count but
// still usable (End is a no-op on dropped spans). Safe for concurrent
// callers (component solves fan out across goroutines).
func (s *Span) StartChild(name string) *Span {
	tr := s.tr
	s.mu.Lock()
	sibling := s.children
	s.children++
	s.mu.Unlock()
	child := &Span{
		tr:     tr,
		id:     spanID(tr.id, s.id, name, sibling),
		parent: s.id,
		name:   name,
		start:  tr.now(),
	}
	tr.mu.Lock()
	if len(tr.spans) >= tr.max {
		tr.dropped++
	} else {
		tr.spans = append(tr.spans, child)
	}
	tr.mu.Unlock()
	return child
}

// SetAttr annotates the span. Call before or after End, from the owning
// goroutine.
func (s *Span) SetAttr(key string, value any) {
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: fmt.Sprint(value)})
	s.mu.Unlock()
}

// End closes the span. Ending an already-ended span keeps the first end
// time.
func (s *Span) End() {
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = s.tr.now()
	}
	s.mu.Unlock()
}

// EndAt closes the span at an explicit instant — for regions whose
// boundaries were measured elsewhere (e.g. queue wait reconstructed from
// job timestamps).
func (s *Span) EndAt(t time.Time) {
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = t
	}
	s.mu.Unlock()
}

// SetStart rewrites the span's start instant; same use as EndAt.
func (s *Span) SetStart(t time.Time) {
	s.mu.Lock()
	s.start = t
	s.mu.Unlock()
}

// SpanView is the JSON form of one span, children nested.
type SpanView struct {
	ID       string     `json:"id"`
	Name     string     `json:"name"`
	Start    time.Time  `json:"start"`
	DurNS    int64      `json:"dur_ns"`
	Open     bool       `json:"open,omitempty"` // span never ended
	Attrs    []Attr     `json:"attrs,omitempty"`
	Children []SpanView `json:"children,omitempty"`
}

// TraceView is the JSON form of a whole trace, served by
// GET /v1/jobs/{id}/trace.
type TraceView struct {
	TraceID string     `json:"trace_id"`
	Dropped int        `json:"dropped_spans,omitempty"`
	Root    *SpanView  `json:"root,omitempty"`
	Orphans []SpanView `json:"orphans,omitempty"` // parent dropped over MaxSpans
}

// snapshotLocked copies one span under its own lock.
func (s *Span) snapshot(now time.Time) (SpanView, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := SpanView{
		ID:    s.id,
		Name:  s.name,
		Start: s.start,
		Attrs: append([]Attr(nil), s.attrs...),
	}
	end := s.end
	if end.IsZero() {
		v.Open = true
		end = now
	}
	v.DurNS = end.Sub(s.start).Nanoseconds()
	return v, s.parent
}

// View snapshots the trace as a nested tree. Children appear in a
// deterministic order: by start time, then by ID. Spans still open are
// marked Open with their duration measured to "now".
func (t *Trace) View() TraceView {
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	dropped := t.dropped
	now := t.now()
	t.mu.Unlock()

	views := make([]SpanView, len(spans))
	parents := make([]string, len(spans))
	index := make(map[string]int, len(spans))
	for i, s := range spans {
		views[i], parents[i] = s.snapshot(now)
		index[views[i].ID] = i
	}
	childIdx := make(map[string][]int)
	for i := range views {
		if parents[i] == "" {
			continue
		}
		childIdx[parents[i]] = append(childIdx[parents[i]], i)
	}
	var build func(i int) SpanView
	build = func(i int) SpanView {
		v := views[i]
		kids := childIdx[v.ID]
		sort.Slice(kids, func(a, b int) bool {
			va, vb := views[kids[a]], views[kids[b]]
			if !va.Start.Equal(vb.Start) {
				return va.Start.Before(vb.Start)
			}
			return va.ID < vb.ID
		})
		for _, k := range kids {
			v.Children = append(v.Children, build(k))
		}
		return v
	}
	out := TraceView{TraceID: t.id, Dropped: dropped}
	for i := range views {
		if parents[i] == "" {
			root := build(i)
			out.Root = &root
			continue
		}
		if _, ok := index[parents[i]]; !ok {
			out.Orphans = append(out.Orphans, build(i))
		}
	}
	return out
}

// MarshalJSON serves the nested view.
func (t *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.View())
}
