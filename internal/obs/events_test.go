package obs

import (
	"sync"
	"testing"
	"time"
)

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus(16, nil)
	sub := b.Subscribe(0, 8)
	defer sub.Cancel()
	b.Publish(Event{Type: EventSubmitted, JobID: "job-1"})
	b.Publish(Event{Type: EventDone, JobID: "job-1"})
	ev1 := <-sub.C
	ev2 := <-sub.C
	if ev1.Type != EventSubmitted || ev2.Type != EventDone {
		t.Errorf("got %q then %q", ev1.Type, ev2.Type)
	}
	if ev1.Seq != 1 || ev2.Seq != 2 {
		t.Errorf("seqs = %d, %d, want 1, 2", ev1.Seq, ev2.Seq)
	}
	if ev1.Time.IsZero() {
		t.Error("event not time-stamped")
	}
}

func TestBusRingReplayForLateSubscribers(t *testing.T) {
	b := NewBus(4, nil)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Type: EventDone, JobID: "job"})
	}
	// Ring holds the last 4 events: seqs 7..10.
	sub := b.Subscribe(0, 16)
	defer sub.Cancel()
	var seqs []uint64
	for i := 0; i < 4; i++ {
		seqs = append(seqs, (<-sub.C).Seq)
	}
	for i, want := range []uint64{7, 8, 9, 10} {
		if seqs[i] != want {
			t.Fatalf("replayed seqs = %v, want [7 8 9 10]", seqs)
		}
	}
	// afterSeq skips already-seen history.
	sub2 := b.Subscribe(9, 16)
	defer sub2.Cancel()
	if got := (<-sub2.C).Seq; got != 10 {
		t.Errorf("afterSeq=9 first event seq = %d, want 10", got)
	}
	select {
	case ev := <-sub2.C:
		t.Errorf("unexpected extra replayed event %+v", ev)
	default:
	}
}

func TestBusSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := NewBus(16, nil)
	sub := b.Subscribe(0, 2)
	defer sub.Cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			b.Publish(Event{Type: EventDone})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
	if sub.Dropped() != 48 {
		t.Errorf("dropped = %d, want 48 (buffer 2 of 50)", sub.Dropped())
	}
}

func TestBusCloseEndsStreams(t *testing.T) {
	b := NewBus(16, nil)
	sub := b.Subscribe(0, 8)
	b.Publish(Event{Type: EventDone})
	b.Close()
	b.Close() // idempotent
	var got []Event
	for ev := range sub.C {
		got = append(got, ev)
	}
	if len(got) != 1 {
		t.Errorf("events before close = %d, want 1", len(got))
	}
	// Publishing after close is a silent no-op; Cancel after close too.
	b.Publish(Event{Type: EventDone})
	sub.Cancel()
	// Subscribing to a closed bus yields a closed (but replayed) channel.
	sub2 := b.Subscribe(0, 8)
	n := 0
	for range sub2.C {
		n++
	}
	if n != 1 {
		t.Errorf("closed-bus replay = %d events, want 1", n)
	}
}

func TestBusConcurrentPublishOrdered(t *testing.T) {
	b := NewBus(4096, nil)
	sub := b.Subscribe(0, 4096)
	var wg sync.WaitGroup
	const publishers, each = 8, 100
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				b.Publish(Event{Type: EventDone})
			}
		}()
	}
	wg.Wait()
	b.Close()
	var last uint64
	n := 0
	for ev := range sub.C {
		if ev.Seq <= last {
			t.Fatalf("sequence not strictly increasing: %d after %d", ev.Seq, last)
		}
		last = ev.Seq
		n++
	}
	if n != publishers*each {
		t.Errorf("delivered = %d, want %d", n, publishers*each)
	}
}

func TestCollectorSamples(t *testing.T) {
	c := StartCollector(time.Hour) // ticker never fires; first sample is sync
	defer c.Stop()
	snap := c.Last()
	if snap.Goroutines <= 0 {
		t.Errorf("goroutines = %d", snap.Goroutines)
	}
	if snap.HeapBytes == 0 {
		t.Error("heap bytes = 0")
	}
	if snap.SampledAt.IsZero() {
		t.Error("snapshot not stamped")
	}
	snap2 := c.Refresh()
	if !snap2.SampledAt.After(snap.SampledAt) {
		t.Error("Refresh did not advance the sample time")
	}
	c.Stop() // idempotent
}
