package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket Prometheus-style histogram: lock-free
// observation (atomic per-bucket counters plus a CAS-looped float sum),
// canonical text rendering (_bucket in ascending le order with a +Inf
// bucket, then _sum, then _count — cumulative counts, as the exposition
// format requires).
type Histogram struct {
	bounds []float64       // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, non-cumulative per bucket
	sum    atomic.Uint64   // math.Float64bits of the running sum
	count  atomic.Uint64
}

// DefBuckets covers request/solve latencies from 100µs to 30s, in
// seconds — the unit every *_seconds metric observes in.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// NewHistogram creates a histogram over the given ascending upper
// bounds. A nil bounds slice selects DefBuckets. Panics on unsorted or
// empty bounds — a histogram's shape is a programming decision, not
// runtime input.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly ascending at %d: %g <= %g",
				i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Buckets are inclusive upper bounds (le): the value lands in the
	// first bucket whose bound is >= v, or the +Inf overflow bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Snapshot returns the cumulative bucket counts (one per bound, then
// +Inf), the value sum, and the observation count. Under concurrent
// observation the three are not guaranteed to be from one instant, but
// the cumulative counts are always non-decreasing.
func (h *Histogram) Snapshot() (cumulative []uint64, sum float64, count uint64) {
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return cumulative, math.Float64frombits(h.sum.Load()), h.count.Load()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest float form.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// renderInto writes the histogram's series in canonical order. labels is
// the rendered label set without braces ("" or `route="/v1/solve"`);
// every series of one family must come from the same Render call so
// HELP/TYPE appear once.
func (h *Histogram) renderInto(b *strings.Builder, name, labels string) {
	cum, sum, count := h.Snapshot()
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, bound := range h.bounds {
		fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(bound), cum[i])
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum[len(cum)-1])
	fmt.Fprintf(b, "%s_sum{%s} %s\n", name, labels, strconv.FormatFloat(sum, 'g', -1, 64))
	fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, count)
}

// Render emits one unlabeled histogram family: HELP, TYPE, buckets,
// sum, count.
func (h *Histogram) Render(b *strings.Builder, name, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum, sum, count := h.Snapshot()
	for i, bound := range h.bounds {
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatBound(bound), cum[i])
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum[len(cum)-1])
	fmt.Fprintf(b, "%s_sum %s\n", name, strconv.FormatFloat(sum, 'g', -1, 64))
	fmt.Fprintf(b, "%s_count %d\n", name, count)
}

// HistogramVec is a family of histograms keyed by one or more label
// values (e.g. route and outcome). Children are created on first use and
// never expire; the label-value space must therefore be bounded by
// construction (routes and status classes are, tenant names are not —
// keep those out of histogram labels).
type HistogramVec struct {
	name   string
	help   string
	labels []string
	bounds []float64

	mu       sync.Mutex
	children map[string]*Histogram // key = joined label values
}

// NewHistogramVec creates a labeled histogram family. nil bounds selects
// DefBuckets.
func NewHistogramVec(name, help string, labelNames []string, bounds []float64) *HistogramVec {
	if len(labelNames) == 0 {
		panic("obs: HistogramVec needs at least one label; use Histogram")
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{
		name:     name,
		help:     help,
		labels:   append([]string(nil), labelNames...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*Histogram),
	}
}

// With returns (creating on first use) the child histogram for the given
// label values, which must match the label names in count.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	h := v.children[key]
	if h == nil {
		h = NewHistogram(v.bounds)
		v.children[key] = h
	}
	return h
}

// Render emits the whole family: HELP and TYPE once, then every child's
// series with children ordered by their label values, each child's
// buckets in canonical order.
func (v *HistogramVec) Render(b *strings.Builder) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	children := make(map[string]*Histogram, len(keys))
	for _, k := range keys {
		children[k] = v.children[k]
	}
	v.mu.Unlock()
	sort.Strings(keys)

	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", v.name, v.help, v.name)
	for _, k := range keys {
		values := strings.Split(k, "\x00")
		var lb strings.Builder
		for i, name := range v.labels {
			if i > 0 {
				lb.WriteByte(',')
			}
			fmt.Fprintf(&lb, "%s=%q", name, values[i])
		}
		children[k].renderInto(b, v.name, lb.String())
	}
}
