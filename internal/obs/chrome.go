package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// This file exports a Trace in the Chrome trace-event format (the JSON
// array of "X" complete events that chrome://tracing and Perfetto load
// directly). Sequential spans nest on one track; concurrent spans (the
// component-solve fan-out) are packed onto extra tracks by a greedy
// interval assignment so overlapping regions never share a lane.

// chromeEvent is one complete ("ph": "X") trace event. Timestamps and
// durations are microseconds, per the format.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object form, which lets viewers show
// display-friendly metadata alongside the events.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	Meta        struct {
		TraceID string `json:"trace_id"`
		Dropped int    `json:"dropped_spans,omitempty"`
	} `json:"metadata"`
}

// WriteChromeTrace renders the trace for chrome://tracing / Perfetto.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	view := t.View()
	var flat []flatSpan
	if view.Root != nil {
		flatten(*view.Root, 0, &flat)
	}
	for _, o := range view.Orphans {
		flatten(o, 1, &flat)
	}

	// Greedy lane packing. "X" events render correctly on one tid only
	// when their intervals strictly nest, so each lane keeps a stack of
	// its open spans: a span may join a lane once every span that has
	// ended by its start is popped, if the remaining top is one of its
	// ancestors (or the lane is empty). Sequential traces stay on lane 0;
	// overlapping component solves spill onto fresh lanes.
	sort.SliceStable(flat, func(i, j int) bool {
		if flat[i].startUS != flat[j].startUS {
			return flat[i].startUS < flat[j].startUS
		}
		return flat[i].depth < flat[j].depth
	})
	parentOf := make(map[string]string, len(flat))
	for i := range flat {
		parentOf[flat[i].id] = flat[i].parent
	}
	isAncestor := func(anc, id string) bool {
		for p := parentOf[id]; p != ""; p = parentOf[p] {
			if p == anc {
				return true
			}
		}
		return false
	}
	type openSpan struct {
		id    string
		endUS float64
	}
	var lanes [][]openSpan
	lane := make(map[string]int, len(flat))
	for i := range flat {
		s := &flat[i]
		tryLane := func(l int) bool {
			st := lanes[l]
			for len(st) > 0 && st[len(st)-1].endUS <= s.startUS {
				st = st[:len(st)-1]
			}
			if len(st) > 0 && !isAncestor(st[len(st)-1].id, s.id) {
				lanes[l] = st
				return false
			}
			lanes[l] = append(st, openSpan{id: s.id, endUS: s.startUS + s.durUS})
			lane[s.id] = l
			return true
		}
		placed := false
		if p, ok := lane[s.parent]; ok {
			placed = tryLane(p) // prefer nesting under the parent
		}
		for l := 0; !placed && l < len(lanes); l++ {
			placed = tryLane(l)
		}
		if !placed {
			lanes = append(lanes, nil)
			tryLane(len(lanes) - 1)
		}
	}

	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(flat))}
	out.Meta.TraceID = view.TraceID
	out.Meta.Dropped = view.Dropped
	base := 0.0
	if len(flat) > 0 {
		base = flat[0].startUS
	}
	for _, s := range flat {
		ev := chromeEvent{
			Name: s.name,
			Cat:  "solve",
			Ph:   "X",
			TS:   s.startUS - base,
			Dur:  s.durUS,
			PID:  1,
			TID:  lane[s.id] + 1,
		}
		if len(s.attrs) > 0 {
			ev.Args = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// flatSpan is one span flattened for lane assignment.
type flatSpan struct {
	id, parent, name string
	startUS, durUS   float64
	depth            int
	attrs            []Attr
}

func flatten(v SpanView, depth int, out *[]flatSpan) {
	var walk func(v SpanView, parentID string, depth int)
	walk = func(v SpanView, parentID string, depth int) {
		*out = append(*out, flatSpan{
			id:      v.ID,
			parent:  parentID,
			name:    v.Name,
			startUS: float64(v.Start.UnixNano()) / 1e3,
			durUS:   float64(v.DurNS) / 1e3,
			depth:   depth,
			attrs:   v.Attrs,
		})
		for _, c := range v.Children {
			walk(c, v.ID, depth+1)
		}
	}
	walk(v, "", depth)
}
