package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeDeterministicIDs(t *testing.T) {
	build := func() TraceView {
		clock := newFakeClock()
		tr, root := NewTrace("job-000042", "job", TraceOptions{Now: clock.Now})
		clock.Advance(time.Millisecond)
		q := root.StartChild("queue_wait")
		clock.Advance(2 * time.Millisecond)
		q.End()
		solve := root.StartChild("solve")
		for i := 0; i < 3; i++ {
			c := solve.StartChild("component")
			clock.Advance(time.Millisecond)
			c.End()
		}
		solve.End()
		root.End()
		return tr.View()
	}
	a, b := build(), build()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Errorf("two identical runs produced different traces:\n%s\n%s", aj, bj)
	}
	if a.Root == nil || a.Root.Name != "job" {
		t.Fatalf("missing root: %+v", a)
	}
	if len(a.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(a.Root.Children))
	}
	solve := a.Root.Children[1]
	if len(solve.Children) != 3 {
		t.Fatalf("solve children = %d, want 3", len(solve.Children))
	}
	// Sibling spans with the same name still get distinct IDs.
	seen := map[string]bool{}
	for _, c := range solve.Children {
		if seen[c.ID] {
			t.Errorf("duplicate span ID %s", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestTraceMaxSpansDrops(t *testing.T) {
	tr, root := NewTrace("t", "root", TraceOptions{MaxSpans: 3})
	for i := 0; i < 10; i++ {
		c := root.StartChild("child")
		c.End() // ending a dropped span must be safe
	}
	if got := tr.Dropped(); got != 8 {
		t.Errorf("dropped = %d, want 8 (cap 3 = root + 2 children)", got)
	}
	v := tr.View()
	if len(v.Root.Children) != 2 {
		t.Errorf("retained children = %d, want 2", len(v.Root.Children))
	}
	if v.Dropped != 8 {
		t.Errorf("view dropped = %d, want 8", v.Dropped)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr, root := NewTrace("t", "root", TraceOptions{MaxSpans: 4096})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c := root.StartChild("c")
				c.SetAttr("i", i)
				c.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	v := tr.View()
	if len(v.Root.Children) != 800 {
		t.Errorf("children = %d, want 800", len(v.Root.Children))
	}
	ids := map[string]bool{}
	for _, c := range v.Root.Children {
		if ids[c.ID] {
			t.Errorf("duplicate concurrent span ID %s", c.ID)
		}
		ids[c.ID] = true
	}
}

func TestOpenSpansMarked(t *testing.T) {
	clock := newFakeClock()
	_, root := NewTrace("t", "root", TraceOptions{Now: clock.Now})
	child := root.StartChild("never_ended")
	clock.Advance(5 * time.Millisecond)
	v, _ := child.snapshot(clock.Now())
	if !v.Open {
		t.Error("un-ended span not marked open")
	}
	if v.DurNS != (5 * time.Millisecond).Nanoseconds() {
		t.Errorf("open span duration = %d, want 5ms", v.DurNS)
	}
}

func TestChromeTraceExport(t *testing.T) {
	clock := newFakeClock()
	tr, root := NewTrace("job-000001", "job", TraceOptions{Now: clock.Now})
	clock.Advance(time.Millisecond)
	solve := root.StartChild("solve")
	// Two overlapping "concurrent" component spans: both open before
	// either ends, so they must land on different lanes.
	c1 := solve.StartChild("component 0")
	c2 := solve.StartChild("component 1")
	clock.Advance(time.Millisecond)
	c1.End()
	c2.End()
	solve.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
		Metadata struct {
			TraceID string `json:"trace_id"`
		} `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if out.Metadata.TraceID != "job-000001" {
		t.Errorf("trace_id = %q", out.Metadata.TraceID)
	}
	if len(out.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(out.TraceEvents))
	}
	tids := map[string]int{}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		tids[ev.Name] = ev.TID
	}
	if tids["component 0"] == tids["component 1"] {
		t.Errorf("overlapping components share lane %d", tids["component 0"])
	}
	// job and solve nest (solve inside job), so they share the base lane.
	if tids["job"] != tids["solve"] {
		t.Errorf("nested job/solve on different lanes: %v", tids)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr, root := NewTrace("t", "root", TraceOptions{})
	root.SetAttr("source", "generator:ding")
	root.End()
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"trace_id":"t"`) {
		t.Errorf("marshal missing trace_id: %s", data)
	}
	if !strings.Contains(string(data), `"source"`) {
		t.Errorf("marshal missing attr: %s", data)
	}
}
