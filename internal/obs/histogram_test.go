package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is the injectable clock used across the obs tests: Now
// returns the current instant, Advance moves it.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestHistogramBucketMath drives a histogram with a fake clock measuring
// synthetic latencies and checks the bucket assignment edge cases: exact
// bound values land in their bucket (le is inclusive), values over the
// top bound land in +Inf only, and cumulative counts are non-decreasing.
func TestHistogramBucketMath(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	clock := newFakeClock()

	observeLatency := func(d time.Duration) {
		start := clock.Now()
		clock.Advance(d)
		h.ObserveDuration(clock.Now().Sub(start))
	}

	observeLatency(500 * time.Microsecond) // -> le=0.001
	observeLatency(1 * time.Millisecond)   // exact bound -> le=0.001 (inclusive)
	observeLatency(2 * time.Millisecond)   // -> le=0.01
	observeLatency(time.Second)            // exact top bound -> le=1
	observeLatency(30 * time.Second)       // -> +Inf only

	cum, sum, count := h.Snapshot()
	wantCum := []uint64{2, 3, 3, 4, 5}
	if len(cum) != len(wantCum) {
		t.Fatalf("cumulative buckets = %v, want %v", cum, wantCum)
	}
	for i := range wantCum {
		if cum[i] != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d (all: %v)", i, cum[i], wantCum[i], cum)
		}
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Errorf("cumulative counts decrease at %d: %v", i, cum)
		}
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	wantSum := 0.0005 + 0.001 + 0.002 + 1 + 30
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Errorf("sum = %g, want %g", sum, wantSum)
	}
}

func TestHistogramRenderCanonicalOrder(t *testing.T) {
	h := NewHistogram([]float64{0.5, 2.5})
	h.Observe(0.1)
	h.Observe(1)
	h.Observe(100)
	var b strings.Builder
	h.Render(&b, "x_seconds", "test histogram")
	want := `# HELP x_seconds test histogram
# TYPE x_seconds histogram
x_seconds_bucket{le="0.5"} 1
x_seconds_bucket{le="2.5"} 2
x_seconds_bucket{le="+Inf"} 3
x_seconds_sum 101.1
x_seconds_count 3
`
	if b.String() != want {
		t.Errorf("render:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestHistogramVecRender(t *testing.T) {
	v := NewHistogramVec("req_seconds", "by route and outcome", []string{"route", "outcome"}, []float64{1})
	v.With("/v1/solve", "2xx").Observe(0.5)
	v.With("/v1/solve", "2xx").Observe(2)
	v.With("/healthz", "2xx").Observe(0.1)
	var b strings.Builder
	v.Render(&b)
	out := b.String()
	want := `# HELP req_seconds by route and outcome
# TYPE req_seconds histogram
req_seconds_bucket{route="/healthz",outcome="2xx",le="1"} 1
req_seconds_bucket{route="/healthz",outcome="2xx",le="+Inf"} 1
req_seconds_sum{route="/healthz",outcome="2xx"} 0.1
req_seconds_count{route="/healthz",outcome="2xx"} 1
req_seconds_bucket{route="/v1/solve",outcome="2xx",le="1"} 1
req_seconds_bucket{route="/v1/solve",outcome="2xx",le="+Inf"} 2
req_seconds_sum{route="/v1/solve",outcome="2xx"} 2.5
req_seconds_count{route="/v1/solve",outcome="2xx"} 2
`
	if out != want {
		t.Errorf("render:\n%s\nwant:\n%s", out, want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%10) / 100)
			}
		}(w)
	}
	wg.Wait()
	cum, _, count := h.Snapshot()
	if count != workers*per {
		t.Errorf("count = %d, want %d", count, workers*per)
	}
	if cum[len(cum)-1] != workers*per {
		t.Errorf("+Inf cumulative = %d, want %d", cum[len(cum)-1], workers*per)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{{}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v): no panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}
