package obs

import (
	"sync"
	"time"
)

// Event lifecycle types, in the order one job can emit them.
const (
	EventSubmitted = "submitted" // accepted onto the queue
	EventStarted   = "started"   // a worker picked the job up
	EventCached    = "cached"    // served from the result cache, no work
	EventDone      = "done"      // finished with a result
	EventFailed    = "failed"    // finished with an error
	EventShed      = "shed"      // rejected: queue full, draining, or quota
	// EventStoreDegraded reports the one-way flip to memory-only caching
	// after a result-store I/O failure; Error carries the cause. It is a
	// daemon-lifecycle event, so the job fields are empty.
	EventStoreDegraded = "store_degraded"
)

// Event is one job-lifecycle record on the /v1/events stream. Seq is the
// bus's total order; late subscribers replaying ring history can detect
// gaps by discontinuous Seq.
type Event struct {
	Seq         uint64    `json:"seq"`
	Time        time.Time `json:"time"`
	Type        string    `json:"type"`
	JobID       string    `json:"job_id,omitempty"`
	Tenant      string    `json:"tenant,omitempty"`
	Source      string    `json:"source,omitempty"`
	Fingerprint string    `json:"fingerprint,omitempty"`
	// QueueWaitS is submitted→started, on started events.
	QueueWaitS float64 `json:"queue_wait_s,omitempty"`
	// SolveWallS is started→finished, on done/failed events.
	SolveWallS float64 `json:"solve_wall_s,omitempty"`
	// CacheAgeS is the served entry's age, on cached events.
	CacheAgeS float64 `json:"cache_age_s,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// Subscription is one subscriber's live feed. Events arrive on C —
// first any replayed ring history, then new events as they publish. C
// closes when the bus closes or the subscriber is cancelled. A consumer
// too slow for its buffer loses events (counted in Dropped) rather than
// stalling the publisher: publishing sits on the job hot path.
type Subscription struct {
	C <-chan Event

	bus     *Bus
	ch      chan Event
	dropped int
}

// Dropped reports how many events this subscriber lost to a full buffer.
// Racy by nature (the publisher may be dropping concurrently); exact
// once the subscription is cancelled.
func (s *Subscription) Dropped() int {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	return s.dropped
}

// Cancel detaches the subscriber and closes C. Idempotent, and safe
// against a concurrent Bus.Close: whoever removes the subscription from
// the bus's set (under the bus lock) is the one that closes the channel.
func (s *Subscription) Cancel() {
	s.bus.mu.Lock()
	if _, live := s.bus.subs[s]; live {
		delete(s.bus.subs, s)
		close(s.ch)
	}
	s.bus.mu.Unlock()
}

// Bus is the job-lifecycle event fabric: publishers stamp and fan out
// events to every subscriber, and a fixed ring buffer retains recent
// history so a late subscriber (a dashboard reconnecting, the CI smoke)
// still sees the events that just preceded it.
type Bus struct {
	mu     sync.Mutex
	ring   []Event // capacity-bounded, oldest first
	cap    int
	seq    uint64
	subs   map[*Subscription]struct{}
	closed bool
	now    func() time.Time
}

// NewBus creates a bus retaining ringSize events of history; <= 0
// selects 256. now == nil selects time.Now.
func NewBus(ringSize int, now func() time.Time) *Bus {
	if ringSize <= 0 {
		ringSize = 256
	}
	if now == nil {
		now = time.Now
	}
	return &Bus{cap: ringSize, subs: make(map[*Subscription]struct{}), now: now}
}

// Publish stamps ev with the next sequence number and the bus clock,
// appends it to the ring, and offers it to every subscriber without
// blocking. Publishing on a closed bus is a silent no-op (jobs may
// finish after drain closed the stream). Returns the stamped event.
func (b *Bus) Publish(ev Event) Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ev
	}
	b.seq++
	ev.Seq = b.seq
	if ev.Time.IsZero() {
		ev.Time = b.now()
	}
	if len(b.ring) == b.cap {
		copy(b.ring, b.ring[1:])
		b.ring[len(b.ring)-1] = ev
	} else {
		b.ring = append(b.ring, ev)
	}
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped++
		}
	}
	return ev
}

// Subscribe attaches a new subscriber with the given channel buffer
// (<= 0 selects 64). Events already in the ring with Seq > afterSeq are
// replayed into the buffer first — pass 0 for all retained history, or
// the last Seq a reconnecting client saw. On a closed bus the returned
// subscription's channel is already closed (after any replay).
func (b *Bus) Subscribe(afterSeq uint64, buffer int) *Subscription {
	if buffer <= 0 {
		buffer = 64
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	replay := 0
	for _, ev := range b.ring {
		if ev.Seq > afterSeq {
			replay++
		}
	}
	if buffer < replay {
		buffer = replay
	}
	sub := &Subscription{bus: b, ch: make(chan Event, buffer)}
	sub.C = sub.ch
	for _, ev := range b.ring {
		if ev.Seq > afterSeq {
			sub.ch <- ev
		}
	}
	if b.closed {
		close(sub.ch)
		return sub
	}
	b.subs[sub] = struct{}{}
	return sub
}

// LastSeq returns the most recently published sequence number.
func (b *Bus) LastSeq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Close ends the stream: every subscriber's channel closes after the
// events already buffered, and later Publish/Subscribe calls see a
// closed bus. Idempotent. The drain path calls this after the job pool
// has emptied, so subscribers observe every terminal event first.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		close(s.ch)
		delete(b.subs, s)
	}
}
