// CSR-native cut enumeration: ports of the Algorithm 1 step-2/step-3
// detectors (r-local minimal 1-cuts and r-interesting vertices) that run
// over a frozen graph.CSR with arena scratch instead of rebuilding induced
// ball subgraphs through the allocating Graph accessors. Each port returns
// exactly the set its adjacency-list counterpart returns; the pipeline
// equivalence suite in internal/core checks that on randomized instances.
package cuts

import (
	"slices"

	"localmds/internal/graph"
)

// LocalOneCutsCSR returns all vertices v such that {v} is an r-local
// minimal 1-cut of c (Definition 2.1 with k = 1), ascending. A ball
// subgraph is always connected (every member reaches its center inside the
// ball), so v is a local 1-cut iff removing v disconnects c[N^r[v]].
func LocalOneCutsCSR(c *graph.CSR, r int, a *graph.Arena) []int {
	var out []int
	var ball []int32
	var sub graph.CSR
	for v := 0; v < c.N(); v++ {
		ball = c.AppendBall(ball[:0], v, r, a)
		if len(ball) < 3 {
			continue // graphs on <= 2 vertices have no cut vertex
		}
		c.InducedInto(&sub, ball, a)
		local, _ := slices.BinarySearch(ball, int32(v))
		if !sub.ConnectedWithout(local, a) {
			out = append(out, v)
		}
	}
	return out
}

// LocallyInterestingVerticesCSR returns the set I of Algorithm 1 step 3 —
// all vertices that are r-interesting through some r-local minimal 2-cut
// (§3.2) — ascending, over the CSR view.
func LocallyInterestingVerticesCSR(c *graph.CSR, r int, a *graph.Arena) []int {
	n := c.N()
	interesting := make([]bool, n)
	var ballU, ball2, pair []int32
	var sub graph.CSR
	var flags []bool // per-component scratch for the interestingness count
	for u := 0; u < n; u++ {
		ballU = c.AppendBall(ballU[:0], u, r, a)
		for _, v32 := range ballU {
			v := int(v32)
			if v == u || (interesting[u] && interesting[v]) {
				continue
			}
			// Build c[N^r[{u, v}]] once for the cut test and both
			// interestingness directions.
			pair = append(pair[:0], int32(u), v32)
			ball2 = c.AppendBallOfSet(ball2[:0], pair, r, a)
			c.InducedInto(&sub, ball2, a)
			lu, _ := slices.BinarySearch(ball2, int32(u))
			lv, _ := slices.BinarySearch(ball2, v32)
			// One component labeling of sub - {lu, lv} serves the cut test
			// and both interestingness directions (the exclusion order is
			// irrelevant, and nothing below invalidates the arena labels).
			labels, num := sub.ComponentLabels(lu, lv, a)
			if num < 2 || !seesTwoComponentsCSR(&sub, lu, labels) || !seesTwoComponentsCSR(&sub, lv, labels) {
				continue
			}
			if !interesting[u] && isInterestingDirectionCSR(c, &sub, u, v, lv, labels, num, &flags) {
				interesting[u] = true
			}
			if !interesting[v] && isInterestingDirectionCSR(c, &sub, v, u, lu, labels, num, &flags) {
				interesting[v] = true
			}
		}
	}
	var out []int
	for v, ok := range interesting {
		if ok {
			out = append(out, v)
		}
	}
	return out
}

// seesTwoComponentsCSR reports whether w has neighbors in at least two
// distinct components per the labeling.
func seesTwoComponentsCSR(sub *graph.CSR, w int, labels []int32) bool {
	first := int32(-1)
	for _, y := range sub.Row(w) {
		c := labels[y]
		if c < 0 {
			continue
		}
		if first < 0 {
			first = c
		} else if c != first {
			return true
		}
	}
	return false
}

// isInterestingDirectionCSR reports whether self is r-interesting through
// the cut {self, other} (§3.2): N[self] ⊈ N[other] in the full graph, and
// at least two components of sub - cut each contain a vertex non-adjacent
// to other. sub must be c[N^r[{self, other}]], labels/num its component
// labeling with the cut pair excluded, and lOther the local index of
// other.
func isInterestingDirectionCSR(c, sub *graph.CSR, self, other, lOther int, labels []int32, num int, flags *[]bool) bool {
	if c.ClosedSubset(self, other) {
		return false
	}
	if cap(*flags) < num {
		*flags = make([]bool, num)
	}
	f := (*flags)[:num]
	for i := range f {
		f[i] = false
	}
	count := 0
	otherRow := sub.Row(lOther)
	for x := 0; x < sub.N(); x++ {
		lbl := labels[x]
		if lbl < 0 || f[lbl] {
			continue
		}
		if _, adjacent := slices.BinarySearch(otherRow, int32(x)); !adjacent {
			f[lbl] = true
			if count++; count >= 2 {
				return true
			}
		}
	}
	return false
}
