package cuts

import (
	"sort"

	"localmds/internal/graph"
)

// TwoCut is an unordered minimal 2-cut {U, V} with U < V.
type TwoCut struct {
	U, V int
}

// IsMinimalTwoCut reports whether {u, v} is a minimal 2-cut of g in the
// paper's sense (§2): removing the pair increases the number of components,
// and no proper subset is a cut with the same components. Concretely, the
// pair must separate, and each of u and v must have neighbors in at least
// two distinct components of g - {u, v} — otherwise deleting only the other
// vertex yields the same separation, contradicting minimality.
func IsMinimalTwoCut(g *graph.Graph, u, v int) bool {
	if u == v {
		return false
	}
	compOf, num := pairComponents(g, u, v)
	if num < 2 {
		return false
	}
	return seesTwoComponents(g, u, compOf) && seesTwoComponents(g, v, compOf)
}

// pairComponents labels the components of g - {u, v}; the cut vertices get
// label -1. It returns the labels and the component count.
func pairComponents(g *graph.Graph, u, v int) ([]int, int) {
	n := g.N()
	compOf := make([]int, n)
	for i := range compOf {
		compOf[i] = -2
	}
	compOf[u], compOf[v] = -1, -1
	num := 0
	for s := 0; s < n; s++ {
		if compOf[s] != -2 {
			continue
		}
		compOf[s] = num
		queue := []int{s}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, y := range g.Neighbors(x) {
				if compOf[y] == -2 {
					compOf[y] = num
					queue = append(queue, y)
				}
			}
		}
		num++
	}
	return compOf, num
}

// seesTwoComponents reports whether w has neighbors in at least two
// distinct components per the labeling compOf.
func seesTwoComponents(g *graph.Graph, w int, compOf []int) bool {
	first := -1
	for _, y := range g.Neighbors(w) {
		c := compOf[y]
		if c < 0 {
			continue
		}
		if first < 0 {
			first = c
		} else if c != first {
			return true
		}
	}
	return false
}

// MinimalTwoCuts enumerates every minimal 2-cut of g by testing all vertex
// pairs (quadratic in n times a BFS; correctness-first).
func MinimalTwoCuts(g *graph.Graph) []TwoCut {
	var out []TwoCut
	n := g.N()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if IsMinimalTwoCut(g, u, v) {
				out = append(out, TwoCut{U: u, V: v})
			}
		}
	}
	return out
}

// Crossing reports whether two 2-cuts cross (§5.3): the vertices of c1 lie
// in different components of g - c2, and vice versa.
func Crossing(g *graph.Graph, c1, c2 TwoCut) bool {
	return separatedBy(g, c1.U, c1.V, c2) && separatedBy(g, c2.U, c2.V, c1)
}

// separatedBy reports whether a and b are in different components of
// g - {c.U, c.V}. Vertices of the cut itself are never separated.
func separatedBy(g *graph.Graph, a, b int, c TwoCut) bool {
	if a == c.U || a == c.V || b == c.U || b == c.V {
		return false
	}
	n := g.N()
	seen := make([]bool, n)
	seen[c.U], seen[c.V] = true, true
	queue := []int{a}
	seen[a] = true
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == b {
			return false
		}
		for _, y := range g.Neighbors(x) {
			if !seen[y] {
				seen[y] = true
				queue = append(queue, y)
			}
		}
	}
	return true
}

// GloballyInteresting reports whether v is an interesting vertex of the
// global 2-cut {u, v} per §5.3: N[v] ⊈ N[u], and at least two components of
// g - {u, v} contain a vertex non-adjacent to u.
func GloballyInteresting(g *graph.Graph, v, u int) bool {
	if !IsMinimalTwoCut(g, u, v) {
		return false
	}
	nv := g.ClosedNeighborhood(v)
	nu := g.ClosedNeighborhood(u)
	if graph.IsSubset(nv, nu) {
		return false
	}
	return componentsWithNonNeighborOfU(g, u, v) >= 2
}

// componentsWithNonNeighborOfU counts components of g - {u, v} containing a
// vertex not adjacent to u.
func componentsWithNonNeighborOfU(g *graph.Graph, u, v int) int {
	n := g.N()
	seen := make([]bool, n)
	seen[u], seen[v] = true, true
	count := 0
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		has := false
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			if !g.HasEdge(x, u) {
				has = true
			}
			for _, y := range g.Neighbors(x) {
				if y != u && y != v && !seen[y] {
					seen[y] = true
					queue = append(queue, y)
				}
			}
		}
		if has {
			count++
		}
	}
	return count
}

// GloballyInterestingVertices returns all vertices that are interesting in
// some global minimal 2-cut of g, ascending.
func GloballyInterestingVertices(g *graph.Graph) []int {
	interesting := make(map[int]bool)
	for _, c := range MinimalTwoCuts(g) {
		if GloballyInteresting(g, c.U, c.V) {
			interesting[c.U] = true
		}
		if GloballyInteresting(g, c.V, c.U) {
			interesting[c.V] = true
		}
	}
	out := make([]int, 0, len(interesting))
	for v := range interesting {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
