// Package cuts provides the connectivity substrate of the paper: Tarjan
// articulation points and biconnected components, the block-cut tree used
// in Claim 5.3, enumeration of minimal 2-cuts (separation pairs) and their
// crossing relation (§5.3), and — the paper's new notion — r-local k-cuts
// (Definition 2.1) together with r-interesting vertices (§3.2).
package cuts

import (
	"sort"

	"localmds/internal/graph"
)

// ArticulationPoints returns the cut vertices (minimal 1-cuts) of g in
// ascending order, via Tarjan's low-link DFS.
func ArticulationPoints(g *graph.Graph) []int {
	n := g.N()
	disc := make([]int, n)
	low := make([]int, n)
	isArt := make([]bool, n)
	for i := range disc {
		disc[i] = -1
	}
	timer := 0
	var dfs func(v, parent int)
	dfs = func(v, parent int) {
		disc[v] = timer
		low[v] = timer
		timer++
		children := 0
		for _, u := range g.Neighbors(v) {
			if u == parent {
				// Skip one parent edge occurrence; simple graphs have no
				// parallel edges so skipping all is equivalent.
				continue
			}
			if disc[u] >= 0 {
				if disc[u] < low[v] {
					low[v] = disc[u]
				}
				continue
			}
			children++
			dfs(u, v)
			if low[u] < low[v] {
				low[v] = low[u]
			}
			if parent >= 0 && low[u] >= disc[v] {
				isArt[v] = true
			}
		}
		if parent < 0 && children > 1 {
			isArt[v] = true
		}
	}
	for v := 0; v < n; v++ {
		if disc[v] < 0 {
			dfs(v, -1)
		}
	}
	var out []int
	for v, a := range isArt {
		if a {
			out = append(out, v)
		}
	}
	return out
}

// Bridges returns the cut edges of g in canonical order.
func Bridges(g *graph.Graph) [][2]int {
	n := g.N()
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	timer := 0
	var out [][2]int
	var dfs func(v, parent int)
	dfs = func(v, parent int) {
		disc[v] = timer
		low[v] = timer
		timer++
		for _, u := range g.Neighbors(v) {
			if u == parent {
				continue
			}
			if disc[u] >= 0 {
				if disc[u] < low[v] {
					low[v] = disc[u]
				}
				continue
			}
			dfs(u, v)
			if low[u] < low[v] {
				low[v] = low[u]
			}
			if low[u] > disc[v] {
				a, b := v, u
				if a > b {
					a, b = b, a
				}
				out = append(out, [2]int{a, b})
			}
		}
	}
	for v := 0; v < n; v++ {
		if disc[v] < 0 {
			dfs(v, -1)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// BiconnectedComponents returns the maximal 2-connected components
// ("blocks") of g as sorted vertex sets. Every edge belongs to exactly one
// block; a bridge forms a 2-vertex block. Isolated vertices form
// single-vertex blocks.
func BiconnectedComponents(g *graph.Graph) [][]int {
	n := g.N()
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	timer := 0
	var stack [][2]int
	var blocks [][]int
	emit := func(until [2]int) {
		seen := map[int]bool{}
		for len(stack) > 0 {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			seen[e[0]] = true
			seen[e[1]] = true
			if e == until {
				break
			}
		}
		verts := make([]int, 0, len(seen))
		for v := range seen {
			verts = append(verts, v)
		}
		sort.Ints(verts)
		blocks = append(blocks, verts)
	}
	var dfs func(v, parent int)
	dfs = func(v, parent int) {
		disc[v] = timer
		low[v] = timer
		timer++
		for _, u := range g.Neighbors(v) {
			if u == parent {
				continue
			}
			if disc[u] >= 0 {
				if disc[u] < disc[v] {
					stack = append(stack, [2]int{v, u})
					if disc[u] < low[v] {
						low[v] = disc[u]
					}
				}
				continue
			}
			e := [2]int{v, u}
			stack = append(stack, e)
			dfs(u, v)
			if low[u] < low[v] {
				low[v] = low[u]
			}
			if low[u] >= disc[v] {
				emit(e)
			}
		}
	}
	for v := 0; v < n; v++ {
		if disc[v] < 0 {
			dfs(v, -1)
			if g.Degree(v) == 0 {
				blocks = append(blocks, []int{v})
			}
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i][0] < blocks[j][0] })
	return blocks
}

// BlockCutTree is the bipartite tree T from Claim 5.3: one node per block
// (maximal 2-connected component) and one per cut vertex, with an edge
// whenever the cut vertex belongs to the block. For a connected graph it is
// a tree; in general a forest.
type BlockCutTree struct {
	Blocks      [][]int // sorted vertex sets
	CutVertices []int   // ascending
	// BlockNbrs[i] lists indices into CutVertices adjacent to block i;
	// CutNbrs[j] lists indices into Blocks adjacent to cut vertex j.
	BlockNbrs [][]int
	CutNbrs   [][]int
}

// NewBlockCutTree builds the block-cut tree of g.
func NewBlockCutTree(g *graph.Graph) *BlockCutTree {
	blocks := BiconnectedComponents(g)
	cutVerts := ArticulationPoints(g)
	cutIndex := make(map[int]int, len(cutVerts))
	for i, v := range cutVerts {
		cutIndex[v] = i
	}
	t := &BlockCutTree{
		Blocks:      blocks,
		CutVertices: cutVerts,
		BlockNbrs:   make([][]int, len(blocks)),
		CutNbrs:     make([][]int, len(cutVerts)),
	}
	for bi, b := range blocks {
		for _, v := range b {
			if ci, ok := cutIndex[v]; ok {
				t.BlockNbrs[bi] = append(t.BlockNbrs[bi], ci)
				t.CutNbrs[ci] = append(t.CutNbrs[ci], bi)
			}
		}
	}
	return t
}

// NumNodes returns the number of tree nodes (blocks + cut vertices).
func (t *BlockCutTree) NumNodes() int { return len(t.Blocks) + len(t.CutVertices) }

// NumEdges returns the number of tree edges.
func (t *BlockCutTree) NumEdges() int {
	m := 0
	for _, nbrs := range t.BlockNbrs {
		m += len(nbrs)
	}
	return m
}
