package cuts

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localmds/internal/gen"
	"localmds/internal/graph"
)

func TestIsMinimalTwoCut(t *testing.T) {
	c6 := gen.Cycle(6)
	tests := []struct {
		name string
		g    *graph.Graph
		u, v int
		want bool
	}{
		{"C6 opposite", c6, 0, 3, true},
		{"C6 adjacent", c6, 0, 1, false}, // removing them leaves one path
		{"C6 distance2", c6, 0, 2, true}, // splits {1} from {3,4,5}
		{"same vertex", c6, 2, 2, false},
		{"K4 any pair", gen.Complete(4), 0, 1, false},
		{"path mid", gen.Path(5), 1, 3, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsMinimalTwoCut(tt.g, tt.u, tt.v); got != tt.want {
				t.Errorf("IsMinimalTwoCut(%d,%d) = %v, want %v", tt.u, tt.v, got, tt.want)
			}
		})
	}
}

func TestMinimalTwoCutsCycle(t *testing.T) {
	// In C5, every non-adjacent pair is a minimal 2-cut: 5 such pairs.
	got := MinimalTwoCuts(gen.Cycle(5))
	if len(got) != 5 {
		t.Errorf("C5 has %d minimal 2-cuts, want 5: %v", len(got), got)
	}
}

func TestMinimalTwoCutsCliquePendants(t *testing.T) {
	// The §4 instance: every pendant x_v is separated by the 2-cut {0, v},
	// so there are q-1 minimal 2-cuts at least.
	g := gen.CliquePendants(6)
	cuts := MinimalTwoCuts(g)
	found := 0
	for _, c := range cuts {
		if c.U == 0 && c.V >= 1 && c.V <= 5 {
			found++
		}
	}
	if found != 5 {
		t.Errorf("found %d cuts {0,v}, want 5 (cuts: %v)", found, cuts)
	}
}

func TestCrossing(t *testing.T) {
	c6 := gen.Cycle(6)
	// Opposite cuts {0,3} and {1,4} cross in C6.
	if !Crossing(c6, TwoCut{0, 3}, TwoCut{1, 4}) {
		t.Error("opposite C6 cuts should cross")
	}
	// {0,2} and {3,5} do not cross ({3,5} lies on one side of {0,2}).
	if Crossing(c6, TwoCut{0, 2}, TwoCut{3, 5}) {
		t.Error("nested C6 cuts should not cross")
	}
	// Sharing a vertex: never crossing.
	if Crossing(c6, TwoCut{0, 3}, TwoCut{0, 2}) {
		t.Error("cuts sharing a vertex cannot cross")
	}
}

func TestGloballyInterestingCliquePendants(t *testing.T) {
	// In CliquePendants, the cut {0, v} separates only x_v; all other
	// components... there is one other component (the rest), and the rest
	// is entirely adjacent to 0. So at most one component has a vertex
	// non-adjacent to 0 => v is NOT interesting via u=0. This is the
	// paper's motivating example: unboundedly many 2-cut vertices, none
	// interesting.
	g := gen.CliquePendants(8)
	got := GloballyInterestingVertices(g)
	for _, v := range got {
		if v >= 1 && v < 8 {
			t.Errorf("clique vertex %d reported interesting; paper argues none should be chargeable to u=0", v)
		}
	}
}

func TestGloballyInterestingLongPath(t *testing.T) {
	// On a path, interior pairs {i, j} with j >= i+2 separate the middle:
	// vertex i is interesting via the cut {i, i+2}: N[i] ⊈ N[i+2] and the
	// two outer components contain vertices non-adjacent to i+2 for a long
	// enough path.
	g := gen.Path(9)
	got := GloballyInterestingVertices(g)
	if len(got) == 0 {
		t.Fatal("long path should have interesting vertices")
	}
	for _, v := range got {
		if v == 0 || v == 8 {
			t.Errorf("endpoint %d cannot be in a 2-cut", v)
		}
	}
}

// Property: a minimal 2-cut really separates: removing it increases the
// number of components.
func TestTwoCutsSeparateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(13, 0.15, rng)
		for _, c := range MinimalTwoCuts(g) {
			h, _ := g.Delete([]int{c.U, c.V})
			if h.NumComponents() < 2 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: crossing is symmetric.
func TestCrossingSymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(11, 0.2, rng)
		cuts := MinimalTwoCuts(g)
		for i := 0; i < len(cuts) && i < 6; i++ {
			for j := i + 1; j < len(cuts) && j < 6; j++ {
				if Crossing(g, cuts[i], cuts[j]) != Crossing(g, cuts[j], cuts[i]) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
