package cuts

import (
	"sort"

	"localmds/internal/graph"
)

// IsLocalOneCut reports whether {v} is an r-local minimal 1-cut of g
// (Definition 2.1 with k = 1): v is a cut vertex of g[N^r[v]]. The ball
// subgraph is always connected (every member reaches v inside the ball), so
// every articulation point of it is a minimal 1-cut.
func IsLocalOneCut(g *graph.Graph, v, r int) bool {
	ball, idx := g.InducedBall(v, r)
	local := indexOf(idx, v)
	for _, a := range ArticulationPoints(ball) {
		if a == local {
			return true
		}
	}
	return false
}

// LocalOneCuts returns all vertices v such that {v} is an r-local minimal
// 1-cut of g, ascending.
func LocalOneCuts(g *graph.Graph, r int) []int {
	var out []int
	for v := 0; v < g.N(); v++ {
		if IsLocalOneCut(g, v, r) {
			out = append(out, v)
		}
	}
	return out
}

// IsLocalTwoCut reports whether {u, v} is an r-local minimal 2-cut of g
// (Definition 2.1 with k = 2): u and v are at distance at most r in g, and
// {u, v} is a minimal 2-cut of g[N^r[u] ∪ N^r[v]].
func IsLocalTwoCut(g *graph.Graph, u, v, r int) bool {
	if u == v {
		return false
	}
	if d := g.Dist(u, v); d < 0 || d > r {
		return false
	}
	ball, idx := g.Induced(g.BallOfSet([]int{u, v}, r))
	lu, lv := indexOf(idx, u), indexOf(idx, v)
	return IsMinimalTwoCut(ball, lu, lv)
}

// LocalTwoCuts enumerates all r-local minimal 2-cuts of g. Each pair is
// tested inside its own ball subgraph; candidates are limited to pairs
// within distance r.
func LocalTwoCuts(g *graph.Graph, r int) []TwoCut {
	var out []TwoCut
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Ball(u, r) {
			if v <= u {
				continue
			}
			if IsLocalTwoCut(g, u, v, r) {
				out = append(out, TwoCut{U: u, V: v})
			}
		}
	}
	return out
}

// IsLocallyInteresting reports whether v is r-interesting (§3.2): there is
// an r-local 2-cut c = {u, v} such that N[v] ⊈ N[u] (closed neighborhoods
// in g) and at least two connected components of g[N^r[c]] - c each contain
// a vertex non-adjacent to u.
func IsLocallyInteresting(g *graph.Graph, v, u, r int) bool {
	if !IsLocalTwoCut(g, u, v, r) {
		return false
	}
	nv := g.ClosedNeighborhood(v)
	nu := g.ClosedNeighborhood(u)
	if graph.IsSubset(nv, nu) {
		return false
	}
	ball, idx := g.Induced(g.BallOfSet([]int{u, v}, r))
	lu, lv := indexOf(idx, u), indexOf(idx, v)
	return componentsWithNonNeighborOfU(ball, lu, lv) >= 2
}

// LocallyInterestingVertices returns all vertices that are r-interesting
// through some r-local minimal 2-cut, ascending. This is the set I of the
// paper's Algorithm 1 (step 3).
func LocallyInterestingVertices(g *graph.Graph, r int) []int {
	interesting := make(map[int]bool, g.N())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Ball(u, r) {
			if v == u || (interesting[u] && interesting[v]) {
				continue
			}
			if !IsLocalTwoCut(g, u, v, r) {
				continue
			}
			if !interesting[u] && IsLocallyInteresting(g, u, v, r) {
				interesting[u] = true
			}
			if !interesting[v] && IsLocallyInteresting(g, v, u, r) {
				interesting[v] = true
			}
		}
	}
	out := make([]int, 0, len(interesting))
	for v := range interesting {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func indexOf(sorted []int, v int) int {
	i := sort.SearchInts(sorted, v)
	if i < len(sorted) && sorted[i] == v {
		return i
	}
	return -1
}
