package cuts

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localmds/internal/gen"
	"localmds/internal/graph"
)

// bruteArticulation returns cut vertices of a connected graph by explicit
// deletion.
func bruteArticulation(g *graph.Graph) []int {
	base := g.NumComponents()
	var out []int
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 0 {
			continue
		}
		h, _ := g.Delete([]int{v})
		if h.NumComponents() > base {
			out = append(out, v)
		}
	}
	return out
}

func TestArticulationPointsKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want []int
	}{
		{"path5", gen.Path(5), []int{1, 2, 3}},
		{"cycle6", gen.Cycle(6), nil},
		{"star", gen.Star(4), []int{0}},
		{"k4", gen.Complete(4), nil},
		{"two triangles joined", twoTriangles(), []int{2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := ArticulationPoints(tt.g)
			if !graph.EqualSets(graph.Dedup(got), graph.Dedup(tt.want)) {
				t.Errorf("ArticulationPoints = %v, want %v", got, tt.want)
			}
		})
	}
}

// twoTriangles returns two triangles sharing vertex 2.
func twoTriangles() *graph.Graph {
	return graph.MustFromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}})
}

func TestArticulationMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(15, 0.12, rng)
		got := graph.Dedup(ArticulationPoints(g))
		want := graph.Dedup(bruteArticulation(g))
		return graph.EqualSets(got, want)
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBridges(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path5", gen.Path(5), 4},
		{"cycle5", gen.Cycle(5), 0},
		{"star", gen.Star(3), 3},
		{"two triangles", twoTriangles(), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Bridges(tt.g); len(got) != tt.want {
				t.Errorf("Bridges = %v, want %d bridges", got, tt.want)
			}
		})
	}
}

func TestBridgesDumbbell(t *testing.T) {
	// Two triangles joined by an edge: exactly that edge is a bridge.
	g := graph.MustFromEdges(6, [][2]int{
		{0, 1}, {0, 2}, {1, 2},
		{3, 4}, {3, 5}, {4, 5},
		{2, 3},
	})
	b := Bridges(g)
	if len(b) != 1 || b[0] != [2]int{2, 3} {
		t.Errorf("Bridges = %v, want [[2 3]]", b)
	}
}

func TestBiconnectedComponents(t *testing.T) {
	g := twoTriangles()
	blocks := BiconnectedComponents(g)
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks, want 2: %v", len(blocks), blocks)
	}
	if !graph.EqualSets(blocks[0], []int{0, 1, 2}) || !graph.EqualSets(blocks[1], []int{2, 3, 4}) {
		t.Errorf("blocks = %v", blocks)
	}
}

func TestBiconnectedComponentsPath(t *testing.T) {
	blocks := BiconnectedComponents(gen.Path(4))
	if len(blocks) != 3 {
		t.Fatalf("P4 has %d blocks, want 3: %v", len(blocks), blocks)
	}
	for _, b := range blocks {
		if len(b) != 2 {
			t.Errorf("P4 block %v should be a single edge", b)
		}
	}
}

func TestBiconnectedComponentsIsolated(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	blocks := BiconnectedComponents(g)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %v, want edge block and isolated block", blocks)
	}
}

// Property: every edge appears in exactly one block.
func TestBlocksPartitionEdgesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(14, 0.15, rng)
		blocks := BiconnectedComponents(g)
		count := make(map[[2]int]int)
		for _, b := range blocks {
			sub, idx := g.Induced(b)
			// Count only edges of g inside the block; for 2-connected
			// blocks every induced edge is in the block. For blocks from
			// the edge stack this is exact because blocks are the vertex
			// sets of edge-disjoint subgraphs.
			_ = sub
			for i := 0; i < len(idx); i++ {
				for j := i + 1; j < len(idx); j++ {
					if g.HasEdge(idx[i], idx[j]) {
						count[[2]int{idx[i], idx[j]}]++
					}
				}
			}
		}
		for _, e := range g.Edges() {
			if count[e] < 1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBlockCutTree(t *testing.T) {
	g := twoTriangles()
	bct := NewBlockCutTree(g)
	if len(bct.Blocks) != 2 || len(bct.CutVertices) != 1 {
		t.Fatalf("blocks=%d cuts=%d, want 2, 1", len(bct.Blocks), len(bct.CutVertices))
	}
	if bct.CutVertices[0] != 2 {
		t.Errorf("cut vertex = %d, want 2", bct.CutVertices[0])
	}
	if bct.NumNodes() != 3 || bct.NumEdges() != 2 {
		t.Errorf("NumNodes=%d NumEdges=%d, want 3, 2", bct.NumNodes(), bct.NumEdges())
	}
}

// Property: for connected graphs, the block-cut tree is a tree:
// #edges = #nodes - 1.
func TestBlockCutTreeIsTreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(16, 0.1, rng)
		bct := NewBlockCutTree(g)
		return bct.NumEdges() == bct.NumNodes()-1
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
