package cuts

import (
	"math/rand"
	"testing"

	"localmds/internal/graph"
)

func randomCutGraph(n int, p float64, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	// A sprinkle of pendants and bridges makes cut structure likely.
	for i := 0; i+1 < n; i += 5 {
		if !g.HasEdge(i, i+1) {
			g.AddEdge(i, i+1)
		}
	}
	return g
}

func TestLocalOneCutsCSRMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := graph.NewArena()
	for trial := 0; trial < 20; trial++ {
		g := randomCutGraph(20, 0.08, rng)
		c := g.Freeze()
		for _, r := range []int{1, 2, 3, 4} {
			want := LocalOneCuts(g, r)
			got := LocalOneCutsCSR(c, r, a)
			if !graph.EqualSets(got, want) {
				t.Fatalf("trial %d r=%d: CSR = %v, legacy = %v", trial, r, got, want)
			}
		}
	}
}

func TestLocallyInterestingVerticesCSRMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := graph.NewArena()
	for trial := 0; trial < 12; trial++ {
		g := randomCutGraph(16, 0.1, rng)
		c := g.Freeze()
		for _, r := range []int{2, 3, 4} {
			want := LocallyInterestingVertices(g, r)
			got := LocallyInterestingVerticesCSR(c, r, a)
			if !graph.EqualSets(got, want) {
				t.Fatalf("trial %d r=%d: CSR = %v, legacy = %v", trial, r, got, want)
			}
		}
	}
}

func TestLocalCutsCSREdgeCases(t *testing.T) {
	a := graph.NewArena()
	// Single vertex, single edge, triangle: no cuts anywhere.
	for _, n := range []int{1, 2, 3} {
		g := graph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				g.AddEdge(u, v)
			}
		}
		if got := LocalOneCutsCSR(g.Freeze(), 3, a); len(got) != 0 {
			t.Errorf("K%d: unexpected local 1-cuts %v", n, got)
		}
		if got := LocallyInterestingVerticesCSR(g.Freeze(), 3, a); len(got) != 0 {
			t.Errorf("K%d: unexpected interesting vertices %v", n, got)
		}
	}
	// A path's interior vertices are local 1-cuts at any radius.
	p := graph.New(5)
	for i := 0; i < 4; i++ {
		p.AddEdge(i, i+1)
	}
	if got := LocalOneCutsCSR(p.Freeze(), 2, a); !graph.EqualSets(got, []int{1, 2, 3}) {
		t.Errorf("path local 1-cuts = %v, want [1 2 3]", got)
	}
}
