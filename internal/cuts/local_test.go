package cuts

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localmds/internal/gen"
	"localmds/internal/graph"
)

func TestLocalOneCutsLongCycle(t *testing.T) {
	// The paper's discussion (§4): on a long cycle every vertex is a local
	// 1-cut even though none is a global cut vertex.
	g := gen.Cycle(30)
	r := 3
	locals := LocalOneCuts(g, r)
	if len(locals) != 30 {
		t.Errorf("cycle: %d local 1-cuts, want all 30", len(locals))
	}
	if arts := ArticulationPoints(g); len(arts) != 0 {
		t.Errorf("cycle has %d global cut vertices, want 0", len(arts))
	}
}

func TestLocalOneCutsShortCycleWithLargeRadius(t *testing.T) {
	// If r exceeds n/2 the ball is the whole cycle and no vertex is a
	// local 1-cut.
	g := gen.Cycle(8)
	if locals := LocalOneCuts(g, 5); len(locals) != 0 {
		t.Errorf("C8 with r=5: local 1-cuts = %v, want none", locals)
	}
	// With r = 3 the ball around v is a path (7 vertices) and v cuts it.
	if locals := LocalOneCuts(g, 3); len(locals) != 8 {
		t.Errorf("C8 with r=3: %d local 1-cuts, want 8", len(locals))
	}
}

func TestLocalOneCutsPath(t *testing.T) {
	g := gen.Path(7)
	locals := LocalOneCuts(g, 2)
	// All interior vertices cut their ball.
	if !graph.EqualSets(locals, []int{1, 2, 3, 4, 5}) {
		t.Errorf("P7 local 1-cuts = %v, want interior vertices", locals)
	}
}

func TestLocalOneCutMonotone(t *testing.T) {
	// §2: if there are no r-local cuts there are no r'-local cuts for
	// r' > r; equivalently the local-cut set shrinks as r grows.
	g := gen.Cycle(20)
	prev := len(LocalOneCuts(g, 2))
	for r := 3; r <= 11; r++ {
		cur := len(LocalOneCuts(g, r))
		if cur > prev {
			t.Errorf("r=%d: local 1-cuts grew from %d to %d", r, prev, cur)
		}
		prev = cur
	}
}

func TestGlobalCutIsLocalCutProperty(t *testing.T) {
	// A global cut vertex is an r-local 1-cut for every r >= 1... for r
	// large enough to see the separation — with r = n it always is
	// (a k-cut is a |V|-local k-cut, §2).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(12, 0.15, rng)
		n := g.N()
		locals := LocalOneCuts(g, n)
		return graph.EqualSets(graph.Dedup(locals), graph.Dedup(ArticulationPoints(g)))
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestIsLocalTwoCut(t *testing.T) {
	// Long path: {2, 4} is a 2-local 2-cut (separates {3} within the
	// ball).
	g := gen.Path(12)
	if !IsLocalTwoCut(g, 2, 4, 2) {
		t.Error("{2,4} should be a 2-local 2-cut of P12")
	}
	// Distance beyond r: not a local 2-cut.
	if IsLocalTwoCut(g, 2, 8, 2) {
		t.Error("{2,8} at distance 6 accepted with r=2")
	}
	if IsLocalTwoCut(g, 3, 3, 2) {
		t.Error("degenerate pair accepted")
	}
}

func TestLocalTwoCutsLongCycle(t *testing.T) {
	// On a long cycle with r = 2, a pair at distance 2 cuts its joint ball
	// (a 7-vertex path) into the singleton between them plus two arcs;
	// both cut vertices see two components, so the pair is a minimal local
	// 2-cut. A distance-1 pair splits the ball into two arcs but each cut
	// vertex sees only one, so it is not minimal. Hence exactly the 24
	// distance-2 pairs qualify.
	g := gen.Cycle(24)
	cutsFound := LocalTwoCuts(g, 2)
	if len(cutsFound) != 24 {
		t.Fatalf("C24 r=2: %d local 2-cuts, want 24: %v", len(cutsFound), cutsFound)
	}
	for _, c := range cutsFound {
		d := g.Dist(c.U, c.V)
		if d != 2 {
			t.Errorf("cut %v at distance %d, want 2", c, d)
		}
	}
}

func TestLocalTwoCutsMatchGlobalAtFullRadius(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(11, 0.18, rng)
		n := g.N()
		local := LocalTwoCuts(g, n)
		global := MinimalTwoCuts(g)
		if len(local) != len(global) {
			return false
		}
		for i := range local {
			if local[i] != global[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestIsLocallyInterestingPath(t *testing.T) {
	g := gen.Path(13)
	// Middle vertex 6 with cut {6, 8} at r=3: components of the ball minus
	// the cut include the left arc (with vertices non-adjacent to 8) and
	// {7}; 7 is adjacent to 8... so the second component with a
	// non-neighbor of 8 must be the right arc {9..}. Wait 9 is adjacent
	// to 8; 10 is not. So both arcs qualify and 6 is interesting.
	if !IsLocallyInteresting(g, 6, 8, 3) {
		t.Error("6 should be 3-interesting via {6,8} on P13")
	}
}

func TestLocallyInterestingCliquePendantsIsSmall(t *testing.T) {
	// The motivating example: many local 2-cut vertices, few interesting.
	g := gen.CliquePendants(7)
	interesting := LocallyInterestingVertices(g, 3)
	// Only vertex 0 or nothing should be interesting; certainly not the
	// clique vertices 1..6 whose cuts {0,v} have one undominated side.
	for _, v := range interesting {
		if v >= 1 && v <= 6 {
			t.Errorf("clique vertex %d is interesting; expected none", v)
		}
	}
}

func TestLocallyInterestingSubsetOfTwoCutVertices(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(11, 0.15, rng)
		r := 3
		interesting := LocallyInterestingVertices(g, r)
		inCut := make(map[int]bool)
		for _, c := range LocalTwoCuts(g, r) {
			inCut[c.U] = true
			inCut[c.V] = true
		}
		for _, v := range interesting {
			if !inCut[v] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
