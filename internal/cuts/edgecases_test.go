package cuts

import (
	"testing"

	"localmds/internal/gen"
	"localmds/internal/graph"
)

func TestArticulationDisconnected(t *testing.T) {
	// Two disjoint paths: the interior vertices of both are cut vertices.
	g := graph.DisjointUnion(gen.Path(3), gen.Path(3))
	got := ArticulationPoints(g)
	if !graph.EqualSets(got, []int{1, 4}) {
		t.Errorf("ArticulationPoints = %v, want [1 4]", got)
	}
}

func TestMinimalTwoCutsDisconnected(t *testing.T) {
	// A cut pair never spans two components: each C5 contributes its own
	// five cuts.
	g := graph.DisjointUnion(gen.Cycle(5), gen.Cycle(5))
	cutsFound := MinimalTwoCuts(g)
	if len(cutsFound) != 10 {
		t.Errorf("got %d cuts, want 10: %v", len(cutsFound), cutsFound)
	}
	for _, c := range cutsFound {
		if (c.U < 5) != (c.V < 5) {
			t.Errorf("cut %v spans components", c)
		}
	}
}

func TestLocalOneCutsIsolatedVertices(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	if got := LocalOneCuts(g, 3); len(got) != 0 {
		t.Errorf("local 1-cuts on near-edgeless graph = %v, want none", got)
	}
}

func TestIsLocalOneCutLeaf(t *testing.T) {
	g := gen.Path(5)
	if IsLocalOneCut(g, 0, 2) {
		t.Error("leaf reported as local 1-cut")
	}
	if !IsLocalOneCut(g, 2, 2) {
		t.Error("interior vertex not a local 1-cut")
	}
}

func TestLocalTwoCutsRadiusOne(t *testing.T) {
	// Radius 1: the pair's joint ball is N[u] ∪ N[v]; on a star, two
	// leaves never form a 2-cut of it (the center connects everything),
	// and {center, leaf} pairs cannot both see two components.
	g := gen.Star(5)
	if got := LocalTwoCuts(g, 1); len(got) != 0 {
		t.Errorf("star local 2-cuts = %v, want none", got)
	}
}

func TestGloballyInterestingRequiresNeighborhoodCondition(t *testing.T) {
	// On a star plus an edge... vertex whose closed neighborhood is
	// contained in the partner's can never be interesting: build u
	// dominating v. Take K4 minus an edge: N[1] ⊆ N[0]... use explicit
	// graph: 0 adjacent to 1,2,3; 1 adjacent to 2,3. N[1] = {0,1,2,3} =
	// N[0]: true twins; neither is interesting via the other.
	g := graph.MustFromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}})
	if GloballyInteresting(g, 1, 0) {
		t.Error("vertex with N[v] ⊆ N[u] reported interesting")
	}
}

func TestBlockCutTreeDisconnected(t *testing.T) {
	g := graph.DisjointUnion(gen.Cycle(3), gen.Path(3))
	bct := NewBlockCutTree(g)
	// Blocks: the triangle, two path edges; cuts: path middle vertex.
	if len(bct.Blocks) != 3 || len(bct.CutVertices) != 1 {
		t.Errorf("blocks=%d cuts=%d, want 3, 1", len(bct.Blocks), len(bct.CutVertices))
	}
	// Forest: edges = nodes - components(2).
	if bct.NumEdges() != bct.NumNodes()-2 {
		t.Errorf("forest relation violated: %d edges, %d nodes", bct.NumEdges(), bct.NumNodes())
	}
}
