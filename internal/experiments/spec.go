package experiments

import (
	"fmt"
	"strconv"

	"localmds/internal/gen"
)

// Spec declares one experiment as a table skeleton plus independent tasks.
// Declaring instead of running is what makes the suite schedulable: the
// concurrent orchestrator in internal/runner executes the tasks of many
// specs on one worker pool, replicates them across seeds, and caches their
// results, while RunSequential below keeps a simple in-process path for
// tests and the compatibility wrappers.
type Spec struct {
	// Name identifies the experiment in seed derivation and cache keys; it
	// must be stable across releases or recorded tables change.
	Name   string
	Title  string
	Header []string
	Tasks  []Task
}

// Task is one independently schedulable unit of experiment work producing
// one or more consecutive table rows. Tasks of the same Spec must not
// share mutable state: each receives its own derived seed and builds its
// own instances, which removes the shared-RNG ordering hazard (editing one
// row can no longer shift the random stream any other row observes).
type Task struct {
	// Row identifies the task's row block within the experiment; it must
	// be unique within the Spec and stable across releases. Rows that
	// must observe the same generated instance (a radius sweep over one
	// graph, the two Table 1 rows per K_{2,t} class) belong to one task.
	Row string
	// Params fingerprints the non-seed parameters (sizes, radii, ...) for
	// result caching; tasks with equal (Spec.Name, Row, seed, Params) are
	// interchangeable.
	Params string
	// Run executes the task with its derived seed and returns its rows.
	Run func(seed int64) ([][]string, error)
}

// TaskSeed derives the RNG seed for one (experiment, row, replicate)
// cell from the root seed. Both the sequential path and internal/runner
// call this, so a fixed root yields identical tables regardless of worker
// count or execution order.
func TaskSeed(root int64, experiment, row string, replicate int) int64 {
	return gen.DeriveSeed(root, experiment, row, strconv.Itoa(replicate))
}

// RunSequential executes the spec's tasks in declaration order on the
// calling goroutine, with replicate-0 seeds derived from root, and
// assembles the table. cmd/mdsbench uses internal/runner instead.
func (s Spec) RunSequential(root int64) (*Table, error) {
	t := &Table{Title: s.Title, Header: s.Header}
	for _, task := range s.Tasks {
		rows, err := task.Run(TaskSeed(root, s.Name, task.Row, 0))
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", s.Name, task.Row, err)
		}
		t.Rows = append(t.Rows, rows...)
	}
	return t, nil
}

// mustRunSequential is RunSequential for specs whose tasks cannot fail.
func (s Spec) mustRunSequential(root int64) *Table {
	t, err := s.RunSequential(root)
	if err != nil {
		panic(fmt.Sprintf("experiments: infallible spec %s failed: %v", s.Name, err))
	}
	return t
}
