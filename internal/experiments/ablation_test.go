package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRadiusAblation(t *testing.T) {
	tab, err := RadiusAblation(1, 50, []int{2, 3, 4})
	if err != nil {
		t.Fatalf("RadiusAblation: %v", err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// |X| is non-increasing in the radius (§2 monotonicity).
	prev := 1 << 30
	for _, row := range tab.Rows {
		x, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatalf("bad |X| cell %q", row[1])
		}
		if x > prev {
			t.Errorf("|X| grew with radius: %v", tab.Rows)
		}
		prev = x
	}
}

func TestRoundsVsT(t *testing.T) {
	tab, err := RoundsVsT(1, 24, []int{3, 4, 5})
	if err != nil {
		t.Fatalf("RoundsVsT: %v", err)
	}
	// Paper gather radius is linear in t: strictly increasing. Measured
	// rounds have an instance-dependent flooding term on top of the
	// 2t+7 gather floor, so only the floor is asserted.
	prevPaper := -1
	for _, row := range tab.Rows {
		tt, err := strconv.Atoi(row[0])
		if err != nil {
			t.Fatalf("bad cell %q", row[0])
		}
		paper, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatalf("bad cell %q", row[3])
		}
		measured, err := strconv.Atoi(row[5])
		if err != nil {
			t.Fatalf("bad cell %q", row[5])
		}
		if paper <= prevPaper {
			t.Errorf("paper gather radius not increasing: %v", tab.Rows)
		}
		if floor := 2*tt + 7; measured < floor {
			t.Errorf("t=%d: measured rounds %d below gather floor %d", tt, measured, floor)
		}
		prevPaper = paper
	}
}

func TestScaling(t *testing.T) {
	tab, err := Scaling(1, []int{40, 500})
	if err != nil {
		t.Fatalf("Scaling: %v", err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (ding + grid per size)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %v has %d cells, header has %d", row, len(row), len(tab.Header))
		}
	}
	// Small rows have an exact OPT; the 22x22 grid is beyond every exact
	// solver and must degrade to the certified 2-packing bound.
	small, big := tab.Rows[2], tab.Rows[3]
	if small[0] != "grid-6x6" || small[3] == "-" {
		t.Errorf("small grid row should carry exact OPT: %v", small)
	}
	if big[0] != "grid-22x22" || big[3] != "-" || !strings.Contains(big[4], "certified") {
		t.Errorf("oversized grid row should carry the certified opt_lb bound: %v", big)
	}
}

func TestMessageFootprint(t *testing.T) {
	tab, err := MessageFootprint(1, 24)
	if err != nil {
		t.Fatalf("MessageFootprint: %v", err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// The full gather must ship at least as many words as D2's bounded
	// gather.
	d2Words, _ := strconv.Atoi(tab.Rows[0][4])
	fullWords, _ := strconv.Atoi(tab.Rows[2][4])
	if fullWords < d2Words {
		t.Errorf("full gather words %d < D2 words %d", fullWords, d2Words)
	}
}

func TestDensityTable(t *testing.T) {
	tab, err := DensityTable(1, 36)
	if err != nil {
		t.Fatalf("DensityTable: %v", err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
}

func TestBaselines(t *testing.T) {
	tab, err := Baselines(1, []int{40, 80})
	if err != nil {
		t.Fatalf("Baselines: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Greedy phase count must not shrink as n grows on strip chains.
	p1, _ := strconv.Atoi(tab.Rows[0][2])
	p2, _ := strconv.Atoi(tab.Rows[1][2])
	if p2 < p1 {
		t.Errorf("greedy phases shrank: %d -> %d", p1, p2)
	}
}
