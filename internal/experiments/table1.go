package experiments

import (
	"fmt"
	"math/rand"

	"localmds/internal/asdim"
	"localmds/internal/core"
	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/local"
	"localmds/internal/mds"
)

// Table1Config scales the Table 1 reproduction.
type Table1Config struct {
	// Seed is the root seed used by the compatibility wrappers; per-task
	// seeds are derived from it (see TaskSeed). cmd/mdsbench passes its
	// own root seed to internal/runner instead.
	Seed int64
	// N is the target instance size for ratio measurements (capped by the
	// exact solver: OPT is computed exactly).
	N int
	// ProcessN is the instance size for round measurements with the real
	// message-passing simulator (smaller, since paper-scale radii force
	// whole-graph views).
	ProcessN int
}

// DefaultTable1Config returns the EXPERIMENTS.md configuration.
func DefaultTable1Config() Table1Config {
	return Table1Config{Seed: 1, N: 120, ProcessN: 48}
}

func (cfg Table1Config) params() string {
	return fmt.Sprintf("n=%d,process-n=%d", cfg.N, cfg.ProcessN)
}

// Table1Spec declares the paper's Table 1 reproduction: one task per graph
// class, each running the corresponding algorithm from this repository on
// in-class workloads and reporting the measured approximation ratio and
// measured LOCAL rounds next to the paper's bound.
func Table1Spec(cfg Table1Config) Spec {
	s := Spec{
		Name:  "table1",
		Title: "Table 1 — constant-round MDS approximation on H-minor-free classes (paper bound vs measured)",
		Header: []string{
			"class", "algorithm", "paper ratio", "paper rounds",
			"measured ratio", "measured rounds", "n",
		},
	}

	// Trees (K3-minor-free), folklore 3-approx in 2 rounds.
	s.Tasks = append(s.Tasks, Task{Row: "trees", Params: cfg.params(), Run: func(seed int64) ([][]string, error) {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomTree(cfg.N, rng)
		sol := core.TreeMDS(g)
		opt, err := mds.ExactMDS(g)
		if err != nil {
			return nil, fmt.Errorf("trees: %w", err)
		}
		small := gen.RandomTree(cfg.ProcessN, rng)
		_, stats, err := core.RunTreeMDS(small, nil, local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("trees process: %w", err)
		}
		return [][]string{{"trees (K3)", "deg>=2 folklore", "3", "2",
			ratioString(len(sol), len(opt)), fmt.Sprint(stats.Rounds), fmt.Sprint(g.N())}}, nil
	}})

	// Outerplanar (K4, K_{2,3}): our Algorithm 1 with practical radii (the
	// paper cites [4]'s specialized 5-approximation). OPT comes from the
	// treewidth-2 DP.
	s.Tasks = append(s.Tasks, Task{Row: "outerplanar", Params: cfg.params(), Run: func(seed int64) ([][]string, error) {
		rng := rand.New(rand.NewSource(seed))
		g := gen.MaximalOuterplanar(cfg.N, rng)
		res, err := core.Alg1(g, core.PracticalParams())
		if err != nil {
			return nil, fmt.Errorf("outerplanar: %w", err)
		}
		opt, err := mds.ExactMDS(g)
		if err != nil {
			return nil, fmt.Errorf("outerplanar opt: %w", err)
		}
		return [][]string{{"outerplanar (K4,K2,3)", "Alg1 practical", "5 [4]", "2 [4]",
			ratioString(len(res.S), len(opt)), fmt.Sprintf("<=%d est", res.RoundsEstimate), fmt.Sprint(g.N())}}, nil
	}})

	// Planar (K5, K_{3,3}): Algorithm 1 on grids (the paper cites [12]'s
	// 11+eps). Grids are the exact solver's worst case; the bitset engine
	// proves OPT up to side 10 (n=100) in under 0.1s where the old branch
	// and bound was capped at side 7 (2s at side 9, unbounded beyond), so
	// the row runs at the full intSqrt(N) for the default N=120.
	s.Tasks = append(s.Tasks, Task{Row: "planar", Params: cfg.params(), Run: func(int64) ([][]string, error) {
		side := gridSide(cfg.N)
		g := gen.Grid(side, side)
		res, err := core.Alg1(g, core.PracticalParams())
		if err != nil {
			return nil, fmt.Errorf("planar: %w", err)
		}
		opt, err := mds.ExactMDS(g)
		if err != nil {
			return nil, fmt.Errorf("planar opt: %w", err)
		}
		return [][]string{{"planar (K5,K3,3)", "Alg1 practical", "11+eps [12]", "O_eps(1) [12]",
			ratioString(len(res.S), len(opt)), fmt.Sprintf("<=%d est", res.RoundsEstimate), fmt.Sprint(g.N())}}, nil
	}})

	// K_{1,t}-minor-free (max degree < t): take-all, 0 rounds.
	s.Tasks = append(s.Tasks, Task{Row: "k1t", Params: cfg.params(), Run: func(int64) ([][]string, error) {
		deg := 4
		g, err := gen.RegularLike(cfg.N, deg)
		if err != nil {
			return nil, fmt.Errorf("k1t: %w", err)
		}
		sol := core.TakeAllMDS(g)
		opt, err := mds.ExactMDS(g)
		if err != nil {
			return nil, fmt.Errorf("k1t opt: %w", err)
		}
		tt := deg + 2 // graph is K_{1,deg+1}-minor-free: Δ = deg <= t-1
		return [][]string{{fmt.Sprintf("K1,%d-minor-free", tt), "take all", fmt.Sprint(tt), "0",
			ratioString(len(sol), len(opt)), "1 (silent)", fmt.Sprint(g.N())}}, nil
	}})

	// K_{2,t}-minor-free, Theorem 4.4 (2t-1 in 3 rounds) and Theorem 4.1
	// (50 in O_t(1) rounds), for a sweep of t. Both rows of each t measure
	// the same instances, so they stay one task.
	for _, tt := range []int{3, 4, 5, 6} {
		s.Tasks = append(s.Tasks, Task{Row: fmt.Sprintf("k2t-t%d", tt), Params: cfg.params(), Run: func(seed int64) ([][]string, error) {
			rng := rand.New(rand.NewSource(seed))
			g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: cfg.N, T: tt}, rng)
			small := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: cfg.ProcessN, T: tt}, rng)
			opt, err := mds.ExactMDS(g)
			if err != nil {
				return nil, fmt.Errorf("k2t opt: %w", err)
			}
			d2 := core.D2(g)
			_, d2stats, err := core.RunD2(small, nil, local.Sequential)
			if err != nil {
				return nil, fmt.Errorf("k2t d2 process: %w", err)
			}
			res, err := core.Alg1(g, core.PracticalParams())
			if err != nil {
				return nil, fmt.Errorf("k2t alg1: %w", err)
			}
			_, a1stats, err := core.RunAlg1(small, nil, core.PracticalParams(), local.Sequential)
			if err != nil {
				return nil, fmt.Errorf("k2t alg1 process: %w", err)
			}
			return [][]string{
				{fmt.Sprintf("K2,%d-minor-free", tt), "Thm 4.4 (D2)",
					fmt.Sprint(2*tt - 1), "3",
					ratioString(len(d2.S), len(opt)), fmt.Sprint(d2stats.Rounds), fmt.Sprint(g.N())},
				{fmt.Sprintf("K2,%d-minor-free", tt), "Thm 4.1 (Alg1)",
					"50", "O_t(1)",
					ratioString(len(res.S), len(opt)), fmt.Sprint(a1stats.Rounds), fmt.Sprint(g.N())},
			}, nil
		}})
	}

	// K_{s,t}/K_t-minor-free (cited bounds are astronomically large; our
	// Algorithm 2 runs with an asymptotic-dimension-2 control function on
	// planar-ish inputs as the executable counterpart).
	s.Tasks = append(s.Tasks, Task{Row: "kt", Params: cfg.params(), Run: func(int64) ([][]string, error) {
		side := gridSide(cfg.N)
		g := gen.Grid(side, side)
		res, err := core.Alg2(g, func(r int) int { return 2 * r }, 0)
		if err != nil {
			return nil, fmt.Errorf("kt: %w", err)
		}
		opt, err := mds.ExactMDS(g)
		if err != nil {
			return nil, fmt.Errorf("kt opt: %w", err)
		}
		return [][]string{{"K_t-minor-free", "Alg2 (asdim d, f)", "t^O(t^2 sqrt(log t)) [18]", "7 [18]",
			ratioString(len(res.S), len(opt)), fmt.Sprintf("<=%d est", res.RoundsEstimate), fmt.Sprint(g.N())}}, nil
	}})
	return s
}

// Table1 reproduces the paper's Table 1 by running Table1Spec's tasks
// sequentially with cfg.Seed as the root seed.
func Table1(cfg Table1Config) (*Table, error) {
	return Table1Spec(cfg).RunSequential(cfg.Seed)
}

// MVCTableSpec declares the vertex-cover variants (Theorem 4.4's t-approx
// and the Algorithm 1 variant described after Theorem 4.3).
func MVCTableSpec(cfg Table1Config) Spec {
	s := Spec{
		Name:   "mvc",
		Title:  "Vertex Cover variants (Theorem 4.4 and the Algorithm 1 MVC variant)",
		Header: []string{"class", "algorithm", "paper ratio", "measured ratio", "n"},
	}
	for _, tt := range []int{3, 4, 5} {
		s.Tasks = append(s.Tasks, Task{Row: fmt.Sprintf("k2t-t%d", tt), Params: cfg.params(), Run: func(seed int64) ([][]string, error) {
			rng := rand.New(rand.NewSource(seed))
			g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: cfg.N, T: tt}, rng)
			opt, err := mds.ExactMVC(g)
			if err != nil {
				return nil, fmt.Errorf("mvc opt: %w", err)
			}
			d2 := core.MVCD2(g)
			a1, err := core.MVCAlg1(g, core.PracticalParams())
			if err != nil {
				return nil, fmt.Errorf("mvc alg1: %w", err)
			}
			return [][]string{
				{fmt.Sprintf("K2,%d-minor-free", tt), "Thm 4.4 MVC",
					fmt.Sprint(tt), ratioString(len(d2.S), len(opt)), fmt.Sprint(g.N())},
				{fmt.Sprintf("K2,%d-minor-free", tt), "Alg1 MVC variant",
					"O(1)", ratioString(len(a1.S), len(opt)), fmt.Sprint(g.N())},
			}, nil
		}})
	}
	// Regular graphs: 0-round 2-approximation (§1). The circulant has
	// treewidth 4, so exact MVC falls to branch and bound, which is
	// exponential here (7s at n=120 vs 0.3s at n=96); like the grid rows,
	// the size is capped — by vertex-transitivity the measured ratio is
	// size-independent anyway.
	s.Tasks = append(s.Tasks, Task{Row: "regular", Params: cfg.params(), Run: func(int64) ([][]string, error) {
		g, err := gen.RegularLike(minInt(cfg.N, 96), 4)
		if err != nil {
			return nil, err
		}
		opt, err := mds.ExactMVC(g)
		if err != nil {
			return nil, err
		}
		sol := core.RegularMVC(g)
		return [][]string{{"4-regular", "take all (folklore)", "2",
			ratioString(len(sol), len(opt)), fmt.Sprint(g.N())}}, nil
	}})
	return s
}

// MVCTable measures the vertex-cover variants by running MVCTableSpec
// sequentially with cfg.Seed as the root seed.
func MVCTable(cfg Table1Config) (*Table, error) {
	return MVCTableSpec(cfg).RunSequential(cfg.Seed)
}

// Proposition31Spec declares the local-to-global transfer measurement: on
// trees with BFS-annulus covers, the per-class sums of B-dominating optima
// are bounded by (d+1) MDS(G) via Lemma 5.2, which is the engine of
// Proposition 3.1. One task per instance family.
func Proposition31Spec(cfg Table1Config) Spec {
	s := Spec{
		Name:   "prop31",
		Title:  "Proposition 3.1 / Lemma 5.2 — per-class domination sums vs (d+1) MDS",
		Header: []string{"instance", "d+1", "sum_i sum_B MDS(G,N[B])", "(d+1)*MDS", "ok"},
	}
	instances := []struct {
		name  string
		build func(rng *rand.Rand) *graph.Graph
	}{
		{"tree", func(rng *rand.Rand) *graph.Graph { return gen.RandomTree(cfg.N, rng) }},
		{"cactus", func(rng *rand.Rand) *graph.Graph { return gen.RandomCactus(cfg.N, rng) }},
		{"cycle", func(*rand.Rand) *graph.Graph { return gen.Cycle(cfg.N) }},
	}
	for _, inst := range instances {
		s.Tasks = append(s.Tasks, Task{Row: inst.name, Params: cfg.params(), Run: func(seed int64) ([][]string, error) {
			g := inst.build(rand.New(rand.NewSource(seed)))
			cover, err := asdim.BFSAnnulusCover(g, 5, 2)
			if err != nil {
				return nil, err
			}
			opt, err := mds.ExactMDS(g)
			if err != nil {
				return nil, err
			}
			total := 0
			for _, class := range cover.Classes {
				comps := g.RComponents(class, 5)
				family := asdim.RSeparatedSubfamily(g, comps)
				for _, b := range family {
					sol, err := mds.ExactBDominating(g, g.BallOfSet(b, 1))
					if err != nil {
						return nil, err
					}
					total += len(sol)
				}
			}
			bound := 2 * len(opt)
			return [][]string{{inst.name, "2", fmt.Sprint(total), fmt.Sprint(bound),
				fmt.Sprint(total <= bound)}}, nil
		}})
	}
	return s
}

// Proposition31 measures the Lemma 5.2 transfer bound by running
// Proposition31Spec sequentially with cfg.Seed as the root seed.
func Proposition31(cfg Table1Config) (*Table, error) {
	return Proposition31Spec(cfg).RunSequential(cfg.Seed)
}

func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

// MaxExactGridSide caps the side length of grid rows whose OPT is
// computed exactly. Grids are the exact solver's adversarial case: the
// bitset engine proves side 10 (n=100) in ~0.1s and side 11 in ~2s on the
// CI box, while side 12 is out of reach for any of the repository's
// solvers — so sweeps with -n beyond 121 clamp here rather than stall.
const MaxExactGridSide = 10

// gridSide is the exact-OPT grid side for a target instance size n.
func gridSide(n int) int {
	return minInt(intSqrt(n), MaxExactGridSide)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
