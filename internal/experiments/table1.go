package experiments

import (
	"fmt"
	"math/rand"

	"localmds/internal/asdim"
	"localmds/internal/core"
	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/local"
	"localmds/internal/mds"
)

// Table1Config scales the Table 1 reproduction.
type Table1Config struct {
	// Seed drives every generator.
	Seed int64
	// N is the target instance size for ratio measurements (capped by the
	// exact solver: OPT is computed exactly).
	N int
	// ProcessN is the instance size for round measurements with the real
	// message-passing simulator (smaller, since paper-scale radii force
	// whole-graph views).
	ProcessN int
}

// DefaultTable1Config returns the EXPERIMENTS.md configuration.
func DefaultTable1Config() Table1Config {
	return Table1Config{Seed: 1, N: 120, ProcessN: 48}
}

// Table1 reproduces the paper's Table 1: for each row (graph class) it runs
// the corresponding algorithm from this repository on in-class workloads
// and reports the measured approximation ratio and measured LOCAL rounds
// next to the paper's bound.
func Table1(cfg Table1Config) (*Table, error) {
	t := &Table{
		Title: "Table 1 — constant-round MDS approximation on H-minor-free classes (paper bound vs measured)",
		Header: []string{
			"class", "algorithm", "paper ratio", "paper rounds",
			"measured ratio", "measured rounds", "n",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Row: trees (K3-minor-free), folklore 3-approx in 2 rounds.
	{
		g := gen.RandomTree(cfg.N, rng)
		sol := core.TreeMDS(g)
		opt, err := mds.ExactMDS(g)
		if err != nil {
			return nil, fmt.Errorf("trees: %w", err)
		}
		small := gen.RandomTree(cfg.ProcessN, rng)
		_, stats, err := core.RunTreeMDS(small, nil, local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("trees process: %w", err)
		}
		t.AddRow("trees (K3)", "deg>=2 folklore", "3", "2",
			ratioString(len(sol), len(opt)), fmt.Sprint(stats.Rounds), fmt.Sprint(g.N()))
	}

	// Row: outerplanar (K4, K_{2,3}): our Algorithm 1 with practical
	// radii (the paper cites [4]'s specialized 5-approximation). OPT comes
	// from the treewidth-2 DP.
	{
		g := gen.MaximalOuterplanar(cfg.N, rng)
		res, err := core.Alg1(g, core.PracticalParams())
		if err != nil {
			return nil, fmt.Errorf("outerplanar: %w", err)
		}
		opt, err := mds.ExactMDS(g)
		if err != nil {
			return nil, fmt.Errorf("outerplanar opt: %w", err)
		}
		t.AddRow("outerplanar (K4,K2,3)", "Alg1 practical", "5 [4]", "2 [4]",
			ratioString(len(res.S), len(opt)), fmt.Sprintf("<=%d est", res.RoundsEstimate), fmt.Sprint(g.N()))
	}

	// Row: planar (K5, K_{3,3}): Algorithm 1 on grids (the paper cites
	// [12]'s 11+eps). Grids are the exact solver's worst case, so the
	// side is capped: OPT on larger grids would take hours of branch and
	// bound.
	{
		side := minInt(intSqrt(cfg.N), 7)
		g := gen.Grid(side, side)
		res, err := core.Alg1(g, core.PracticalParams())
		if err != nil {
			return nil, fmt.Errorf("planar: %w", err)
		}
		opt, err := mds.ExactMDS(g)
		if err != nil {
			return nil, fmt.Errorf("planar opt: %w", err)
		}
		t.AddRow("planar (K5,K3,3)", "Alg1 practical", "11+eps [12]", "O_eps(1) [12]",
			ratioString(len(res.S), len(opt)), fmt.Sprintf("<=%d est", res.RoundsEstimate), fmt.Sprint(g.N()))
	}

	// Row: K_{1,t}-minor-free (max degree < t): take-all, 0 rounds.
	{
		deg := 4
		g, err := gen.RegularLike(cfg.N, deg)
		if err != nil {
			return nil, fmt.Errorf("k1t: %w", err)
		}
		sol := core.TakeAllMDS(g)
		opt, err := mds.ExactMDS(g)
		if err != nil {
			return nil, fmt.Errorf("k1t opt: %w", err)
		}
		tt := deg + 2 // graph is K_{1,deg+1}-minor-free: Δ = deg <= t-1
		t.AddRow(fmt.Sprintf("K1,%d-minor-free", tt), "take all", fmt.Sprint(tt), "0",
			ratioString(len(sol), len(opt)), "1 (silent)", fmt.Sprint(g.N()))
	}

	// Rows: K_{2,t}-minor-free, Theorem 4.4 (2t-1 in 3 rounds) and
	// Theorem 4.1 (50 in O_t(1) rounds), for a sweep of t.
	for _, tt := range []int{3, 4, 5, 6} {
		g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: cfg.N, T: tt}, rng)
		opt, err := mds.ExactMDS(g)
		if err != nil {
			return nil, fmt.Errorf("k2t opt: %w", err)
		}
		d2 := core.D2(g)
		small := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: cfg.ProcessN, T: tt}, rng)
		_, d2stats, err := core.RunD2(small, nil, local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("k2t d2 process: %w", err)
		}
		t.AddRow(fmt.Sprintf("K2,%d-minor-free", tt), "Thm 4.4 (D2)",
			fmt.Sprint(2*tt-1), "3",
			ratioString(len(d2.S), len(opt)), fmt.Sprint(d2stats.Rounds), fmt.Sprint(g.N()))

		res, err := core.Alg1(g, core.PracticalParams())
		if err != nil {
			return nil, fmt.Errorf("k2t alg1: %w", err)
		}
		_, a1stats, err := core.RunAlg1(small, nil, core.PracticalParams(), local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("k2t alg1 process: %w", err)
		}
		t.AddRow(fmt.Sprintf("K2,%d-minor-free", tt), "Thm 4.1 (Alg1)",
			"50", "O_t(1)",
			ratioString(len(res.S), len(opt)), fmt.Sprint(a1stats.Rounds), fmt.Sprint(g.N()))
	}

	// Row: K_{s,t}/K_t-minor-free (cited bounds are astronomically large;
	// our Algorithm 2 runs with an asymptotic-dimension-2 control function
	// on planar-ish inputs as the executable counterpart).
	{
		side := minInt(intSqrt(cfg.N), 7)
		g := gen.Grid(side, side)
		res, err := core.Alg2(g, func(r int) int { return 2 * r }, 0)
		if err != nil {
			return nil, fmt.Errorf("kt: %w", err)
		}
		opt, err := mds.ExactMDS(g)
		if err != nil {
			return nil, fmt.Errorf("kt opt: %w", err)
		}
		t.AddRow("K_t-minor-free", "Alg2 (asdim d, f)", "t^O(t^2 sqrt(log t)) [18]", "7 [18]",
			ratioString(len(res.S), len(opt)), fmt.Sprintf("<=%d est", res.RoundsEstimate), fmt.Sprint(g.N()))
	}
	return t, nil
}

// MVCTable measures the vertex-cover variants (Theorem 4.4's t-approx and
// the Algorithm 1 variant described after Theorem 4.3).
func MVCTable(cfg Table1Config) (*Table, error) {
	t := &Table{
		Title:  "Vertex Cover variants (Theorem 4.4 and the Algorithm 1 MVC variant)",
		Header: []string{"class", "algorithm", "paper ratio", "measured ratio", "n"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	for _, tt := range []int{3, 4, 5} {
		g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: cfg.N, T: tt}, rng)
		opt, err := mds.ExactMVC(g)
		if err != nil {
			return nil, fmt.Errorf("mvc opt: %w", err)
		}
		d2 := core.MVCD2(g)
		t.AddRow(fmt.Sprintf("K2,%d-minor-free", tt), "Thm 4.4 MVC",
			fmt.Sprint(tt), ratioString(len(d2.S), len(opt)), fmt.Sprint(g.N()))
		a1, err := core.MVCAlg1(g, core.PracticalParams())
		if err != nil {
			return nil, fmt.Errorf("mvc alg1: %w", err)
		}
		t.AddRow(fmt.Sprintf("K2,%d-minor-free", tt), "Alg1 MVC variant",
			"O(1)", ratioString(len(a1.S), len(opt)), fmt.Sprint(g.N()))
	}
	// Regular graphs: 0-round 2-approximation (§1).
	g, err := gen.RegularLike(cfg.N, 4)
	if err != nil {
		return nil, err
	}
	opt, err := mds.ExactMVC(g)
	if err != nil {
		return nil, err
	}
	sol := core.RegularMVC(g)
	t.AddRow("4-regular", "take all (folklore)", "2",
		ratioString(len(sol), len(opt)), fmt.Sprint(g.N()))
	return t, nil
}

// Proposition31 measures the local-to-global transfer machinery: on trees
// with BFS-annulus covers, the per-class sums of B-dominating optima are
// bounded by (d+1) MDS(G) via Lemma 5.2, which is the engine of
// Proposition 3.1.
func Proposition31(cfg Table1Config) (*Table, error) {
	t := &Table{
		Title:  "Proposition 3.1 / Lemma 5.2 — per-class domination sums vs (d+1) MDS",
		Header: []string{"instance", "d+1", "sum_i sum_B MDS(G,N[B])", "(d+1)*MDS", "ok"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	instances := []struct {
		name string
		g    *graph.Graph
	}{
		{"tree", gen.RandomTree(cfg.N, rng)},
		{"cactus", gen.RandomCactus(cfg.N, rng)},
		{"cycle", gen.Cycle(cfg.N)},
	}
	for _, inst := range instances {
		cover, err := asdim.BFSAnnulusCover(inst.g, 5, 2)
		if err != nil {
			return nil, err
		}
		opt, err := mds.ExactMDS(inst.g)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, class := range cover.Classes {
			comps := inst.g.RComponents(class, 5)
			family := asdim.RSeparatedSubfamily(inst.g, comps)
			for _, b := range family {
				sol, err := mds.ExactBDominating(inst.g, inst.g.BallOfSet(b, 1))
				if err != nil {
					return nil, err
				}
				total += len(sol)
			}
		}
		bound := 2 * len(opt)
		t.AddRow(inst.name, "2", fmt.Sprint(total), fmt.Sprint(bound),
			fmt.Sprint(total <= bound))
	}
	return t, nil
}

func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
