package experiments

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"a", "long-column"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	out := tab.Render()
	for _, want := range []string{"## demo", "| a  ", "| long-column |", "| 333"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderAlignsMultibyteCells(t *testing.T) {
	// Aggregated cells carry multi-byte runes (±, ⟨⟩); every rendered line
	// must still have the same display width (rune count).
	tab := &Table{Header: []string{"a", "b"}}
	tab.AddRow("1.5 ±0.5 [1..2]", "x")
	tab.AddRow("2", "true ⟨2/3⟩")
	lines := strings.Split(strings.TrimRight(tab.Render(), "\n"), "\n")
	want := len([]rune(lines[0]))
	for _, line := range lines[1:] {
		if got := len([]rune(line)); got != want {
			t.Errorf("line %q is %d runes wide, want %d", line, got, want)
		}
	}
}

func TestLeadingFloat(t *testing.T) {
	cases := []struct {
		cell string
		f    float64
		ok   bool
	}{
		{"1.23 (37/30)", 1.23, true},
		{"<=14 est", 14, true},
		{"7", 7, true},
		{"n/a", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		f, ok := LeadingFloat(c.cell)
		if f != c.f || ok != c.ok {
			t.Errorf("LeadingFloat(%q) = %v, %v; want %v, %v", c.cell, f, ok, c.f, c.ok)
		}
	}
}

func TestRatioString(t *testing.T) {
	if got := ratioString(6, 3); got != "2.00 (6/3)" {
		t.Errorf("ratioString = %q", got)
	}
	if got := ratioString(1, 0); got != "n/a" {
		t.Errorf("ratioString zero-opt = %q", got)
	}
}

func TestTable1Small(t *testing.T) {
	cfg := Table1Config{Seed: 1, N: 40, ProcessN: 16}
	tab, err := Table1(cfg)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	// trees, outerplanar, planar, K1t, 4x2 K2t rows, Kt = 13 rows.
	if len(tab.Rows) != 13 {
		t.Errorf("Table1 has %d rows, want 13:\n%s", len(tab.Rows), tab.Render())
	}
	// Every measured ratio cell parses as "x.xx (a/b)" with x below the
	// paper's constants; spot check no "n/a".
	for _, row := range tab.Rows {
		if row[4] == "n/a" {
			t.Errorf("row %v has no measured ratio", row)
		}
	}
}

func TestMVCTableSmall(t *testing.T) {
	cfg := Table1Config{Seed: 1, N: 40, ProcessN: 16}
	tab, err := MVCTable(cfg)
	if err != nil {
		t.Fatalf("MVCTable: %v", err)
	}
	if len(tab.Rows) != 7 {
		t.Errorf("MVCTable has %d rows, want 7", len(tab.Rows))
	}
}

func TestProposition31Small(t *testing.T) {
	cfg := Table1Config{Seed: 1, N: 36, ProcessN: 16}
	tab, err := Proposition31(cfg)
	if err != nil {
		t.Fatalf("Proposition31: %v", err)
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("Lemma 5.2 bound violated in row %v", row)
		}
	}
}

func TestLemma32Small(t *testing.T) {
	tab, err := Lemma32(1, []int{24, 48}, 3)
	if err != nil {
		t.Fatalf("Lemma32: %v", err)
	}
	if len(tab.Rows) != 6 {
		t.Errorf("rows = %d, want 6", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("Lemma 3.2 bound violated in row %v", row)
		}
	}
}

func TestLemma33Small(t *testing.T) {
	tab, err := Lemma33(1, []int{20, 30}, 3)
	if err != nil {
		t.Fatalf("Lemma33: %v", err)
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("Lemma 3.3 bound violated in row %v", row)
		}
	}
}

func TestLemma42Small(t *testing.T) {
	tab, err := Lemma42(1, []int{40, 80})
	if err != nil {
		t.Fatalf("Lemma42: %v", err)
	}
	if len(tab.Rows) != 6 { // 2 sizes x 3 radii
		t.Errorf("rows = %d, want 6", len(tab.Rows))
	}
}

func TestLemma518Small(t *testing.T) {
	tab, err := Lemma518(1, []int{30, 40}, 5)
	if err != nil {
		t.Fatalf("Lemma518: %v", err)
	}
	for _, row := range tab.Rows {
		if row[4] != "true" {
			t.Errorf("Lemma 5.18 bound violated in row %v", row)
		}
	}
}

func TestCycleLocalCutsTable(t *testing.T) {
	tab := CycleLocalCuts([]int{30, 60}, 3)
	for _, row := range tab.Rows {
		if row[1] != row[0] {
			t.Errorf("cycle row %v: all vertices should be local 1-cuts", row)
		}
		if row[2] != "0" {
			t.Errorf("cycle row %v: no global cut vertices expected", row)
		}
	}
}

func TestSPQRStatsSmall(t *testing.T) {
	tab, err := SPQRStats(1, []int{12, 16})
	if err != nil {
		t.Fatalf("SPQRStats: %v", err)
	}
	for _, row := range tab.Rows {
		if row[4] != "true" {
			t.Errorf("Prop 5.7 coverage failed in row %v", row)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}}
	tab.AddRow("1", "x,y")
	var buf strings.Builder
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}
