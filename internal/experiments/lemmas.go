package experiments

import (
	"fmt"
	"math/rand"

	"localmds/internal/core"
	"localmds/internal/cuts"
	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/mds"
	"localmds/internal/spqr"
)

// Lemma32Spec declares the Lemma 3.2 constant measurement: the number of
// r-local minimal 1-cuts against c3.2(1) * MDS(G) on the paper's classes.
// One task per (n, instance family).
func Lemma32Spec(ns []int, r int) Spec {
	s := Spec{
		Name:   "lemma32",
		Title:  fmt.Sprintf("Lemma 3.2 — #(%d-local 1-cuts) vs c3.2(1)*MDS = 6*MDS", r),
		Header: []string{"instance", "n", "local 1-cuts", "MDS", "ratio", "<= 6"},
	}
	for _, n := range ns {
		for _, inst := range lemmaInstances(n) {
			s.Tasks = append(s.Tasks, Task{Row: fmt.Sprintf("n%d-%s", n, inst.name), Params: fmt.Sprintf("r=%d", r), Run: func(seed int64) ([][]string, error) {
				g := inst.build(rand.New(rand.NewSource(seed)))
				locals := cuts.LocalOneCuts(g, r)
				opt, err := mds.ExactMDS(g)
				if err != nil {
					return nil, fmt.Errorf("lemma32 %s n=%d: %w", inst.name, n, err)
				}
				ratio := float64(len(locals)) / float64(len(opt))
				return [][]string{{inst.name, fmt.Sprint(g.N()), fmt.Sprint(len(locals)),
					fmt.Sprint(len(opt)), fmt.Sprintf("%.2f", ratio),
					fmt.Sprint(len(locals) <= 6*len(opt))}}, nil
			}})
		}
	}
	return s
}

// lemmaInstances is the Lemma 3.2 workload family at size n.
func lemmaInstances(n int) []namedBuilder {
	return []namedBuilder{
		{"cycle", func(*rand.Rand) *graph.Graph { return gen.Cycle(n) }},
		{"tree", func(rng *rand.Rand) *graph.Graph { return gen.RandomTree(n, rng) }},
		{"ding-mixed", func(rng *rand.Rand) *graph.Graph {
			return ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: n, T: 5}, rng)
		}},
	}
}

// namedBuilder pairs an instance family name with its seeded constructor.
type namedBuilder struct {
	name  string
	build func(rng *rand.Rand) *graph.Graph
}

// Lemma32 runs Lemma32Spec sequentially with seed as root.
func Lemma32(seed int64, ns []int, r int) (*Table, error) {
	return Lemma32Spec(ns, r).RunSequential(seed)
}

// Lemma33Spec declares the Lemma 3.3 constant measurement — the number of
// r-interesting vertices against c3.3(1) * MDS — contrasted with the
// unrestricted count of 2-cut vertices on the clique-plus-pendants
// instance from §4, which grows linearly while MDS stays 1. One task per
// (n, instance family).
func Lemma33Spec(ns []int, r int) Spec {
	s := Spec{
		Name:   "lemma33",
		Title:  fmt.Sprintf("Lemma 3.3 — #(%d-interesting vertices) vs c3.3(1)*MDS = 44*MDS; plain 2-cut vertices are unbounded", r),
		Header: []string{"instance", "n", "2-cut vertices", "interesting", "MDS", "interesting/MDS", "<= 44"},
	}
	for _, n := range ns {
		instances := []namedBuilder{
			{"clique+pendants", func(*rand.Rand) *graph.Graph { return gen.CliquePendants(n / 2) }},
			{"ding-mixed", func(rng *rand.Rand) *graph.Graph {
				return ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: n, T: 5}, rng)
			}},
			{"cycle", func(*rand.Rand) *graph.Graph { return gen.Cycle(n) }},
		}
		for _, inst := range instances {
			s.Tasks = append(s.Tasks, Task{Row: fmt.Sprintf("n%d-%s", n, inst.name), Params: fmt.Sprintf("r=%d", r), Run: func(seed int64) ([][]string, error) {
				g := inst.build(rand.New(rand.NewSource(seed)))
				twoCutVerts := map[int]bool{}
				for _, c := range cuts.MinimalTwoCuts(g) {
					twoCutVerts[c.U] = true
					twoCutVerts[c.V] = true
				}
				interesting := cuts.LocallyInterestingVertices(g, r)
				opt, err := mds.ExactMDS(g)
				if err != nil {
					return nil, fmt.Errorf("lemma33 %s n=%d: %w", inst.name, n, err)
				}
				ratio := float64(len(interesting)) / float64(len(opt))
				return [][]string{{inst.name, fmt.Sprint(g.N()), fmt.Sprint(len(twoCutVerts)),
					fmt.Sprint(len(interesting)), fmt.Sprint(len(opt)),
					fmt.Sprintf("%.2f", ratio), fmt.Sprint(len(interesting) <= 44*len(opt))}}, nil
			}})
		}
	}
	return s
}

// Lemma33 runs Lemma33Spec sequentially with seed as root.
func Lemma33(seed int64, ns []int, r int) (*Table, error) {
	return Lemma33Spec(ns, r).RunSequential(seed)
}

// Lemma42Spec declares the residual-diameter measurement after Algorithm
// 1's cut phase on growing strip chains: Lemma 4.2 predicts it stays
// bounded by m4.2(t) as n grows, for every radius. Small radii take many
// local cuts (few residual components); larger radii leave more
// brute-force work whose diameter must still not grow with n. One task per
// n; the radius rows share the instance.
func Lemma42Spec(ns []int) Spec {
	s := Spec{
		Name:   "lemma42",
		Title:  "Lemma 4.2 — residual component diameter stays bounded as n grows (strip chains, T=5)",
		Header: []string{"n", "R1=R2", "components", "max diameter", "|X|", "|I|"},
	}
	for _, n := range ns {
		s.Tasks = append(s.Tasks, Task{Row: fmt.Sprintf("n%d", n), Run: func(seed int64) ([][]string, error) {
			rng := rand.New(rand.NewSource(seed))
			g := ding.MustGenerate(ding.Config{Kind: ding.StripChain, N: n, T: 5}, rng)
			var rows [][]string
			for _, r := range []int{2, 4, 8} {
				res, err := core.Alg1(g, core.Params{R1: r, R2: r})
				if err != nil {
					return nil, fmt.Errorf("lemma42 n=%d r=%d: %w", n, r, err)
				}
				rows = append(rows, []string{fmt.Sprint(g.N()), fmt.Sprint(r), fmt.Sprint(len(res.Components)),
					fmt.Sprint(res.MaxComponentDiameter), fmt.Sprint(len(res.X)), fmt.Sprint(len(res.I))})
			}
			return rows, nil
		}})
	}
	return s
}

// Lemma42 runs Lemma42Spec sequentially with seed as root.
func Lemma42(seed int64, ns []int) (*Table, error) {
	return Lemma42Spec(ns).RunSequential(seed)
}

// Lemma518Spec declares the Figure 1/2 construction measurement: |A| vs
// (t-1)|B| on K_{2,t}-minor-free instances (Lemmas 5.17/5.18). One task
// per n.
func Lemma518Spec(ns []int, tParam int) Spec {
	s := Spec{
		Name:   "lemma518",
		Title:  fmt.Sprintf("Lemmas 5.17/5.18 (Figures 1-2) — |A| <= (t-1)|B| with t = %d", tParam),
		Header: []string{"n", "|A|", "|B|", "(t-1)|B|", "ok", "|D2|"},
	}
	for _, n := range ns {
		s.Tasks = append(s.Tasks, Task{Row: fmt.Sprintf("n%d", n), Params: fmt.Sprintf("t=%d", tParam), Run: func(seed int64) ([][]string, error) {
			rng := rand.New(rand.NewSource(seed))
			g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: n, T: tParam}, rng)
			res, err := core.BuildMinorBound(g)
			if err != nil {
				return nil, fmt.Errorf("lemma518 n=%d: %w", n, err)
			}
			ok := core.VerifyMinorBound(res, tParam) == nil
			return [][]string{{fmt.Sprint(g.N()), fmt.Sprint(len(res.A)), fmt.Sprint(len(res.B)),
				fmt.Sprint((tParam - 1) * len(res.B)), fmt.Sprint(ok), fmt.Sprint(res.D2Count)}}, nil
		}})
	}
	return s
}

// Lemma518 runs Lemma518Spec sequentially with seed as root.
func Lemma518(seed int64, ns []int, tParam int) (*Table, error) {
	return Lemma518Spec(ns, tParam).RunSequential(seed)
}

// CycleLocalCutsSpec declares the §4 discussion reproduction: on the cycle
// every vertex is an r-local 1-cut while no vertex is a global cut vertex.
// The construction is deterministic; tasks ignore their seeds.
func CycleLocalCutsSpec(ns []int, r int) Spec {
	s := Spec{
		Name:   "cycle-local-cuts",
		Title:  fmt.Sprintf("§4 discussion — long cycles: all vertices are %d-local 1-cuts, none are global", r),
		Header: []string{"n", "local 1-cuts", "global cut vertices", "MDS", "locals/MDS"},
	}
	for _, n := range ns {
		s.Tasks = append(s.Tasks, Task{Row: fmt.Sprintf("n%d", n), Params: fmt.Sprintf("r=%d", r), Run: func(int64) ([][]string, error) {
			g := gen.Cycle(n)
			locals := cuts.LocalOneCuts(g, r)
			arts := cuts.ArticulationPoints(g)
			optSize := (n + 2) / 3 // MDS of a cycle is ceil(n/3)
			return [][]string{{fmt.Sprint(n), fmt.Sprint(len(locals)), fmt.Sprint(len(arts)),
				fmt.Sprint(optSize), fmt.Sprintf("%.2f", float64(len(locals))/float64(optSize))}}, nil
		}})
	}
	return s
}

// CycleLocalCuts runs CycleLocalCutsSpec sequentially; the tasks are
// deterministic and cannot fail.
func CycleLocalCuts(ns []int, r int) *Table {
	return CycleLocalCutsSpec(ns, r).mustRunSequential(0)
}

// SPQRStatsSpec declares the SPQR decomposition statistics: random
// 2-connected graphs are decomposed, Proposition 5.7 coverage is verified,
// and the interesting-cut family count of Proposition 5.8 is reported. One
// task per n.
func SPQRStatsSpec(ns []int) Spec {
	s := Spec{
		Name:   "spqr",
		Title:  "SPQR / Prop 5.7 / Prop 5.8 — decomposition statistics on random 2-connected graphs",
		Header: []string{"n", "S", "P", "R", "2-cuts covered", "families (<=3?)"},
	}
	for _, n := range ns {
		s.Tasks = append(s.Tasks, Task{Row: fmt.Sprintf("n%d", n), Run: func(seed int64) ([][]string, error) {
			rng := rand.New(rand.NewSource(seed))
			g := gen.Cycle(n)
			for c := 0; c < n/4; c++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u != v && !g.HasEdge(u, v) {
					g.AddEdge(u, v)
				}
			}
			tree, err := spqr.Decompose(g)
			if err != nil {
				return nil, fmt.Errorf("spqr n=%d: %w", n, err)
			}
			sc, p, r := tree.CountTypes()
			covered := true
			candSet := map[[2]int]bool{}
			for _, cp := range tree.CandidateTwoCuts() {
				candSet[[2]int{cp.U, cp.V}] = true
			}
			for _, c := range cuts.MinimalTwoCuts(g) {
				if !candSet[[2]int{c.U, c.V}] {
					covered = false
				}
			}
			families := spqr.InterestingFamilies(g)
			return [][]string{{fmt.Sprint(n), fmt.Sprint(sc), fmt.Sprint(p), fmt.Sprint(r),
				fmt.Sprint(covered), fmt.Sprintf("%d (%v)", len(families), len(families) <= 3)}}, nil
		}})
	}
	return s
}

// SPQRStats runs SPQRStatsSpec sequentially with seed as root.
func SPQRStats(seed int64, ns []int) (*Table, error) {
	return SPQRStatsSpec(ns).RunSequential(seed)
}
