package experiments

import (
	"fmt"
	"math/rand"

	"localmds/internal/core"
	"localmds/internal/cuts"
	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/mds"
	"localmds/internal/spqr"
)

// Lemma32 measures the Lemma 3.2 constant: the number of r-local minimal
// 1-cuts against c3.2(1) * MDS(G) on the paper's classes.
func Lemma32(seed int64, ns []int, r int) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Lemma 3.2 — #(%d-local 1-cuts) vs c3.2(1)*MDS = 6*MDS", r),
		Header: []string{"instance", "n", "local 1-cuts", "MDS", "ratio", "<= 6"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range ns {
		instances := []struct {
			name string
			g    *graph.Graph
		}{
			{"cycle", gen.Cycle(n)},
			{"tree", gen.RandomTree(n, rng)},
			{"ding-mixed", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: n, T: 5}, rng)},
		}
		for _, inst := range instances {
			locals := cuts.LocalOneCuts(inst.g, r)
			opt, err := mds.ExactMDS(inst.g)
			if err != nil {
				return nil, fmt.Errorf("lemma32 %s n=%d: %w", inst.name, n, err)
			}
			ratio := float64(len(locals)) / float64(len(opt))
			t.AddRow(inst.name, fmt.Sprint(inst.g.N()), fmt.Sprint(len(locals)),
				fmt.Sprint(len(opt)), fmt.Sprintf("%.2f", ratio),
				fmt.Sprint(len(locals) <= 6*len(opt)))
		}
	}
	return t, nil
}

// Lemma33 measures the Lemma 3.3 constant — the number of r-interesting
// vertices against c3.3(1) * MDS — and contrasts it with the unrestricted
// count of 2-cut vertices on the clique-plus-pendants instance from §4,
// which grows linearly while MDS stays 1.
func Lemma33(seed int64, ns []int, r int) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Lemma 3.3 — #(%d-interesting vertices) vs c3.3(1)*MDS = 44*MDS; plain 2-cut vertices are unbounded", r),
		Header: []string{"instance", "n", "2-cut vertices", "interesting", "MDS", "interesting/MDS", "<= 44"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range ns {
		instances := []struct {
			name string
			g    *graph.Graph
		}{
			{"clique+pendants", gen.CliquePendants(n / 2)},
			{"ding-mixed", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: n, T: 5}, rng)},
			{"cycle", gen.Cycle(n)},
		}
		for _, inst := range instances {
			twoCutVerts := map[int]bool{}
			for _, c := range cuts.MinimalTwoCuts(inst.g) {
				twoCutVerts[c.U] = true
				twoCutVerts[c.V] = true
			}
			interesting := cuts.LocallyInterestingVertices(inst.g, r)
			opt, err := mds.ExactMDS(inst.g)
			if err != nil {
				return nil, fmt.Errorf("lemma33 %s n=%d: %w", inst.name, n, err)
			}
			ratio := float64(len(interesting)) / float64(len(opt))
			t.AddRow(inst.name, fmt.Sprint(inst.g.N()), fmt.Sprint(len(twoCutVerts)),
				fmt.Sprint(len(interesting)), fmt.Sprint(len(opt)),
				fmt.Sprintf("%.2f", ratio), fmt.Sprint(len(interesting) <= 44*len(opt)))
		}
	}
	return t, nil
}

// Lemma42 measures the residual component diameter after Algorithm 1's cut
// phase on growing strip chains: Lemma 4.2 predicts it stays bounded by
// m4.2(t) as n grows, for every radius. Small radii take many local cuts
// (few residual components); larger radii leave more brute-force work whose
// diameter must still not grow with n.
func Lemma42(seed int64, ns []int) (*Table, error) {
	t := &Table{
		Title:  "Lemma 4.2 — residual component diameter stays bounded as n grows (strip chains, T=5)",
		Header: []string{"n", "R1=R2", "components", "max diameter", "|X|", "|I|"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range ns {
		g := ding.MustGenerate(ding.Config{Kind: ding.StripChain, N: n, T: 5}, rng)
		for _, r := range []int{2, 4, 8} {
			res, err := core.Alg1(g, core.Params{R1: r, R2: r})
			if err != nil {
				return nil, fmt.Errorf("lemma42 n=%d r=%d: %w", n, r, err)
			}
			t.AddRow(fmt.Sprint(g.N()), fmt.Sprint(r), fmt.Sprint(len(res.Components)),
				fmt.Sprint(res.MaxComponentDiameter), fmt.Sprint(len(res.X)), fmt.Sprint(len(res.I)))
		}
	}
	return t, nil
}

// Lemma518 measures the Figure 1/2 construction: |A| vs (t-1)|B| on
// K_{2,t}-minor-free instances (Lemmas 5.17/5.18).
func Lemma518(seed int64, ns []int, tParam int) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Lemmas 5.17/5.18 (Figures 1-2) — |A| <= (t-1)|B| with t = %d", tParam),
		Header: []string{"n", "|A|", "|B|", "(t-1)|B|", "ok", "|D2|"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range ns {
		g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: n, T: tParam}, rng)
		res, err := core.BuildMinorBound(g)
		if err != nil {
			return nil, fmt.Errorf("lemma518 n=%d: %w", n, err)
		}
		ok := core.VerifyMinorBound(res, tParam) == nil
		t.AddRow(fmt.Sprint(g.N()), fmt.Sprint(len(res.A)), fmt.Sprint(len(res.B)),
			fmt.Sprint((tParam-1)*len(res.B)), fmt.Sprint(ok), fmt.Sprint(res.D2Count))
	}
	return t, nil
}

// CycleLocalCuts reproduces the §4 discussion: on the cycle every vertex is
// an r-local 1-cut while no vertex is a global cut vertex.
func CycleLocalCuts(ns []int, r int) *Table {
	t := &Table{
		Title:  fmt.Sprintf("§4 discussion — long cycles: all vertices are %d-local 1-cuts, none are global", r),
		Header: []string{"n", "local 1-cuts", "global cut vertices", "MDS", "locals/MDS"},
	}
	for _, n := range ns {
		g := gen.Cycle(n)
		locals := cuts.LocalOneCuts(g, r)
		arts := cuts.ArticulationPoints(g)
		optSize := (n + 2) / 3 // MDS of a cycle is ceil(n/3)
		t.AddRow(fmt.Sprint(n), fmt.Sprint(len(locals)), fmt.Sprint(len(arts)),
			fmt.Sprint(optSize), fmt.Sprintf("%.2f", float64(len(locals))/float64(optSize)))
	}
	return t
}

// SPQRStats decomposes random 2-connected graphs, verifies Proposition 5.7
// coverage and reports the interesting-cut family count of
// Proposition 5.8.
func SPQRStats(seed int64, ns []int) (*Table, error) {
	t := &Table{
		Title:  "SPQR / Prop 5.7 / Prop 5.8 — decomposition statistics on random 2-connected graphs",
		Header: []string{"n", "S", "P", "R", "2-cuts covered", "families (<=3?)"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range ns {
		g := gen.Cycle(n)
		for c := 0; c < n/4; c++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
		tree, err := spqr.Decompose(g)
		if err != nil {
			return nil, fmt.Errorf("spqr n=%d: %w", n, err)
		}
		s, p, r := tree.CountTypes()
		covered := true
		candSet := map[[2]int]bool{}
		for _, cp := range tree.CandidateTwoCuts() {
			candSet[[2]int{cp.U, cp.V}] = true
		}
		for _, c := range cuts.MinimalTwoCuts(g) {
			if !candSet[[2]int{c.U, c.V}] {
				covered = false
			}
		}
		families := spqr.InterestingFamilies(g)
		t.AddRow(fmt.Sprint(n), fmt.Sprint(s), fmt.Sprint(p), fmt.Sprint(r),
			fmt.Sprint(covered), fmt.Sprintf("%d (%v)", len(families), len(families) <= 3))
	}
	return t, nil
}
