package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"localmds/internal/core"
	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
)

// StageProfileSpec declares the Algorithm 1 pipeline profile: one row per
// pipeline stage (TwinReduce → Cuts → Partition → ComponentSolve → Stitch)
// on three instance shapes — a connected ding Mixed instance, a grid, and a
// multi-component disjoint union that exercises the ComponentSolve
// fan-out. Wall times and allocation counts are measurements, so this
// table is NOT deterministic across runs or -parallel values; cmd/mdsbench
// therefore runs it only when asked for explicitly (-only stages), keeping
// the byte-identical guarantee of the default sweep intact.
func StageProfileSpec(n int) Spec {
	s := Spec{
		Name:   "stage-profile",
		Title:  "Algorithm 1 pipeline — per-stage profile (wall times nondeterministic by nature)",
		Header: []string{"instance", "stage", "items", "wall ms", "allocs"},
	}
	type instance struct {
		row   string
		build func(seed int64) *graph.Graph
	}
	instances := []instance{
		{"ding-mixed", func(seed int64) *graph.Graph {
			return ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: n, T: 5}, rand.New(rand.NewSource(seed)))
		}},
		{"grid", func(seed int64) *graph.Graph {
			side := 1
			for side*side < n {
				side++
			}
			return gen.Grid(side, side)
		}},
		{"multi-component", func(seed int64) *graph.Graph {
			// Grids keep their interior out of the cut sets, so a union of
			// grids leaves one residual component per grid — the shape that
			// exercises the ComponentSolve fan-out.
			side := 1
			for side*side < n/4 {
				side++
			}
			g := gen.Grid(side, side)
			for i := 0; i < 3; i++ {
				g = graph.DisjointUnion(g, gen.Grid(side, side))
			}
			return g
		}},
	}
	for _, inst := range instances {
		inst := inst
		s.Tasks = append(s.Tasks, Task{Row: inst.row, Params: fmt.Sprintf("n=%d", n), Run: func(seed int64) ([][]string, error) {
			g := inst.build(seed)
			res, err := core.Alg1(g, core.PracticalParams())
			if err != nil {
				return nil, fmt.Errorf("stage profile %s: %w", inst.row, err)
			}
			rows := make([][]string, 0, len(res.StageStats))
			for _, st := range res.StageStats {
				rows = append(rows, []string{
					inst.row, st.Name, fmt.Sprintf("%d %s", st.Items, st.Unit),
					fmt.Sprintf("%.3f", float64(st.Wall)/float64(time.Millisecond)),
					fmt.Sprint(st.Allocs),
				})
			}
			rows = append(rows, []string{inst.row, "total", fmt.Sprintf("n=%d m=%d", g.N(), g.M()),
				fmt.Sprintf("%.3f", float64(res.StageStats.TotalWall())/float64(time.Millisecond)), ""})
			return rows, nil
		}})
	}
	return s
}

// StageProfile runs StageProfileSpec sequentially with seed as root.
func StageProfile(seed int64, n int) (*Table, error) {
	return StageProfileSpec(n).RunSequential(seed)
}
