package experiments

import (
	"testing"
	"time"
)

// TestTable1DefaultConfigFinishes guards the default mdsbench run against
// exact-solver blowups: the whole Table 1 must complete within a couple of
// minutes. (The tree row dispatches to the forest DP; grid rows run at
// side gridSide(N) = 10 by default, where the bitset engine proves OPT in
// ~0.1s; the ding instances are small-treewidth and go to the DP.)
func TestTable1DefaultConfigFinishes(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running sanity check")
	}
	start := time.Now()
	if _, err := Table1(DefaultTable1Config()); err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Minute {
		t.Errorf("Table1 took %v; default config regressed", elapsed)
	}
}
