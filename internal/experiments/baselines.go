package experiments

import (
	"fmt"
	"math/rand"

	"localmds/internal/core"
	"localmds/internal/ding"
	"localmds/internal/mds"
)

// Baselines contrasts the constant-round algorithms with the phase-based
// distributed greedy on growing instances: greedy's phase count climbs
// with n while the paper's algorithms stay at a fixed round budget — the
// introduction's motivation made measurable.
func Baselines(seed int64, ns []int) (*Table, error) {
	t := &Table{
		Title:  "Baselines — distributed greedy phases grow with n; the paper's algorithms stay constant",
		Header: []string{"n", "greedy |S|", "greedy phases", "D2 |S| (5 rounds)", "Alg1 |S| (const rounds)", "OPT"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range ns {
		g := ding.MustGenerate(ding.Config{Kind: ding.StripChain, N: n, T: 5}, rng)
		greedySol, phases := core.GreedyDistributed(g)
		d2 := core.D2(g)
		alg1, err := core.Alg1(g, core.PracticalParams())
		if err != nil {
			return nil, fmt.Errorf("baselines n=%d: %w", n, err)
		}
		opt, err := mds.ExactMDS(g)
		if err != nil {
			return nil, fmt.Errorf("baselines opt n=%d: %w", n, err)
		}
		t.AddRow(fmt.Sprint(g.N()), fmt.Sprint(len(greedySol)), fmt.Sprint(phases),
			fmt.Sprint(len(d2.S)), fmt.Sprint(len(alg1.S)), fmt.Sprint(len(opt)))
	}
	return t, nil
}
