package experiments

import (
	"fmt"
	"math/rand"

	"localmds/internal/core"
	"localmds/internal/ding"
	"localmds/internal/mds"
)

// BaselinesSpec declares the baseline contrast: the phase-based
// distributed greedy on growing instances climbs with n while the paper's
// algorithms stay at a fixed round budget — the introduction's motivation
// made measurable. One task per n.
func BaselinesSpec(ns []int) Spec {
	s := Spec{
		Name:   "baselines",
		Title:  "Baselines — distributed greedy phases grow with n; the paper's algorithms stay constant",
		Header: []string{"n", "greedy |S|", "greedy phases", "D2 |S| (5 rounds)", "Alg1 |S| (const rounds)", "OPT"},
	}
	for _, n := range ns {
		s.Tasks = append(s.Tasks, Task{Row: fmt.Sprintf("n%d", n), Run: func(seed int64) ([][]string, error) {
			rng := rand.New(rand.NewSource(seed))
			g := ding.MustGenerate(ding.Config{Kind: ding.StripChain, N: n, T: 5}, rng)
			greedySol, phases := core.GreedyDistributed(g)
			d2 := core.D2(g)
			alg1, err := core.Alg1(g, core.PracticalParams())
			if err != nil {
				return nil, fmt.Errorf("baselines n=%d: %w", n, err)
			}
			opt, err := mds.ExactMDS(g)
			if err != nil {
				return nil, fmt.Errorf("baselines opt n=%d: %w", n, err)
			}
			return [][]string{{fmt.Sprint(g.N()), fmt.Sprint(len(greedySol)), fmt.Sprint(phases),
				fmt.Sprint(len(d2.S)), fmt.Sprint(len(alg1.S)), fmt.Sprint(len(opt))}}, nil
		}})
	}
	return s
}

// Baselines runs BaselinesSpec sequentially with seed as root.
func Baselines(seed int64, ns []int) (*Table, error) {
	return BaselinesSpec(ns).RunSequential(seed)
}
