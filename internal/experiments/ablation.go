package experiments

import (
	"fmt"
	"math/rand"

	"localmds/internal/core"
	"localmds/internal/ding"
	"localmds/internal/local"
	"localmds/internal/mds"
)

// RadiusAblation sweeps Algorithm 1's radii on one instance: larger radii
// detect fewer local cuts (monotone, §2), shifting work from the cut phase
// to the brute-force phase. The paper's analysis needs the huge paper radii
// only for the proof; this table shows how the measured ratio, the cut-set
// sizes, and the residual diameter actually move with the radius.
func RadiusAblation(seed int64, n int, radii []int) (*Table, error) {
	t := &Table{
		Title:  "Ablation — Algorithm 1 radius sweep (ding Mixed, T=5)",
		Header: []string{"R1=R2", "|X|", "|I|", "components", "max diam", "|S|", "ratio", "rounds est"},
	}
	rng := rand.New(rand.NewSource(seed))
	g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: n, T: 5}, rng)
	opt, err := mds.ExactMDS(g)
	if err != nil {
		return nil, fmt.Errorf("radius ablation opt: %w", err)
	}
	for _, r := range radii {
		p := core.Params{R1: r, R2: r}
		res, err := core.Alg1(g, p)
		if err != nil {
			return nil, fmt.Errorf("radius ablation r=%d: %w", r, err)
		}
		t.AddRow(fmt.Sprint(r), fmt.Sprint(len(res.X)), fmt.Sprint(len(res.I)),
			fmt.Sprint(len(res.Components)), fmt.Sprint(res.MaxComponentDiameter),
			fmt.Sprint(len(res.S)), ratioString(len(res.S), len(opt)),
			fmt.Sprint(res.RoundsEstimate))
	}
	return t, nil
}

// RoundsVsT measures Theorem 4.1's "running time linear in t" claim: the
// paper radii grow linearly in t, so the gather horizon (and hence the
// round count) does too. The distributed run uses scaled-down radii with
// the same linear shape (the paper values exceed any simulatable
// diameter).
func RoundsVsT(seed int64, n int, ts []int) (*Table, error) {
	t := &Table{
		Title:  "Theorem 4.1 — rounds grow linearly in t (paper radii vs scaled measured)",
		Header: []string{"t", "paper R1", "paper R2", "paper gather radius", "scaled R1=R2", "measured rounds"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, tt := range ts {
		paper := core.PaperParams(tt)
		scaled := core.Params{R1: tt, R2: tt}
		g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: n, T: tt}, rng)
		_, stats, err := core.RunAlg1(g, nil, scaled, local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("rounds-vs-t t=%d: %w", tt, err)
		}
		t.AddRow(fmt.Sprint(tt), fmt.Sprint(paper.R1), fmt.Sprint(paper.R2),
			fmt.Sprint(paper.GatherRadius()), fmt.Sprint(scaled.R1),
			fmt.Sprint(stats.Rounds))
	}
	return t, nil
}

// Scaling measures Algorithm 1's solution quality as n grows. The
// treewidth-2 DP supplies the true optimum at every size (the workload
// classes all have treewidth <= 2), with the 2-packing bound shown as a
// sanity reference.
func Scaling(seed int64, ns []int) (*Table, error) {
	t := &Table{
		Title:  "Scaling — Algorithm 1 on growing ding Mixed instances (exact OPT via treewidth DP)",
		Header: []string{"n", "|S|", "OPT", "ratio", "2-packing LB", "max comp diam"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range ns {
		g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: n, T: 5}, rng)
		res, err := core.Alg1(g, core.PracticalParams())
		if err != nil {
			return nil, fmt.Errorf("scaling n=%d: %w", n, err)
		}
		opt, err := mds.ExactMDS(g)
		if err != nil {
			return nil, fmt.Errorf("scaling opt n=%d: %w", n, err)
		}
		lb := len(mds.TwoPacking(g))
		t.AddRow(fmt.Sprint(g.N()), fmt.Sprint(len(res.S)), fmt.Sprint(len(opt)),
			ratioString(len(res.S), len(opt)), fmt.Sprint(lb), fmt.Sprint(res.MaxComponentDiameter))
	}
	return t, nil
}

// MessageFootprint quantifies how far the algorithms stray beyond CONGEST:
// total delivered words and the largest single message, per algorithm.
func MessageFootprint(seed int64, n int) (*Table, error) {
	t := &Table{
		Title:  "LOCAL vs CONGEST — message footprint of the distributed algorithms",
		Header: []string{"algorithm", "n", "rounds", "messages", "total words", "max message words"},
	}
	rng := rand.New(rand.NewSource(seed))
	g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: n, T: 5}, rng)

	_, d2stats, err := core.RunD2(g, nil, local.Sequential)
	if err != nil {
		return nil, err
	}
	t.AddRow("D2 (Thm 4.4)", fmt.Sprint(g.N()), fmt.Sprint(d2stats.Rounds),
		fmt.Sprint(d2stats.Messages), fmt.Sprint(d2stats.Words), fmt.Sprint(d2stats.MaxMessageWords))

	_, a1stats, err := core.RunAlg1(g, nil, core.Params{R1: 3, R2: 3}, local.Sequential)
	if err != nil {
		return nil, err
	}
	t.AddRow("Alg1 (R=3)", fmt.Sprint(g.N()), fmt.Sprint(a1stats.Rounds),
		fmt.Sprint(a1stats.Messages), fmt.Sprint(a1stats.Words), fmt.Sprint(a1stats.MaxMessageWords))

	tree, err := local.NewNetwork(g, nil)
	if err != nil {
		return nil, err
	}
	_, gstats, err := local.GatherViews(tree, g.Diameter()+2, local.Sequential)
	if err != nil {
		return nil, err
	}
	t.AddRow("full gather (footnote 2)", fmt.Sprint(g.N()), fmt.Sprint(gstats.Rounds),
		fmt.Sprint(gstats.Messages), fmt.Sprint(gstats.Words), fmt.Sprint(gstats.MaxMessageWords))
	return t, nil
}
