package experiments

import (
	"fmt"
	"math/rand"

	"localmds/internal/core"
	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/local"
	"localmds/internal/mds"
)

// RadiusAblationSpec declares Algorithm 1's radius sweep on one instance:
// larger radii detect fewer local cuts (monotone, §2), shifting work from
// the cut phase to the brute-force phase. The paper's analysis needs the
// huge paper radii only for the proof; this table shows how the measured
// ratio, the cut-set sizes, and the residual diameter actually move with
// the radius. The sweep is a single task: every radius row must observe
// the same generated instance (and shares its exact-OPT computation).
func RadiusAblationSpec(n int, radii []int) Spec {
	s := Spec{
		Name:   "radius-ablation",
		Title:  "Ablation — Algorithm 1 radius sweep (ding Mixed, T=5)",
		Header: []string{"R1=R2", "|X|", "|I|", "components", "max diam", "|S|", "ratio", "rounds est"},
	}
	s.Tasks = append(s.Tasks, Task{Row: "sweep", Params: fmt.Sprintf("n=%d,radii=%v", n, radii), Run: func(seed int64) ([][]string, error) {
		rng := rand.New(rand.NewSource(seed))
		g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: n, T: 5}, rng)
		opt, err := mds.ExactMDS(g)
		if err != nil {
			return nil, fmt.Errorf("radius ablation opt: %w", err)
		}
		var rows [][]string
		for _, r := range radii {
			p := core.Params{R1: r, R2: r}
			res, err := core.Alg1(g, p)
			if err != nil {
				return nil, fmt.Errorf("radius ablation r=%d: %w", r, err)
			}
			rows = append(rows, []string{fmt.Sprint(r), fmt.Sprint(len(res.X)), fmt.Sprint(len(res.I)),
				fmt.Sprint(len(res.Components)), fmt.Sprint(res.MaxComponentDiameter),
				fmt.Sprint(len(res.S)), ratioString(len(res.S), len(opt)),
				fmt.Sprint(res.RoundsEstimate)})
		}
		return rows, nil
	}})
	return s
}

// RadiusAblation runs RadiusAblationSpec sequentially with seed as root.
func RadiusAblation(seed int64, n int, radii []int) (*Table, error) {
	return RadiusAblationSpec(n, radii).RunSequential(seed)
}

// RoundsVsTSpec declares Theorem 4.1's "running time linear in t"
// measurement: the paper radii grow linearly in t, so the gather horizon
// (and hence the round count) does too. The distributed run uses
// scaled-down radii with the same linear shape (the paper values exceed
// any simulatable diameter). One task per t.
func RoundsVsTSpec(n int, ts []int) Spec {
	s := Spec{
		Name:   "rounds-vs-t",
		Title:  "Theorem 4.1 — rounds grow linearly in t (paper radii vs scaled measured)",
		Header: []string{"t", "paper R1", "paper R2", "paper gather radius", "scaled R1=R2", "measured rounds"},
	}
	for _, tt := range ts {
		s.Tasks = append(s.Tasks, Task{Row: fmt.Sprintf("t%d", tt), Params: fmt.Sprintf("n=%d", n), Run: func(seed int64) ([][]string, error) {
			rng := rand.New(rand.NewSource(seed))
			paper := core.PaperParams(tt)
			scaled := core.Params{R1: tt, R2: tt}
			g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: n, T: tt}, rng)
			_, stats, err := core.RunAlg1(g, nil, scaled, local.Sequential)
			if err != nil {
				return nil, fmt.Errorf("rounds-vs-t t=%d: %w", tt, err)
			}
			return [][]string{{fmt.Sprint(tt), fmt.Sprint(paper.R1), fmt.Sprint(paper.R2),
				fmt.Sprint(paper.GatherRadius()), fmt.Sprint(scaled.R1),
				fmt.Sprint(stats.Rounds)}}, nil
		}})
	}
	return s
}

// RoundsVsT runs RoundsVsTSpec sequentially with seed as root.
func RoundsVsT(seed int64, n int, ts []int) (*Table, error) {
	return RoundsVsTSpec(n, ts).RunSequential(seed)
}

// ScalingOptNodeBudget bounds the exact-OPT probe on the scaling rows
// whose instances are not treewidth-<=2 (the grids): the engine bails
// out deterministically after this many search nodes instead of stalling
// the sweep, and the row falls back to the certified 2-packing lower
// bound. The side-10 grid — the largest the sweep must prove — needs
// ~26k nodes; at ~18µs/node on the 400+-vertex over-budget rows, 60k
// nodes bounds each bailing row at ~1s. The sequential node count is
// input-determined, so the tables stay byte-identical at any -parallel.
const ScalingOptNodeBudget = 60_000

// ScalingSpec declares Algorithm 1's solution quality as n grows, on two
// families: ding Mixed instances (treewidth <= 2, so the DP supplies the
// true optimum at every size) and square grids (the exact engine's
// adversarial case). Grid rows beyond the solver's reach report the
// certified ratio upper bound |S|/opt_lb against the 2-packing lower
// bound in place of an exact ratio — a bound, not a measurement, but one
// that is provably valid at sizes where OPT is unobtainable. One task per
// row: the heaviest solve dominates, so rows load-balance across workers.
func ScalingSpec(ns []int) Spec {
	s := Spec{
		Name:   "scaling",
		Title:  "Scaling — Algorithm 1 on growing instances (exact OPT where feasible, certified 2-packing bound beyond)",
		Header: []string{"class", "n", "|S|", "OPT", "ratio", "opt_lb (2-packing)", "max comp diam"},
	}
	for _, n := range ns {
		s.Tasks = append(s.Tasks, Task{Row: fmt.Sprintf("n%d", n), Params: fmt.Sprintf("n=%d", n), Run: func(seed int64) ([][]string, error) {
			rng := rand.New(rand.NewSource(seed))
			g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: n, T: 5}, rng)
			res, err := core.Alg1(g, core.PracticalParams())
			if err != nil {
				return nil, fmt.Errorf("scaling n=%d: %w", n, err)
			}
			return []([]string){scalingRow("ding-mixed", g, res)}, nil
		}})
	}
	seenSides := map[int]bool{}
	for _, n := range ns {
		// The grid family is parameterized by the side, not the requested
		// n: label rows with the side (the instance has side^2 vertices)
		// and collapse requested sizes that round to the same grid, so no
		// two rows describe the same instance under different names.
		side := intSqrt(n)
		if seenSides[side] {
			continue
		}
		seenSides[side] = true
		s.Tasks = append(s.Tasks, Task{Row: fmt.Sprintf("grid%d", side), Params: fmt.Sprintf("side=%d", side), Run: func(int64) ([][]string, error) {
			g := gen.Grid(side, side)
			res, err := core.Alg1(g, core.PracticalParams())
			if err != nil {
				return nil, fmt.Errorf("scaling grid side=%d: %w", side, err)
			}
			return []([]string){scalingRow(fmt.Sprintf("grid-%dx%d", side, side), g, res)}, nil
		}})
	}
	return s
}

// scalingRow renders one scaling table row, degrading from the exact
// ratio to the certified |S|/opt_lb upper bound when the budgeted exact
// probe gives up (node budget exhausted or instance over the vertex cap).
func scalingRow(class string, g *graph.Graph, res *core.Alg1Result) []string {
	lb := len(mds.TwoPacking(g))
	optCell, ratioCell := "-", "-"
	if opt, err := mds.ExactMDSOpt(g, mds.ExactOptions{MaxNodes: ScalingOptNodeBudget}); err == nil {
		optCell = fmt.Sprint(len(opt))
		ratioCell = ratioString(len(res.S), len(opt))
	} else if lb > 0 {
		ratioCell = fmt.Sprintf("<=%.3f certified", float64(len(res.S))/float64(lb))
	}
	return []string{class, fmt.Sprint(g.N()), fmt.Sprint(len(res.S)), optCell,
		ratioCell, fmt.Sprint(lb), fmt.Sprint(res.MaxComponentDiameter)}
}

// Scaling runs ScalingSpec sequentially with seed as root.
func Scaling(seed int64, ns []int) (*Table, error) {
	return ScalingSpec(ns).RunSequential(seed)
}

// MessageFootprintSpec declares the CONGEST-distance measurement: total
// delivered words and the largest single message, per algorithm. All three
// rows run on the same instance, so they stay one task.
func MessageFootprintSpec(n int) Spec {
	s := Spec{
		Name:   "message-footprint",
		Title:  "LOCAL vs CONGEST — message footprint of the distributed algorithms",
		Header: []string{"algorithm", "n", "rounds", "messages", "total words", "max message words"},
	}
	s.Tasks = append(s.Tasks, Task{Row: "footprint", Params: fmt.Sprintf("n=%d", n), Run: func(seed int64) ([][]string, error) {
		rng := rand.New(rand.NewSource(seed))
		g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: n, T: 5}, rng)

		_, d2stats, err := core.RunD2(g, nil, local.Sequential)
		if err != nil {
			return nil, err
		}
		_, a1stats, err := core.RunAlg1(g, nil, core.Params{R1: 3, R2: 3}, local.Sequential)
		if err != nil {
			return nil, err
		}
		net, err := local.NewNetwork(g, nil)
		if err != nil {
			return nil, err
		}
		_, gstats, err := local.GatherViews(net, g.Diameter()+2, local.Sequential)
		if err != nil {
			return nil, err
		}
		return [][]string{
			{"D2 (Thm 4.4)", fmt.Sprint(g.N()), fmt.Sprint(d2stats.Rounds),
				fmt.Sprint(d2stats.Messages), fmt.Sprint(d2stats.Words), fmt.Sprint(d2stats.MaxMessageWords)},
			{"Alg1 (R=3)", fmt.Sprint(g.N()), fmt.Sprint(a1stats.Rounds),
				fmt.Sprint(a1stats.Messages), fmt.Sprint(a1stats.Words), fmt.Sprint(a1stats.MaxMessageWords)},
			{"full gather (footnote 2)", fmt.Sprint(g.N()), fmt.Sprint(gstats.Rounds),
				fmt.Sprint(gstats.Messages), fmt.Sprint(gstats.Words), fmt.Sprint(gstats.MaxMessageWords)},
		}, nil
	}})
	return s
}

// MessageFootprint runs MessageFootprintSpec sequentially with seed as
// root.
func MessageFootprint(seed int64, n int) (*Table, error) {
	return MessageFootprintSpec(n).RunSequential(seed)
}
