// Package experiments contains the evaluation harness: workload
// definitions, measurement runners and table renderers that regenerate the
// paper's Table 1 and quantify every numbered lemma/theorem claim
// (Lemmas 3.2, 3.3, 4.2, 5.17/5.18, Proposition 3.1/5.7/5.8, Theorems 4.1
// and 4.4). cmd/mdsbench prints the tables; bench_test.go wraps the same
// runners in testing.B benchmarks.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Table is a rendered experiment result: a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; cells beyond the header length are rejected at
// render time.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render formats the table with aligned columns. Widths are measured in
// runes, not bytes: aggregated cells carry multi-byte glyphs (±, ⟨⟩)
// that would otherwise misalign their column.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && utf8.RuneCountInString(c) > widths[i] {
				widths[i] = utf8.RuneCountInString(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "| %s%s ", c, strings.Repeat(" ", widths[i]-utf8.RuneCountInString(c)))
		}
		b.WriteString("|\n")
	}
	writeRow(t.Header)
	for i := range widths {
		fmt.Fprintf(&b, "|%s", strings.Repeat("-", widths[i]+2))
	}
	b.WriteString("|\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV emits the table as CSV (header row first) for downstream
// plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ratioString formats a solution-size / optimum pair.
func ratioString(sol, opt int) string {
	if opt == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f (%d/%d)", float64(sol)/float64(opt), sol, opt)
}

// LeadingFloat extracts the first number from a cell like "1.23 (37/30)"
// or "<=14 est"; ok is false when the cell has none. Both the replicate
// aggregation (internal/runner) and cmd/mdsbench's JSON metric parsing
// use this one definition so the two can never drift.
func LeadingFloat(cell string) (f float64, ok bool) {
	start := -1
	for i, r := range cell {
		if r >= '0' && r <= '9' {
			start = i
			break
		}
	}
	if start < 0 {
		return 0, false
	}
	end := start
	for end < len(cell) && (cell[end] >= '0' && cell[end] <= '9' || cell[end] == '.') {
		end++
	}
	f, err := strconv.ParseFloat(cell[start:end], 64)
	if err != nil {
		return 0, false
	}
	return f, true
}
