// Package experiments contains the evaluation harness: workload
// definitions, measurement runners and table renderers that regenerate the
// paper's Table 1 and quantify every numbered lemma/theorem claim
// (Lemmas 3.2, 3.3, 4.2, 5.17/5.18, Proposition 3.1/5.7/5.8, Theorems 4.1
// and 4.4). cmd/mdsbench prints the tables; bench_test.go wraps the same
// runners in testing.B benchmarks.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; cells beyond the header length are rejected at
// render time.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "| %-*s ", widths[i], c)
		}
		b.WriteString("|\n")
	}
	writeRow(t.Header)
	for i := range widths {
		fmt.Fprintf(&b, "|%s", strings.Repeat("-", widths[i]+2))
	}
	b.WriteString("|\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV emits the table as CSV (header row first) for downstream
// plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ratioString formats a solution-size / optimum pair.
func ratioString(sol, opt int) string {
	if opt == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f (%d/%d)", float64(sol)/float64(opt), sol, opt)
}
