package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
)

// DensityTable reports the shallow-minor densities of the workload classes
// next to the related-work ratio formulas they parameterize: [18] gives
// ratio ∇_1^O(t·∇_1) for K_{t,t}-subgraph-free graphs and [12] improves the
// dependence; the point of the paper is that its own ratio (50) has no such
// dependence. The table shows the measured ∇_0/∇_1 lower bounds and the
// resulting magnitude of the [18]-style exponent.
func DensityTable(seed int64, n int) (*Table, error) {
	t := &Table{
		Title:  "Workload densities — ∇_0/∇_1 lower bounds and the [18]-style ratio exponent they drive",
		Header: []string{"class", "n", "nabla0 >=", "nabla1 >=", "degeneracy", "[18]-style ratio ~ nabla1^(t*nabla1), t=5"},
	}
	rng := rand.New(rand.NewSource(seed))
	instances := []struct {
		name string
		g    *graph.Graph
	}{
		{"tree", gen.RandomTree(n, rng)},
		{"cactus", gen.RandomCactus(n, rng)},
		{"outerplanar", gen.MaximalOuterplanar(n, rng)},
		{"ding-mixed T=5", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: n, T: 5}, rng)},
		{"grid", gen.Grid(intSqrt(n), intSqrt(n))},
	}
	for _, inst := range instances {
		n0 := inst.g.Nabla0LowerBound()
		n1 := inst.g.Nabla1LowerBound()
		expFormula := math.Pow(math.Max(n1, 1.01), 5*n1)
		t.AddRow(inst.name, fmt.Sprint(inst.g.N()),
			fmt.Sprintf("%.2f", n0), fmt.Sprintf("%.2f", n1),
			fmt.Sprint(inst.g.Degeneracy()), fmt.Sprintf("%.1f", expFormula))
	}
	return t, nil
}
