package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
)

// DensityTableSpec declares the shallow-minor densities of the workload
// classes next to the related-work ratio formulas they parameterize: [18]
// gives ratio ∇_1^O(t·∇_1) for K_{t,t}-subgraph-free graphs and [12]
// improves the dependence; the point of the paper is that its own ratio
// (50) has no such dependence. The table shows the measured ∇_0/∇_1 lower
// bounds and the resulting magnitude of the [18]-style exponent. One task
// per workload class.
func DensityTableSpec(n int) Spec {
	s := Spec{
		Name:   "density",
		Title:  "Workload densities — ∇_0/∇_1 lower bounds and the [18]-style ratio exponent they drive",
		Header: []string{"class", "n", "nabla0 >=", "nabla1 >=", "degeneracy", "[18]-style ratio ~ nabla1^(t*nabla1), t=5"},
	}
	instances := []struct {
		name  string
		build func(rng *rand.Rand) *graph.Graph
	}{
		{"tree", func(rng *rand.Rand) *graph.Graph { return gen.RandomTree(n, rng) }},
		{"cactus", func(rng *rand.Rand) *graph.Graph { return gen.RandomCactus(n, rng) }},
		{"outerplanar", func(rng *rand.Rand) *graph.Graph { return gen.MaximalOuterplanar(n, rng) }},
		{"ding-mixed T=5", func(rng *rand.Rand) *graph.Graph {
			return ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: n, T: 5}, rng)
		}},
		{"grid", func(*rand.Rand) *graph.Graph { return gen.Grid(intSqrt(n), intSqrt(n)) }},
	}
	for _, inst := range instances {
		s.Tasks = append(s.Tasks, Task{Row: inst.name, Params: fmt.Sprintf("n=%d", n), Run: func(seed int64) ([][]string, error) {
			g := inst.build(rand.New(rand.NewSource(seed)))
			n0 := g.Nabla0LowerBound()
			n1 := g.Nabla1LowerBound()
			expFormula := math.Pow(math.Max(n1, 1.01), 5*n1)
			return [][]string{{inst.name, fmt.Sprint(g.N()),
				fmt.Sprintf("%.2f", n0), fmt.Sprintf("%.2f", n1),
				fmt.Sprint(g.Degeneracy()), fmt.Sprintf("%.1f", expFormula)}}, nil
		}})
	}
	return s
}

// DensityTable runs DensityTableSpec sequentially with seed as root.
func DensityTable(seed int64, n int) (*Table, error) {
	return DensityTableSpec(n).RunSequential(seed)
}
