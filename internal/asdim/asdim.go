// Package asdim implements the asymptotic-dimension machinery of §3: covers
// V(G) = B_0 ∪ ... ∪ B_d whose r-components are f(r)-bounded (weak diameter
// at most f(r)), cover verification, empirical control-function estimation,
// and the disjoint-neighborhood decomposition behind Lemma 5.2. The paper
// uses asymptotic dimension purely in the analysis (charging local cuts
// against MDS); this package makes those objects executable so the
// experiments can measure the constants the proofs only bound.
package asdim

import (
	"fmt"
	"sort"

	"localmds/internal/graph"
)

// Cover is a partition-style cover of V(G) into d+1 classes
// (B_0, ..., B_d). Classes may be empty; every vertex must appear in at
// least one class.
type Cover struct {
	Classes [][]int
}

// Dimension returns d: the number of classes minus one.
func (c *Cover) Dimension() int { return len(c.Classes) - 1 }

// Verify checks that the classes cover every vertex of g and contain no
// out-of-range entries.
func (c *Cover) Verify(g *graph.Graph) error {
	covered := make([]bool, g.N())
	for i, class := range c.Classes {
		for _, v := range class {
			if v < 0 || v >= g.N() {
				return fmt.Errorf("asdim: class %d contains out-of-range vertex %d", i, v)
			}
			covered[v] = true
		}
	}
	for v, ok := range covered {
		if !ok {
			return fmt.Errorf("asdim: vertex %d not covered", v)
		}
	}
	return nil
}

// BFSAnnulusCover builds the classic annulus cover witnessing small
// asymptotic dimension on tree-like classes: root each component at its
// smallest vertex, group BFS layers into annuli of the given width, and
// assign annulus k to class k mod parts. With parts = 2 this is the
// dimension-1 construction (alternating annuli); r-components of one class
// cannot hop the interleaved annuli of the other classes when r <= width.
func BFSAnnulusCover(g *graph.Graph, width, parts int) (*Cover, error) {
	if width < 1 {
		return nil, fmt.Errorf("asdim: annulus width %d < 1", width)
	}
	if parts < 1 {
		return nil, fmt.Errorf("asdim: parts %d < 1", parts)
	}
	cover := &Cover{Classes: make([][]int, parts)}
	for _, comp := range g.Components() {
		dist := g.BFSFrom(comp[0])
		for _, v := range comp {
			annulus := dist[v] / width
			class := annulus % parts
			cover.Classes[class] = append(cover.Classes[class], v)
		}
	}
	for i := range cover.Classes {
		sort.Ints(cover.Classes[i])
	}
	return cover, nil
}

// MaxRComponentWeakDiameter returns the largest weak diameter (distance
// measured in g) over the r-components of set — the quantity the control
// function f(r) must bound (§3: each r-component of B_i is f(r)-bounded).
func MaxRComponentWeakDiameter(g *graph.Graph, set []int, r int) int {
	max := 0
	for _, comp := range g.RComponents(set, r) {
		if d := g.WeakDiameter(comp); d > max {
			max = d
		}
	}
	return max
}

// ControlEstimate returns, for the given cover and radius r, the maximum
// over classes of the weak diameter of their r-components: the empirical
// value of f(r) this cover witnesses.
func ControlEstimate(g *graph.Graph, c *Cover, r int) int {
	max := 0
	for _, class := range c.Classes {
		if d := MaxRComponentWeakDiameter(g, class, r); d > max {
			max = d
		}
	}
	return max
}

// EstimatePoint is one empirical control-function sample.
type EstimatePoint struct {
	R        int
	Estimate int
}

// EstimateControlFunction sweeps radii and reports the empirical f(r)
// witnessed by the width-tuned annulus cover (width = r, parts classes).
func EstimateControlFunction(g *graph.Graph, radii []int, parts int) ([]EstimatePoint, error) {
	out := make([]EstimatePoint, 0, len(radii))
	for _, r := range radii {
		cover, err := BFSAnnulusCover(g, r, parts)
		if err != nil {
			return nil, err
		}
		out = append(out, EstimatePoint{R: r, Estimate: ControlEstimate(g, cover, r)})
	}
	return out, nil
}

// DisjointClosedNeighborhoods reports whether the closed neighborhoods
// N[R_i] of the given sets are pairwise disjoint — the hypothesis of
// Lemma 5.2 (then Σ MDS(G, R_i) <= MDS(G)).
func DisjointClosedNeighborhoods(g *graph.Graph, sets [][]int) bool {
	seen := make(map[int]bool)
	for _, s := range sets {
		var closed []int
		for _, v := range s {
			closed = append(closed, g.Ball(v, 1)...)
		}
		for _, v := range graph.Dedup(closed) {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
	}
	return true
}

// RSeparatedSubfamily greedily selects a subfamily of the given sets whose
// closed neighborhoods are pairwise disjoint, preferring earlier sets. It
// is the executable form of the "5-components are at distance >= 6 from
// each other" step in the proofs of Lemmas 3.2/3.3.
func RSeparatedSubfamily(g *graph.Graph, sets [][]int) [][]int {
	blocked := make(map[int]bool)
	var out [][]int
	for _, s := range sets {
		var closed []int
		for _, v := range s {
			closed = append(closed, g.Ball(v, 1)...)
		}
		closed = graph.Dedup(closed)
		conflict := false
		for _, v := range closed {
			if blocked[v] {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		for _, v := range closed {
			blocked[v] = true
		}
		out = append(out, s)
	}
	return out
}
