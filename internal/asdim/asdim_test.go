package asdim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/mds"
)

func TestBFSAnnulusCoverCoversEverything(t *testing.T) {
	g := gen.Grid(5, 7)
	cover, err := BFSAnnulusCover(g, 3, 2)
	if err != nil {
		t.Fatalf("BFSAnnulusCover: %v", err)
	}
	if err := cover.Verify(g); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if cover.Dimension() != 1 {
		t.Errorf("Dimension = %d, want 1", cover.Dimension())
	}
}

func TestBFSAnnulusCoverErrors(t *testing.T) {
	g := gen.Path(4)
	if _, err := BFSAnnulusCover(g, 0, 2); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := BFSAnnulusCover(g, 2, 0); err == nil {
		t.Error("parts 0 accepted")
	}
}

func TestVerifyRejectsBadCovers(t *testing.T) {
	g := gen.Path(4)
	missing := &Cover{Classes: [][]int{{0, 1}, {2}}} // 3 uncovered
	if err := missing.Verify(g); err == nil {
		t.Error("incomplete cover accepted")
	}
	oob := &Cover{Classes: [][]int{{0, 1, 2, 3, 9}}}
	if err := oob.Verify(g); err == nil {
		t.Error("out-of-range cover accepted")
	}
}

func TestPathAnnulusCoverIsBounded(t *testing.T) {
	// On a path rooted at an end, width-r annuli alternate between two
	// classes; each r-component of one class is a single annulus of weak
	// diameter <= r-1... <= width (boundary effects included).
	g := gen.Path(60)
	for _, r := range []int{1, 2, 3, 5} {
		cover, err := BFSAnnulusCover(g, r, 2)
		if err != nil {
			t.Fatal(err)
		}
		got := ControlEstimate(g, cover, r)
		if got > 2*r {
			t.Errorf("r=%d: control estimate %d exceeds 2r", r, got)
		}
	}
}

func TestTreeAnnulusCoverIsBounded(t *testing.T) {
	// Trees have asymptotic dimension 1: the annulus cover's r-components
	// must have weak diameter O(r), independent of tree size.
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{50, 200, 500} {
		g := gen.RandomTree(n, rng)
		r := 3
		cover, err := BFSAnnulusCover(g, r, 2)
		if err != nil {
			t.Fatal(err)
		}
		got := ControlEstimate(g, cover, r)
		// Within one width-3 annulus of a tree, an r-component consists of
		// vertices pairwise linked by hops <= r staying near the annulus;
		// its weak diameter is bounded by ~4r: two vertices in the same
		// r-component at layers within width w are joined through their
		// common ancestors... empirically <= 4r on BFS-layered trees.
		if got > 4*r {
			t.Errorf("n=%d: control estimate %d > 4r = %d", n, got, 4*r)
		}
	}
}

func TestMaxRComponentWeakDiameter(t *testing.T) {
	g := gen.Path(10)
	// Set {0, 2, 7, 9}: with r=2, r-components are {0,2} and {7,9}, weak
	// diameters 2 and 2.
	got := MaxRComponentWeakDiameter(g, []int{0, 2, 7, 9}, 2)
	if got != 2 {
		t.Errorf("got %d, want 2", got)
	}
	// With r=5 everything chains: weak diameter 9.
	got = MaxRComponentWeakDiameter(g, []int{0, 2, 7, 9}, 5)
	if got != 9 {
		t.Errorf("got %d, want 9", got)
	}
}

func TestEstimateControlFunction(t *testing.T) {
	g := gen.Grid(6, 6)
	points, err := EstimateControlFunction(g, []int{1, 2, 3}, 2)
	if err != nil {
		t.Fatalf("EstimateControlFunction: %v", err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Estimate < 0 {
			t.Errorf("r=%d: negative estimate", p.R)
		}
	}
}

func TestDisjointClosedNeighborhoods(t *testing.T) {
	g := gen.Path(10)
	if !DisjointClosedNeighborhoods(g, [][]int{{0}, {5}, {9}}) {
		t.Error("far-apart singletons should have disjoint N[.]")
	}
	if DisjointClosedNeighborhoods(g, [][]int{{0}, {2}}) {
		t.Error("N[0] and N[2] share vertex 1")
	}
	if !DisjointClosedNeighborhoods(g, nil) {
		t.Error("empty family should be disjoint")
	}
}

func TestRSeparatedSubfamily(t *testing.T) {
	g := gen.Path(12)
	sets := [][]int{{0}, {2}, {5}, {7}, {11}}
	out := RSeparatedSubfamily(g, sets)
	if !DisjointClosedNeighborhoods(g, out) {
		t.Fatal("selected subfamily not neighborhood-disjoint")
	}
	// {0} selected; {2} conflicts via vertex 1; {5} fits; {7} conflicts
	// via 6; {11} fits.
	if len(out) != 3 {
		t.Errorf("selected %d sets, want 3: %v", len(out), out)
	}
}

// Property: Lemma 5.2 executable check — for a neighborhood-disjoint
// family, Σ MDS(G, R_i) <= MDS(G).
func TestLemma52WithCoverProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(16, 0.12, rng)
		var sets [][]int
		for v := 0; v < g.N(); v += 3 {
			sets = append(sets, []int{v})
		}
		family := RSeparatedSubfamily(g, sets)
		total := 0
		for _, s := range family {
			sol, err := mds.ExactBDominating(g, s)
			if err != nil {
				return false
			}
			total += len(sol)
		}
		opt, err := mds.ExactMDS(g)
		if err != nil {
			return false
		}
		return total <= len(opt)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the annulus cover always covers and class sizes sum to n.
func TestAnnulusCoverPartitionProperty(t *testing.T) {
	f := func(seed int64, rawW uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(20, 0.1, rng)
		w := int(rawW%4) + 1
		cover, err := BFSAnnulusCover(g, w, 2)
		if err != nil {
			return false
		}
		if cover.Verify(g) != nil {
			return false
		}
		total := 0
		for _, class := range cover.Classes {
			total += len(class)
			if len(graph.Dedup(class)) != len(class) {
				return false
			}
		}
		return total == g.N()
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
