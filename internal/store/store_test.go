package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"localmds/internal/graph"
)

// testKey builds a distinct key per index.
func testKey(i int) Key {
	g := graph.FromEdgesUnchecked(i+2, [][2]int{{0, 1}})
	return Key{Fingerprint: g.Fingerprint(), Params: fmt.Sprintf("r1=4,r2=4,mbc=%d", i)}
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func mustPut(t *testing.T, s *Store, k Key, payload string) {
	t.Helper()
	if err := s.Put(k, time.Now().UnixNano(), []byte(payload)); err != nil {
		t.Fatalf("Put: %v", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	k := testKey(1)
	const payload = `{"result": 42}`
	now := time.Now().UnixNano()
	if err := s.Put(k, now, []byte(payload)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	e, err := s.Get(k)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(e.Payload) != payload || e.ComputedAtNanos != now {
		t.Fatalf("entry = %+v", e)
	}
	if _, err := s.Get(testKey(2)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v, want ErrNotFound", err)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestWarmRescan: a second Open on the same directory serves everything
// the first process persisted — the warm-restart contract.
func TestWarmRescan(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, Options{Dir: dir})
	computed := time.Now().Add(-time.Hour).UnixNano()
	for i := 0; i < 5; i++ {
		if err := s1.Put(testKey(i), computed, []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	s2 := mustOpen(t, Options{Dir: dir})
	if st := s2.Stats(); st.Entries != 5 || st.Quarantined != 0 {
		t.Fatalf("rescan stats = %+v", st)
	}
	for i := 0; i < 5; i++ {
		e, err := s2.Get(testKey(i))
		if err != nil {
			t.Fatalf("Get(%d) after rescan: %v", i, err)
		}
		if e.ComputedAtNanos != computed {
			t.Fatalf("computed-at not persisted: got %d want %d", e.ComputedAtNanos, computed)
		}
	}
}

// TestEviction: the byte budget evicts least-recently-used entries and
// deletes their files; a Get refreshes recency.
func TestEviction(t *testing.T) {
	dir := t.TempDir()
	payload := strings.Repeat("x", 200)
	one := entryHeaderLen + int64(len(payload))
	s := mustOpen(t, Options{Dir: dir, MaxBytes: 3 * one})
	for i := 0; i < 3; i++ {
		mustPut(t, s, testKey(i), payload)
	}
	// Refresh 0 so 1 is the LRU, then overflow.
	if _, err := s.Get(testKey(0)); err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, testKey(3), payload)
	if _, err := s.Get(testKey(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU entry survived: %v", err)
	}
	for _, i := range []int{0, 2, 3} {
		if _, err := s.Get(testKey(i)); err != nil {
			t.Fatalf("entry %d evicted wrongly: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes != 3*one {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, testKey(1).filename())); !os.IsNotExist(err) {
		t.Fatalf("evicted file still on disk: %v", err)
	}
}

func TestOversizedEntrySkipped(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxBytes: entryHeaderLen + 8})
	if err := s.Put(testKey(0), 1, []byte(strings.Repeat("y", 64))); err != nil {
		t.Fatalf("oversized Put errored: %v", err)
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("oversized entry stored: %+v", st)
	}
}

func TestOverwriteRefreshes(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	k := testKey(0)
	mustPut(t, s, k, "short")
	mustPut(t, s, k, "a longer payload than before")
	e, err := s.Get(k)
	if err != nil || string(e.Payload) != "a longer payload than before" {
		t.Fatalf("overwrite: %v %q", err, e.Payload)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Bytes != entryHeaderLen+int64(len(e.Payload)) {
		t.Fatalf("stats after overwrite = %+v", st)
	}
}

// TestScanQuarantine: the startup scan moves truncated, corrupt, alien,
// and foreign files to quarantine/ and deletes temp leftovers; valid
// entries keep being served.
func TestScanQuarantine(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 3; i++ {
		mustPut(t, s1, testKey(i), `{"ok":true}`)
	}

	// Truncate entry 0 mid-payload (a torn write that skipped the
	// atomic-rename protocol).
	p0 := filepath.Join(dir, testKey(0).filename())
	data, err := os.ReadFile(p0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p0, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of entry 1.
	p1 := filepath.Join(dir, testKey(1).filename())
	data, err = os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	data[entryHeaderLen] ^= 0xff
	if err := os.WriteFile(p1, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// An alien: a structurally valid entry under the wrong name.
	valid, err := os.ReadFile(filepath.Join(dir, testKey(2).filename()))
	if err != nil {
		t.Fatal(err)
	}
	alien := testKey(9).filename()
	if err := os.WriteFile(filepath.Join(dir, alien), valid, 0o644); err != nil {
		t.Fatal(err)
	}
	// A foreign file and a leftover temp file.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmpName := testKey(5).filename() + ".tmp7"
	if err := os.WriteFile(filepath.Join(dir, tmpName), data[:10], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, Options{Dir: dir})
	st := s2.Stats()
	if st.Entries != 1 || st.Quarantined != 4 {
		t.Fatalf("stats after hostile scan = %+v", st)
	}
	if _, err := s2.Get(testKey(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("truncated entry served: %v", err)
	}
	if _, err := s2.Get(testKey(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt entry served: %v", err)
	}
	if _, err := s2.Get(testKey(2)); err != nil {
		t.Fatalf("valid entry lost: %v", err)
	}
	// Quarantined files moved, not deleted; temp file simply removed.
	for _, name := range []string{testKey(0).filename(), testKey(1).filename(), alien, "notes.txt"} {
		if _, err := os.Stat(filepath.Join(dir, quarantineDir, name)); err != nil {
			t.Fatalf("quarantined file %s missing: %v", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, tmpName)); !os.IsNotExist(err) {
		t.Fatalf("temp leftover survived the scan: %v", err)
	}
}

// TestGetQuarantinesRuntimeCorruption: corruption that appears after the
// scan (bit rot) is caught by Get's validation, quarantined, and reported
// as a miss — never served, and never an I/O error.
func TestGetQuarantinesRuntimeCorruption(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	k := testKey(0)
	mustPut(t, s, k, `{"fresh":true}`)
	path := filepath.Join(dir, k.filename())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[entryHeaderLen+1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt entry: %v, want ErrNotFound", err)
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDiscard(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	k := testKey(0)
	mustPut(t, s, k, "not json at all")
	s.Discard(k)
	if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("discarded entry served: %v", err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOpenRejectsBadDirs(t *testing.T) {
	if _, err := Open(Options{Dir: ""}); err == nil {
		t.Fatal("empty dir accepted")
	}
	if os.Getuid() != 0 { // root ignores file modes
		ro := filepath.Join(t.TempDir(), "ro")
		if err := os.Mkdir(ro, 0o555); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(Options{Dir: filepath.Join(ro, "store")}); err == nil {
			t.Fatal("unwritable parent accepted")
		}
	}
	// A path that is a file, not a directory.
	f := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: f}); err == nil {
		t.Fatal("file-as-dir accepted")
	}
}
