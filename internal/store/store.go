package store

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"localmds/internal/graph"
)

// FsyncPolicy selects how hard Put pushes an entry to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs the entry file before the rename and the
	// directory after it: once Put returns, the entry survives a crash
	// or power loss. This is the durability contract the service's
	// persist-before-respond ordering relies on.
	FsyncAlways FsyncPolicy = iota
	// FsyncNone skips both syncs: the rename is still atomic (no torn
	// entries are ever visible), but a crash may lose recently written
	// entries that were only in the page cache.
	FsyncNone
)

// ParseFsyncPolicy parses the -store-fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "none":
		return FsyncNone, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always or none)", s)
}

func (p FsyncPolicy) String() string {
	if p == FsyncNone {
		return "none"
	}
	return "always"
}

// Key content-addresses one persisted result: the canonical fingerprint
// of the frozen CSR plus the normalized solver params string. It is the
// disk twin of the service layer's in-memory cache key, which is what
// makes client retries and warm restarts safe: the same request always
// lands on the same entry.
type Key struct {
	Fingerprint graph.Fingerprint
	Params      string
}

// entrySuffix is the store's file extension.
const entrySuffix = ".mdse"

// quarantineDir is the subdirectory corrupt entries are moved into.
const quarantineDir = "quarantine"

// filename renders the entry file name for a key: the full fingerprint
// hex plus the params hash, so lookups are a single stat away and the
// startup scan can detect files that do not match their own header.
func (k Key) filename() string {
	return entryFilename(k.Fingerprint, paramsHash(k.Params))
}

func entryFilename(fp graph.Fingerprint, ph uint64) string {
	return fmt.Sprintf("%s-%016x%s", fp.String(), ph, entrySuffix)
}

// ErrNotFound reports a clean miss: no entry, or an entry that failed
// validation and was quarantined. It is never an I/O failure — those come
// back verbatim so the caller can degrade.
var ErrNotFound = errors.New("store: entry not found")

// Options configure Open.
type Options struct {
	// Dir is the store directory; created if absent. Open fails if it
	// cannot be created or is not writable.
	Dir string
	// MaxBytes is the on-disk budget across entry files; when a Put
	// would exceed it, least-recently-used entries are evicted. <= 0
	// means unlimited.
	MaxBytes int64
	// Fsync is the durability policy for writes.
	Fsync FsyncPolicy
	// MaxPayloadBytes bounds a single entry's payload on read, so a
	// forged length field cannot balloon allocation. <= 0 selects 1 GiB.
	MaxPayloadBytes int64
	// FS is the filesystem to use; nil selects OSFS. Tests inject
	// fault-wrapped filesystems here.
	FS FS
}

// Stats is a point-in-time snapshot of the store's accounting.
type Stats struct {
	// Entries and Bytes describe the live (servable) entry set.
	Entries int
	Bytes   int64
	// Quarantined counts entries moved aside since Open — truncated,
	// corrupt, or alien files found by the startup scan plus any caught
	// later by Get validation. Quarantined entries are never served.
	Quarantined int64
	// Evictions counts entries removed by the byte-budget LRU.
	Evictions int64
	// Hits and Misses count Get outcomes.
	Hits   int64
	Misses int64
}

// Store is the disk-backed result store. All methods are safe for
// concurrent use; file I/O is serialized under one lock, which is fine at
// this layer — the memory LRU in front of it absorbs the hot path.
type Store struct {
	mu         sync.Mutex
	fs         FS
	dir        string
	qdir       string
	maxBytes   int64
	maxPayload int64
	fsync      FsyncPolicy

	ll     *list.List               // front = most recently used
	items  map[string]*list.Element // entry filename -> element
	bytes  int64
	tmpSeq int64

	quarantined int64
	evictions   int64
	hits        int64
	misses      int64
}

// indexEntry is one live entry's accounting record.
type indexEntry struct {
	name string
	size int64
}

// Open creates (if needed) and scans the store directory: leftover temp
// files from interrupted writes are deleted, and every entry file is
// fully validated — header and payload checksums, canonical key-to-name
// correspondence — with failures moved to the quarantine subdirectory,
// never served. The scan also probes writability so a misconfigured
// directory fails here, at startup, not on the first solve.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: empty directory")
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	maxPayload := opts.MaxPayloadBytes
	if maxPayload <= 0 {
		maxPayload = 1 << 30
	}
	s := &Store{
		fs:         fsys,
		dir:        opts.Dir,
		qdir:       filepath.Join(opts.Dir, quarantineDir),
		maxBytes:   opts.MaxBytes,
		maxPayload: maxPayload,
		fsync:      opts.Fsync,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
	if err := fsys.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", s.dir, err)
	}
	if err := fsys.MkdirAll(s.qdir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", s.qdir, err)
	}
	if err := s.probeWritable(); err != nil {
		return nil, fmt.Errorf("store: %s is not writable: %w", s.dir, err)
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// probeWritable round-trips a probe file so Open rejects read-only
// directories with a clean error instead of degrading on the first Put.
func (s *Store) probeWritable() error {
	probe := filepath.Join(s.dir, ".probe.tmp")
	f, err := s.fs.Create(probe)
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("probe"))
	cerr := f.Close()
	rerr := s.fs.Remove(probe)
	for _, err := range []error{werr, cerr, rerr} {
		if err != nil {
			return err
		}
	}
	return nil
}

// scan builds the index from the directory: validated entries ordered by
// modification time (the LRU order a fresh process can know), temp files
// removed, and everything else quarantined.
func (s *Store) scan() error {
	des, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: scan %s: %w", s.dir, err)
	}
	type scanned struct {
		name  string
		size  int64
		mtime int64
	}
	var live []scanned
	for _, de := range des {
		name := de.Name()
		if de.IsDir() {
			continue // the quarantine subdirectory
		}
		if strings.Contains(name, ".tmp") {
			// Leftover from a write interrupted before its rename: the
			// entry it was building never became visible, so deleting it
			// is the completion of the crash's rollback.
			_ = s.fs.Remove(filepath.Join(s.dir, name))
			continue
		}
		if !strings.HasSuffix(name, entrySuffix) {
			s.quarantine(name)
			continue
		}
		e, err := s.readAndValidate(name)
		if err != nil {
			var fe *FormatError
			if errors.As(err, &fe) || errors.Is(err, errAlienEntry) {
				s.quarantine(name)
				continue
			}
			return fmt.Errorf("store: scan %s: %w", name, err)
		}
		info, err := de.Info()
		if err != nil {
			return fmt.Errorf("store: scan %s: %w", name, err)
		}
		live = append(live, scanned{name: name, size: entrySize(e), mtime: info.ModTime().UnixNano()})
	}
	// Oldest first, name as the deterministic tiebreak; pushing front in
	// that order leaves the newest entry most recently used.
	sort.Slice(live, func(i, j int) bool {
		if live[i].mtime != live[j].mtime {
			return live[i].mtime < live[j].mtime
		}
		return live[i].name < live[j].name
	})
	for _, sc := range live {
		s.items[sc.name] = s.ll.PushFront(&indexEntry{name: sc.name, size: sc.size})
		s.bytes += sc.size
	}
	return nil
}

// errAlienEntry marks a structurally valid entry whose header key does
// not match its file name — someone else's entry, or a renamed one. It is
// quarantined like corruption, distinct only for error messages.
var errAlienEntry = errors.New("store: entry key does not match its file name")

// readAndValidate reads one entry file and checks it end to end,
// including that the header's key matches the file name.
func (s *Store) readAndValidate(name string) (*Entry, error) {
	f, err := s.fs.Open(filepath.Join(s.dir, name))
	if err != nil {
		return nil, err
	}
	e, rerr := ReadEntry(f, s.maxPayload)
	cerr := f.Close()
	if rerr != nil {
		return nil, rerr
	}
	if cerr != nil {
		return nil, cerr
	}
	if entryFilename(e.Fingerprint, e.ParamsHash) != name {
		return nil, errAlienEntry
	}
	return e, nil
}

// quarantine moves a failed entry into the quarantine subdirectory (it is
// kept for forensics, never served); if even the rename fails the file is
// deleted so it cannot be picked up again.
func (s *Store) quarantine(name string) {
	src := filepath.Join(s.dir, name)
	if err := s.fs.Rename(src, filepath.Join(s.qdir, name)); err != nil {
		_ = s.fs.Remove(src)
	}
	s.quarantined++
}

// Get returns the entry stored for key. A missing entry — or one that
// fails validation, which is quarantined on the spot — is ErrNotFound; any
// other error is a real I/O failure the caller should treat as the disk
// going away (the service flips to memory-only mode on it).
func (s *Store) Get(key Key) (*Entry, error) {
	name := key.filename()
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[name]
	if !ok {
		s.misses++
		return nil, ErrNotFound
	}
	e, err := s.readAndValidate(name)
	if err != nil {
		if os.IsNotExist(err) {
			// Index drift (the file vanished under us): drop the record.
			s.dropLocked(el)
			s.misses++
			return nil, ErrNotFound
		}
		var fe *FormatError
		if errors.As(err, &fe) || errors.Is(err, errAlienEntry) {
			s.quarantine(name)
			s.dropLocked(el)
			s.misses++
			return nil, ErrNotFound
		}
		return nil, err
	}
	if e.Fingerprint != key.Fingerprint || e.ParamsHash != paramsHash(key.Params) {
		s.quarantine(name)
		s.dropLocked(el)
		s.misses++
		return nil, ErrNotFound
	}
	s.ll.MoveToFront(el)
	s.hits++
	return e, nil
}

// dropLocked removes an element from the index without touching its file.
func (s *Store) dropLocked(el *list.Element) {
	ie := el.Value.(*indexEntry)
	s.ll.Remove(el)
	delete(s.items, ie.name)
	s.bytes -= ie.size
}

// Put persists one result: the entry is written to a temp file, synced
// per the fsync policy, and atomically renamed into place, so no reader —
// in this process or after a crash — can ever observe a torn entry. On
// success, least-recently-used entries are evicted until the store fits
// its byte budget again (the fresh entry itself is never evicted). Any
// error leaves the previous state intact.
func (s *Store) Put(key Key, computedAtNanos int64, payload []byte) error {
	e := &Entry{
		Fingerprint:     key.Fingerprint,
		ParamsHash:      paramsHash(key.Params),
		ComputedAtNanos: computedAtNanos,
		Payload:         payload,
	}
	size := entrySize(e)
	if s.maxBytes > 0 && size > s.maxBytes {
		// An entry that alone exceeds the whole budget would immediately
		// evict everything and then be evicted by its successor; skipping
		// it keeps the store useful. The memory tier still serves it.
		return nil
	}
	name := key.filename()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tmpSeq++
	tmp := filepath.Join(s.dir, fmt.Sprintf("%s.tmp%d", name, s.tmpSeq))
	if err := s.writeTemp(tmp, e); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	if s.fsync == FsyncAlways {
		if err := s.fs.SyncDir(s.dir); err != nil {
			return err
		}
	}
	if el, ok := s.items[name]; ok {
		// Overwrite: the rename already replaced the file.
		ie := el.Value.(*indexEntry)
		s.bytes += size - ie.size
		ie.size = size
		s.ll.MoveToFront(el)
	} else {
		s.items[name] = s.ll.PushFront(&indexEntry{name: name, size: size})
		s.bytes += size
	}
	return s.evictLocked(s.items[name])
}

// writeTemp writes and (per policy) syncs the temp file, cleaning it up
// on any failure.
func (s *Store) writeTemp(tmp string, e *Entry) error {
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		_ = f.Close()
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := WriteEntry(f, e); err != nil {
		return fail(err)
	}
	if s.fsync == FsyncAlways {
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	}
	if err := f.Close(); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	return nil
}

// evictLocked removes least-recently-used entries until the store fits
// the byte budget, never touching keep (the entry just written).
func (s *Store) evictLocked(keep *list.Element) error {
	for s.maxBytes > 0 && s.bytes > s.maxBytes {
		back := s.ll.Back()
		if back == nil || back == keep {
			return nil
		}
		ie := back.Value.(*indexEntry)
		if err := s.fs.Remove(filepath.Join(s.dir, ie.name)); err != nil && !os.IsNotExist(err) {
			return err
		}
		s.dropLocked(back)
		s.evictions++
	}
	return nil
}

// Discard quarantines the entry for key, if present. The service layer
// calls it when a checksum-valid payload fails to deserialize — a schema
// mismatch rather than disk corruption — so the entry stops being offered.
func (s *Store) Discard(key Key) {
	name := key.filename()
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[name]; ok {
		s.quarantine(name)
		s.dropLocked(el)
	}
}

// Stats snapshots the store's accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:     s.ll.Len(),
		Bytes:       s.bytes,
		Quarantined: s.quarantined,
		Evictions:   s.evictions,
		Hits:        s.hits,
		Misses:      s.misses,
	}
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the store. It holds no file descriptors between calls,
// so this is a no-op kept for resource-owner symmetry (and so callers
// written against io.Closer work).
func (s *Store) Close() error { return nil }

var _ io.Closer = (*Store)(nil)
