package store

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzReadStoreEntry holds ReadEntry to the same contract the csrbin
// reader honors: arbitrary input never panics; every rejection is a
// *FormatError carrying a non-negative byte offset and a message; the
// same input always yields the same outcome; and an accepted entry
// re-encodes byte-identically through WriteEntry.
func FuzzReadStoreEntry(f *testing.F) {
	// A canonical valid entry, plus mutations that land in each region of
	// the taxonomy: magic, version, flags, header CRC, payload checksum,
	// truncation, and trailing garbage.
	valid := func(payload string) []byte {
		var buf bytes.Buffer
		if err := WriteEntry(&buf, testEntry(payload)); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	base := valid(`{"domination_number":3}`)
	f.Add([]byte{})
	f.Add(base)
	f.Add(valid(""))
	f.Add(base[:entryHeaderLen-1])
	f.Add(base[:len(base)-1])
	f.Add(append(append([]byte(nil), base...), 0x00))
	for _, off := range []int{0, 8, 12, 20, 64, 72, 85, 92, entryHeaderLen + 1} {
		m := append([]byte(nil), base...)
		m[off] ^= 0x01
		f.Add(m)
	}

	const maxPayload = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := ReadEntry(bytes.NewReader(data), maxPayload)
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("rejection is not a *FormatError: %v", err)
			}
			if fe.Offset < 0 || fe.Msg == "" {
				t.Fatalf("malformed FormatError: %+v", fe)
			}
			if _, err2 := ReadEntry(bytes.NewReader(data), maxPayload); err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("nondeterministic rejection: %v vs %v", err, err2)
			}
			return
		}
		var buf bytes.Buffer
		if werr := WriteEntry(&buf, e); werr != nil {
			t.Fatalf("re-encode of accepted entry failed: %v", werr)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("accepted entry does not re-encode byte-identically (%d vs %d bytes)",
				buf.Len(), len(data))
		}
	})
}
