// Package store is the daemon's durability layer: a disk-backed
// content-addressed result store keyed by graph.Fingerprint plus the
// normalized solver params. One checksummed entry file holds one solve
// result; writes go through a temp file and an atomic rename under a
// configurable fsync policy, a startup scan quarantines (never serves)
// truncated, corrupt, or alien entries, and on-disk LRU eviction keeps
// the store inside a byte budget. All I/O goes through the FS interface
// so tests inject ENOSPC, short writes, and read errors deterministically.
//
// The entry encoding follows the csrbin discipline (internal/graphio): a
// PNG-style magic, a CRC-32-guarded fixed header carrying the key and the
// persisted computed-at timestamp, a CRC-64/ECMA over the payload, and a
// deterministic byte-offset *FormatError taxonomy — a given corrupt input
// always yields the same error, and an accepted entry re-encodes
// byte-identically.
package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/crc64"
	"io"

	"localmds/internal/graph"
)

// The entry file layout (all integers little-endian):
//
//	offset  size  field
//	     0     8  magic 89 4D 44 53 45 0D 0A 1A ("\x89MDSE\r\n\x1a")
//	     8     4  version (currently 1)
//	    12     4  flags (must be 0)
//	    16    32  graph fingerprint (raw SHA-256, the content address)
//	    48     8  FNV-1a/64 of the normalized params string
//	    56     8  computed-at timestamp, Unix nanoseconds (int64)
//	    64     8  payload length in bytes
//	    72     8  CRC-64/ECMA of the payload bytes
//	    80    12  reserved, must be zero
//	    92     4  IEEE CRC-32 of header bytes [0, 92)
//	    96     …  payload (the serialized solve outcome)

// entryMagic is the 8-byte file signature.
var entryMagic = [8]byte{0x89, 'M', 'D', 'S', 'E', '\r', '\n', 0x1a}

const (
	entryVersion   = 1
	entryHeaderLen = 96
)

// entryCRCTable is the CRC-64/ECMA table for the payload checksum.
var entryCRCTable = crc64.MakeTable(crc64.ECMA)

// FormatError locates a structural or integrity error in an entry file.
// Offset is the byte position of the offending field (0 for whole-file
// problems such as a bad magic). The taxonomy is deterministic: a given
// corrupt input always yields the same error.
type FormatError struct {
	Offset int64
	Msg    string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("store: byte %d: %s", e.Offset, e.Msg)
}

func formatErrf(offset int64, format string, args ...any) *FormatError {
	return &FormatError{Offset: offset, Msg: fmt.Sprintf(format, args...)}
}

// Entry is one decoded store entry: the key it belongs to, the persisted
// computed-at instant, and the opaque result payload. The store never
// interprets the payload; the service layer serializes solve outcomes
// into it and cross-checks the key on the way back out.
type Entry struct {
	Fingerprint graph.Fingerprint
	ParamsHash  uint64
	// ComputedAtNanos is the Unix-nanosecond instant the result was
	// computed — the timestamp cache ages are measured from, surviving
	// restarts (unlike an in-memory load stamp).
	ComputedAtNanos int64
	Payload         []byte
}

// paramsHash derives the header's params field from the normalized params
// string (FNV-1a/64, matching the repo's seed-derivation idiom).
func paramsHash(params string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(params); i++ {
		h ^= uint64(params[i])
		h *= prime64
	}
	return h
}

// ReadEntry decodes and fully validates one entry stream: magic, version,
// header checksum, payload length bound, payload checksum, and no
// trailing bytes. maxPayload <= 0 means unlimited. Rejections are always
// a *FormatError with a byte offset; no input panics; an accepted entry
// re-encodes byte-identically through WriteEntry.
func ReadEntry(r io.Reader, maxPayload int64) (*Entry, error) {
	hdr := make([]byte, entryHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, formatErrf(0, "truncated header: %v", err)
		}
		return nil, err // a real I/O failure, not a format problem
	}
	e, plen, err := parseEntryHeader(hdr, maxPayload)
	if err != nil {
		return nil, err
	}
	e.Payload = make([]byte, plen)
	if _, err := io.ReadFull(r, e.Payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, formatErrf(entryHeaderLen, "truncated payload: %v", err)
		}
		return nil, err
	}
	if crc := crc64.Checksum(e.Payload, entryCRCTable); crc != binary.LittleEndian.Uint64(hdr[72:]) {
		return nil, formatErrf(72, "payload checksum mismatch (header says %#x, payload sums to %#x)",
			binary.LittleEndian.Uint64(hdr[72:]), crc)
	}
	var one [1]byte
	k, rerr := r.Read(one[:])
	if k != 0 {
		return nil, formatErrf(entryHeaderLen+plen, "trailing data after the payload")
	}
	if rerr != nil && rerr != io.EOF {
		return nil, rerr
	}
	return e, nil
}

// parseEntryHeader validates the fixed header and returns the decoded
// key fields plus the declared payload length.
func parseEntryHeader(hdr []byte, maxPayload int64) (*Entry, int64, error) {
	if !bytes.Equal(hdr[:8], entryMagic[:]) {
		return nil, 0, formatErrf(0, "bad magic %x (want %x)", hdr[:8], entryMagic[:])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != entryVersion {
		return nil, 0, formatErrf(8, "unsupported version %d (want %d)", v, entryVersion)
	}
	if f := binary.LittleEndian.Uint32(hdr[12:]); f != 0 {
		return nil, 0, formatErrf(12, "unknown flags %#x (must be 0)", f)
	}
	if sum := crc32.ChecksumIEEE(hdr[:92]); sum != binary.LittleEndian.Uint32(hdr[92:]) {
		return nil, 0, formatErrf(92, "header checksum mismatch (want %#x, got %#x)",
			binary.LittleEndian.Uint32(hdr[92:]), sum)
	}
	for i, b := range hdr[80:92] {
		if b != 0 {
			return nil, 0, formatErrf(int64(80+i), "reserved header byte %d is nonzero", 80+i)
		}
	}
	plenU := binary.LittleEndian.Uint64(hdr[64:])
	if plenU > uint64(1)<<62 {
		return nil, 0, formatErrf(64, "payload length %d overflows", plenU)
	}
	plen := int64(plenU)
	if maxPayload > 0 && plen > maxPayload {
		return nil, 0, formatErrf(64, "payload length %d exceeds the limit %d", plen, maxPayload)
	}
	e := &Entry{
		ParamsHash:      binary.LittleEndian.Uint64(hdr[48:]),
		ComputedAtNanos: int64(binary.LittleEndian.Uint64(hdr[56:])),
	}
	copy(e.Fingerprint[:], hdr[16:48])
	return e, plen, nil
}

// encodeEntryHeader renders the canonical header for e.
func encodeEntryHeader(e *Entry) []byte {
	hdr := make([]byte, entryHeaderLen)
	copy(hdr, entryMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], entryVersion)
	binary.LittleEndian.PutUint32(hdr[12:], 0)
	copy(hdr[16:48], e.Fingerprint[:])
	binary.LittleEndian.PutUint64(hdr[48:], e.ParamsHash)
	binary.LittleEndian.PutUint64(hdr[56:], uint64(e.ComputedAtNanos))
	binary.LittleEndian.PutUint64(hdr[64:], uint64(len(e.Payload)))
	binary.LittleEndian.PutUint64(hdr[72:], crc64.Checksum(e.Payload, entryCRCTable))
	binary.LittleEndian.PutUint32(hdr[92:], crc32.ChecksumIEEE(hdr[:92]))
	return hdr
}

// WriteEntry writes the canonical encoding of e. Decoding what it wrote
// yields e back field-for-field, and re-encoding a ReadEntry result
// reproduces the input byte for byte.
func WriteEntry(w io.Writer, e *Entry) error {
	if _, err := w.Write(encodeEntryHeader(e)); err != nil {
		return err
	}
	_, err := w.Write(e.Payload)
	return err
}

// entrySize is the on-disk size of e, for the byte-budget accounting.
func entrySize(e *Entry) int64 { return entryHeaderLen + int64(len(e.Payload)) }
