package store

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the narrow filesystem surface the store performs all I/O through.
// Production uses OSFS; tests swap in wrappers that inject ENOSPC, short
// writes, read errors, and rename failures at precise points, so every
// degraded-mode path is exercised without touching a real disk fault.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Create truncate-creates a file for writing.
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]os.DirEntry, error)
	Stat(name string) (os.FileInfo, error)
	// SyncDir flushes directory metadata (the rename journal) to stable
	// storage; the atomic-rename protocol is only crash-safe once the
	// directory entry itself is durable.
	SyncDir(name string) error
}

// File is the per-file surface: sequential read/write plus Sync for the
// fsync policy.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Stat() (os.FileInfo, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OSFS) Open(name string) (File, error) { return os.Open(name) }

func (OSFS) Create(name string) (File, error) { return os.Create(name) }

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (OSFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (OSFS) SyncDir(name string) error {
	d, err := os.Open(filepath.Clean(name))
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
