package store

import (
	"errors"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// faultFS wraps the real filesystem and injects one failure per field.
// Matching is by substring of the path, so a test can target "the entry
// file" or "the temp file" without knowing exact names.
type faultFS struct {
	inner FS

	createErr   error // Create fails outright
	writeErr    error // writes through created files fail
	shortWrite  bool  // writes through created files report n-1, no error
	syncErr     error // File.Sync fails
	readErr     error // reads through opened files fail
	renameErr   error // Rename fails
	removeErr   error // Remove fails
	syncDirErr  error // SyncDir fails
	pathPattern string
}

func (f *faultFS) match(name string) bool {
	return f.pathPattern == "" || strings.Contains(name, f.pathPattern)
}

func (f *faultFS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }

func (f *faultFS) Open(name string) (File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	if f.readErr != nil && f.match(name) {
		return &faultFile{File: file, readErr: f.readErr}, nil
	}
	return file, nil
}

func (f *faultFS) Create(name string) (File, error) {
	if f.createErr != nil && f.match(name) {
		return nil, f.createErr
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	if (f.writeErr != nil || f.shortWrite || f.syncErr != nil) && f.match(name) {
		return &faultFile{File: file, writeErr: f.writeErr, shortWrite: f.shortWrite, syncErr: f.syncErr}, nil
	}
	return file, nil
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if f.renameErr != nil && (f.match(oldpath) || f.match(newpath)) {
		return f.renameErr
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(name string) error {
	if f.removeErr != nil && f.match(name) {
		return f.removeErr
	}
	return f.inner.Remove(name)
}

func (f *faultFS) ReadDir(name string) ([]os.DirEntry, error) { return f.inner.ReadDir(name) }

func (f *faultFS) Stat(name string) (os.FileInfo, error) { return f.inner.Stat(name) }

func (f *faultFS) SyncDir(name string) error {
	if f.syncDirErr != nil && f.match(name) {
		return f.syncDirErr
	}
	return f.inner.SyncDir(name)
}

type faultFile struct {
	File
	writeErr   error
	shortWrite bool
	syncErr    error
	readErr    error
}

func (f *faultFile) Write(p []byte) (int, error) {
	if f.writeErr != nil {
		return 0, f.writeErr
	}
	if f.shortWrite && len(p) > 0 {
		n, err := f.File.Write(p[:len(p)-1])
		if err != nil {
			return n, err
		}
		return n, errors.New("short write")
	}
	return f.File.Write(p)
}

func (f *faultFile) Read(p []byte) (int, error) {
	if f.readErr != nil {
		return 0, f.readErr
	}
	return f.File.Read(p)
}

func (f *faultFile) Sync() error {
	if f.syncErr != nil {
		return f.syncErr
	}
	return f.File.Sync()
}

// seedStore opens a plain store on dir and persists one entry for k, then
// returns; the fault test reopens the same dir through a faultFS.
func seedStore(t *testing.T, dir string, k Key) {
	t.Helper()
	s := mustOpen(t, Options{Dir: dir})
	if err := s.Put(k, time.Now().UnixNano(), []byte(`{"seed":true}`)); err != nil {
		t.Fatal(err)
	}
}

// TestPutENOSPC: a full disk fails the Put with the real error (so the
// service can degrade), leaves no temp litter, and keeps previously
// persisted entries servable.
func TestPutENOSPC(t *testing.T) {
	dir := t.TempDir()
	k0, k1 := testKey(0), testKey(1)
	seedStore(t, dir, k0)
	ffs := &faultFS{inner: OSFS{}, writeErr: syscall.ENOSPC, pathPattern: ".mdse.tmp"}
	s := mustOpen(t, Options{Dir: dir, FS: ffs})
	err := s.Put(k1, 1, []byte("new result"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put under ENOSPC: %v, want ENOSPC", err)
	}
	if _, err := s.Get(k1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed Put became visible: %v", err)
	}
	if _, err := s.Get(k0); err != nil {
		t.Fatalf("prior entry lost after ENOSPC: %v", err)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.Contains(de.Name(), ".tmp") {
			t.Fatalf("temp litter after failed Put: %s", de.Name())
		}
	}
}

func TestPutShortWrite(t *testing.T) {
	ffs := &faultFS{inner: OSFS{}, shortWrite: true, pathPattern: ".mdse.tmp"}
	s := mustOpen(t, Options{Dir: t.TempDir(), FS: ffs})
	if err := s.Put(testKey(0), 1, []byte("payload")); err == nil {
		t.Fatal("short write went unnoticed")
	}
	if _, err := s.Get(testKey(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn entry visible: %v", err)
	}
}

func TestPutCreateFails(t *testing.T) {
	ffs := &faultFS{inner: OSFS{}, createErr: syscall.EACCES, pathPattern: ".mdse.tmp"}
	s := mustOpen(t, Options{Dir: t.TempDir(), FS: ffs})
	if err := s.Put(testKey(0), 1, []byte("x")); !errors.Is(err, syscall.EACCES) {
		t.Fatalf("Put: %v, want EACCES", err)
	}
}

func TestPutSyncFails(t *testing.T) {
	ffs := &faultFS{inner: OSFS{}, syncErr: syscall.EIO, pathPattern: ".mdse.tmp"}
	s := mustOpen(t, Options{Dir: t.TempDir(), FS: ffs, Fsync: FsyncAlways})
	if err := s.Put(testKey(0), 1, []byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Put: %v, want EIO", err)
	}
	// Under FsyncNone the same fault never fires.
	s2 := mustOpen(t, Options{Dir: t.TempDir(), FS: ffs, Fsync: FsyncNone})
	if err := s2.Put(testKey(0), 1, []byte("x")); err != nil {
		t.Fatalf("Put with FsyncNone: %v", err)
	}
}

func TestPutRenameFails(t *testing.T) {
	dir := t.TempDir()
	ffs := &faultFS{inner: OSFS{}, renameErr: syscall.EIO, pathPattern: entrySuffix}
	s := mustOpen(t, Options{Dir: dir, FS: ffs})
	if err := s.Put(testKey(0), 1, []byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Put: %v, want EIO", err)
	}
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("failed rename was indexed: %+v", st)
	}
}

// TestGetReadError: a real read failure (not corruption) comes back as the
// I/O error itself, NOT ErrNotFound — that distinction is what the service
// keys its degrade-to-memory-only decision on.
func TestGetReadError(t *testing.T) {
	dir := t.TempDir()
	k := testKey(0)
	seedStore(t, dir, k)
	s := mustOpen(t, Options{Dir: dir})
	// Inject after Open: a scan-time read error is fatal (covered below),
	// this test is about the serving path.
	s.fs = &faultFS{inner: OSFS{}, readErr: syscall.EIO, pathPattern: entrySuffix}
	_, err := s.Get(k)
	if err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("Get under EIO: %v, want the I/O error itself", err)
	}
	// The entry must not have been quarantined: the bytes on disk are fine.
	if st := s.Stats(); st.Quarantined != 0 {
		t.Fatalf("I/O error caused quarantine: %+v", st)
	}
}

// TestScanReadErrorFailsOpen: an I/O error during the startup scan is a
// fatal Open error, not a silent quarantine — a flaky disk at boot should
// stop the store from coming up half-blind.
func TestScanReadErrorFailsOpen(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, testKey(0))
	ffs := &faultFS{inner: OSFS{}, readErr: syscall.EIO, pathPattern: entrySuffix}
	if _, err := Open(Options{Dir: dir, FS: ffs}); err == nil {
		t.Fatal("Open succeeded over a disk that cannot read entries")
	}
}

func TestOpenProbeFails(t *testing.T) {
	ffs := &faultFS{inner: OSFS{}, createErr: syscall.EROFS, pathPattern: ".probe"}
	if _, err := Open(Options{Dir: t.TempDir(), FS: ffs}); !errors.Is(err, syscall.EROFS) {
		t.Fatalf("Open on read-only fs: %v, want EROFS", err)
	}
}

func TestPutSyncDirFails(t *testing.T) {
	ffs := &faultFS{inner: OSFS{}, syncDirErr: syscall.EIO}
	// Match only after Open's probe: scope the fault post-construction.
	s := mustOpen(t, Options{Dir: t.TempDir(), Fsync: FsyncAlways})
	s.fs = ffs
	if err := s.Put(testKey(0), 1, []byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Put: %v, want EIO from SyncDir", err)
	}
}

// TestEvictionRemoveError: a Remove failure during eviction surfaces to the
// Put caller (the service degrades) instead of silently leaking budget.
func TestEvictionRemoveError(t *testing.T) {
	dir := t.TempDir()
	payload := strings.Repeat("z", 100)
	one := entryHeaderLen + int64(len(payload))
	s := mustOpen(t, Options{Dir: dir, MaxBytes: one})
	if err := s.Put(testKey(0), 1, []byte(payload)); err != nil {
		t.Fatal(err)
	}
	s.fs = &faultFS{inner: OSFS{}, removeErr: syscall.EIO, pathPattern: testKey(0).filename()}
	if err := s.Put(testKey(1), 1, []byte(payload)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Put over failing eviction: %v, want EIO", err)
	}
}

// TestConcurrentPutGet exercises the lock paths under -race.
func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxBytes: 64 << 10})
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				k := testKey((w*50 + i) % 20)
				_ = s.Put(k, int64(i+1), []byte(strings.Repeat("p", 64)))
				if _, err := s.Get(k); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if st := s.Stats(); st.Quarantined != 0 {
		t.Fatalf("concurrent churn quarantined entries: %+v", st)
	}
}
