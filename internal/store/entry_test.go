package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"localmds/internal/graph"
)

// rewriteHeaderCRC recomputes the header checksum after a deliberate
// field edit, so tests reach the per-field validation behind it.
func rewriteHeaderCRC(data []byte) {
	binary.LittleEndian.PutUint32(data[92:], crc32.ChecksumIEEE(data[:92]))
}

// testEntry builds a small valid entry.
func testEntry(payload string) *Entry {
	fp := graph.FromEdgesUnchecked(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}).Fingerprint()
	return &Entry{
		Fingerprint:     fp,
		ParamsHash:      paramsHash("r1=4,r2=4,mbc=128"),
		ComputedAtNanos: 1_723_000_000_000_000_000,
		Payload:         []byte(payload),
	}
}

func encode(t *testing.T, e *Entry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteEntry(&buf, e); err != nil {
		t.Fatalf("WriteEntry: %v", err)
	}
	return buf.Bytes()
}

func TestEntryRoundTrip(t *testing.T) {
	want := testEntry(`{"fingerprint":"abc","params":{"r1":4}}`)
	data := encode(t, want)
	got, err := ReadEntry(bytes.NewReader(data), 0)
	if err != nil {
		t.Fatalf("ReadEntry: %v", err)
	}
	if got.Fingerprint != want.Fingerprint || got.ParamsHash != want.ParamsHash ||
		got.ComputedAtNanos != want.ComputedAtNanos || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
	re := encode(t, got)
	if !bytes.Equal(re, data) {
		t.Fatalf("re-encode not byte-identical (%d vs %d bytes)", len(re), len(data))
	}
}

func TestEntryEmptyPayloadRoundTrip(t *testing.T) {
	data := encode(t, testEntry(""))
	e, err := ReadEntry(bytes.NewReader(data), 0)
	if err != nil {
		t.Fatalf("ReadEntry: %v", err)
	}
	if len(e.Payload) != 0 {
		t.Fatalf("payload = %q, want empty", e.Payload)
	}
}

// TestEntryCorruptionTaxonomy flips or truncates specific regions and
// checks the reader rejects each with a deterministic *FormatError at the
// right byte offset — and that the same mutation always yields the same
// error.
func TestEntryCorruptionTaxonomy(t *testing.T) {
	base := encode(t, testEntry(`{"v":1}`))
	mutate := func(off int, delta byte) []byte {
		m := append([]byte(nil), base...)
		m[off] ^= delta
		return m
	}
	cases := []struct {
		name       string
		data       []byte
		wantOffset int64
	}{
		{"empty", nil, 0},
		{"bad magic", mutate(0, 0xff), 0},
		{"truncated header", base[:entryHeaderLen-1], 0},
		{"bad version", mutate(8, 0x01), 8},
		{"flag bit", mutate(12, 0x01), 12},
		{"fingerprint bit", mutate(20, 0x01), 92},
		{"reserved bit", mutate(85, 0x01), 92},
		{"header crc bit", mutate(93, 0x01), 92},
		{"payload bit", mutate(entryHeaderLen+2, 0x01), 72},
		{"truncated payload", base[:len(base)-1], entryHeaderLen},
		{"trailing byte", append(append([]byte(nil), base...), 0x00), int64(len(base))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err1 := ReadEntry(bytes.NewReader(tc.data), 0)
			_, err2 := ReadEntry(bytes.NewReader(tc.data), 0)
			var fe *FormatError
			if !errors.As(err1, &fe) {
				t.Fatalf("rejection is not a *FormatError: %v", err1)
			}
			if fe.Offset != tc.wantOffset {
				t.Fatalf("offset = %d, want %d (%v)", fe.Offset, tc.wantOffset, fe)
			}
			if err2 == nil || err1.Error() != err2.Error() {
				t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
			}
		})
	}
}

// TestEntryVersionAndFlagsRejected rewrites the header fields with a
// recomputed CRC so validation reaches the field checks themselves.
func TestEntryVersionAndFlagsRejected(t *testing.T) {
	for _, tc := range []struct {
		name       string
		off        int
		val        byte
		wantOffset int64
	}{
		{"future version", 8, 9, 8},
		{"unknown flags", 12, 1, 12},
		{"nonzero reserved", 80, 7, 80},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := encode(t, testEntry("x"))
			data[tc.off] = tc.val
			rewriteHeaderCRC(data)
			_, err := ReadEntry(bytes.NewReader(data), 0)
			var fe *FormatError
			if !errors.As(err, &fe) || fe.Offset != tc.wantOffset {
				t.Fatalf("err = %v, want *FormatError at byte %d", err, tc.wantOffset)
			}
		})
	}
}

func TestEntryPayloadLimit(t *testing.T) {
	data := encode(t, testEntry("0123456789"))
	if _, err := ReadEntry(bytes.NewReader(data), 4); err == nil {
		t.Fatal("payload over the limit was accepted")
	} else {
		var fe *FormatError
		if !errors.As(err, &fe) || fe.Offset != 64 {
			t.Fatalf("limit rejection = %v, want *FormatError at byte 64", err)
		}
	}
	if _, err := ReadEntry(bytes.NewReader(data), 10); err != nil {
		t.Fatalf("payload at the limit rejected: %v", err)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	if p, err := ParseFsyncPolicy("always"); err != nil || p != FsyncAlways {
		t.Fatalf("always: %v %v", p, err)
	}
	if p, err := ParseFsyncPolicy("none"); err != nil || p != FsyncNone {
		t.Fatalf("none: %v %v", p, err)
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
	if FsyncAlways.String() != "always" || FsyncNone.String() != "none" {
		t.Fatal("String round trip")
	}
}
