// Package minor implements exact minor detection for the complete bipartite
// minors K_{1,t} and K_{2,t} that parameterize the paper's graph classes,
// plus verification of explicit minor models. Detection is
// correctness-first and exponential (it enumerates connected branch sets),
// intended to certify generator outputs and small fixtures; the experiment
// generators in internal/ding produce instances that are free by
// construction, and the tests here cross-check them at small sizes.
//
// The K_{2,t} test uses the Menger reformulation: G has a K_{2,t} minor iff
// there exist disjoint connected sets A, B ⊆ V(G) with t internally
// vertex-disjoint A–B paths, each with at least one interior vertex. Each
// such path yields one of the t middle branch sets of K_{2,t} and vice
// versa (every middle branch set is connected and adjacent to both hubs, so
// it contains such a path).
package minor

import (
	"fmt"
	"math/bits"

	"localmds/internal/graph"
)

// MaxExactVertices is the largest graph the exact testers accept. The
// enumeration is exponential in the worst case; 22 keeps worst-case subset
// counts around 4M, which only dense graphs approach.
const MaxExactVertices = 22

// ErrTooLarge is returned when an exact test is asked about a graph larger
// than MaxExactVertices.
var ErrTooLarge = fmt.Errorf("minor: graph exceeds %d vertices; exact test refused", MaxExactVertices)

// Model is an explicit K_{s,t} minor model: Hubs are the branch sets of the
// side-s vertices and Middles the branch sets of the side-t vertices.
type Model struct {
	Hubs    [][]int
	Middles [][]int
}

// HasK2tMinor reports whether g contains K_{2,t} as a minor, returning a
// certifying model on success. It requires t >= 1 and g.N() <=
// MaxExactVertices.
func HasK2tMinor(g *graph.Graph, t int) (*Model, bool, error) {
	if t < 1 {
		return nil, false, fmt.Errorf("minor: t = %d < 1", t)
	}
	n := g.N()
	if n > MaxExactVertices {
		return nil, false, ErrTooLarge
	}
	if n < t+2 {
		return nil, false, nil // K_{2,t} has t+2 vertices
	}
	adj := adjacencyMasks(g)
	subsets := connectedSubsets(adj)
	// Precompute open neighborhoods of each subset.
	nbr := make([]uint32, len(subsets))
	for i, s := range subsets {
		nbr[i] = neighborhoodMask(adj, s) &^ s
	}
	full := uint32(1)<<n - 1
	for i, a := range subsets {
		if bits.OnesCount32(nbr[i]) < t {
			continue
		}
		for j, b := range subsets {
			if a&b != 0 {
				continue
			}
			if bits.OnesCount32(nbr[j]&^a) < t || bits.OnesCount32(nbr[i]&^b) < t {
				continue
			}
			if bits.OnesCount32(full&^(a|b)) < t {
				continue
			}
			paths := disjointHubPaths(adj, n, a, b, t)
			if len(paths) >= t {
				m := &Model{
					Hubs:    [][]int{maskToSlice(a), maskToSlice(b)},
					Middles: pathsToMiddles(paths, t),
				}
				return m, true, nil
			}
		}
	}
	return nil, false, nil
}

// HasK1tMinor reports whether g contains K_{1,t} as a minor, returning a
// certifying model on success. G has a K_{1,t} minor iff some connected set
// A has at least t distinct outside neighbors.
func HasK1tMinor(g *graph.Graph, t int) (*Model, bool, error) {
	if t < 1 {
		return nil, false, fmt.Errorf("minor: t = %d < 1", t)
	}
	n := g.N()
	if n > MaxExactVertices {
		return nil, false, ErrTooLarge
	}
	if n < t+1 {
		return nil, false, nil
	}
	adj := adjacencyMasks(g)
	for _, a := range connectedSubsets(adj) {
		out := neighborhoodMask(adj, a) &^ a
		if bits.OnesCount32(out) >= t {
			middles := make([][]int, 0, t)
			for _, v := range maskToSlice(out)[:t] {
				middles = append(middles, []int{v})
			}
			return &Model{Hubs: [][]int{maskToSlice(a)}, Middles: middles}, true, nil
		}
	}
	return nil, false, nil
}

// VerifyKstModel checks that m is a valid K_{s,t} minor model in g: all
// branch sets are nonempty, pairwise disjoint, connected in g, and every
// hub set is adjacent to every middle set.
func VerifyKstModel(g *graph.Graph, m *Model) error {
	var all []int
	sets := append(append([][]int(nil), m.Hubs...), m.Middles...)
	for i, s := range sets {
		if len(s) == 0 {
			return fmt.Errorf("minor: branch set %d is empty", i)
		}
		comps := g.ComponentsOfSubset(s)
		if len(comps) != 1 {
			return fmt.Errorf("minor: branch set %d (%v) is not connected", i, s)
		}
		all = append(all, s...)
	}
	if len(graph.Dedup(all)) != len(all) {
		return fmt.Errorf("minor: branch sets are not pairwise disjoint")
	}
	for hi, h := range m.Hubs {
		for mi, mid := range m.Middles {
			if !setsAdjacent(g, h, mid) {
				return fmt.Errorf("minor: hub %d not adjacent to middle %d", hi, mi)
			}
		}
	}
	return nil
}

func setsAdjacent(g *graph.Graph, a, b []int) bool {
	for _, u := range a {
		for _, v := range b {
			if g.HasEdge(u, v) {
				return true
			}
		}
	}
	return false
}

// adjacencyMasks returns per-vertex neighbor bitmasks.
func adjacencyMasks(g *graph.Graph) []uint32 {
	adj := make([]uint32, g.N())
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			adj[v] |= 1 << uint(u)
		}
	}
	return adj
}

func neighborhoodMask(adj []uint32, s uint32) uint32 {
	var out uint32
	for m := s; m != 0; m &= m - 1 {
		out |= adj[bits.TrailingZeros32(m)]
	}
	return out
}

// connectedSubsets enumerates every nonempty connected vertex subset as a
// bitmask, using the standard "grow only with vertices larger than the
// seed's forbidden prefix" enumeration to list each subset exactly once.
func connectedSubsets(adj []uint32) []uint32 {
	n := len(adj)
	var out []uint32
	var grow func(cur, frontier, forbidden uint32)
	grow = func(cur, frontier, forbidden uint32) {
		out = append(out, cur)
		cand := frontier &^ forbidden
		for m := cand; m != 0; m &= m - 1 {
			v := bits.TrailingZeros32(m)
			bit := uint32(1) << uint(v)
			// Every candidate smaller than v is forbidden in the branch
			// where v is taken later, ensuring uniqueness.
			forbiddenHere := forbidden | (cand & (bit - 1))
			grow(cur|bit, (frontier|adj[v])&^(cur|bit), forbiddenHere)
		}
	}
	for v := 0; v < n; v++ {
		bit := uint32(1) << uint(v)
		// Vertices <= v are permanently forbidden so each subset is
		// enumerated exactly once, from its minimum vertex.
		lowBits := uint32(uint64(1)<<uint(v+1) - 1)
		grow(bit, adj[v]&^bit, lowBits)
	}
	return out
}

func maskToSlice(s uint32) []int {
	var out []int
	for m := s; m != 0; m &= m - 1 {
		out = append(out, bits.TrailingZeros32(m))
	}
	return out
}

// pathsToMiddles turns the interior vertex lists of hub-to-hub paths into t
// middle branch sets.
func pathsToMiddles(paths [][]int, t int) [][]int {
	middles := make([][]int, 0, t)
	for _, p := range paths[:t] {
		middles = append(middles, append([]int(nil), p...))
	}
	return middles
}
