package minor

import "math/bits"

// disjointHubPaths computes up to want internally vertex-disjoint A–B paths
// whose interiors avoid A ∪ B and are nonempty (length >= 2), returning the
// interior vertex list of each path found. It is a unit-capacity max-flow
// on the split-vertex digraph: source = contracted A, sink = contracted B,
// every other vertex has capacity one, and no direct source→sink arc exists
// (interiors must be nonempty). It returns nil when fewer than want paths
// exist.
func disjointHubPaths(adj []uint32, n int, a, b uint32, want int) [][]int {
	// Node numbering: 0 = source (A contracted), 1 = sink (B contracted),
	// 2+2i / 3+2i = in/out of interior vertex i (vertices not in A∪B).
	interior := make([]int, 0, n)
	index := make([]int, n) // vertex -> interior slot, or -1
	for i := range index {
		index[i] = -1
	}
	for v := 0; v < n; v++ {
		bit := uint32(1) << uint(v)
		if a&bit == 0 && b&bit == 0 {
			index[v] = len(interior)
			interior = append(interior, v)
		}
	}
	k := len(interior)
	if k == 0 {
		return nil
	}
	nodes := 2 + 2*k
	inNode := func(i int) int { return 2 + 2*i }
	outNode := func(i int) int { return 3 + 2*i }

	type edge struct {
		to, rev, cap int
		orig         bool
	}
	g := make([][]edge, nodes)
	addEdge := func(u, v int) {
		g[u] = append(g[u], edge{to: v, rev: len(g[v]), cap: 1, orig: true})
		g[v] = append(g[v], edge{to: u, rev: len(g[u]) - 1, cap: 0})
	}
	na := neighborhoodMask(adj, a)
	nb := neighborhoodMask(adj, b)
	for i, v := range interior {
		addEdge(inNode(i), outNode(i))
		bit := uint32(1) << uint(v)
		if na&bit != 0 {
			addEdge(0, inNode(i))
		}
		if nb&bit != 0 {
			addEdge(outNode(i), 1)
		}
	}
	for i, v := range interior {
		for m := adj[v]; m != 0; m &= m - 1 {
			u := bits.TrailingZeros32(m)
			if j := index[u]; j >= 0 && u != v {
				addEdge(outNode(i), inNode(j))
			}
		}
	}

	// Edmonds–Karp with unit capacities; stop once want paths are found.
	flow := 0
	parentNode := make([]int, nodes)
	parentEdge := make([]int, nodes)
	for flow < want {
		for i := range parentNode {
			parentNode[i] = -1
		}
		parentNode[0] = 0
		queue := []int{0}
		for len(queue) > 0 && parentNode[1] < 0 {
			u := queue[0]
			queue = queue[1:]
			for ei, e := range g[u] {
				if e.cap > 0 && parentNode[e.to] < 0 {
					parentNode[e.to] = u
					parentEdge[e.to] = ei
					queue = append(queue, e.to)
				}
			}
		}
		if parentNode[1] < 0 {
			break
		}
		for v := 1; v != 0; {
			u := parentNode[v]
			e := &g[u][parentEdge[v]]
			e.cap--
			g[v][e.rev].cap++
			v = u
		}
		flow++
	}
	if flow < want {
		return nil
	}

	// Decompose the flow into paths: from the source, repeatedly walk
	// original arcs that carried flow (cap drained to 0), consuming each
	// arc as it is traversed.
	var paths [][]int
	for p := 0; p < flow; p++ {
		var path []int
		cur := 0
		for cur != 1 {
			advanced := false
			for ei := range g[cur] {
				e := &g[cur][ei]
				if !e.orig || e.cap != 0 {
					continue
				}
				e.cap++ // consume: next walk will pick another arc
				g[e.to][e.rev].cap--
				if e.to >= 2 && (e.to-2)%2 == 0 {
					path = append(path, interior[(e.to-2)/2])
				}
				cur = e.to
				advanced = true
				break
			}
			if !advanced {
				return nil // decomposition failed; treat as no model
			}
		}
		paths = append(paths, path)
	}
	return paths
}
