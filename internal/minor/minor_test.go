package minor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localmds/internal/gen"
	"localmds/internal/graph"
)

func mustTheta(t *testing.T, lengths []int) *graph.Graph {
	t.Helper()
	g, err := gen.Theta(lengths)
	if err != nil {
		t.Fatalf("Theta(%v): %v", lengths, err)
	}
	return g
}

func TestHasK2tMinorPositives(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		t    int
	}{
		{"K23 itself", gen.CompleteBipartite(2, 3), 3},
		{"K24 itself", gen.CompleteBipartite(2, 4), 4},
		{"theta 3 paths", nil, 3}, // set below
		{"K5 has K23", gen.Complete(5), 3},
		{"C4 is K22", gen.Cycle(4), 2},
		{"long cycle has K22", gen.Cycle(12), 2},
		{"grid 3x4 has K23", gen.Grid(3, 4), 3},
	}
	tests[2].g = mustTheta(t, []int{2, 2, 2})
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, ok, err := HasK2tMinor(tt.g, tt.t)
			if err != nil {
				t.Fatalf("HasK2tMinor: %v", err)
			}
			if !ok {
				t.Fatalf("HasK2tMinor = false, want true")
			}
			if err := VerifyKstModel(tt.g, m); err != nil {
				t.Errorf("returned model invalid: %v", err)
			}
			if len(m.Hubs) != 2 || len(m.Middles) != tt.t {
				t.Errorf("model shape hubs=%d middles=%d, want 2, %d", len(m.Hubs), len(m.Middles), tt.t)
			}
		})
	}
}

func TestHasK2tMinorNegatives(t *testing.T) {
	fan6 := func() *graph.Graph {
		g := graph.New(7)
		for i := 1; i <= 6; i++ {
			g.AddEdge(0, i)
			if i > 1 {
				g.AddEdge(i-1, i)
			}
		}
		return g
	}
	ladder := func(r int) *graph.Graph {
		g := graph.New(2 * r)
		for i := 0; i < r; i++ {
			g.AddEdge(2*i, 2*i+1)
			if i+1 < r {
				g.AddEdge(2*i, 2*(i+1))
				g.AddEdge(2*i+1, 2*(i+1)+1)
			}
		}
		return g
	}
	tests := []struct {
		name string
		g    *graph.Graph
		t    int
	}{
		{"tree no K22", gen.Path(8), 2},
		{"cycle no K23", gen.Cycle(9), 3},
		{"fan no K23", fan6(), 3},
		{"K23 no K24", gen.CompleteBipartite(2, 3), 4},
		{"theta3 no K24", mustTheta(t, []int{2, 2, 2}), 4},
		{"ladder no K25", ladder(6), 5},
		{"too few vertices", gen.Complete(3), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, ok, err := HasK2tMinor(tt.g, tt.t)
			if err != nil {
				t.Fatalf("HasK2tMinor: %v", err)
			}
			if ok {
				t.Errorf("HasK2tMinor = true, want false")
			}
		})
	}
}

func TestHasK2tMinorErrors(t *testing.T) {
	if _, _, err := HasK2tMinor(gen.Path(3), 0); err == nil {
		t.Error("t = 0 accepted")
	}
	if _, _, err := HasK2tMinor(gen.Path(MaxExactVertices+1), 2); err == nil {
		t.Error("oversized graph accepted")
	}
}

func TestHasK1tMinor(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		t    int
		want bool
	}{
		{"star has K14", gen.Star(4), 4, true},
		{"star no K15", gen.Star(4), 5, false},
		{"path has K12", gen.Path(5), 2, true},
		{"path no K13", gen.Path(5), 3, false},
		// A path contracted has still max 2 outside neighbors; a spider
		// with 3 legs has K_{1,3}.
		{"spider has K13", gen.Caterpillar(1, 3), 3, true},
		{"K4 has K13", gen.Complete(4), 3, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, ok, err := HasK1tMinor(tt.g, tt.t)
			if err != nil {
				t.Fatalf("HasK1tMinor: %v", err)
			}
			if ok != tt.want {
				t.Fatalf("HasK1tMinor = %v, want %v", ok, tt.want)
			}
			if ok {
				if err := VerifyKstModel(tt.g, m); err != nil {
					t.Errorf("model invalid: %v", err)
				}
			}
		})
	}
}

func TestVerifyKstModelRejects(t *testing.T) {
	g := gen.CompleteBipartite(2, 3) // parts {0,1}, {2,3,4}
	valid := &Model{Hubs: [][]int{{0}, {1}}, Middles: [][]int{{2}, {3}, {4}}}
	if err := VerifyKstModel(g, valid); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := []*Model{
		{Hubs: [][]int{{0}, {0}}, Middles: [][]int{{2}, {3}, {4}}}, // overlap
		{Hubs: [][]int{{0}, {1}}, Middles: [][]int{{2}, {3}, {}}},  // empty
		{Hubs: [][]int{{0}, {1}}, Middles: [][]int{{2, 3}, {4}}},   // disconnected middle {2,3}
		{Hubs: [][]int{{2}, {3}}, Middles: [][]int{{0}, {1}, {4}}}, // middle {4} not adjacent to hub {2}? 4 adjacent to 0,1 only -> hubs {2},{3} adjacent to 0,1 but {4} vs hub {2}: no edge
	}
	for i, m := range bad {
		if err := VerifyKstModel(g, m); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

// Property: monotonicity in t — if G has a K_{2,t} minor it has a K_{2,t'}
// minor for all t' < t.
func TestK2tMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(9, 0.3, rng)
		prev := true
		for tt := 2; tt <= 5; tt++ {
			_, ok, err := HasK2tMinor(g, tt)
			if err != nil {
				return false
			}
			if ok && !prev {
				return false // found at larger t after missing at smaller
			}
			prev = ok
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: every returned model verifies.
func TestK2tModelsVerifyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(10, 0.25, rng)
		for tt := 2; tt <= 4; tt++ {
			m, ok, err := HasK2tMinor(g, tt)
			if err != nil {
				return false
			}
			if ok && VerifyKstModel(g, m) != nil {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: deleting a vertex never creates a minor — if G - v has a
// K_{2,3} minor then so does G.
func TestK2tDeletionMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNPConnected(9, 0.35, rng)
		_, okFull, err := HasK2tMinor(g, 3)
		if err != nil {
			return false
		}
		sub, _ := g.Delete([]int{int(uint(seed) % uint(g.N()))})
		_, okSub, err := HasK2tMinor(sub, 3)
		if err != nil {
			return false
		}
		return !okSub || okFull
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
