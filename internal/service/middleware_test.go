package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"localmds/internal/core"
)

func writeTokenFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tokens")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadTokens(t *testing.T) {
	path := writeTokenFile(t, "# comment\nalice:sekret-a\n\nbob : sekret-b # trailing\n")
	tokens, err := LoadTokens(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"alice": "sekret-a", "bob": "sekret-b"}
	if len(tokens) != len(want) {
		t.Fatalf("tokens = %v", tokens)
	}
	for k, v := range want {
		if tokens[k] != v {
			t.Fatalf("tokens[%q] = %q, want %q", k, tokens[k], v)
		}
	}
	for name, content := range map[string]string{
		"missing colon":    "alice sekret\n",
		"empty tenant":     ":sekret\n",
		"empty token":      "alice:\n",
		"duplicate tenant": "alice:a\nalice:b\n",
		"duplicate token":  "alice:a\nbob:a\n",
		"no entries":       "# nothing\n",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadTokens(writeTokenFile(t, content)); err == nil {
				t.Fatalf("LoadTokens accepted %q", content)
			}
		})
	}
	if _, err := LoadTokens(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("LoadTokens accepted a missing file")
	}
}

// doReq issues one request with optional bearer token and returns the
// response (caller closes the body).
func doReq(t *testing.T, method, url, token string, body string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestBearerAuth(t *testing.T) {
	_, ts := startServer(t, Config{
		Workers: 1,
		Tokens:  map[string]string{"alice": "sekret-alice", "bob": "sekret-bob"},
	})
	solve := `{"generator": {"kind": "grid", "n": 16}}`

	// No token and a wrong token are 401 with the uniform JSON error body
	// and a WWW-Authenticate challenge.
	for _, token := range []string{"", "wrong", "sekret-alic"} {
		resp := doReq(t, "POST", ts.URL+"/v1/solve", token, solve)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("token %q: status %d, want 401", token, resp.StatusCode)
		}
		if got := resp.Header.Get("WWW-Authenticate"); !strings.Contains(got, "Bearer") {
			t.Fatalf("WWW-Authenticate = %q", got)
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
			t.Fatalf("401 body not errorBody JSON: %v %+v", err, eb)
		}
		resp.Body.Close()
	}

	// A valid token solves; both tenants are accepted.
	for _, token := range []string{"sekret-alice", "sekret-bob"} {
		resp := doReq(t, "POST", ts.URL+"/v1/solve", token, solve)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("token %q: status %d, want 200", token, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Probe endpoints stay open without credentials.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp := doReq(t, "GET", ts.URL+path, "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s without token: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Auth failures and per-tenant acceptance are visible in /metrics.
	text := metricsText(t, ts.URL)
	for _, want := range []string{
		"mdsd_auth_failures_total 3",
		`mdsd_tenant_requests_total{tenant="alice",outcome="accepted"} 1`,
		`mdsd_tenant_requests_total{tenant="bob",outcome="accepted"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestAnonymousTierWhenNoTokens(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	req := SolveRequest{Generator: &GeneratorSpec{Kind: "grid", N: 16}}
	if code := postJSON(t, ts.URL+"/v1/solve", &req, nil); code != http.StatusOK {
		t.Fatalf("anonymous solve: status %d", code)
	}
	text := metricsText(t, ts.URL)
	if !strings.Contains(text, `mdsd_tenant_requests_total{tenant="anonymous",outcome="accepted"} 1`) {
		t.Fatalf("anonymous tenant not tracked:\n%s", text)
	}
}

func TestTokenBucket(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := newTokenBucket(2, 3) // 2 tokens/s, burst 3
	b.now = func() time.Time { return clock }
	b.last = clock
	b.tokens = 3
	for i := 0; i < 3; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("burst take %d refused", i)
		}
	}
	ok, retry := b.take()
	if ok {
		t.Fatal("take succeeded on an empty bucket")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry hint %v, want (0, 1s] at 2 tokens/s", retry)
	}
	clock = clock.Add(500 * time.Millisecond) // refills exactly one token
	if ok, _ := b.take(); !ok {
		t.Fatal("take refused after refill")
	}
	if ok, _ := b.take(); ok {
		t.Fatal("second take succeeded without refill")
	}
	// Refill saturates at the burst.
	clock = clock.Add(time.Hour)
	b.take()
	b.mu.Lock()
	if b.tokens > 3 {
		t.Fatalf("tokens %v exceed burst", b.tokens)
	}
	b.mu.Unlock()
}

func TestRateLimit429(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, RatePerSec: 1, RateBurst: 2})
	req := SolveRequest{Generator: &GeneratorSpec{Kind: "grid", N: 16}}
	codes := make([]int, 0, 5)
	for i := 0; i < 5; i++ {
		var eb errorBody
		codes = append(codes, postJSON(t, ts.URL+"/v1/solve", &req, &eb))
	}
	// Burst 2 at 1 token/s: the first two pass, the rest are rate-limited
	// (the loop finishes in far less than the 1s refill).
	if codes[0] != http.StatusOK || codes[1] != http.StatusOK {
		t.Fatalf("burst requests: %v", codes)
	}
	limited := 0
	for _, c := range codes[2:] {
		if c == http.StatusTooManyRequests {
			limited++
		}
	}
	if limited == 0 {
		t.Fatalf("no 429 past the burst: %v", codes)
	}
	// The 429 carries a Retry-After hint >= 1s.
	resp := doReq(t, "POST", ts.URL+"/v1/solve", "", `{"generator":{"kind":"grid","n":16}}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	if !strings.Contains(metricsText(t, ts.URL), `outcome="rate_limited"`) {
		t.Fatal("rate_limited outcome missing from metrics")
	}
}

func TestTenantJobQuota429(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 2, QueueDepth: 8, MaxJobsPerTenant: 1})
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	s.solve = func(ps *parsedSolve, hooks core.TraceHooks) (*core.Alg1Result, error) {
		started <- struct{}{}
		<-block
		return &core.Alg1Result{}, nil
	}
	mk := func(n int) SolveRequest {
		return SolveRequest{Generator: &GeneratorSpec{Kind: "grid", N: n}}
	}
	// Occupy the single quota slot with an async batch job.
	var out struct {
		Jobs []BatchEntry `json:"jobs"`
	}
	if code := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Requests: []SolveRequest{mk(25)}}, &out); code != http.StatusAccepted {
		t.Fatalf("batch status %d", code)
	}
	if out.Jobs[0].Status == StatusFailed {
		t.Fatalf("quota slot submission failed: %+v", out.Jobs[0])
	}
	<-started

	// A second distinct solve for the same (anonymous) tenant is quota-
	// rejected: deterministic 429 + Retry-After, not a 503.
	resp := doReq(t, "POST", ts.URL+"/v1/solve", "", `{"generator":{"kind":"grid","n":36}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || !strings.Contains(eb.Error, "quota") {
		t.Fatalf("quota body: %v %+v", err, eb)
	}
	resp.Body.Close()

	// Quota-rejected jobs are failed, not stuck, and show up in metrics.
	if !strings.Contains(metricsText(t, ts.URL), `outcome="quota_rejected"`) {
		t.Fatal("quota_rejected outcome missing from metrics")
	}

	// Releasing the running job frees the slot.
	close(block)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := postJSON(t, ts.URL+"/v1/solve", mk(49), nil); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("quota never released after the job finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRequestIDTagging(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	resp := doReq(t, "GET", ts.URL+"/healthz", "", "")
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); !strings.HasPrefix(id, "req-") {
		t.Fatalf("generated X-Request-Id = %q", id)
	}
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "client-chosen-7")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if id := resp2.Header.Get("X-Request-Id"); id != "client-chosen-7" {
		t.Fatalf("client X-Request-Id not honored: %q", id)
	}
}

func TestAccessLog(t *testing.T) {
	var buf syncLogBuffer
	_, ts := startServer(t, Config{
		Workers:   1,
		Tokens:    map[string]string{"alice": "sekret-alice"},
		AccessLog: &buf,
	})
	resp := doReq(t, "POST", ts.URL+"/v1/solve", "sekret-alice", `{"generator":{"kind":"grid","n":16}}`)
	resp.Body.Close()
	var rec struct {
		Msg    string  `json:"msg"`
		ID     string  `json:"id"`
		Method string  `json:"method"`
		Path   string  `json:"path"`
		Status int     `json:"status"`
		Tenant string  `json:"tenant"`
		DurMS  float64 `json:"dur_ms"`
	}
	line := strings.TrimSpace(buf.String())
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("access log line %q: %v", line, err)
	}
	if rec.Msg != "request" || rec.Method != "POST" || rec.Path != "/v1/solve" ||
		rec.Status != http.StatusOK || rec.Tenant != "alice" || !strings.HasPrefix(rec.ID, "req-") {
		t.Fatalf("access log record %+v", rec)
	}
}

// syncLogBuffer is a goroutine-safe bytes.Buffer for access-log capture.
type syncLogBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncLogBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncLogBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestNotFoundIsJSON(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	resp := doReq(t, "GET", ts.URL+"/no/such/route", "", "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("404 Content-Type = %q", ct)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || !strings.Contains(eb.Error, "/no/such/route") {
		t.Fatalf("404 body: %v %+v", err, eb)
	}
}

func TestAdminHandlerServesPprof(t *testing.T) {
	s := New(Config{Workers: 1})
	t.Cleanup(s.Close)
	mux := s.AdminHandler()
	for _, path := range []string{"/debug/pprof/", "/healthz", "/metrics"} {
		req, _ := http.NewRequest("GET", path, nil)
		rec := newRecorder()
		mux.ServeHTTP(rec, req)
		if rec.status != http.StatusOK {
			t.Fatalf("admin %s: status %d", path, rec.status)
		}
	}
	// The public handler does NOT expose pprof.
	_, ts := startServer(t, Config{Workers: 1})
	resp := doReq(t, "GET", ts.URL+"/debug/pprof/", "", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("public pprof: status %d, want 404", resp.StatusCode)
	}
}

// newRecorder is a minimal ResponseWriter for direct mux calls.
type recorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newRecorder() *recorder            { return &recorder{header: http.Header{}, status: http.StatusOK} }
func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) WriteHeader(s int)   { r.status = s }
func (r *recorder) Write(p []byte) (int, error) {
	return r.body.Write(p)
}

// TestDrainWhileBusy is the degradation contract: after BeginDrain, new
// work is shed with 503 + Retry-After while in-flight batch jobs finish
// and stay pollable, and Drain unblocks once they are all terminal.
func TestDrainWhileBusy(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 2, QueueDepth: 8})
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	s.solve = func(ps *parsedSolve, hooks core.TraceHooks) (*core.Alg1Result, error) {
		started <- struct{}{}
		<-block
		return &core.Alg1Result{}, nil
	}
	mk := func(n int) SolveRequest {
		return SolveRequest{Generator: &GeneratorSpec{Kind: "grid", N: n}}
	}
	var out struct {
		Jobs []BatchEntry `json:"jobs"`
	}
	batch := BatchRequest{Requests: []SolveRequest{mk(25), mk(36)}}
	if code := postJSON(t, ts.URL+"/v1/batch", &batch, &out); code != http.StatusAccepted {
		t.Fatalf("batch status %d", code)
	}
	<-started
	<-started

	s.BeginDrain()

	// New work is deterministically shed with 503 + Retry-After and a
	// drain-specific message, while the daemon stays reachable.
	resp := doReq(t, "POST", ts.URL+"/v1/solve", "", `{"generator":{"kind":"grid","n":49}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve during drain: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 without Retry-After")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || !strings.Contains(eb.Error, "draining") {
		t.Fatalf("drain body: %v %+v", err, eb)
	}
	resp.Body.Close()

	// In-flight jobs remain pollable mid-drain.
	for _, entry := range out.Jobs {
		var v JobView
		if code := getJSON(t, ts.URL+"/v1/jobs/"+entry.JobID, &v); code != http.StatusOK {
			t.Fatalf("mid-drain poll: status %d", code)
		}
		if v.Status != StatusRunning {
			t.Fatalf("mid-drain job %s status %s", entry.JobID, v.Status)
		}
	}
	var hz map[string]any
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz["status"] != "draining" {
		t.Fatalf("healthz during drain: %+v", hz)
	}

	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()
	select {
	case <-drained:
		t.Fatal("Drain returned while jobs were still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(block)
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned after jobs finished")
	}
	// Every accepted job completed; results still served post-drain.
	for _, entry := range out.Jobs {
		var v JobView
		if code := getJSON(t, ts.URL+"/v1/jobs/"+entry.JobID, &v); code != http.StatusOK || v.Status != StatusDone {
			t.Fatalf("post-drain job %s: %d %s", entry.JobID, code, v.Status)
		}
	}
}
