package service

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the operational-hardening layer between the listener and
// the solve handlers, modeled on podman's pkg/api middleware stack: an
// outermost observability wrapper (request-ID tagging + structured access
// logging), then a client gate on the /v1/ API surface (bearer-token
// auth, per-tenant token-bucket rate limiting), with per-tenant job
// quotas enforced at submission time. /healthz and /metrics stay open so
// probes and scrapers never need credentials; the pprof surface lives on
// a separate admin mux (AdminHandler) that is only reachable when the
// operator binds it to its own listener.

// AnonymousTenant is the tenant every request maps to when no token file
// is configured: limits still apply, identity is just not distinguished.
const AnonymousTenant = "anonymous"

// LoadTokens parses a bearer-token file: one "tenant:token" pair per
// line, '#' comments and blank lines ignored. Tenant names and tokens
// must be non-empty; duplicate tenants or tokens (which would make the
// mapping ambiguous) are rejected.
func LoadTokens(path string) (map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	tokens := make(map[string]string)
	seen := make(map[string]string) // token -> tenant, for duplicate detection
	for i, line := range strings.Split(string(data), "\n") {
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		tenant, token, ok := strings.Cut(line, ":")
		tenant, token = strings.TrimSpace(tenant), strings.TrimSpace(token)
		if !ok || tenant == "" || token == "" {
			return nil, fmt.Errorf("%s:%d: want \"tenant:token\", got %q", path, i+1, line)
		}
		if _, dup := tokens[tenant]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate tenant %q", path, i+1, tenant)
		}
		if prev, dup := seen[token]; dup {
			return nil, fmt.Errorf("%s:%d: token for %q duplicates tenant %q", path, i+1, tenant, prev)
		}
		tokens[tenant] = token
		seen[token] = tenant
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("%s: no tokens (want one \"tenant:token\" per line)", path)
	}
	return tokens, nil
}

// tokenEntry is one tenant's credential, stored hashed so the comparison
// below is constant-time in both content and length.
type tokenEntry struct {
	name string
	sum  [sha256.Size]byte
}

// authenticate resolves the Authorization header to a tenant name. With
// no tokens configured every request is the anonymous tier. The scan
// visits every entry without early exit and compares SHA-256 digests via
// crypto/subtle, so timing reveals neither which tenant matched nor how
// much of a token prefix was right.
func (s *Server) authenticate(header string) (string, bool) {
	if len(s.tokenHashes) == 0 {
		return AnonymousTenant, true
	}
	token, ok := strings.CutPrefix(header, "Bearer ")
	if !ok {
		return "", false
	}
	sum := sha256.Sum256([]byte(strings.TrimSpace(token)))
	name, found := "", false
	for i := range s.tokenHashes {
		if subtle.ConstantTimeCompare(s.tokenHashes[i].sum[:], sum[:]) == 1 {
			name, found = s.tokenHashes[i].name, true
		}
	}
	return name, found
}

// tokenBucket is a classic token-bucket rate limiter. now is injectable
// so tests can drive refill deterministically.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if burst < 1 {
		burst = int(math.Max(1, math.Ceil(rate)))
	}
	b := &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), now: time.Now}
	b.last = b.now()
	return b
}

// take consumes one token if available; otherwise it reports how long
// until the next token accrues (the Retry-After hint).
func (b *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// tenantState is one tenant's live accounting: its rate limiter, its
// in-flight job gauge against the quota, and its outcome counters for
// /metrics.
type tenantState struct {
	name    string
	bucket  *tokenBucket // nil = unlimited
	jobs    atomic.Int64 // queued + running jobs owned by this tenant
	maxJobs int64        // <= 0 = unlimited

	accepted      atomic.Int64 // requests past auth + rate limiting
	rateLimited   atomic.Int64 // 429s from the token bucket
	quotaRejected atomic.Int64 // 429s from the job quota
	shed          atomic.Int64 // 503s (queue full or draining)
}

// tryAcquireJob reserves one job slot against the quota; releaseJob
// returns it when the job reaches a terminal state.
func (t *tenantState) tryAcquireJob() bool {
	for {
		cur := t.jobs.Load()
		if t.maxJobs > 0 && cur >= t.maxJobs {
			return false
		}
		if t.jobs.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (t *tenantState) releaseJob() { t.jobs.Add(-1) }

// tenant returns (creating on first use) the named tenant's state.
func (s *Server) tenant(name string) *tenantState {
	s.tenantsMu.Lock()
	defer s.tenantsMu.Unlock()
	tn := s.tenants[name]
	if tn == nil {
		tn = &tenantState{name: name, maxJobs: int64(s.cfg.MaxJobsPerTenant)}
		if s.cfg.RatePerSec > 0 {
			tn.bucket = newTokenBucket(s.cfg.RatePerSec, s.cfg.RateBurst)
		}
		s.tenants[name] = tn
	}
	return tn
}

// tenantSnapshot lists tenants in sorted-name order for /metrics.
func (s *Server) tenantSnapshot() []*tenantState {
	s.tenantsMu.Lock()
	defer s.tenantsMu.Unlock()
	out := make([]*tenantState, 0, len(s.tenants))
	for _, tn := range s.tenants {
		out = append(out, tn)
	}
	return out
}

// ctxKey keys the request-scoped values the middleware attaches.
type ctxKey int

const (
	ctxKeyTenant ctxKey = iota
	ctxKeyInfo
)

// requestInfo is filled in by inner middleware and read back by the
// outermost logging wrapper once the handler returns.
type requestInfo struct {
	id     string
	tenant string
}

func tenantFrom(ctx context.Context) *tenantState {
	tn, _ := ctx.Value(ctxKeyTenant).(*tenantState)
	return tn
}

// statusRecorder captures the response status and size for access logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so SSE streams (/v1/events)
// keep flushing through the middleware stack.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// observe is the outermost middleware: it tags every request with an ID
// (honoring a client-supplied X-Request-Id), mirrors it on the response,
// and emits one structured log line per request when access logging is
// configured.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = fmt.Sprintf("req-%08x", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		info := &requestInfo{id: id, tenant: "-"}
		r = r.WithContext(context.WithValue(r.Context(), ctxKeyInfo, info))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		s.observeRequest(r.URL.Path, rec.status, time.Since(start))
		if s.logger != nil {
			s.logger.Info("request",
				"id", id,
				"method", r.Method,
				"path", r.URL.Path,
				"status", rec.status,
				"bytes", rec.bytes,
				"dur_ms", float64(time.Since(start).Microseconds())/1e3,
				"tenant", info.tenant,
				"remote", r.RemoteAddr,
			)
		}
	})
}

// guard protects the /v1/ API surface: bearer-token auth resolves the
// tenant, then the tenant's token bucket admits or 429s the request.
// Probe endpoints (/healthz, /metrics) pass through untouched.
func (s *Server) guard(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		name, ok := s.authenticate(r.Header.Get("Authorization"))
		if !ok {
			s.authFailures.Add(1)
			w.Header().Set("WWW-Authenticate", `Bearer realm="mdsd"`)
			writeJSON(w, http.StatusUnauthorized, errorBody{Error: "missing or invalid bearer token"})
			return
		}
		if info, _ := r.Context().Value(ctxKeyInfo).(*requestInfo); info != nil {
			info.tenant = name
		}
		tn := s.tenant(name)
		if tn.bucket != nil {
			if ok, retry := tn.bucket.take(); !ok {
				tn.rateLimited.Add(1)
				w.Header().Set("Retry-After", retryAfterSeconds(retry))
				writeJSON(w, http.StatusTooManyRequests,
					errorBody{Error: fmt.Sprintf("rate limit exceeded for tenant %q", name)})
				return
			}
		}
		tn.accepted.Add(1)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxKeyTenant, tn)))
	})
}

// retryAfterSeconds renders a Retry-After header value, never below 1s.
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// handleNotFound keeps unknown routes on the uniform errorBody JSON shape
// instead of net/http's plain-text default.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusNotFound, errorBody{Error: "no such endpoint " + r.URL.Path})
}

// AdminHandler is the operator surface: net/http/pprof plus the probe
// endpoints, meant for a separate loopback/admin listener (cmd/mdsd
// -admin-addr) so profiling is opt-in and never exposed alongside the
// public API.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
