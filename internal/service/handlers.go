package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"localmds/internal/runner"
)

// maxBodyBytes bounds request bodies (graph payloads included).
const maxBodyBytes = 64 << 20

// maxBatchSize bounds one /v1/batch submission; it must stay well below
// the jobStore retention floor so freshly returned job IDs cannot have
// been evicted already.
const maxBatchSize = 256

// handleSolve is POST /v1/solve: parse, enqueue (or hit the cache /
// join an identical in-flight job), wait, respond with the full result.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decode request: " + err.Error()})
		return
	}
	ps, err := parseSolve(&req)
	if err != nil {
		status := http.StatusInternalServerError
		var bad *badRequestError
		if errors.As(err, &bad) {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}
	j, rej := s.submit(ps, tenantFrom(r.Context()))
	switch rej {
	case rejectShed:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: j.view().Error})
		return
	case rejectQuota:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: j.view().Error})
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
		// Client gave up; the job keeps running and remains pollable.
		writeJSON(w, http.StatusRequestTimeout, j.view())
		return
	}
	v := j.view()
	switch {
	case v.Status == StatusDone:
		writeJSON(w, http.StatusOK, v)
	case errors.Is(jobErr(j), runner.ErrTimeout):
		writeJSON(w, http.StatusGatewayTimeout, v)
	case errors.Is(jobErr(j), errTenantQuota):
		// A deduplicated follower joined a job whose leader was then
		// quota-rejected: same deterministic 429 as the leader.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, v)
	case errors.Is(jobErr(j), errQueueFull), errors.Is(jobErr(j), errDraining):
		// Deduplicated followers of a shed leader land here: load
		// shedding is 503 for every waiter, not a server fault.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, v)
	default:
		writeJSON(w, http.StatusInternalServerError, v)
	}
}

// jobErr reads the job's terminal error.
func jobErr(j *Job) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Requests []SolveRequest `json:"requests"`
}

// BatchEntry reports one enqueued batch element.
type BatchEntry struct {
	JobID  string `json:"job_id,omitempty"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// handleBatch is POST /v1/batch: enqueue every element, return job IDs
// immediately; clients poll GET /v1/jobs/{id}. Malformed elements and
// queue-full rejections fail individually without failing the batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decode request: " + err.Error()})
		return
	}
	if len(req.Requests) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty batch"})
		return
	}
	if len(req.Requests) > maxBatchSize {
		// The cap (far below the job-retention floor) guarantees every
		// job ID in the response is still resolvable via /v1/jobs/{id}
		// once the client reads it.
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorBody{Error: fmt.Sprintf("batch of %d exceeds the maximum of %d requests", len(req.Requests), maxBatchSize)})
		return
	}
	entries := make([]BatchEntry, len(req.Requests))
	tn := tenantFrom(r.Context())
	for i := range req.Requests {
		ps, err := parseSolve(&req.Requests[i])
		if err != nil {
			entries[i] = BatchEntry{Status: StatusFailed, Error: err.Error()}
			continue
		}
		// Shed/quota-rejected jobs come back already failed; the entry
		// carries the rejection so the batch itself still succeeds.
		j, _ := s.submit(ps, tn)
		v := j.view()
		entries[i] = BatchEntry{JobID: j.ID, Status: v.Status, Error: v.Error}
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"jobs": entries})
}

// handleJob is GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleJobTrace is GET /v1/jobs/{id}/trace: the job's span tree. The
// default JSON form nests children under the root "job" span;
// ?format=chrome renders Chrome trace-event JSON for chrome://tracing and
// Perfetto. Jobs that never computed (cache hits, shed submissions) have
// no trace and answer 404.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + id})
		return
	}
	tr, _ := j.Trace()
	if tr == nil {
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: "job " + id + " has no trace (served from cache or rejected before running)"})
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, tr.View())
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteChromeTrace(w)
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "format: want json or chrome, got " + format})
	}
}

// handleHealthz is GET /healthz. It stays unauthenticated and unlimited
// so load-balancer probes keep working whatever the tenant config, and
// reports "draining" once shutdown has begun.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_, entries := s.cache.stats()
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        status,
		"uptime_s":      time.Since(s.started).Seconds(),
		"queue_depth":   s.pool.Pending(),
		"workers":       s.pool.Workers(),
		"cache_entries": entries,
		"cache_hits":    s.cacheHits.Load(),
		"cache_misses":  s.cacheMisses.Load(),
		"store":         s.storeStatus(),
	})
}

// handleMetrics is GET /metrics (Prometheus text exposition).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.renderMetrics()))
}
