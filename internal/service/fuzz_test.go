package service

import (
	"encoding/json"
	"testing"
)

// FuzzParseSolve throws raw request JSON — the exact bytes POST /v1/solve
// and each /v1/batch element decode — at the request parser. The
// contract mirrors the graphio fuzzers: never panic, never accept an
// instance above the vertex cap, always hand back a validated frozen
// graph with a deterministic content-addressed key, and classify every
// client mistake as a badRequestError (the 400 path) rather than a
// server fault.
func FuzzParseSolve(f *testing.F) {
	f.Add([]byte(`{"graph": {"n": 3, "edges": [[0,1],[1,2]]}}`))
	f.Add([]byte(`{"data": "0 1\n1 2\n"}`))
	f.Add([]byte(`{"data": "p edge 3 2\ne 1 2\ne 2 3\n", "format": "dimacs"}`))
	f.Add([]byte(`{"data": "{\"n\":2,\"edges\":[[0,1]]}", "format": "json"}`))
	f.Add([]byte(`{"generator": {"kind": "grid", "n": 25, "seed": 1}}`))
	f.Add([]byte(`{"generator": {"kind": "ding", "n": 40, "t": 5, "seed": 2}}`))
	f.Add([]byte(`{"generator": {"kind": "gnp", "n": 30, "p": 0.1, "seed": 3}}`))
	f.Add([]byte(`{"generator": {"kind": "warp", "n": 10}}`))
	f.Add([]byte(`{"graph": {"n": 3}, "data": "0 1\n"}`)) // two sources
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"params": {"r1": 0, "r2": 1}, "data": "0 1\n"}`))
	f.Add([]byte(`{"data": "2000000001\n0 1\n"}`)) // over the vertex cap
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, body []byte) {
		var req SolveRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return // the handler 400s before parseSolve sees it
		}
		// Keep each exec cheap: huge payloads and generator sizes are
		// legal (the explicit limit tests cover them) but make the
		// fuzzer spend its budget building graphs instead of exploring
		// parser states.
		if len(req.Data) > 1<<16 || len(req.Graph) > 1<<16 {
			return
		}
		if g := req.Generator; g != nil && (g.N > 2048 || g.T > 64 || g.T < -64) {
			return
		}
		ps, err := parseSolve(&req)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("rejection with empty message")
			}
			return
		}
		if ps.g == nil || ps.csr == nil {
			t.Fatalf("accepted solve with nil graph: %+v", ps)
		}
		if ps.g.N() > maxRequestVertices {
			t.Fatalf("accepted %d vertices above the cap", ps.g.N())
		}
		if err := ps.g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		if ps.source == "" {
			t.Fatal("accepted solve without a source tag")
		}
		// The content-addressed key must be deterministic: parsing the
		// same request twice yields the same key (the cache and the
		// in-flight dedup both depend on this).
		ps2, err := parseSolve(&req)
		if err != nil {
			t.Fatalf("second parse of an accepted request failed: %v", err)
		}
		if ps.key != ps2.key {
			t.Fatalf("non-deterministic solve key: %v vs %v", ps.key, ps2.key)
		}
	})
}
