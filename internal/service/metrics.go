package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"localmds/internal/core"
)

// stageTotals accumulates per-stage latency across every computed (non-
// cached) solve, for GET /metrics.
type stageTotals struct {
	mu     sync.Mutex
	order  []string // first-seen stage order (matches pipeline order)
	wall   map[string]time.Duration
	runs   map[string]int64
	solves int64 // pipeline executions (the recompute counter cache tests assert on)
}

func newStageTotals() *stageTotals {
	return &stageTotals{
		wall: map[string]time.Duration{},
		runs: map[string]int64{},
	}
}

// record adds one pipeline run's stage stats.
func (st *stageTotals) record(stats core.StageStats) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.solves++
	for _, s := range stats {
		if _, seen := st.wall[s.Name]; !seen {
			st.order = append(st.order, s.Name)
		}
		st.wall[s.Name] += s.Wall
		st.runs[s.Name]++
	}
}

// Computations returns the number of pipeline executions so far — cache
// hits do not advance it.
func (st *stageTotals) Computations() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.solves
}

// snapshot copies the accumulated totals in stage order.
func (st *stageTotals) snapshot() (order []string, wall map[string]time.Duration, runs map[string]int64, solves int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	order = append([]string(nil), st.order...)
	wall = make(map[string]time.Duration, len(st.wall))
	runs = make(map[string]int64, len(st.runs))
	for k, v := range st.wall {
		wall[k] = v
	}
	for k, v := range st.runs {
		runs[k] = v
	}
	return order, wall, runs, st.solves
}

// renderMetrics emits the Prometheus text exposition of the server's
// counters: queue depth, job tallies, cache effectiveness, and per-stage
// latency totals.
func (s *Server) renderMetrics() string {
	var b strings.Builder

	fmt.Fprintf(&b, "# HELP mdsd_queue_depth Jobs accepted but not yet finished (queued + running).\n")
	fmt.Fprintf(&b, "# TYPE mdsd_queue_depth gauge\n")
	fmt.Fprintf(&b, "mdsd_queue_depth %d\n", s.pool.Pending())

	fmt.Fprintf(&b, "# HELP mdsd_jobs_total Finished jobs by terminal status.\n")
	fmt.Fprintf(&b, "# TYPE mdsd_jobs_total counter\n")
	counts := s.jobs.terminalCounts()
	statuses := make([]string, 0, len(counts))
	for status := range counts {
		statuses = append(statuses, status)
	}
	sort.Strings(statuses)
	for _, status := range statuses {
		fmt.Fprintf(&b, "mdsd_jobs_total{status=%q} %d\n", status, counts[status])
	}

	evictions, entries := s.cache.stats()
	fmt.Fprintf(&b, "# HELP mdsd_cache_hits_total Content-addressed result cache hits.\n")
	fmt.Fprintf(&b, "# TYPE mdsd_cache_hits_total counter\n")
	fmt.Fprintf(&b, "mdsd_cache_hits_total %d\n", s.cacheHits.Load())
	fmt.Fprintf(&b, "# HELP mdsd_cache_misses_total Lookups that missed and started a new job (in-flight joins excluded; the job may still be shed or time out — recomputes are mdsd_computations_total).\n")
	fmt.Fprintf(&b, "# TYPE mdsd_cache_misses_total counter\n")
	fmt.Fprintf(&b, "mdsd_cache_misses_total %d\n", s.cacheMisses.Load())
	fmt.Fprintf(&b, "# HELP mdsd_inflight_dedup_total Requests deduplicated onto an identical in-flight job.\n")
	fmt.Fprintf(&b, "# TYPE mdsd_inflight_dedup_total counter\n")
	fmt.Fprintf(&b, "mdsd_inflight_dedup_total %d\n", s.cacheDedups.Load())
	fmt.Fprintf(&b, "# TYPE mdsd_cache_evictions_total counter\n")
	fmt.Fprintf(&b, "mdsd_cache_evictions_total %d\n", evictions)
	fmt.Fprintf(&b, "# TYPE mdsd_cache_entries gauge\n")
	fmt.Fprintf(&b, "mdsd_cache_entries %d\n", entries)

	if s.store != nil {
		degraded := 0
		if s.storeDegraded.Load() {
			degraded = 1
		}
		st := s.store.Stats()
		fmt.Fprintf(&b, "# HELP mdsd_store_degraded Whether the result store failed and the daemon fell back to memory-only caching.\n")
		fmt.Fprintf(&b, "# TYPE mdsd_store_degraded gauge\n")
		fmt.Fprintf(&b, "mdsd_store_degraded %d\n", degraded)
		fmt.Fprintf(&b, "# HELP mdsd_store_entries Validated entries the disk store is serving.\n")
		fmt.Fprintf(&b, "# TYPE mdsd_store_entries gauge\n")
		fmt.Fprintf(&b, "mdsd_store_entries %d\n", st.Entries)
		fmt.Fprintf(&b, "# TYPE mdsd_store_bytes gauge\n")
		fmt.Fprintf(&b, "mdsd_store_bytes %d\n", st.Bytes)
		fmt.Fprintf(&b, "# HELP mdsd_store_hits_total Disk-store lookups that served a validated entry.\n")
		fmt.Fprintf(&b, "# TYPE mdsd_store_hits_total counter\n")
		fmt.Fprintf(&b, "mdsd_store_hits_total %d\n", st.Hits)
		fmt.Fprintf(&b, "# TYPE mdsd_store_misses_total counter\n")
		fmt.Fprintf(&b, "mdsd_store_misses_total %d\n", st.Misses)
		fmt.Fprintf(&b, "# HELP mdsd_store_quarantined_total Entries moved aside as truncated, corrupt, or alien — at startup scan or Get-time validation — and never served.\n")
		fmt.Fprintf(&b, "# TYPE mdsd_store_quarantined_total counter\n")
		fmt.Fprintf(&b, "mdsd_store_quarantined_total %d\n", st.Quarantined)
		fmt.Fprintf(&b, "# TYPE mdsd_store_evictions_total counter\n")
		fmt.Fprintf(&b, "mdsd_store_evictions_total %d\n", st.Evictions)
	}

	draining := 0
	if s.draining.Load() {
		draining = 1
	}
	fmt.Fprintf(&b, "# HELP mdsd_draining Whether the daemon is draining (shedding new work with 503).\n")
	fmt.Fprintf(&b, "# TYPE mdsd_draining gauge\n")
	fmt.Fprintf(&b, "mdsd_draining %d\n", draining)

	fmt.Fprintf(&b, "# HELP mdsd_auth_failures_total Requests rejected with 401 (missing or unknown bearer token).\n")
	fmt.Fprintf(&b, "# TYPE mdsd_auth_failures_total counter\n")
	fmt.Fprintf(&b, "mdsd_auth_failures_total %d\n", s.authFailures.Load())

	tenants := s.tenantSnapshot()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
	fmt.Fprintf(&b, "# HELP mdsd_tenant_requests_total Per-tenant request outcomes at the middleware and submission gates.\n")
	fmt.Fprintf(&b, "# TYPE mdsd_tenant_requests_total counter\n")
	for _, tn := range tenants {
		for _, oc := range []struct {
			name  string
			value int64
		}{
			{"accepted", tn.accepted.Load()},
			{"rate_limited", tn.rateLimited.Load()},
			{"quota_rejected", tn.quotaRejected.Load()},
			{"shed", tn.shed.Load()},
		} {
			fmt.Fprintf(&b, "mdsd_tenant_requests_total{tenant=%q,outcome=%q} %d\n", tn.name, oc.name, oc.value)
		}
	}
	fmt.Fprintf(&b, "# HELP mdsd_tenant_jobs_inflight Per-tenant queued+running jobs held against the quota.\n")
	fmt.Fprintf(&b, "# TYPE mdsd_tenant_jobs_inflight gauge\n")
	for _, tn := range tenants {
		fmt.Fprintf(&b, "mdsd_tenant_jobs_inflight{tenant=%q} %d\n", tn.name, tn.jobs.Load())
	}

	order, wall, runs, solves := s.stages.snapshot()
	fmt.Fprintf(&b, "# HELP mdsd_computations_total Pipeline executions (cache hits excluded).\n")
	fmt.Fprintf(&b, "# TYPE mdsd_computations_total counter\n")
	fmt.Fprintf(&b, "mdsd_computations_total %d\n", solves)
	fmt.Fprintf(&b, "# HELP mdsd_stage_wall_seconds_total Cumulative wall time per pipeline stage.\n")
	fmt.Fprintf(&b, "# TYPE mdsd_stage_wall_seconds_total counter\n")
	for _, name := range order {
		fmt.Fprintf(&b, "mdsd_stage_wall_seconds_total{stage=%q} %.9f\n", name, wall[name].Seconds())
	}
	fmt.Fprintf(&b, "# TYPE mdsd_stage_runs_total counter\n")
	for _, name := range order {
		fmt.Fprintf(&b, "mdsd_stage_runs_total{stage=%q} %d\n", name, runs[name])
	}

	s.renderObsMetrics(&b)
	return b.String()
}
