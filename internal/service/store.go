package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"localmds/internal/obs"
	"localmds/internal/store"
)

// The disk tier of the result cache. The memory LRU (cache.go) fronts the
// content-addressed store (internal/store): a memory miss falls through to
// disk before any recompute, a completed solve is persisted before its job
// finishes (so under fsync=always an HTTP 200 implies a durable entry),
// and a restart with the same -store-dir warms from whatever the scan
// validated — repeat traffic recomputes nothing and reports cache ages
// measured from the original computation.
//
// The store is strictly an accelerator: any real I/O error (not a miss,
// not corruption — those are handled inside the store) flips the daemon
// into memory-only mode, once, for the rest of its life. Requests never
// fail because the disk did.

// storeKey renders the disk-store key for a solve key.
func storeKey(key solveKey) store.Key {
	return store.Key{Fingerprint: key.fp, Params: key.params}
}

// storeEnabled reports whether the disk tier is configured and healthy.
func (s *Server) storeEnabled() bool {
	return s.store != nil && !s.storeDegraded.Load()
}

// degradeStore flips the daemon into memory-only mode (idempotently) after
// a real store I/O failure, surfacing it on /healthz, /metrics, and the
// event bus — but never to the request that tripped it.
func (s *Server) degradeStore(op string, err error) {
	if s.store == nil || s.storeDegraded.Swap(true) {
		return
	}
	if s.logger != nil {
		s.logger.Error("store degraded; continuing memory-only", "op", op, "error", err.Error())
	}
	s.bus.Publish(obs.Event{
		Type:  obs.EventStoreDegraded,
		Error: fmt.Sprintf("store %s: %v", op, err),
	})
}

// storeStatus is the /healthz rendering of the disk tier's state.
func (s *Server) storeStatus() string {
	switch {
	case s.store == nil:
		return "disabled"
	case s.storeDegraded.Load():
		return "degraded"
	default:
		return "ok"
	}
}

// storeLookup is the second cache tier: on a memory miss it consults the
// disk store, revalidates that the decoded outcome really answers this
// key, warms the memory cache with the persisted computation instant, and
// returns the outcome plus its true age. A miss, a quarantined entry, or a
// degraded store all return ok=false and the solve proceeds to compute.
func (s *Server) storeLookup(ps *parsedSolve) (*SolveOutcome, time.Duration, bool) {
	if !s.storeEnabled() {
		return nil, 0, false
	}
	e, err := s.store.Get(storeKey(ps.key))
	if err != nil {
		if !errors.Is(err, store.ErrNotFound) {
			s.degradeStore("get", err)
		}
		return nil, 0, false
	}
	var out SolveOutcome
	if jerr := json.Unmarshal(e.Payload, &out); jerr != nil || !outcomeMatches(&out, ps) {
		// The bytes were checksum-valid but the payload does not answer
		// this key — a schema drift or a forged entry. Stop offering it.
		s.store.Discard(storeKey(ps.key))
		return nil, 0, false
	}
	computedAt := time.Unix(0, e.ComputedAtNanos)
	s.cache.put(ps.key, &out, computedAt)
	return &out, time.Since(computedAt), true
}

// outcomeMatches cross-checks a decoded payload against the request it is
// about to answer: same fingerprint, same normalized params.
func outcomeMatches(out *SolveOutcome, ps *parsedSolve) bool {
	if out.Result == nil || out.Fingerprint != ps.key.fp.String() {
		return false
	}
	p, err := out.Params.Normalized()
	return err == nil && paramsKeyString(p) == ps.key.params
}

// storePersist writes one completed outcome to the disk tier. It runs on
// the job's worker, before the job finishes, so the durability contract
// holds; failures degrade to memory-only and the job still succeeds.
func (s *Server) storePersist(ps *parsedSolve, out *SolveOutcome, computedAt time.Time) {
	if !s.storeEnabled() {
		return
	}
	payload, err := json.Marshal(out)
	if err != nil {
		// Outcomes are plain data; this cannot happen, but an encode bug
		// must not take down the disk tier silently mid-run.
		s.degradeStore("encode", err)
		return
	}
	if err := s.store.Put(storeKey(ps.key), computedAt.UnixNano(), payload); err != nil {
		s.degradeStore("put", err)
	}
}
