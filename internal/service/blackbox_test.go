// Package service_test is the black-box saturation suite, modeled on
// podman's test/apiv2 harness: it boots a real daemon on a loopback TCP
// socket (no httptest shortcuts, no internal state), drives mixed
// cached/uncached/oversized/unauthorized traffic to queue saturation
// with a closed-loop load generator, and checks the daemon's degradation
// contract — deterministic 401/429/503 rejections, graceful drain with
// pollable jobs — from the outside. With MDSD_BENCH_OUT set it records
// throughput, p50/p95/p99 latency, and rejection counts as the
// BENCH_service.json perf snapshot (scripts/bench_service.sh).
package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"slices"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"localmds/internal/service"
)

// daemon is one black-box instance: a real service behind a real socket.
type daemon struct {
	svc  *service.Server
	base string
	stop func()
}

func startDaemon(t *testing.T, cfg service.Config) *daemon {
	t.Helper()
	svc := service.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = hs.Serve(ln) }()
	var once sync.Once
	d := &daemon{svc: svc, base: "http://" + ln.Addr().String()}
	d.stop = func() {
		once.Do(func() {
			_ = hs.Close()
			svc.Close()
		})
	}
	t.Cleanup(d.stop)
	return d
}

// benchClient shares a transport wide enough that connection churn does
// not masquerade as daemon latency.
var benchClient = &http.Client{
	Transport: &http.Transport{MaxIdleConnsPerHost: 64},
	Timeout:   30 * time.Second,
}

// solveBody builds a generator solve request.
func solveBody(kind string, n int, seed int64) []byte {
	return fmt.Appendf(nil, `{"generator": {"kind": %q, "n": %d, "seed": %d}}`, kind, n, seed)
}

// post issues one solve POST with an optional bearer token and returns
// the status code (0 on transport error).
func post(base, token string, body []byte) int {
	req, err := http.NewRequest("POST", base+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return 0
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := benchClient.Do(req)
	if err != nil {
		return 0
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// obs is one observed request.
type obs struct {
	status int
	dur    time.Duration
}

// hammer runs a closed-loop load generator: `clients` goroutines each
// firing its next request the moment the previous one returns, until the
// deadline. fire receives the client index and a per-client sequence
// number and returns the HTTP status.
func hammer(clients int, duration time.Duration, fire func(client, seq int) int) []obs {
	results := make([][]obs, clients)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := 0; time.Now().Before(deadline); seq++ {
				start := time.Now()
				status := fire(c, seq)
				results[c] = append(results[c], obs{status: status, dur: time.Since(start)})
			}
		}()
	}
	wg.Wait()
	var all []obs
	for _, r := range results {
		all = append(all, r...)
	}
	return all
}

// latencyMS summarizes a latency distribution in milliseconds.
type latencyMS struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// scenarioResult is one BENCH_service.json entry. The durability fields
// are only set by the restart/crash scenarios.
type scenarioResult struct {
	Name          string         `json:"name"`
	Clients       int            `json:"clients"`
	DurationS     float64        `json:"duration_s"`
	Requests      int            `json:"requests"`
	ThroughputRPS float64        `json:"throughput_rps"`
	Latency       latencyMS      `json:"latency_ms"`
	StatusCounts  map[string]int `json:"status_counts"`
	// WarmHitRate is the fraction of post-restart repeats served from the
	// persisted store (1.0 = zero recomputes).
	WarmHitRate float64 `json:"warm_hit_rate,omitempty"`
	// RestartToReadyMS is store scan + daemon boot + first healthy probe.
	RestartToReadyMS float64 `json:"restart_to_ready_ms,omitempty"`
	// Quarantined counts entries the post-crash scan refused to serve.
	Quarantined int64 `json:"quarantined,omitempty"`
	// DaemonSurvived records that the (restarted) daemon answered its
	// final health probe.
	DaemonSurvived bool `json:"daemon_survived,omitempty"`
}

func summarize(name string, clients int, duration time.Duration, all []obs) scenarioResult {
	counts := map[string]int{}
	durs := make([]time.Duration, 0, len(all))
	for _, o := range all {
		counts[fmt.Sprint(o.status)]++
		durs = append(durs, o.dur)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	pct := func(p float64) float64 {
		if len(durs) == 0 {
			return 0
		}
		i := int(p * float64(len(durs)-1))
		return float64(durs[i].Microseconds()) / 1e3
	}
	return scenarioResult{
		Name:          name,
		Clients:       clients,
		DurationS:     duration.Seconds(),
		Requests:      len(all),
		ThroughputRPS: float64(len(all)) / duration.Seconds(),
		Latency:       latencyMS{P50: pct(0.50), P95: pct(0.95), P99: pct(0.99)},
		StatusCounts:  counts,
	}
}

// benchDuration is the per-scenario load window: short by default so
// `go test ./...` stays fast, raised by scripts/bench_service.sh.
func benchDuration() time.Duration {
	if v := os.Getenv("MDSD_BENCH_DURATION"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			return d
		}
	}
	return 500 * time.Millisecond
}

// TestSaturationBlackbox is the apiv2-style end-to-end gate. Every
// scenario boots a fresh daemon with a config tuned to saturate that
// path, so the expected rejection statuses appear deterministically.
func TestSaturationBlackbox(t *testing.T) {
	duration := benchDuration()
	var scenarios []scenarioResult

	// Scenario 1 — hot cache: identical requests, the steady state of a
	// well-shaped workload. Everything after the first compute is a
	// cache hit; throughput here is the service-layer ceiling.
	t.Run("hot_cache", func(t *testing.T) {
		d := startDaemon(t, service.Config{Workers: 2, QueueDepth: 16})
		body := solveBody("ding", 300, 42)
		if code := post(d.base, "", body); code != http.StatusOK {
			t.Fatalf("warm-up solve: status %d", code)
		}
		all := hammer(4, duration, func(_, _ int) int { return post(d.base, "", body) })
		res := summarize("hot_cache", 4, duration, all)
		scenarios = append(scenarios, res)
		if res.Requests == 0 {
			t.Fatal("no requests completed")
		}
		for status := range res.StatusCounts {
			if status != "200" {
				t.Fatalf("hot cache saw status %s: %+v", status, res.StatusCounts)
			}
		}
	})

	// Scenario 2 — queue saturation: eight closed-loop clients of
	// distinct uncached solves against one worker and a two-slot queue.
	// The daemon must shed the overflow with 503 + Retry-After and keep
	// serving the accepted fraction.
	t.Run("queue_saturation", func(t *testing.T) {
		d := startDaemon(t, service.Config{Workers: 1, QueueDepth: 2})
		all := hammer(8, duration, func(c, seq int) int {
			return post(d.base, "", solveBody("ding", 400, int64(c)<<32|int64(seq)))
		})
		res := summarize("queue_saturation", 8, duration, all)
		scenarios = append(scenarios, res)
		if res.StatusCounts["200"] == 0 {
			t.Fatalf("nothing served under saturation: %+v", res.StatusCounts)
		}
		if res.StatusCounts["503"] == 0 {
			t.Fatalf("no load shedding under 8x overload: %+v", res.StatusCounts)
		}
		// Sheds are fast-path rejections: the daemon stayed responsive.
		var hz map[string]any
		if err := getInto(d.base+"/healthz", &hz); err != nil || hz["status"] != "ok" {
			t.Fatalf("daemon unhealthy after saturation: %v %+v", err, hz)
		}
	})

	// Scenario 3 — adversarial mix: authenticated tenants under rate
	// limits and job quotas, plus unauthorized and oversized traffic.
	// Every rejection path must be deterministic: 400 oversized, 401
	// unauthenticated, 429 rate/quota, with 200s still flowing.
	t.Run("adversarial_mix", func(t *testing.T) {
		d := startDaemon(t, service.Config{
			Workers:          2,
			QueueDepth:       8,
			Tokens:           map[string]string{"alice": "bench-alice", "mallory": "bench-mallory"},
			RatePerSec:       200,
			RateBurst:        50,
			MaxJobsPerTenant: 1,
			JobTimeout:       10 * time.Second,
		})
		cached := solveBody("ding", 300, 7)
		oversized := solveBody("grid", 3_000_000, 0)
		all := hammer(8, duration, func(c, seq int) int {
			switch c {
			case 0, 1: // alice, well-behaved cached traffic
				return post(d.base, "bench-alice", cached)
			case 2, 3, 4: // mallory hammers uncached work into her quota
				return post(d.base, "bench-mallory", solveBody("ding", 400, int64(c)<<32|int64(seq)))
			case 5: // no credentials
				return post(d.base, "", cached)
			case 6: // stolen-looking wrong token
				return post(d.base, "wrong-token", cached)
			default: // alice trying an over-cap instance
				return post(d.base, "bench-alice", oversized)
			}
		})
		res := summarize("adversarial_mix", 8, duration, all)
		scenarios = append(scenarios, res)
		for _, want := range []string{"200", "400", "401", "429"} {
			if res.StatusCounts[want] == 0 {
				t.Fatalf("adversarial mix missing status %s: %+v", want, res.StatusCounts)
			}
		}
	})

	// Scenario 4 — drain under load: accepted jobs finish and stay
	// pollable while new work sheds with 503; the daemon answers to the
	// very end. This is the SIGTERM contract observed from outside.
	t.Run("drain_under_load", func(t *testing.T) {
		d := startDaemon(t, service.Config{Workers: 1, QueueDepth: 8})
		var batch struct {
			Jobs []struct {
				JobID  string `json:"job_id"`
				Status string `json:"status"`
			} `json:"jobs"`
		}
		reqs := make([]string, 4)
		for i := range reqs {
			reqs[i] = string(solveBody("ding", 3000, int64(100+i)))
		}
		body := `{"requests": [` + strings.Join(reqs, ",") + `]}`
		resp, err := benchClient.Post(d.base+"/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted || len(batch.Jobs) != 4 {
			t.Fatalf("batch: %d %+v", resp.StatusCode, batch)
		}

		d.svc.BeginDrain()
		if code := post(d.base, "", solveBody("ding", 500, 9)); code != http.StatusServiceUnavailable {
			t.Fatalf("solve during drain: status %d, want 503", code)
		}
		var poll struct {
			Status string `json:"status"`
		}
		if err := getInto(d.base+"/v1/jobs/"+batch.Jobs[0].JobID, &poll); err != nil {
			t.Fatalf("mid-drain poll failed: %v", err)
		}
		d.svc.Drain() // blocks until every accepted job is terminal
		for _, j := range batch.Jobs {
			if err := getInto(d.base+"/v1/jobs/"+j.JobID, &poll); err != nil || poll.Status != "done" {
				t.Fatalf("post-drain job %s: %v %+v", j.JobID, err, poll)
			}
		}
		var hz map[string]any
		if err := getInto(d.base+"/healthz", &hz); err != nil || hz["status"] != "draining" {
			t.Fatalf("post-drain healthz: %v %+v", err, hz)
		}
	})

	// Scenario 5 — restart on a warm store: a clean stop/start cycle on
	// the same -store-dir serves every repeat from disk, recomputing
	// nothing. Records warm-hit rate and restart-to-ready latency.
	t.Run("restart_warm", func(t *testing.T) {
		scenarios = append(scenarios, runRestartWarm(t, duration))
	})

	// Scenario 6 — kill -9 mid-load: a real daemon process dies without
	// drain, the store is wounded (torn temp, corrupt entry), and the
	// restarted daemon must serve only checksum-valid entries with zero
	// recomputes for pre-kill completions.
	t.Run("kill9_recovery", func(t *testing.T) {
		scenarios = append(scenarios, runKill9Recovery(t, duration))
	})

	writeBenchReport(t, scenarios)
}

func getInto(url string, out any) error {
	resp, err := benchClient.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// benchReport is the BENCH_service.json document.
type benchReport struct {
	Generated      string           `json:"generated"`
	DurationS      float64          `json:"scenario_duration_s"`
	Scenarios      []scenarioResult `json:"scenarios"`
	DaemonSurvived bool             `json:"daemon_survived"`
}

// writeBenchReport emits BENCH_service.json when MDSD_BENCH_OUT is set.
// The load scenarios must all have run (the subtests above fail the test
// otherwise), and daemon_survived records that every daemon answered its
// final health probe.
func writeBenchReport(t *testing.T, scenarios []scenarioResult) {
	out := os.Getenv("MDSD_BENCH_OUT")
	if out == "" {
		return
	}
	if len(scenarios) < 3 {
		t.Fatalf("bench report with only %d scenarios", len(scenarios))
	}
	report := benchReport{
		Generated:      time.Now().UTC().Format(time.RFC3339),
		DurationS:      benchDuration().Seconds(),
		Scenarios:      scenarios,
		DaemonSurvived: !t.Failed(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// wireEvent is the subset of the /v1/events JSON payload the black-box
// ordering test cares about.
type wireEvent struct {
	Seq   uint64 `json:"seq"`
	Type  string `json:"type"`
	JobID string `json:"job_id"`
}

// TestEventsStreamUnderLoad checks the /v1/events contract from the
// outside, under concurrent traffic: one SSE subscriber attached before
// the load sees a strictly increasing seq, the full
// submitted→started→done lifecycle for every distinct job, and exactly
// one cached event per hot-cache repeat — no gaps, no reordering, no
// stray terminal states.
func TestEventsStreamUnderLoad(t *testing.T) {
	d := startDaemon(t, service.Config{Workers: 4, QueueDepth: 128, CacheEntries: 64})

	resp, err := benchClient.Get(d.base + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q, want text/event-stream", ct)
	}

	events := make(chan wireEvent, 256)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		var data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "": // frame boundary
				if data == "" {
					continue
				}
				var ev wireEvent
				if err := json.Unmarshal([]byte(data), &ev); err == nil {
					events <- ev
				}
				data = ""
			}
		}
	}()

	// Cold wave: distinct graphs fired concurrently, each a full
	// submitted/started/done lifecycle.
	const distinct = 16
	var wg sync.WaitGroup
	for i := 0; i < distinct; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			if code := post(d.base, "", solveBody("ding", 60, seed)); code != http.StatusOK {
				t.Errorf("cold solve seed %d: status %d", seed, code)
			}
		}(int64(i + 1))
	}
	wg.Wait()
	// Hot wave: the same graphs again, each a pure cache hit.
	for i := 0; i < distinct; i++ {
		if code := post(d.base, "", solveBody("ding", 60, int64(i+1))); code != http.StatusOK {
			t.Errorf("hot solve seed %d: status %d", i+1, code)
		}
	}

	perJob := map[string][]string{}
	var cachedN, doneN int
	var lastSeq uint64
	deadline := time.After(30 * time.Second)
	for cachedN < distinct || doneN < distinct {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("stream closed early: %d done, %d cached", doneN, cachedN)
			}
			if ev.Seq <= lastSeq {
				t.Fatalf("seq went %d -> %d: events reordered or duplicated", lastSeq, ev.Seq)
			}
			lastSeq = ev.Seq
			if ev.Type == "cached" {
				cachedN++
				continue
			}
			perJob[ev.JobID] = append(perJob[ev.JobID], ev.Type)
			if ev.Type == "done" {
				doneN++
			}
		case <-deadline:
			t.Fatalf("timed out: %d/%d done, %d/%d cached, jobs %v",
				doneN, distinct, cachedN, distinct, perJob)
		}
	}

	if len(perJob) != distinct {
		t.Errorf("lifecycle events for %d jobs, want %d", len(perJob), distinct)
	}
	want := []string{"submitted", "started", "done"}
	for id, got := range perJob {
		if !slices.Equal(got, want) {
			t.Errorf("job %s lifecycle = %v, want %v", id, got, want)
		}
	}
}
