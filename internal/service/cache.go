package service

import (
	"container/list"
	"fmt"
	"time"

	"localmds/internal/core"
	"localmds/internal/graph"
	"sync"
)

// solveKey content-addresses one solve: the canonical fingerprint of the
// frozen CSR plus the normalized solver params. Two requests with equal
// keys are interchangeable — whatever client, wire format, or edge order
// they arrived with.
type solveKey struct {
	fp     graph.Fingerprint
	params string
}

// newSolveKey builds the cache key from a frozen graph and normalized
// params.
func newSolveKey(csr *graph.CSR, p core.Params) solveKey {
	return solveKey{fp: csr.Fingerprint(), params: paramsKeyString(p)}
}

// paramsKeyString renders normalized params into the canonical key form
// shared by the memory cache and the disk store.
func paramsKeyString(p core.Params) string {
	return fmt.Sprintf("r1=%d,r2=%d,mbc=%d", p.R1, p.R2, p.MaxBruteComponent)
}

// resultCache is the content-addressed LRU over completed solves.
// Entries are treated as immutable by every reader (handlers only
// serialize them); eviction is strict LRU at the configured capacity.
// Hit/miss accounting lives in Server.submit, not here: only the
// request router can tell a genuine miss (leader, will recompute) from
// a deduplicated join onto an in-flight job.
type resultCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[solveKey]*list.Element
	evictions int64
}

type cacheEntry struct {
	key solveKey
	res *SolveOutcome
	// computedAt is when the outcome was originally computed — not when
	// this process cached it. Entries warmed from the disk store carry the
	// persisted instant, so cache_age_s keeps counting across restarts.
	computedAt time.Time
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[solveKey]*list.Element, capacity),
	}
}

// get returns the cached outcome for key and its age (time since the
// outcome was computed, possibly in an earlier process), refreshing its
// recency.
func (c *resultCache) get(key solveKey) (*SolveOutcome, time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, 0, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.res, time.Since(e.computedAt), true
}

// put stores the outcome for key with its computation instant, evicting
// the least recently used entry beyond capacity. Storing an existing key
// refreshes it.
func (c *resultCache) put(key solveKey, res *SolveOutcome, computedAt time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		e.res, e.computedAt = res, computedAt
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, computedAt: computedAt})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats returns the eviction counter and the current entry count.
func (c *resultCache) stats() (evictions int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions, c.ll.Len()
}
