package service

import (
	"container/list"
	"fmt"
	"time"

	"localmds/internal/core"
	"localmds/internal/graph"
	"sync"
)

// solveKey content-addresses one solve: the canonical fingerprint of the
// frozen CSR plus the normalized solver params. Two requests with equal
// keys are interchangeable — whatever client, wire format, or edge order
// they arrived with.
type solveKey struct {
	fp     graph.Fingerprint
	params string
}

// newSolveKey builds the cache key from a frozen graph and normalized
// params.
func newSolveKey(csr *graph.CSR, p core.Params) solveKey {
	return solveKey{
		fp:     csr.Fingerprint(),
		params: fmt.Sprintf("r1=%d,r2=%d,mbc=%d", p.R1, p.R2, p.MaxBruteComponent),
	}
}

// resultCache is the content-addressed LRU over completed solves.
// Entries are treated as immutable by every reader (handlers only
// serialize them); eviction is strict LRU at the configured capacity.
// Hit/miss accounting lives in Server.submit, not here: only the
// request router can tell a genuine miss (leader, will recompute) from
// a deduplicated join onto an in-flight job.
type resultCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[solveKey]*list.Element
	evictions int64
}

type cacheEntry struct {
	key      solveKey
	res      *SolveOutcome
	storedAt time.Time // when the outcome was computed, for cache-age reporting
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[solveKey]*list.Element, capacity),
	}
}

// get returns the cached outcome for key and its age (time since the
// outcome was stored), refreshing its recency.
func (c *resultCache) get(key solveKey) (*SolveOutcome, time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, 0, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.res, time.Since(e.storedAt), true
}

// put stores the outcome for key, evicting the least recently used entry
// beyond capacity. Storing an existing key refreshes it.
func (c *resultCache) put(key solveKey, res *SolveOutcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		e.res, e.storedAt = res, time.Now()
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, storedAt: time.Now()})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats returns the eviction counter and the current entry count.
func (c *resultCache) stats() (evictions int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions, c.ll.Len()
}
