package service

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"localmds/internal/core"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/graphio"
)

// startServer spins a service over httptest and tears both down with the
// test.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postJSON posts v and decodes the response body into out (if non-nil),
// returning the HTTP status.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode response %s: %v", data, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode response %s: %v", data, err)
		}
	}
	return resp.StatusCode
}

// stripTimings zeroes the measured (non-deterministic) stage fields so
// results compare modulo timings.
func stripTimings(res *core.Alg1Result) *core.Alg1Result {
	cp := *res
	cp.StageStats = append(core.StageStats(nil), res.StageStats...)
	for i := range cp.StageStats {
		cp.StageStats[i].Wall = 0
		cp.StageStats[i].Allocs = 0
	}
	return &cp
}

// TestSolveMatchesLibraryUnderConcurrency is the acceptance gate: for
// fixed seeds, the daemon's solve responses under 12 concurrent in-flight
// requests (mixed wire formats) are byte-equivalent — set, bounds, stage
// stats modulo timings — to running core.Alg1 directly, which is exactly
// what cmd/mdsrun prints. A second identical wave is served from cache
// without re-running the pipeline.
func TestSolveMatchesLibraryUnderConcurrency(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 4})

	// Three distinct instances, each submitted four ways/times.
	specs := []GeneratorSpec{
		{Kind: "ding", N: 60, T: 5, Seed: 7},
		{Kind: "grid", N: 49, Seed: 1},
		{Kind: "cactus", N: 40, Seed: 3},
	}
	want := make([]*core.Alg1Result, len(specs))
	graphs := make([]*graph.Graph, len(specs))
	for i, spec := range specs {
		g, err := gen.FromKind(spec.Kind, spec.N, spec.T, spec.P, rand.New(rand.NewSource(spec.Seed)))
		if err != nil {
			t.Fatal(err)
		}
		graphs[i] = g
		res, err := core.Alg1(g, core.PracticalParams())
		if err != nil {
			t.Fatal(err)
		}
		want[i] = stripTimings(res)
	}

	// Encode each instance in every wire format.
	requests := make([]SolveRequest, 0, 12)
	expect := make([]int, 0, 12)
	for i, g := range graphs {
		gj, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		var el, dim bytes.Buffer
		if err := graphio.WriteEdgeList(&el, g); err != nil {
			t.Fatal(err)
		}
		if err := graphio.WriteDIMACS(&dim, g); err != nil {
			t.Fatal(err)
		}
		requests = append(requests,
			SolveRequest{Graph: gj},
			SolveRequest{Data: el.String()}, // format auto-detected
			SolveRequest{Data: dim.String(), Format: "dimacs"},
			SolveRequest{Generator: &specs[i]},
		)
		expect = append(expect, i, i, i, i)
	}

	run := func() []JobView {
		views := make([]JobView, len(requests))
		var wg sync.WaitGroup
		for k := range requests {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if code := postJSON(t, ts.URL+"/v1/solve", &requests[k], &views[k]); code != http.StatusOK {
					t.Errorf("request %d: status %d", k, code)
				}
			}()
		}
		wg.Wait()
		return views
	}

	views := run()
	for k, v := range views {
		if v.Status != StatusDone || v.SolveOutcome == nil {
			t.Fatalf("request %d: %+v", k, v)
		}
		if !v.Valid {
			t.Fatalf("request %d: solution reported invalid", k)
		}
		got, wanted := stripTimings(v.Result), want[expect[k]]
		if !reflect.DeepEqual(got, wanted) {
			t.Fatalf("request %d: result differs from direct core.Alg1:\n got %+v\nwant %+v", k, got, wanted)
		}
		if v.N != graphs[expect[k]].N() || v.M != graphs[expect[k]].M() {
			t.Fatalf("request %d: graph echo n=%d m=%d", k, v.N, v.M)
		}
	}
	// 12 requests, 3 distinct (graph, params) keys: at most 3 pipeline
	// runs (deduplication may fold concurrent identical ones further).
	if c := s.Computations(); c < 1 || c > 3 {
		t.Fatalf("computations after wave 1 = %d, want 1..3", c)
	}
	after := s.Computations()

	// Wave 2: identical requests — all served from cache, zero recompute.
	views = run()
	for k, v := range views {
		if v.Status != StatusDone || !v.Cached {
			t.Fatalf("wave 2 request %d not served from cache: %+v", k, v)
		}
		if !reflect.DeepEqual(stripTimings(v.Result), want[expect[k]]) {
			t.Fatalf("wave 2 request %d: cached result differs", k)
		}
	}
	if c := s.Computations(); c != after {
		t.Fatalf("cache hits recomputed: computations %d -> %d", after, c)
	}

	// The fingerprint is format-independent: all four encodings of one
	// instance share it.
	for i := 0; i < len(views); i += 4 {
		fp := views[i].Fingerprint
		for k := i; k < i+4; k++ {
			if views[k].Fingerprint != fp {
				t.Fatalf("fingerprint differs across formats: %s vs %s", views[k].Fingerprint, fp)
			}
		}
	}
}

func TestBatchAndJobEndpoints(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2})
	batch := BatchRequest{Requests: []SolveRequest{
		{Generator: &GeneratorSpec{Kind: "grid", N: 36, Seed: 1}},
		{Generator: &GeneratorSpec{Kind: "tree", N: 30, Seed: 2}},
		{Data: "0 -1\n"}, // malformed: fails at parse, not in the queue
	}}
	var out struct {
		Jobs []BatchEntry `json:"jobs"`
	}
	if code := postJSON(t, ts.URL+"/v1/batch", &batch, &out); code != http.StatusAccepted {
		t.Fatalf("batch status %d", code)
	}
	if len(out.Jobs) != 3 {
		t.Fatalf("batch entries = %d", len(out.Jobs))
	}
	// An oversized batch is rejected outright so no advertised job ID can
	// outlive the retention window before the client reads it.
	big := BatchRequest{Requests: make([]SolveRequest, maxBatchSize+1)}
	for i := range big.Requests {
		big.Requests[i] = SolveRequest{Generator: &GeneratorSpec{Kind: "grid", N: 9}}
	}
	var eb errorBody
	if code := postJSON(t, ts.URL+"/v1/batch", &big, &eb); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d (%+v)", code, eb)
	}
	if out.Jobs[2].Status != StatusFailed || !strings.Contains(out.Jobs[2].Error, "line 1") {
		t.Fatalf("malformed entry: %+v", out.Jobs[2])
	}
	for _, entry := range out.Jobs[:2] {
		if entry.JobID == "" {
			t.Fatalf("missing job id: %+v", entry)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			var v JobView
			if code := getJSON(t, ts.URL+"/v1/jobs/"+entry.JobID, &v); code != http.StatusOK {
				t.Fatalf("job poll status %d", code)
			}
			if v.Status == StatusDone {
				if v.Result == nil || len(v.Result.StageStats) == 0 {
					t.Fatalf("done job missing stage table: %+v", v)
				}
				break
			}
			if v.Status == StatusFailed {
				t.Fatalf("job failed: %+v", v)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", entry.JobID, v.Status)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/job-999999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", code)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		req  SolveRequest
		want string
	}{
		{"no source", SolveRequest{}, "exactly one"},
		{"two sources", SolveRequest{Data: "0 1\n", Generator: &GeneratorSpec{Kind: "grid", N: 9}}, "exactly one"},
		{"bad edge list", SolveRequest{Data: "0 1\nx y\n"}, "line 2"},
		{"bad dimacs", SolveRequest{Data: "p edge 3 1\ne 1 9\n", Format: "dimacs"}, "out of range"},
		{"bad format", SolveRequest{Data: "0 1\n", Format: "xml"}, "unknown format"},
		{"bad generator", SolveRequest{Generator: &GeneratorSpec{Kind: "warp", N: 10}}, "warp"},
		{"bad params", SolveRequest{Generator: &GeneratorSpec{Kind: "grid", N: 9}, Params: &core.Params{R1: 0, R2: 1}}, "invalid radii"},
		{"oversized generator", SolveRequest{Generator: &GeneratorSpec{Kind: "grid", N: 2_000_001}}, "limit"},
		{"oversized graph", SolveRequest{Graph: json.RawMessage(`{"n":2000000001,"edges":[]}`)}, "limit"},
		{"oversized edgelist", SolveRequest{Data: "2000000001\n0 1\n"}, "limit"},
		{"oversized dimacs", SolveRequest{Data: "p edge 2000000001 0\n", Format: "dimacs"}, "limit"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var eb errorBody
			code := postJSON(t, ts.URL+"/v1/solve", &c.req, &eb)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%+v)", code, eb)
			}
			if !strings.Contains(eb.Error, c.want) {
				t.Fatalf("error %q does not mention %q", eb.Error, c.want)
			}
		})
	}
	// A syntactically broken body is a 400 too.
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken body: status %d", resp.StatusCode)
	}
}

// TestQueueFullSheds stubs the solver to block so the 1-worker/1-slot
// queue saturates deterministically, then expects 503 load shedding.
func TestQueueFullSheds(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	s.solve = func(ps *parsedSolve, hooks core.TraceHooks) (*core.Alg1Result, error) {
		started <- struct{}{}
		<-block
		return &core.Alg1Result{}, nil
	}

	// Distinct sizes: the grid generator is deterministic, so equal sizes
	// would content-address to one key and dedup onto one job.
	mk := func(n int) SolveRequest {
		return SolveRequest{Generator: &GeneratorSpec{Kind: "grid", N: n}}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); postJSON(t, ts.URL+"/v1/solve", mk(25), nil) }() // occupies the worker
	<-started
	// Fill the single queue slot via batch (async), then a further
	// distinct solve must be shed with 503.
	var out struct {
		Jobs []BatchEntry `json:"jobs"`
	}
	postJSON(t, ts.URL+"/v1/batch", BatchRequest{Requests: []SolveRequest{mk(36)}}, &out)
	if out.Jobs[0].Status == StatusFailed {
		t.Fatalf("queue slot submission failed early: %+v", out.Jobs[0])
	}
	var eb errorBody
	if code := postJSON(t, ts.URL+"/v1/solve", mk(49), &eb); code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%+v)", code, eb)
	}
	if !strings.Contains(eb.Error, "queue full") {
		t.Fatalf("shed error %q", eb.Error)
	}
	close(block) // release the worker so the in-flight solves finish
	wg.Wait()
}

// TestJobTimeout stubs a stalling solver and expects 504 + a failed job,
// with the queue alive afterwards.
func TestJobTimeout(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 1, JobTimeout: 20 * time.Millisecond})
	release := make(chan struct{})
	defer close(release)
	var stall atomic.Bool
	stall.Store(true)
	s.solve = func(ps *parsedSolve, hooks core.TraceHooks) (*core.Alg1Result, error) {
		if stall.Load() {
			<-release
		}
		return core.Alg1Pipeline(ps.g, ps.params, core.PipelineOptions{Workers: 1})
	}
	var v JobView
	req := SolveRequest{Generator: &GeneratorSpec{Kind: "grid", N: 25, Seed: 1}}
	if code := postJSON(t, ts.URL+"/v1/solve", &req, &v); code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%+v)", code, v)
	}
	if v.Status != StatusFailed || !strings.Contains(v.Error, "timed out") {
		t.Fatalf("job view %+v", v)
	}
	// The pathological job did not stall the daemon: a healthy request
	// still completes.
	stall.Store(false)
	req2 := SolveRequest{Generator: &GeneratorSpec{Kind: "grid", N: 16, Seed: 2}}
	if code := postJSON(t, ts.URL+"/v1/solve", &req2, &v); code != http.StatusOK || v.Status != StatusDone {
		t.Fatalf("post-timeout solve: %d %+v", code, v)
	}
}

// TestDrainFinishesAcceptedJobs: Drain must block until queued work
// completes — the SIGTERM contract.
func TestDrainFinishesAcceptedJobs(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 2, QueueDepth: 8})
	var out struct {
		Jobs []BatchEntry `json:"jobs"`
	}
	batch := BatchRequest{Requests: []SolveRequest{
		{Generator: &GeneratorSpec{Kind: "ding", N: 50, T: 4, Seed: 1}},
		{Generator: &GeneratorSpec{Kind: "grid", N: 49, Seed: 2}},
		{Generator: &GeneratorSpec{Kind: "tree", N: 40, Seed: 3}},
	}}
	if code := postJSON(t, ts.URL+"/v1/batch", &batch, &out); code != http.StatusAccepted {
		t.Fatalf("batch status %d", code)
	}
	s.Drain()
	for _, entry := range out.Jobs {
		var v JobView
		getJSON(t, ts.URL+"/v1/jobs/"+entry.JobID, &v)
		if v.Status != StatusDone {
			t.Fatalf("after drain, job %s is %s", entry.JobID, v.Status)
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	req := SolveRequest{Generator: &GeneratorSpec{Kind: "grid", N: 25, Seed: 1}}
	postJSON(t, ts.URL+"/v1/solve", &req, nil)
	postJSON(t, ts.URL+"/v1/solve", &req, nil) // cache hit

	var hz map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if hz["status"] != "ok" {
		t.Fatalf("healthz %+v", hz)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, w := range []string{
		"mdsd_queue_depth 0",
		"mdsd_cache_hits_total 1",
		"mdsd_cache_misses_total 1",
		"mdsd_computations_total 1",
		"mdsd_inflight_dedup_total 0",
		`mdsd_jobs_total{status="done"} 2`,
		`mdsd_stage_wall_seconds_total{stage="TwinReduce"}`,
		`mdsd_stage_runs_total{stage="Stitch"} 1`,
	} {
		if !strings.Contains(text, w) {
			t.Fatalf("metrics missing %q:\n%s", w, text)
		}
	}
}
