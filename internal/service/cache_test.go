package service

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"localmds/internal/core"
	"localmds/internal/gen"
	"localmds/internal/graph"
)

func keyFor(t *testing.T, n int) solveKey {
	t.Helper()
	p, err := core.PracticalParams().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	return newSolveKey(gen.Path(n).Freeze(), p)
}

func TestCacheHitMissEviction(t *testing.T) {
	c := newResultCache(3)
	keys := make([]solveKey, 6)
	for i := range keys {
		keys[i] = keyFor(t, i+2)
	}
	for i, k := range keys[:3] {
		c.put(k, &SolveOutcome{N: i}, time.Now())
	}
	if _, _, ok := c.get(keys[0]); !ok {
		t.Fatal("expected hit on keys[0]")
	}
	// keys[1] is now LRU; inserting a 4th evicts it.
	c.put(keys[3], &SolveOutcome{N: 3}, time.Now())
	if _, _, ok := c.get(keys[1]); ok {
		t.Fatal("keys[1] should have been evicted (LRU)")
	}
	if _, _, ok := c.get(keys[0]); !ok {
		t.Fatal("keys[0] was refreshed and must survive")
	}
	evictions, entries := c.stats()
	if entries != 3 || evictions != 1 {
		t.Fatalf("entries=%d evictions=%d, want 3 and 1", entries, evictions)
	}
	// Re-putting an existing key refreshes, never duplicates.
	c.put(keys[0], &SolveOutcome{N: 99}, time.Now())
	if out, _, ok := c.get(keys[0]); !ok || out.N != 99 {
		t.Fatalf("refresh put: got %+v, %v", out, ok)
	}
	if _, entries := c.stats(); entries != 3 {
		t.Fatalf("entries=%d after refresh, want 3", entries)
	}
}

// TestCacheConcurrent hammers one small cache from many goroutines with
// overlapping keys so gets, puts, refreshes, and evictions interleave;
// run under -race in CI.
func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(8)
	keys := make([]solveKey, 24)
	for i := range keys {
		keys[i] = keyFor(t, i+2)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 200; round++ {
				k := keys[(round*7+w*5)%len(keys)]
				if out, _, ok := c.get(k); ok {
					_ = out.N // entries are immutable; read only
				} else {
					c.put(k, &SolveOutcome{N: round}, time.Now())
				}
			}
		}()
	}
	wg.Wait()
	evictions, entries := c.stats()
	if entries > 8 {
		t.Fatalf("entries=%d exceeds capacity 8", entries)
	}
	if evictions == 0 {
		t.Fatal("expected evictions with 24 keys and capacity 8")
	}
}

// TestSolveKeyStability: the cache key must not depend on how the graph
// arrived — permuted edge presentations of the same labeled graph, or the
// same params spelled with and without explicit defaults, produce equal
// keys; different graphs or radii produce different ones.
func TestSolveKeyStability(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}}
	perm := [][2]int{{3, 1}, {0, 3}, {2, 1}, {1, 0}, {3, 2}}
	p1, _ := core.Params{R1: 4, R2: 4}.Normalized()
	p2, _ := core.Params{R1: 4, R2: 4, MaxBruteComponent: core.DefaultMaxBruteComponent}.Normalized()
	k1 := newSolveKey(graph.FromEdgesUnchecked(4, edges).Freeze(), p1)
	k2 := newSolveKey(graph.FromEdgesUnchecked(4, perm).Freeze(), p2)
	if k1 != k2 {
		t.Fatalf("keys differ across presentation/params spelling:\n%v\n%v", k1, k2)
	}
	k3 := newSolveKey(graph.FromEdgesUnchecked(4, edges[:4]).Freeze(), p1)
	if k1 == k3 {
		t.Fatal("different graphs must not collide")
	}
	p3, _ := core.Params{R1: 5, R2: 4}.Normalized()
	k4 := newSolveKey(graph.FromEdgesUnchecked(4, edges).Freeze(), p3)
	if k1 == k4 {
		t.Fatal("different params must not collide")
	}
	if fmt.Sprint(k1) == "" {
		t.Fatal("unprintable key")
	}
}
