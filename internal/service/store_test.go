package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"localmds/internal/obs"
	"localmds/internal/store"
)

// getBody fetches a URL and returns its body as text.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// openStore opens a disk store for a service test.
func openStore(t *testing.T, dir string, opts store.Options) *store.Store {
	t.Helper()
	opts.Dir = dir
	st, err := store.Open(opts)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

// solveReq builds a deterministic generator solve for index i.
func solveReq(i int) SolveRequest {
	return SolveRequest{Generator: &GeneratorSpec{Kind: "ding", N: 30 + i, T: 4, Seed: int64(i + 1)}}
}

// TestTwoTierWarmRestart is the durability contract end to end: solve K
// distinct instances, tear the daemon down, bring a new one up on the same
// store directory, and repeat the traffic — every request is a cache hit
// with a positive persisted age, and the new daemon computes nothing.
func TestTwoTierWarmRestart(t *testing.T) {
	dir := t.TempDir()
	const K = 4

	s1, ts1 := startServer(t, Config{Workers: 2, Store: openStore(t, dir, store.Options{})})
	for i := 0; i < K; i++ {
		var v JobView
		if code := postJSON(t, ts1.URL+"/v1/solve", solveReq(i), &v); code != 200 {
			t.Fatalf("solve %d: HTTP %d", i, code)
		}
		if v.Cached {
			t.Fatalf("solve %d: fresh solve reported cached", i)
		}
	}
	if got := s1.Computations(); got != K {
		t.Fatalf("first daemon computed %d, want %d", got, K)
	}
	ts1.Close()
	s1.Close()

	// Restart: a new process on the same directory.
	s2 := New(Config{Workers: 2, Store: openStore(t, dir, store.Options{})})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Close()
	}()
	for i := 0; i < K; i++ {
		var v JobView
		if code := postJSON(t, ts2.URL+"/v1/solve", solveReq(i), &v); code != 200 {
			t.Fatalf("warm solve %d: HTTP %d", i, code)
		}
		if !v.Cached {
			t.Fatalf("warm solve %d not served from cache", i)
		}
		if v.CacheAgeS == nil || *v.CacheAgeS <= 0 {
			t.Fatalf("warm solve %d: cache_age_s = %v, want > 0 (persisted timestamp)", i, v.CacheAgeS)
		}
	}
	if got := s2.Computations(); got != 0 {
		t.Fatalf("warm daemon recomputed %d solves, want 0", got)
	}

	// A third wave hits the now-warm memory tier; ages keep growing from
	// the original computation, not the restart.
	var v JobView
	if code := postJSON(t, ts2.URL+"/v1/solve", solveReq(0), &v); code != 200 || v.CacheAgeS == nil || *v.CacheAgeS <= 0 {
		t.Fatalf("memory-tier repeat: code=%d view=%+v", code, v)
	}

	var health struct {
		Store string `json:"store"`
	}
	if code := getJSON(t, ts2.URL+"/healthz", &health); code != 200 || health.Store != "ok" {
		t.Fatalf("healthz: code=%d store=%q, want ok", code, health.Store)
	}
}

// TestStoreCorruptEntryRecomputed: an entry corrupted on disk between
// restarts is quarantined by the scan and simply recomputed — never
// served, never an error.
func TestStoreCorruptEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := startServer(t, Config{Workers: 1, Store: openStore(t, dir, store.Options{})})
	var v JobView
	if code := postJSON(t, ts1.URL+"/v1/solve", solveReq(0), &v); code != 200 {
		t.Fatalf("solve: HTTP %d", code)
	}
	ts1.Close()
	s1.Close()

	// Flip one payload byte in the single persisted entry.
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, de := range des {
		if !strings.HasSuffix(de.Name(), ".mdse") {
			continue
		}
		p := filepath.Join(dir, de.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0x01
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted != 1 {
		t.Fatalf("expected exactly 1 persisted entry, corrupted %d", corrupted)
	}

	st2 := openStore(t, dir, store.Options{})
	if q := st2.Stats().Quarantined; q != 1 {
		t.Fatalf("scan quarantined %d, want 1", q)
	}
	s2, ts2 := startServer(t, Config{Workers: 1, Store: st2})
	if code := postJSON(t, ts2.URL+"/v1/solve", solveReq(0), &v); code != 200 {
		t.Fatalf("resolve after corruption: HTTP %d", code)
	}
	if v.Cached {
		t.Fatal("corrupt entry was served from cache")
	}
	if got := s2.Computations(); got != 1 {
		t.Fatalf("computed %d, want 1 (recompute of the quarantined entry)", got)
	}
}

// enospcFS passes everything through to the real filesystem except entry
// writes, which fail with ENOSPC — the injected disk-full fault.
type enospcFS struct{ store.OSFS }

func (fs enospcFS) Create(name string) (store.File, error) {
	f, err := fs.OSFS.Create(name)
	if err != nil {
		return nil, err
	}
	if strings.Contains(name, ".mdse.tmp") {
		return enospcFile{File: f}, nil
	}
	return f, nil
}

type enospcFile struct{ store.File }

func (f enospcFile) Write(p []byte) (int, error) { return 0, syscall.ENOSPC }

// TestStoreDegradesOnENOSPC: a full disk must not fail a single request.
// The first persist error flips the daemon to memory-only, surfaces on
// /healthz, /metrics, and the event bus, and every solve still succeeds.
func TestStoreDegradesOnENOSPC(t *testing.T) {
	st := openStore(t, t.TempDir(), store.Options{FS: enospcFS{}})
	s, ts := startServer(t, Config{Workers: 1, Store: st})

	sub := s.bus.Subscribe(0, 16)
	defer sub.Cancel()

	var v JobView
	if code := postJSON(t, ts.URL+"/v1/solve", solveReq(0), &v); code != 200 {
		t.Fatalf("solve under ENOSPC: HTTP %d, want 200 (degrade, not fail)", code)
	}
	var health struct {
		Store string `json:"store"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 || health.Store != "degraded" {
		t.Fatalf("healthz: code=%d store=%q, want degraded", code, health.Store)
	}

	deadline := time.After(5 * time.Second)
	for {
		select {
		case e, ok := <-sub.C:
			if !ok {
				t.Fatal("event stream closed without store_degraded")
			}
			if e.Type == obs.EventStoreDegraded {
				if e.Error == "" {
					t.Fatalf("store_degraded event without a cause: %+v", e)
				}
				goto degraded
			}
		case <-deadline:
			t.Fatal("no store_degraded event within 5s")
		}
	}
degraded:

	// Once degraded the memory tier still works: the repeat is a hit and
	// the dead disk is never touched again.
	if code := postJSON(t, ts.URL+"/v1/solve", solveReq(0), &v); code != 200 || !v.Cached {
		t.Fatalf("repeat after degrade: code=%d cached=%v", code, v.Cached)
	}

	body := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(body, "mdsd_store_degraded 1") {
		t.Fatal("metrics missing mdsd_store_degraded 1")
	}
}
