package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// handleEvents is GET /v1/events: a Server-Sent Events stream of job
// lifecycle events (submitted, started, cached, done, failed, shed). The
// stream replays ring-buffered history first — all retained events, or
// only those after ?after=<seq> for a reconnecting client — then live
// events as they publish. Each frame carries the bus sequence number as
// the SSE id, so clients resume with Last-Event-ID semantics via ?after.
// The stream ends when the client disconnects or the daemon drains; a
// subscriber too slow for its buffer loses events rather than stalling
// the solve path.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported by this connection"})
		return
	}
	var after uint64
	if raw := r.URL.Query().Get("after"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "after: want a sequence number, got " + raw})
			return
		}
		after = v
	}
	sub := s.bus.Subscribe(after, 128)
	defer sub.Cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	//mdsvet:ignore errpath -- SSE streams bytes, not a JSON body; writeJSON would close the stream
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				// Bus closed: the daemon drained and every terminal event
				// has been delivered.
				fmt.Fprintf(w, "event: end\ndata: {\"reason\":\"draining\"}\n\n")
				fl.Flush()
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
