// Crash and restart scenarios for the black-box suite: a clean restart
// on a warm store (zero recomputes), and a SIGKILL mid-load with planted
// corruption (torn temp removed, corrupt entry quarantined, every
// pre-kill completion served from disk). The kill -9 scenario re-execs
// this test binary as a real daemon process so the kill is a genuine
// process death, not an in-process simulation.
package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"localmds/internal/service"
	"localmds/internal/store"
)

// solveView is the subset of a solve response the crash scenarios check.
type solveView struct {
	Status    string   `json:"status"`
	Cached    bool     `json:"cached"`
	CacheAgeS *float64 `json:"cache_age_s"`
}

// postView solves one body and fails the test unless it completes.
func postView(t *testing.T, base string, body []byte) solveView {
	t.Helper()
	resp, err := benchClient.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	defer resp.Body.Close()
	var v solveView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode solve response: %v", err)
	}
	if resp.StatusCode != http.StatusOK || v.Status != "done" {
		t.Fatalf("solve: status %d %+v", resp.StatusCode, v)
	}
	return v
}

// metricValue scrapes one unlabeled metric from /metrics.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := benchClient.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("metric %s = %q: %v", name, fields[1], err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in %s/metrics", name, base)
	return 0
}

// mustOpenStore opens the durable store with the crash-safe policy.
func mustOpenStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	return st
}

// runRestartWarm is the clean-restart durability scenario: solve a set
// of distinct instances, stop the daemon, boot a fresh one on the same
// store directory, and hammer the same set — every repeat must be a
// persisted hit with zero recomputes.
func runRestartWarm(t *testing.T, duration time.Duration) scenarioResult {
	dir := t.TempDir()
	const distinct = 6
	bodies := make([][]byte, distinct)
	for i := range bodies {
		bodies[i] = solveBody("ding", 80, int64(i+1))
	}

	d1 := startDaemon(t, service.Config{Workers: 2, QueueDepth: 16, Store: mustOpenStore(t, dir)})
	for _, b := range bodies {
		if v := postView(t, d1.base, b); v.Cached {
			t.Fatalf("cold solve reported cached: %+v", v)
		}
	}
	if got := d1.svc.Computations(); got != distinct {
		t.Fatalf("cold wave computed %d, want %d", got, distinct)
	}
	d1.stop()

	// Restart-to-ready: store scan + daemon boot + first healthy probe.
	restartStart := time.Now()
	d2 := startDaemon(t, service.Config{Workers: 2, QueueDepth: 16, Store: mustOpenStore(t, dir)})
	var hz map[string]any
	if err := getInto(d2.base+"/healthz", &hz); err != nil || hz["status"] != "ok" || hz["store"] != "ok" {
		t.Fatalf("restarted daemon unhealthy: %v %+v", err, hz)
	}
	ready := time.Since(restartStart)

	// Every repeat must carry the persisted computed-at timestamp.
	for _, b := range bodies {
		v := postView(t, d2.base, b)
		if !v.Cached || v.CacheAgeS == nil || *v.CacheAgeS <= 0 {
			t.Fatalf("warm repeat not served from store: %+v", v)
		}
	}
	all := hammer(4, duration, func(c, seq int) int {
		return post(d2.base, "", bodies[(c+seq)%distinct])
	})
	res := summarize("restart_warm", 4, duration, all)
	for status := range res.StatusCounts {
		if status != "200" {
			t.Fatalf("warm hammer saw status %s: %+v", status, res.StatusCounts)
		}
	}
	recomputes := d2.svc.Computations()
	if recomputes != 0 {
		t.Fatalf("warm restart recomputed %d instances, want 0", recomputes)
	}
	res.WarmHitRate = 1 - float64(recomputes)/float64(distinct)
	res.RestartToReadyMS = float64(ready.Microseconds()) / 1e3
	res.DaemonSurvived = true
	return res
}

// helperEnv gates TestHelperDaemon: set only in the re-exec'd child.
const helperEnv = "MDSD_BLACKBOX_HELPER"

// TestHelperDaemon is not a test: it is the daemon process the
// kill9_recovery scenario SIGKILLs. The parent re-execs the test binary
// with MDSD_BLACKBOX_HELPER=1, a store directory, and an address file;
// the helper boots a real daemon over that store, publishes its address
// atomically, and serves until killed.
func TestHelperDaemon(t *testing.T) {
	if os.Getenv(helperEnv) != "1" {
		t.Skip("helper process for kill9_recovery; spawned via re-exec")
	}
	st, err := store.Open(store.Options{Dir: os.Getenv("MDSD_STORE_DIR"), Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatalf("helper store.Open: %v", err)
	}
	svc := service.New(service.Config{Workers: 2, QueueDepth: 32, Store: st})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrFile := os.Getenv("MDSD_ADDR_FILE")
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: svc.Handler()}
	_ = hs.Serve(ln) // until SIGKILL
}

// helperDaemon is one re-exec'd daemon process.
type helperDaemon struct {
	cmd  *exec.Cmd
	base string
	out  *bytes.Buffer
}

// spawnHelper starts a daemon process on storeDir and waits for it to
// publish its listen address.
func spawnHelper(t *testing.T, storeDir, addrFile string) *helperDaemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperDaemon$")
	cmd.Env = append(os.Environ(),
		helperEnv+"=1",
		"MDSD_STORE_DIR="+storeDir,
		"MDSD_ADDR_FILE="+addrFile,
	)
	out := new(bytes.Buffer)
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn helper daemon: %v", err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return &helperDaemon{cmd: cmd, base: "http://" + string(b), out: out}
		}
		if time.Now().After(deadline) {
			t.Fatalf("helper daemon never published its address; output: %s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// kill delivers SIGKILL — no drain, no fsync flush beyond what each
// completed Put already forced — and reaps the process.
func (h *helperDaemon) kill() {
	_ = h.cmd.Process.Signal(syscall.SIGKILL)
	_, _ = h.cmd.Process.Wait()
}

// entryFiles lists the committed entry files in a store directory.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.mdse"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// runKill9Recovery is the crash scenario: SIGKILL a real daemon process
// mid-load, plant a torn temp file and a corrupt entry the way a dying
// disk would, restart on the same directory, and require that every
// pre-kill completion is served from disk (zero recomputes), the corrupt
// entry is quarantined and counted, and the torn temp never surfaces.
func runKill9Recovery(t *testing.T, duration time.Duration) scenarioResult {
	storeDir := filepath.Join(t.TempDir(), "store")
	ctlDir := t.TempDir()

	h1 := spawnHelper(t, storeDir, filepath.Join(ctlDir, "addr1"))

	// Pre-kill completions: these HTTP 200s happened under fsync=always,
	// so the durability contract says they survive any crash after them.
	const preKill = 5
	preBodies := make([][]byte, preKill)
	for i := range preBodies {
		preBodies[i] = solveBody("ding", 80, int64(i+1))
		postView(t, h1.base, preBodies[i])
	}
	committed := map[string]bool{}
	for _, f := range entryFiles(t, storeDir) {
		committed[f] = true
	}
	if len(committed) != preKill {
		t.Fatalf("pre-kill wave left %d entries, want %d", len(committed), preKill)
	}

	// Load of fresh instances (disjoint n) with a SIGKILL landing in the
	// middle of the window: some in-flight writes die with the process.
	killTimer := time.AfterFunc(duration/2, h1.kill)
	all := hammer(2, duration, func(c, seq int) int {
		return post(h1.base, "", solveBody("ding", 90, int64(c)<<32|int64(seq)))
	})
	killTimer.Stop()
	h1.kill() // in case the hammer window ended before the timer fired

	// Wound the store the way a crashing machine would: a torn temp file
	// from a write that never committed, plus a bit-flipped entry. The
	// flip targets a mid-load entry when one landed, so the pre-kill set
	// stays bitwise intact; otherwise a fabricated corrupt entry stands in.
	tornTemp := filepath.Join(storeDir, strings.Repeat("cd", 32)+"-1111111111111111.mdse.tmp42")
	if err := os.WriteFile(tornTemp, []byte("torn mid-write"), 0o644); err != nil {
		t.Fatal(err)
	}
	var corrupt string
	for _, f := range entryFiles(t, storeDir) {
		if !committed[f] {
			corrupt = f
			break
		}
	}
	if corrupt == "" {
		corrupt = filepath.Join(storeDir, strings.Repeat("ab", 32)+"-0000000000000000.mdse")
		if err := os.WriteFile(corrupt, []byte("not a store entry"), 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		data, err := os.ReadFile(corrupt)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0x40
		if err := os.WriteFile(corrupt, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	restartStart := time.Now()
	h2 := spawnHelper(t, storeDir, filepath.Join(ctlDir, "addr2"))
	var hz map[string]any
	if err := getInto(h2.base+"/healthz", &hz); err != nil || hz["status"] != "ok" || hz["store"] != "ok" {
		t.Fatalf("post-crash daemon unhealthy: %v %+v", err, hz)
	}
	ready := time.Since(restartStart)

	// The startup scan must have swept the wreckage: torn temp gone,
	// corrupt entry moved aside and counted, never served.
	if _, err := os.Stat(tornTemp); !os.IsNotExist(err) {
		t.Fatalf("torn temp file survived the restart scan: %v", err)
	}
	if _, err := os.Stat(corrupt); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still in the serving directory: %v", err)
	}
	quarantined := metricValue(t, h2.base, "mdsd_store_quarantined_total")
	if quarantined < 1 {
		t.Fatalf("mdsd_store_quarantined_total = %v, want >= 1", quarantined)
	}

	// Every pre-kill completion must come back from disk: cached, with a
	// computed-at age that predates the restart, and zero recomputes.
	warmHits := 0
	for _, b := range preBodies {
		v := postView(t, h2.base, b)
		if v.Cached && v.CacheAgeS != nil && *v.CacheAgeS > 0 {
			warmHits++
		}
	}
	if warmHits != preKill {
		t.Fatalf("only %d/%d pre-kill completions served from the store", warmHits, preKill)
	}
	if recomputes := metricValue(t, h2.base, "mdsd_computations_total"); recomputes != 0 {
		t.Fatalf("post-crash daemon recomputed %v instances, want 0", recomputes)
	}

	h2.kill()
	res := summarize("kill9_recovery", 2, duration, all)
	res.WarmHitRate = float64(warmHits) / float64(preKill)
	res.RestartToReadyMS = float64(ready.Microseconds()) / 1e3
	res.Quarantined = int64(quarantined)
	res.DaemonSurvived = true
	return res
}
