package service

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"

	"localmds/internal/core"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/graphio"
)

// SolveRequest is the body of POST /v1/solve and each element of a batch.
// Exactly one graph source must be set: an inline JSON graph, a text
// payload in one of the graphio formats, or a generator spec.
type SolveRequest struct {
	// Graph is the repository JSON encoding {"n": ..., "edges": [...]}.
	Graph json.RawMessage `json:"graph,omitempty"`
	// Data is a text payload (edge list, DIMACS, or JSON) in Format.
	Data string `json:"data,omitempty"`
	// Format names the encoding of Data: auto (default), json, edgelist,
	// dimacs.
	Format string `json:"format,omitempty"`
	// Generator asks the server to generate the instance instead.
	Generator *GeneratorSpec `json:"generator,omitempty"`
	// Params are the Algorithm 1 radii; omitted fields default to
	// PracticalParams (r1=4, r2=4) and the standard brute-force cap.
	Params *core.Params `json:"params,omitempty"`
}

// GeneratorSpec mirrors the graphgen CLI's knobs.
type GeneratorSpec struct {
	Kind string  `json:"kind"`
	N    int     `json:"n"`
	T    int     `json:"t,omitempty"`
	P    float64 `json:"p,omitempty"`
	Seed int64   `json:"seed"`
}

// maxRequestVertices bounds the vertex count of any requested instance,
// whatever the source. The 64 MB body cap bounds edge counts but not a
// declared vertex count: without this limit a 40-byte payload could make
// the handler allocate a multi-gigabyte adjacency structure and OOM the
// daemon before the queue's load shedding applies.
const maxRequestVertices = 2_000_000

// maxRequestEdges bounds the declared edge count the same way: a DIMACS
// problem line (or a future binary payload) can state an m far larger than
// the 64 MB body could ever deliver, and the parsers preallocate from it.
const maxRequestEdges = 20_000_000

// badRequestError marks client errors (HTTP 400) as opposed to solver
// failures (HTTP 500).
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// parsedSolve is a validated, frozen solve request ready for the queue.
type parsedSolve struct {
	g      *graph.Graph
	csr    *graph.CSR
	params core.Params
	key    solveKey
	source string // "graph", "data", or "generator:<kind>" — diagnostics only
}

// parseSolve validates req, materializes and freezes the graph, and
// derives the content-addressed cache key.
func parseSolve(req *SolveRequest) (*parsedSolve, error) {
	sources := 0
	for _, set := range []bool{len(req.Graph) > 0, req.Data != "", req.Generator != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, badRequestf("exactly one of \"graph\", \"data\", or \"generator\" must be set, got %d", sources)
	}

	params := core.PracticalParams()
	if req.Params != nil {
		params = *req.Params
	}
	params, err := params.Normalized()
	if err != nil {
		return nil, badRequestf("params: %v", err)
	}

	var g *graph.Graph
	source := ""
	switch {
	case len(req.Graph) > 0:
		source = "graph"
		g, err = graphio.ReadLimited(strings.NewReader(string(req.Graph)), graphio.FormatJSON, maxRequestVertices, maxRequestEdges)
		if err != nil {
			return nil, badRequestf("graph: %v", err)
		}
	case req.Data != "":
		f, err := graphio.ParseFormat(req.Format)
		if err != nil {
			return nil, badRequestf("%v", err)
		}
		source = "data/" + f.String()
		g, err = graphio.ReadLimited(strings.NewReader(req.Data), f, maxRequestVertices, maxRequestEdges)
		if err != nil {
			return nil, badRequestf("data: %v", err)
		}
	default:
		spec := req.Generator
		if spec.Kind == "" {
			return nil, badRequestf("generator: missing \"kind\"")
		}
		if spec.N < 1 {
			return nil, badRequestf("generator: \"n\" must be >= 1, got %d", spec.N)
		}
		if spec.N > maxRequestVertices {
			return nil, badRequestf("generator: \"n\" = %d exceeds the limit %d", spec.N, maxRequestVertices)
		}
		t := spec.T
		if t == 0 {
			t = 5
		}
		if spec.Kind == "ding" && t < 3 {
			return nil, badRequestf("generator: \"t\" must be >= 3 for the ding generator, got %d", t)
		}
		if spec.P < 0 || spec.P > 1 {
			return nil, badRequestf("generator: \"p\" must be a probability in [0, 1], got %g", spec.P)
		}
		source = "generator:" + spec.Kind
		g, err = gen.FromKind(spec.Kind, spec.N, t, spec.P, rand.New(rand.NewSource(spec.Seed)))
		if err != nil {
			return nil, badRequestf("generator: %v", err)
		}
	}

	csr := g.Freeze()
	return &parsedSolve{
		g:      g,
		csr:    csr,
		params: params,
		key:    newSolveKey(csr, params),
		source: source,
	}, nil
}
