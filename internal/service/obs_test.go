package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"localmds/internal/obs"
)

func TestSolveResponseMarksCacheHits(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	req := SolveRequest{Generator: &GeneratorSpec{Kind: "grid", N: 25, Seed: 1}}

	var first, second JobView
	if code := postJSON(t, ts.URL+"/v1/solve", &req, &first); code != http.StatusOK {
		t.Fatalf("first solve status %d", code)
	}
	if first.Cached {
		t.Error("first solve reported cached")
	}
	if first.CacheAgeS != nil {
		t.Errorf("first solve carries cache_age_s %v", *first.CacheAgeS)
	}
	if code := postJSON(t, ts.URL+"/v1/solve", &req, &second); code != http.StatusOK {
		t.Fatalf("second solve status %d", code)
	}
	if !second.Cached {
		t.Error("second solve not reported cached")
	}
	if second.CacheAgeS == nil {
		t.Fatal("cached solve missing cache_age_s")
	}
	if *second.CacheAgeS < 0 {
		t.Errorf("cache_age_s = %v, want >= 0", *second.CacheAgeS)
	}
	if second.SolveOutcome == nil || second.SolveOutcome.Fingerprint != first.SolveOutcome.Fingerprint {
		t.Error("cached solve did not serve the stored outcome")
	}
}

func TestJobTraceEndpoint(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	req := SolveRequest{Generator: &GeneratorSpec{Kind: "ding", N: 60, T: 5, Seed: 7}}

	var computed, cached JobView
	postJSON(t, ts.URL+"/v1/solve", &req, &computed)
	postJSON(t, ts.URL+"/v1/solve", &req, &cached)

	var view obs.TraceView
	if code := getJSON(t, ts.URL+"/v1/jobs/"+computed.ID+"/trace", &view); code != http.StatusOK {
		t.Fatalf("trace status %d", code)
	}
	if view.TraceID != computed.ID {
		t.Errorf("trace_id = %q, want the job ID %q", view.TraceID, computed.ID)
	}
	if view.Root == nil || view.Root.Name != "job" {
		t.Fatalf("root span = %+v, want name \"job\"", view.Root)
	}
	names := make(map[string]*obs.SpanView)
	for i := range view.Root.Children {
		names[view.Root.Children[i].Name] = &view.Root.Children[i]
	}
	if names["queue wait"] == nil || names["solve"] == nil {
		t.Fatalf("root children = %v, want queue wait + solve", names)
	}
	var stages []string
	for _, c := range names["solve"].Children {
		stages = append(stages, c.Name)
	}
	want := []string{"TwinReduce", "Cuts", "Partition", "ComponentSolve", "Stitch"}
	if len(stages) != len(want) {
		t.Fatalf("stage spans = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stage spans = %v, want %v", stages, want)
		}
	}
	if view.Root.Open {
		t.Error("root span never ended")
	}

	// Chrome trace-event export.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + computed.ID + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) < len(want)+2 {
		t.Fatalf("chrome events = %d, want at least %d", len(chrome.TraceEvents), len(want)+2)
	}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
	}

	// Cache hits never computed: no trace.
	if code := getJSON(t, ts.URL+"/v1/jobs/"+cached.ID+"/trace", nil); code != http.StatusNotFound {
		t.Errorf("cached job trace status = %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/nope/trace", nil); code != http.StatusNotFound {
		t.Errorf("unknown job trace status = %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+computed.ID+"/trace?format=svg", nil); code != http.StatusBadRequest {
		t.Errorf("bad format status = %d, want 400", code)
	}
}

// sseFrame is one parsed SSE frame from /v1/events.
type sseFrame struct {
	id    string
	event string
	data  string
}

// readFrames reads SSE frames until n arrive or the stream ends.
func readFrames(t *testing.T, r io.Reader, n int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				frames = append(frames, cur)
				cur = sseFrame{}
			}
			if len(frames) >= n {
				return frames
			}
		case strings.HasPrefix(line, "id: "):
			cur.id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		}
	}
	return frames
}

func TestEventsStreamReplayAndLifecycle(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 1})
	req := SolveRequest{Generator: &GeneratorSpec{Kind: "grid", N: 25, Seed: 1}}
	postJSON(t, ts.URL+"/v1/solve", &req, nil) // compute
	postJSON(t, ts.URL+"/v1/solve", &req, nil) // cache hit

	// Late subscriber: ring replay delivers the full history.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hreq, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/events", nil)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	frames := readFrames(t, resp.Body, 4)
	if len(frames) != 4 {
		t.Fatalf("replayed frames = %d, want 4", len(frames))
	}
	wantTypes := []string{obs.EventSubmitted, obs.EventStarted, obs.EventDone, obs.EventCached}
	var lastSeq uint64
	for i, f := range frames {
		if f.event != wantTypes[i] {
			t.Errorf("frame %d = %q, want %q", i, f.event, wantTypes[i])
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("frame %d data %q: %v", i, f.data, err)
		}
		if ev.Seq <= lastSeq {
			t.Errorf("frame %d seq %d not increasing past %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.JobID == "" {
			t.Errorf("frame %d missing job_id", i)
		}
		if f.event == obs.EventCached && ev.CacheAgeS < 0 {
			t.Errorf("cached event cache_age_s = %v", ev.CacheAgeS)
		}
		if f.event == obs.EventDone && ev.SolveWallS <= 0 {
			t.Errorf("done event solve_wall_s = %v", ev.SolveWallS)
		}
	}

	// Resume semantics: ?after=lastSeq-1 replays only the final event.
	resumeCtx, resumeCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer resumeCancel()
	hreq2, _ := http.NewRequestWithContext(resumeCtx, "GET",
		ts.URL+"/v1/events?after="+frames[2].id, nil)
	resp2, err := http.DefaultClient.Do(hreq2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	resumed := readFrames(t, resp2.Body, 1)
	if len(resumed) != 1 || resumed[0].event != obs.EventCached {
		t.Fatalf("resume replay = %+v, want the cached event only", resumed)
	}

	// Drain closes every stream with a final end frame.
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer drainCancel()
	hreq3, _ := http.NewRequestWithContext(drainCtx, "GET", ts.URL+"/v1/events?after="+frames[3].id, nil)
	resp3, err := http.DefaultClient.Do(hreq3)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	go s.Drain()
	end := readFrames(t, resp3.Body, 1)
	if len(end) != 1 || end[0].event != "end" {
		t.Fatalf("drain frame = %+v, want event \"end\"", end)
	}

	if code := getJSON(t, ts.URL+"/v1/events?after=banana", nil); code != http.StatusBadRequest {
		t.Errorf("bad after status = %d, want 400", code)
	}
}

func TestMetricsObservabilityFamilies(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, Version: "test-build"})
	req := SolveRequest{Generator: &GeneratorSpec{Kind: "grid", N: 25, Seed: 1}}
	postJSON(t, ts.URL+"/v1/solve", &req, nil)
	postJSON(t, ts.URL+"/v1/solve", &req, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content-type = %q", ct)
	}
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, w := range []string{
		`mdsd_build_info{version="test-build",go="go`,
		"mdsd_goroutines ",
		"mdsd_heap_bytes ",
		"mdsd_gc_pause_seconds_total ",
		"mdsd_workers 1\n",
		"mdsd_worker_utilization ",
		"mdsd_events_total 4",
		`mdsd_request_duration_seconds_bucket{route="/v1/solve",outcome="2xx",le="+Inf"} 2`,
		"mdsd_queue_wait_seconds_count 1",
		"mdsd_solve_wall_seconds_count 1",
		`mdsd_stage_duration_seconds_bucket{stage="Stitch",le="+Inf"} 1`,
	} {
		if !strings.Contains(text, w) {
			t.Fatalf("metrics missing %q:\n%s", w, text)
		}
	}
	// Canonical family ordering: every _bucket line of a histogram comes
	// before its _sum, which comes before its _count.
	for _, fam := range []string{"mdsd_queue_wait_seconds", "mdsd_solve_wall_seconds"} {
		lastBucket := strings.LastIndex(text, fam+"_bucket")
		sum := strings.Index(text, fam+"_sum")
		count := strings.Index(text, fam+"_count")
		if !(lastBucket < sum && sum < count) {
			t.Errorf("%s series out of canonical order (bucket %d, sum %d, count %d)",
				fam, lastBucket, sum, count)
		}
	}
}

func TestRouteAndOutcomeLabels(t *testing.T) {
	for path, want := range map[string]string{
		"/v1/solve":           "/v1/solve",
		"/v1/events":          "/v1/events",
		"/v1/jobs/job-000001": "/v1/jobs/{id}",
		"/v1/jobs/x/trace":    "/v1/jobs/{id}/trace",
		"/metrics":            "/metrics",
		"/debug/whatever":     "other",
		"/v1/jobs/../../etc":  "/v1/jobs/{id}",
	} {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
	for status, want := range map[int]string{200: "2xx", 404: "4xx", 503: "5xx", 42: "other"} {
		if got := outcomeLabel(status); got != want {
			t.Errorf("outcomeLabel(%d) = %q, want %q", status, got, want)
		}
	}
}
