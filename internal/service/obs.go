package service

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"localmds/internal/obs"
)

// This file is the service-side face of internal/obs: histogram and event
// fabric construction, the route/outcome labeling that keeps histogram
// cardinality bounded, and the rendering of the observability families
// into /metrics (renderMetrics in metrics.go calls renderObsMetrics).

// runtimeSampleInterval paces the background runtime-gauge collector. The
// sample itself is a handful of runtime/metrics reads, so a scrape-scale
// interval costs nothing measurable.
const runtimeSampleInterval = 5 * time.Second

// initObs wires the observability core into a freshly constructed Server.
func (s *Server) initObs() {
	s.bus = obs.NewBus(s.cfg.EventBuffer, nil)
	s.collector = obs.StartCollector(runtimeSampleInterval)
	s.reqLatency = obs.NewHistogramVec(
		"mdsd_request_duration_seconds",
		"HTTP request latency by route and outcome class.",
		[]string{"route", "outcome"}, nil)
	s.queueWait = obs.NewHistogram(nil)
	s.solveWall = obs.NewHistogram(nil)
	s.stageDur = obs.NewHistogramVec(
		"mdsd_stage_duration_seconds",
		"Per-solve pipeline stage wall time.",
		[]string{"stage"}, nil)
}

// routeLabel collapses a request path to its route pattern so histogram
// label cardinality is bounded by the API surface, not by client input.
func routeLabel(path string) string {
	switch path {
	case "/v1/solve", "/v1/batch", "/v1/events", "/healthz", "/metrics":
		return path
	}
	if strings.HasPrefix(path, "/v1/jobs/") {
		if strings.HasSuffix(path, "/trace") {
			return "/v1/jobs/{id}/trace"
		}
		return "/v1/jobs/{id}"
	}
	return "other"
}

// outcomeLabel collapses a status code to its class ("2xx".."5xx").
func outcomeLabel(status int) string {
	if status < 100 || status > 599 {
		return "other"
	}
	return fmt.Sprintf("%dxx", status/100)
}

// observeRequest records one finished request into the latency histogram.
func (s *Server) observeRequest(path string, status int, dur time.Duration) {
	s.reqLatency.With(routeLabel(path), outcomeLabel(status)).ObserveDuration(dur)
}

// renderObsMetrics appends the observability families to the /metrics
// exposition: build info, runtime and pool gauges, then the latency
// histograms in canonical _bucket/_sum/_count order.
func (s *Server) renderObsMetrics(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP mdsd_build_info Constant 1, labeled with the build version and Go runtime.\n")
	fmt.Fprintf(b, "# TYPE mdsd_build_info gauge\n")
	fmt.Fprintf(b, "mdsd_build_info{version=%q,go=%q} 1\n", s.cfg.Version, runtime.Version())

	snap := s.collector.Last()
	fmt.Fprintf(b, "# HELP mdsd_goroutines Live goroutines at the last runtime sample.\n")
	fmt.Fprintf(b, "# TYPE mdsd_goroutines gauge\n")
	fmt.Fprintf(b, "mdsd_goroutines %d\n", snap.Goroutines)
	fmt.Fprintf(b, "# HELP mdsd_heap_bytes Live heap object bytes at the last runtime sample.\n")
	fmt.Fprintf(b, "# TYPE mdsd_heap_bytes gauge\n")
	fmt.Fprintf(b, "mdsd_heap_bytes %d\n", snap.HeapBytes)
	fmt.Fprintf(b, "# HELP mdsd_gc_pause_seconds_total Cumulative stop-the-world GC pause time.\n")
	fmt.Fprintf(b, "# TYPE mdsd_gc_pause_seconds_total counter\n")
	fmt.Fprintf(b, "mdsd_gc_pause_seconds_total %.9f\n", snap.GCPauseTotal.Seconds())
	fmt.Fprintf(b, "# HELP mdsd_gc_cycles_total Completed GC cycles.\n")
	fmt.Fprintf(b, "# TYPE mdsd_gc_cycles_total counter\n")
	fmt.Fprintf(b, "mdsd_gc_cycles_total %d\n", snap.GCCycles)

	workers := s.pool.Workers()
	busy := s.busyWorkers.Load()
	fmt.Fprintf(b, "# HELP mdsd_workers Solver pool size.\n")
	fmt.Fprintf(b, "# TYPE mdsd_workers gauge\n")
	fmt.Fprintf(b, "mdsd_workers %d\n", workers)
	fmt.Fprintf(b, "# HELP mdsd_workers_busy Pool workers currently running a job.\n")
	fmt.Fprintf(b, "# TYPE mdsd_workers_busy gauge\n")
	fmt.Fprintf(b, "mdsd_workers_busy %d\n", busy)
	util := 0.0
	if workers > 0 {
		util = float64(busy) / float64(workers)
	}
	fmt.Fprintf(b, "# HELP mdsd_worker_utilization Busy fraction of the solver pool (0..1).\n")
	fmt.Fprintf(b, "# TYPE mdsd_worker_utilization gauge\n")
	fmt.Fprintf(b, "mdsd_worker_utilization %.6f\n", util)

	fmt.Fprintf(b, "# HELP mdsd_events_total Job-lifecycle events published on /v1/events.\n")
	fmt.Fprintf(b, "# TYPE mdsd_events_total counter\n")
	fmt.Fprintf(b, "mdsd_events_total %d\n", s.bus.LastSeq())

	s.reqLatency.Render(b)
	s.queueWait.Render(b, "mdsd_queue_wait_seconds", "Time jobs spend queued before a worker picks them up.")
	s.solveWall.Render(b, "mdsd_solve_wall_seconds", "Wall time of computed (non-cached) solves.")
	s.stageDur.Render(b)
}
