package service

import (
	"fmt"
	"sync"
	"time"

	"localmds/internal/core"
	"localmds/internal/obs"
)

// Job statuses, in lifecycle order.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// SolveOutcome is the immutable, cacheable payload of a finished solve.
type SolveOutcome struct {
	Fingerprint string           `json:"fingerprint"`
	N           int              `json:"n"`
	M           int              `json:"m"`
	Params      core.Params      `json:"params"`
	Valid       bool             `json:"valid"`
	Result      *core.Alg1Result `json:"result"`
}

// Job tracks one solve through the queue. Mutable state is guarded by mu;
// done closes when the job reaches a terminal status.
type Job struct {
	ID string

	mu       sync.Mutex
	status   string
	source   string
	cached   bool
	created  time.Time
	started  time.Time
	finished time.Time
	outcome  *SolveOutcome
	err      error
	done     chan struct{}

	// trace/span hold the job's span tree (rooted at the request) when the
	// job actually computed; cached and shed jobs have none. cacheAge is
	// the served entry's age for cache hits.
	trace    *obs.Trace
	span     *obs.Span
	cacheAge time.Duration
}

// JobView is the JSON snapshot served by GET /v1/jobs/{id} and embedded
// in solve responses.
type JobView struct {
	ID            string     `json:"job_id"`
	Status        string     `json:"status"`
	Source        string     `json:"source,omitempty"`
	Cached        bool       `json:"cached"`
	Created       time.Time  `json:"created"`
	Started       *time.Time `json:"started,omitempty"`
	Finished      *time.Time `json:"finished,omitempty"`
	Error         string     `json:"error,omitempty"`
	CacheAgeS     *float64   `json:"cache_age_s,omitempty"` // served entry's age, cache hits only
	*SolveOutcome            // flattened when done
}

// view snapshots the job under its lock.
func (j *Job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:      j.ID,
		Status:  j.status,
		Source:  j.source,
		Cached:  j.cached,
		Created: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.cached {
		age := j.cacheAge.Seconds()
		v.CacheAgeS = &age
	}
	if j.status == StatusDone {
		v.SolveOutcome = j.outcome
	}
	return v
}

// setTrace attaches the job's span tree (leader jobs only, before the job
// is visible to pool workers).
func (j *Job) setTrace(tr *obs.Trace, root *obs.Span) {
	j.mu.Lock()
	j.trace, j.span = tr, root
	j.mu.Unlock()
}

// Trace returns the job's span tree, or nil for jobs that never computed
// (cache hits, shed or quota-rejected submissions).
func (j *Job) Trace() (*obs.Trace, *obs.Span) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace, j.span
}

// setCacheAge records the served entry's age on a cache-hit job.
func (j *Job) setCacheAge(age time.Duration) {
	j.mu.Lock()
	j.cacheAge = age
	j.mu.Unlock()
}

// Done returns the channel closed when the job finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) markRunning() (started time.Time, queueWait time.Duration) {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	started = j.started
	queueWait = started.Sub(j.created)
	j.mu.Unlock()
	return started, queueWait
}

func (j *Job) finish(out *SolveOutcome, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.status = StatusFailed
		j.err = err
	} else {
		j.status = StatusDone
		j.outcome = out
	}
	j.mu.Unlock()
	close(j.done)
}

// jobStore is the in-memory job registry. Jobs are kept until the store's
// retention cap, evicting the oldest finished jobs first so /v1/jobs/{id}
// stays answerable for recent work without growing without bound.
type jobStore struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // insertion order, for retention eviction
	seq    int64
	keep   int
	counts map[string]int64 // terminal status tallies, for /metrics
}

func newJobStore(keep int) *jobStore {
	return &jobStore{
		jobs:   make(map[string]*Job),
		keep:   keep,
		counts: map[string]int64{},
	}
}

// create registers a new queued job.
func (s *jobStore) create(source string, cached bool) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &Job{
		ID:      fmt.Sprintf("job-%06d", s.seq),
		status:  StatusQueued,
		source:  source,
		cached:  cached,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.evictLocked()
	return j
}

// evictLocked drops the oldest finished jobs beyond the retention cap.
func (s *jobStore) evictLocked() {
	if len(s.jobs) <= s.keep {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		if len(s.jobs) > s.keep {
			j.mu.Lock()
			terminal := j.status == StatusDone || j.status == StatusFailed
			j.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// get looks a job up by ID.
func (s *jobStore) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// recordTerminal tallies a finished job for /metrics.
func (s *jobStore) recordTerminal(status string) {
	s.mu.Lock()
	s.counts[status]++
	s.mu.Unlock()
}

// terminalCounts snapshots the status tallies.
func (s *jobStore) terminalCounts() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}
