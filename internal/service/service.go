// Package service is the long-running solve layer over the repository's
// library internals: an HTTP/JSON daemon (cmd/mdsd) that accepts solve
// requests — an inline graph, a text payload in any graphio format, or a
// generator spec, plus Algorithm 1 params — runs them on a bounded job
// queue built from the internal/runner worker-pool machinery, and serves
// results with the per-stage diagnostics of the staged CSR pipeline.
//
// Identical work is never recomputed: every request is content-addressed
// by graph.Fingerprint over its frozen CSR plus the normalized params, an
// LRU cache serves repeats, and concurrent identical requests are
// deduplicated onto one in-flight job.
//
// Untrusted clients are bounded the same way untrusted graphs are: a
// middleware chain (middleware.go) authenticates bearer tokens into
// tenants, rate-limits and quota-bounds each tenant, tags every request
// with an ID, and logs structured access records, while the submission
// path sheds with deterministic statuses — 401 auth, 429 rate/quota with
// Retry-After, 503 queue-full or draining with Retry-After, 504 timeout.
//
// Endpoints:
//
//	POST /v1/solve    — synchronous solve (enqueue + wait)
//	POST /v1/batch    — enqueue many, return job IDs immediately
//	GET  /v1/jobs/{id} — job status: queued/running/done with stage table
//	GET  /healthz     — liveness + queue snapshot (never authenticated)
//	GET  /metrics     — Prometheus text: queue depth, cache hit/miss,
//	                    per-stage latency totals, per-tenant outcomes
//
// AdminHandler serves /debug/pprof/* for a separate operator listener.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"localmds/internal/core"
	"localmds/internal/mds"
	"localmds/internal/obs"
	"localmds/internal/runner"
	"localmds/internal/store"
)

// Config tunes the daemon.
type Config struct {
	// Workers bounds the solver pool; <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds jobs waiting beyond the running ones; when the
	// queue is full, solves are shed with HTTP 503 and batch entries fail.
	// <= 0 selects 64.
	QueueDepth int
	// CacheEntries caps the content-addressed result cache; <= 0 selects
	// 256.
	CacheEntries int
	// JobTimeout bounds each solve (0 = unbounded); a job that exceeds it
	// fails with HTTP 504 semantics instead of stalling the queue.
	JobTimeout time.Duration
	// PipelineWorkers bounds each solve's ComponentSolve fan-out; the
	// default 1 keeps one request on one core so concurrent requests
	// scale by request, not within one.
	PipelineWorkers int
	// JobRetention caps remembered finished jobs; <= 0 selects 1024.
	JobRetention int
	// Tokens maps tenant names to bearer tokens (see LoadTokens). When
	// empty, every request runs as the anonymous tenant; when set, /v1/*
	// requires "Authorization: Bearer <token>" and unknown tokens are 401.
	Tokens map[string]string
	// RatePerSec is the per-tenant token-bucket refill rate; <= 0 disables
	// rate limiting. Exhaustion is 429 with Retry-After.
	RatePerSec float64
	// RateBurst is the bucket capacity; <= 0 derives max(1, ceil(rate)).
	RateBurst int
	// MaxJobsPerTenant caps one tenant's queued+running jobs; <= 0 means
	// unlimited. Exhaustion is 429 with Retry-After, distinct from the
	// whole-daemon 503 load shed.
	MaxJobsPerTenant int
	// AccessLog receives one structured (JSON) log line per request when
	// non-nil; requests are tagged with X-Request-Id either way.
	AccessLog io.Writer
	// EventBuffer caps the /v1/events ring buffer replayed to late
	// subscribers; <= 0 selects 256.
	EventBuffer int
	// Version is reported in the mdsd_build_info metric; empty selects
	// "dev".
	Version string
	// TraceMaxSpans caps retained spans per job trace (huge instances can
	// produce one span per residual component); <= 0 selects 4096. Spans
	// over the cap are counted, not stored.
	TraceMaxSpans int
	// Store is the optional disk tier under the memory result cache
	// (internal/store): completed solves are persisted before their jobs
	// finish and a restart on the same directory serves them without
	// recompute. nil disables persistence. The Server takes ownership; any
	// real I/O error degrades the daemon to memory-only for its lifetime
	// (store.go) rather than failing requests.
	Store *store.Store
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.PipelineWorkers <= 0 {
		c.PipelineWorkers = 1
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 1024
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	if c.Version == "" {
		c.Version = "dev"
	}
	if c.TraceMaxSpans <= 0 {
		c.TraceMaxSpans = 4096
	}
	return c
}

// Server is the solve service. Create with New, expose via Handler, stop
// with Drain (graceful) or Close (abort).
type Server struct {
	cfg      Config
	pool     *runner.Pool
	cache    *resultCache
	jobs     *jobStore
	stages   *stageTotals
	started  time.Time
	baseCtx  context.Context
	cancel   context.CancelFunc
	inflight *inflightMap

	// Disk tier (store.go): nil when persistence is disabled; the degraded
	// flag is one-way — a real I/O error flips the daemon to memory-only.
	store         *store.Store
	storeDegraded atomic.Bool

	// Hardening state: hashed credentials, per-tenant accounting, the
	// drain gate, and observability plumbing (middleware.go).
	tokenHashes  []tokenEntry
	tenantsMu    sync.Mutex
	tenants      map[string]*tenantState
	draining     atomic.Bool
	authFailures atomic.Int64
	reqSeq       atomic.Uint64
	logger       *slog.Logger

	// Cache effectiveness counters. They live here rather than in
	// resultCache because only the request router can classify a lookup:
	// a hit serves the stored result, a miss becomes the leader of a
	// recompute, and a dedup joins an identical in-flight job (neither
	// hit nor recompute).
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	cacheDedups atomic.Int64

	// Observability core (obs.go): the job-lifecycle event bus behind
	// /v1/events, latency histograms rendered into /metrics, the runtime
	// gauge collector, and the busy-worker gauge.
	bus         *obs.Bus
	collector   *obs.Collector
	reqLatency  *obs.HistogramVec // route × outcome class
	queueWait   *obs.Histogram
	solveWall   *obs.Histogram
	stageDur    *obs.HistogramVec // pipeline stage
	busyWorkers atomic.Int64

	// solve runs one pipeline execution; tests stub it to exercise queue
	// shedding, timeouts, and drain deterministically. hooks (nil when the
	// job's trace was dropped) receives stage/component span callbacks.
	solve func(ps *parsedSolve, hooks core.TraceHooks) (*core.Alg1Result, error)
}

// errQueueFull marks load-shed jobs so every waiter — the leader and any
// deduplicated followers — maps the failure to HTTP 503.
var errQueueFull = errors.New("queue full")

// errDraining marks jobs rejected after drain started: still HTTP 503,
// but the message tells clients the daemon is going away, not overloaded.
var errDraining = errors.New("draining: not accepting new work")

// errTenantQuota marks jobs rejected by a per-tenant job quota — HTTP 429
// with Retry-After, distinct from whole-daemon load shedding.
var errTenantQuota = errors.New("tenant job quota exhausted")

// New starts a Server's worker pool and returns it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		pool:     runner.NewPool(cfg.Workers, cfg.QueueDepth),
		cache:    newResultCache(cfg.CacheEntries),
		jobs:     newJobStore(cfg.JobRetention),
		stages:   newStageTotals(),
		started:  time.Now(),
		baseCtx:  ctx,
		cancel:   cancel,
		inflight: newInflightMap(),
		tenants:  map[string]*tenantState{},
		store:    cfg.Store,
	}
	for name, token := range cfg.Tokens {
		s.tokenHashes = append(s.tokenHashes, tokenEntry{name: name, sum: sha256.Sum256([]byte(token))})
	}
	if cfg.AccessLog != nil {
		s.logger = slog.New(slog.NewJSONHandler(cfg.AccessLog, nil))
	}
	s.initObs()
	s.solve = func(ps *parsedSolve, hooks core.TraceHooks) (*core.Alg1Result, error) {
		return core.Alg1Pipeline(ps.g, ps.params, core.PipelineOptions{Workers: s.cfg.PipelineWorkers, Hooks: hooks})
	}
	return s
}

// BeginDrain flips the server into draining mode: every new submission
// is shed with 503 while accepted jobs keep running and /v1/jobs/{id}
// keeps answering. It does not block; Drain does.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain/Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops accepting work and blocks until every accepted job has
// finished — the SIGTERM path. The HTTP listener may stay up throughout:
// new submissions shed deterministically with 503 and finished jobs stay
// pollable until the caller shuts the listener down.
func (s *Server) Drain() {
	s.BeginDrain()
	s.pool.Close()
	// Every accepted job is terminal now, so subscribers have every
	// terminal event buffered before their streams close.
	s.bus.Close()
	s.collector.Stop()
}

// Close aborts in-flight jobs via context cancellation, then drains.
func (s *Server) Close() {
	s.BeginDrain()
	s.cancel()
	s.pool.Close()
	s.bus.Close()
	s.collector.Stop()
}

// Computations returns the number of pipeline executions the server has
// performed; cache hits and deduplicated waiters do not advance it.
// Tests assert on it to prove a cache hit skips recompute.
func (s *Server) Computations() int64 { return s.stages.Computations() }

// submitRejection classifies why submit refused a solve, so handlers map
// it to the right deterministic status code.
type submitRejection int

const (
	rejectNone  submitRejection = iota
	rejectShed                  // queue full or draining → 503 + Retry-After
	rejectQuota                 // per-tenant job quota → 429 + Retry-After
)

// submit routes one parsed solve: cache hit → immediately-done job;
// identical in-flight request → join its job; otherwise a fresh job on
// the queue, counted against the tenant's quota until it terminates.
// tn may be nil (no quota accounting, e.g. internal callers).
func (s *Server) submit(ps *parsedSolve, tn *tenantState) (j *Job, rej submitRejection) {
	tenant := tenantName(tn)
	if s.draining.Load() {
		j := s.jobs.create(ps.source, false)
		j.finish(nil, errDraining)
		s.jobs.recordTerminal(StatusFailed)
		if tn != nil {
			tn.shed.Add(1)
		}
		s.publishShed(j, tenant, ps, errDraining)
		return j, rejectShed
	}
	out, age, ok := s.cache.get(ps.key)
	if !ok {
		// Memory miss: the disk tier may still have the result — from this
		// process or a previous one on the same -store-dir. A disk hit
		// warms the memory cache and reports the persisted age.
		out, age, ok = s.storeLookup(ps)
	}
	if ok {
		s.cacheHits.Add(1)
		j := s.jobs.create(ps.source, true)
		j.setCacheAge(age)
		j.finish(out, nil)
		s.jobs.recordTerminal(StatusDone)
		s.bus.Publish(obs.Event{
			Type: obs.EventCached, JobID: j.ID, Tenant: tenant, Source: ps.source,
			Fingerprint: ps.key.fp.String(), CacheAgeS: age.Seconds(),
		})
		return j, rejectNone
	}
	// Deduplicate concurrent identical requests onto one in-flight job.
	j, leader := s.inflight.join(ps.key, func() *Job { return s.jobs.create(ps.source, false) })
	if !leader {
		s.cacheDedups.Add(1)
		return j, rejectNone
	}
	s.cacheMisses.Add(1)
	if tn != nil && !tn.tryAcquireJob() {
		s.inflight.leave(ps.key)
		err := fmt.Errorf("%w: tenant %q already has %d jobs in flight", errTenantQuota, tn.name, tn.maxJobs)
		j.finish(nil, err)
		s.jobs.recordTerminal(StatusFailed)
		tn.quotaRejected.Add(1)
		s.publishShed(j, tenant, ps, err)
		return j, rejectQuota
	}
	// The job's span tree is rooted at its deterministic ID, so two runs
	// of the same request sequence trace identically.
	tr, root := obs.NewTrace(j.ID, "job", obs.TraceOptions{MaxSpans: s.cfg.TraceMaxSpans})
	root.SetStart(jobCreated(j))
	root.SetAttr("source", ps.source)
	root.SetAttr("fingerprint", ps.key.fp.String())
	j.setTrace(tr, root)
	s.bus.Publish(obs.Event{
		Type: obs.EventSubmitted, JobID: j.ID, Tenant: tenant, Source: ps.source,
		Fingerprint: ps.key.fp.String(),
	})
	accepted := s.pool.TrySubmit(func() {
		defer s.inflight.leave(ps.key)
		if tn != nil {
			defer tn.releaseJob()
		}
		s.runJob(j, ps, tenant)
	})
	if !accepted {
		s.inflight.leave(ps.key)
		if tn != nil {
			tn.releaseJob()
			tn.shed.Add(1)
		}
		err := fmt.Errorf("%w (%d jobs pending)", errQueueFull, s.pool.Pending())
		j.finish(nil, err)
		s.jobs.recordTerminal(StatusFailed)
		s.publishShed(j, tenant, ps, err)
		return j, rejectShed
	}
	return j, rejectNone
}

// jobCreated reads the job's creation instant.
func jobCreated(j *Job) time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.created
}

// tenantName renders the event/tenant label for a possibly-nil tenant.
func tenantName(tn *tenantState) string {
	if tn == nil {
		return ""
	}
	return tn.name
}

// publishShed emits the rejection event shared by the draining, quota,
// and queue-full paths.
func (s *Server) publishShed(j *Job, tenant string, ps *parsedSolve, err error) {
	s.bus.Publish(obs.Event{
		Type: obs.EventShed, JobID: j.ID, Tenant: tenant, Source: ps.source,
		Fingerprint: ps.key.fp.String(), Error: err.Error(),
	})
}

// runJob executes one queued solve on a pool worker.
func (s *Server) runJob(j *Job, ps *parsedSolve, tenant string) {
	s.busyWorkers.Add(1)
	defer s.busyWorkers.Add(-1)
	started, queueWait := j.markRunning()
	s.queueWait.Observe(queueWait.Seconds())
	_, root := j.Trace()
	var solveSpan *obs.Span
	if root != nil {
		qs := root.StartChild("queue wait")
		qs.SetStart(jobCreated(j))
		qs.EndAt(started)
		solveSpan = root.StartChild("solve")
	}
	s.bus.Publish(obs.Event{
		Type: obs.EventStarted, JobID: j.ID, Tenant: tenant, Source: ps.source,
		Fingerprint: ps.key.fp.String(), QueueWaitS: queueWait.Seconds(),
	})
	res, err := runner.WithTimeout(s.baseCtx, s.cfg.JobTimeout, func() (*core.Alg1Result, error) {
		return s.solve(ps, core.SpanHooks(solveSpan))
	})
	wall := time.Since(started)
	s.solveWall.Observe(wall.Seconds())
	if solveSpan != nil {
		solveSpan.End()
	}
	if root != nil {
		root.End()
	}
	if err != nil {
		j.finish(nil, err)
		s.jobs.recordTerminal(StatusFailed)
		s.bus.Publish(obs.Event{
			Type: obs.EventFailed, JobID: j.ID, Tenant: tenant, Source: ps.source,
			Fingerprint: ps.key.fp.String(), SolveWallS: wall.Seconds(), Error: err.Error(),
		})
		return
	}
	s.stages.record(res.StageStats)
	for _, st := range res.StageStats {
		s.stageDur.With(st.Name).ObserveDuration(st.Wall)
	}
	out := &SolveOutcome{
		Fingerprint: ps.key.fp.String(),
		N:           ps.g.N(),
		M:           ps.g.M(),
		Params:      ps.params,
		Valid:       mds.IsDominatingSetCSR(ps.csr, res.S),
		Result:      res,
	}
	computedAt := time.Now()
	s.cache.put(ps.key, out, computedAt)
	// Persist before the job finishes: when the store runs fsync=always, a
	// client that saw HTTP 200 can crash us with kill -9 and still find the
	// result on disk after restart.
	s.storePersist(ps, out, computedAt)
	j.finish(out, nil)
	s.jobs.recordTerminal(StatusDone)
	s.bus.Publish(obs.Event{
		Type: obs.EventDone, JobID: j.ID, Tenant: tenant, Source: ps.source,
		Fingerprint: ps.key.fp.String(), SolveWallS: wall.Seconds(),
	})
}

// inflightMap deduplicates concurrent identical solves: the first request
// for a key becomes the leader and runs the job, later ones join it.
type inflightMap struct {
	mu   sync.Mutex
	jobs map[solveKey]*Job
}

func newInflightMap() *inflightMap {
	return &inflightMap{jobs: make(map[solveKey]*Job)}
}

// join returns the in-flight job for key, creating one via mk when absent.
// leader reports whether the caller created it (and must submit it).
func (m *inflightMap) join(key solveKey, mk func() *Job) (j *Job, leader bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[key]; ok {
		return j, false
	}
	j = mk()
	m.jobs[key] = j
	return j, true
}

// leave removes key from the in-flight set.
func (m *inflightMap) leave(key solveKey) {
	m.mu.Lock()
	delete(m.jobs, key)
	m.mu.Unlock()
}

// Handler returns the service's HTTP stack: route mux wrapped by the
// client gate (auth + rate limiting on /v1/*) wrapped by the
// observability layer (request IDs + access logging) — podman-style
// middleware ordering, outermost first.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("/", s.handleNotFound)
	return s.observe(s.guard(mux))
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}
