package analysis

import goanalysis "golang.org/x/tools/go/analysis"

// Analyzers returns the repo-specific suite in a stable order. The
// cmd/mdsvet driver bundles these with the stock x/tools passes.
func Analyzers() []*goanalysis.Analyzer {
	return []*goanalysis.Analyzer{
		MapIter,
		SeedFlow,
		ErrPath,
		BoundedGo,
		EdgesIter,
		SpanClose,
		DirectiveCheck,
	}
}
