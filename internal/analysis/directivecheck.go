package analysis

import (
	goanalysis "golang.org/x/tools/go/analysis"
)

// DirectiveCheck keeps the suppression mechanism itself honest. A
// //mdsvet:ignore comment must name at least one known analyzer and
// carry a "-- reason" justification; bare ignores are rejected (and,
// because malformed directives never suppress anything, rejecting them
// is safe — the underlying finding still fires). It also flags
// directives naming analyzers that do not exist, which are usually
// typos silently suppressing nothing.
var DirectiveCheck = &goanalysis.Analyzer{
	Name: "directivecheck",
	Doc:  "validate //mdsvet:ignore suppression directives",
}

// Run is attached in init: runDirectiveCheck consults Analyzers() for
// the set of valid names, which includes DirectiveCheck itself.
func init() {
	DirectiveCheck.Run = runDirectiveCheck
}

func runDirectiveCheck(pass *goanalysis.Pass) (any, error) {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	ix := newIgnoreIndex(pass)
	for _, d := range ix.all {
		if inTestFile(pass, d.pos) {
			continue
		}
		if d.malformed != "" {
			pass.Reportf(d.pos, "malformed //mdsvet:ignore directive: %s "+
				"(want //mdsvet:ignore <analyzer> -- <reason>)", d.malformed)
			continue
		}
		for _, name := range d.names {
			if !known[name] {
				pass.Reportf(d.pos, "//mdsvet:ignore names unknown analyzer %q", name)
			}
		}
	}
	return nil, nil
}
