package analysis

import "testing"

// TestParseIgnoreDirective covers the directive grammar edge cases that
// the analysistest-style testdata cannot express (an empty-reason
// directive cannot carry an embedded want marker without becoming
// non-empty).
func TestParseIgnoreDirective(t *testing.T) {
	cases := []struct {
		name      string
		text      string // comment text without leading //
		wantNil   bool
		wantNames []string
		malformed bool
	}{
		{name: "not a directive", text: "plain comment", wantNil: true},
		{name: "other token", text: "mdsvet:ignorexyz stuff", wantNil: true},
		{name: "valid", text: "mdsvet:ignore mapiter -- sorted by caller",
			wantNames: []string{"mapiter"}},
		{name: "valid multi", text: "mdsvet:ignore mapiter seedflow -- both fine here",
			wantNames: []string{"mapiter", "seedflow"}},
		{name: "bare", text: "mdsvet:ignore mapiter", malformed: true},
		{name: "no names", text: "mdsvet:ignore -- reason only", malformed: true},
		{name: "empty reason", text: "mdsvet:ignore mapiter --", malformed: true},
		{name: "whitespace reason", text: "mdsvet:ignore mapiter --   \t",
			malformed: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := parseIgnoreDirective(tc.text)
			if tc.wantNil {
				if d != nil {
					t.Fatalf("parse(%q) = %+v, want nil", tc.text, d)
				}
				return
			}
			if d == nil {
				t.Fatalf("parse(%q) = nil, want directive", tc.text)
			}
			if tc.malformed != (d.malformed != "") {
				t.Fatalf("parse(%q): malformed = %q, want malformed=%v",
					tc.text, d.malformed, tc.malformed)
			}
			if !tc.malformed {
				if len(d.names) != len(tc.wantNames) {
					t.Fatalf("parse(%q): names = %v, want %v", tc.text, d.names, tc.wantNames)
				}
				for i := range d.names {
					if d.names[i] != tc.wantNames[i] {
						t.Fatalf("parse(%q): names = %v, want %v", tc.text, d.names, tc.wantNames)
					}
				}
			}
		})
	}
}
