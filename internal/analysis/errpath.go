package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	goanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ErrPath protects the daemon's deterministic rejection taxonomy: every
// HTTP response in internal/service must go through the central writers
// (writeJSON and the error helpers built on it) so that status codes,
// Retry-After headers, and JSON error bodies stay uniform. It flags, in
// any other function:
//
//   - direct w.WriteHeader(...) on an http.ResponseWriter;
//   - http.Error(...);
//   - json.NewEncoder(w).Encode(...) straight onto a ResponseWriter.
//
// Functions named in -errpath.writers (plus any method itself named
// WriteHeader, i.e. a ResponseWriter implementation such as the
// middleware's statusRecorder) are the sanctioned writers.
var ErrPath = &goanalysis.Analyzer{
	Name:     "errpath",
	Doc:      "flag HTTP responses written outside the central service writers",
	Requires: []*goanalysis.Analyzer{inspect.Analyzer},
	Run:      runErrPath,
}

func init() {
	ErrPath.Flags.String("scope", serviceScope,
		"comma-separated package-path prefixes to check (empty = all)")
	ErrPath.Flags.String("writers", "writeJSON",
		"comma-separated function names allowed to write responses directly")
}

func runErrPath(pass *goanalysis.Pass) (any, error) {
	scope := pass.Analyzer.Flags.Lookup("scope").Value.String()
	if !inScope(scope, pass.Pkg.Path()) {
		return nil, nil
	}
	writers := map[string]bool{"WriteHeader": true}
	for _, w := range strings.Split(pass.Analyzer.Flags.Lookup("writers").Value.String(), ",") {
		if w = strings.TrimSpace(w); w != "" {
			writers[w] = true
		}
	}
	ix := newIgnoreIndex(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		if _, fname := enclosingFunc(stack); writers[fname] {
			return true
		}
		switch {
		case isHTTPError(pass, call):
			ix.report(pass, "errpath", call.Pos(),
				"http.Error bypasses the service's central error writer; route "+
					"rejections through writeJSON so the taxonomy stays deterministic")
		case isDirectWriteHeader(pass, call):
			ix.report(pass, "errpath", call.Pos(),
				"direct WriteHeader on an http.ResponseWriter outside the central "+
					"writers; use writeJSON (or add //mdsvet:ignore errpath -- <reason>)")
		case isDirectEncode(pass, call):
			ix.report(pass, "errpath", call.Pos(),
				"json.NewEncoder(w).Encode writes a response outside the central "+
					"writers; use writeJSON")
		}
		return true
	})
	return nil, nil
}

// isHTTPError matches net/http.Error(...).
func isHTTPError(pass *goanalysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" &&
		fn.Name() == "Error" && fn.Type().(*types.Signature).Recv() == nil
}

// isDirectWriteHeader matches x.WriteHeader(...) where x satisfies
// http.ResponseWriter.
func isDirectWriteHeader(pass *goanalysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" {
		return false
	}
	return isResponseWriter(pass, pass.TypesInfo.TypeOf(sel.X))
}

// isDirectEncode matches json.NewEncoder(w).Encode(...) with w an
// http.ResponseWriter.
func isDirectEncode(pass *goanalysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Encode" {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass, inner)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" || fn.Name() != "NewEncoder" {
		return false
	}
	return len(inner.Args) == 1 && isResponseWriter(pass, pass.TypesInfo.TypeOf(inner.Args[0]))
}

// isResponseWriter reports whether t satisfies net/http.ResponseWriter.
// The interface is looked up in the checked package's imports, so the
// check degrades to false in packages that never import net/http.
func isResponseWriter(pass *goanalysis.Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	iface := responseWriterIface(pass)
	return iface != nil && types.Implements(t, iface)
}

func responseWriterIface(pass *goanalysis.Pass) *types.Interface {
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() != "net/http" {
			continue
		}
		obj := imp.Scope().Lookup("ResponseWriter")
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	return nil
}
