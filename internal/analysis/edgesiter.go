package analysis

import (
	"go/ast"
	"go/types"

	goanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// EdgesIter guards against regressions to the pre-pipeline Edges()
// iteration pattern: Graph.Edges() materializes an O(m) [][2]int per
// call, which PR 3 eliminated from hot paths in favor of the
// allocation-free VisitEdges. It flags calls to a
// zero-argument method named Edges on the graph types (Graph, CSR) in
// the solver and service packages.
var EdgesIter = &goanalysis.Analyzer{
	Name:     "edgesiter",
	Doc:      "flag allocation-heavy Graph.Edges() calls in hot paths",
	Requires: []*goanalysis.Analyzer{inspect.Analyzer},
	Run:      runEdgesIter,
}

func init() {
	EdgesIter.Flags.String("scope", hotPathPkgs,
		"comma-separated package-path prefixes to check (empty = all)")
}

// edgeOwnerTypes are the named types whose Edges method allocates the
// full edge list. Matched by type name so analyzer testdata can declare
// stand-ins.
var edgeOwnerTypes = map[string]bool{"Graph": true, "CSR": true}

func runEdgesIter(pass *goanalysis.Pass) (any, error) {
	scope := pass.Analyzer.Flags.Lookup("scope").Value.String()
	if !inScope(scope, pass.Pkg.Path()) {
		return nil, nil
	}
	ix := newIgnoreIndex(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Edges" || len(call.Args) != 0 {
			return
		}
		t := pass.TypesInfo.TypeOf(sel.X)
		if t == nil {
			return
		}
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || !edgeOwnerTypes[named.Obj().Name()] {
			return
		}
		ix.report(pass, "edgesiter", call.Pos(),
			named.Obj().Name()+".Edges() allocates the whole edge list; use "+
				"VisitEdges in hot paths, or add //mdsvet:ignore edgesiter -- <reason>")
	})
	return nil, nil
}
