package analysis

import (
	"fmt"
	"go/ast"
	"go/token"

	goanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// SpanClose enforces the tracing-hygiene invariant: every span started
// with StartChild (or the root span returned by NewTrace) must be ended
// with End/EndAt, or handed off to an owner that will end it (passed to
// a call, returned, stored in a field/variable, sent on a channel). A
// span that is started and then dropped on the floor stays open forever
// in the trace view and silently corrupts the Chrome export's lane
// packing — exactly the kind of bug that only shows up when someone
// finally opens a trace in anger.
//
// The analyzer is syntactic and per-function: a span that textually
// escapes the function is trusted to be somebody else's problem. The
// two certain bugs it catches are (a) discarding the span result
// outright and (b) binding it to a local that is never ended and never
// escapes.
var SpanClose = &goanalysis.Analyzer{
	Name:     "spanclose",
	Doc:      "flag spans that are started but never ended or handed off",
	Requires: []*goanalysis.Analyzer{inspect.Analyzer},
	Run:      runSpanClose,
}

func init() {
	SpanClose.Flags.String("scope", spanScope,
		"comma-separated package-path prefixes to check (empty = all)")
}

// spanStartNames are the calls that mint a span the caller must own.
// NewTrace is special-cased: the span is its second result.
var spanStartNames = map[string]bool{"StartChild": true}

// spanEndNames are the methods that retire a span.
var spanEndNames = map[string]bool{"End": true, "EndAt": true}

func runSpanClose(pass *goanalysis.Pass) (any, error) {
	scope := pass.Analyzer.Flags.Lookup("scope").Value.String()
	if !inScope(scope, pass.Pkg.Path()) {
		return nil, nil
	}
	ix := newIgnoreIndex(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || inTestFile(pass, fd.Pos()) {
			return
		}
		checkSpanOwnership(pass, ix, fd.Body)
	})
	return nil, nil
}

// spanVar is one local binding produced by a span-start call.
type spanVar struct {
	name    string
	defPos  token.Pos // position of the defining ident, skipped as a "use"
	closed  bool      // saw name.End() / name.EndAt(...)
	escaped bool      // saw the value handed to code outside this function
}

// checkSpanOwnership runs the per-function analysis: collect span
// bindings, then classify every other use of those names as a close, an
// escape, or noise (attribute setters, child starts).
func checkSpanOwnership(pass *goanalysis.Pass, ix *ignoreIndex, body *ast.BlockStmt) {
	vars := map[string]*spanVar{}

	// Pass 1: find span-start calls and how their results are bound.
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && isSpanStart(call) {
				ix.report(pass, "spanclose", call.Pos(),
					"span from StartChild is discarded: bind it and call End/EndAt on every path")
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				switch {
				case isSpanStart(call) && i < len(st.Lhs):
					bindSpan(pass, ix, vars, st.Lhs[i], call,
						"span from StartChild assigned to _: bind it and call End/EndAt, or drop the call")
				case isNewTrace(call) && len(st.Lhs) == 2 && len(st.Rhs) == 1:
					// tr, root := NewTrace(...) — the root span is result 2.
					bindSpan(pass, ix, vars, st.Lhs[1], call,
						"root span from NewTrace assigned to _: the trace view stays empty without it")
				}
			}
		}
		return true
	})
	if len(vars) == 0 {
		return
	}

	// Pass 2: classify the remaining uses of each tracked name.
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if v := vars[id.Name]; v != nil && id.Pos() != v.defPos {
						if spanEndNames[sel.Sel.Name] {
							v.closed = true
						}
						// Other methods (SetAttr, StartChild) neither
						// close nor transfer ownership.
					}
				}
			}
			for _, arg := range node.Args {
				markEscape(vars, arg)
			}
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				markEscape(vars, res)
			}
		case *ast.AssignStmt:
			for _, rhs := range node.Rhs {
				markEscape(vars, rhs)
			}
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					markEscape(vars, kv.Value)
				} else {
					markEscape(vars, elt)
				}
			}
		case *ast.SendStmt:
			markEscape(vars, node.Value)
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				markEscape(vars, node.X)
			}
		}
		return true
	})

	for _, v := range vars {
		if !v.closed && !v.escaped {
			ix.report(pass, "spanclose", v.defPos, fmt.Sprintf(
				"span %s is started but never ended in this function: call %s.End() "+
					"(defer is fine) or hand it to an owner that will", v.name, v.name))
		}
	}
}

// bindSpan records the LHS ident of a span-producing assignment, or
// reports a blank-identifier discard.
func bindSpan(pass *goanalysis.Pass, ix *ignoreIndex, vars map[string]*spanVar, lhs ast.Expr, call *ast.CallExpr, blankMsg string) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		// h.span = tr.StartChild(...) — stored in a field, owner's problem.
		return
	}
	if id.Name == "_" {
		ix.report(pass, "spanclose", call.Pos(), blankMsg)
		return
	}
	// Rebinding the same name (shadowing, loop reuse) keeps the latest
	// definition; the heuristic stays per-name, not per-object.
	vars[id.Name] = &spanVar{name: id.Name, defPos: id.Pos()}
}

// markEscape flags expr's ident (if tracked) as handed off.
func markEscape(vars map[string]*spanVar, expr ast.Expr) {
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
		if v := vars[id.Name]; v != nil && id.Pos() != v.defPos {
			v.escaped = true
		}
	}
}

// isSpanStart reports whether call is a StartChild call (method or
// package-level).
func isSpanStart(call *ast.CallExpr) bool {
	return spanStartNames[calleeName(call)]
}

// isNewTrace reports whether call mints a trace with a root span.
func isNewTrace(call *ast.CallExpr) bool {
	return calleeName(call) == "NewTrace"
}

// calleeName extracts the bare callee name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}
