package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	goanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// SeedFlow enforces the repo's seed-derivation discipline in solver and
// experiment code: all randomness must flow from gen.DeriveSeed /
// experiments.TaskSeed (FNV-derived per-(experiment,row,replicate)
// streams) so that sweeps are byte-identical at any -parallel and
// results are cacheable by (seed, params). It flags:
//
//   - any use of math/rand's global source (rand.Intn, rand.Seed, ...);
//   - clock-derived seeds (time.Now().UnixNano() and friends);
//   - rand.NewSource(x) / rand.New(rand.NewSource(x)) where x does not
//     trace back to a sanctioned origin: a DeriveSeed/TaskSeed call, a
//     function parameter (the caller is checked in turn), a field or
//     variable named like a seed, or arithmetic over those.
//
// Hardcoded literal seeds outside tests are flagged too: a constant
// stream shared by two call sites silently correlates their workloads.
var SeedFlow = &goanalysis.Analyzer{
	Name:     "seedflow",
	Doc:      "flag randomness that bypasses gen.DeriveSeed/experiments.TaskSeed",
	Requires: []*goanalysis.Analyzer{inspect.Analyzer},
	Run:      runSeedFlow,
}

func init() {
	SeedFlow.Flags.String("scope", seedScope,
		"comma-separated package-path prefixes to check (empty = all)")
}

// seedProducers are the sanctioned derivation functions, matched by
// name: gen.DeriveSeed and experiments.TaskSeed in the real tree, and
// same-named stand-ins in analyzer testdata.
var seedProducers = map[string]bool{"DeriveSeed": true, "TaskSeed": true}

func runSeedFlow(pass *goanalysis.Pass) (any, error) {
	scope := pass.Analyzer.Flags.Lookup("scope").Value.String()
	if !inScope(scope, pass.Pkg.Path()) {
		return nil, nil
	}
	ix := newIgnoreIndex(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkgPath, name := fn.Pkg().Path(), fn.Name()
		if pkgPath != "math/rand" && pkgPath != "math/rand/v2" {
			return true
		}
		if fn.Type().(*types.Signature).Recv() != nil {
			return true // methods on an explicit *rand.Rand are fine
		}
		switch name {
		case "New", "NewZipf":
			return true // judged via their NewSource argument
		case "NewSource":
			if len(call.Args) == 1 && !sanctionedSeed(pass, call.Args[0], stack) {
				ix.report(pass, "seedflow", call.Pos(),
					"rand.NewSource seed does not flow from DeriveSeed/TaskSeed; "+
						"derive it (gen.DeriveSeed / experiments.TaskSeed) or add "+
						"//mdsvet:ignore seedflow -- <reason>")
			}
			return true
		default:
			// Any other package-level math/rand function uses the global,
			// racily-shared, non-replayable source.
			ix.report(pass, "seedflow", call.Pos(),
				"use of math/rand global source ("+name+"): solver/experiment "+
					"randomness must come from an explicit rand.New(rand.NewSource(seed)) "+
					"with a derived seed")
			return true
		}
	})
	// Clock-derived seeds are flagged wherever they appear in scope:
	// there is no legitimate UnixNano in solver code (durations use
	// time.Since / wall-clock math stays on time.Time).
	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if isClockSeed(pass, call) {
			ix.report(pass, "seedflow", call.Pos(),
				"clock-derived value (time.Now()."+clockMethod(call)+"): seeds must be "+
					"derived from DeriveSeed/TaskSeed, not wall time")
		}
	})
	return nil, nil
}

// calleeFunc resolves the called *types.Func, or nil.
func calleeFunc(pass *goanalysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.ObjectOf(fun.Sel).(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.ObjectOf(fun).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// sanctionedSeed reports whether the expression provably originates from
// the seed-derivation chain. The trace is intraprocedural: function
// parameters are trusted here because every *caller* in scope is checked
// by the same analyzer.
func sanctionedSeed(pass *goanalysis.Pass, e ast.Expr, stack []ast.Node) bool {
	return sanctionedSeedDepth(pass, e, stack, 0)
}

func sanctionedSeedDepth(pass *goanalysis.Pass, e ast.Expr, stack []ast.Node, depth int) bool {
	if depth > 12 {
		return false
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if fn := calleeFunc(pass, x); fn != nil {
			if seedProducers[fn.Name()] {
				return true
			}
			// int64(...)-style conversions and small helpers: accept
			// conversions, reject arbitrary calls.
		}
		// Type conversion? A conversion's "callee" is a type, not a func.
		if tv, ok := pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return sanctionedSeedDepth(pass, x.Args[0], stack, depth+1)
		}
		return false
	case *ast.BinaryExpr:
		// seed^const, seed+int64(i): arithmetic over a sanctioned seed
		// still carries it. At least one operand must be sanctioned and
		// the other must not be clock-derived.
		if exprUsesClock(pass, x.X) || exprUsesClock(pass, x.Y) {
			return false
		}
		return sanctionedSeedDepth(pass, x.X, stack, depth+1) ||
			sanctionedSeedDepth(pass, x.Y, stack, depth+1)
	case *ast.UnaryExpr:
		return sanctionedSeedDepth(pass, x.X, stack, depth+1)
	case *ast.SelectorExpr:
		// A field read like spec.Seed or task.seed: the producer filled
		// it; trust fields that are named as seeds.
		return isSeedName(x.Sel.Name)
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(x)
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		if paramOfEnclosing(pass, v, stack) {
			return true // the caller's argument is checked at its own site
		}
		if def := localDefinition(pass, v, stack); def != nil {
			return sanctionedSeedDepth(pass, def, stack, depth+1)
		}
		// Fall back on naming for variables whose definition we cannot
		// see (package vars, closure captures from an outer scope).
		return isSeedName(x.Name)
	default:
		return false
	}
}

// isSeedName reports whether an identifier is conventionally a derived
// seed. The repo's convention is that anything called "seed"/"Seed"
// holds a DeriveSeed/TaskSeed product; seedflow polices the producers.
func isSeedName(name string) bool {
	lower := strings.ToLower(name)
	return lower == "seed" || strings.HasSuffix(lower, "seed")
}

// paramOfEnclosing reports whether v is a parameter of any function
// literal or declaration on the stack.
func paramOfEnclosing(pass *goanalysis.Pass, v *types.Var, stack []ast.Node) bool {
	for _, n := range stack {
		var ft *ast.FuncType
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ft = fn.Type
		case *ast.FuncLit:
			ft = fn.Type
		default:
			continue
		}
		if ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if pass.TypesInfo.ObjectOf(name) == v {
					return true
				}
			}
		}
	}
	return false
}

// localDefinition finds the right-hand side of the single assignment
// defining v inside the innermost enclosing function, or nil when v is
// reassigned or not locally defined.
func localDefinition(pass *goanalysis.Pass, v *types.Var, stack []ast.Node) ast.Expr {
	body, _ := enclosingFunc(stack)
	if body == nil {
		return nil
	}
	var def ast.Expr
	count := 0
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || pass.TypesInfo.ObjectOf(id) != v {
				continue
			}
			count++
			def = as.Rhs[i]
		}
		return true
	})
	if count != 1 {
		return nil
	}
	return def
}

// clockMethods are the time.Time accessors that turn wall time into an
// integer — the classic nondeterministic-seed idiom.
var clockMethods = map[string]bool{
	"UnixNano": true, "UnixMicro": true, "UnixMilli": true, "Unix": true,
	"Nanosecond": true,
}

// isClockSeed matches time.Now().<clock method>() chains.
func isClockSeed(pass *goanalysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !clockMethods[sel.Sel.Name] {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass, inner)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now"
}

func clockMethod(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name + "()"
	}
	return ""
}

// exprUsesClock reports whether the expression contains a time.Now()
// call anywhere.
func exprUsesClock(pass *goanalysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && fn.Name() == "Now" {
				found = true
			}
		}
		return !found
	})
	return found
}
