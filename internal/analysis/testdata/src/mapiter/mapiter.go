// Package mapiter exercises the mapiter analyzer: order-sensitive map
// walks are flagged, the recognized order-insensitive shapes are not.
package mapiter

import "sort"

// flagged builds output directly from map order.
func flagged(m map[int]bool) []int {
	var out []int
	for k := range m { // want `order-sensitive iteration over map`
		out = append(out, k*2)
	}
	return out
}

// transformThenUse appends a transformed key but never sorts.
func transformThenUse(m map[int]string) string {
	s := ""
	for _, v := range m { // want `order-sensitive iteration over map`
		s = s + v
	}
	return s
}

// floatSum is rejected even though += looks commutative: float addition
// is not associative, so visit order leaks into the low bits.
func floatSum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m { // want `order-sensitive iteration over map`
		s += v
	}
	return s
}

// collectSort is the canonical clean shape.
func collectSort(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// collectSortSlice uses sort.Slice on a struct collector.
func collectSortSlice(m map[string]int) []string {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// intSum: integer accumulation commutes.
func intSum(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// counter: ++ commutes.
func counter(m map[int]bool) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// maxFold: the guarded running-max update commutes.
func maxFold(m map[int]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// setInsert: inserting constant values into a set commutes.
func setInsert(m map[int]int) map[int]bool {
	seen := map[int]bool{}
	for k := range m {
		seen[k] = true
	}
	return seen
}

// forall is a pure quantifier scan: whichever element fails first, the
// returned value is the same.
func forall(m map[int][]int) bool {
	for _, vs := range m {
		for _, v := range vs {
			if v < 0 {
				return false
			}
		}
	}
	return true
}

// justified carries a directive with a written reason.
func justified(m map[int]bool) []int {
	var out []int
	//mdsvet:ignore mapiter -- consumer treats out as an unordered set
	for k := range m {
		out = append(out, k+1)
	}
	return out
}

// bareDirective is NOT suppressed: a directive without "-- reason" is
// malformed and must not have the power of a justified one.
func bareDirective(m map[int]bool) []int {
	var out []int
	//mdsvet:ignore mapiter
	for k := range m { // want `order-sensitive iteration over map`
		out = append(out, k+1)
	}
	return out
}

// wrongName: a directive naming a different analyzer does not suppress
// mapiter findings.
func wrongName(m map[int]bool) []int {
	var out []int
	//mdsvet:ignore seedflow -- reason aimed at the wrong analyzer
	for k := range m { // want `order-sensitive iteration over map`
		out = append(out, k+1)
	}
	return out
}
