// Package seedflow exercises the seedflow analyzer. DeriveSeed is a
// stand-in for gen.DeriveSeed: the analyzer matches producers by name so
// testdata stays self-contained.
package seedflow

import (
	"math/rand"
	"time"
)

// DeriveSeed mimics the repo's sanctioned seed producer.
func DeriveSeed(root int64, labels ...string) int64 { return root + int64(len(labels)) }

// globalSource uses the shared, racy, non-replayable global generator.
func globalSource() int {
	return rand.Intn(10) // want `use of math/rand global source`
}

// clockSeed is the classic nondeterministic-seed idiom: both the
// unsanctioned NewSource argument and the wall-clock read are flagged.
func clockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `does not flow from DeriveSeed/TaskSeed` `clock-derived value`
}

// hardcoded shares one constant stream across call sites.
func hardcoded() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `does not flow from DeriveSeed/TaskSeed`
}

// derived flows through a local variable from the producer.
func derived(root int64) *rand.Rand {
	s := DeriveSeed(root, "exp", "row")
	return rand.New(rand.NewSource(s))
}

// fromParam trusts parameters: the caller's argument is checked at its
// own call site.
func fromParam(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Spec mimics a task spec whose Seed field a producer filled.
type Spec struct{ Seed int64 }

// fromField trusts fields named like seeds.
func fromField(s Spec) *rand.Rand {
	return rand.New(rand.NewSource(s.Seed))
}

// arithmetic over a sanctioned seed still carries it.
func arithmetic(root int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(root, "x") ^ int64(i)))
}

// justified keeps a fixture generator with a written reason.
func justified() *rand.Rand {
	//mdsvet:ignore seedflow -- demo fixture; determinism not required here
	return rand.New(rand.NewSource(7))
}

// methodsFine: methods on an explicit *rand.Rand are always allowed.
func methodsFine(r *rand.Rand) int {
	return r.Intn(10)
}
