// Package scoped holds a violation with no want comments: analyzer
// tests run it with a scope flag that excludes this package and expect
// silence, proving the scope gate works.
package scoped

func ordered(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k*3)
	}
	return out
}
