// Package boundedgo exercises the boundedgo analyzer: bare goroutine
// launches and acquire-without-release on the quota pattern.
package boundedgo

import "sync"

// bare launches an unbounded goroutine.
func bare(work func()) {
	go work() // want `bare goroutine launch outside runner.Pool`
}

// bareLit flags function literals too.
func bareLit() {
	go func() {}() // want `bare goroutine launch outside runner.Pool`
}

// justified carries a reason.
func justified(done chan struct{}) {
	//mdsvet:ignore boundedgo -- exactly one goroutine, joined on done below
	go func() { close(done) }()
	<-done
}

// quota mimics the service's per-tenant job quota.
type quota struct {
	mu sync.Mutex
	n  int
}

func (q *quota) tryAcquireJob() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n >= 4 {
		return false
	}
	q.n++
	return true
}

func (q *quota) releaseJob() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.n--
}

// leaky acquires a slot and never releases it.
func leaky(q *quota) bool {
	return q.tryAcquireJob() // want `quota/semaphore slot acquired but never released`
}

// paired releases on every exit path.
func paired(q *quota, work func()) bool {
	if !q.tryAcquireJob() {
		return false
	}
	defer q.releaseJob()
	work()
	return true
}
