// Package spanclose exercises the spanclose analyzer: spans started
// with StartChild (or minted as NewTrace roots) must be ended or handed
// off to an owner.
package spanclose

// Span and Trace mimic the obs package's tracing surface; the analyzer
// matches on bare callee names, not types.
type Span struct{ open bool }

func (s *Span) StartChild(name string) *Span { return &Span{open: true} }
func (s *Span) End()                         { s.open = false }
func (s *Span) EndAt(unixNanos int64)        { s.open = false }
func (s *Span) SetAttr(k, v string)          {}

type Trace struct{ root *Span }

func NewTrace(id, rootName string) (*Trace, *Span) {
	root := &Span{open: true}
	return &Trace{root: root}, root
}

// leaky starts a span and drops it: the classic open-forever bug.
func leaky(parent *Span) {
	sp := parent.StartChild("stage") // want `span sp is started but never ended`
	sp.SetAttr("k", "v")
}

// discarded never even binds the span.
func discarded(parent *Span) {
	parent.StartChild("stage") // want `span from StartChild is discarded`
}

// blanked binds the span to _, which is the same bug spelled louder.
func blanked(parent *Span) {
	_ = parent.StartChild("stage") // want `span from StartChild assigned to _`
}

// rootDropped discards the root span, leaving an empty trace view.
func rootDropped() *Trace {
	tr, _ := NewTrace("job-1", "job") // want `root span from NewTrace assigned to _`
	return tr
}

// deferred is the canonical clean shape.
func deferred(parent *Span) {
	sp := parent.StartChild("stage")
	defer sp.End()
	sp.SetAttr("k", "v")
}

// endedAt closes with an explicit timestamp.
func endedAt(parent *Span, now int64) {
	sp := parent.StartChild("stage")
	sp.EndAt(now)
}

// handedBack transfers ownership to the caller.
func handedBack(parent *Span) *Span {
	sp := parent.StartChild("stage")
	return sp
}

// handedToOwner transfers ownership via a call argument.
func handedToOwner(parent *Span, keep func(*Span)) {
	sp := parent.StartChild("stage")
	keep(sp)
}

// storedInField parks the span on a struct for a later End.
type holder struct{ span *Span }

func storedInField(h *holder, parent *Span) {
	sp := parent.StartChild("stage")
	h.span = sp
}

// rootKept ends the NewTrace root itself.
func rootKept() *Trace {
	tr, root := NewTrace("job-2", "job")
	defer root.End()
	return tr
}

// justified carries a suppression with a reason.
func justified(parent *Span, spans *[]*Span) {
	//mdsvet:ignore spanclose -- span deliberately left open; the trace test asserts open spans render
	sp := parent.StartChild("stage")
	*spans = append(*spans, nil)
	_ = sp.open
}
