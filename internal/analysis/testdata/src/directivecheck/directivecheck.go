// Package directivecheck exercises the directivecheck analyzer. The
// expectations are embedded at the end of the directive comments
// themselves (the harness finds the marker anywhere in a comment)
// because the diagnostics anchor on the directive's own line.
package directivecheck

// valid: named analyzer plus justification — silent.
func valid(m map[int]bool) int {
	//mdsvet:ignore mapiter boundedgo -- downstream consumer sorts the result
	return len(m)
}

// bare: no "-- reason" at all.
func bare(m map[int]bool) int {
	//mdsvet:ignore mapiter // want `malformed //mdsvet:ignore directive`
	return len(m)
}

// noName: justification but nothing named before it.
func noName() {
	//mdsvet:ignore -- lacks any analyzer name // want `missing analyzer name`
}

// unknown: valid shape, but the name is a typo that suppresses nothing.
func unknown() {
	//mdsvet:ignore mapitre -- sorted downstream // want `unknown analyzer "mapitre"`
}
