// Package errpath exercises the errpath analyzer. writeJSON is a
// stand-in for the service's central writer (the default value of
// -errpath.writers).
package errpath

import (
	"encoding/json"
	"net/http"
)

// writeJSON is the sanctioned central writer: direct WriteHeader and
// Encode are allowed inside it.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// badHandler bypasses the central writer three ways.
func badHandler(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest) // want `http.Error bypasses the service's central error writer`
	w.WriteHeader(http.StatusInternalServerError) // want `direct WriteHeader on an http.ResponseWriter`
	_ = json.NewEncoder(w).Encode("x")            // want `json.NewEncoder\(w\).Encode writes a response outside the central`
}

// goodHandler routes through the central writer.
func goodHandler(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"ok": "yes"})
}

// statusRecorder mimics the middleware's response recorder: a method
// itself named WriteHeader is a ResponseWriter implementation, not a
// bypass.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// justified streams its own header with a written reason.
func justified(w http.ResponseWriter, r *http.Request) {
	//mdsvet:ignore errpath -- streaming endpoint writes its own header before the body
	w.WriteHeader(http.StatusNoContent)
}

// notAWriter: Encode to something that is not a ResponseWriter is fine.
func notAWriter(v any) error {
	return json.NewEncoder(nil).Encode(v)
}
