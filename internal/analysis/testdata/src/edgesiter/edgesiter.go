// Package edgesiter exercises the edgesiter analyzer with a stand-in
// Graph type (the analyzer matches edge owners by type name).
package edgesiter

// Graph mimics localmds/internal/graph.Graph.
type Graph struct{ n int }

// Edges materializes the whole edge list — the pattern under guard.
func (g *Graph) Edges() [][2]int { return nil }

// VisitEdges is the allocation-free replacement.
func (g *Graph) VisitEdges(fn func(u, v int)) {}

// Other is not a graph type; its Edges method is unrelated.
type Other struct{}

func (o Other) Edges() [][2]int { return nil }

// flagged calls the allocating accessor on a graph.
func flagged(g *Graph) [][2]int {
	return g.Edges() // want `Graph.Edges\(\) allocates the whole edge list`
}

// visits uses the sanctioned iterator.
func visits(g *Graph) int {
	c := 0
	g.VisitEdges(func(u, v int) { c++ })
	return c
}

// otherEdges: Edges on a non-graph type is fine.
func otherEdges(o Other) [][2]int {
	return o.Edges()
}

// justified keeps a cold-path call with a written reason.
func justified(g *Graph) [][2]int {
	//mdsvet:ignore edgesiter -- one-shot export path, not hot
	return g.Edges()
}
