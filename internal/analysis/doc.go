// Package analysis holds the repo-specific static analyzers behind
// cmd/mdsvet. Every headline guarantee this reproduction makes —
// byte-identical experiment tables at any -parallel, pipeline/sequential
// output identity, content-addressed cache correctness keyed by
// graph.Fingerprint, and the daemon's deterministic rejection taxonomy —
// rests on coding rules that used to be enforced by hand. The analyzers
// turn those rules into machine-checked invariants:
//
//   - mapiter: no order-sensitive `for range` over maps in the
//     deterministic solver packages.
//   - seedflow: all randomness is seeded through gen.DeriveSeed /
//     experiments.TaskSeed; no global math/rand state, no clock seeds.
//   - errpath: internal/service handlers route every response through
//     the central writeJSON writer so the rejection taxonomy cannot be
//     bypassed.
//   - boundedgo: no unbounded `go` launches outside runner.Pool in
//     daemon/solver code, and no quota/semaphore acquire without a
//     matching release in the same function.
//   - edgesiter: no allocation-heavy Graph.Edges() calls in hot paths
//     (use VisitEdges/AppendEdges).
//   - directivecheck: every //mdsvet:ignore suppression names the
//     analyzer it silences and carries a written justification.
//
// A finding that is genuinely intended can be suppressed with
//
//	//mdsvet:ignore <analyzer> -- <reason>
//
// placed on the offending line or on its own line immediately above.
// Bare ignores (missing analyzer name or missing "-- reason") never
// suppress anything and are themselves flagged by directivecheck.
package analysis
