package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	goanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// MapIter flags `for range` statements over maps in the deterministic
// solver packages. Go randomizes map iteration order per run, so any
// map walk whose effect depends on visit order breaks the repo's
// bit-identical-output guarantees. A walk is accepted without a
// directive when it is provably order-insensitive:
//
//   - collect-then-sort: the body only appends to one slice, and the
//     next statement that touches that slice is a recognized sort call;
//   - commutative accumulation: every statement is an integer
//     counter/sum update, a min/max fold, a set insert with a constant
//     value, or a delete — effects that commute across iterations.
//
// Anything else needs //mdsvet:ignore mapiter -- <reason>.
var MapIter = &goanalysis.Analyzer{
	Name:     "mapiter",
	Doc:      "flag order-sensitive map iteration in deterministic solver packages",
	Requires: []*goanalysis.Analyzer{inspect.Analyzer},
	Run:      runMapIter,
}

func init() {
	MapIter.Flags.String("scope", deterministicPkgs,
		"comma-separated package-path prefixes to check (empty = all)")
}

func runMapIter(pass *goanalysis.Pass) (any, error) {
	scope := pass.Analyzer.Flags.Lookup("scope").Value.String()
	if !inScope(scope, pass.Pkg.Path()) {
		return nil, nil
	}
	ix := newIgnoreIndex(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		rs := n.(*ast.RangeStmt)
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if collectThenSort(pass, rs, stack) || commutativeBody(pass, rs) || quantifierBody(rs) {
			return true
		}
		ix.report(pass, "mapiter", rs.Range,
			"order-sensitive iteration over map: map order is randomized; "+
				"collect and sort the keys, make the body commutative, or add "+
				"//mdsvet:ignore mapiter -- <reason>")
		return true
	})
	return nil, nil
}

// collectThenSort accepts the canonical deterministic walk
//
//	for k := range m { s = append(s, k) }
//	sort.Ints(s)
//
// i.e. a body whose only order-relevant effect is one append into a
// slice variable, where the first following sibling statement that
// mentions the slice is a recognized sort call taking it as an
// argument. Besides the append, the body may contain recognized sort
// calls of its own (e.g. sorting each collected class in place): those
// commute across iterations.
func collectThenSort(pass *goanalysis.Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	var target *ast.Ident
	for _, st := range rs.Body.List {
		if t := appendTarget(st); t != nil {
			if target != nil {
				return false // two different collectors: too clever, flag it
			}
			target = t
			continue
		}
		if es, ok := st.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if pkg, ok := sel.X.(*ast.Ident); ok && sortFuncs[pkg.Name+"."+sel.Sel.Name] {
						continue
					}
				}
			}
		}
		return false
	}
	if target == nil {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(target)
	if obj == nil {
		return false
	}
	// Find the statement list directly containing the range loop.
	siblings, idx := siblingStmts(rs, stack)
	if siblings == nil {
		return false
	}
	for _, st := range siblings[idx+1:] {
		if !mentionsObject(pass, st, obj) {
			continue
		}
		return isSortOf(pass, st, obj)
	}
	return false
}

// appendTarget returns the slice identifier of a statement of the form
// `s = append(s, ...)`, or nil.
func appendTarget(st ast.Stmt) *ast.Ident {
	as, ok := st.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
		return nil
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) < 2 {
		return nil
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return nil
	}
	return lhs
}

// siblingStmts locates the statement list that directly contains rs.
func siblingStmts(rs *ast.RangeStmt, stack []ast.Node) ([]ast.Stmt, int) {
	for i := len(stack) - 2; i >= 0; i-- {
		var list []ast.Stmt
		switch parent := stack[i].(type) {
		case *ast.BlockStmt:
			list = parent.List
		case *ast.CaseClause:
			list = parent.Body
		case *ast.CommClause:
			list = parent.Body
		default:
			continue
		}
		for j, st := range list {
			if st == ast.Stmt(rs) {
				return list, j
			}
		}
		return nil, 0
	}
	return nil, 0
}

func mentionsObject(pass *goanalysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// sortFuncs are the recognized "makes the collected keys deterministic"
// calls: package sort and package slices sorters.
var sortFuncs = map[string]bool{
	"sort.Ints": true, "sort.Strings": true, "sort.Float64s": true,
	"sort.Sort": true, "sort.Stable": true, "sort.Slice": true,
	"sort.SliceStable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// isSortOf reports whether st is (or begins with) a recognized sort call
// that receives obj in its arguments.
func isSortOf(pass *goanalysis.Pass, st ast.Stmt, obj types.Object) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || !sortFuncs[pkg.Name+"."+sel.Sel.Name] {
		return false
	}
	for _, arg := range call.Args {
		if mentionsObject(pass, arg, obj) {
			return true
		}
	}
	return false
}

// commutativeBody reports whether every statement of the loop body has
// an iteration-order-independent effect.
func commutativeBody(pass *goanalysis.Pass, rs *ast.RangeStmt) bool {
	written := assignedObjects(pass, rs.Body)
	for _, st := range rs.Body.List {
		if !commutativeStmt(pass, st, written) {
			return false
		}
	}
	return len(rs.Body.List) > 0
}

// assignedObjects collects every object written (assigned, ++/--) inside
// the body. Conditions of accepted if-statements must not read these:
// `if sum < 100 { sum += v }` depends on visit order even though the
// branch body alone commutes.
func assignedObjects(pass *goanalysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	w := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if id := baseIdent(lhs); id != nil {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						w[obj] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if id := baseIdent(st.X); id != nil {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					w[obj] = true
				}
			}
		}
		return true
	})
	return w
}

// baseIdent unwraps x, x[i], x.f, *x to the root identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func commutativeStmt(pass *goanalysis.Pass, st ast.Stmt, written map[types.Object]bool) bool {
	switch s := st.(type) {
	case *ast.IncDecStmt:
		// count++ / count-- commute.
		return true
	case *ast.AssignStmt:
		return commutativeAssign(pass, s)
	case *ast.ExprStmt:
		// delete(m, k): removals of distinct keys commute.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "delete" {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil || s.Else != nil {
			return false
		}
		// `if v > best { best = v }` is the min/max fold: the guard reads
		// the accumulator, but the fold still commutes.
		if isMinMaxFold(pass, s) {
			return true
		}
		// Other guarded commutative updates are fine as long as the
		// guard does not read loop-written state.
		if readsAny(pass, s.Cond, written) {
			return false
		}
		for _, inner := range s.Body.List {
			if !commutativeStmt(pass, inner, written) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE && s.Label == nil
	default:
		return false
	}
}

// commutativeAssign accepts integer accumulators (+=, -=, |=, &=, ^=),
// min/max-style plain assigns `x = min(x, v)` / `x = max(x, v)`, and
// set inserts `m[k] = <literal>`. Floating-point accumulation is
// rejected: float addition is not associative, so visit order leaks
// into the low bits.
func commutativeAssign(pass *goanalysis.Pass, as *ast.AssignStmt) bool {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		t := pass.TypesInfo.TypeOf(as.Lhs[0])
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsInteger != 0
	case token.ASSIGN:
		// m[k] = true / m[k] = 1 / m[k] = struct{}{}: set semantics.
		if _, ok := as.Lhs[0].(*ast.IndexExpr); ok {
			switch rhs := as.Rhs[0].(type) {
			case *ast.BasicLit:
				return true
			case *ast.Ident:
				return rhs.Name == "true" || rhs.Name == "false"
			case *ast.CompositeLit:
				return len(rhs.Elts) == 0
			}
			return false
		}
		// x = min(x, v) / x = max(x, v) folds commute.
		if lhs, ok := as.Lhs[0].(*ast.Ident); ok {
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
				if fn, ok := call.Fun.(*ast.Ident); ok && (fn.Name == "min" || fn.Name == "max") {
					obj := pass.TypesInfo.ObjectOf(lhs)
					for _, arg := range call.Args {
						if mentionsObject(pass, arg, obj) {
							return true
						}
					}
				}
			}
		}
		return false
	default:
		return false
	}
}

// quantifierBody accepts pure ∀/∃ scans: loops whose only effect is a
// possible early return, with no assignments and no function calls in
// the body, and with every return statement in the loop returning the
// same loop-invariant results (literals or identifiers, which the
// no-assignment rule guarantees are not written by the loop). Whichever
// element triggers the return, the returned values are identical, so
// visit order cannot leak out. The canonical instance is
//
//	for _, rec := range records {
//		if !known(rec) { return false }
//	}
//	return true
func quantifierBody(rs *ast.RangeStmt) bool {
	var returns []*ast.ReturnStmt
	sawReturn := false
	ok := quantifierStmts(rs.Body.List, &returns)
	if !ok || len(rs.Body.List) == 0 {
		return false
	}
	for _, ret := range returns {
		for _, res := range ret.Results {
			switch res.(type) {
			case *ast.BasicLit, *ast.Ident:
			default:
				return false
			}
		}
		sawReturn = true
	}
	if !sawReturn {
		// No return at all means the body does nothing: not a
		// quantifier, let the other heuristics judge it.
		return false
	}
	// All return statements must be identical so that *which* element
	// triggers first cannot change the result.
	first := returns[0]
	for _, ret := range returns[1:] {
		if !sameReturn(first, ret) {
			return false
		}
	}
	return true
}

// quantifierStmts checks that every statement is side-effect-free
// control flow (nested loops, if without calls, break/continue) or a
// return, collecting the returns.
func quantifierStmts(list []ast.Stmt, returns *[]*ast.ReturnStmt) bool {
	for _, st := range list {
		switch s := st.(type) {
		case *ast.ReturnStmt:
			*returns = append(*returns, s)
		case *ast.IfStmt:
			if s.Else != nil || hasCall(s.Cond) || (s.Init != nil && hasCallStmt(s.Init)) {
				return false
			}
			if !quantifierStmts(s.Body.List, returns) {
				return false
			}
		case *ast.RangeStmt:
			// Inner ranges are fine (an inner map range is judged as its
			// own RangeStmt by the analyzer), as long as the operand
			// itself involves no call.
			if hasCall(s.X) {
				return false
			}
			if !quantifierStmts(s.Body.List, returns) {
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE && s.Tok != token.BREAK {
				return false
			}
		case *ast.BlockStmt:
			if !quantifierStmts(s.List, returns) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func hasCall(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

func hasCallStmt(st ast.Stmt) bool { return hasCall(st) }

// sameReturn reports whether two return statements return syntactically
// identical literals/identifiers.
func sameReturn(a, b *ast.ReturnStmt) bool {
	if len(a.Results) != len(b.Results) {
		return false
	}
	for i := range a.Results {
		switch x := a.Results[i].(type) {
		case *ast.BasicLit:
			y, ok := b.Results[i].(*ast.BasicLit)
			if !ok || x.Value != y.Value || x.Kind != y.Kind {
				return false
			}
		case *ast.Ident:
			y, ok := b.Results[i].(*ast.Ident)
			if !ok || x.Name != y.Name {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// isMinMaxFold accepts `if a OP b { x = e }` where OP is an ordering
// comparison, the body is a single plain assignment, and the assigned
// variable sits on one side of the comparison with the assigned value on
// the other — the canonical running-min/max update.
func isMinMaxFold(pass *goanalysis.Pass, s *ast.IfStmt) bool {
	cmp, ok := s.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cmp.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	if len(s.Body.List) != 1 {
		return false
	}
	as, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs := baseIdent(as.Lhs[0])
	rhs := baseIdent(as.Rhs[0])
	if lhs == nil || rhs == nil {
		return false
	}
	lobj, robj := pass.TypesInfo.ObjectOf(lhs), pass.TypesInfo.ObjectOf(rhs)
	if lobj == nil || robj == nil {
		return false
	}
	sides := [2]ast.Expr{cmp.X, cmp.Y}
	for i, acc := range sides {
		val := sides[1-i]
		if mentionsObject(pass, acc, lobj) && mentionsObject(pass, val, robj) {
			return true
		}
	}
	return false
}

// readsAny reports whether expr references any of the given objects.
func readsAny(pass *goanalysis.Pass, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
