// Package atest is a minimal, offline stand-in for
// golang.org/x/tools/go/analysis/analysistest: it loads a testdata
// package with go/parser + go/types (source importer, no network, no
// export data), runs one analyzer over it, and checks the reported
// diagnostics against analysistest-style "// want" comments.
//
// The real analysistest depends on go/packages, which is not part of
// the x/tools subset the Go toolchain vendors (the only x/tools copy
// available in this repo's offline build). The subset of behavior the
// analyzer tests rely on is identical:
//
//   - a comment `// want "re1" "re2"` (double-quoted or backquoted Go
//     string literals holding regexps) expects exactly one diagnostic
//     per literal on that comment's line;
//   - every diagnostic must match a want, every want must be matched;
//   - the marker may appear embedded at the end of another comment,
//     which lets directives themselves carry expectations.
package atest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	goanalysis "golang.org/x/tools/go/analysis"
)

// sharedFset is one FileSet for every load in the test binary: the
// source importer caches typechecked stdlib packages against it, so
// net/http is only typechecked once across all analyzer tests.
var (
	sharedFset     = token.NewFileSet()
	sharedImporter = importer.ForCompiler(sharedFset, "source", nil)
	loadMu         sync.Mutex
)

// Run loads testdata/src/<pkg> relative to the caller's directory,
// applies the given analyzer flags (restoring them afterwards), runs
// the analyzer, and compares diagnostics against the package's want
// comments.
func Run(t *testing.T, a *goanalysis.Analyzer, pkg string, flags map[string]string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	files, fset := parseDir(t, dir)
	info := newInfo()
	conf := types.Config{Importer: sharedImporter}
	loadMu.Lock()
	tpkg, err := conf.Check(pkg, fset, files, info)
	loadMu.Unlock()
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}

	restore := setFlags(t, a, flags)
	defer restore()

	var diags []goanalysis.Diagnostic
	pass := &goanalysis.Pass{
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   map[*goanalysis.Analyzer]any{},
		Report:     func(d goanalysis.Diagnostic) { diags = append(diags, d) },
	}
	runWithRequires(t, a, pass)

	checkDiagnostics(t, fset, files, diags)
}

func parseDir(t *testing.T, dir string) ([]*ast.File, *token.FileSet) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read testdata dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}
	return files, sharedFset
}

func newInfo() *types.Info {
	return &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Instances:    map[*ast.Ident]types.Instance{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		FileVersions: map[*ast.File]string{},
	}
}

// setFlags applies flag overrides and returns a restorer.
func setFlags(t *testing.T, a *goanalysis.Analyzer, flags map[string]string) func() {
	t.Helper()
	old := map[string]string{}
	for name, val := range flags {
		f := a.Flags.Lookup(name)
		if f == nil {
			t.Fatalf("analyzer %s has no flag %q", a.Name, name)
		}
		old[name] = f.Value.String()
		if err := f.Value.Set(val); err != nil {
			t.Fatalf("set -%s.%s=%q: %v", a.Name, name, val, err)
		}
	}
	return func() {
		for name, val := range old {
			_ = a.Flags.Lookup(name).Value.Set(val)
		}
	}
}

// runWithRequires runs the analyzer's Requires closure in dependency
// order (facts are not supported — none of the repo's analyzers use
// them), then the analyzer itself, all sharing one pass skeleton.
func runWithRequires(t *testing.T, a *goanalysis.Analyzer, pass *goanalysis.Pass) {
	t.Helper()
	var run func(dep *goanalysis.Analyzer, report bool)
	run = func(dep *goanalysis.Analyzer, report bool) {
		if _, done := pass.ResultOf[dep]; done {
			return
		}
		for _, sub := range dep.Requires {
			run(sub, false)
		}
		p := *pass
		p.Analyzer = dep
		if !report {
			p.Report = func(goanalysis.Diagnostic) {}
		}
		res, err := dep.Run(&p)
		if err != nil {
			t.Fatalf("analyzer %s: %v", dep.Name, err)
		}
		pass.ResultOf[dep] = res
	}
	run(a, true)
}

// wantExpectation is one "// want" regexp at a source line.
type wantExpectation struct {
	re   *regexp.Regexp
	raw  string
	used bool
}

// stringLitRe extracts Go string literals (double- or back-quoted)
// following a want marker.
var stringLitRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants scans every comment for the `// want` marker.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string]map[int][]*wantExpectation {
	t.Helper()
	wants := map[string]map[int][]*wantExpectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				rest := c.Text[idx+len("// want "):]
				lits := stringLitRe.FindAllString(rest, -1)
				if len(lits) == 0 {
					t.Errorf("%s: want marker with no string literals", fset.Position(c.Pos()))
					continue
				}
				p := fset.Position(c.Pos())
				m := wants[p.Filename]
				if m == nil {
					m = map[int][]*wantExpectation{}
					wants[p.Filename] = m
				}
				for _, lit := range lits {
					var s string
					var err error
					if lit[0] == '`' {
						s = lit[1 : len(lit)-1]
					} else if s, err = strconv.Unquote(lit); err != nil {
						t.Errorf("%s: bad want literal %s: %v", p, lit, err)
						continue
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", p, s, err)
						continue
					}
					m[p.Line] = append(m[p.Line], &wantExpectation{re: re, raw: s})
				}
			}
		}
	}
	return wants
}

func checkDiagnostics(t *testing.T, fset *token.FileSet, files []*ast.File, diags []goanalysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
	for _, d := range diags {
		p := fset.Position(d.Pos)
		matched := false
		for _, w := range wants[p.Filename][p.Line] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	for file, byLine := range wants {
		for line, ws := range byLine {
			for _, w := range ws {
				if !w.used {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, w.raw)
				}
			}
		}
	}
}
