package analysis

import "strings"

// Default scopes. Analyzer scopes are comma-separated package-path
// prefixes exposed as a -<analyzer>.scope flag so the driver, CI, and
// tests all agree on where an invariant applies. The empty string means
// "every package" (used by the analysistest harness, whose synthetic
// packages have arbitrary paths).
const (
	// deterministicPkgs are the solver packages whose outputs must be
	// bit-identical across runs, worker counts, and Go versions.
	deterministicPkgs = "localmds/internal/core,localmds/internal/mds," +
		"localmds/internal/cuts,localmds/internal/graph,localmds/internal/gen," +
		"localmds/internal/experiments,localmds/internal/spqr,localmds/internal/ding"

	// seedScope adds the packages that construct RNGs on behalf of the
	// solvers: the sweep orchestrator and the daemon's request parser.
	seedScope = deterministicPkgs + ",localmds/internal/local," +
		"localmds/internal/runner,localmds/internal/service"

	// serviceScope is where the deterministic HTTP rejection taxonomy
	// lives, plus the durable store's byte-offset error taxonomy and the
	// remote client's retry classification.
	serviceScope = "localmds/internal/service,localmds/internal/store," +
		"localmds/cmd/mdsctl"

	// goroutineScope is the daemon/solver code where every goroutine
	// must come from a bounded pool. internal/runner is deliberately
	// absent: it implements the sanctioned pool primitives.
	goroutineScope = "localmds/internal/core,localmds/internal/mds," +
		"localmds/internal/local,localmds/internal/service,localmds/internal/obs," +
		"localmds/cmd/mdsd,localmds/internal/store,localmds/cmd/mdsctl"

	// spanScope is everywhere spans are minted: the obs package itself,
	// the pipeline drivers that accept TraceHooks, the daemon, and the
	// CLI's -trace path.
	spanScope = "localmds/internal/obs,localmds/internal/core," +
		"localmds/internal/service,localmds/cmd/mdsd,localmds/cmd/mdsrun"

	// hotPathPkgs is where allocation-heavy Graph.Edges() calls are
	// banned in favor of VisitEdges/AppendEdges.
	hotPathPkgs = deterministicPkgs + ",localmds/internal/local,localmds/internal/service"
)

// inScope reports whether pkgPath falls under the comma-separated list
// of package-path prefixes. An empty list matches everything; an entry
// matches its own package and any subpackage.
func inScope(scopeCSV, pkgPath string) bool {
	if scopeCSV == "" {
		return true
	}
	for _, p := range strings.Split(scopeCSV, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}
