package analysis_test

import (
	"testing"

	"localmds/internal/analysis"
	"localmds/internal/analysis/atest"
)

// all is scope="": testdata packages have short paths like "mapiter",
// so tests open the scope gate and verify it separately in the *Scope
// tests below.
var all = map[string]string{"scope": ""}

func TestMapIter(t *testing.T)   { atest.Run(t, analysis.MapIter, "mapiter", all) }
func TestSeedFlow(t *testing.T)  { atest.Run(t, analysis.SeedFlow, "seedflow", all) }
func TestErrPath(t *testing.T)   { atest.Run(t, analysis.ErrPath, "errpath", all) }
func TestBoundedGo(t *testing.T) { atest.Run(t, analysis.BoundedGo, "boundedgo", all) }
func TestEdgesIter(t *testing.T) { atest.Run(t, analysis.EdgesIter, "edgesiter", all) }
func TestSpanClose(t *testing.T) { atest.Run(t, analysis.SpanClose, "spanclose", all) }

// DirectiveCheck has no scope flag: it validates directives everywhere.
func TestDirectiveCheck(t *testing.T) {
	atest.Run(t, analysis.DirectiveCheck, "directivecheck", nil)
}

// TestScopeGate runs mapiter over a package full of violations with a
// scope that excludes it: no want comments, so any diagnostic fails.
func TestScopeGate(t *testing.T) {
	atest.Run(t, analysis.MapIter, "scoped",
		map[string]string{"scope": "localmds/internal/core"})
}

// TestScopeDefaultsNonEmpty guards against an analyzer accidentally
// shipping with an empty (match-everything) default scope.
func TestScopeDefaultsNonEmpty(t *testing.T) {
	for _, a := range analysis.Analyzers() {
		if a.Name == "directivecheck" {
			continue // global by design
		}
		f := a.Flags.Lookup("scope")
		if f == nil {
			t.Errorf("%s: no scope flag", a.Name)
			continue
		}
		if f.Value.String() == "" {
			t.Errorf("%s: default scope is empty (would check the whole build)", a.Name)
		}
	}
}
