package analysis

import (
	"go/ast"
	"go/token"
	"strings"

	goanalysis "golang.org/x/tools/go/analysis"
)

// directivePrefix introduces a suppression comment. The full grammar is
//
//	//mdsvet:ignore <name> [<name>...] -- <reason>
//
// where each <name> is an analyzer name and <reason> is free nonempty
// text. A directive suppresses findings of the named analyzers on its
// own line and on the line immediately below, so it works both trailing
// the offending statement and standing alone above it.
const directivePrefix = "mdsvet:ignore"

// ignoreDirective is one parsed //mdsvet:ignore comment.
type ignoreDirective struct {
	names  []string // analyzers silenced; empty when malformed
	reason string
	// malformed explains why the directive is invalid ("" when valid).
	// Malformed directives suppress nothing: a bare ignore must not
	// have the power of a justified one.
	malformed string
	pos       token.Pos
	file      string
	line      int
}

// parseIgnoreDirective parses the text of one comment (without the
// leading "//"). Returns nil if the comment is not an mdsvet directive
// at all.
func parseIgnoreDirective(text string) *ignoreDirective {
	if !strings.HasPrefix(text, directivePrefix) {
		return nil
	}
	rest := text[len(directivePrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. "mdsvet:ignorexyz" — some other token.
		return nil
	}
	d := &ignoreDirective{}
	names, reason, found := strings.Cut(rest, "--")
	if !found {
		d.malformed = `missing "-- reason" justification`
		return d
	}
	d.names = strings.Fields(names)
	if len(d.names) == 0 {
		d.malformed = `missing analyzer name before "--"`
		return d
	}
	d.reason = strings.TrimSpace(reason)
	if d.reason == "" {
		d.malformed = `empty justification after "--"`
		return d
	}
	return d
}

// ignoreIndex holds every directive of one pass, keyed by file and line.
type ignoreIndex struct {
	fset *token.FileSet
	// byLine maps file -> line -> directives covering that line.
	byLine map[string]map[int][]*ignoreDirective
	all    []*ignoreDirective
}

// newIgnoreIndex scans all files of the pass for mdsvet directives.
func newIgnoreIndex(pass *goanalysis.Pass) *ignoreIndex {
	ix := &ignoreIndex{fset: pass.Fset, byLine: map[string]map[int][]*ignoreDirective{}}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments are never directives
				}
				d := parseIgnoreDirective(text)
				if d == nil {
					continue
				}
				p := pass.Fset.Position(c.Slash)
				d.pos, d.file, d.line = c.Slash, p.Filename, p.Line
				ix.add(d, d.line)
				ix.add(d, d.line+1)
				ix.all = append(ix.all, d)
			}
		}
	}
	return ix
}

func (ix *ignoreIndex) add(d *ignoreDirective, line int) {
	m := ix.byLine[d.file]
	if m == nil {
		m = map[int][]*ignoreDirective{}
		ix.byLine[d.file] = m
	}
	m[line] = append(m[line], d)
}

// suppressed reports whether a valid directive covering pos names the
// analyzer.
func (ix *ignoreIndex) suppressed(analyzer string, pos token.Pos) bool {
	p := ix.fset.Position(pos)
	for _, d := range ix.byLine[p.Filename][p.Line] {
		if d.malformed != "" {
			continue
		}
		for _, n := range d.names {
			if n == analyzer {
				return true
			}
		}
	}
	return false
}

// report emits a diagnostic unless a directive suppresses it or the
// position is in a test file.
func (ix *ignoreIndex) report(pass *goanalysis.Pass, analyzer string, pos token.Pos, msg string) {
	if inTestFile(pass, pos) || ix.suppressed(analyzer, pos) {
		return
	}
	pass.Reportf(pos, "%s", msg)
}

// inTestFile reports whether pos lies in a *_test.go file. The repo's
// invariants guard production solver/daemon paths; tests may use ad-hoc
// randomness and raw goroutines freely.
func inTestFile(pass *goanalysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// enclosingFunc returns the innermost function literal or declaration
// body in stack containing the node, along with its name ("" for
// literals).
func enclosingFunc(stack []ast.Node) (body *ast.BlockStmt, name string) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return fn.Body, ""
		case *ast.FuncDecl:
			return fn.Body, fn.Name.Name
		}
	}
	return nil, ""
}
