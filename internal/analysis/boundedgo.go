package analysis

import (
	"go/ast"

	goanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// BoundedGo enforces two concurrency-hygiene rules in daemon/solver
// code:
//
//  1. No bare `go` statements: goroutines must come from runner.Pool
//     (or another audited bounded pool carrying a justification
//     directive). An unbounded launch in a request path is how a
//     traffic spike becomes an OOM.
//  2. A function that acquires a quota/semaphore slot (tryAcquireJob,
//     Acquire, TryAcquire) must also release it (releaseJob, Release)
//     — by defer or on every exit path; a function with an acquire and
//     no textual release at all is certainly leaking slots.
//
// internal/runner is out of scope by default: it implements the
// sanctioned pool primitives.
var BoundedGo = &goanalysis.Analyzer{
	Name:     "boundedgo",
	Doc:      "flag unbounded goroutine launches and acquire-without-release",
	Requires: []*goanalysis.Analyzer{inspect.Analyzer},
	Run:      runBoundedGo,
}

func init() {
	BoundedGo.Flags.String("scope", goroutineScope,
		"comma-separated package-path prefixes to check (empty = all)")
}

// acquireNames / releaseNames pair the repo's quota pattern
// (tryAcquireJob/releaseJob on tenantState) with the generic
// semaphore vocabulary so future sync/semaphore use is covered too.
var (
	acquireNames = map[string]bool{"tryAcquireJob": true, "Acquire": true, "TryAcquire": true}
	releaseNames = map[string]bool{"releaseJob": true, "Release": true}
)

func runBoundedGo(pass *goanalysis.Pass) (any, error) {
	scope := pass.Analyzer.Flags.Lookup("scope").Value.String()
	if !inScope(scope, pass.Pkg.Path()) {
		return nil, nil
	}
	ix := newIgnoreIndex(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	insp.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		ix.report(pass, "boundedgo", n.Pos(),
			"bare goroutine launch outside runner.Pool: submit to a bounded "+
				"pool, or justify with //mdsvet:ignore boundedgo -- <reason>")
	})

	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || inTestFile(pass, fd.Pos()) {
			return
		}
		acquire := firstCallNamed(fd.Body, acquireNames)
		if acquire == nil {
			return
		}
		if firstCallNamed(fd.Body, releaseNames) != nil {
			return
		}
		// Functions that merely *define* the pattern (the acquire
		// helper itself) are matched by name, not by call, so they do
		// not trip this.
		ix.report(pass, "boundedgo", acquire.Pos(),
			"quota/semaphore slot acquired but never released in this function; "+
				"pair the acquire with a defer'd release")
	})
	return nil, nil
}

// firstCallNamed returns the first call in body whose callee's bare name
// (method or function) is in names, or nil.
func firstCallNamed(body *ast.BlockStmt, names map[string]bool) ast.Expr {
	var found ast.Expr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		}
		if names[name] {
			found = call
		}
		return true
	})
	return found
}
