package runner

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"localmds/internal/experiments"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4, 2)
	var sum atomic.Int64
	var wg sync.WaitGroup
	for i := 1; i <= 100; i++ {
		wg.Add(1)
		p.Submit(func() { defer wg.Done(); sum.Add(int64(i)) })
	}
	wg.Wait()
	if got := sum.Load(); got != 5050 {
		t.Fatalf("sum = %d, want 5050", got)
	}
	if p.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", p.Pending())
	}
	p.Close()
	p.Close() // idempotent
}

func TestPoolTrySubmitShedsLoad(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	p.Submit(func() { defer wg.Done(); close(started); <-block }) // occupies the worker
	<-started
	// Fill the queue slot, then expect rejection.
	accepted := 0
	for i := 0; i < 10; i++ {
		if p.TrySubmit(func() {}) {
			accepted++
		}
	}
	if accepted != 1 {
		t.Fatalf("TrySubmit accepted %d tasks with one queue slot, want 1", accepted)
	}
	if d := p.Pending(); d < 2 {
		t.Fatalf("Pending = %d, want >= 2 (running + queued)", d)
	}
	close(block)
	wg.Wait()
	p.Close()
	if p.Pending() != 0 {
		t.Fatalf("Pending = %d after Close, want 0", p.Pending())
	}
}

func TestTrySubmitAfterCloseSheds(t *testing.T) {
	p := NewPool(1, 1)
	p.Close()
	if p.TrySubmit(func() {}) {
		t.Fatal("TrySubmit accepted work on a closed pool")
	}
	if p.Pending() != 0 {
		t.Fatalf("Pending = %d on a closed pool", p.Pending())
	}
}

func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(2, 8)
	var done atomic.Int64
	for i := 0; i < 20; i++ {
		p.Submit(func() { time.Sleep(time.Millisecond); done.Add(1) })
	}
	p.Close() // must block until all 20 finished
	if got := done.Load(); got != 20 {
		t.Fatalf("Close returned with %d/20 tasks finished", got)
	}
}

func TestWithTimeout(t *testing.T) {
	// No bounds: runs inline.
	v, err := WithTimeout(context.Background(), 0, func() (int, error) { return 7, nil })
	if v != 7 || err != nil {
		t.Fatalf("inline: got %d, %v", v, err)
	}
	// Deadline trips.
	start := time.Now()
	_, err = WithTimeout(context.Background(), 10*time.Millisecond, func() (int, error) {
		time.Sleep(5 * time.Second)
		return 0, nil
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout did not return early")
	}
	// Context cancellation trips.
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	_, err = WithTimeout(ctx, time.Minute, func() (int, error) {
		time.Sleep(5 * time.Second)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Fast function beats a generous deadline.
	v, err = WithTimeout(context.Background(), time.Minute, func() (int, error) { return 3, nil })
	if v != 3 || err != nil {
		t.Fatalf("bounded fast path: got %d, %v", v, err)
	}
}

// stallSpec is one spec whose named row blocks until its per-run release
// channel closes; the others return instantly.
func stallSpec(stallRow string, release <-chan struct{}) experiments.Spec {
	s := experiments.Spec{Name: "stall", Title: "stall", Header: []string{"row"}}
	for i := 0; i < 6; i++ {
		row := "row" + strconv.Itoa(i)
		s.Tasks = append(s.Tasks, experiments.Task{
			Row: row,
			Run: func(seed int64) ([][]string, error) {
				if row == stallRow {
					<-release
				}
				return [][]string{{row}}, nil
			},
		})
	}
	return s
}

func TestRunnerTaskTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	r := New(Options{Workers: 2, TaskTimeout: 20 * time.Millisecond})
	_, err := r.Run([]experiments.Spec{stallSpec("row3", release)})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	// The error names the offending cell.
	if err == nil || !containsAll(err.Error(), "stall", "row3") {
		t.Fatalf("timeout error should identify the task, got %v", err)
	}
}

func TestRunnerContextCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	r := New(Options{Workers: 2})
	_, err := r.RunContext(ctx, []experiments.Spec{stallSpec("row0", release)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
