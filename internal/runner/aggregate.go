package runner

import (
	"fmt"
	"math"
	"strconv"

	"localmds/internal/experiments"
)

// aggregateRows merges the per-replicate row blocks of one task into one
// block. With one replicate the rows pass through untouched, which keeps
// the default output of every existing consumer byte-stable. With more,
// every cell is aggregated across replicates via aggregateCell; all
// replicates must agree on the block's shape (they ran the same task body,
// only the seed differed).
func aggregateRows(reps [][][]string) ([][]string, error) {
	if len(reps) == 1 {
		return reps[0], nil
	}
	nRows := len(reps[0])
	for i, rows := range reps {
		if len(rows) != nRows {
			return nil, fmt.Errorf("replicate %d produced %d rows, replicate 0 produced %d", i, len(rows), nRows)
		}
	}
	out := make([][]string, nRows)
	for ri := 0; ri < nRows; ri++ {
		nCells := len(reps[0][ri])
		for i, rows := range reps {
			if len(rows[ri]) != nCells {
				return nil, fmt.Errorf("replicate %d row %d has %d cells, replicate 0 has %d", i, ri, len(rows[ri]), nCells)
			}
		}
		row := make([]string, nCells)
		vals := make([]string, len(reps))
		for ci := 0; ci < nCells; ci++ {
			for i, rows := range reps {
				vals[i] = rows[ri][ci]
			}
			row[ci] = aggregateCell(vals)
		}
		out[ri] = row
	}
	return out, nil
}

// aggregateCell merges one cell across replicates. Cells that are
// identical in every replicate (paper bounds, class names, fixed sizes)
// pass through verbatim. Cells whose leading number varies (measured
// ratios, rounds, counts) aggregate to "mean ±stddev [min..max]" over the
// leading numbers. Non-numeric divergent cells (e.g. a bound check that
// failed in some replicates) report the replicate-0 value with a
// divergence count, never hiding the disagreement.
func aggregateCell(vals []string) string {
	identical := true
	for _, v := range vals[1:] {
		if v != vals[0] {
			identical = false
			break
		}
	}
	if identical {
		return vals[0]
	}
	nums := make([]float64, len(vals))
	for i, v := range vals {
		f, ok := experiments.LeadingFloat(v)
		if !ok {
			same := 0
			for _, w := range vals {
				if w == vals[0] {
					same++
				}
			}
			return fmt.Sprintf("%s ⟨%d/%d⟩", vals[0], same, len(vals))
		}
		nums[i] = f
	}
	mean, sd, lo, hi := summarize(nums)
	return fmt.Sprintf("%s ±%s [%s..%s]", fmtFloat(mean), fmtFloat(sd), fmtFloat(lo), fmtFloat(hi))
}

// summarize returns the mean, sample standard deviation, min and max.
func summarize(nums []float64) (mean, sd, lo, hi float64) {
	lo, hi = nums[0], nums[0]
	for _, v := range nums {
		mean += v
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	mean /= float64(len(nums))
	for _, v := range nums {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(len(nums)-1))
	return mean, sd, lo, hi
}

// fmtFloat renders an aggregate compactly: integers without a fraction,
// everything else with up to four significant digits.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}
