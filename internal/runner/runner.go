// Package runner is the concurrent experiment orchestrator: it decomposes
// experiment Specs (internal/experiments) into independent tasks with
// deterministically derived per-task seeds, executes them on a bounded
// worker pool, replicates each task across seeds with mean/stddev/min/max
// aggregation, and caches completed task results so repeated sweeps skip
// identical work.
//
// Output is independent of the worker count by construction: every
// (experiment, task, replicate) cell derives its own seed via
// experiments.TaskSeed, tasks share no mutable state, and tables are
// assembled in declaration order from an index-addressed result slice —
// never in completion order.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"localmds/internal/experiments"
)

// Options configures a Runner.
type Options struct {
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Replicates is the number of independently seeded runs per task;
	// <= 0 means 1. Replicate rows are aggregated cell-wise (see
	// aggregateCell).
	Replicates int
	// RootSeed is the root of the per-task seed derivation tree.
	RootSeed int64
	// TaskTimeout bounds each task execution (0 = unbounded): a task that
	// exceeds it fails the sweep with an ErrTimeout-wrapped error instead
	// of stalling it. The abandoned computation finishes in the
	// background; see WithTimeout.
	TaskTimeout time.Duration
}

// Runner executes experiment specs on a worker pool with a persistent
// result cache. A Runner is safe for sequential reuse across Run calls
// (that is what makes the cache useful); Run itself fans tasks out
// internally.
type Runner struct {
	opts  Options
	cache *cache
}

// New returns a Runner with the given options and an empty cache.
func New(opts Options) *Runner {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Replicates <= 0 {
		opts.Replicates = 1
	}
	return &Runner{opts: opts, cache: newCache()}
}

// CacheStats reports cache hits and misses accumulated over all Run calls.
func (r *Runner) CacheStats() (hits, misses int) {
	return r.cache.stats()
}

// job is one (spec, task, replicate) execution cell.
type job struct {
	spec, task, rep int
	seed            int64
}

// Run executes every task of every spec (times Replicates) on the worker
// pool and assembles one table per spec, in declaration order. The result
// is byte-identical for a fixed RootSeed regardless of Workers.
func (r *Runner) Run(specs []experiments.Spec) ([]*experiments.Table, error) {
	return r.RunContext(context.Background(), specs)
}

// RunContext is Run bounded by ctx: cancellation skips every task not yet
// started and fails the sweep with the context error. Tasks already
// running are abandoned per WithTimeout (their computation completes in
// the background, results discarded).
func (r *Runner) RunContext(ctx context.Context, specs []experiments.Spec) ([]*experiments.Table, error) {
	var jobs []job
	for si, s := range specs {
		for ti, task := range s.Tasks {
			for rep := 0; rep < r.opts.Replicates; rep++ {
				jobs = append(jobs, job{
					spec: si, task: ti, rep: rep,
					seed: experiments.TaskSeed(r.opts.RootSeed, s.Name, task.Row, rep),
				})
			}
		}
	}

	results := make([][][]string, len(jobs))
	errs := make([]error, len(jobs))
	var failed atomic.Bool // once set, remaining jobs are skipped: the sweep is doomed
	pool := NewPool(r.opts.Workers, 0)
	var wg sync.WaitGroup
	for idx := range jobs {
		wg.Add(1)
		pool.Submit(func() {
			defer wg.Done()
			if failed.Load() {
				return
			}
			if err := ctx.Err(); err != nil {
				errs[idx] = err
				failed.Store(true)
				return
			}
			j := jobs[idx]
			spec := specs[j.spec]
			task := spec.Tasks[j.task]
			key := cacheKey(spec.Name, task.Row, j.seed, task.Params)
			if rows, ok := r.cache.get(key); ok {
				results[idx] = rows
				return
			}
			rows, err := WithTimeout(ctx, r.opts.TaskTimeout, func() ([][]string, error) {
				return task.Run(j.seed)
			})
			if err != nil {
				errs[idx] = fmt.Errorf("%s/%s (replicate %d, seed %d): %w",
					spec.Name, task.Row, j.rep, j.seed, err)
				failed.Store(true)
				return
			}
			r.cache.put(key, rows)
			results[idx] = rows
		})
	}
	wg.Wait()
	pool.Close()

	// Report the first error in job order, not completion order. (With
	// several near-simultaneous failures the abort flag may let different
	// subsets of them materialize across runs; each run still reports the
	// earliest of the errors it saw.)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	tables := make([]*experiments.Table, len(specs))
	idx := 0
	for si, s := range specs {
		t := &experiments.Table{Title: s.Title, Header: s.Header}
		for ti := range s.Tasks {
			reps := make([][][]string, r.opts.Replicates)
			for rep := 0; rep < r.opts.Replicates; rep++ {
				reps[rep] = results[idx]
				idx++
			}
			rows, err := aggregateRows(reps)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", s.Name, s.Tasks[ti].Row, err)
			}
			t.Rows = append(t.Rows, rows...)
		}
		tables[si] = t
	}
	return tables, nil
}
