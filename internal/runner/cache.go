package runner

import (
	"fmt"
	"sync"
)

// cacheKey fingerprints one task execution: a repeated sweep that asks for
// the same (experiment, row, seed, params) cell is interchangeable with
// the cached one, whatever run it came from.
func cacheKey(experiment, row string, seed int64, params string) string {
	return fmt.Sprintf("%s\x00%s\x00%d\x00%s", experiment, row, seed, params)
}

// cache is the concurrency-safe completed-task store.
type cache struct {
	mu           sync.Mutex
	rows         map[string][][]string
	hits, misses int
}

func newCache() *cache {
	return &cache{rows: map[string][][]string{}}
}

// get returns a deep copy of the cached rows so callers can never mutate
// the stored result.
func (c *cache) get(key string) ([][]string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rows, ok := c.rows[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	return copyRows(rows), true
}

func (c *cache) put(key string, rows [][]string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rows[key] = copyRows(rows)
}

func (c *cache) stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func copyRows(rows [][]string) [][]string {
	out := make([][]string, len(rows))
	for i, row := range rows {
		out[i] = append([]string(nil), row...)
	}
	return out
}
