package runner

import (
	"context"
	"fmt"
	"time"
)

// ErrTimeout wraps every deadline failure produced by WithTimeout so
// callers can classify it with errors.Is.
var ErrTimeout = fmt.Errorf("task timed out")

// WithTimeout runs fn, bounding it by the timeout (when > 0) and by ctx.
// When neither bound exists fn runs inline; otherwise it runs on its own
// goroutine and WithTimeout returns early with an error if the bound
// trips first. An abandoned fn keeps running to completion in the
// background — its result is discarded — so one pathological task can
// never stall the sweep or the daemon's queue, at the cost of its
// goroutine until it finishes. fn must therefore not hold locks the
// caller needs.
func WithTimeout[T any](ctx context.Context, timeout time.Duration, fn func() (T, error)) (T, error) {
	if timeout <= 0 && ctx.Done() == nil {
		return fn()
	}
	type outcome struct {
		val T
		err error
	}
	ch := make(chan outcome, 1) // buffered: the abandoned goroutine must not leak forever on send
	go func() {
		val, err := fn()
		ch <- outcome{val, err}
	}()
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	var zero T
	select {
	case o := <-ch:
		return o.val, o.err
	case <-deadline:
		return zero, fmt.Errorf("%w after %v", ErrTimeout, timeout)
	case <-ctx.Done():
		return zero, ctx.Err()
	}
}
