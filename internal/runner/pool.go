package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool with an optional bounded submission queue.
// It is the shared execution machinery of the repository's two schedulers:
// Runner fans experiment sweeps out over a transient Pool, and the mdsd
// service holds one long-lived Pool as its job queue. A Pool is safe for
// concurrent Submit/TrySubmit from any number of goroutines.
type Pool struct {
	tasks   chan func()
	wg      sync.WaitGroup
	workers int
	pending atomic.Int64 // accepted but not yet finished

	// mu orders submissions against Close: submitters hold the read lock
	// across their channel send so Close can never close the channel out
	// from under an in-flight send (a "send on closed channel" panic).
	mu     sync.RWMutex
	closed bool
}

// NewPool starts workers goroutines consuming a queue of the given
// capacity. workers <= 0 means GOMAXPROCS; queue <= 0 means an unbuffered
// hand-off (Submit blocks until a worker is free, TrySubmit accepts only
// when one is idle).
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{tasks: make(chan func(), queue), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
				p.pending.Add(-1)
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Submit enqueues fn, blocking while the queue is full. Calling Submit
// after Close is a caller bug and panics with a clear message; callers
// that race shutdown must use TrySubmit instead.
func (p *Pool) Submit(fn func()) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		panic("runner: Submit on a closed Pool")
	}
	p.pending.Add(1)
	p.tasks <- fn
}

// TrySubmit enqueues fn if the queue has room and reports whether it was
// accepted. The service uses it to shed load instead of stalling clients.
// TrySubmit is safe to race Close: on a closed pool it reports false.
func (p *Pool) TrySubmit(fn func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	p.pending.Add(1)
	select {
	case p.tasks <- fn:
		return true
	default:
		p.pending.Add(-1)
		return false
	}
}

// Pending returns the number of accepted tasks that have not finished yet
// (queued plus running) — the service's queue-depth metric.
func (p *Pool) Pending() int {
	return int(p.pending.Load())
}

// Close stops accepting work and blocks until every accepted task has
// finished — the drain step of a graceful shutdown. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
