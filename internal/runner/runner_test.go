package runner

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"localmds/internal/experiments"
)

// countingSpec returns a spec whose tasks record how often they ran and
// emit cells derived from their seed, so output differences across worker
// counts or cache states are visible.
func countingSpec(name string, tasks int, runs *atomic.Int64) experiments.Spec {
	s := experiments.Spec{Name: name, Title: name, Header: []string{"row", "seed"}}
	for i := 0; i < tasks; i++ {
		row := fmt.Sprintf("task%d", i)
		s.Tasks = append(s.Tasks, experiments.Task{Row: row, Run: func(seed int64) ([][]string, error) {
			runs.Add(1)
			return [][]string{{row, fmt.Sprint(seed % 1000)}}, nil
		}})
	}
	return s
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	var runs atomic.Int64
	specs := func() []experiments.Spec {
		return []experiments.Spec{
			countingSpec("alpha", 7, &runs),
			countingSpec("beta", 5, &runs),
		}
	}
	var rendered []string
	for _, workers := range []int{1, 4, 16} {
		tabs, err := New(Options{Workers: workers, RootSeed: 42}).Run(specs())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var b strings.Builder
		for _, tab := range tabs {
			b.WriteString(tab.Render())
		}
		rendered = append(rendered, b.String())
	}
	if rendered[0] != rendered[1] || rendered[1] != rendered[2] {
		t.Errorf("output varies with worker count:\n%s\nvs\n%s", rendered[0], rendered[1])
	}
}

func TestRunMatchesRunSequential(t *testing.T) {
	var runs atomic.Int64
	spec := countingSpec("gamma", 6, &runs)
	want, err := spec.RunSequential(7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(Options{Workers: 8, RootSeed: 7}).Run([]experiments.Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], want) {
		t.Errorf("parallel table differs from sequential:\n%s\nvs\n%s", got[0].Render(), want.Render())
	}
}

func TestRunRealSpecsMatchSequential(t *testing.T) {
	specs := []experiments.Spec{
		experiments.CycleLocalCutsSpec([]int{12, 30}, 3),
		experiments.DensityTableSpec(24),
	}
	r := New(Options{Workers: 8, RootSeed: 5})
	got, err := r.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		want, err := spec.RunSequential(5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("%s: parallel differs from sequential:\n%s\nvs\n%s",
				spec.Name, got[i].Render(), want.Render())
		}
	}
}

func TestCacheSkipsRepeatedWork(t *testing.T) {
	var runs atomic.Int64
	r := New(Options{Workers: 4, RootSeed: 1})
	spec := countingSpec("delta", 5, &runs)
	first, err := r.Run([]experiments.Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 5 {
		t.Fatalf("first run executed %d tasks, want 5", runs.Load())
	}
	second, err := r.Run([]experiments.Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 5 {
		t.Errorf("second run re-executed tasks: %d total runs", runs.Load())
	}
	if hits, _ := r.CacheStats(); hits != 5 {
		t.Errorf("hits = %d, want 5", hits)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached rerun produced a different table")
	}
}

func TestCacheKeyedOnSeedAndParams(t *testing.T) {
	var runs atomic.Int64
	r := New(Options{Workers: 2, RootSeed: 1})
	if _, err := r.Run([]experiments.Spec{countingSpec("eps", 3, &runs)}); err != nil {
		t.Fatal(err)
	}
	// A different root seed must miss the cache.
	r2 := New(Options{Workers: 2, RootSeed: 2})
	r2.cache = r.cache
	if _, err := r2.Run([]experiments.Spec{countingSpec("eps", 3, &runs)}); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 6 {
		t.Errorf("runs = %d, want 6 (different seeds must not share cache entries)", runs.Load())
	}
}

func TestReplicateAggregation(t *testing.T) {
	spec := experiments.Spec{Name: "rep", Header: []string{"const", "varies", "nonnum"}}
	seeds := []int64{}
	spec.Tasks = append(spec.Tasks, experiments.Task{Row: "r", Run: func(seed int64) ([][]string, error) {
		seeds = append(seeds, seed)
		v := len(seeds) * 10 // 10, 20, 30 across replicates
		nn := "yes"
		if len(seeds) == 2 {
			nn = "no"
		}
		return [][]string{{"fixed", fmt.Sprint(v), nn}}, nil
	}})
	tabs, err := New(Options{Workers: 1, Replicates: 3, RootSeed: 9}).Run([]experiments.Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	row := tabs[0].Rows[0]
	if row[0] != "fixed" {
		t.Errorf("constant cell rewritten: %q", row[0])
	}
	if row[1] != "20 ±10 [10..30]" {
		t.Errorf("aggregated cell = %q, want \"20 ±10 [10..30]\"", row[1])
	}
	if row[2] != "yes ⟨2/3⟩" {
		t.Errorf("divergent non-numeric cell = %q", row[2])
	}
	// All three replicate seeds must be distinct.
	if seeds[0] == seeds[1] || seeds[1] == seeds[2] || seeds[0] == seeds[2] {
		t.Errorf("replicate seeds not distinct: %v", seeds)
	}
}

func TestErrorPropagation(t *testing.T) {
	sentinel := errors.New("boom")
	spec := experiments.Spec{Name: "bad", Header: []string{"x"}}
	spec.Tasks = append(spec.Tasks, experiments.Task{Row: "ok", Run: func(int64) ([][]string, error) {
		return [][]string{{"1"}}, nil
	}})
	spec.Tasks = append(spec.Tasks, experiments.Task{Row: "fails", Run: func(int64) ([][]string, error) {
		return nil, sentinel
	}})
	_, err := New(Options{Workers: 4, RootSeed: 1}).Run([]experiments.Spec{spec})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if !strings.Contains(err.Error(), "bad/fails") {
		t.Errorf("error lacks spec/task context: %v", err)
	}
}

func TestAggregateCell(t *testing.T) {
	cases := []struct {
		vals []string
		want string
	}{
		{[]string{"3", "3", "3"}, "3"},
		{[]string{"1.00 (10/10)", "1.50 (15/10)"}, "1.25 ±0.3536 [1..1.5]"},
		{[]string{"true", "false", "true"}, "true ⟨2/3⟩"},
		{[]string{"<=14 est", "<=16 est"}, "15 ±1.414 [14..16]"},
	}
	for _, c := range cases {
		if got := aggregateCell(c.vals); got != c.want {
			t.Errorf("aggregateCell(%v) = %q, want %q", c.vals, got, c.want)
		}
	}
}

func TestFailureAbortsRemainingWork(t *testing.T) {
	// Once a task fails the sweep is doomed; queued jobs must be skipped
	// instead of burning the rest of the suite's wall-clock. One worker
	// makes the processing order (and hence the assertion) deterministic.
	var runs atomic.Int64
	spec := experiments.Spec{Name: "doomed", Header: []string{"x"}}
	spec.Tasks = append(spec.Tasks, experiments.Task{Row: "fails", Run: func(int64) ([][]string, error) {
		return nil, errors.New("boom")
	}})
	for i := 0; i < 5; i++ {
		spec.Tasks = append(spec.Tasks, experiments.Task{Row: fmt.Sprintf("later%d", i), Run: func(int64) ([][]string, error) {
			runs.Add(1)
			return [][]string{{"1"}}, nil
		}})
	}
	if _, err := New(Options{Workers: 1, RootSeed: 1}).Run([]experiments.Spec{spec}); err == nil {
		t.Fatal("doomed sweep succeeded")
	}
	if runs.Load() != 0 {
		t.Errorf("%d tasks ran after the failure, want 0", runs.Load())
	}
}
