package spqr

import (
	"fmt"
	"sort"

	"localmds/internal/graph"
)

// rebuildAdj recomputes tree adjacency from twin pairs.
func (t *Tree) rebuildAdj() {
	owner := make(map[int]int) // edge ID -> node index
	for i, n := range t.Nodes {
		for _, e := range n.Edges {
			owner[e.ID] = i
		}
	}
	t.Adj = make([][]int, len(t.Nodes))
	for i, n := range t.Nodes {
		for _, e := range n.Edges {
			if e.Virtual {
				j, ok := owner[e.Twin]
				if ok && j != i {
					t.Adj[i] = append(t.Adj[i], j)
				}
			}
		}
	}
}

// canonicalize repeatedly merges adjacent same-type S/S and P/P node pairs
// until none remain, yielding the unique SPQR tree.
func (t *Tree) canonicalize() {
	for {
		merged := false
		for i := 0; i < len(t.Nodes) && !merged; i++ {
			ni := t.Nodes[i]
			if ni == nil || (ni.Type != SNode && ni.Type != PNode) {
				continue
			}
			for _, e := range ni.Edges {
				if !e.Virtual {
					continue
				}
				j := t.nodeOwning(e.Twin)
				if j < 0 || j == i || t.Nodes[j].Type != ni.Type {
					continue
				}
				t.merge(i, j, e.ID, e.Twin)
				merged = true
				break
			}
		}
		if !merged {
			break
		}
	}
	// Compact nil slots.
	var nodes []*Node
	for _, n := range t.Nodes {
		if n != nil {
			nodes = append(nodes, n)
		}
	}
	t.Nodes = nodes
	t.rebuildAdj()
	for _, n := range t.Nodes {
		n.normalize()
	}
}

func (t *Tree) nodeOwning(edgeID int) int {
	for i, n := range t.Nodes {
		if n == nil {
			continue
		}
		for _, e := range n.Edges {
			if e.ID == edgeID {
				return i
			}
		}
	}
	return -1
}

// merge fuses node j into node i, dropping the twin virtual pair
// (idI in node i, idJ in node j).
func (t *Tree) merge(i, j, idI, idJ int) {
	var combined []Edge
	for _, e := range t.Nodes[i].Edges {
		if e.ID != idI {
			combined = append(combined, e)
		}
	}
	for _, e := range t.Nodes[j].Edges {
		if e.ID != idJ {
			combined = append(combined, e)
		}
	}
	t.Nodes[i].Edges = combined
	t.Nodes[j] = nil
}

// normalize orders skeleton edges canonically (by endpoints, real first).
func (n *Node) normalize() {
	for i := range n.Edges {
		if n.Edges[i].U > n.Edges[i].V {
			n.Edges[i].U, n.Edges[i].V = n.Edges[i].V, n.Edges[i].U
		}
	}
	sort.Slice(n.Edges, func(a, b int) bool {
		ea, eb := n.Edges[a], n.Edges[b]
		if ea.U != eb.U {
			return ea.U < eb.U
		}
		if ea.V != eb.V {
			return ea.V < eb.V
		}
		if ea.Virtual != eb.Virtual {
			return !ea.Virtual
		}
		return ea.ID < eb.ID
	})
}

// Reassemble reconstructs the represented simple graph from the real edges
// of all skeletons, on n vertices.
func (t *Tree) Reassemble(n int) (*graph.Graph, error) {
	g := graph.New(n)
	for _, node := range t.Nodes {
		for _, e := range node.Edges {
			if e.Virtual {
				continue
			}
			if err := g.AddEdgeChecked(e.U, e.V); err != nil {
				return nil, fmt.Errorf("spqr: reassemble: %w", err)
			}
		}
	}
	return g, nil
}

// Validate checks the structural invariants of a canonical SPQR tree:
// every skeleton matches its declared type, twins pair up consistently on
// the same vertex pair, the tree is acyclic and connected, and no two
// adjacent nodes are both S or both P.
func (t *Tree) Validate() error {
	owner := make(map[int]int)
	edgeByID := make(map[int]Edge)
	for i, n := range t.Nodes {
		verts := n.Vertices()
		switch n.Type {
		case SNode:
			if !isSimpleCycle(n.Edges, verts) {
				return fmt.Errorf("spqr: S-node %d is not a cycle", i)
			}
		case PNode:
			if len(verts) != 2 || len(n.Edges) < 3 {
				return fmt.Errorf("spqr: P-node %d is not a dipole with >= 3 edges", i)
			}
		case RNode:
			if len(verts) < 4 {
				return fmt.Errorf("spqr: R-node %d has only %d vertices", i, len(verts))
			}
		default:
			return fmt.Errorf("spqr: node %d has unknown type", i)
		}
		for _, e := range n.Edges {
			if _, dup := owner[e.ID]; dup {
				return fmt.Errorf("spqr: duplicate edge id %d", e.ID)
			}
			owner[e.ID] = i
			edgeByID[e.ID] = e
		}
	}
	treeEdges := 0
	for i, n := range t.Nodes {
		for _, e := range n.Edges {
			if !e.Virtual {
				continue
			}
			twin, ok := edgeByID[e.Twin]
			if !ok {
				return fmt.Errorf("spqr: virtual edge %d has missing twin %d", e.ID, e.Twin)
			}
			if twin.Twin != e.ID {
				return fmt.Errorf("spqr: twin pointers of %d and %d disagree", e.ID, e.Twin)
			}
			a1, b1 := e.U, e.V
			a2, b2 := twin.U, twin.V
			if a1 > b1 {
				a1, b1 = b1, a1
			}
			if a2 > b2 {
				a2, b2 = b2, a2
			}
			if a1 != a2 || b1 != b2 {
				return fmt.Errorf("spqr: twins %d/%d on different vertex pairs", e.ID, e.Twin)
			}
			j := owner[e.Twin]
			if j == i {
				return fmt.Errorf("spqr: self-twin in node %d", i)
			}
			if t.Nodes[i].Type == t.Nodes[j].Type && t.Nodes[i].Type != RNode {
				return fmt.Errorf("spqr: adjacent %v nodes %d and %d", t.Nodes[i].Type, i, j)
			}
			treeEdges++
		}
	}
	if treeEdges%2 != 0 {
		return fmt.Errorf("spqr: odd count of virtual edge endpoints")
	}
	if len(t.Nodes) > 0 && treeEdges/2 != len(t.Nodes)-1 {
		return fmt.Errorf("spqr: %d tree edges for %d nodes (not a tree)", treeEdges/2, len(t.Nodes))
	}
	return nil
}

// CandidatePair is a vertex pair the tree exposes as a potential 2-cut,
// with the Proposition 5.7 position that exposes it.
type CandidatePair struct {
	U, V   int
	Origin string // "R-virtual", "P-node", "S-virtual", "S-nonadjacent"
}

// CandidateTwoCuts enumerates the Proposition 5.7 candidate positions:
// endpoints of R-node virtual edges, P-node pairs, endpoints of S-node
// virtual edges, and non-adjacent S-node vertex pairs. Every 2-cut of the
// represented graph appears among them.
func (t *Tree) CandidateTwoCuts() []CandidatePair {
	var out []CandidatePair
	seen := make(map[[2]int]bool)
	add := func(u, v int, origin string) {
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, CandidatePair{U: u, V: v, Origin: origin})
	}
	for _, n := range t.Nodes {
		switch n.Type {
		case RNode:
			for _, e := range n.VirtualEdges() {
				add(e.U, e.V, "R-virtual")
			}
		case PNode:
			vs := n.Vertices()
			if len(n.VirtualEdges()) >= 2 || len(n.Edges) >= 3 {
				add(vs[0], vs[1], "P-node")
			}
		case SNode:
			for _, e := range n.VirtualEdges() {
				add(e.U, e.V, "S-virtual")
			}
			vs := n.Vertices()
			adjacent := make(map[[2]int]bool)
			for _, e := range n.Edges {
				a, b := e.U, e.V
				if a > b {
					a, b = b, a
				}
				adjacent[[2]int{a, b}] = true
			}
			for i := 0; i < len(vs); i++ {
				for j := i + 1; j < len(vs); j++ {
					if !adjacent[[2]int{vs[i], vs[j]}] {
						add(vs[i], vs[j], "S-nonadjacent")
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// CountTypes returns how many S, P, and R nodes the tree has.
func (t *Tree) CountTypes() (s, p, r int) {
	for _, n := range t.Nodes {
		switch n.Type {
		case SNode:
			s++
		case PNode:
			p++
		case RNode:
			r++
		}
	}
	return s, p, r
}
