package spqr

import (
	"fmt"
	"strings"
)

// DOT renders the SPQR tree in Graphviz format: one box per node labelled
// with its type and skeleton vertices, tree edges labelled by the shared
// virtual-edge pair. Useful for inspecting decompositions (see
// examples/structure).
func (t *Tree) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n  node [shape=box];\n", sanitize(name))
	for i, n := range t.Nodes {
		fmt.Fprintf(&b, "  n%d [label=\"%s %v\"];\n", i, n.Type, n.Vertices())
	}
	owner := make(map[int]int)
	for i, n := range t.Nodes {
		for _, e := range n.Edges {
			owner[e.ID] = i
		}
	}
	seen := make(map[[2]int]bool)
	for i, n := range t.Nodes {
		for _, e := range n.Edges {
			if !e.Virtual {
				continue
			}
			j, ok := owner[e.Twin]
			if !ok {
				continue
			}
			a, c := i, j
			if a > c {
				a, c = c, a
			}
			key := [2]int{a, c}
			if seen[key] {
				continue
			}
			seen[key] = true
			fmt.Fprintf(&b, "  n%d -- n%d [label=\"{%d,%d}\"];\n", a, c, e.U, e.V)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func sanitize(name string) string {
	if name == "" {
		return "SPQR"
	}
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
