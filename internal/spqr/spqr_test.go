package spqr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"localmds/internal/cuts"
	"localmds/internal/gen"
	"localmds/internal/graph"
)

// biconnectedSample returns a random 2-connected graph: a cycle plus random
// chords.
func biconnectedSample(n int, chords int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := gen.Cycle(n)
	for added := 0; added < chords; added++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

func TestDecomposeRejects(t *testing.T) {
	if _, err := Decompose(gen.Path(5)); err == nil {
		t.Error("path accepted (not 2-connected)")
	}
	if _, err := Decompose(gen.Path(2)); err == nil {
		t.Error("edge accepted (too small)")
	}
	disconnected := graph.New(6)
	disconnected.AddEdge(0, 1)
	if _, err := Decompose(disconnected); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestDecomposeCycle(t *testing.T) {
	tree, err := Decompose(gen.Cycle(7))
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if len(tree.Nodes) != 1 || tree.Nodes[0].Type != SNode {
		t.Errorf("C7 should be a single S-node, got %d nodes", len(tree.Nodes))
	}
	if err := tree.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDecomposeComplete(t *testing.T) {
	tree, err := Decompose(gen.Complete(5))
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if len(tree.Nodes) != 1 || tree.Nodes[0].Type != RNode {
		t.Errorf("K5 should be a single R-node, got %+v", tree.Nodes)
	}
	if err := tree.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDecomposeTheta(t *testing.T) {
	// Theta with 3 paths of length 2: one P-node hub with 3 S-node
	// (triangle) children.
	g, err := gen.Theta([]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Decompose(g)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s, p, r := tree.CountTypes()
	if s != 3 || p != 1 || r != 0 {
		t.Errorf("theta types: s=%d p=%d r=%d, want 3, 1, 0", s, p, r)
	}
}

func TestDecomposeCycleWithChord(t *testing.T) {
	// C6 plus chord {0,3}: P-node (chord + 2 virtuals) with two S
	// children.
	g := gen.Cycle(6)
	g.AddEdge(0, 3)
	tree, err := Decompose(g)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s, p, r := tree.CountTypes()
	if s != 2 || p != 1 || r != 0 {
		t.Errorf("types: s=%d p=%d r=%d, want 2, 1, 0", s, p, r)
	}
}

func TestDecomposeK4(t *testing.T) {
	tree, err := Decompose(gen.Complete(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(tree.Nodes) != 1 || tree.Nodes[0].Type != RNode {
		t.Errorf("K4 should be one R-node")
	}
}

func TestReassembleMatchesOriginal(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Cycle(8),
		gen.Complete(5),
		gen.CompleteBipartite(2, 4),
		biconnectedSample(10, 4, 1),
		biconnectedSample(14, 6, 2),
	}
	for i, g := range graphs {
		tree, err := Decompose(g)
		if err != nil {
			t.Fatalf("graph %d: Decompose: %v", i, err)
		}
		back, err := tree.Reassemble(g.N())
		if err != nil {
			t.Fatalf("graph %d: Reassemble: %v", i, err)
		}
		if !back.Equal(g) {
			t.Errorf("graph %d: reassembled graph differs", i)
		}
	}
}

func TestValidateAndReassembleProperty(t *testing.T) {
	f := func(seed int64, rawN, rawC uint8) bool {
		n := int(rawN%12) + 4
		c := int(rawC % 8)
		g := biconnectedSample(n, c, seed)
		tree, err := Decompose(g)
		if err != nil {
			return false
		}
		if tree.Validate() != nil {
			return false
		}
		back, err := tree.Reassemble(g.N())
		if err != nil {
			return false
		}
		return back.Equal(g)
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property (Proposition 5.7): every minimal 2-cut of the graph appears
// among the tree's candidate positions.
func TestProposition57Property(t *testing.T) {
	f := func(seed int64, rawN, rawC uint8) bool {
		n := int(rawN%10) + 4
		c := int(rawC % 6)
		g := biconnectedSample(n, c, seed)
		tree, err := Decompose(g)
		if err != nil {
			return false
		}
		candSet := make(map[[2]int]bool)
		for _, cp := range tree.CandidateTwoCuts() {
			candSet[[2]int{cp.U, cp.V}] = true
		}
		for _, cut := range cuts.MinimalTwoCuts(g) {
			if !candSet[[2]int{cut.U, cut.V}] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestInterestingFamiliesC6(t *testing.T) {
	// The paper's example: C6 needs exactly the 3 opposite cuts, one per
	// family.
	g := gen.Cycle(6)
	families := InterestingFamilies(g)
	if len(families) != 3 {
		t.Fatalf("C6: %d families, want 3: %v", len(families), families)
	}
	if !FamiliesCoverInteresting(g, families) {
		t.Error("families do not cover all interesting vertices")
	}
	if !FamiliesNonCrossing(g, families) {
		t.Error("families contain crossing cuts")
	}
}

func TestInterestingFamiliesLongCycle(t *testing.T) {
	g := gen.Cycle(12)
	families := InterestingFamilies(g)
	if len(families) > 3 {
		t.Errorf("C12: %d families, want <= 3", len(families))
	}
	if !FamiliesCoverInteresting(g, families) {
		t.Error("families do not cover all interesting vertices")
	}
	if !FamiliesNonCrossing(g, families) {
		t.Error("families contain crossing cuts")
	}
}

// Property: the greedy families always cover and never cross (the <= 3
// bound is checked on structured instances above; greedy may exceed it on
// adversarial inputs, which the paper's constructive proof avoids).
func TestInterestingFamiliesSoundProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%8) + 4
		g := biconnectedSample(n, 2, seed)
		families := InterestingFamilies(g)
		return FamiliesCoverInteresting(g, families) && FamiliesNonCrossing(g, families)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTreeDOT(t *testing.T) {
	g := gen.Cycle(6)
	g.AddEdge(0, 3)
	tree, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	dot := tree.DOT("demo graph")
	for _, want := range []string{"graph demo_graph {", "S", "P", "--"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if !strings.Contains(tree.DOT(""), "graph SPQR {") {
		t.Error("empty name should default to SPQR")
	}
}

func TestValidateRejectsCorruptTrees(t *testing.T) {
	g := gen.Cycle(6)
	g.AddEdge(0, 3)
	fresh := func() *Tree {
		tree, err := Decompose(g)
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}
	// Mis-typed nodes: make every node an R node; the P-node (2 vertices)
	// must then fail validation.
	tree := fresh()
	for _, n := range tree.Nodes {
		n.Type = RNode
	}
	if err := tree.Validate(); err == nil {
		t.Error("all-R tree accepted")
	}
	// Break a twin pointer.
	tree = fresh()
outer:
	for _, n := range tree.Nodes {
		for i := range n.Edges {
			if n.Edges[i].Virtual {
				n.Edges[i].Twin = 99999
				break outer
			}
		}
	}
	if err := tree.Validate(); err == nil {
		t.Error("broken twin accepted")
	}
	// Duplicate edge identifier.
	tree = fresh()
	if len(tree.Nodes[0].Edges) >= 2 {
		tree.Nodes[0].Edges[1].ID = tree.Nodes[0].Edges[0].ID
		if err := tree.Validate(); err == nil {
			t.Error("duplicate edge id accepted")
		}
	}
}
