package spqr

import (
	"sort"

	"localmds/internal/cuts"
	"localmds/internal/graph"
)

// InterestingFamilies partitions a covering set of interesting 2-cuts of g
// into pairwise non-crossing families, in the spirit of Proposition 5.8:
// every globally interesting vertex appears in some selected cut together
// with one of its friends, and the cuts inside one family are pairwise
// non-crossing. The paper proves three families always suffice via an
// SPQR-tree case analysis; this greedy construction picks, for each not-yet
// covered interesting vertex, a witnessing cut, and assigns it to the first
// family it does not cross — returning however many families that needs
// (the experiments check it is at most three on the evaluated classes).
func InterestingFamilies(g *graph.Graph) [][]cuts.TwoCut {
	type witness struct {
		cut    cuts.TwoCut
		covers []int
	}
	var witnesses []witness
	covered := make(map[int]bool)
	for _, c := range cuts.MinimalTwoCuts(g) {
		var covers []int
		if cuts.GloballyInteresting(g, c.U, c.V) {
			covers = append(covers, c.U)
		}
		if cuts.GloballyInteresting(g, c.V, c.U) {
			covers = append(covers, c.V)
		}
		if len(covers) > 0 {
			witnesses = append(witnesses, witness{cut: c, covers: covers})
		}
	}
	// Prefer cuts covering two interesting vertices, then lexicographic.
	sort.SliceStable(witnesses, func(i, j int) bool {
		if len(witnesses[i].covers) != len(witnesses[j].covers) {
			return len(witnesses[i].covers) > len(witnesses[j].covers)
		}
		if witnesses[i].cut.U != witnesses[j].cut.U {
			return witnesses[i].cut.U < witnesses[j].cut.U
		}
		return witnesses[i].cut.V < witnesses[j].cut.V
	})
	var families [][]cuts.TwoCut
	place := func(c cuts.TwoCut) {
		for i := range families {
			crossesAny := false
			for _, other := range families[i] {
				if cuts.Crossing(g, c, other) {
					crossesAny = true
					break
				}
			}
			if !crossesAny {
				families[i] = append(families[i], c)
				return
			}
		}
		families = append(families, []cuts.TwoCut{c})
	}
	for _, w := range witnesses {
		fresh := false
		for _, v := range w.covers {
			if !covered[v] {
				fresh = true
			}
		}
		if !fresh {
			continue
		}
		place(w.cut)
		for _, v := range w.covers {
			covered[v] = true
		}
	}
	return families
}

// FamiliesCoverInteresting verifies the first Proposition 5.8 property:
// every globally interesting vertex of g appears, with a friend, in some
// cut of the families.
func FamiliesCoverInteresting(g *graph.Graph, families [][]cuts.TwoCut) bool {
	inFamily := make(map[int]bool)
	for _, fam := range families {
		for _, c := range fam {
			if cuts.GloballyInteresting(g, c.U, c.V) {
				inFamily[c.U] = true
			}
			if cuts.GloballyInteresting(g, c.V, c.U) {
				inFamily[c.V] = true
			}
		}
	}
	for _, v := range cuts.GloballyInterestingVertices(g) {
		if !inFamily[v] {
			return false
		}
	}
	return true
}

// FamiliesNonCrossing verifies the second Proposition 5.8 property: cuts
// within one family are pairwise non-crossing.
func FamiliesNonCrossing(g *graph.Graph, families [][]cuts.TwoCut) bool {
	for _, fam := range families {
		for i := 0; i < len(fam); i++ {
			for j := i + 1; j < len(fam); j++ {
				if cuts.Crossing(g, fam[i], fam[j]) {
					return false
				}
			}
		}
	}
	return true
}
