// Package spqr implements the SPQR tree (triconnected component
// decomposition) of a 2-connected graph used by the paper's analysis of
// interesting 2-cuts (§5.3): S-nodes are cycles, P-nodes dipoles (two
// vertices with >= 3 parallel edges), R-nodes 3-connected skeletons. The
// construction is the correctness-first recursive splitting algorithm
// (quadratic), followed by canonicalization (merging adjacent same-type S/P
// nodes); the paper uses SPQR trees only analytically, so asymptotic
// construction speed is irrelevant here.
//
// The package also provides the Proposition 5.7 candidate enumeration
// (every 2-cut appears in the tree in one of four positions) and the
// Proposition 5.8 style partition of interesting cuts into at most three
// pairwise non-crossing families.
package spqr

import (
	"fmt"
	"sort"

	"localmds/internal/cuts"
	"localmds/internal/graph"
)

// NodeType classifies a tree node's skeleton.
type NodeType int

// Node types: S = cycle, P = dipole, R = 3-connected.
const (
	SNode NodeType = iota + 1
	PNode
	RNode
)

func (t NodeType) String() string {
	switch t {
	case SNode:
		return "S"
	case PNode:
		return "P"
	case RNode:
		return "R"
	default:
		return fmt.Sprintf("NodeType(%d)", int(t))
	}
}

// Edge is a skeleton edge between two original vertex labels. Virtual
// edges tie the node to an adjacent tree node: the twin edge with the same
// pair lives in exactly one other node. Twin is the global edge identifier
// of that partner (-1 for real edges).
type Edge struct {
	U, V    int
	Virtual bool
	ID      int
	Twin    int
}

// Node is one skeleton of the decomposition.
type Node struct {
	Type  NodeType
	Edges []Edge
}

// Vertices returns the sorted distinct vertex labels of the skeleton.
func (n *Node) Vertices() []int {
	var vs []int
	for _, e := range n.Edges {
		vs = append(vs, e.U, e.V)
	}
	return graph.Dedup(vs)
}

// VirtualEdges returns the node's virtual edges.
func (n *Node) VirtualEdges() []Edge {
	var out []Edge
	for _, e := range n.Edges {
		if e.Virtual {
			out = append(out, e)
		}
	}
	return out
}

// Tree is an SPQR tree: nodes plus adjacency derived from twin pairs.
type Tree struct {
	Nodes []*Node
	// Adj[i] lists the node indices adjacent to node i (one entry per
	// shared virtual-edge pair).
	Adj [][]int
}

// Decompose builds the SPQR tree of g, which must be simple, 2-connected,
// and have at least three vertices.
func Decompose(g *graph.Graph) (*Tree, error) {
	if g.N() < 3 {
		return nil, fmt.Errorf("spqr: need at least 3 vertices, got %d", g.N())
	}
	if !is2Connected(g) {
		return nil, fmt.Errorf("spqr: graph is not 2-connected")
	}
	d := &decomposer{nextID: 0}
	edges := make([]Edge, 0, g.M())
	g.VisitEdges(func(u, v int) {
		edges = append(edges, Edge{U: u, V: v, ID: d.fresh(), Twin: -1})
	})
	nodes := d.split(edges)
	t := &Tree{Nodes: nodes}
	t.rebuildAdj()
	t.canonicalize()
	return t, nil
}

type decomposer struct {
	nextID int
}

func (d *decomposer) fresh() int {
	id := d.nextID
	d.nextID++
	return id
}

// split recursively decomposes a multigraph given by its edge list.
func (d *decomposer) split(edges []Edge) []*Node {
	verts := edgeVertices(edges)
	if len(verts) == 2 {
		return []*Node{{Type: PNode, Edges: edges}}
	}
	if isSimpleCycle(edges, verts) {
		return []*Node{{Type: SNode, Edges: edges}}
	}
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			u, v := verts[i], verts[j]
			comps, directs := splitGroups(edges, u, v)
			bridges := len(comps) + len(directs)
			switch {
			case len(comps) >= 2 && bridges == 2:
				// Binary split: two components, no direct edges.
				a, b := d.fresh(), d.fresh()
				left := append(append([]Edge(nil), comps[0]...), Edge{U: u, V: v, Virtual: true, ID: a, Twin: b})
				right := append(append([]Edge(nil), comps[1]...), Edge{U: u, V: v, Virtual: true, ID: b, Twin: a})
				return append(d.split(left), d.split(right)...)
			case bridges >= 3 && len(comps) >= 1:
				// P-node hub: one virtual edge per component, direct
				// edges stay in the hub.
				hub := &Node{Type: PNode}
				hub.Edges = append(hub.Edges, directs...)
				var out []*Node
				for _, comp := range comps {
					a, b := d.fresh(), d.fresh()
					hub.Edges = append(hub.Edges, Edge{U: u, V: v, Virtual: true, ID: a, Twin: b})
					child := append(append([]Edge(nil), comp...), Edge{U: u, V: v, Virtual: true, ID: b, Twin: a})
					out = append(out, d.split(child)...)
				}
				return append(out, hub)
			}
		}
	}
	return []*Node{{Type: RNode, Edges: edges}}
}

// splitGroups partitions the edges with respect to the pair {u, v}:
// components of the multigraph after deleting u and v (each component's
// edges, including its edges to u and v), and the direct u-v edges.
func splitGroups(edges []Edge, u, v int) (comps [][]Edge, directs []Edge) {
	// Union-find over edge indices: edges sharing an endpoint other than
	// u, v are grouped.
	parent := make([]int, len(edges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	byVertex := make(map[int]int) // vertex (not u,v) -> representative edge
	for i, e := range edges {
		if isDirect(e, u, v) {
			continue
		}
		for _, w := range []int{e.U, e.V} {
			if w == u || w == v {
				continue
			}
			if first, ok := byVertex[w]; ok {
				union(first, i)
			} else {
				byVertex[w] = i
			}
		}
	}
	groups := make(map[int][]Edge)
	for i, e := range edges {
		if isDirect(e, u, v) {
			directs = append(directs, e)
			continue
		}
		groups[find(i)] = append(groups[find(i)], e)
	}
	keys := make([]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		comps = append(comps, groups[k])
	}
	return comps, directs
}

func isDirect(e Edge, u, v int) bool {
	return (e.U == u && e.V == v) || (e.U == v && e.V == u)
}

func edgeVertices(edges []Edge) []int {
	var vs []int
	for _, e := range edges {
		vs = append(vs, e.U, e.V)
	}
	return graph.Dedup(vs)
}

// isSimpleCycle reports whether the edge multiset forms a single simple
// cycle on the given vertices: every vertex has degree exactly two, no
// parallel edges, and the edges are connected.
func isSimpleCycle(edges []Edge, verts []int) bool {
	if len(edges) != len(verts) || len(verts) < 3 {
		return false
	}
	deg := make(map[int]int)
	seen := make(map[[2]int]bool)
	for _, e := range edges {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			return false // parallel edges
		}
		seen[[2]int{a, b}] = true
		deg[e.U]++
		deg[e.V]++
	}
	for _, v := range verts {
		if deg[v] != 2 {
			return false
		}
	}
	// Connectivity: walk from one edge.
	return connectedEdges(edges)
}

func connectedEdges(edges []Edge) bool {
	if len(edges) == 0 {
		return true
	}
	adj := make(map[int][]int)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	start := edges[0].U
	seen := map[int]bool{start: true}
	stack := []int{start}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range adj[x] {
			if !seen[y] {
				seen[y] = true
				stack = append(stack, y)
			}
		}
	}
	return len(seen) == len(adj)
}

// is2Connected reports 2-connectivity of a simple graph: connected, at
// least 3 vertices, and no articulation points.
func is2Connected(g *graph.Graph) bool {
	if !g.Connected() || g.N() < 3 {
		return false
	}
	return len(cuts.ArticulationPoints(g)) == 0
}
