package graph

import (
	"testing"
	"testing/quick"
)

func TestBFSFromPath(t *testing.T) {
	g := path(5)
	dist := g.BFSFrom(0)
	for v, want := range []int{0, 1, 2, 3, 4} {
		if dist[v] != want {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	dist := g.BFSFrom(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Errorf("unreachable distances = %d, %d, want -1, -1", dist[2], dist[3])
	}
}

func TestBFSFromSet(t *testing.T) {
	g := path(7)
	dist := g.BFSFromSet([]int{0, 6})
	want := []int{0, 1, 2, 3, 2, 1, 0}
	for v := range want {
		if dist[v] != want[v] {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}

func TestDist(t *testing.T) {
	g := cycle(6)
	tests := []struct{ u, v, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {0, 5, 1}, {1, 4, 3},
	}
	for _, tt := range tests {
		if got := g.Dist(tt.u, tt.v); got != tt.want {
			t.Errorf("Dist(%d,%d) = %d, want %d", tt.u, tt.v, got, tt.want)
		}
	}
}

func TestBall(t *testing.T) {
	g := path(7)
	tests := []struct {
		v, r int
		want []int
	}{
		{3, 0, []int{3}},
		{3, 1, []int{2, 3, 4}},
		{3, 2, []int{1, 2, 3, 4, 5}},
		{0, 3, []int{0, 1, 2, 3}},
		{3, 100, []int{0, 1, 2, 3, 4, 5, 6}},
	}
	for _, tt := range tests {
		got := g.Ball(tt.v, tt.r)
		if !EqualSets(got, tt.want) {
			t.Errorf("Ball(%d,%d) = %v, want %v", tt.v, tt.r, got, tt.want)
		}
	}
}

func TestBallOfSet(t *testing.T) {
	g := path(9)
	got := g.BallOfSet([]int{0, 8}, 1)
	want := []int{0, 1, 7, 8}
	if !EqualSets(got, want) {
		t.Errorf("BallOfSet = %v, want %v", got, want)
	}
}

func TestClosedNeighborhood(t *testing.T) {
	g := MustFromEdges(4, [][2]int{{0, 1}, {0, 2}})
	got := g.ClosedNeighborhood(0)
	if !EqualSets(got, []int{0, 1, 2}) {
		t.Errorf("ClosedNeighborhood(0) = %v", got)
	}
	if !EqualSets(g.ClosedNeighborhood(3), []int{3}) {
		t.Errorf("ClosedNeighborhood(3) = %v", g.ClosedNeighborhood(3))
	}
}

func TestEccentricityDiameterRadius(t *testing.T) {
	tests := []struct {
		name      string
		g         *Graph
		diam, rad int
	}{
		{"path5", path(5), 4, 2},
		{"cycle6", cycle(6), 3, 3},
		{"k4", complete(4), 1, 1},
		{"single", New(1), 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Diameter(); got != tt.diam {
				t.Errorf("Diameter() = %d, want %d", got, tt.diam)
			}
			if got := tt.g.Radius(); got != tt.rad {
				t.Errorf("Radius() = %d, want %d", got, tt.rad)
			}
		})
	}
}

func TestWeakDiameter(t *testing.T) {
	// Cycle of 8: the set {0, 4} has weak diameter 4 even though the
	// induced subgraph on {0,4} is disconnected.
	g := cycle(8)
	if got := g.WeakDiameter([]int{0, 4}); got != 4 {
		t.Errorf("WeakDiameter({0,4}) = %d, want 4", got)
	}
	if got := g.WeakDiameter([]int{3}); got != 0 {
		t.Errorf("WeakDiameter single = %d, want 0", got)
	}
}

func TestShortestPath(t *testing.T) {
	g := cycle(6)
	p := g.ShortestPath(0, 2)
	if len(p) != 3 || p[0] != 0 || p[len(p)-1] != 2 {
		t.Errorf("ShortestPath(0,2) = %v, want length-3 path 0..2", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Errorf("path step %d-%d is not an edge", p[i], p[i+1])
		}
	}
	h := New(3)
	if got := h.ShortestPath(0, 2); got != nil {
		t.Errorf("ShortestPath disconnected = %v, want nil", got)
	}
	if p := g.ShortestPath(4, 4); len(p) != 1 || p[0] != 4 {
		t.Errorf("ShortestPath(4,4) = %v, want [4]", p)
	}
}

// Property: |Ball(v, r)| is non-decreasing in r, and Ball(v, diam) reaches
// the whole component.
func TestBallMonotoneProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%30) + 2
		g := randomGraph(n, 0.15, seed)
		v := int(uint(seed) % uint(n))
		prev := 0
		for r := 0; r <= n; r++ {
			size := len(g.Ball(v, r))
			if size < prev {
				return false
			}
			prev = size
		}
		comp := g.Components()
		for _, c := range comp {
			if SortedContains(c, v) {
				return EqualSets(g.Ball(v, n), c)
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BFS distances satisfy the triangle inequality along edges:
// |dist[u] - dist[v]| <= 1 for every edge {u,v} in the same component.
func TestBFSLipschitzProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%30) + 2
		g := randomGraph(n, 0.2, seed)
		dist := g.BFSFrom(0)
		for _, e := range g.Edges() {
			du, dv := dist[e[0]], dist[e[1]]
			if du >= 0 && dv >= 0 {
				diff := du - dv
				if diff < -1 || diff > 1 {
					return false
				}
			}
			if (du < 0) != (dv < 0) {
				return false // edge between reached and unreached
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
