package graph

import "sort"

// Induced returns the subgraph of g induced by the vertex set s, together
// with the mapping from new vertex indices to original ones. Duplicate
// entries in s are collapsed; the mapping is sorted ascending so that the
// relabeling is canonical.
func (g *Graph) Induced(s []int) (*Graph, []int) {
	verts := dedupSorted(s)
	index := make(map[int]int, len(verts))
	for i, v := range verts {
		index[v] = i
	}
	// Relabeling is monotone (verts ascending), so mapped adjacency rows
	// stay sorted and can be built directly into one shared backing array —
	// no insertSorted, no per-edge HasEdge.
	total := 0
	for _, v := range verts {
		for _, u := range g.adj[v] {
			if _, ok := index[u]; ok {
				total++
			}
		}
	}
	h := New(len(verts))
	buf := make([]int, 0, total)
	for i, v := range verts {
		start := len(buf)
		for _, u := range g.adj[v] {
			if j, ok := index[u]; ok {
				buf = append(buf, j)
			}
		}
		h.adj[i] = buf[start:len(buf):len(buf)]
	}
	h.m = total / 2
	return h, verts
}

// InducedBall returns g[N^r[v]] plus the vertex mapping, a convenience for
// local-cut detection (Definition 2.1).
func (g *Graph) InducedBall(v, r int) (*Graph, []int) {
	return g.Induced(g.Ball(v, r))
}

// Delete returns the graph g - s obtained by deleting all vertices of s,
// plus the mapping from new indices to original ones.
func (g *Graph) Delete(s []int) (*Graph, []int) {
	drop := make(map[int]bool, len(s))
	for _, v := range s {
		drop[v] = true
	}
	keep := make([]int, 0, g.N()-len(drop))
	for v := 0; v < g.N(); v++ {
		if !drop[v] {
			keep = append(keep, v)
		}
	}
	return g.Induced(keep)
}

// ContractEdge returns the graph obtained from g by contracting edge {u, v}
// into u (v disappears, u inherits v's neighbors), plus the mapping from new
// indices to original ones (the merged vertex maps to u). Parallel edges and
// loops created by the contraction are suppressed, keeping the graph simple.
func (g *Graph) ContractEdge(u, v int) (*Graph, []int) {
	keep := make([]int, 0, g.N()-1)
	for w := 0; w < g.N(); w++ {
		if w != v {
			keep = append(keep, w)
		}
	}
	index := make(map[int]int, len(keep))
	for i, w := range keep {
		index[w] = i
	}
	h := New(len(keep))
	g.VisitEdges(func(a, b int) {
		if a == v {
			a = u
		}
		if b == v {
			b = u
		}
		if a == b {
			return
		}
		ia, ib := index[a], index[b]
		if !h.HasEdge(ia, ib) {
			h.AddEdge(ia, ib)
		}
	})
	return h, keep
}

// DisjointUnion returns the disjoint union of g and h; vertices of h are
// shifted by g.N().
func DisjointUnion(g, h *Graph) *Graph {
	u := New(g.N() + h.N())
	g.VisitEdges(func(a, b int) { u.AddEdge(a, b) })
	off := g.N()
	h.VisitEdges(func(a, b int) { u.AddEdge(a+off, b+off) })
	return u
}

// IdentifyVertices returns the graph obtained from g by identifying every
// vertex in each group into that group's first element. Groups must be
// pairwise disjoint. The returned mapping sends new indices to the
// representative original vertex.
func IdentifyVertices(g *Graph, groups [][]int) (*Graph, []int) {
	rep := make([]int, g.N())
	for v := range rep {
		rep[v] = v
	}
	for _, grp := range groups {
		if len(grp) == 0 {
			continue
		}
		r := grp[0]
		for _, v := range grp[1:] {
			rep[v] = r
		}
	}
	// Compress representative labels into 0..k-1 preserving order.
	var keep []int
	for v := 0; v < g.N(); v++ {
		if rep[v] == v {
			keep = append(keep, v)
		}
	}
	index := make(map[int]int, len(keep))
	for i, v := range keep {
		index[v] = i
	}
	h := New(len(keep))
	g.VisitEdges(func(eu, ev int) {
		a, b := rep[eu], rep[ev]
		if a == b {
			return
		}
		ia, ib := index[a], index[b]
		if !h.HasEdge(ia, ib) {
			h.AddEdge(ia, ib)
		}
	})
	return h, keep
}

// Power returns g^r: same vertices, edges between all pairs at distance in
// [1, r] in g.
func (g *Graph) Power(r int) *Graph {
	h := New(g.N())
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Ball(v, r) {
			if u > v {
				h.AddEdge(v, u)
			}
		}
	}
	return h
}

func dedupSorted(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	j := 0
	for i, v := range out {
		if i == 0 || v != out[j-1] {
			out[j] = v
			j++
		}
	}
	return out[:j]
}

func sortInts(s []int) { sort.Ints(s) }
