package graph

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// jsonGraph is the wire format: {"n": 5, "edges": [[0,1],[1,2]]}.
type jsonGraph struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// MarshalJSON encodes the graph as {"n": ..., "edges": [[u,v], ...]} with
// edges in canonical (u < v, lexicographic) order.
func (g *Graph) MarshalJSON() ([]byte, error) {
	edges := make([][2]int, 0, g.M())
	g.VisitEdges(func(u, v int) {
		edges = append(edges, [2]int{u, v})
	})
	return json.Marshal(jsonGraph{N: g.N(), Edges: edges})
}

// UnmarshalJSON decodes the wire format produced by MarshalJSON, validating
// the edge list.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: decode: %w", err)
	}
	if jg.N < 0 {
		return fmt.Errorf("graph: decode: negative vertex count %d", jg.N)
	}
	h, err := FromEdges(jg.N, jg.Edges)
	if err != nil {
		return fmt.Errorf("graph: decode: %w", err)
	}
	*g = *h
	return nil
}

// WriteJSON writes the JSON encoding of g to w.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(g)
}

// ReadJSON parses a graph from r.
func ReadJSON(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// DOT renders g in Graphviz DOT format. Vertices in highlight are drawn
// filled; pass nil for a plain rendering.
func (g *Graph) DOT(name string, highlight []int) string {
	hi := make(map[int]bool, len(highlight))
	for _, v := range highlight {
		hi[v] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", sanitizeDOTName(name))
	for v := 0; v < g.N(); v++ {
		if hi[v] {
			fmt.Fprintf(&b, "  %d [style=filled, fillcolor=gold];\n", v)
		} else {
			fmt.Fprintf(&b, "  %d;\n", v)
		}
	}
	g.VisitEdges(func(u, v int) {
		fmt.Fprintf(&b, "  %d -- %d;\n", u, v)
	})
	b.WriteString("}\n")
	return b.String()
}

func sanitizeDOTName(name string) string {
	if name == "" {
		return "G"
	}
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
