package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycle(n int) *Graph {
	g := path(n)
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return g
}

func complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// randomGraph returns a seeded G(n, p) graph for property tests.
func randomGraph(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestNewAndCounts(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"empty", New(0), 0, 0},
		{"isolated", New(5), 5, 0},
		{"path4", path(4), 4, 3},
		{"cycle5", cycle(5), 5, 5},
		{"k4", complete(4), 4, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.N(); got != tt.n {
				t.Errorf("N() = %d, want %d", got, tt.n)
			}
			if got := tt.g.M(); got != tt.m {
				t.Errorf("M() = %d, want %d", got, tt.m)
			}
			if err := tt.g.Validate(); err != nil {
				t.Errorf("Validate() = %v", err)
			}
		})
	}
}

func TestAddEdgeChecked(t *testing.T) {
	g := New(3)
	if err := g.AddEdgeChecked(0, 1); err != nil {
		t.Fatalf("AddEdgeChecked(0,1) = %v", err)
	}
	if err := g.AddEdgeChecked(0, 1); err == nil {
		t.Error("duplicate edge not rejected")
	}
	if err := g.AddEdgeChecked(1, 0); err == nil {
		t.Error("reversed duplicate edge not rejected")
	}
	if err := g.AddEdgeChecked(1, 1); err == nil {
		t.Error("self-loop not rejected")
	}
	if err := g.AddEdgeChecked(0, 3); err == nil {
		t.Error("out-of-range edge not rejected")
	}
	if g.M() != 1 {
		t.Errorf("M() = %d after failed inserts, want 1", g.M())
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate: ignored, not panic
	if g.M() != 1 {
		t.Errorf("M() = %d, want 1", g.M())
	}
}

func TestRemoveEdge(t *testing.T) {
	g := cycle(4)
	if !g.RemoveEdge(0, 1) {
		t.Error("RemoveEdge(0,1) = false, want true")
	}
	if g.RemoveEdge(0, 1) {
		t.Error("second RemoveEdge(0,1) = true, want false")
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("edge still present after removal")
	}
	if g.M() != 3 {
		t.Errorf("M() = %d, want 3", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate() = %v", err)
	}
}

func TestAddVertex(t *testing.T) {
	g := path(2)
	v := g.AddVertex()
	if v != 2 || g.N() != 3 {
		t.Fatalf("AddVertex() = %d with N = %d, want 2 with N = 3", v, g.N())
	}
	g.AddEdge(v, 0)
	if !g.HasEdge(2, 0) {
		t.Error("edge to new vertex missing")
	}
}

func TestDegrees(t *testing.T) {
	g := MustFromEdges(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {3, 4}})
	wants := []int{3, 1, 1, 2, 1}
	for v, want := range wants {
		if got := g.Degree(v); got != want {
			t.Errorf("Degree(%d) = %d, want %d", v, got, want)
		}
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree() = %d, want 3", g.MaxDegree())
	}
	if g.MinDegree() != 1 {
		t.Errorf("MinDegree() = %d, want 1", g.MinDegree())
	}
}

func TestEdgesCanonicalOrder(t *testing.T) {
	g := MustFromEdges(4, [][2]int{{3, 2}, {1, 0}, {2, 0}})
	want := [][2]int{{0, 1}, {0, 2}, {2, 3}}
	got := g.Edges()
	if len(got) != len(want) {
		t.Fatalf("Edges() has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Edges()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := cycle(5)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Error("mutating clone affected original")
	}
	if !g.Clone().Equal(g) {
		t.Error("Clone() not Equal to original")
	}
}

func TestEqual(t *testing.T) {
	if !path(3).Equal(path(3)) {
		t.Error("identical paths not Equal")
	}
	if path(3).Equal(path(4)) {
		t.Error("different sizes Equal")
	}
	a := MustFromEdges(3, [][2]int{{0, 1}})
	b := MustFromEdges(3, [][2]int{{1, 2}})
	if a.Equal(b) {
		t.Error("different edge sets Equal")
	}
}

func TestComplement(t *testing.T) {
	g := path(4) // edges 01 12 23; complement: 02 03 13
	c := g.Complement()
	want := MustFromEdges(4, [][2]int{{0, 2}, {0, 3}, {1, 3}})
	if !c.Equal(want) {
		t.Errorf("Complement() = %v edges %v, want %v", c, c.Edges(), want.Edges())
	}
	// Complement of complement is the original.
	if !c.Complement().Equal(g) {
		t.Error("double complement is not identity")
	}
}

func TestDensity(t *testing.T) {
	if d := complete(4).Density(); d != 1.5 {
		t.Errorf("K4 Density() = %v, want 1.5", d)
	}
	if d := New(0).Density(); d != 0 {
		t.Errorf("empty Density() = %v, want 0", d)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := path(3)
	g.adj[0] = append(g.adj[0], 0) // self-loop corruption
	if err := g.Validate(); err == nil {
		t.Error("Validate() passed on corrupted graph")
	}
	h := path(3)
	h.adj[0] = append(h.adj[0], 2) // asymmetric edge
	if err := h.Validate(); err == nil {
		t.Error("Validate() passed on asymmetric graph")
	}
}

func TestValidateRandomGraphsProperty(t *testing.T) {
	f := func(seed int64, rawN uint8, rawP uint8) bool {
		n := int(rawN%40) + 1
		p := float64(rawP%100) / 100
		g := randomGraph(n, p, seed)
		return g.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHasEdgeOutOfRange(t *testing.T) {
	g := path(3)
	if g.HasEdge(-1, 0) || g.HasEdge(0, 7) {
		t.Error("HasEdge accepted out-of-range vertices")
	}
}
