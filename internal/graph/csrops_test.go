package graph

import (
	"math/rand"
	"testing"
)

// randomGraph builds a connected-ish random instance for op equivalence.
func opsRandomGraph(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func toInts(s []int32) []int {
	out := make([]int, len(s))
	for i, v := range s {
		out[i] = int(v)
	}
	return out
}

func TestCSRAppendBallMatchesBall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := opsRandomGraph(24, 0.08, rng)
		c := g.Freeze()
		a := NewArena()
		for v := 0; v < g.N(); v++ {
			for _, r := range []int{0, 1, 2, 4} {
				want := g.Ball(v, r)
				got := toInts(c.AppendBall(nil, v, r, a))
				if !EqualSets(got, want) {
					t.Fatalf("Ball(%d, %d) = %v, want %v", v, r, got, want)
				}
			}
		}
	}
}

func TestCSRAppendBallOfSet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := opsRandomGraph(30, 0.08, rng)
	c := g.Freeze()
	a := NewArena()
	for trial := 0; trial < 30; trial++ {
		u, v := rng.Intn(30), rng.Intn(30)
		want := g.BallOfSet([]int{u, v}, 3)
		got := toInts(c.AppendBallOfSet(nil, []int32{int32(u), int32(v)}, 3, a))
		if !EqualSets(got, want) {
			t.Fatalf("BallOfSet({%d,%d}, 3) = %v, want %v", u, v, got, want)
		}
	}
}

func TestCSRAppendClosedAndClosedSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := opsRandomGraph(20, 0.15, rng)
	c := g.Freeze()
	for v := 0; v < g.N(); v++ {
		want := g.ClosedNeighborhood(v)
		got := toInts(c.AppendClosed(nil, v))
		if !EqualSets(got, want) {
			t.Fatalf("AppendClosed(%d) = %v, want %v", v, got, want)
		}
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			want := IsSubset(g.ClosedNeighborhood(v), g.ClosedNeighborhood(u))
			if got := c.ClosedSubset(v, u); got != want {
				t.Fatalf("ClosedSubset(%d, %d) = %v, want %v", v, u, got, want)
			}
		}
	}
}

func TestCSRInducedIntoMatchesInduced(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		g := opsRandomGraph(22, 0.12, rng)
		c := g.Freeze()
		a := NewArena()
		var verts []int32
		for v := 0; v < g.N(); v++ {
			if rng.Intn(2) == 0 {
				verts = append(verts, int32(v))
			}
		}
		want, idx := g.Induced(toInts(verts))
		var sub CSR
		c.InducedInto(&sub, verts, a)
		if sub.N() != want.N() {
			t.Fatalf("induced n = %d, want %d", sub.N(), want.N())
		}
		for i := range idx {
			if got := toInts(sub.Row(i)); !EqualSets(got, want.Neighbors(i)) {
				t.Fatalf("induced row %d = %v, want %v", i, got, want.Neighbors(i))
			}
		}
	}
}

func TestCSRSubsetComponentsMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		g := opsRandomGraph(26, 0.07, rng)
		c := g.Freeze()
		a := NewArena()
		var subset []int
		var subset32 []int32
		for v := 0; v < g.N(); v++ {
			if rng.Intn(3) != 0 {
				subset = append(subset, v)
				subset32 = append(subset32, int32(v))
			}
		}
		want := g.ComponentsOfSubset(subset)
		got := c.SubsetComponents(subset32, a)
		if len(got) != len(want) {
			t.Fatalf("got %d components, want %d", len(got), len(want))
		}
		for i := range got {
			if !EqualSets(toInts(got[i]), want[i]) {
				t.Fatalf("component %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestCSRConnectedWithoutMatchesDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 25; trial++ {
		g := opsRandomGraph(16, 0.15, rng)
		c := g.Freeze()
		a := NewArena()
		for v := 0; v < g.N(); v++ {
			del, _ := g.Delete([]int{v})
			want := del.Connected()
			if got := c.ConnectedWithout(v, a); got != want {
				t.Fatalf("ConnectedWithout(%d) = %v, want %v", v, got, want)
			}
		}
	}
}

func TestCSRComponentLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		g := opsRandomGraph(18, 0.12, rng)
		c := g.Freeze()
		a := NewArena()
		u, v := rng.Intn(18), rng.Intn(18)
		labels, num := c.ComponentLabels(u, v, a)
		del, idx := g.Delete(Dedup([]int{u, v}))
		if want := del.NumComponents(); num != want {
			t.Fatalf("ComponentLabels(%d, %d) count = %d, want %d", u, v, num, want)
		}
		wantIDs := del.ComponentIDs()
		for i, orig := range idx {
			if int(labels[orig]) != wantIDs[i] {
				t.Fatalf("label[%d] = %d, want %d", orig, labels[orig], wantIDs[i])
			}
		}
		if labels[u] != -1 || labels[v] != -1 {
			t.Fatalf("excluded vertices labeled %d/%d", labels[u], labels[v])
		}
	}
}

func TestCSRDiameterMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		g := opsRandomGraph(20, 0.1, rng)
		c := g.Freeze()
		a := NewArena()
		if got, want := c.Diameter(a), g.Diameter(); got != want {
			t.Fatalf("Diameter = %d, want %d", got, want)
		}
	}
}

func TestFromCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := opsRandomGraph(25, 0.12, rng)
	h := FromCSR(g.Freeze())
	if err := h.Validate(); err != nil {
		t.Fatalf("FromCSR result invalid: %v", err)
	}
	if !g.Equal(h) {
		t.Fatal("FromCSR round trip differs from original")
	}
}

func TestVisitEdgesMatchesEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := opsRandomGraph(15, 0.2, rng)
	want := g.Edges()
	var visited [][2]int
	g.VisitEdges(func(u, v int) { visited = append(visited, [2]int{u, v}) })
	if len(visited) != len(want) {
		t.Fatalf("VisitEdges saw %d edges, want %d", len(visited), len(want))
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, visited[i], want[i])
		}
	}
}

// Arena reuse across many mixed operations must not corrupt results.
func TestArenaReuseStress(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewArena()
	for trial := 0; trial < 10; trial++ {
		g := opsRandomGraph(12+rng.Intn(20), 0.12, rng)
		c := g.Freeze()
		for v := 0; v < g.N(); v++ {
			ball := c.AppendBall(nil, v, 2, a)
			var sub CSR
			c.InducedInto(&sub, ball, a)
			if sub.N() != len(ball) {
				t.Fatalf("induced size %d, want %d", sub.N(), len(ball))
			}
			want, _ := g.Induced(toInts(ball))
			for i := 0; i < sub.N(); i++ {
				if !EqualSets(toInts(sub.Row(i)), want.Neighbors(i)) {
					t.Fatalf("trial %d v %d: induced row %d mismatch", trial, v, i)
				}
			}
		}
	}
}
