package graph

// BFS traversals. All queues are preallocated to n and consumed with a head
// index rather than `queue[1:]` re-slicing, so a full BFS performs exactly
// two allocations (dist + queue). When the graph has been frozen (see
// Freeze), the scan runs over the flat CSR arrays.

// BFSFrom runs a breadth-first search from source and returns the distance
// slice, with -1 for unreachable vertices.
func (g *Graph) BFSFrom(source int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	queue := make([]int, 1, g.N())
	queue[0] = source
	g.bfsLoop(dist, queue, -1)
	return dist
}

// BFSFromSet runs a multi-source BFS from the given set and returns the
// distance slice, with -1 for unreachable vertices. Distance 0 is assigned to
// every source.
func (g *Graph) BFSFromSet(sources []int) []int {
	return g.boundedBFS(sources, -1)
}

// bfsLoop drains the queue, expanding vertices in FIFO order. A vertex at
// distance r (when r >= 0) is not expanded, truncating the search at radius
// r. dist must be -1 except at the enqueued sources.
func (g *Graph) bfsLoop(dist []int, queue []int, r int) {
	if c := g.csr; c != nil {
		offs, tgts := c.Offsets, c.Targets
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			d := dist[v]
			if d == r {
				continue
			}
			for k := offs[v]; k < offs[v+1]; k++ {
				u := tgts[k]
				if dist[u] < 0 {
					dist[u] = d + 1
					queue = append(queue, int(u))
				}
			}
		}
		return
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		d := dist[v]
		if d == r {
			continue
		}
		for _, u := range g.adj[v] {
			if dist[u] < 0 {
				dist[u] = d + 1
				queue = append(queue, u)
			}
		}
	}
}

// Dist returns the hop distance between u and v, or -1 if disconnected.
func (g *Graph) Dist(u, v int) int {
	if u == v {
		return 0
	}
	return g.BFSFrom(u)[v]
}

// Ball returns N^r[v]: all vertices at distance at most r from v, sorted.
func (g *Graph) Ball(v, r int) []int {
	dist := g.boundedBFS([]int{v}, r)
	return collectReached(dist)
}

// BallOfSet returns N^r[S]: all vertices at distance at most r from some
// vertex of S, sorted.
func (g *Graph) BallOfSet(s []int, r int) []int {
	dist := g.boundedBFS(s, r)
	return collectReached(dist)
}

// ClosedNeighborhood returns N[v] = {v} ∪ N(v), sorted.
func (g *Graph) ClosedNeighborhood(v int) []int {
	return g.Ball(v, 1)
}

// boundedBFS is a multi-source BFS truncated at radius r (r < 0 means
// unbounded).
func (g *Graph) boundedBFS(sources []int, r int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int, 0, g.N())
	for _, s := range sources {
		if dist[s] < 0 {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	g.bfsLoop(dist, queue, r)
	return dist
}

func collectReached(dist []int) []int {
	out := make([]int, 0)
	for v, d := range dist {
		if d >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// Eccentricity returns the maximum distance from v to any reachable vertex.
func (g *Graph) Eccentricity(v int) int {
	ecc := 0
	for _, d := range g.BFSFrom(v) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the largest eccentricity over all vertices, considering
// only reachable pairs. It returns 0 for graphs with at most one vertex.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		if e := g.Eccentricity(v); e > diam {
			diam = e
		}
	}
	return diam
}

// Radius returns the smallest eccentricity over all vertices, or 0 for the
// empty graph.
func (g *Graph) Radius() int {
	if g.N() == 0 {
		return 0
	}
	rad := g.Eccentricity(0)
	for v := 1; v < g.N(); v++ {
		if e := g.Eccentricity(v); e < rad {
			rad = e
		}
	}
	return rad
}

// WeakDiameter returns the largest distance *in g* between two vertices of s
// (the weak diameter of s, §2 of the paper). Pairs in different components
// of g are ignored. It returns 0 when s has fewer than two vertices.
func (g *Graph) WeakDiameter(s []int) int {
	wd := 0
	for _, u := range s {
		dist := g.BFSFrom(u)
		for _, v := range s {
			if dist[v] > wd {
				wd = dist[v]
			}
		}
	}
	return wd
}

// ShortestPath returns one shortest u-v path as a vertex sequence including
// both endpoints, or nil if v is unreachable from u.
func (g *Graph) ShortestPath(u, v int) []int {
	if u == v {
		return []int{u}
	}
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}
	parent[u] = u
	queue := make([]int, 1, g.N())
	queue[0] = u
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for _, y := range g.adj[x] {
			if parent[y] < 0 {
				parent[y] = x
				if y == v {
					return tracePath(parent, u, v)
				}
				queue = append(queue, y)
			}
		}
	}
	return nil
}

func tracePath(parent []int, u, v int) []int {
	path := []int{v}
	for cur := v; cur != u; {
		cur = parent[cur]
		path = append(path, cur)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
