package graph

import "sort"

// CSR is a frozen compressed-sparse-row view of a graph: the concatenated
// sorted adjacency lists in Targets, delimited by Offsets (len n+1). It is
// immutable once built; traversals over it touch two flat int32 arrays
// instead of n separate adjacency slices, which is both cache-friendlier
// and allocation-free to share. int32 bounds the substrate at ~2 billion
// vertices/arcs, far beyond anything the simulator runs.
type CSR struct {
	Offsets []int32 // len n+1; arcs of v are Targets[Offsets[v]:Offsets[v+1]]
	Targets []int32 // len 2m; neighbor lists, each sorted ascending
}

// N returns the number of vertices.
func (c *CSR) N() int { return len(c.Offsets) - 1 }

// Degree returns the degree of v.
func (c *CSR) Degree(v int) int { return int(c.Offsets[v+1] - c.Offsets[v]) }

// Row returns the neighbor list of v as an int32 slice view into Targets.
// Callers must not modify it.
func (c *CSR) Row(v int) []int32 { return c.Targets[c.Offsets[v]:c.Offsets[v+1]] }

// buildCSR flattens adjacency lists into a CSR.
func buildCSR(adj [][]int) *CSR {
	offsets := make([]int32, len(adj)+1)
	total := 0
	for v, a := range adj {
		offsets[v] = int32(total)
		total += len(a)
	}
	offsets[len(adj)] = int32(total)
	targets := make([]int32, total)
	k := 0
	for _, a := range adj {
		for _, u := range a {
			targets[k] = int32(u)
			k++
		}
	}
	return &CSR{Offsets: offsets, Targets: targets}
}

// Freeze builds (or returns the cached) CSR view of g and returns it. The
// cache is invalidated by any mutation (AddEdge, RemoveEdge, AddVertex).
// Freeze is not safe for concurrent use with itself or with mutators; call
// it once before handing the graph to concurrent readers.
func (g *Graph) Freeze() *CSR {
	if g.csr == nil {
		g.csr = buildCSR(g.adj)
	}
	return g.csr
}

// CSR returns the frozen view if one is cached, or nil. Read paths use it
// opportunistically: frozen graphs traverse the flat arrays, unfrozen ones
// the adjacency lists.
func (g *Graph) CSR() *CSR { return g.csr }

// FromEdgesUnchecked batch-builds a graph on n vertices from an edge list
// in O(n + m log deg), trusting the input far enough to skip the per-edge
// HasEdge/insertSorted work of FromEdges: self-loops are dropped and
// duplicate edges (in either orientation) are collapsed rather than
// rejected. All adjacency lists share one backing array, so the result is
// compact and a subsequent Freeze is cheap. It panics on out-of-range
// endpoints, matching AddEdge.
func FromEdgesUnchecked(n int, edges [][2]int) *Graph {
	deg := make([]int, n)
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		deg[e[0]]++
		deg[e[1]]++
	}
	total := 0
	for _, d := range deg {
		total += d
	}
	buf := make([]int, total)
	adj := make([][]int, n)
	off := 0
	for v, d := range deg {
		adj[v] = buf[off : off : off+d]
		off += d
	}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	m := 0
	for v := range adj {
		a := adj[v]
		sort.Ints(a)
		// Collapse duplicates in place.
		j := 0
		for i, x := range a {
			if i == 0 || x != a[j-1] {
				a[j] = x
				j++
			}
		}
		adj[v] = a[:j]
		m += j
	}
	return &Graph{adj: adj, m: m / 2}
}
