package graph

import (
	"fmt"
	"slices"
)

// CSRFromEdges batch-builds the frozen CSR view of the simple undirected
// graph on n vertices directly from an edge list, skipping the
// adjacency-list *Graph intermediate entirely. It is the huge-graph
// ingestion primitive: where FromEdgesUnchecked materializes n slice
// headers plus a shared backing array before Freeze flattens them again,
// CSRFromEdges runs a two-pass counting sort straight into the final flat
// arrays — one degree-count pass, one placement pass, then an in-place
// per-row sort/dedup compaction. Self-loops are dropped and duplicate
// edges (in either orientation) are collapsed, so the result is
// bit-identical to FromEdgesUnchecked(n, edges).Freeze(). It panics on
// out-of-range endpoints, matching AddEdge, and on inputs whose arc count
// overflows the int32 CSR substrate.
func CSRFromEdges(n int, edges [][2]int) *CSR {
	return CSRFromEdgeChunks(n, [][][2]int{edges})
}

// CSRFromEdgeChunks is CSRFromEdges over a pre-chunked edge list: the
// chunks are treated as one concatenated list, so parallel parsers can
// hand over their per-chunk buffers without a concatenating copy. The
// result depends only on the edge multiset, never on the chunking.
func CSRFromEdgeChunks(n int, chunks [][][2]int) *CSR {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	// Pass 1: degrees (self-loops dropped, duplicates still counted).
	deg := make([]int32, n)
	total := 0
	for _, edges := range chunks {
		for _, e := range edges {
			u, v := e[0], e[1]
			if u < 0 || u >= n || v < 0 || v >= n {
				panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, n))
			}
			if u == v {
				continue
			}
			deg[u]++
			deg[v]++
			total += 2
		}
	}
	const maxInt32 = 1<<31 - 1
	if total > maxInt32 {
		panic(fmt.Sprintf("graph: %d arcs overflow the int32 CSR substrate", total))
	}
	offsets := make([]int32, n+1)
	run := int32(0)
	for v, d := range deg {
		offsets[v] = run
		run += d
	}
	offsets[n] = run
	// Pass 2: placement. deg doubles as the per-vertex write cursor.
	next := deg
	copy(next, offsets[:n])
	targets := make([]int32, total)
	for _, edges := range chunks {
		for _, e := range edges {
			u, v := e[0], e[1]
			if u == v {
				continue
			}
			targets[next[u]] = int32(v)
			next[u]++
			targets[next[v]] = int32(u)
			next[v]++
		}
	}
	// Pass 3: sort each row and collapse duplicates, compacting the
	// target array in place. The write cursor never overtakes the read
	// cursor (dedup only shrinks rows), so the overlap is safe.
	write := int32(0)
	for v := 0; v < n; v++ {
		start, end := offsets[v], offsets[v+1]
		row := targets[start:end]
		slices.Sort(row)
		offsets[v] = write
		last := int32(-1)
		for _, x := range row {
			if x != last {
				targets[write] = x
				write++
				last = x
			}
		}
	}
	offsets[n] = write
	return &CSR{Offsets: offsets, Targets: targets[:write:write]}
}
