package graph

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestSortedSetOps(t *testing.T) {
	a := []int{1, 3, 5, 7}
	b := []int{3, 4, 5, 8}
	if got := SortedUnion(a, b); !EqualSets(got, []int{1, 3, 4, 5, 7, 8}) {
		t.Errorf("SortedUnion = %v", got)
	}
	if got := SortedIntersect(a, b); !EqualSets(got, []int{3, 5}) {
		t.Errorf("SortedIntersect = %v", got)
	}
	if got := SortedDiff(a, b); !EqualSets(got, []int{1, 7}) {
		t.Errorf("SortedDiff = %v", got)
	}
	if got := SortedDiff(b, a); !EqualSets(got, []int{4, 8}) {
		t.Errorf("SortedDiff reversed = %v", got)
	}
}

func TestSortedSetOpsEmpty(t *testing.T) {
	a := []int{1, 2}
	if got := SortedUnion(a, nil); !EqualSets(got, a) {
		t.Errorf("SortedUnion(a, nil) = %v", got)
	}
	if got := SortedIntersect(a, nil); len(got) != 0 {
		t.Errorf("SortedIntersect(a, nil) = %v", got)
	}
	if got := SortedDiff(nil, a); len(got) != 0 {
		t.Errorf("SortedDiff(nil, a) = %v", got)
	}
}

func TestSortedContains(t *testing.T) {
	a := []int{2, 4, 6}
	if !SortedContains(a, 4) || SortedContains(a, 5) || SortedContains(nil, 1) {
		t.Error("SortedContains wrong")
	}
}

func TestIsSubset(t *testing.T) {
	tests := []struct {
		a, b []int
		want bool
	}{
		{[]int{1, 3}, []int{1, 2, 3}, true},
		{[]int{1, 4}, []int{1, 2, 3}, false},
		{nil, []int{1}, true},
		{[]int{1}, nil, false},
		{[]int{1, 2, 3}, []int{1, 2, 3}, true},
	}
	for _, tt := range tests {
		if got := IsSubset(tt.a, tt.b); got != tt.want {
			t.Errorf("IsSubset(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestDedup(t *testing.T) {
	got := Dedup([]int{5, 1, 5, 3, 1})
	if !EqualSets(got, []int{1, 3, 5}) {
		t.Errorf("Dedup = %v", got)
	}
}

// Property: set operations agree with map-based reference implementations.
func TestSetOpsAgainstMapsProperty(t *testing.T) {
	toSet := func(s []int) map[int]bool {
		m := make(map[int]bool)
		for _, v := range s {
			m[v] = true
		}
		return m
	}
	fromMap := func(m map[int]bool) []int {
		var out []int
		for v := range m {
			out = append(out, v)
		}
		sort.Ints(out)
		return out
	}
	f := func(rawA, rawB []uint8) bool {
		var a, b []int
		for _, x := range rawA {
			a = append(a, int(x%32))
		}
		for _, x := range rawB {
			b = append(b, int(x%32))
		}
		a, b = Dedup(a), Dedup(b)
		ma, mb := toSet(a), toSet(b)
		union := make(map[int]bool)
		inter := make(map[int]bool)
		diff := make(map[int]bool)
		for v := range ma {
			union[v] = true
			if mb[v] {
				inter[v] = true
			} else {
				diff[v] = true
			}
		}
		for v := range mb {
			union[v] = true
		}
		if !EqualSets(SortedUnion(a, b), fromMap(union)) {
			return false
		}
		if !EqualSets(SortedIntersect(a, b), fromMap(inter)) {
			return false
		}
		return EqualSets(SortedDiff(a, b), fromMap(diff))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
