package graph

import "sort"

// TrueTwins reports whether u and v are true twins: N[u] = N[v]. True twins
// are necessarily adjacent (u ∈ N[u] = N[v]).
func (g *Graph) TrueTwins(u, v int) bool {
	if u == v {
		return true
	}
	if !g.HasEdge(u, v) {
		return false
	}
	nu := g.ClosedNeighborhood(u)
	nv := g.ClosedNeighborhood(v)
	if len(nu) != len(nv) {
		return false
	}
	for i := range nu {
		if nu[i] != nv[i] {
			return false
		}
	}
	return true
}

// TrueTwinClasses partitions V(g) into true-twin equivalence classes,
// returned as sorted slices ordered by smallest member. Singleton classes
// are included.
func (g *Graph) TrueTwinClasses() [][]int {
	// Group by closed-neighborhood fingerprint. Two vertices with equal
	// closed neighborhoods necessarily hash to the same key.
	byKey := make(map[string][]int, g.N())
	for v := 0; v < g.N(); v++ {
		key := fingerprint(g.ClosedNeighborhood(v))
		byKey[key] = append(byKey[key], v)
	}
	classes := make([][]int, 0, len(byKey))
	for _, c := range byKey {
		sort.Ints(c)
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i][0] < classes[j][0] })
	return classes
}

// TwinReduction computes the true-twin-less graph G⁻ associated to g (§2 of
// the paper): one representative (the smallest vertex) is kept per
// true-twin class. It returns the reduced graph and the mapping from new
// indices to original representatives. MDS(G⁻) = MDS(G).
//
// Twin classes can collapse transitively: removing one twin may create new
// twins. The reduction iterates to a fixpoint, matching "a largest subgraph
// of G with no true twins".
func (g *Graph) TwinReduction() (*Graph, []int) {
	cur := g.Clone()
	mapping := make([]int, g.N())
	for i := range mapping {
		mapping[i] = i
	}
	for {
		classes := cur.TrueTwinClasses()
		reps := make([]int, 0, len(classes))
		shrunk := false
		for _, c := range classes {
			reps = append(reps, c[0])
			if len(c) > 1 {
				shrunk = true
			}
		}
		if !shrunk {
			return cur, mapping
		}
		next, idx := cur.Induced(reps)
		newMapping := make([]int, len(idx))
		for i, old := range idx {
			newMapping[i] = mapping[old]
		}
		cur, mapping = next, newMapping
	}
}

// HasTrueTwins reports whether g contains at least one pair of distinct true
// twins.
func (g *Graph) HasTrueTwins() bool {
	for _, c := range g.TrueTwinClasses() {
		if len(c) > 1 {
			return true
		}
	}
	return false
}

// fingerprint encodes a sorted int slice as a compact string map key.
func fingerprint(s []int) string {
	buf := make([]byte, 0, len(s)*3)
	for _, v := range s {
		for v >= 0x80 {
			buf = append(buf, byte(v)|0x80)
			v >>= 7
		}
		buf = append(buf, byte(v))
	}
	return string(buf)
}
