package graph

import "sort"

// VSet is a small sorted-slice vertex-set helper shared by the algorithm
// packages. Operations return new slices and never alias their inputs.

// SortedUnion returns the sorted union of two sorted, duplicate-free slices.
func SortedUnion(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// SortedIntersect returns the sorted intersection of two sorted,
// duplicate-free slices.
func SortedIntersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// SortedDiff returns a \ b for sorted, duplicate-free slices.
func SortedDiff(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) {
		if j >= len(b) || a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else if a[i] > b[j] {
			j++
		} else {
			i++
			j++
		}
	}
	return out
}

// SortedContains reports whether sorted slice a contains x.
func SortedContains(a []int, x int) bool {
	i := sort.SearchInts(a, x)
	return i < len(a) && a[i] == x
}

// IsSubset reports whether every element of sorted slice a is in sorted
// slice b.
func IsSubset(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) {
		if j >= len(b) {
			return false
		}
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return true
}

// Dedup returns a sorted duplicate-free copy of s.
func Dedup(s []int) []int { return dedupSorted(s) }

// EqualSets reports whether two sorted duplicate-free slices are equal.
func EqualSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
