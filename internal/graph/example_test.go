package graph_test

import (
	"fmt"

	"localmds/internal/graph"
)

// ExampleGraph_Ball shows radius-r neighborhoods on a path.
func ExampleGraph_Ball() {
	g := graph.MustFromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	fmt.Println(g.Ball(2, 1))
	fmt.Println(g.Ball(2, 2))
	// Output:
	// [1 2 3]
	// [0 1 2 3 4]
}

// ExampleGraph_TwinReduction reduces a clique to a single representative.
func ExampleGraph_TwinReduction() {
	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {0, 2}, {1, 2}})
	reduced, reps := g.TwinReduction()
	fmt.Println(reduced.N(), reps)
	// Output:
	// 1 [0]
}

// ExampleGraph_RComponents shows §3's r-components: {0,2} chain at r=2,
// vertex 7 stays separate.
func ExampleGraph_RComponents() {
	g := graph.MustFromEdges(9, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8},
	})
	fmt.Println(g.RComponents([]int{0, 2, 7}, 2))
	// Output:
	// [[0 2] [7]]
}
