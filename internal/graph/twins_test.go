package graph

import (
	"testing"
	"testing/quick"
)

func TestTrueTwins(t *testing.T) {
	// In K3 every pair is a true-twin pair.
	g := complete(3)
	if !g.TrueTwins(0, 1) || !g.TrueTwins(1, 2) {
		t.Error("K3 vertices should be true twins")
	}
	// In a path, endpoints are not twins of anything.
	p := path(3)
	if p.TrueTwins(0, 2) {
		t.Error("non-adjacent vertices cannot be true twins")
	}
	if p.TrueTwins(0, 1) {
		t.Error("path endpoints are not twins of centers")
	}
}

func TestTrueTwinClasses(t *testing.T) {
	// Two triangles sharing nothing: each triangle is one class of 3.
	g := DisjointUnion(complete(3), complete(3))
	classes := g.TrueTwinClasses()
	if len(classes) != 2 {
		t.Fatalf("got %d classes, want 2: %v", len(classes), classes)
	}
	if !EqualSets(classes[0], []int{0, 1, 2}) || !EqualSets(classes[1], []int{3, 4, 5}) {
		t.Errorf("classes = %v", classes)
	}
}

func TestTwinReductionK4(t *testing.T) {
	g := complete(4)
	r, mapping := g.TwinReduction()
	if r.N() != 1 {
		t.Fatalf("K4 reduces to %d vertices, want 1", r.N())
	}
	if mapping[0] != 0 {
		t.Errorf("representative = %d, want 0", mapping[0])
	}
}

func TestTwinReductionIterates(t *testing.T) {
	// A graph where one round of twin removal creates new twins:
	// K4 with two pendant vertices attached to {0,1,2,3}... simpler:
	// vertices {0,1} twins; after merging, {0,2} become twins.
	// Construct: 0-1 edge, both adjacent to 2 and 3; 2-3 edge; 2,3 adjacent
	// to everything. 0,1 twins (N[0]=N[1]={0,1,2,3}). After removing 1:
	// N[0]={0,2,3}, N[2]=N[3]={0,2,3}: all three mutually twins.
	g := MustFromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	r, _ := g.TwinReduction()
	if r.N() != 1 {
		t.Errorf("K4-like graph reduced to %d vertices, want 1", r.N())
	}
}

func TestTwinReductionNoTwins(t *testing.T) {
	g := path(5)
	r, mapping := g.TwinReduction()
	if !r.Equal(g) {
		t.Error("twin-free graph changed by reduction")
	}
	for i, v := range mapping {
		if v != i {
			t.Errorf("mapping[%d] = %d, want identity", i, v)
		}
	}
}

func TestHasTrueTwins(t *testing.T) {
	if !complete(3).HasTrueTwins() {
		t.Error("K3 should have true twins")
	}
	if path(4).HasTrueTwins() {
		t.Error("P4 should not have true twins")
	}
}

// Property: the reduced graph never has true twins, and reduction is
// idempotent.
func TestTwinReductionFixpointProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%18) + 1
		g := randomGraph(n, 0.5, seed)
		r, mapping := g.TwinReduction()
		if r.HasTrueTwins() {
			return false
		}
		if len(mapping) != r.N() {
			return false
		}
		r2, _ := r.TwinReduction()
		return r2.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every original vertex is dominated in G by its class
// representative: for every v there is a representative u with N[v] ⊇ ... —
// concretely, the representatives of the classes form a graph whose MDS
// equals MDS(G) (checked in the mds package); here we check the weaker
// structural fact that every removed vertex has a kept true twin at the
// moment of removal, which implies every vertex of G is adjacent (or equal)
// to some kept representative of its class.
func TestTwinClassesCoverProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%18) + 1
		g := randomGraph(n, 0.5, seed)
		classes := g.TrueTwinClasses()
		covered := make([]bool, n)
		for _, c := range classes {
			rep := c[0]
			for _, v := range c {
				if v == rep || g.HasEdge(rep, v) {
					covered[v] = true
				}
			}
		}
		for _, ok := range covered {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
