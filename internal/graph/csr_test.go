package graph

import (
	"math/rand"
	"testing"
)

func randomEdges(n int, p float64, rng *rand.Rand) [][2]int {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return edges
}

func TestFreezeMatchesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(40)
		g, err := FromEdges(n, randomEdges(n, 0.2, rng))
		if err != nil {
			t.Fatal(err)
		}
		c := g.Freeze()
		if c.N() != g.N() {
			t.Fatalf("CSR n = %d, want %d", c.N(), g.N())
		}
		if len(c.Targets) != 2*g.M() {
			t.Fatalf("CSR arcs = %d, want %d", len(c.Targets), 2*g.M())
		}
		for v := 0; v < n; v++ {
			if c.Degree(v) != g.Degree(v) {
				t.Fatalf("vertex %d: CSR degree %d, want %d", v, c.Degree(v), g.Degree(v))
			}
			row := c.Row(v)
			for i, u := range g.Neighbors(v) {
				if int(row[i]) != u {
					t.Fatalf("vertex %d: CSR row %v, want %v", v, row, g.Neighbors(v))
				}
			}
		}
		if g.CSR() != c {
			t.Fatal("Freeze result not cached")
		}
	}
}

func TestMutationInvalidatesCSR(t *testing.T) {
	g := MustFromEdges(4, [][2]int{{0, 1}, {1, 2}})
	g.Freeze()
	g.AddEdge(2, 3)
	if g.CSR() != nil {
		t.Fatal("AddEdge kept a stale CSR")
	}
	g.Freeze()
	g.RemoveEdge(0, 1)
	if g.CSR() != nil {
		t.Fatal("RemoveEdge kept a stale CSR")
	}
	g.Freeze()
	g.AddVertex()
	if g.CSR() != nil {
		t.Fatal("AddVertex kept a stale CSR")
	}
}

// TestBFSFrozenMatchesUnfrozen locks in that the CSR fast path computes the
// same distances and balls as the adjacency-list path.
func TestBFSFrozenMatchesUnfrozen(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(50)
		g, err := FromEdges(n, randomEdges(n, 0.15, rng))
		if err != nil {
			t.Fatal(err)
		}
		frozen := g.Clone()
		frozen.Freeze()
		for _, src := range []int{0, n / 2, n - 1} {
			a, b := g.BFSFrom(src), frozen.BFSFrom(src)
			for v := range a {
				if a[v] != b[v] {
					t.Fatalf("BFSFrom(%d): dist[%d] = %d frozen %d", src, v, a[v], b[v])
				}
			}
			for r := 0; r <= 3; r++ {
				if !EqualSets(g.Ball(src, r), frozen.Ball(src, r)) {
					t.Fatalf("Ball(%d,%d) differs frozen vs not", src, r)
				}
			}
		}
		set := []int{0, n - 1}
		if !EqualSets(collectReached(g.BFSFromSet(set)), collectReached(frozen.BFSFromSet(set))) {
			t.Fatal("BFSFromSet differs frozen vs not")
		}
	}
}

func TestFromEdgesUnchecked(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(40)
		edges := randomEdges(n, 0.2, rng)
		want, err := FromEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		// Pollute the input with duplicates, reversed duplicates, and
		// self-loops; the unchecked builder must collapse them all.
		dirty := append([][2]int(nil), edges...)
		for _, e := range edges {
			if rng.Intn(2) == 0 {
				dirty = append(dirty, [2]int{e[1], e[0]})
			}
		}
		if n > 0 {
			dirty = append(dirty, [2]int{0, 0})
		}
		rng.Shuffle(len(dirty), func(i, j int) { dirty[i], dirty[j] = dirty[j], dirty[i] })
		got := FromEdgesUnchecked(n, dirty)
		if err := got.Validate(); err != nil {
			t.Fatalf("invalid graph: %v", err)
		}
		if !got.Equal(want) {
			t.Fatalf("FromEdgesUnchecked != FromEdges: %v vs %v", got, want)
		}
	}
}

func TestFromEdgesUncheckedEmpty(t *testing.T) {
	g := FromEdgesUnchecked(0, nil)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph = %v", g)
	}
	g = FromEdgesUnchecked(3, nil)
	if g.N() != 3 || g.M() != 0 {
		t.Fatalf("edgeless graph = %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
