package graph

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzReadJSON checks that arbitrary input never panics the decoder and
// that every accepted graph validates and round-trips.
func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"n":3,"edges":[[0,1],[1,2]]}`))
	f.Add([]byte(`{"n":0,"edges":[]}`))
	f.Add([]byte(`{"n":2,"edges":[[0,0]]}`))
	f.Add([]byte(`{"n":-1}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		out, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		var h Graph
		if err := json.Unmarshal(out, &h); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !g.Equal(&h) {
			t.Fatal("round trip changed the graph")
		}
	})
}
