package graph

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// randomTwinRich builds a graph engineered to contain true twins: a random
// base plus duplicated closed neighborhoods.
func randomTwinRich(n int, rng *rand.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	for k := 0; k < n/3; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	// Clone some closed neighborhoods: make v a true twin of u by giving v
	// exactly u's neighbors plus the uv edge.
	for k := 0; k < n/4; k++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		for _, w := range slices.Clone(g.Neighbors(u)) {
			if w != v && !g.HasEdge(v, w) {
				g.AddEdge(v, w)
			}
		}
		if !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Property: TwinReduceCSR agrees with the adjacency-list TwinReduction —
// same reduced graph (bit-identical frozen view) and same representative
// mapping — on twin-rich randomized instances.
func TestTwinReduceCSRMatchesTwinReduction(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%48) + 2
		g := randomTwinRich(n, rng)
		wantG, wantMap := g.TwinReduction()
		gotCSR, gotMap := TwinReduceCSR(g.Freeze())
		return equalCSR(gotCSR, wantG.Freeze()) && slices.Equal(gotMap, wantMap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// A twin-free input must come back as the same CSR pointer (no copy) with
// the identity mapping.
func TestTwinReduceCSRTwinFreeNoCopy(t *testing.T) {
	g := New(5) // path: no true twins
	for v := 0; v < 4; v++ {
		g.AddEdge(v, v+1)
	}
	c := g.Freeze()
	rc, mapping := TwinReduceCSR(c)
	if rc != c {
		t.Fatal("twin-free reduction copied the CSR")
	}
	for i, v := range mapping {
		if v != i {
			t.Fatalf("mapping[%d] = %d, want identity", i, v)
		}
	}
}

// Fixpoint iteration: removing twins can create new twins. A star of
// pendant pairs collapses in waves, and the CSR path must track the
// adjacency-list path through every wave.
func TestTwinReduceCSRFixpoint(t *testing.T) {
	// K4 with each vertex's closed neighborhood duplicated twice: heavy
	// collapse in round one, further collapse after.
	g := New(12)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.AddEdge(u, v)
		}
	}
	for u := 0; u < 4; u++ {
		for _, dup := range []int{4 + 2*u, 5 + 2*u} {
			for v := 0; v < 4; v++ {
				if v != u {
					g.AddEdge(dup, v)
				}
			}
			g.AddEdge(dup, u)
		}
	}
	wantG, wantMap := g.TwinReduction()
	gotCSR, gotMap := TwinReduceCSR(g.Freeze())
	if !equalCSR(gotCSR, wantG.Freeze()) {
		t.Fatal("reduced CSR differs from TwinReduction")
	}
	if !slices.Equal(gotMap, wantMap) {
		t.Fatalf("mapping = %v, want %v", gotMap, wantMap)
	}
	if gotCSR.N() >= 12 {
		t.Fatalf("nothing collapsed: n = %d", gotCSR.N())
	}
}
