package graph

import (
	"testing"
	"testing/quick"
)

func TestDSUBasic(t *testing.T) {
	d := NewDSU(5)
	if d.SetCount() != 5 {
		t.Fatalf("SetCount = %d, want 5", d.SetCount())
	}
	if !d.Union(0, 1) {
		t.Error("first Union(0,1) = false")
	}
	if d.Union(0, 1) {
		t.Error("second Union(0,1) = true")
	}
	if !d.Same(0, 1) || d.Same(0, 2) {
		t.Error("Same gave wrong answers")
	}
	d.Union(2, 3)
	d.Union(1, 2)
	if d.SetCount() != 2 {
		t.Errorf("SetCount = %d, want 2", d.SetCount())
	}
	if d.SizeOf(3) != 4 {
		t.Errorf("SizeOf(3) = %d, want 4", d.SizeOf(3))
	}
}

// Property: after uniting along the edges of a graph, Same(u, v) agrees with
// graph connectivity.
func TestDSUMatchesComponentsProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%25) + 1
		g := randomGraph(n, 0.15, seed)
		d := NewDSU(n)
		for _, e := range g.Edges() {
			d.Union(e[0], e[1])
		}
		ids := g.ComponentIDs()
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if d.Same(u, v) != (ids[u] == ids[v]) {
					return false
				}
			}
		}
		return d.SetCount() == g.NumComponents()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
